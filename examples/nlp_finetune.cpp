/**
 * @file
 * GLUE-style fine-tuning of the BERT proxy, comparing the three
 * update methods of Table 3 on one task and printing the cost the
 * compiler removed for the sparse scheme.
 *
 *   ./build/examples/nlp_finetune [task]   (default: sst2)
 */

#include <cstdio>
#include <string>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/models.h"

using namespace pe;

int
main(int argc, char **argv)
{
    std::string task_name = argc > 1 ? argv[1] : "sst2";
    constexpr int64_t kBatch = 8, kSeq = 16, kVocab = 64;

    SyntheticText task = SyntheticText::task(task_name, kVocab, kSeq);
    NlpConfig cfg;
    cfg.batch = kBatch;
    cfg.seqLen = kSeq;
    cfg.vocab = kVocab;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.ffDim = 64;
    cfg.layers = 4;
    cfg.numClasses = task.classes();

    struct Method {
        const char *name;
        SparseUpdateScheme scheme;
    };

    for (int mi = 0; mi < 3; ++mi) {
        auto store = std::make_shared<ParamStore>();
        Rng rng(13); // identical init across methods
        ModelSpec m = buildBert(cfg, rng, store.get());
        Method method = mi == 0
                            ? Method{"full-bp",
                                     SparseUpdateScheme::full()}
                            : mi == 1
                                  ? Method{"bias-only", biasOnlyScheme()}
                                  : Method{"sparse-bp",
                                           transformerSparseScheme(m, 2,
                                                                   2)};
        CompileOptions opt;
        opt.optim = OptimConfig::adam(0.003);
        auto prog = compileTraining(m.graph, m.loss, method.scheme, opt,
                                    store);
        Rng r(7);
        float loss = 0;
        for (int s = 0; s < 150; ++s) {
            Batch b = task.sample(kBatch, r);
            loss = prog.trainStep({{"x", b.x}, {"y", b.y}});
        }
        auto infer = compileInference(m.graph, {m.logits}, opt, store);
        int64_t correct = 0, total = 0;
        for (int e = 0; e < 12; ++e) {
            Batch b = task.sample(kBatch, r);
            Tensor logits = infer.run({{"x", b.x}})[0];
            for (int64_t i = 0; i < kBatch; ++i) {
                int64_t am = 0;
                for (int64_t c = 1; c < cfg.numClasses; ++c) {
                    if (logits[i * cfg.numClasses + c] >
                        logits[i * cfg.numClasses + am])
                        am = c;
                }
                ++total;
                correct += am == static_cast<int64_t>(b.y[i]);
            }
        }
        std::printf("[%-9s] %s: loss %.3f  acc %.1f%%  kernels/step "
                    "%d  flops %.1fM  arena %lld KB\n",
                    method.name, task_name.c_str(), loss,
                    100.0 * correct / total, prog.report().kernelSteps,
                    prog.report().flopsPerStep / 1e6,
                    static_cast<long long>(
                        prog.report().arenaBytes / 1024));
    }
    return 0;
}
