/**
 * @file
 * plan_tool: compile once, deploy anywhere — the CLI for binary plan
 * files (src/plan/).
 *
 *   plan_tool compile --model mlp|mcunet --precision fp32|fp16|int8
 *             [--batch N] [--res N] [--threads N] -o FILE
 *       Build the named model DETERMINISTICALLY (fixed seeds for
 *       weights and calibration), run the full compile pipeline, and
 *       serialize the compiled plan. Two invocations with the same
 *       flags produce byte-identical files — the CI round-trip job
 *       `cmp`s them to prove it.
 *
 *   plan_tool inspect FILE
 *       Print the header, section table (sizes + checksums), and the
 *       compiled program's vital signs without executing anything.
 *
 *   plan_tool run FILE [--seed N] [--verify]
 *       Load the plan (zero compile work — asserted), run it on a
 *       seeded deterministic input, and print a checksum of every
 *       output. With --verify, additionally rebuild the model from
 *       the recipe recorded in the plan's tag, compile it fresh
 *       in-process, and require (a) the fresh plan bytes to equal the
 *       file and (b) the fresh outputs to be BIT-identical to the
 *       loaded plan's — machine/process portability, proven.
 *
 *   plan_tool profile FILE [--iters N] [--seed N] [--chrome OUT.json]
 *       Load the plan, arm execution tracing, run N iterations on a
 *       seeded input, and print the per-step / per-op attribution
 *       tables (src/obs/). Also reports trace COVERAGE — summed span
 *       time over measured wall time — so lost time is visible, and
 *       optionally writes the spans as Chrome Trace Event JSON for
 *       chrome://tracing / Perfetto.
 *
 * Exit status: 0 on success / verification pass, 1 otherwise.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "obs/chrome.h"
#include "obs/profile.h"
#include "plan/plan.h"
#include "quant/quant.h"

using namespace pe;

namespace {

struct Recipe {
    std::string model = "mlp"; ///< mlp | mcunet
    int64_t batch = 1;
    int64_t res = 16;         ///< mcunet input resolution
    int threads = 1;
    Precision precision = Precision::F32;
};

std::string
tagOf(const Recipe &r)
{
    return "model=" + r.model + ";batch=" + std::to_string(r.batch) +
           ";res=" + std::to_string(r.res) +
           ";threads=" + std::to_string(r.threads) +
           ";precision=" + precisionName(r.precision);
}

Precision
parsePrecision(const std::string &s)
{
    if (s == "fp32")
        return Precision::F32;
    if (s == "fp16")
        return Precision::F16;
    if (s == "int8")
        return Precision::Int8;
    throw std::runtime_error("unknown precision '" + s +
                             "' (fp32|fp16|int8)");
}

/** Parse the "k=v;k=v" tag a compile stamped into the plan. */
Recipe
recipeFromTag(const std::string &tag)
{
    if (tag.empty())
        throw std::runtime_error(
            "plan carries no plan_tool recipe tag (written by "
            "savePlan()/savePlans()?) — --verify needs a plan made "
            "by `plan_tool compile`");
    Recipe r;
    size_t pos = 0;
    while (pos < tag.size()) {
        size_t eq = tag.find('=', pos);
        size_t end = tag.find(';', pos);
        if (end == std::string::npos)
            end = tag.size();
        if (eq == std::string::npos || eq > end)
            throw std::runtime_error(
                "plan tag is not a plan_tool recipe: " + tag);
        std::string k = tag.substr(pos, eq - pos);
        std::string v = tag.substr(eq + 1, end - eq - 1);
        if (k == "model")
            r.model = v;
        else if (k == "batch")
            r.batch = std::stoll(v);
        else if (k == "res")
            r.res = std::stoll(v);
        else if (k == "threads")
            r.threads = std::stoi(v);
        else if (k == "precision")
            r.precision = parsePrecision(v);
        else
            throw std::runtime_error("unknown tag key '" + k + "'");
        pos = end + 1;
    }
    return r;
}

struct BuiltModel {
    Graph graph;
    int logits = -1;
    std::shared_ptr<ParamStore> store;
    Shape inShape;
};

/** Deterministic model construction: fixed weight seeds per family. */
BuiltModel
buildModel(const Recipe &r)
{
    BuiltModel b;
    b.store = std::make_shared<ParamStore>();
    if (r.model == "mlp") {
        Rng rng(7);
        NetBuilder nb(b.graph, rng, b.store.get());
        int x = nb.input({r.batch, 16}, "x");
        int h = nb.relu(nb.linear(x, 64, "fc1"));
        h = nb.relu(nb.linear(h, 64, "fc2"));
        b.logits = nb.linear(h, 4, "head");
        b.inShape = {r.batch, 16};
    } else if (r.model == "mcunet") {
        VisionConfig cfg;
        cfg.batch = r.batch;
        cfg.resolution = r.res;
        cfg.width = 0.5;
        cfg.blocks = 4;
        Rng rng(11);
        ModelSpec m = buildMcuNet(cfg, rng, b.store.get());
        b.graph = std::move(m.graph);
        b.logits = m.logits;
        b.inShape = {r.batch, 3, r.res, r.res};
    } else {
        throw std::runtime_error("unknown model '" + r.model +
                                 "' (mlp|mcunet)");
    }
    return b;
}

/** The one compile path `compile` and `run --verify` both take, so a
 *  verify failure can only mean a real portability break. */
std::string
compileToBytes(const Recipe &r, BuiltModel &b)
{
    if (r.precision != Precision::F32) {
        std::vector<std::unordered_map<std::string, Tensor>> calib;
        Rng rng(55);
        for (int i = 0; i < 2; ++i)
            calib.push_back({{"x", Tensor::randn(b.inShape, rng)}});
        calibrate(b.graph, *b.store, calib);
    }
    CompileOptions opt;
    opt.precision = r.precision;
    opt.numThreads = r.threads;
    InferenceProgram prog =
        compileInference(b.graph, {b.logits}, opt, b.store);
    return serializePlan(prog.graph(),
                         prog.executor().exportArtifact(),
                         prog.report(), *b.store, tagOf(r));
}

/** Seeded feeds for every Input node, in id order. */
std::unordered_map<std::string, Tensor>
seededFeeds(const Graph &g, uint64_t seed)
{
    Rng rng(seed);
    std::unordered_map<std::string, Tensor> feeds;
    for (int id : g.inputIds())
        feeds.emplace(g.node(id).name,
                      Tensor::randn(g.node(id).shape, rng));
    return feeds;
}

bool
bitEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) *
                           static_cast<size_t>(a.size())) == 0;
}

int
cmdCompile(const Recipe &r, const std::string &out)
{
    BuiltModel b = buildModel(r);
    std::string bytes = compileToBytes(r, b);
    writePlanFile(out, bytes);
    std::printf("wrote %s (%zu bytes)  tag: %s\n", out.c_str(),
                bytes.size(), tagOf(r).c_str());
    return 0;
}

int
cmdInspect(const std::string &path)
{
    std::string bytes = readPlanFile(path);
    std::printf("%s: %zu bytes, format v%u\n", path.c_str(),
                bytes.size(), kPlanFormatVersion);
    std::printf("%-6s %10s %10s  %-16s %s\n", "sect", "offset",
                "bytes", "checksum", "ok");
    for (const PlanSectionInfo &s : planSections(bytes)) {
        std::printf("%-6s %10llu %10llu  %016llx %s\n",
                    s.tag.c_str(),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.bytes),
                    static_cast<unsigned long long>(s.checksum),
                    s.checksumOk ? "ok" : "MISMATCH");
    }

    PlanData pd = deserializePlan(bytes);
    int steps = 0;
    for (int id : pd.artifact.order) {
        if (!isSourceOp(pd.graph.node(id).op))
            ++steps;
    }
    const MemoryPlan &mp = pd.artifact.plan;
    std::printf("\ntag       : %s\n", pd.tag.c_str());
    std::printf("precision : %s\n", precisionName(pd.precision));
    std::printf("graph     : %d nodes, %zu inputs, %zu outputs, "
                "%zu params, %d kernel steps\n",
                pd.graph.numNodes(), pd.graph.inputIds().size(),
                pd.graph.outputs().size(), pd.params.size(), steps);
    std::printf("launch    : %d threads, %d sharded steps\n",
                pd.artifact.numThreads, pd.artifact.shardedSteps);
    std::printf("memory    : arena %lld B (peak live %lld B), "
                "workspaces %lld B, params %lld B, consts %lld B\n",
                static_cast<long long>(mp.arenaBytes),
                static_cast<long long>(mp.peakLiveBytes),
                static_cast<long long>(mp.workspaceBytes),
                static_cast<long long>(mp.paramBytes),
                static_cast<long long>(mp.constBytes));
    std::printf("compile   : %d fusions, %d folded, %d quantized ops, "
                "%d prequantized weights, %.3g FLOPs/step\n",
                pd.report.fusions, pd.report.folded,
                pd.report.quant.quantizedOps,
                pd.report.quant.prequantizedWeights,
                pd.report.flopsPerStep);
    return 0;
}

int
cmdRun(const std::string &path, uint64_t seed, bool verify)
{
    std::string bytes = readPlanFile(path);
    auto loaded = loadPlanFromBytes(bytes);
    auto feeds = seededFeeds(loaded->graph(), seed);
    std::vector<Tensor> outs = loaded->run(feeds);
    for (size_t i = 0; i < outs.size(); ++i) {
        std::printf("output[%zu]: shape %s checksum %016llx\n", i,
                    shapeToString(outs[i].shape()).c_str(),
                    static_cast<unsigned long long>(planChecksum(
                        outs[i].data(),
                        sizeof(float) *
                            static_cast<size_t>(outs[i].size()))));
    }
    if (!verify)
        return 0;

    // Rebuild from the recipe the plan carries, compile fresh IN THIS
    // process, and require byte-identical plan bytes + bit-identical
    // outputs. Run from a plan produced by another job/machine, this
    // is the whole portability claim in one command.
    PlanData pd = deserializePlan(bytes);
    Recipe r = recipeFromTag(pd.tag);
    BuiltModel b = buildModel(r);
    std::string fresh = compileToBytes(r, b);
    bool bytes_ok = fresh == bytes;
    std::printf("verify: plan bytes %s (%zu vs %zu)\n",
                bytes_ok ? "IDENTICAL" : "DIFFER", bytes.size(),
                fresh.size());

    auto fresh_prog = loadPlanFromBytes(fresh);
    std::vector<Tensor> fresh_outs = fresh_prog->run(feeds);
    bool outs_ok = fresh_outs.size() == outs.size();
    for (size_t i = 0; outs_ok && i < outs.size(); ++i)
        outs_ok = bitEqual(outs[i], fresh_outs[i]);
    std::printf("verify: outputs vs fresh compile %s\n",
                outs_ok ? "BIT-IDENTICAL" : "DIFFER");
    std::printf("%s\n", bytes_ok && outs_ok ? "PASS" : "FAIL");
    return bytes_ok && outs_ok ? 0 : 1;
}

int
cmdProfile(const std::string &path, int iters, uint64_t seed,
           const std::string &chromeOut)
{
    std::string bytes = readPlanFile(path);
    auto loaded = loadPlanFromBytes(bytes);
    Executor &ex = loaded->executor();
    auto feeds = seededFeeds(loaded->graph(), seed);
    for (auto &[name, t] : feeds)
        ex.bindInput(name, t);

    // One untraced warm-up run: first-run init hooks (Winograd
    // transform caches etc.) execute outside the profiled window, so
    // the tables show steady-state kernel time only.
    ex.run();

    // Size the ring for every span the loop can record (steps plus
    // shard spans at the plan's thread count) — a profile with
    // dropped spans would silently under-attribute.
    size_t cap = static_cast<size_t>(iters) *
                 static_cast<size_t>(ex.numSteps()) *
                 static_cast<size_t>(1 + ex.numThreads());
    ex.armTrace(cap);

    int64_t w0 = traceNowNs();
    for (int i = 0; i < iters; ++i)
        ex.run();
    int64_t wallNs = traceNowNs() - w0;

    ProfileReport pr = profileTrace(ex, *ex.trace());
    std::printf("%s\n", pr.table().c_str());
    if (pr.kernelFallbacks > 0)
        std::printf("kernel fallbacks: %d -> %s\n", pr.kernelFallbacks,
                    pr.fallbackBreakdown.c_str());
    double coverage =
        wallNs > 0 ? static_cast<double>(pr.totalNs) /
                         static_cast<double>(wallNs)
                   : 0;
    std::printf("coverage: spans explain %.1f%% of %.3f ms measured "
                "wall (%d iters)\n",
                100.0 * coverage, wallNs / 1e6, iters);
    if (!chromeOut.empty()) {
        if (!exportChromeTrace(chromeOut, ex, *ex.trace())) {
            std::fprintf(stderr, "plan_tool: cannot write %s\n",
                        chromeOut.c_str());
            return 1;
        }
        std::printf("chrome trace: %s (load in chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    chromeOut.c_str());
    }
    return 0;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  plan_tool compile --model mlp|mcunet --precision "
        "fp32|fp16|int8 [--batch N] [--res N] [--threads N] -o FILE\n"
        "  plan_tool inspect FILE\n"
        "  plan_tool run FILE [--seed N] [--verify]\n"
        "  plan_tool profile FILE [--iters N] [--seed N] "
        "[--chrome OUT.json]\n");
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            usage();
        std::string cmd = argv[1];
        std::vector<std::string> args(argv + 2, argv + argc);
        auto value = [&](size_t &i) -> std::string {
            if (i + 1 >= args.size())
                usage();
            return args[++i];
        };

        if (cmd == "compile") {
            Recipe r;
            std::string out;
            for (size_t i = 0; i < args.size(); ++i) {
                if (args[i] == "--model")
                    r.model = value(i);
                else if (args[i] == "--precision")
                    r.precision = parsePrecision(value(i));
                else if (args[i] == "--batch")
                    r.batch = std::stoll(value(i));
                else if (args[i] == "--res")
                    r.res = std::stoll(value(i));
                else if (args[i] == "--threads")
                    r.threads = std::stoi(value(i));
                else if (args[i] == "-o" || args[i] == "--out")
                    out = value(i);
                else
                    usage();
            }
            if (out.empty())
                usage();
            return cmdCompile(r, out);
        }
        if (cmd == "inspect") {
            if (args.size() != 1)
                usage();
            return cmdInspect(args[0]);
        }
        if (cmd == "run") {
            std::string path;
            uint64_t seed = 123;
            bool verify = false;
            for (size_t i = 0; i < args.size(); ++i) {
                if (args[i] == "--seed")
                    seed = std::stoull(value(i));
                else if (args[i] == "--verify")
                    verify = true;
                else if (path.empty())
                    path = args[i];
                else
                    usage();
            }
            if (path.empty())
                usage();
            return cmdRun(path, seed, verify);
        }
        if (cmd == "profile") {
            std::string path, chromeOut;
            int iters = 50;
            uint64_t seed = 123;
            for (size_t i = 0; i < args.size(); ++i) {
                if (args[i] == "--iters")
                    iters = std::stoi(value(i));
                else if (args[i] == "--seed")
                    seed = std::stoull(value(i));
                else if (args[i] == "--chrome")
                    chromeOut = value(i);
                else if (path.empty())
                    path = args[i];
                else
                    usage();
            }
            if (path.empty() || iters < 1)
                usage();
            return cmdProfile(path, iters, seed, chromeOut);
        }
        usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "plan_tool: %s\n", e.what());
        return 1;
    }
}
