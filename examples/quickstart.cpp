/**
 * @file
 * Quickstart: define a model with the builder frontend, compile a
 * training program with a sparse update scheme, train, and deploy
 * the same weights through an inference program.
 *
 *   cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "engine/engine.h"
#include "data/synthetic.h"
#include "frontend/builder.h"
#include "obs/profile.h"

using namespace pe;

int
main()
{
    // 1. Define a forward graph with the builder frontend (any DAG
    //    source works — see ir/serialize.h for the JSON interchange).
    Graph g;
    Rng rng(42);
    auto store = std::make_shared<ParamStore>();
    NetBuilder b(g, rng, store.get());

    int x = b.input({32, 16}, "x");
    int h = b.relu(b.linear(x, 64, "fc1"));
    h = b.relu(b.linear(h, 64, "fc2"));
    int logits = b.linear(h, 4, "head");
    int labels = b.input({32}, "y");
    int loss = b.crossEntropy(logits, labels);

    // 2. Choose what trains. Freeze fc1 entirely, train fc2's bias
    //    and the head — a sparse backpropagation scheme. At compile
    //    time the engine prunes fc1's backward subgraph away.
    SparseUpdateScheme scheme = SparseUpdateScheme::frozen();
    scheme.updateBiasPrefix("fc2.");
    scheme.updatePrefix("head.");
    scheme.updateBiasPrefix("head.");

    CompileOptions opt;
    opt.optim = OptimConfig::adam(0.01);
    auto prog = compileTraining(g, loss, scheme, opt, store);

    std::printf("compiled: %d fwd nodes, %d bwd nodes emitted, %d "
                "pruned, %d fusions, arena %lld KB (natural order "
                "would need %lld KB)\n",
                prog.report().forwardNodes, prog.report().backwardNodes,
                prog.report().prunedNodes, prog.report().fusions,
                static_cast<long long>(prog.report().arenaBytes / 1024),
                static_cast<long long>(
                    prog.report().arenaBytesNoReorder / 1024));
    // Arm execution tracing (src/obs/) on the training program: every
    // trainStep records one span per kernel step, and the profile
    // summary printed after the loop attributes the time — including
    // any kernel fallbacks, which on a real device are deploy
    // blockers (a quantized op with no int8 kernel silently runs the
    // dequant->fp32->requant reference tier).
    prog.executor().armTrace();

    // 3. Train on a toy task: class = argmax of 4 feature groups.
    Rng data_rng(7);
    auto make_batch = [&] {
        Batch batch{Tensor({32, 16}), Tensor({32})};
        for (int i = 0; i < 32; ++i) {
            int cls = static_cast<int>(data_rng.randint(4));
            for (int j = 0; j < 16; ++j) {
                batch.x[i * 16 + j] = data_rng.normal() +
                                      (j / 4 == cls ? 1.5f : 0.0f);
            }
            batch.y[i] = static_cast<float>(cls);
        }
        return batch;
    };

    for (int step = 0; step < 200; ++step) {
        Batch batch = make_batch();
        float l = prog.trainStep({{"x", batch.x}, {"y", batch.y}});
        if (step % 40 == 0)
            std::printf("step %3d  loss %.4f\n", step, l);
    }
    std::printf("--- training profile ---\n%s",
                profileTrace(prog.executor(), *prog.executor().trace())
                    .summary()
                    .c_str());

    // 4. Deploy: an inference program over the same ParamStore, with
    //    tracing armed so the eval run prints where its time went.
    auto infer = compileInference(g, {logits}, opt, store);
    infer.executor().armTrace();
    Batch batch = make_batch();
    Tensor out = infer.run({{"x", batch.x}})[0];
    int correct = 0;
    for (int i = 0; i < 32; ++i) {
        int argmax = 0;
        for (int c = 1; c < 4; ++c) {
            if (out[i * 4 + c] > out[i * 4 + argmax])
                argmax = c;
        }
        correct += argmax == static_cast<int>(batch.y[i]);
    }
    std::printf("eval accuracy: %d/32\n", correct);
    std::printf("--- inference profile ---\n%s",
                profileTrace(infer.executor(),
                             *infer.executor().trace())
                    .summary()
                    .c_str());
    return 0;
}
