/**
 * @file
 * On-device vision transfer learning (the paper's motivating
 * scenario): pretrain MobileNetV2 on the source distribution, then
 * adapt to a shifted downstream task on-device with the Section 4.1
 * sparse scheme, comparing cost and accuracy against full
 * backpropagation.
 *
 *   ./build/examples/vision_transfer [task]   (default: pets)
 */

#include <cstdio>
#include <string>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/models.h"
#include "obs/profile.h"
#include "quant/quant.h"

using namespace pe;

namespace {

std::shared_ptr<ParamStore>
bodyOf(const ParamStore &pretrained)
{
    auto out = std::make_shared<ParamStore>();
    for (const auto &[name, t] : pretrained.all()) {
        if (name.rfind("head.", 0) != 0 &&
            name.find(".apply") == std::string::npos) {
            out->set(name, t.clone());
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string task_name = argc > 1 ? argv[1] : "pets";

    VisionConfig cfg;
    cfg.batch = 8;
    cfg.resolution = 16;
    cfg.width = 0.4;
    cfg.blocks = 6;

    // ---- pretrain on the source distribution ------------------------
    Rng rng(1);
    SyntheticVision source = SyntheticVision::pretrain(3, 16);
    cfg.numClasses = source.classes();
    auto pre_store = std::make_shared<ParamStore>();
    ModelSpec pre = buildMobileNetV2(cfg, rng, pre_store.get());
    CompileOptions opt;
    opt.optim = OptimConfig::adam(0.004);
    {
        auto prog = compileTraining(pre.graph, pre.loss,
                                    SparseUpdateScheme::full(), opt,
                                    pre_store);
        Rng r(2);
        for (int s = 0; s < 200; ++s) {
            Batch b = source.sample(cfg.batch, r);
            prog.trainStep({{"x", b.x}, {"y", b.y}});
        }
    }
    std::printf("pretrained MobileNetV2 proxy (%d blocks)\n",
                pre.numBlocks);

    // ---- adapt on-device to the downstream shift ---------------------
    SyntheticVision task = SyntheticVision::task(task_name, 3, 16);
    cfg.numClasses = task.classes();

    for (bool use_sparse : {false, true}) {
        auto store = bodyOf(*pre_store);
        Rng mr(3);
        ModelSpec m = buildMobileNetV2(cfg, mr, store.get());
        SparseUpdateScheme scheme =
            use_sparse ? cnnSparseScheme(m, 3, 3)
                       : SparseUpdateScheme::full();
        auto prog = compileTraining(m.graph, m.loss, scheme, opt,
                                    store);
        Rng r(4);
        float loss = 0;
        for (int s = 0; s < 120; ++s) {
            Batch b = task.sample(cfg.batch, r);
            loss = prog.trainStep({{"x", b.x}, {"y", b.y}});
        }
        auto infer = compileInference(m.graph, {m.logits}, opt, store);
        int64_t correct = 0, total = 0;
        for (int e = 0; e < 12; ++e) {
            Batch b = task.sample(cfg.batch, r);
            Tensor logits = infer.run({{"x", b.x}})[0];
            for (int64_t i = 0; i < cfg.batch; ++i) {
                int64_t am = 0;
                for (int64_t c = 1; c < cfg.numClasses; ++c) {
                    if (logits[i * cfg.numClasses + c] >
                        logits[i * cfg.numClasses + am])
                        am = c;
                }
                ++total;
                correct += am == static_cast<int64_t>(b.y[i]);
            }
        }
        std::printf("[%s] task=%s  final-loss %.3f  acc %.1f%%  "
                    "flops/step %.1fM  activation-arena %lld KB\n",
                    use_sparse ? "sparse-bp" : "full-bp",
                    task_name.c_str(), loss,
                    100.0 * correct / total,
                    prog.report().flopsPerStep / 1e6,
                    static_cast<long long>(
                        prog.report().arenaBytes / 1024));
    }

    // ---- deploy quantized: calibrate, compile int8, compare --------
    {
        auto store = bodyOf(*pre_store);
        Rng mr(3);
        ModelSpec m = buildMobileNetV2(cfg, mr, store.get());
        Rng cr(9);
        std::vector<std::unordered_map<std::string, Tensor>> calib;
        for (int i = 0; i < 4; ++i)
            calib.push_back({{"x", task.sample(cfg.batch, cr).x}});
        calibrate(m.graph, *store, calib);
        CompileOptions qopt;
        qopt.precision = Precision::Int8;
        auto fp32 = compileInference(m.graph, {m.logits}, opt, store);
        auto int8 = compileInference(m.graph, {m.logits}, qopt, store);
        const CompileReport &rf = fp32.report();
        const CompileReport &rq = int8.report();
        std::printf("[int8 deploy] act+weight %lld KB vs fp32 %lld KB "
                    "(%.2fx), %d ops quantized, %d weights baked to "
                    "i8 consts\n",
                    static_cast<long long>(rq.actWeightBytes() / 1024),
                    static_cast<long long>(rf.actWeightBytes() / 1024),
                    static_cast<double>(rq.actWeightBytes()) /
                        static_cast<double>(rf.actWeightBytes()),
                    rq.quant.quantizedOps,
                    rq.quant.prequantizedWeights);
        // Profile a traced int8 run (src/obs/): the summary names the
        // top ops by time AND any kernel fallbacks — quantized ops
        // with no int8 kernel silently run the dequant->fp32->requant
        // reference tier, and the per-op breakdown makes that gap
        // attributable instead of an opaque count.
        int8.executor().armTrace();
        Rng sr(21);
        for (int i = 0; i < 5; ++i)
            int8.run({{"x", task.sample(cfg.batch, sr).x}});
        std::printf("--- int8 deploy profile ---\n%s",
                    profileTrace(int8.executor(),
                                 *int8.executor().trace())
                        .summary()
                        .c_str());
    }
    return 0;
}
