/**
 * @file
 * Section 5 scenario: instruction-tuning a LLaMA-style chatbot
 * on-device. Fine-tunes a reduced decoder on the synthetic
 * instruction corpus with the paper's sparse scheme (biases +
 * attention/fc1 weights of the last blocks, frozen norms), then
 * greedily decodes a reply to show the tuned behaviour.
 */

#include <cstdio>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/models.h"

using namespace pe;

int
main()
{
    LlamaConfig cfg;
    cfg.batch = 2;
    cfg.seqLen = 16;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.ffDim = 88;
    cfg.layers = 3;

    Rng rng(21);
    auto store = std::make_shared<ParamStore>();
    ModelSpec m = buildLlama(cfg, rng, store.get());
    InstructionTask task(99, 8, cfg.vocab, cfg.seqLen);

    // Paper Section 5: sparse scheme + Lion optimizer, frozen norms,
    // gradient accumulated over micro-batches.
    SparseUpdateScheme scheme = transformerSparseScheme(m, 2, 2);
    CompileOptions opt;
    opt.optim = OptimConfig::lion(0.002);
    opt.gradAccumSteps = 4;
    auto prog = compileTraining(m.graph, m.loss, scheme, opt, store);
    std::printf("compiled chatbot trainer: %d kernel steps/iter, "
                "arena %lld KB, %d trainable tensors\n",
                prog.report().kernelSteps,
                static_cast<long long>(prog.report().arenaBytes / 1024),
                prog.report().trainableTensors);

    Rng r(5);
    for (int s = 0; s < 600; ++s) {
        Batch b = task.sample(cfg.batch, r);
        float loss = prog.trainStep({{"x", b.x}, {"y", b.y}});
        if (s % 120 == 0)
            std::printf("iter %3d  loss %.4f\n", s, loss);
    }

    // Evaluate the win-rate proxy and decode one reply greedily.
    auto infer = compileInference(m.graph, {m.logits}, opt, store);
    Batch b = task.sample(cfg.batch, r);
    Tensor logits = infer.run({{"x", b.x}})[0];
    std::printf("reply exact-match (win-rate proxy): %.1f%%\n",
                100.0 * task.exactMatch(logits, b));

    std::printf("greedy next-token decode of sample 0:\n  input : ");
    for (int64_t i = 0; i < cfg.seqLen; ++i)
        std::printf("%d ", static_cast<int>(b.x[i]));
    std::printf("\n  pred  : ");
    for (int64_t i = 0; i < cfg.seqLen; ++i) {
        const float *row = logits.data() + i * cfg.vocab;
        int64_t am = 0;
        for (int64_t v = 1; v < cfg.vocab; ++v) {
            if (row[v] > row[am])
                am = v;
        }
        std::printf("%d ", static_cast<int>(am));
    }
    std::printf("\n  target: ");
    for (int64_t i = 0; i < cfg.seqLen; ++i)
        std::printf("%d ", static_cast<int>(b.y[i]));
    std::printf("\n");
    return 0;
}
