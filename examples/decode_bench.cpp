/**
 * @file
 * Generative-serving demo: N concurrent decode streams through the
 * KV-cached ServingEngine, against each stream decoding alone.
 *
 * The scenario is the transformer-serving shape the ROADMAP names:
 * every stream prefills a prompt once (one prompt-bucket run whose
 * CacheWrite values leave the keys/values in the stream's cache),
 * then advances token by token through the single-token decode plan.
 * Incremental decode re-uses the cached rows, so a decode step costs
 * O(1) attention work instead of the prompt-quadratic prefill — and
 * because streams in lockstep carry the same cache generation, the
 * coalescer packs their single-token steps into shared bucket runs,
 * bit-identical to each stream decoding alone.
 *
 * Measured per precision (fp32 and int8):
 *  - decode-parity: every logit tensor of every stream/step compared
 *    BIT FOR BIT against the serial (coalescing-off) reference
 *    through the same bucket plans;
 *  - run sharing: N x T decode requests vs the decode-bucket runs
 *    that actually executed (the >= 2x acceptance bar at 4 streams);
 *  - prefill-vs-decode amortized cost per token (from the engine's
 *    per-bucket run-time accumulators; wall-clock-dependent, NOT
 *    gated) and the cache bytes a session pins (machine-independent,
 *    gated).
 *
 *   ./build/decode_bench [tokens-per-stream]   (default: 8)
 *   ./build/decode_bench --json BENCH_decode.json
 *       runs the deterministic multi-stream scenarios and writes the
 *       rows scripts/bench_json.sh snapshots and
 *       scripts/bench_check.py gates.
 *   ./build/decode_bench --trace OUT.json
 *       runs the coalesced fp32 scenario with lifecycle tracing armed
 *       and exports a Chrome/Perfetto trace: N request lanes per step
 *       converge into one shared decode-run span (each lane stamped
 *       with its stream id and generation). Exits 0 only if at least
 *       one run served >= 2 streams.
 *
 * The llama_proxy_fused scenario serves a multi-head config (4 heads
 * of 32, dim 128) end to end with the FusedAttention rewrite on, and
 * adds the fused-attention gates: logits within 1e-5 of the unfused
 * serial reference, attention-stage us/step >= 1.5x faster fused than
 * unfused, and the fused decode plan's peak-live strictly below the
 * unfused plan's.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "../bench/bench_common.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "serve/serving.h"

using namespace pe;

namespace {

DecoderConfig
benchCfg()
{
    DecoderConfig cfg; // the header defaults: 2 layers, dim 32
    cfg.maxSeq = 32;
    return cfg;
}

/** LLaMA-proxy decode config: the multi-head shape the fused-attention
 *  gates run at (4 heads of 32; per-head decode attention is
 *  [streams*4, 1, 32] q against a [streams*4, 32, 32] cached K/V). */
DecoderConfig
llamaProxyCfg()
{
    return DecoderConfig{}
        .withDim(128)
        .withHeads(4)
        .withFfDim(256)
        .withMaxSeq(32);
}

Tensor
tokenRows(const std::vector<float> &toks)
{
    Tensor t({static_cast<int64_t>(toks.size()), 1});
    for (size_t i = 0; i < toks.size(); ++i)
        t[static_cast<int64_t>(i)] = toks[i];
    return t;
}

std::vector<std::unordered_map<std::string, Tensor>>
calibFeeds(const DecoderConfig &cfg)
{
    Rng r(11);
    std::vector<std::unordered_map<std::string, Tensor>> out;
    for (int bi = 0; bi < 2; ++bi) {
        const int64_t gen = 8 + bi;
        std::vector<float> toks;
        for (int i = 0; i < 8; ++i)
            toks.push_back(static_cast<float>(r.randint(cfg.vocab)));
        Tensor pos({8, 1});
        Tensor mask({8, cfg.maxSeq});
        for (int64_t i = 0; i < 8; ++i) {
            pos[i] = static_cast<float>(gen);
            for (int64_t j = 0; j < cfg.maxSeq; ++j)
                mask[i * cfg.maxSeq + j] = j <= gen ? 0.0f : -1e30f;
        }
        out.push_back({{"x", tokenRows(toks)},
                       {"pos", std::move(pos)},
                       {"mask", std::move(mask)}});
    }
    return out;
}

/** Prompt bucket {8}, decode bucket {4}: solo decode steps pad to the
 *  SAME bucket-4 plan shared runs use, so fp32 AND int8 parity are
 *  exact (quantization error is deterministic through one plan). */
std::unique_ptr<ServingEngine>
makeEngine(const std::shared_ptr<ParamStore> &store, int64_t window_us,
           int workers, Precision prec, const DecoderConfig &cfg,
           bool fuse_attention = true, bool trace = false)
{
    ServeOptions so = ServeOptions{}
                          .withBuckets({8})
                          .withDecodeBuckets({4})
                          .withWorkers(workers)
                          .withCoalesceWindow(window_us)
                          .withQueueCapacity(64);
    so.compile.precision = prec;
    so.compile.fuseAttention = fuse_attention;
    so.trace = trace;
    if (prec != Precision::F32)
        so.calibration = calibFeeds(cfg);
    so.decodeFactory = [store, cfg](int64_t streams) {
        Rng r(7);
        ModelSpec m = buildDecoderDecode(cfg, streams, r, store.get());
        return ServedModel{std::move(m.graph), {m.logits}};
    };
    return std::make_unique<ServingEngine>(
        [store, cfg](int64_t prompt) {
            Rng r(7);
            ModelSpec m =
                buildDecoderPrefill(cfg, prompt, r, store.get());
            return ServedModel{std::move(m.graph), {m.logits}};
        },
        store, so);
}

struct StreamPlan {
    std::vector<std::vector<float>> prompts; ///< per stream, 8 tokens
    std::vector<std::vector<float>> next;    ///< per stream, T tokens
};

StreamPlan
makeTraffic(const DecoderConfig &cfg, int streams, int64_t tokens)
{
    Rng r(97);
    StreamPlan p;
    p.prompts.resize(streams);
    p.next.resize(streams);
    for (int s = 0; s < streams; ++s) {
        for (int i = 0; i < 8; ++i)
            p.prompts[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
        for (int64_t t = 0; t < tokens; ++t)
            p.next[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
    }
    return p;
}

/** Drive every stream through prefill + T decode steps in lockstep;
 *  returns all logits, [stream][0] = prefill, [stream][1 + t]. */
std::vector<std::vector<Tensor>>
driveStreams(ServingEngine &e, const StreamPlan &p, int64_t tokens)
{
    const int streams = static_cast<int>(p.prompts.size());
    std::vector<ServingEngine::StreamId> sids(streams);
    std::vector<ServingEngine::RequestId> rids(streams);
    std::vector<std::vector<Tensor>> out(streams);
    for (int s = 0; s < streams; ++s)
        sids[s] = e.openStream();
    for (int s = 0; s < streams; ++s)
        rids[s] = e.submitPrefill(sids[s],
                                  {{"x", tokenRows(p.prompts[s])}});
    for (int s = 0; s < streams; ++s)
        out[s].push_back(e.wait(rids[s])[0]);
    for (int64_t t = 0; t < tokens; ++t) {
        for (int s = 0; s < streams; ++s)
            rids[s] = e.submitDecode(
                sids[s], {{"x", tokenRows({p.next[s][t]})}});
        for (int s = 0; s < streams; ++s)
            out[s].push_back(e.wait(rids[s])[0]);
    }
    for (int s = 0; s < streams; ++s)
        e.closeStream(sids[s]);
    return out;
}

struct DecodeRow {
    std::string scenario;
    int64_t streams = 0;
    int64_t promptLen = 8;
    int64_t tokens = 0;
    bool parity = true;
    int64_t decodeRequests = 0;
    int64_t runsSolo = 0, runsCoalesced = 0;
    double runReduction = 0;
    double coalesceRate = 0;
    int64_t cacheBytesPerSession = 0;
    double prefillUsPerToken = 0; ///< wall-clock, informational
    double decodeUsPerTokenSolo = 0;
    double decodeUsPerTokenShared = 0;

    // Fused-attention columns; emitted (and gated) only when
    // fusedAttention >= 0 (the llama_proxy_fused scenario).
    int64_t heads = 0;
    int fusedAttention = -1;
    int parityVsUnfused1e5 = -1; ///< fused within 1e-5 of unfused
    double attnUsFused = 0;      ///< attention stage, us per decode step
    double attnUsUnfused = 0;
    double attnSpeedup = 0;         ///< unfused / fused; gate >= 1.5
    int64_t peakLiveFused = 0;      ///< decode plan peak-live bytes
    int64_t peakLiveUnfused = 0;    ///< gate: fused strictly below
};

void
bucketCost(const ServeStats &st, bool decode, int64_t &hits,
           int64_t &runs, int64_t &runNs)
{
    hits = runs = runNs = 0;
    for (const BucketStats &b : st.buckets) {
        if (b.decode != decode)
            continue;
        hits += b.hits;
        runs += b.runs;
        runNs += b.runNs;
    }
}

DecodeRow
runScenario(const std::string &scenario, Precision prec, int streams,
            int64_t tokens, const DecoderConfig &cfg)
{
    const StreamPlan traffic = makeTraffic(cfg, streams, tokens);
    DecodeRow row;
    row.scenario = scenario;
    row.streams = streams;
    row.tokens = tokens;
    row.decodeRequests = static_cast<int64_t>(streams) * tokens;

    // Serial reference: one stream at a time, coalescing off.
    auto soloStore = std::make_shared<ParamStore>();
    auto solo = makeEngine(soloStore, 0, 1, prec, cfg);
    std::vector<std::vector<Tensor>> ref(streams);
    for (int s = 0; s < streams; ++s) {
        StreamPlan one;
        one.prompts = {traffic.prompts[s]};
        one.next = {traffic.next[s]};
        ref[s] = driveStreams(*solo, one, tokens)[0];
    }

    // Coalesced: all streams in lockstep share decode-bucket runs.
    auto store = std::make_shared<ParamStore>();
    auto eng = makeEngine(store, 20000, 1, prec, cfg);
    std::vector<std::vector<Tensor>> got =
        driveStreams(*eng, traffic, tokens);

    for (int s = 0; s < streams; ++s)
        for (size_t i = 0; i < got[s].size(); ++i)
            row.parity = row.parity &&
                         ref[s][i].shape() == got[s][i].shape() &&
                         std::memcmp(ref[s][i].data(), got[s][i].data(),
                                     sizeof(float) *
                                         ref[s][i].size()) == 0;

    ServeStats ss = solo->stats(), cs = eng->stats();
    int64_t hits = 0, runs = 0, runNs = 0;
    bucketCost(ss, true, hits, runs, runNs);
    row.runsSolo = runs;
    row.decodeUsPerTokenSolo =
        hits > 0 ? static_cast<double>(runNs) / hits / 1e3 : 0;
    bucketCost(cs, true, hits, runs, runNs);
    row.runsCoalesced = runs;
    row.decodeUsPerTokenShared =
        hits > 0 ? static_cast<double>(runNs) / hits / 1e3 : 0;
    row.runReduction =
        row.runsCoalesced > 0
            ? static_cast<double>(row.runsSolo) / row.runsCoalesced
            : 0;
    row.coalesceRate = cs.coalesceRate;
    row.cacheBytesPerSession = eng->streamCacheBytes();
    bucketCost(cs, false, hits, runs, runNs);
    row.prefillUsPerToken =
        hits > 0 ? static_cast<double>(runNs) / (hits * row.promptLen) /
                       1e3
                 : 0;
    return row;
}

/**
 * Attention-stage microbench: the standalone decode attention
 * subgraph — q [B,1,Dh] against the cached K/V [B,M,Dh] with the
 * per-stream mask row, B = decode-bucket streams x heads — compiled
 * with the fusion pass on or off and timed through the bound
 * executor. This is the per-step cost of exactly the ops the
 * FusedAttention rewrite collapses, so fused/unfused is the
 * fusion speedup with the rest of the layer held constant.
 */
double
attnStageUsPerStep(const DecoderConfig &cfg, int64_t streams,
                   bool fused)
{
    const int64_t B = streams * cfg.heads;
    const int64_t M = cfg.maxSeq;
    const int64_t Dh = cfg.dim / cfg.heads;
    auto store = std::make_shared<ParamStore>();
    Graph g;
    Rng rng(5);
    NetBuilder b(g, rng, store.get());
    int q = b.input({B, 1, Dh}, "q");
    int k = b.input({B, M, Dh}, "k");
    int v = b.input({B, M, Dh}, "v");
    int m = b.input({B, 1, M}, "mask");
    Attrs tb;
    tb.set("transB", static_cast<int64_t>(1));
    int scores = g.add(OpKind::BatchMatMul, {q, k}, std::move(tb));
    scores = b.scale(scores, 1.0 / std::sqrt(static_cast<double>(Dh)));
    scores = b.add(scores, m);
    int ctx = g.add(OpKind::BatchMatMul, {b.softmax(scores), v});
    g.markOutput(ctx);
    CompileOptions opt;
    opt.fuseAttention = fused;
    CompiledGraph c = compileInferenceGraph(g, {ctx}, opt, store);
    ExecOptions eo;
    eo.variants = std::move(c.variants);
    InferenceProgram prog(std::move(c.graph), store, std::move(eo),
                          std::move(c.report), std::move(c.order));

    Rng vr(11);
    Tensor qt({B, 1, Dh}), kt({B, M, Dh}), vt({B, M, Dh});
    Tensor mt = Tensor::zeros({B, 1, M});
    for (int64_t i = 0; i < qt.size(); ++i)
        qt[i] = vr.uniform(-1.0f, 1.0f);
    for (int64_t i = 0; i < kt.size(); ++i)
        kt[i] = vr.uniform(-1.0f, 1.0f);
    for (int64_t i = 0; i < vt.size(); ++i)
        vt[i] = vr.uniform(-1.0f, 1.0f);
    std::unordered_map<std::string, Tensor> feeds = {
        {"q", qt}, {"k", kt}, {"v", vt}, {"mask", mt}};
    const int iters = 1500;
    for (int i = 0; i < 50; ++i)
        prog.run(feeds);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        prog.run(feeds);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() /
           iters;
}

/** Every fused logit within 1e-5 (relative, floored at 1) of the
 *  unfused reference. */
bool
within1e5(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        return false;
    for (int64_t i = 0; i < a.size(); ++i) {
        double scale = std::max(
            1.0, std::max(std::abs(static_cast<double>(a[i])),
                          std::abs(static_cast<double>(b[i]))));
        if (std::abs(static_cast<double>(a[i]) -
                     static_cast<double>(b[i])) > 1e-5 * scale)
            return false;
    }
    return true;
}

/**
 * The fused-attention acceptance scenario: the LLaMA-proxy config
 * (heads >= 2) served end to end with the FusedAttention rewrite.
 * Bit parity is fused-coalesced vs fused-serial (the decode_stream
 * contract); the 1e-5 column compares the fused serial run against a
 * second engine compiled with the fusion pass OFF, so the rewrite
 * itself is what is being bounded. Peak-live comes from the two
 * engines' decode-bucket compile reports.
 */
DecodeRow
runLlamaScenario(int64_t tokens)
{
    const DecoderConfig cfg = llamaProxyCfg();
    const int streams = 4;
    const StreamPlan traffic = makeTraffic(cfg, streams, tokens);
    DecodeRow row;
    row.scenario = "llama_proxy_fused";
    row.streams = streams;
    row.tokens = tokens;
    row.decodeRequests = static_cast<int64_t>(streams) * tokens;
    row.heads = cfg.heads;
    row.fusedAttention = 1;

    // Unfused serial reference: fusion pass off end to end.
    auto ustore = std::make_shared<ParamStore>();
    auto unfused =
        makeEngine(ustore, 0, 1, Precision::F32, cfg, false);
    std::vector<std::vector<Tensor>> refU(streams);
    for (int s = 0; s < streams; ++s) {
        StreamPlan one;
        one.prompts = {traffic.prompts[s]};
        one.next = {traffic.next[s]};
        refU[s] = driveStreams(*unfused, one, tokens)[0];
    }

    // Fused serial: the bit reference for shared runs.
    auto sstore = std::make_shared<ParamStore>();
    auto solo = makeEngine(sstore, 0, 1, Precision::F32, cfg);
    std::vector<std::vector<Tensor>> refF(streams);
    for (int s = 0; s < streams; ++s) {
        StreamPlan one;
        one.prompts = {traffic.prompts[s]};
        one.next = {traffic.next[s]};
        refF[s] = driveStreams(*solo, one, tokens)[0];
    }

    // Fused coalesced: lockstep streams share decode-bucket runs.
    auto store = std::make_shared<ParamStore>();
    auto eng = makeEngine(store, 20000, 1, Precision::F32, cfg);
    std::vector<std::vector<Tensor>> got =
        driveStreams(*eng, traffic, tokens);

    row.parityVsUnfused1e5 = 1;
    for (int s = 0; s < streams; ++s) {
        for (size_t i = 0; i < got[s].size(); ++i) {
            row.parity =
                row.parity &&
                refF[s][i].shape() == got[s][i].shape() &&
                std::memcmp(refF[s][i].data(), got[s][i].data(),
                            sizeof(float) * refF[s][i].size()) == 0;
            if (!within1e5(refF[s][i], refU[s][i]))
                row.parityVsUnfused1e5 = 0;
        }
    }

    ServeStats ss = solo->stats(), cs = eng->stats();
    int64_t hits = 0, runs = 0, runNs = 0;
    bucketCost(ss, true, hits, runs, runNs);
    row.runsSolo = runs;
    row.decodeUsPerTokenSolo =
        hits > 0 ? static_cast<double>(runNs) / hits / 1e3 : 0;
    bucketCost(cs, true, hits, runs, runNs);
    row.runsCoalesced = runs;
    row.decodeUsPerTokenShared =
        hits > 0 ? static_cast<double>(runNs) / hits / 1e3 : 0;
    row.runReduction =
        row.runsCoalesced > 0
            ? static_cast<double>(row.runsSolo) / row.runsCoalesced
            : 0;
    row.coalesceRate = cs.coalesceRate;
    row.cacheBytesPerSession = eng->streamCacheBytes();
    bucketCost(cs, false, hits, runs, runNs);
    row.prefillUsPerToken =
        hits > 0 ? static_cast<double>(runNs) / (hits * row.promptLen) /
                       1e3
                 : 0;

    // Decode-bucket (batch 4) planned peak-live, fused vs unfused.
    row.peakLiveFused = eng->bucketReport(4).peakLiveBytes;
    row.peakLiveUnfused = unfused->bucketReport(4).peakLiveBytes;

    row.attnUsFused = attnStageUsPerStep(cfg, 4, true);
    row.attnUsUnfused = attnStageUsPerStep(cfg, 4, false);
    row.attnSpeedup =
        row.attnUsFused > 0 ? row.attnUsUnfused / row.attnUsFused : 0;
    return row;
}

void
printRows(const std::vector<DecodeRow> &rows)
{
    std::printf("\n=== incremental decode (shared bucket runs) ===\n");
    for (const DecodeRow &r : rows) {
        std::printf(
            "%-12s: %lld streams x %lld tokens | decode runs %lld -> "
            "%lld (%.1fx fewer) | rate %.2f | prefill %.1f us/tok, "
            "decode %.1f -> %.1f us/tok | cache %lld KB/session | "
            "parity %s\n",
            r.scenario.c_str(), static_cast<long long>(r.streams),
            static_cast<long long>(r.tokens),
            static_cast<long long>(r.runsSolo),
            static_cast<long long>(r.runsCoalesced), r.runReduction,
            r.coalesceRate, r.prefillUsPerToken,
            r.decodeUsPerTokenSolo, r.decodeUsPerTokenShared,
            static_cast<long long>(r.cacheBytesPerSession / 1024),
            r.parity ? "EXACT" : "BROKEN");
        if (r.fusedAttention >= 0) {
            std::printf(
                "  fused attention (%lld heads): vs unfused 1e-5 %s | "
                "attn stage %.2f -> %.2f us/step (%.2fx) | decode "
                "peak-live %lld -> %lld bytes\n",
                static_cast<long long>(r.heads),
                r.parityVsUnfused1e5 == 1 ? "OK" : "BROKEN",
                r.attnUsUnfused, r.attnUsFused, r.attnSpeedup,
                static_cast<long long>(r.peakLiveUnfused),
                static_cast<long long>(r.peakLiveFused));
        }
    }
}

/** BENCH_decode.json rows. Gated fields (parity, run counts, cache
 *  bytes) are machine-independent; the us/token columns are
 *  informational wall-clock. */
bool
saveRows(const std::vector<DecodeRow> &rows, const std::string &path)
{
    pe::bench::JsonRows json;
    for (const DecodeRow &r : rows) {
        json.begin("decode_stream");
        json.field("scenario", r.scenario);
#ifdef NDEBUG
        json.field("build_type", "release");
#else
        json.field("build_type", "debug");
#endif
        json.field("streams", r.streams);
        json.field("prompt_len", r.promptLen);
        json.field("tokens_per_stream", r.tokens);
        json.field("decode_requests", r.decodeRequests);
        json.field("runs_solo", r.runsSolo);
        json.field("runs_coalesced", r.runsCoalesced);
        json.field("run_reduction", r.runReduction);
        json.field("coalesce_rate", r.coalesceRate);
        json.field("cache_bytes_per_session", r.cacheBytesPerSession);
        json.field("prefill_us_per_token", r.prefillUsPerToken);
        json.field("decode_us_per_token_solo", r.decodeUsPerTokenSolo);
        json.field("decode_us_per_token_shared",
                   r.decodeUsPerTokenShared);
        json.field("parity", static_cast<int64_t>(r.parity ? 1 : 0));
        if (r.fusedAttention >= 0) {
            json.field("heads", r.heads);
            json.field("fused_attention",
                       static_cast<int64_t>(r.fusedAttention));
            json.field("parity_vs_unfused_1e5",
                       static_cast<int64_t>(r.parityVsUnfused1e5));
            json.field("attn_us_per_step_fused", r.attnUsFused);
            json.field("attn_us_per_step_unfused", r.attnUsUnfused);
            json.field("attn_fused_speedup", r.attnSpeedup);
            json.field("peak_live_fused_bytes", r.peakLiveFused);
            json.field("peak_live_unfused_bytes", r.peakLiveUnfused);
        }
    }
    return json.save(path);
}

} // namespace

int
main(int argc, char **argv)
{
    // --trace <path>: traced coalesced decode -> Chrome trace whose
    // request lanes (stamped stream/gen) converge into shared runs.
    std::string tracePath;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            tracePath = argv[i + 1];
    }
    if (!tracePath.empty()) {
        auto store = std::make_shared<ParamStore>();
        auto eng = makeEngine(store, 20000, 1, Precision::F32,
                              benchCfg(), true, true);
        driveStreams(*eng, makeTraffic(benchCfg(), 4, 8), 8);
        ServeStats s = eng->stats();
        std::printf("%s", s.summary().c_str());
        if (!eng->exportChromeTrace(tracePath)) {
            std::fprintf(stderr, "failed to write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("chrome trace: %s (load in chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    tracePath.c_str());
        std::printf("shared decode runs: %lld served >= 2 stream "
                    "lanes -> %s\n",
                    static_cast<long long>(s.coalescedRuns),
                    s.coalescedRuns >= 1 ? "OK" : "NONE");
        return s.coalescedRuns >= 1 ? 0 : 1;
    }

    const std::string jsonPath =
        pe::bench::jsonPathFromArgs(argc, argv);
    const int64_t tokens =
        jsonPath.empty() && argc > 1 ? std::atoll(argv[1]) : 8;

    std::vector<DecodeRow> rows = {
        runScenario("fp32", Precision::F32, 4, tokens, benchCfg()),
        runScenario("int8", Precision::Int8, 4, tokens, benchCfg()),
        runLlamaScenario(tokens),
    };
    printRows(rows);

    if (!jsonPath.empty()) {
        if (!saveRows(rows, jsonPath)) {
            std::fprintf(stderr, "failed to write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    for (const DecodeRow &r : rows) {
        if (!r.parity || r.runsCoalesced * 2 > r.runsSolo)
            return 1;
        if (r.fusedAttention >= 0 &&
            (r.parityVsUnfused1e5 != 1 || r.attnSpeedup < 1.5 ||
             r.peakLiveFused >= r.peakLiveUnfused))
            return 1;
    }
    return 0;
}
