/**
 * @file
 * Generative-serving demo: N concurrent decode streams through the
 * KV-cached ServingEngine, against each stream decoding alone.
 *
 * The scenario is the transformer-serving shape the ROADMAP names:
 * every stream prefills a prompt once (one prompt-bucket run whose
 * CacheWrite values leave the keys/values in the stream's cache),
 * then advances token by token through the single-token decode plan.
 * Incremental decode re-uses the cached rows, so a decode step costs
 * O(1) attention work instead of the prompt-quadratic prefill — and
 * because streams in lockstep carry the same cache generation, the
 * coalescer packs their single-token steps into shared bucket runs,
 * bit-identical to each stream decoding alone.
 *
 * Measured per precision (fp32 and int8):
 *  - decode-parity: every logit tensor of every stream/step compared
 *    BIT FOR BIT against the serial (coalescing-off) reference
 *    through the same bucket plans;
 *  - run sharing: N x T decode requests vs the decode-bucket runs
 *    that actually executed (the >= 2x acceptance bar at 4 streams);
 *  - prefill-vs-decode amortized cost per token (from the engine's
 *    per-bucket run-time accumulators; wall-clock-dependent, NOT
 *    gated) and the cache bytes a session pins (machine-independent,
 *    gated).
 *
 *   ./build/decode_bench [tokens-per-stream]   (default: 8)
 *   ./build/decode_bench --json BENCH_decode.json
 *       runs the deterministic multi-stream scenarios and writes the
 *       rows scripts/bench_json.sh snapshots and
 *       scripts/bench_check.py gates.
 *   ./build/decode_bench --trace OUT.json
 *       runs the coalesced fp32 scenario with lifecycle tracing armed
 *       and exports a Chrome/Perfetto trace: N request lanes per step
 *       converge into one shared decode-run span (each lane stamped
 *       with its stream id and generation). Exits 0 only if at least
 *       one run served >= 2 streams.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "../bench/bench_common.h"
#include "engine/engine.h"
#include "frontend/models.h"
#include "serve/serving.h"

using namespace pe;

namespace {

DecoderConfig
benchCfg()
{
    DecoderConfig cfg; // the header defaults: 2 layers, dim 32
    cfg.maxSeq = 32;
    return cfg;
}

Tensor
tokenRows(const std::vector<float> &toks)
{
    Tensor t({static_cast<int64_t>(toks.size()), 1});
    for (size_t i = 0; i < toks.size(); ++i)
        t[static_cast<int64_t>(i)] = toks[i];
    return t;
}

std::vector<std::unordered_map<std::string, Tensor>>
calibFeeds(const DecoderConfig &cfg)
{
    Rng r(11);
    std::vector<std::unordered_map<std::string, Tensor>> out;
    for (int bi = 0; bi < 2; ++bi) {
        const int64_t gen = 8 + bi;
        std::vector<float> toks;
        for (int i = 0; i < 8; ++i)
            toks.push_back(static_cast<float>(r.randint(cfg.vocab)));
        Tensor pos({8, 1});
        Tensor mask({8, cfg.maxSeq});
        for (int64_t i = 0; i < 8; ++i) {
            pos[i] = static_cast<float>(gen);
            for (int64_t j = 0; j < cfg.maxSeq; ++j)
                mask[i * cfg.maxSeq + j] = j <= gen ? 0.0f : -1e30f;
        }
        out.push_back({{"x", tokenRows(toks)},
                       {"pos", std::move(pos)},
                       {"mask", std::move(mask)}});
    }
    return out;
}

/** Prompt bucket {8}, decode bucket {4}: solo decode steps pad to the
 *  SAME bucket-4 plan shared runs use, so fp32 AND int8 parity are
 *  exact (quantization error is deterministic through one plan). */
std::unique_ptr<ServingEngine>
makeEngine(const std::shared_ptr<ParamStore> &store, int64_t window_us,
           int workers, Precision prec, bool trace = false)
{
    const DecoderConfig cfg = benchCfg();
    ServeOptions so;
    so.buckets = {8};
    so.decodeBuckets = {4};
    so.workers = workers;
    so.coalesceWindowUs = window_us;
    so.queueCapacity = 64;
    so.compile.precision = prec;
    so.trace = trace;
    if (prec != Precision::F32)
        so.calibration = calibFeeds(cfg);
    so.decodeFactory = [store, cfg](int64_t streams) {
        Rng r(7);
        ModelSpec m = buildDecoderDecode(cfg, streams, r, store.get());
        return ServedModel{std::move(m.graph), {m.logits}};
    };
    return std::make_unique<ServingEngine>(
        [store, cfg](int64_t prompt) {
            Rng r(7);
            ModelSpec m =
                buildDecoderPrefill(cfg, prompt, r, store.get());
            return ServedModel{std::move(m.graph), {m.logits}};
        },
        store, so);
}

struct StreamPlan {
    std::vector<std::vector<float>> prompts; ///< per stream, 8 tokens
    std::vector<std::vector<float>> next;    ///< per stream, T tokens
};

StreamPlan
makeTraffic(int streams, int64_t tokens)
{
    const DecoderConfig cfg = benchCfg();
    Rng r(97);
    StreamPlan p;
    p.prompts.resize(streams);
    p.next.resize(streams);
    for (int s = 0; s < streams; ++s) {
        for (int i = 0; i < 8; ++i)
            p.prompts[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
        for (int64_t t = 0; t < tokens; ++t)
            p.next[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
    }
    return p;
}

/** Drive every stream through prefill + T decode steps in lockstep;
 *  returns all logits, [stream][0] = prefill, [stream][1 + t]. */
std::vector<std::vector<Tensor>>
driveStreams(ServingEngine &e, const StreamPlan &p, int64_t tokens)
{
    const int streams = static_cast<int>(p.prompts.size());
    std::vector<ServingEngine::StreamId> sids(streams);
    std::vector<ServingEngine::RequestId> rids(streams);
    std::vector<std::vector<Tensor>> out(streams);
    for (int s = 0; s < streams; ++s)
        sids[s] = e.openStream();
    for (int s = 0; s < streams; ++s)
        rids[s] = e.submitPrefill(sids[s],
                                  {{"x", tokenRows(p.prompts[s])}});
    for (int s = 0; s < streams; ++s)
        out[s].push_back(e.wait(rids[s])[0]);
    for (int64_t t = 0; t < tokens; ++t) {
        for (int s = 0; s < streams; ++s)
            rids[s] = e.submitDecode(
                sids[s], {{"x", tokenRows({p.next[s][t]})}});
        for (int s = 0; s < streams; ++s)
            out[s].push_back(e.wait(rids[s])[0]);
    }
    for (int s = 0; s < streams; ++s)
        e.closeStream(sids[s]);
    return out;
}

struct DecodeRow {
    std::string scenario;
    int64_t streams = 0;
    int64_t promptLen = 8;
    int64_t tokens = 0;
    bool parity = true;
    int64_t decodeRequests = 0;
    int64_t runsSolo = 0, runsCoalesced = 0;
    double runReduction = 0;
    double coalesceRate = 0;
    int64_t cacheBytesPerSession = 0;
    double prefillUsPerToken = 0; ///< wall-clock, informational
    double decodeUsPerTokenSolo = 0;
    double decodeUsPerTokenShared = 0;
};

void
bucketCost(const ServeStats &st, bool decode, int64_t &hits,
           int64_t &runs, int64_t &runNs)
{
    hits = runs = runNs = 0;
    for (const BucketStats &b : st.buckets) {
        if (b.decode != decode)
            continue;
        hits += b.hits;
        runs += b.runs;
        runNs += b.runNs;
    }
}

DecodeRow
runScenario(const std::string &scenario, Precision prec, int streams,
            int64_t tokens)
{
    const StreamPlan traffic = makeTraffic(streams, tokens);
    DecodeRow row;
    row.scenario = scenario;
    row.streams = streams;
    row.tokens = tokens;
    row.decodeRequests = static_cast<int64_t>(streams) * tokens;

    // Serial reference: one stream at a time, coalescing off.
    auto soloStore = std::make_shared<ParamStore>();
    auto solo = makeEngine(soloStore, 0, 1, prec);
    std::vector<std::vector<Tensor>> ref(streams);
    for (int s = 0; s < streams; ++s) {
        StreamPlan one;
        one.prompts = {traffic.prompts[s]};
        one.next = {traffic.next[s]};
        ref[s] = driveStreams(*solo, one, tokens)[0];
    }

    // Coalesced: all streams in lockstep share decode-bucket runs.
    auto store = std::make_shared<ParamStore>();
    auto eng = makeEngine(store, 20000, 1, prec);
    std::vector<std::vector<Tensor>> got =
        driveStreams(*eng, traffic, tokens);

    for (int s = 0; s < streams; ++s)
        for (size_t i = 0; i < got[s].size(); ++i)
            row.parity = row.parity &&
                         ref[s][i].shape() == got[s][i].shape() &&
                         std::memcmp(ref[s][i].data(), got[s][i].data(),
                                     sizeof(float) *
                                         ref[s][i].size()) == 0;

    ServeStats ss = solo->stats(), cs = eng->stats();
    int64_t hits = 0, runs = 0, runNs = 0;
    bucketCost(ss, true, hits, runs, runNs);
    row.runsSolo = runs;
    row.decodeUsPerTokenSolo =
        hits > 0 ? static_cast<double>(runNs) / hits / 1e3 : 0;
    bucketCost(cs, true, hits, runs, runNs);
    row.runsCoalesced = runs;
    row.decodeUsPerTokenShared =
        hits > 0 ? static_cast<double>(runNs) / hits / 1e3 : 0;
    row.runReduction =
        row.runsCoalesced > 0
            ? static_cast<double>(row.runsSolo) / row.runsCoalesced
            : 0;
    row.coalesceRate = cs.coalesceRate;
    row.cacheBytesPerSession = eng->streamCacheBytes();
    bucketCost(cs, false, hits, runs, runNs);
    row.prefillUsPerToken =
        hits > 0 ? static_cast<double>(runNs) / (hits * row.promptLen) /
                       1e3
                 : 0;
    return row;
}

void
printRows(const std::vector<DecodeRow> &rows)
{
    std::printf("\n=== incremental decode (shared bucket runs) ===\n");
    for (const DecodeRow &r : rows) {
        std::printf(
            "%-12s: %lld streams x %lld tokens | decode runs %lld -> "
            "%lld (%.1fx fewer) | rate %.2f | prefill %.1f us/tok, "
            "decode %.1f -> %.1f us/tok | cache %lld KB/session | "
            "parity %s\n",
            r.scenario.c_str(), static_cast<long long>(r.streams),
            static_cast<long long>(r.tokens),
            static_cast<long long>(r.runsSolo),
            static_cast<long long>(r.runsCoalesced), r.runReduction,
            r.coalesceRate, r.prefillUsPerToken,
            r.decodeUsPerTokenSolo, r.decodeUsPerTokenShared,
            static_cast<long long>(r.cacheBytesPerSession / 1024),
            r.parity ? "EXACT" : "BROKEN");
    }
}

/** BENCH_decode.json rows. Gated fields (parity, run counts, cache
 *  bytes) are machine-independent; the us/token columns are
 *  informational wall-clock. */
bool
saveRows(const std::vector<DecodeRow> &rows, const std::string &path)
{
    pe::bench::JsonRows json;
    for (const DecodeRow &r : rows) {
        json.begin("decode_stream");
        json.field("scenario", r.scenario);
#ifdef NDEBUG
        json.field("build_type", "release");
#else
        json.field("build_type", "debug");
#endif
        json.field("streams", r.streams);
        json.field("prompt_len", r.promptLen);
        json.field("tokens_per_stream", r.tokens);
        json.field("decode_requests", r.decodeRequests);
        json.field("runs_solo", r.runsSolo);
        json.field("runs_coalesced", r.runsCoalesced);
        json.field("run_reduction", r.runReduction);
        json.field("coalesce_rate", r.coalesceRate);
        json.field("cache_bytes_per_session", r.cacheBytesPerSession);
        json.field("prefill_us_per_token", r.prefillUsPerToken);
        json.field("decode_us_per_token_solo", r.decodeUsPerTokenSolo);
        json.field("decode_us_per_token_shared",
                   r.decodeUsPerTokenShared);
        json.field("parity", static_cast<int64_t>(r.parity ? 1 : 0));
    }
    return json.save(path);
}

} // namespace

int
main(int argc, char **argv)
{
    // --trace <path>: traced coalesced decode -> Chrome trace whose
    // request lanes (stamped stream/gen) converge into shared runs.
    std::string tracePath;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            tracePath = argv[i + 1];
    }
    if (!tracePath.empty()) {
        auto store = std::make_shared<ParamStore>();
        auto eng = makeEngine(store, 20000, 1, Precision::F32, true);
        driveStreams(*eng, makeTraffic(4, 8), 8);
        ServeStats s = eng->stats();
        std::printf("%s", s.summary().c_str());
        if (!eng->exportChromeTrace(tracePath)) {
            std::fprintf(stderr, "failed to write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("chrome trace: %s (load in chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    tracePath.c_str());
        std::printf("shared decode runs: %lld served >= 2 stream "
                    "lanes -> %s\n",
                    static_cast<long long>(s.coalescedRuns),
                    s.coalescedRuns >= 1 ? "OK" : "NONE");
        return s.coalescedRuns >= 1 ? 0 : 1;
    }

    const std::string jsonPath =
        pe::bench::jsonPathFromArgs(argc, argv);
    const int64_t tokens =
        jsonPath.empty() && argc > 1 ? std::atoll(argv[1]) : 8;

    std::vector<DecodeRow> rows = {
        runScenario("fp32", Precision::F32, 4, tokens),
        runScenario("int8", Precision::Int8, 4, tokens),
    };
    printRows(rows);

    if (!jsonPath.empty()) {
        if (!saveRows(rows, jsonPath)) {
            std::fprintf(stderr, "failed to write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    for (const DecodeRow &r : rows)
        if (!r.parity || r.runsCoalesced * 2 > r.runsSolo)
            return 1;
    return 0;
}
