/**
 * @file
 * Serving-runtime demo: mixed MCUNet + MLP traffic through the
 * session-based ServingEngine, against the serial runBatch baseline
 * that was the repository's only serving path before src/serve/.
 *
 * Two model families are served at once — a tiny MLP classifier
 * ("tabular" traffic) and the MCUNet proxy ("vision" traffic) — with
 * shape-bucketed request sizes, so the run exercises per-bucket
 * compiled-plan sharing, pad-to-bucket routing, the bounded admission
 * queue, and N concurrent sessions over one frozen ParamStore per
 * family.
 *
 * On a multicore host the 4-worker engine reports higher aggregate
 * throughput than the serial loop; on a single-core container the
 * sessions still interleave correctly but wall-clock speedup cannot
 * appear (same caveat as the PR-1 thread-scaling bench).
 *
 * Two deployment-shaped sections follow the fp32 run: an INT8 serving
 * path (calibrate() wired into the bucket factory via
 * ServeOptions::calibration, reporting footprint vs fp32 and top-1
 * agreement), and a plan-directory cold start — the int8 bucket plans
 * are saved once with savePlans() and a second engine boots from
 * ServeOptions::planDir with zero compile work (src/plan/).
 *
 * A continuous-batching section measures the coalescing win on the
 * traffic shape the ROADMAP names as the big lever: a burst of
 * batch-1 requests against a {1,4,8} bucket set. With
 * ServeOptions::coalesceWindowUs > 0 the burst shares bucket runs
 * (64 requests in ~8 runs instead of 64) with bit-identical outputs,
 * and a mixed-row trace shows group-aware routing beating
 * per-request pad waste.
 *
 *   ./build/serve_bench [requests-per-family]   (default: 64)
 *   ./build/serve_bench --json BENCH_serve.json
 *       runs ONLY the (fast, deterministic) coalescing scenarios and
 *       writes the machine-readable rows scripts/bench_json.sh
 *       snapshots and scripts/bench_check.py gates.
 *   ./build/serve_bench --trace OUT.json
 *       runs a 4-worker coalesced burst with request-lifecycle and
 *       executor tracing armed (ServeOptions::trace) and exports a
 *       Chrome/Perfetto trace in which coalesced request lanes
 *       converge into shared run spans. Exits 0 only if at least one
 *       run served >= 2 requests (the converging-lanes acceptance).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <filesystem>

#include "../bench/bench_common.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "plan/plan.h"
#include "serve/serving.h"

using namespace pe;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Family 0: the MLP. Parameter names are batch-independent, so all
 *  buckets share one frozen store. */
ServedModel
mlpModel(int64_t batch, ParamStore *store)
{
    Graph g;
    Rng rng(7);
    NetBuilder b(g, rng, store);
    int x = b.input({batch, 16}, "x");
    int h = b.relu(b.linear(x, 64, "fc1"));
    h = b.relu(b.linear(h, 64, "fc2"));
    int logits = b.linear(h, 4, "head");
    return ServedModel{std::move(g), {logits}};
}

/** Family 1: the MCUNet proxy at 16x16 (the paper's deployment-shaped
 *  CNN, scaled to run fast enough for a demo loop). */
ServedModel
mcunetModel(int64_t batch, ParamStore *store)
{
    VisionConfig cfg;
    cfg.batch = batch;
    cfg.resolution = 16;
    cfg.width = 0.5;
    cfg.blocks = 4;
    Rng rng(11);
    ModelSpec m = buildMcuNet(cfg, rng, store);
    return ServedModel{std::move(m.graph), {m.logits}};
}

Tensor
padRows(const Tensor &t, int64_t batch)
{
    Shape s = t.shape();
    int64_t rows = s[0];
    s[0] = batch;
    Tensor out = Tensor::zeros(s);
    std::memcpy(out.data(), t.data(),
                sizeof(float) * rows * (t.size() / rows));
    return out;
}

struct Traffic {
    int family = 0; ///< 0 = MLP, 1 = MCUNet
    Tensor x;
};

// ---- continuous batching scenarios -----------------------------------

/** One coalescing measurement: the same trace through a per-request
 *  engine (coalesceWindowUs = 0) and a coalescing engine, outputs
 *  bit-compared per request. */
struct CoalesceRow {
    std::string scenario;
    int64_t requests = 0;
    int64_t runsSolo = 0, runsCoalesced = 0;
    double runReduction = 0; ///< runsSolo / runsCoalesced
    double coalesceRate = 0; ///< share of requests in shared runs
    double amortSoloUs = 0, amortCoalescedUs = 0;
    int64_t padSolo = 0, padCoalesced = 0;
    bool parity = true;
};

int64_t
totalPad(const ServeStats &s)
{
    int64_t pad = 0;
    for (const auto &b : s.buckets)
        pad += b.paddedRows;
    return pad;
}

/** Submit the whole trace as a burst, wait in order, return outputs. */
std::vector<Tensor>
pumpBurst(ServingEngine &e, const std::vector<Tensor> &xs)
{
    std::vector<ServingEngine::RequestId> ids;
    ids.reserve(xs.size());
    for (const Tensor &x : xs)
        ids.push_back(e.submit({{"x", x}}));
    std::vector<Tensor> outs;
    outs.reserve(ids.size());
    for (auto id : ids)
        outs.push_back(e.wait(id)[0]);
    return outs;
}

CoalesceRow
runCoalesceScenario(const std::string &scenario,
                    const std::shared_ptr<ParamStore> &store,
                    const std::vector<int64_t> &buckets,
                    const std::vector<Tensor> &xs, int64_t windowUs)
{
    auto factory = [&](int64_t b) { return mlpModel(b, store.get()); };
    ServeOptions solo;
    solo.buckets = buckets;
    solo.workers = 1; // one worker: the run-count drop is pure policy
    solo.queueCapacity = xs.size();
    ServingEngine soloE(factory, store, solo);
    ServeOptions co = solo;
    co.coalesceWindowUs = windowUs;
    ServingEngine coE(factory, store, co);

    std::vector<Tensor> ref = pumpBurst(soloE, xs);
    std::vector<Tensor> got = pumpBurst(coE, xs);

    CoalesceRow row;
    row.scenario = scenario;
    row.requests = static_cast<int64_t>(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        row.parity = row.parity && ref[i].shape() == got[i].shape() &&
                     std::memcmp(ref[i].data(), got[i].data(),
                                 sizeof(float) * ref[i].size()) == 0;
    }
    ServeStats ss = soloE.stats(), cs = coE.stats();
    row.runsSolo = ss.runs;
    row.runsCoalesced = cs.runs;
    row.runReduction = cs.runs > 0 ? static_cast<double>(ss.runs) /
                                         static_cast<double>(cs.runs)
                                   : 0;
    row.coalesceRate = cs.coalesceRate;
    row.amortSoloUs = ss.amortizedRunUs;
    row.amortCoalescedUs = cs.amortizedRunUs;
    row.padSolo = totalPad(ss);
    row.padCoalesced = totalPad(cs);
    return row;
}

/** Both scenarios: the ROADMAP's burst-of-singles, plus a mixed-row
 *  trace proving group-aware routing covers multi-row requests. */
std::vector<CoalesceRow>
runCoalesceScenarios(const std::shared_ptr<ParamStore> &store)
{
    const int64_t windowUs = 5000;
    Rng rng(97);

    std::vector<Tensor> singles;
    for (int i = 0; i < 64; ++i)
        singles.push_back(Tensor::randn({1, 16}, rng));

    std::vector<Tensor> mixed;
    for (int i = 0; i < 48; ++i)
        mixed.push_back(Tensor::randn(
            {1 + static_cast<int64_t>(i % 4), 16}, rng));

    return {
        runCoalesceScenario("burst_singles", store, {1, 4, 8},
                            singles, windowUs),
        runCoalesceScenario("mixed_rows", store, {1, 4, 8}, mixed,
                            windowUs),
    };
}

void
printCoalesceRows(const std::vector<CoalesceRow> &rows)
{
    std::printf("\n=== continuous batching (coalesced bucket runs) "
                "===\n");
    for (const CoalesceRow &r : rows) {
        std::printf(
            "%-14s: %lld req | runs %lld -> %lld (%.1fx fewer) | "
            "rate %.2f | amort %.1f -> %.1f us/req | pad %lld -> "
            "%lld rows | parity %s\n",
            r.scenario.c_str(), static_cast<long long>(r.requests),
            static_cast<long long>(r.runsSolo),
            static_cast<long long>(r.runsCoalesced), r.runReduction,
            r.coalesceRate, r.amortSoloUs, r.amortCoalescedUs,
            static_cast<long long>(r.padSolo),
            static_cast<long long>(r.padCoalesced),
            r.parity ? "EXACT" : "BROKEN");
    }
}

/** BENCH_serve.json rows (same flat-array shape as BENCH_table4): the
 *  run-reduction, coalescing-rate and amortized-latency columns
 *  scripts/bench_check.py gates. */
bool
saveCoalesceJson(const std::vector<CoalesceRow> &rows,
                 const std::string &path)
{
    pe::bench::JsonRows json;
    for (const CoalesceRow &r : rows) {
        json.begin("serve_coalesce");
        json.field("scenario", r.scenario);
#ifdef NDEBUG
        json.field("build_type", "release");
#else
        json.field("build_type", "debug");
#endif
        json.field("requests", r.requests);
        json.field("runs_solo", r.runsSolo);
        json.field("runs_coalesced", r.runsCoalesced);
        json.field("run_reduction", r.runReduction);
        json.field("coalesce_rate", r.coalesceRate);
        json.field("amortized_run_us_solo", r.amortSoloUs);
        json.field("amortized_run_us_coalesced", r.amortCoalescedUs);
        json.field("padded_rows_solo", r.padSolo);
        json.field("padded_rows_coalesced", r.padCoalesced);
        json.field("parity", static_cast<int64_t>(r.parity ? 1 : 0));
    }
    return json.save(path);
}

} // namespace

int
main(int argc, char **argv)
{
    // --trace <path>: traced 4-worker coalesced burst -> Chrome trace.
    std::string tracePath;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            tracePath = argv[i + 1];
    }
    if (!tracePath.empty()) {
        auto store = std::make_shared<ParamStore>();
        mlpModel(1, store.get());
        ServeOptions so;
        so.buckets = {1, 4, 8};
        so.workers = 4;
        so.coalesceWindowUs = 5000;
        so.queueCapacity = 64;
        so.trace = true;
        ServingEngine e(
            [&](int64_t b) { return mlpModel(b, store.get()); },
            store, so);
        Rng rng(97);
        std::vector<Tensor> xs;
        for (int i = 0; i < 64; ++i)
            xs.push_back(Tensor::randn({1, 16}, rng));
        pumpBurst(e, xs);
        ServeStats s = e.stats();
        std::printf("%s", s.summary().c_str());
        if (!e.exportChromeTrace(tracePath)) {
            std::fprintf(stderr, "failed to write %s\n",
                         tracePath.c_str());
            return 1;
        }
        std::printf("chrome trace: %s (load in chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    tracePath.c_str());
        std::printf("shared run spans: %lld runs served >= 2 request "
                    "lanes -> %s\n",
                    static_cast<long long>(s.coalescedRuns),
                    s.coalescedRuns >= 1 ? "OK" : "NONE");
        return s.coalescedRuns >= 1 ? 0 : 1;
    }

    // --json <path>: run only the deterministic coalescing scenarios
    // and emit the rows bench_json.sh snapshots / bench_check.py gates.
    const std::string jsonPath = pe::bench::jsonPathFromArgs(argc, argv);
    if (!jsonPath.empty()) {
        auto store = std::make_shared<ParamStore>();
        mlpModel(1, store.get());
        std::vector<CoalesceRow> rows = runCoalesceScenarios(store);
        printCoalesceRows(rows);
        if (!saveCoalesceJson(rows, jsonPath)) {
            std::fprintf(stderr, "failed to write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
        for (const CoalesceRow &r : rows)
            if (!r.parity)
                return 1;
        return 0;
    }

    const int perFamily = argc > 1 ? std::atoi(argv[1]) : 64;
    const std::vector<int64_t> mlpBuckets = {1, 4};
    const std::vector<int64_t> cnnBuckets = {1, 2};

    auto mlpStore = std::make_shared<ParamStore>();
    auto cnnStore = std::make_shared<ParamStore>();
    mlpModel(1, mlpStore.get()); // materialize the frozen weights
    mcunetModel(1, cnnStore.get());

    // Mixed traffic: alternating families, cycling request sizes
    // within each family's bucket range (so some requests pad).
    Rng rng(3);
    std::vector<Traffic> traffic;
    for (int i = 0; i < perFamily; ++i) {
        traffic.push_back(
            {0, Tensor::randn({1 + static_cast<int64_t>(i % 4), 16},
                              rng)});
        traffic.push_back(
            {1, Tensor::randn({1 + static_cast<int64_t>(i % 2), 3, 16,
                               16},
                              rng)});
    }

    // ---- serial baseline: per-bucket programs driven one request at
    // a time on one executor (pad to bucket, run, slice — exactly
    // what the engine does, minus the concurrency).
    CompileOptions copt;
    ServedModel sm1 = mlpModel(1, mlpStore.get());
    ServedModel sm4 = mlpModel(4, mlpStore.get());
    ServedModel sc1 = mcunetModel(1, cnnStore.get());
    ServedModel sc2 = mcunetModel(2, cnnStore.get());
    auto mlp1 = compileInference(sm1.graph, sm1.outputs, copt, mlpStore);
    auto mlp4 = compileInference(sm4.graph, sm4.outputs, copt, mlpStore);
    auto cnn1 = compileInference(sc1.graph, sc1.outputs, copt, cnnStore);
    auto cnn2 = compileInference(sc2.graph, sc2.outputs, copt, cnnStore);
    auto progFor = [&](int family,
                       int64_t rows) -> std::pair<InferenceProgram &,
                                                  int64_t> {
        if (family == 0)
            return rows <= 1 ? std::pair<InferenceProgram &, int64_t>{
                                   mlp1, 1}
                             : std::pair<InferenceProgram &, int64_t>{
                                   mlp4, 4};
        return rows <= 1 ? std::pair<InferenceProgram &, int64_t>{cnn1,
                                                                  1}
                         : std::pair<InferenceProgram &, int64_t>{cnn2,
                                                                  2};
    };

    auto t0 = std::chrono::steady_clock::now();
    for (const Traffic &req : traffic) {
        auto [prog, bucket] = progFor(req.family, req.x.shape()[0]);
        prog.run({{"x", padRows(req.x, bucket)}});
    }
    double serialSec = secondsSince(t0);
    double serialRps = traffic.size() / serialSec;
    std::printf("serial runBatch  : %5.1f req/s  (%zu requests, "
                "%.2fs)\n",
                serialRps, traffic.size(), serialSec);

    // ---- the serving engine at 1 and 4 workers ---------------------
    double engineRps[2] = {0, 0};
    const int workerCounts[2] = {1, 4};
    for (int wi = 0; wi < 2; ++wi) {
        int workers = workerCounts[wi];
        ServeOptions mo;
        mo.buckets = mlpBuckets;
        mo.workers = workers;
        mo.queueCapacity = 32;
        ServingEngine mlp(
            [&](int64_t b) { return mlpModel(b, mlpStore.get()); },
            mlpStore, mo);
        ServeOptions co;
        co.buckets = cnnBuckets;
        co.workers = workers;
        co.queueCapacity = 32;
        ServingEngine cnn(
            [&](int64_t b) { return mcunetModel(b, cnnStore.get()); },
            cnnStore, co);

        auto tb = std::chrono::steady_clock::now();
        std::vector<std::pair<int, ServingEngine::RequestId>> ids;
        ids.reserve(traffic.size());
        for (const Traffic &req : traffic) {
            ServingEngine &e = req.family == 0 ? mlp : cnn;
            ids.emplace_back(req.family, e.submit({{"x", req.x}}));
        }
        for (auto &[family, id] : ids)
            (family == 0 ? mlp : cnn).wait(id);
        double sec = secondsSince(tb);
        engineRps[wi] = traffic.size() / sec;

        ServeStats ms = mlp.stats(), cs = cnn.stats();
        std::printf("engine %d worker%s: %5.1f req/s  (%.2fs)\n",
                    workers, workers == 1 ? " " : "s",
                    engineRps[wi], sec);
        std::printf("--- mlp ---\n%s", ms.summary().c_str());
        std::printf("--- mcunet ---\n%s", cs.summary().c_str());
    }

    std::printf("\naggregate throughput: serial %.1f -> 4 workers "
                "%.1f req/s (%.2fx)\n",
                serialRps, engineRps[1], engineRps[1] / serialRps);
    std::printf("(a 1-core container shows ~1x: sessions interleave "
                "correctly but cannot overlap in wall-clock — same "
                "caveat as the PR-1 thread-scaling bench)\n");

    // Per-bucket compiled-plan facts: one plan per (precision,
    // bucket), shared by every session that serves it.
    {
        ServeOptions mo;
        mo.buckets = mlpBuckets;
        ServingEngine mlp(
            [&](int64_t b) { return mlpModel(b, mlpStore.get()); },
            mlpStore, mo);
        for (int64_t b : mlpBuckets) {
            const CompileReport &r = mlp.bucketReport(b);
            std::printf("mlp bucket %lld: %d kernel steps, arena "
                        "%lld KB, %lld KB weights\n",
                        static_cast<long long>(b), r.kernelSteps,
                        static_cast<long long>(r.arenaBytes / 1024),
                        static_cast<long long>(
                            (r.paramBytes + r.constBytes) / 1024));
        }
    }

    // ---- int8 serving: calibrate() wired into the bucket factory --
    // The engine pads each calibration batch to every bucket's shape
    // (the same zero-pad real traffic gets), stamps observed ranges,
    // and the QuantizePass turns each bucket into an int8 plan with
    // pre-quantized i8 weight consts.
    std::printf("\n=== int8 serving (calibrated buckets) ===\n");
    auto cnnFactory = [&](int64_t b) {
        return mcunetModel(b, cnnStore.get());
    };
    ServeOptions qco;
    qco.buckets = cnnBuckets;
    qco.workers = 4;
    qco.queueCapacity = 32;
    qco.compile.precision = Precision::Int8;
    {
        Rng crng(17);
        for (int i = 0; i < 2; ++i)
            qco.calibration.push_back(
                {{"x", Tensor::randn({2, 3, 16, 16}, crng)}});
    }
    ServingEngine qcnn(cnnFactory, cnnStore, qco);

    // Agreement + throughput vs the fp32 engine on the same traffic.
    ServeOptions fo;
    fo.buckets = cnnBuckets;
    fo.workers = 4;
    fo.queueCapacity = 32;
    ServingEngine fcnn(cnnFactory, cnnStore, fo);
    int agree = 0, total = 0;
    auto tq = std::chrono::steady_clock::now();
    for (const Traffic &req : traffic) {
        if (req.family != 1)
            continue;
        Tensor f = fcnn.wait(fcnn.submit({{"x", req.x}}))[0];
        Tensor q = qcnn.wait(qcnn.submit({{"x", req.x}}))[0];
        int64_t classes = f.shape()[1];
        for (int64_t row = 0; row < f.shape()[0]; ++row) {
            int64_t fa = 0, qa = 0;
            for (int64_t c = 1; c < classes; ++c) {
                if (f[row * classes + c] > f[row * classes + fa])
                    fa = c;
                if (q[row * classes + c] > q[row * classes + qa])
                    qa = c;
            }
            agree += fa == qa;
            ++total;
        }
    }
    double qSec = secondsSince(tq);
    const CompileReport &q1 = qcnn.bucketReport(1);
    const CompileReport &f1 = fcnn.bucketReport(1);
    std::printf("int8 top-1 agreement vs fp32: %d/%d rows\n", agree,
                total);
    std::printf("int8 bucket-1 act+weight: %lld KB (fp32 %lld KB, "
                "%.2fx); fallbacks: %s\n",
                static_cast<long long>(q1.actWeightBytes() / 1024),
                static_cast<long long>(f1.actWeightBytes() / 1024),
                static_cast<double>(q1.actWeightBytes()) /
                    static_cast<double>(f1.actWeightBytes()),
                q1.fallbackBreakdown().empty()
                    ? "none"
                    : q1.fallbackBreakdown().c_str());
    std::printf("mixed fp32+int8 interleaved: %.2fs for %d requests\n",
                qSec, 2 * perFamily);

    // ---- continuous batching: queued requests share bucket runs ----
    std::vector<CoalesceRow> coRows = runCoalesceScenarios(mlpStore);
    printCoalesceRows(coRows);
    bool coParity = true;
    for (const CoalesceRow &r : coRows)
        coParity = coParity && r.parity;

    // ---- compile once, deploy anywhere: plan-directory cold start --
    // savePlans() freezes every (precision, bucket) plan to disk; a
    // fresh engine boots from the directory with ZERO compile work
    // (the constructor asserts no planner/scheduler/QuantizePass
    // stage runs) — the serving-fleet startup story of src/plan/.
    std::printf("\n=== serving from a plan directory ===\n");
    std::string planDir =
        (std::filesystem::temp_directory_path() / "serve_bench_plans")
            .string();
    auto ts = std::chrono::steady_clock::now();
    qcnn.savePlans(planDir);
    double saveSec = secondsSince(ts);

    auto tc = std::chrono::steady_clock::now();
    ServeOptions po = qco;
    po.calibration.clear();
    po.planDir = planDir;
    ServingEngine planCnn(
        [](int64_t) -> ServedModel {
            throw std::logic_error("factory unused with planDir");
        },
        nullptr, po);
    double loadSec = secondsSince(tc);

    // Bit-parity spot check: plans serve exactly what compiles serve.
    bool parity = true;
    for (int i = 0; i < 8; ++i) {
        Rng prng(100 + i);
        Tensor x = Tensor::randn({1 + (i % 2), 3, 16, 16}, prng);
        Tensor a = qcnn.wait(qcnn.submit({{"x", x}}))[0];
        Tensor b = planCnn.wait(planCnn.submit({{"x", x}}))[0];
        parity = parity && a.shape() == b.shape() &&
                 std::memcmp(a.data(), b.data(),
                             sizeof(float) * a.size()) == 0;
    }
    int64_t planBytes = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(planDir))
        planBytes += static_cast<int64_t>(e.file_size());
    std::printf("saved %lld KB of int8 bucket plans in %.1f ms; "
                "engine from planDir up in %.1f ms (zero compile "
                "work, asserted); bit-parity vs compiled engine: "
                "%s\n",
                static_cast<long long>(planBytes / 1024),
                saveSec * 1e3, loadSec * 1e3,
                parity ? "EXACT" : "BROKEN");
    return parity && coParity ? 0 : 1;
}
