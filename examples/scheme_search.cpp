/**
 * @file
 * Section 3.1 walkthrough: find a sparse update scheme under a
 * memory constraint (Eq. 1). Units are per-block "train the biases"
 * and "train conv1 weights"; contributions come from per-unit
 * sensitivity fine-tuning, memory costs from the compile-time
 * planner, and an evolutionary search solves the constrained
 * maximization.
 */

#include <cstdio>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/models.h"
#include "search/search.h"

using namespace pe;

namespace {

constexpr int64_t kBatch = 8;
constexpr int64_t kRes = 16;

VisionConfig
config()
{
    VisionConfig cfg;
    cfg.batch = kBatch;
    cfg.resolution = kRes;
    cfg.width = 0.5;
    cfg.blocks = 4;
    return cfg;
}

/** Unit i<blocks: biases of block i; else conv1 weights of block
 *  i-blocks. The head always trains. */
SparseUpdateScheme
schemeOf(const std::vector<bool> &mask, int blocks)
{
    SparseUpdateScheme s = SparseUpdateScheme::frozen();
    for (int i = 0; i < blocks; ++i) {
        if (mask[i])
            s.updateBiasPrefix("b" + std::to_string(i) + ".");
        if (mask[blocks + i]) {
            s.set("b" + std::to_string(i) + ".conv1.weight",
                  TensorRule{true, 1.0});
        }
    }
    s.updatePrefix("head.");
    s.updateBiasPrefix("head.");
    return s;
}

} // namespace

int
main()
{
    VisionConfig cfg = config();
    SyntheticVision task = SyntheticVision::task("pets", 3, kRes);
    cfg.numClasses = task.classes();
    int blocks = cfg.blocks;
    int units = 2 * blocks;

    // Pretrained starting point.
    Rng rng(31);
    auto base_store = std::make_shared<ParamStore>();
    ModelSpec base = buildMcuNet(cfg, rng, base_store.get());
    SyntheticVision source = SyntheticVision::pretrain(3, kRes);
    {
        CompileOptions opt;
        opt.optim = OptimConfig::adam(0.004);
        auto prog = compileTraining(base.graph, base.loss,
                                    SparseUpdateScheme::full(), opt,
                                    base_store);
        Rng r(1);
        for (int s = 0; s < 150; ++s) {
            Batch b = source.sample(kBatch, r);
            prog.trainStep({{"x", b.x}, {"y", b.y}});
        }
    }

    auto clone_store = [&] {
        auto out = std::make_shared<ParamStore>();
        for (const auto &[name, t] : base_store->all()) {
            if (name.find(".apply") == std::string::npos)
                out->set(name, t.clone());
        }
        return out;
    };

    // Sensitivity: fine-tune each unit alone briefly, record Δacc.
    auto evaluate = [&](const SparseUpdateScheme &scheme) {
        auto store = clone_store();
        CompileOptions opt;
        opt.optim = OptimConfig::adam(0.004);
        auto prog = compileTraining(base.graph, base.loss, scheme, opt,
                                    store);
        Rng r(5);
        for (int s = 0; s < 30; ++s) {
            Batch b = task.sample(kBatch, r);
            prog.trainStep({{"x", b.x}, {"y", b.y}});
        }
        auto infer = compileInference(base.graph, {base.logits}, opt,
                                      store);
        int64_t correct = 0, total = 0;
        for (int e = 0; e < 8; ++e) {
            Batch b = task.sample(kBatch, r);
            Tensor logits = infer.run({{"x", b.x}})[0];
            for (int64_t i = 0; i < kBatch; ++i) {
                int64_t am = 0;
                for (int64_t c = 1; c < cfg.numClasses; ++c) {
                    if (logits[i * cfg.numClasses + c] >
                        logits[i * cfg.numClasses + am])
                        am = c;
                }
                ++total;
                correct += am == static_cast<int64_t>(b.y[i]);
            }
        }
        return static_cast<double>(correct) / total;
    };
    auto memory_of = [&](const SparseUpdateScheme &scheme) {
        CompileOptions opt;
        opt.optim = OptimConfig::adam(0.004);
        return compileGraphOnly(base.graph, base.loss, scheme, opt)
            .report.totalBytes;
    };
    auto unit_scheme = [&](const std::vector<bool> &mask) {
        return schemeOf(mask, blocks);
    };

    std::printf("measuring per-unit contributions (Eq. 1 inputs)...\n");
    std::vector<double> contrib =
        measureContributions(units, unit_scheme, evaluate);
    std::vector<int64_t> cost =
        measureMemoryCosts(units, unit_scheme, memory_of);

    std::vector<SearchUnit> su(units);
    for (int i = 0; i < units; ++i) {
        su[i].name = (i < blocks ? "bias.b" : "weight.b") +
                     std::to_string(i % blocks);
        su[i].contribution = contrib[i];
        su[i].memoryCost = cost[i];
        std::printf("  unit %-10s  dAcc %+.3f  dMem %lld KB\n",
                    su[i].name.c_str(), contrib[i],
                    static_cast<long long>(cost[i] / 1024));
    }

    std::vector<bool> none(units, false);
    int64_t base_mem = memory_of(unit_scheme(none));
    int64_t full_mem =
        memory_of(SparseUpdateScheme::full());
    int64_t budget = base_mem + (full_mem - base_mem) / 3;
    std::printf("memory: frozen %lld KB, full %lld KB, budget %lld "
                "KB\n",
                static_cast<long long>(base_mem / 1024),
                static_cast<long long>(full_mem / 1024),
                static_cast<long long>(budget / 1024));

    Rng search_rng(77);
    SearchResult res = evolutionarySearch(su, base_mem, budget,
                                          search_rng);
    std::printf("evolutionary search picked:");
    for (int i = 0; i < units; ++i) {
        if (res.selected[i])
            std::printf(" %s", su[i].name.c_str());
    }
    std::printf("\n  total contribution %.3f, memory %lld KB "
                "(<= budget)\n",
                res.totalContribution,
                static_cast<long long>(res.totalMemory / 1024));

    double final_acc = evaluate(unit_scheme(res.selected));
    std::printf("accuracy with searched scheme: %.1f%%\n",
                100 * final_acc);
    return 0;
}
