#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite, and smoke-run
# the kernel bench's thread-scaling case (matmul GFLOP/s at 1/2/4
# threads). Mirrors ROADMAP.md's verify command.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

if [ -x build/bench_kernels ]; then
    ./build/bench_kernels --benchmark_filter=BM_MatMulThreads \
        --benchmark_min_time=0.2
fi
