#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the test suite, and smoke-run
# the kernel bench's thread-scaling case (matmul GFLOP/s at 1/2/4
# threads). Mirrors ROADMAP.md's verify command.
#
# Usage: scripts/verify.sh [build-dir] [--scalar]
#   build-dir   configure/build/test in this directory (default:
#               build) — lets CI legs verify their own tree (e.g. a
#               TSan build dir) without clobbering the Release build.
#   --scalar    configure the build with -DPE_SIMD=OFF and run the
#               suite on the scalar kernel tier only (the SIMD-less
#               deployment target); may be combined with a build-dir.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
SCALAR=0
for arg in "$@"; do
    case "$arg" in
        --scalar) SCALAR=1 ;;
        -*) echo "unknown option: $arg" >&2
            echo "usage: scripts/verify.sh [build-dir] [--scalar]" >&2
            exit 2 ;;
        *) BUILD="$arg" ;;
    esac
done
if [ "$SCALAR" = 1 ] && [ "$BUILD" = build ]; then
    # Keep the default Release tree intact: scalar mode gets its own
    # directory unless the caller named one explicitly.
    BUILD=build-scalar
fi

CONFIG_ARGS=()
if [ "$SCALAR" = 1 ]; then
    CONFIG_ARGS+=(-DPE_SIMD=OFF)
fi

cmake -B "$BUILD" -S . "${CONFIG_ARGS[@]}"
cmake --build "$BUILD" -j "$(nproc)"
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

if [ -x "$BUILD"/bench_kernels ]; then
    ./"$BUILD"/bench_kernels --benchmark_filter=BM_MatMulThreads \
        --benchmark_min_time=0.2
fi
