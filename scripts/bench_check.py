#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh bench JSON snapshot
against the committed baseline.

Three file shapes are understood, auto-detected:

* google-benchmark JSON (BENCH_kernels.json): the GATE. Single-thread
  rows must hold >= (1 - tolerance) of the baseline's throughput
  (items_per_second, falling back to 1/real_time). Thread-scaling rows
  (families named *Threads* at thread counts > 1) are reported but
  never gate — CI runners expose too few cores for those numbers to
  mean anything (the ROADMAP's multicore-host run is where they count).
  A fresh snapshot stamped pe_build_type=debug fails outright, and a
  baseline row missing from the fresh run fails unless it is a
  SIMD-tier row ("@avx2"/"@neon" in the name) and the fresh snapshot's
  pe_simd_tier context says the host lacks that tier.

* table4 memory JSON (BENCH_table4.json): GATED on peak memory. Byte
  counts are deterministic, so any drift is a real planner change.
  Drift is always printed, but only REGRESSIONS fail: a row whose
  total_bytes / peak_live_bytes / act_weight_bytes grew more than
  --table4-tolerance (default 5%) over the committed baseline exits 1
  — the author must either fix the regression or refresh the
  committed BENCH_table4.json in the same PR (the refresh IS the
  explicit sign-off). Improvements and other field drift (arena
  layout, workspace split, plan-file sizes) stay informational.

* serve coalescing JSON (BENCH_serve.json, rows with kind
  "serve_coalesce"): GATED. Hard machine-independent floors on every
  fresh row — build_type must be release, parity must be 1 (coalesced
  outputs bit-identical to per-request serving), and the
  burst_singles scenario must keep run_reduction >= 2.0 (the
  continuous-batching acceptance bar: a burst of singles in at most
  half the bucket runs). Against the committed baseline, coalesce
  rate and run reduction must hold >= (1 - tolerance) of baseline,
  and the amortized-latency win — coalesced/solo us-per-request,
  self-normalized so host speed cancels like a throughput ratio —
  must not shrink beyond the same tolerance. Vanished baseline rows
  fail, same as the other gates.

* decode serving JSON (BENCH_decode.json, rows with kind
  "decode_stream"): GATED. Hard machine-independent floors on every
  fresh row — build_type must be release, parity must be 1 (N
  concurrent decode streams bit-identical to each stream decoding
  alone, fp32 AND int8), run_reduction >= 2.0 (4 lockstep streams
  must share decode-bucket runs at least 2x), and
  cache_bytes_per_session must be positive (the KV cache actually
  exists). Rows stamped fused_attention=1 (the llama_proxy_fused
  scenario) carry three more floors: parity_vs_unfused_1e5 must be 1
  (fused logits within 1e-5 of the unfused serial reference),
  attn_fused_speedup >= 1.5 (the attention stage at the decode shape),
  and peak_live_fused_bytes strictly below peak_live_unfused_bytes
  (both positive). A baseline row that had the fused columns and a
  fresh row without them is a gate bypass and fails. Against the
  committed baseline, run reduction / coalesce rate must hold
  >= (1 - tolerance), and the shared/solo us-per-token ratio —
  self-normalized so host speed cancels — must not grow beyond the
  same tolerance. Vanished baseline rows fail.

  The gbench gate also pairs rows: every fresh BM_FusedAttention
  tier row must beat the BM_UnfusedAttention row at the same shape
  arg by >= 1.5x (the serving-bound comparison — the chain has no
  tier variants at decode sizes), the scalar base row must never
  lose to the chain, and a missing counterpart fails (the claim
  would be unverifiable).

Usage: bench_check.py BASELINE FRESH [--tolerance 0.25]
                                     [--table4-tolerance 0.05]
Exit status 1 iff a gated row regressed more than its tolerance.
"""

import argparse
import json
import sys


def thread_count(name):
    """Thread count encoded in a *Threads* family's benchmark name
    (e.g. BM_MatMulThreads/256/4/real_time -> 4); 1 otherwise."""
    parts = name.split("/")
    if "Threads" not in parts[0]:
        return 1
    nums = [p for p in parts[1:] if p.isdigit()]
    return int(nums[-1]) if nums else 1


def throughput(row):
    """Ops-per-second-shaped rate for a gbench row."""
    if "items_per_second" in row:
        return float(row["items_per_second"])
    # Per-iteration time in the row's unit; invert so "bigger = better"
    # holds for every gated metric.
    scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}
    return scale.get(row.get("time_unit", "ns"), 1e9) / float(
        row["real_time"])


def rows_of(doc):
    """name -> row for gbench docs (iteration rows only)."""
    return {
        r["name"]: r
        for r in doc.get("benchmarks", [])
        if r.get("run_type", "iteration") == "iteration"
    }


def row_tier(name):
    """SIMD tier a row depends on ("BM_MatMul/blocked@avx2/128" ->
    "avx2"); None for tier-independent rows."""
    for tier in ("avx2", "neon"):
        if "@" + tier in name:
            return tier
    return None


# The fused-attention kernel claim at the decode shape: the fused
# kernel the executor binds on a SIMD host (the tier row) must beat
# the five-dispatch unfused chain by at least this factor. The chain
# has no tier variants at decode sizes (the scores tensor sits below
# the blocked-GEMM threshold), so tier-fused vs scalar-chain is
# exactly the serving comparison. Same-snapshot pairing, so machine
# speed cancels.
MIN_FUSED_ATTN_SPEEDUP = 1.5
# The scalar fused kernel's contract is bit-exactness with the chain,
# not speed — but it strictly eliminates the chain's intermediate
# sweeps, so it must never LOSE to it.
MIN_FUSED_ATTN_SCALAR_SPEEDUP = 1.0


def unfused_counterpart(name):
    """BM_FusedAttention/base[@tier]/16 -> BM_UnfusedAttention/16."""
    return "BM_UnfusedAttention/" + name.split("/")[-1]


def check_gbench(base, fresh, tolerance):
    b, f = rows_of(base), rows_of(fresh)
    failures = 0

    # A debug-build snapshot must never pass the gate (nor be quietly
    # accepted as a future baseline). Old baselines predate the
    # pe_build_type context; only an explicit "debug" stamp fails.
    ctx = fresh.get("context", {})
    if ctx.get("pe_build_type", "release") != "release":
        print("  [FAIL] fresh snapshot was built in debug mode "
              "(context pe_build_type) — rebuild Release via "
              "scripts/bench_json.sh")
        failures += 1

    # A baseline row vanishing is a gate bypass, not trivia: the
    # throughput it gated is no longer watched. The one legitimate
    # cause is a SIMD-tier row measured on a host whose registry
    # doesn't have that tier (context pe_simd_tier says so).
    host_tier = ctx.get("pe_simd_tier")
    for name in sorted(set(b) - set(f)):
        tier = row_tier(name)
        if tier is not None and tier != host_tier:
            print(f"  [info] {tier} row skipped: host tier is "
                  f"'{host_tier}' (not gated): {name}")
        else:
            print(f"  [FAIL] baseline row missing from fresh run: "
                  f"{name} — restore it or refresh the committed "
                  f"baseline with scripts/bench_json.sh")
            failures += 1
    for name in sorted(set(f) - set(b)):
        print(f"  [info] new row (no baseline yet): {name}")
    for name in sorted(set(b) & set(f)):
        old, new = throughput(b[name]), throughput(f[name])
        ratio = new / old if old > 0 else float("inf")
        gated = thread_count(name) == 1
        status = "ok"
        if gated and ratio < 1.0 - tolerance:
            status = "FAIL"
            failures += 1
        elif not gated:
            status = "info (multi-thread row, not gated)"
        print(f"  {name}: {old:.3g} -> {new:.3g} ops/s "
              f"({ratio:.2f}x)  {status}")
    # Fused-vs-unfused attention pairing: gate the ratio WITHIN the
    # fresh snapshot (host speed cancels). Tier rows carry the 1.5x
    # serving claim; the scalar base row floors at parity. A fused
    # row whose unfused counterpart vanished fails — the speedup
    # claim is unverifiable.
    for name in sorted(f):
        if not name.startswith("BM_FusedAttention"):
            continue
        other = unfused_counterpart(name)
        if other not in f:
            print(f"  [FAIL] {name}: unfused counterpart {other} "
                  f"missing from the fresh run — the fused-attention "
                  f"speedup claim is unverifiable")
            failures += 1
            continue
        floor = (MIN_FUSED_ATTN_SPEEDUP if row_tier(name)
                 else MIN_FUSED_ATTN_SCALAR_SPEEDUP)
        speedup = throughput(f[name]) / throughput(f[other])
        status = "ok"
        if speedup < floor:
            status = "FAIL"
            failures += 1
        print(f"  {name}: {speedup:.2f}x vs {other} (floor "
              f"{floor}x)  {status}")
    if failures:
        print(f"{failures} gate failure(s): regression beyond "
              f"{tolerance:.0%}, vanished baseline row, or non-Release "
              f"snapshot — investigate or refresh the committed "
              f"baseline with scripts/bench_json.sh")
    return failures == 0


def table4_key(row):
    return tuple(
        str(row.get(k, ""))
        for k in ("kind", "platform", "model", "method", "mode",
                  "precision"))


# Peak-memory metrics: growth beyond the tolerance FAILS the gate.
GATED_TABLE4_FIELDS = ("total_bytes", "peak_live_bytes",
                       "act_weight_bytes")
# Reported on drift but never gated (layout shifts, artifact sizes).
INFO_TABLE4_FIELDS = ("arena_bytes", "workspace_bytes",
                      "plan_file_bytes")


def check_table4(base, fresh, tolerance):
    b = {table4_key(r): r for r in base}
    f = {table4_key(r): r for r in fresh}
    drifted = 0
    failures = 0
    for key in sorted(set(b) & set(f)):
        for field in GATED_TABLE4_FIELDS + INFO_TABLE4_FIELDS:
            if field not in b[key]:
                continue  # new fields gate once the baseline has them
            if field not in f[key]:
                # A gated metric VANISHING is a gate bypass, not
                # drift: fail it so a bench change cannot silently
                # stop emitting the number the gate watches.
                drifted += 1
                gate_bypass = field in GATED_TABLE4_FIELDS
                failures += gate_bypass
                status = "FAIL" if gate_bypass else "drift"
                print(f"  [{status}] {'/'.join(k for k in key if k)} "
                      f"{field}: {b[key][field]} -> (missing)")
                continue
            old, new = b[key][field], f[key][field]
            if old == new:
                continue
            drifted += 1
            regressed = (field in GATED_TABLE4_FIELDS and old > 0
                         and new > old * (1.0 + tolerance))
            status = "FAIL" if regressed else "drift"
            failures += regressed
            print(f"  [{status}] {'/'.join(k for k in key if k)} "
                  f"{field}: {old} -> {new}")
    for key in sorted(set(b) ^ set(f)):
        drifted += 1
        if key in b:
            # A whole baseline row vanishing is the row-level version
            # of the field-vanishing bypass above: whatever it gated
            # is no longer watched, so it fails until the committed
            # baseline is refreshed.
            failures += 1
            print(f"  [FAIL] baseline-only row: "
                  f"{'/'.join(k for k in key if k)}")
        else:
            print(f"  [drift] fresh-only row: "
                  f"{'/'.join(k for k in key if k)}")
    if failures:
        print(f"{failures} peak-memory regression(s) beyond "
              f"{tolerance:.0%} vs the committed table4 baseline — "
              f"deterministic numbers, so this is a real planner "
              f"change: fix it or refresh BENCH_table4.json in this "
              f"PR as the explicit sign-off")
    elif drifted:
        print(f"{drifted} memory-plan drift(s) vs the committed "
              f"table4 baseline (none beyond the {tolerance:.0%} "
              f"peak-memory gate) — explain in the PR or refresh "
              f"BENCH_table4.json")
    else:
        print("  table4 memory plan matches the committed baseline "
              "exactly")
    return failures == 0


# The continuous-batching acceptance bar: a burst of batch-1 requests
# must execute in at most half the bucket runs of per-request serving.
# Run counts are policy, not timing, so this floor is host-independent.
MIN_BURST_RUN_REDUCTION = 2.0


def serve_key(row):
    return str(row.get("scenario", ""))


def check_serve(base, fresh, tolerance):
    b = {serve_key(r): r for r in base}
    f = {serve_key(r): r for r in fresh}
    failures = 0

    # Machine-independent floors on the fresh snapshot itself.
    for name in sorted(f):
        row = f[name]
        if row.get("build_type", "release") != "release":
            print(f"  [FAIL] {name}: snapshot built in debug mode — "
                  f"rebuild Release via scripts/bench_json.sh")
            failures += 1
        if int(row.get("parity", 0)) != 1:
            print(f"  [FAIL] {name}: coalesced outputs are NOT "
                  f"bit-identical to per-request serving (parity="
                  f"{row.get('parity')})")
            failures += 1
        if (name == "burst_singles"
                and float(row.get("run_reduction", 0))
                < MIN_BURST_RUN_REDUCTION):
            print(f"  [FAIL] {name}: run_reduction "
                  f"{row.get('run_reduction')} below the "
                  f"{MIN_BURST_RUN_REDUCTION}x continuous-batching "
                  f"acceptance bar")
            failures += 1

    for name in sorted(set(b) - set(f)):
        print(f"  [FAIL] baseline scenario missing from fresh run: "
              f"{name} — restore it or refresh the committed baseline "
              f"with scripts/bench_json.sh")
        failures += 1
    for name in sorted(set(f) - set(b)):
        print(f"  [info] new scenario (no baseline yet): {name}")

    for name in sorted(set(b) & set(f)):
        old, new = b[name], f[name]
        # Bigger-is-better policy metrics, tolerance-gated vs baseline.
        for field in ("run_reduction", "coalesce_rate"):
            ov, nv = float(old.get(field, 0)), float(new.get(field, 0))
            ratio = nv / ov if ov > 0 else float("inf")
            status = "ok"
            if ratio < 1.0 - tolerance:
                status = "FAIL"
                failures += 1
            print(f"  {name} {field}: {ov:.3g} -> {nv:.3g} "
                  f"({ratio:.2f}x)  {status}")
        # Amortized latency: gate the coalesced/solo ratio (lower is
        # better) so host speed cancels out of the comparison.
        os_, oc = (float(old.get("amortized_run_us_solo", 0)),
                   float(old.get("amortized_run_us_coalesced", 0)))
        ns_, nc = (float(new.get("amortized_run_us_solo", 0)),
                   float(new.get("amortized_run_us_coalesced", 0)))
        if os_ > 0 and ns_ > 0:
            orat, nrat = oc / os_, nc / ns_
            status = "ok"
            if orat > 0 and nrat > orat * (1.0 + tolerance):
                status = "FAIL"
                failures += 1
            print(f"  {name} amortized us/req (coalesced/solo): "
                  f"{orat:.2f} -> {nrat:.2f}  {status}")
    if failures:
        print(f"{failures} serve gate failure(s): parity break, "
              f"run-reduction below {MIN_BURST_RUN_REDUCTION}x, "
              f"regression beyond {tolerance:.0%}, vanished scenario, "
              f"or non-Release snapshot — investigate or refresh the "
              f"committed BENCH_serve.json with scripts/bench_json.sh")
    return failures == 0


# The incremental-decode acceptance bar: 4 lockstep streams must pack
# their single-token steps into at most half the decode-bucket runs of
# serial decode. Run counts are coalescer policy, not timing, so the
# floor is host-independent — and parity is the bit-exactness claim.
MIN_DECODE_RUN_REDUCTION = 2.0


def check_decode(base, fresh, tolerance):
    b = {serve_key(r): r for r in base}
    f = {serve_key(r): r for r in fresh}
    failures = 0

    # Machine-independent floors on the fresh snapshot itself.
    for name in sorted(f):
        row = f[name]
        if row.get("build_type", "release") != "release":
            print(f"  [FAIL] {name}: snapshot built in debug mode — "
                  f"rebuild Release via scripts/bench_json.sh")
            failures += 1
        if int(row.get("parity", 0)) != 1:
            print(f"  [FAIL] {name}: shared-run decode is NOT "
                  f"bit-identical to serial decode (parity="
                  f"{row.get('parity')})")
            failures += 1
        if (float(row.get("run_reduction", 0))
                < MIN_DECODE_RUN_REDUCTION):
            print(f"  [FAIL] {name}: run_reduction "
                  f"{row.get('run_reduction')} below the "
                  f"{MIN_DECODE_RUN_REDUCTION}x decode run-sharing "
                  f"acceptance bar at {row.get('streams')} streams")
            failures += 1
        if int(row.get("cache_bytes_per_session", 0)) <= 0:
            print(f"  [FAIL] {name}: cache_bytes_per_session is "
                  f"{row.get('cache_bytes_per_session')} — the KV "
                  f"cache vanished")
            failures += 1
        if int(row.get("fused_attention", 0)) == 1:
            if int(row.get("parity_vs_unfused_1e5", 0)) != 1:
                print(f"  [FAIL] {name}: fused logits are NOT within "
                      f"1e-5 of the unfused serial reference "
                      f"(parity_vs_unfused_1e5="
                      f"{row.get('parity_vs_unfused_1e5')})")
                failures += 1
            speedup = float(row.get("attn_fused_speedup", 0))
            if speedup < MIN_FUSED_ATTN_SPEEDUP:
                print(f"  [FAIL] {name}: attention-stage fused "
                      f"speedup {speedup:.2f}x below the "
                      f"{MIN_FUSED_ATTN_SPEEDUP}x fused-attention "
                      f"acceptance bar")
                failures += 1
            plf = int(row.get("peak_live_fused_bytes", 0))
            plu = int(row.get("peak_live_unfused_bytes", 0))
            if plf <= 0 or plu <= 0 or plf >= plu:
                print(f"  [FAIL] {name}: fused decode peak-live "
                      f"({plf}) is not strictly below unfused "
                      f"({plu})")
                failures += 1

    for name in sorted(set(b) - set(f)):
        print(f"  [FAIL] baseline scenario missing from fresh run: "
              f"{name} — restore it or refresh the committed baseline "
              f"with scripts/bench_json.sh")
        failures += 1
    for name in sorted(set(f) - set(b)):
        print(f"  [info] new scenario (no baseline yet): {name}")

    for name in sorted(set(b) & set(f)):
        old, new = b[name], f[name]
        # The fused-attention columns vanishing from a row that gated
        # them is a gate bypass, same as a vanished scenario.
        if (int(old.get("fused_attention", 0)) == 1
                and int(new.get("fused_attention", 0)) != 1):
            print(f"  [FAIL] {name}: fused-attention columns vanished "
                  f"from the fresh row — restore them or refresh the "
                  f"committed baseline with scripts/bench_json.sh")
            failures += 1
        for field in ("run_reduction", "coalesce_rate"):
            ov, nv = float(old.get(field, 0)), float(new.get(field, 0))
            ratio = nv / ov if ov > 0 else float("inf")
            status = "ok"
            if ratio < 1.0 - tolerance:
                status = "FAIL"
                failures += 1
            print(f"  {name} {field}: {ov:.3g} -> {nv:.3g} "
                  f"({ratio:.2f}x)  {status}")
        # Decode cost per token: gate the shared/solo ratio (lower is
        # better) so host speed cancels out of the comparison.
        os_, oc = (float(old.get("decode_us_per_token_solo", 0)),
                   float(old.get("decode_us_per_token_shared", 0)))
        ns_, nc = (float(new.get("decode_us_per_token_solo", 0)),
                   float(new.get("decode_us_per_token_shared", 0)))
        if os_ > 0 and ns_ > 0:
            orat, nrat = oc / os_, nc / ns_
            status = "ok"
            if orat > 0 and nrat > orat * (1.0 + tolerance):
                status = "FAIL"
                failures += 1
            print(f"  {name} decode us/token (shared/solo): "
                  f"{orat:.2f} -> {nrat:.2f}  {status}")
    if failures:
        print(f"{failures} decode gate failure(s): parity break, "
              f"run-sharing below {MIN_DECODE_RUN_REDUCTION}x, missing "
              f"cache bytes, a fused-attention floor (1e-5 parity, "
              f"{MIN_FUSED_ATTN_SPEEDUP}x attention speedup, fused "
              f"peak-live below unfused), regression beyond "
              f"{tolerance:.0%}, vanished scenario, or non-Release "
              f"snapshot — investigate or refresh the committed "
              f"BENCH_decode.json with scripts/bench_json.sh")
    return failures == 0


def is_decode_doc(doc):
    """Flat decode-stream rows (checked before the serve shape: both
    are flat scenario lists, distinguished by their kind prefix)."""
    return (isinstance(doc, list) and len(doc) > 0
            and str(doc[0].get("kind", "")).startswith("decode"))


def is_serve_doc(doc):
    """Flat serve-coalescing rows vs the table4 flat list."""
    return (isinstance(doc, list) and len(doc) > 0
            and str(doc[0].get("kind", "")).startswith("serve"))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max allowed single-thread throughput "
                         "regression (default 0.25)")
    ap.add_argument("--table4-tolerance", type=float, default=0.05,
                    help="max allowed peak-memory growth before the "
                         "table4 gate fails (default 0.05)")
    args = ap.parse_args()

    with open(args.baseline) as fp:
        base = json.load(fp)
    with open(args.fresh) as fp:
        fresh = json.load(fp)

    if is_decode_doc(base) or is_decode_doc(fresh):
        print(f"decode serving gate: {args.baseline} vs {args.fresh} "
              f"(parity + {MIN_DECODE_RUN_REDUCTION}x run-sharing "
              f"floors, tolerance {args.tolerance:.0%} vs baseline)")
        ok = check_decode(base, fresh, args.tolerance)
    elif is_serve_doc(base) or is_serve_doc(fresh):
        print(f"serve coalescing gate: {args.baseline} vs "
              f"{args.fresh} (parity + {MIN_BURST_RUN_REDUCTION}x "
              f"run-reduction floors, tolerance {args.tolerance:.0%} "
              f"vs baseline)")
        ok = check_serve(base, fresh, args.tolerance)
    elif isinstance(base, list):
        print(f"table4 gate: {args.baseline} vs {args.fresh} "
              f"(tolerance {args.table4_tolerance:.0%} on peak "
              f"memory)")
        ok = check_table4(base, fresh, args.table4_tolerance)
    else:
        print(f"throughput gate: {args.baseline} vs {args.fresh} "
              f"(tolerance {args.tolerance:.0%} on single-thread rows)")
        ok = check_gbench(base, fresh, args.tolerance)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
