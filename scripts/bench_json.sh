#!/usr/bin/env bash
# Machine-readable benchmark snapshot: runs the memory bench and the
# kernel microbench with --json and drops BENCH_table4.json /
# BENCH_kernels.json at the repo root — the perf-trajectory files a
# re-anchor (or CI trend job) diffs against previous PRs.
#
# Usage: scripts/bench_json.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
if [ ! -d "$BUILD" ]; then
    echo "build dir '$BUILD' missing; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
    exit 1
fi

"$BUILD"/bench_table4_memory --json BENCH_table4.json > /dev/null
echo "wrote BENCH_table4.json"

if [ -x "$BUILD"/bench_kernels ]; then
    # Short min_time: this snapshots relative kernel throughput
    # (fp32 vs blocked vs winograd vs int8), not absolute numbers.
    "$BUILD"/bench_kernels --json BENCH_kernels.json \
        --benchmark_min_time=0.05 > /dev/null
    echo "wrote BENCH_kernels.json"
else
    echo "bench_kernels not built (google-benchmark missing); skipped" >&2
fi
