#!/usr/bin/env bash
# Machine-readable benchmark snapshot: runs the memory bench, the
# kernel microbench, and the serving coalescing + decode scenarios
# with --json and drops BENCH_table4.json / BENCH_kernels.json /
# BENCH_serve.json / BENCH_decode.json at the repo root — the
# perf-trajectory files a re-anchor (or CI trend job) diffs against
# previous PRs.
#
# Usage: scripts/bench_json.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
if [ ! -d "$BUILD" ]; then
    echo "build dir '$BUILD' missing; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
    exit 1
fi

# Refuse to snapshot anything but a plain Release build: a debug or
# sanitizer baseline poisons the perf gate (every later Release run
# "passes" trivially, and real regressions hide behind the slack).
CACHE="$BUILD/CMakeCache.txt"
if [ ! -f "$CACHE" ]; then
    echo "no CMakeCache.txt in '$BUILD'; not a configured build dir" >&2
    exit 1
fi
BT="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")"
if [ "$BT" != "Release" ]; then
    echo "refusing to benchmark: CMAKE_BUILD_TYPE is '${BT:-<unset>}', need Release" >&2
    echo "reconfigure with: cmake -B $BUILD -S . -DCMAKE_BUILD_TYPE=Release" >&2
    exit 1
fi
for SAN in PE_SANITIZE PE_TSAN; do
    if sed -n "s/^$SAN:[^=]*=//p" "$CACHE" | grep -qi '^on$'; then
        echo "refusing to benchmark: $SAN=ON in '$BUILD' (sanitizer builds are not perf baselines)" >&2
        exit 1
    fi
done

"$BUILD"/bench_table4_memory --json BENCH_table4.json > /dev/null
echo "wrote BENCH_table4.json"

# Continuous-batching rows: run reduction / coalesce rate are policy
# counts (deterministic), amortized latency is gated as a
# coalesced/solo ratio so host speed cancels.
"$BUILD"/serve_bench --json BENCH_serve.json > /dev/null
echo "wrote BENCH_serve.json"

# Incremental-decode rows: decode-parity and run-sharing are policy
# counts (deterministic); the us/token columns are gated only as a
# shared/solo ratio so host speed cancels.
"$BUILD"/decode_bench --json BENCH_decode.json > /dev/null
echo "wrote BENCH_decode.json"

if [ -x "$BUILD"/bench_kernels ]; then
    # Short min_time: this snapshots relative kernel throughput
    # (fp32 vs blocked vs winograd vs int8), not absolute numbers.
    "$BUILD"/bench_kernels --json BENCH_kernels.json \
        --benchmark_min_time=0.05 > /dev/null
    echo "wrote BENCH_kernels.json"
else
    echo "bench_kernels not built (google-benchmark missing); skipped" >&2
fi
