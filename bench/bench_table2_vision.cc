/**
 * @file
 * Table 2: transfer-learning accuracy of Full-BP vs Bias-only vs
 * Sparse-BP on three vision models across the seven downstream
 * tasks. Models pretrain on the ImageNet-proxy distribution, then
 * fine-tune per task under each scheme.
 *
 * Expected shape (paper): sparse-BP within ~1 point of full-BP on
 * average; bias-only below both. Cost columns show what sparse-BP
 * buys.
 */

#include <functional>

#include "bench_common.h"

using namespace pe;
using namespace pe::bench;

namespace {

constexpr int64_t kRes = 16;
constexpr int64_t kBatch = 8;

struct Family {
    std::string name;
    std::function<ModelSpec(const VisionConfig &, Rng &, ParamStore *)>
        build;
    VisionConfig cfg;
    int biasBlocks, weightBlocks;
};

std::vector<Family>
families()
{
    VisionConfig mcu;
    mcu.batch = kBatch;
    mcu.resolution = kRes;
    mcu.width = 0.5;
    mcu.blocks = 5;

    VisionConfig mbv2;
    mbv2.batch = kBatch;
    mbv2.resolution = kRes;
    mbv2.width = 0.4;
    mbv2.blocks = 6;

    VisionConfig rn;
    rn.batch = kBatch;
    rn.resolution = kRes;
    rn.width = 0.25;
    rn.blocks = 4;

    return {
        {"MCUNet-proxy", buildMcuNet, mcu, 3, 2},
        {"MobileNetV2", buildMobileNetV2, mbv2, 3, 3},
        {"ResNet", buildResNet, rn, 2, 2},
    };
}

/** Deep-copy the store, dropping the task head (re-initialized). */
std::shared_ptr<ParamStore>
bodyOf(const ParamStore &pretrained)
{
    auto out = std::make_shared<ParamStore>();
    for (const auto &[name, t] : pretrained.all()) {
        if (name.rfind("head.", 0) == 0)
            continue;
        if (name.find(".m") != std::string::npos ||
            name.find(".v") != std::string::npos ||
            name.find(".apply") != std::string::npos) {
            continue; // optimizer state does not transfer
        }
        out->set(name, t.clone());
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Table 2: vision transfer accuracy "
                "(synthetic tasks; see DESIGN.md substitutions) ===\n\n");
    int pretrain_steps = scaledSteps(220);
    int finetune_steps = scaledSteps(90);

    for (const Family &fam : families()) {
        // Pretrain once on the ImageNet proxy.
        Rng rng(41);
        SyntheticVision pre = SyntheticVision::pretrain(3, kRes);
        VisionConfig pre_cfg = fam.cfg;
        pre_cfg.numClasses = pre.classes();
        auto pre_store = std::make_shared<ParamStore>();
        ModelSpec pm = fam.build(pre_cfg, rng, pre_store.get());
        CompileOptions opt;
        opt.optim = OptimConfig::adam(0.004);
        {
            auto prog = compileTraining(pm.graph, pm.loss,
                                        SparseUpdateScheme::full(), opt,
                                        pre_store);
            Rng r(97);
            finetune(
                prog,
                [&](int64_t b, Rng &rr) { return pre.sample(b, rr); },
                kBatch, pretrain_steps, r);
        }

        std::printf("--- %s ---\n", fam.name.c_str());
        printRow({"method", "avg", "cars", "cifar", "cub", "flowers",
                  "foods", "pets", "vww", "flops", "arena"},
                 9);

        struct Method {
            std::string name;
            std::function<SparseUpdateScheme(const ModelSpec &)> scheme;
        };
        std::vector<Method> methods = {
            {"full-bp",
             [](const ModelSpec &) { return SparseUpdateScheme::full(); }},
            {"bias",
             [](const ModelSpec &) { return biasOnlyScheme(); }},
            {"sparse",
             [&](const ModelSpec &m) {
                 return cnnSparseScheme(m, fam.biasBlocks,
                                        fam.weightBlocks);
             }},
        };

        for (const Method &method : methods) {
            std::vector<std::string> cells = {method.name, ""};
            double sum = 0;
            double rel_flops = 0, rel_arena = 0;
            for (const std::string &task :
                 SyntheticVision::taskNames()) {
                SyntheticVision ds = SyntheticVision::task(task, 3,
                                                           kRes);
                VisionConfig cfg = fam.cfg;
                cfg.numClasses = ds.classes();
                auto store = bodyOf(*pre_store);
                Rng mr(13);
                ModelSpec m = fam.build(cfg, mr, store.get());
                CompileOptions fopt;
                fopt.optim = OptimConfig::adam(0.004);
                auto prog = compileTraining(m.graph, m.loss,
                                            method.scheme(m), fopt,
                                            store);
                Rng r(7);
                finetune(
                    prog,
                    [&](int64_t b, Rng &rr) { return ds.sample(b, rr); },
                    kBatch, finetune_steps, r);
                auto infer = compileInference(m.graph, {m.logits}, fopt,
                                              store);
                double acc = evalAccuracy(
                    infer,
                    [&](int64_t b, Rng &rr) { return ds.sample(b, rr); },
                    kBatch, 12, r);
                sum += acc;
                cells.push_back(fmt(100 * acc, 1));
                rel_flops = prog.report().flopsPerStep;
                rel_arena = static_cast<double>(prog.report().arenaBytes);
            }
            cells[1] = fmt(100 * sum / 7.0, 1);
            cells.push_back(fmt(rel_flops / 1e6, 1) + "M");
            cells.push_back(fmtBytes(static_cast<int64_t>(rel_arena)));
            printRow(cells, 9);
        }
        std::printf("\n");
    }
    return 0;
}
