/**
 * @file
 * Table 1: framework capability matrix. The entries for PockEngine
 * are *verified live* against the implementation (compile a model,
 * check the report), not hard-coded claims; baseline rows describe
 * the EagerEngine architecture profiles this repository implements.
 */

#include "baseline/eager.h"
#include "bench_common.h"
#include "engine/engine.h"
#include "frontend/models.h"

using namespace pe;
using namespace pe::bench;

int
main()
{
    std::printf("=== Table 1: framework comparison ===\n\n");
    printRow({"Framework", "Training", "Sparse-BP", "No-host-lang",
              "Edge-kernels", "CT-AutoDiff", "Graph-opt"},
             14);

    auto row = [](const std::string &name, bool t, bool s, bool nh,
                  bool ek, bool ct, bool go) {
        auto b = [](bool v) { return std::string(v ? "yes" : "no"); };
        printRow({name, b(t), b(s), b(nh), b(ek), b(ct), b(go)}, 14);
    };
    // Baseline architectures (as modelled by baseline/EagerEngine):
    // runtime autodiff, host-language driver, no training-graph opts.
    row("PyTorch", true, false, false, false, false, false);
    row("TensorFlow", true, false, false, false, false, false);
    row("Jax", true, false, false, false, false, false);
    row("TVM", false, false, true, true, false, true);
    row("MNN", true, false, true, true, false, false);

    // PockEngine row, verified against a live compile.
    Rng rng(1);
    VisionConfig cfg;
    cfg.batch = 1;
    cfg.resolution = 16;
    cfg.blocks = 4;
    ModelSpec m = buildMcuNet(cfg, rng, nullptr);
    CompileOptions opt;
    CompiledGraph sparse = compileGraphOnly(m.graph, m.loss,
                                            cnnSparseScheme(m, 2, 1),
                                            opt);
    bool supports_training = sparse.report.trainableTensors > 0;
    bool supports_sparse = sparse.report.backwardNodes > 0;
    bool compile_time_ad = sparse.report.backwardNodes > 0;
    bool graph_opts = sparse.report.fusions > 0 ||
                      sparse.report.prunedNodes > 0;
    row("PockEngine", supports_training, supports_sparse, true, true,
        compile_time_ad, graph_opts);

    std::printf("\nlive verification: backward nodes emitted at compile "
                "time = %d, fusions = %d, pruned nodes = %d\n",
                sparse.report.backwardNodes, sparse.report.fusions,
                sparse.report.prunedNodes);
    return 0;
}
