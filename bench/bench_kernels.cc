/**
 * @file
 * Kernel-variant microbenchmarks (google-benchmark): the Section 4.3
 * claims that backend switching pays — blocked vs naive GEMM,
 * im2col / Winograd vs direct convolution, fused vs unfused
 * conv+bias+relu, and the SIMD kernel tier (scalar vs "@avx2"/"@neon"
 * rows for GEMM, im2col conv, int8 GEMM and int8 depthwise).
 *
 * Tier rows register ONLY when this host's registry has the variant,
 * so a scalar-only machine emits a scalar-only JSON; the snapshot's
 * custom context records pe_simd_tier and pe_build_type so
 * scripts/bench_check.py can tell "tier unavailable" from "row
 * silently vanished" and refuse debug-build numbers outright.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "frontend/builder.h"
#include "hw/threadpool.h"
#include "ir/graph.h"
#include "kernels/kernel.h"
#include "passes/passes.h"
#include "runtime/executor.h"

namespace pe {
namespace {

struct ConvFixture {
    Graph g;
    int node;
    Tensor x, w, bias, out;
    DirectWorkspace ws;

    ConvFixture(OpKind op, int64_t ch, int64_t hw,
                const std::string &variant, int64_t act = 0)
    {
        Rng rng(1);
        int xi = g.input({1, ch, hw, hw}, "x");
        int wi = g.param({ch, ch, 3, 3}, "w", false);
        Attrs a;
        a.set("stride", static_cast<int64_t>(1));
        a.set("pad", static_cast<int64_t>(1));
        if (op == OpKind::ConvBiasAct) {
            a.set("act", act);
            int bi = g.param({ch, 1, 1}, "b", false);
            node = g.add(op, {xi, wi, bi}, std::move(a));
        } else {
            node = g.add(op, {xi, wi}, std::move(a));
        }
        if (variant == "winograd")
            g.node(node).attrs.set("staticWeight",
                                   static_cast<int64_t>(1));
        x = Tensor::randn({1, ch, hw, hw}, rng);
        w = Tensor::randn({ch, ch, 3, 3}, rng, 0.2f);
        bias = Tensor::randn({ch, 1, 1}, rng);
        out = Tensor::zeros(g.node(node).shape);
        (void)variant; // workspace attached per run()
    }

    void
    run(const std::string &variant)
    {
        KernelCtx ctx;
        const Node &n = g.node(node);
        ctx.node = &n;
        ctx.in = {x.data(), w.data()};
        ctx.inShapes = {&g.node(n.inputs[0]).shape,
                        &g.node(n.inputs[1]).shape};
        if (n.op == OpKind::ConvBiasAct) {
            ctx.in.push_back(bias.data());
            ctx.inShapes.push_back(&g.node(n.inputs[2]).shape);
        }
        ctx.out = out.data();
        ctx.outShape = &n.shape;
        ws.attach(ctx, g, n, variant);
        lookupKernel(n.op, variant)(ctx);
    }
};

void
BM_MatMul(benchmark::State &state, const std::string &variant)
{
    int64_t n = state.range(0);
    Rng rng(1);
    Graph g;
    int a = g.input({n, n}, "a");
    int b = g.input({n, n}, "b");
    int node = g.add(OpKind::MatMul, {a, b});
    Tensor ta = Tensor::randn({n, n}, rng);
    Tensor tb = Tensor::randn({n, n}, rng);
    Tensor out({n, n});
    KernelCtx ctx;
    ctx.node = &g.node(node);
    ctx.in = {ta.data(), tb.data()};
    ctx.inShapes = {&g.node(a).shape, &g.node(b).shape};
    ctx.out = out.data();
    ctx.outShape = &g.node(node).shape;
    DirectWorkspace ws;
    ws.attach(ctx, g, g.node(node), variant);
    KernelFn fn = lookupKernel(OpKind::MatMul, variant);
    for (auto _ : state) {
        fn(ctx);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

/**
 * Thread-scaling GEMM: shard the blocked kernel over output rows via
 * the pool, exactly as the partitioned executor does. Reports
 * GFLOP/s; compare thread counts for the parallel-runtime speedup.
 */
void
BM_MatMulThreads(benchmark::State &state)
{
    int64_t n = state.range(0);
    int threads = static_cast<int>(state.range(1));
    Rng rng(1);
    Graph g;
    int a = g.input({n, n}, "a");
    int b = g.input({n, n}, "b");
    int node = g.add(OpKind::MatMul, {a, b});
    Tensor ta = Tensor::randn({n, n}, rng);
    Tensor tb = Tensor::randn({n, n}, rng);
    Tensor out({n, n});
    KernelCtx ctx;
    ctx.node = &g.node(node);
    ctx.in = {ta.data(), tb.data()};
    ctx.inShapes = {&g.node(a).shape, &g.node(b).shape};
    ctx.out = out.data();
    ctx.outShape = &g.node(node).shape;
    KernelInfo info = lookupKernelInfo(OpKind::MatMul, "blocked");
    WorkspaceSpec spec = kernelWorkspace(g, g.node(node), "blocked");
    ThreadPool *pool = HostDevice::instance().pool(threads);
    // Split by the REQUESTED thread count, not the pool's size — the
    // process-wide pool only grows, so a larger one may already exist.
    std::vector<int64_t> bounds =
        splitRange(info.part.extent(ctx), info.part.minGrain, threads);
    int shards = static_cast<int>(bounds.size()) - 1;
    // One workspace instance per shard, as the executor binds them.
    std::vector<std::vector<float>> shard_ws(
        std::max(1, shards),
        std::vector<float>((spec.bytesPerShard + 3) / 4, 0.0f));
    ctx.workspace = shard_ws[0].data();
    for (auto _ : state) {
        if (pool && shards > 1) {
            pool->dispatch(shards, [&](int i) {
                KernelCtx shard = ctx;
                shard.begin = bounds[i];
                shard.end = bounds[i + 1];
                shard.workspace = shard_ws[i].data();
                info.fn(shard);
            });
        } else {
            info.fn(ctx);
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2e-9 *
            static_cast<double>(n) * static_cast<double>(n) *
            static_cast<double>(n),
        benchmark::Counter::kIsRate);
}

void
BM_ConvVariant(benchmark::State &state, const std::string &variant)
{
    int64_t ch = state.range(0);
    ConvFixture f(OpKind::Conv2d, ch, 16, variant);
    for (auto _ : state) {
        f.run(variant);
        benchmark::DoNotOptimize(f.out.data());
    }
}

void
BM_FusedConvBiasRelu(benchmark::State &state)
{
    int64_t ch = state.range(0);
    ConvFixture f(OpKind::ConvBiasAct, ch, 16, "", kActRelu);
    for (auto _ : state) {
        f.run("");
        benchmark::DoNotOptimize(f.out.data());
    }
}

void
BM_UnfusedConvBiasRelu(benchmark::State &state)
{
    // Conv, then separate broadcast-add, then separate relu: three
    // dispatches and two extra buffer sweeps.
    int64_t ch = state.range(0);
    ConvFixture f(OpKind::Conv2d, ch, 16, "");
    Graph g2;
    int ci = g2.input(f.g.node(f.node).shape, "c");
    int bi = g2.param({ch, 1, 1}, "b", false);
    int addn = g2.add(OpKind::Add, {ci, bi});
    int relun = g2.add(OpKind::Relu, {addn});
    Tensor mid(f.g.node(f.node).shape);
    Tensor out(f.g.node(f.node).shape);
    for (auto _ : state) {
        f.run("");
        KernelCtx a;
        a.node = &g2.node(addn);
        a.in = {f.out.data(), f.bias.data()};
        a.inShapes = {&g2.node(ci).shape, &g2.node(bi).shape};
        a.out = mid.data();
        a.outShape = &g2.node(addn).shape;
        lookupKernel(OpKind::Add, "")(a);
        KernelCtx r;
        r.node = &g2.node(relun);
        r.in = {mid.data()};
        r.inShapes = {&g2.node(addn).shape};
        r.out = out.data();
        r.outShape = &g2.node(relun).shape;
        lookupKernel(OpKind::Relu, "")(r);
        benchmark::DoNotOptimize(out.data());
    }
}

BENCHMARK_CAPTURE(BM_MatMul, naive, std::string(""))
    ->Arg(64)
    ->Arg(128);
BENCHMARK_CAPTURE(BM_MatMul, blocked, std::string("blocked"))
    ->Arg(64)
    ->Arg(128);
BENCHMARK(BM_MatMulThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ConvVariant, direct, std::string(""))
    ->Arg(16)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_ConvVariant, im2col, std::string("im2col"))
    ->Arg(16)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_ConvVariant, winograd, std::string("winograd"))
    ->Arg(16)
    ->Arg(32);
/**
 * Int8 GEMM vs fp32: same logical [n,n]x[n,n] product, i8 operands
 * with int32 accumulation and per-column requant. Items processed
 * counts multiply-accumulates, so GOP/s is directly comparable with
 * the fp32 GFLOP/s counters above.
 */
void
BM_QuantMatMul(benchmark::State &state, const std::string &variant)
{
    int64_t n = state.range(0);
    Rng rng(1);
    Graph g;
    int a = g.input({n, n}, "a");
    int b = g.input({n, n}, "b");
    int s = g.input({n}, "s");
    Attrs at;
    at.set("xScale", 0.01);
    at.set("xZp", static_cast<int64_t>(3));
    at.set("yScale", 0.05);
    at.set("yZp", static_cast<int64_t>(0));
    at.set("perChannel", static_cast<int64_t>(1));
    at.set("hasBias", static_cast<int64_t>(0));
    int node = g.add(OpKind::QuantMatMul, {a, b, s}, std::move(at));
    std::vector<float> qa((n * n + 3) / 4), qb((n * n + 3) / 4);
    Rng vr(2);
    for (int64_t i = 0; i < n * n; ++i) {
        reinterpret_cast<int8_t *>(qa.data())[i] =
            static_cast<int8_t>(vr.randint(255) - 127);
        reinterpret_cast<int8_t *>(qb.data())[i] =
            static_cast<int8_t>(vr.randint(255) - 127);
    }
    std::vector<float> scales(static_cast<size_t>(n), 0.02f);
    std::vector<float> out((n * n + 3) / 4);
    KernelCtx ctx;
    ctx.node = &g.node(node);
    ctx.in = {qa.data(), qb.data(), scales.data()};
    ctx.inShapes = {&g.node(a).shape, &g.node(b).shape,
                    &g.node(s).shape};
    ctx.out = out.data();
    ctx.outShape = &g.node(node).shape;
    DirectWorkspace ws;
    ws.attach(ctx, g, g.node(node), variant);
    KernelFn fn = lookupKernel(OpKind::QuantMatMul, variant);
    for (auto _ : state) {
        fn(ctx);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    state.counters["GOP/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2e-9 *
            static_cast<double>(n) * static_cast<double>(n) *
            static_cast<double>(n),
        benchmark::Counter::kIsRate);
}

/**
 * Int8 depthwise conv: the MCUNet/MobileNetV2 hot loop. "" is the
 * dequant->fp32->requant reference tier the native kernel replaced;
 * "int8" is the scalar native kernel; the SIMD row registers when the
 * host has the tier. Items processed counts multiply-accumulates.
 */
void
BM_QuantDwConv(benchmark::State &state, const std::string &variant)
{
    int64_t ch = state.range(0);
    int64_t hw = 16, k = 3;
    Graph g;
    int xi = g.input({1, ch, hw, hw}, "x");
    int wi = g.input({ch, 1, k, k}, "w");
    int bi = g.input({ch, 1, 1}, "b");
    int si = g.input({ch}, "s");
    Attrs a;
    a.set("stride", static_cast<int64_t>(1));
    a.set("pad", static_cast<int64_t>(1));
    a.set("act", static_cast<int64_t>(1)); // relu
    a.set("hasBias", static_cast<int64_t>(1));
    a.set("perChannel", static_cast<int64_t>(1));
    a.set("xScale", 0.01);
    a.set("xZp", static_cast<int64_t>(3));
    a.set("yScale", 0.02);
    a.set("yZp", static_cast<int64_t>(0));
    int node =
        g.add(OpKind::QuantDwConv2d, {xi, wi, bi, si}, std::move(a));
    std::vector<float> qx((ch * hw * hw + 3) / 4),
        qw((ch * k * k + 3) / 4);
    Rng vr(2);
    for (int64_t i = 0; i < ch * hw * hw; ++i)
        reinterpret_cast<int8_t *>(qx.data())[i] =
            static_cast<int8_t>(vr.randint(255) - 127);
    for (int64_t i = 0; i < ch * k * k; ++i)
        reinterpret_cast<int8_t *>(qw.data())[i] =
            static_cast<int8_t>(vr.randint(255) - 127);
    std::vector<float> bias(static_cast<size_t>(ch), 0.1f);
    std::vector<float> scales(static_cast<size_t>(ch), 0.02f);
    int64_t out_n = numel(g.node(node).shape);
    std::vector<float> out((out_n + 3) / 4);
    KernelCtx ctx;
    ctx.node = &g.node(node);
    ctx.in = {qx.data(), qw.data(), bias.data(), scales.data()};
    ctx.inShapes = {&g.node(xi).shape, &g.node(wi).shape,
                    &g.node(bi).shape, &g.node(si).shape};
    ctx.out = out.data();
    ctx.outShape = &g.node(node).shape;
    DirectWorkspace ws;
    ws.attach(ctx, g, g.node(node), variant);
    KernelFn fn = lookupKernel(OpKind::QuantDwConv2d, variant);
    for (auto _ : state) {
        fn(ctx);
        benchmark::DoNotOptimize(out.data());
    }
    int64_t macs = out_n * k * k;
    state.SetItemsProcessed(state.iterations() * 2 * macs);
}

/**
 * Fused decode attention vs the unfused five-op chain
 * (BatchMatMul^T -> Scale -> Add(mask) -> Softmax -> BatchMatMul) at
 * the decode hot-loop shape: B rows of q [B,1,Dh] against a cached
 * [B,M,Dh] K/V slab, M = 32, Dh = 32. B = 16 is the LLaMA-proxy
 * decode bucket (4 streams x 4 heads, dim 128); B = 4 one stream.
 * Both ops in one graph; kernels are invoked directly, so the delta
 * is kernel work plus the chain's intermediate-buffer sweeps. The
 * chain's BatchMatMuls use the "" variant — at decode sizes the
 * scores tensor sits far below the blocked-GEMM threshold, so that
 * is exactly what the compiled decode plan binds.
 */
struct AttnFixture {
    Graph g;
    int fused, qk, sc, ad, sm, pv;
    Tensor q, k, v, mask;
    Tensor scores, scaled, masked, probs, out;

    AttnFixture(int64_t B, int64_t M, int64_t Dh)
    {
        Rng rng(1);
        int qi = g.input({B, 1, Dh}, "q");
        int ki = g.input({B, M, Dh}, "k");
        int vi = g.input({B, M, Dh}, "v");
        int mi = g.input({B, 1, M}, "mask");
        const double scale = 1.0 / std::sqrt(static_cast<double>(Dh));
        Attrs fa;
        fa.set("scale", scale);
        fused = g.add(OpKind::FusedAttention, {qi, ki, vi, mi},
                      std::move(fa));
        Attrs tb;
        tb.set("transB", static_cast<int64_t>(1));
        qk = g.add(OpKind::BatchMatMul, {qi, ki}, std::move(tb));
        Attrs al;
        al.set("alpha", scale);
        sc = g.add(OpKind::Scale, {qk}, std::move(al));
        ad = g.add(OpKind::Add, {sc, mi});
        sm = g.add(OpKind::Softmax, {ad});
        pv = g.add(OpKind::BatchMatMul, {sm, vi});
        q = Tensor::randn({B, 1, Dh}, rng);
        k = Tensor::randn({B, M, Dh}, rng);
        v = Tensor::randn({B, M, Dh}, rng);
        mask = Tensor::zeros({B, 1, M});
        scores = Tensor::zeros(g.node(qk).shape);
        scaled = Tensor::zeros(g.node(sc).shape);
        masked = Tensor::zeros(g.node(ad).shape);
        probs = Tensor::zeros(g.node(sm).shape);
        out = Tensor::zeros(g.node(fused).shape);
    }

    KernelCtx
    make(int node, std::vector<const float *> ins, Tensor &o)
    {
        KernelCtx c;
        const Node &n = g.node(node);
        c.node = &n;
        c.in = std::move(ins);
        for (int in : n.inputs)
            c.inShapes.push_back(&g.node(in).shape);
        c.out = o.data();
        c.outShape = &n.shape;
        return c;
    }
};

void
BM_FusedAttention(benchmark::State &state, const std::string &variant)
{
    int64_t B = state.range(0);
    AttnFixture f(B, 32, 32);
    KernelCtx c = f.make(
        f.fused, {f.q.data(), f.k.data(), f.v.data(), f.mask.data()},
        f.out);
    DirectWorkspace ws;
    ws.attach(c, f.g, f.g.node(f.fused), variant);
    KernelFn fn = lookupKernel(OpKind::FusedAttention, variant);
    for (auto _ : state) {
        fn(c);
        benchmark::DoNotOptimize(f.out.data());
    }
    state.SetItemsProcessed(state.iterations() * B);
}

void
BM_UnfusedAttention(benchmark::State &state)
{
    int64_t B = state.range(0);
    AttnFixture f(B, 32, 32);
    KernelCtx cqk =
        f.make(f.qk, {f.q.data(), f.k.data()}, f.scores);
    KernelCtx csc = f.make(f.sc, {f.scores.data()}, f.scaled);
    KernelCtx cad =
        f.make(f.ad, {f.scaled.data(), f.mask.data()}, f.masked);
    KernelCtx csm = f.make(f.sm, {f.masked.data()}, f.probs);
    KernelCtx cpv =
        f.make(f.pv, {f.probs.data(), f.v.data()}, f.out);
    DirectWorkspace w1, w2, w3, w4, w5;
    w1.attach(cqk, f.g, f.g.node(f.qk), "");
    w2.attach(csc, f.g, f.g.node(f.sc), "");
    w3.attach(cad, f.g, f.g.node(f.ad), "");
    w4.attach(csm, f.g, f.g.node(f.sm), "");
    w5.attach(cpv, f.g, f.g.node(f.pv), "");
    KernelFn fqk = lookupKernel(OpKind::BatchMatMul, "");
    KernelFn fsc = lookupKernel(OpKind::Scale, "");
    KernelFn fad = lookupKernel(OpKind::Add, "");
    KernelFn fsm = lookupKernel(OpKind::Softmax, "");
    KernelFn fpv = lookupKernel(OpKind::BatchMatMul, "");
    for (auto _ : state) {
        fqk(cqk);
        fsc(csc);
        fad(cad);
        fsm(csm);
        fpv(cpv);
        benchmark::DoNotOptimize(f.out.data());
    }
    state.SetItemsProcessed(state.iterations() * B);
}

BENCHMARK(BM_FusedConvBiasRelu)->Arg(16)->Arg(32);
BENCHMARK(BM_UnfusedConvBiasRelu)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_FusedAttention, base, std::string(""))
    ->Arg(4)
    ->Arg(16);
BENCHMARK(BM_UnfusedAttention)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_QuantMatMul, int8, std::string("int8"))
    ->Arg(64)
    ->Arg(128);
BENCHMARK_CAPTURE(BM_QuantDwConv, ref, std::string(""))
    ->Arg(32)
    ->Arg(96);
BENCHMARK_CAPTURE(BM_QuantDwConv, int8, std::string("int8"))
    ->Arg(32)
    ->Arg(96);

/**
 * Tracing overhead on the executor hot loop (src/obs/): a small MLP
 * forward program run through Executor::run(). arm = 0 is the
 * DISARMED path — the contract is that it costs one pointer test, so
 * this row must sit within noise of the pre-tracing baseline (it is
 * the row bench_check.py gates). arm = 1 runs with the span ring
 * armed (one clock pair + ring store per step) — informational, to
 * keep the armed cost honest too.
 */
void
BM_TraceOverhead(benchmark::State &state)
{
    const bool armed = state.range(0) != 0;
    Graph g;
    Rng rng(7);
    ParamStore store;
    NetBuilder nb(g, rng, &store);
    int x = nb.input({8, 16}, "x");
    int h = nb.relu(nb.linear(x, 64, "fc1"));
    h = nb.relu(nb.linear(h, 64, "fc2"));
    int logits = nb.linear(h, 4, "head");
    g.markOutput(logits);
    Executor ex(g, naturalOrder(g), store);
    Tensor in = Tensor::randn({8, 16}, rng);
    ex.bindInput("x", in);
    if (armed)
        ex.armTrace(1 << 16);
    for (auto _ : state) {
        ex.run();
        benchmark::DoNotOptimize(ex);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

/**
 * SIMD-tier rows, registered at static init only when the host
 * registry actually has the tier variants (capability-gated
 * registration makes hasKernelVariant the probe). Row names embed the
 * variant ("BM_MatMul/blocked@avx2/128"), which is how the perf gate
 * recognizes tier-dependent rows.
 */
struct SimdBenchRegistrar {
    SimdBenchRegistrar()
    {
        detail::ensureKernelsRegistered();
        SimdTier t = hostSimdTier();
        if (t == SimdTier::Scalar)
            return;
        std::string sfx = std::string("@") + simdTierName(t);
        if (hasKernelVariant(OpKind::MatMul, "blocked" + sfx))
            benchmark::RegisterBenchmark(
                ("BM_MatMul/blocked" + sfx).c_str(), BM_MatMul,
                "blocked" + sfx)
                ->Arg(64)
                ->Arg(128);
        if (hasKernelVariant(OpKind::Conv2d, "im2col" + sfx))
            benchmark::RegisterBenchmark(
                ("BM_ConvVariant/im2col" + sfx).c_str(),
                [sfx](benchmark::State &state) {
                    BM_ConvVariant(state, "im2col" + sfx);
                })
                ->Arg(16)
                ->Arg(32);
        if (hasKernelVariant(OpKind::QuantMatMul, "int8" + sfx))
            benchmark::RegisterBenchmark(
                ("BM_QuantMatMul/int8" + sfx).c_str(), BM_QuantMatMul,
                "int8" + sfx)
                ->Arg(64)
                ->Arg(128);
        if (hasKernelVariant(OpKind::QuantDwConv2d, "int8" + sfx))
            benchmark::RegisterBenchmark(
                ("BM_QuantDwConv/int8" + sfx).c_str(), BM_QuantDwConv,
                "int8" + sfx)
                ->Arg(32)
                ->Arg(96);
        // FusedAttention's tier candidate is the bare tier name (the
        // base variant is ""). The row still embeds "@avx2"/"@neon"
        // so the perf gate's tier detection recognizes it.
        if (hasKernelVariant(OpKind::FusedAttention, simdTierName(t)))
            benchmark::RegisterBenchmark(
                ("BM_FusedAttention/base" + sfx).c_str(),
                BM_FusedAttention, std::string(simdTierName(t)))
                ->Arg(4)
                ->Arg(16);
    }
};
SimdBenchRegistrar g_simdBenchRegistrar;

} // namespace
} // namespace pe

/**
 * Custom main instead of BENCHMARK_MAIN(): accepts `--json <path>`
 * (the repo-wide machine-readable bench flag, see
 * scripts/bench_json.sh) and translates it to google-benchmark's
 * JSON reporter flags.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            args.push_back("--benchmark_out=" + std::string(argv[i + 1]));
            args.push_back("--benchmark_out_format=json");
            ++i;
            continue;
        }
        args.push_back(argv[i]);
    }
    std::vector<char *> cargs;
    for (std::string &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    // Stamp the snapshot with what actually produced it, so
    // scripts/bench_check.py can reject debug-build numbers and tell
    // a missing SIMD row apart from an incapable host.
#ifdef NDEBUG
    benchmark::AddCustomContext("pe_build_type", "release");
#else
    benchmark::AddCustomContext("pe_build_type", "debug");
#endif
    benchmark::AddCustomContext("pe_simd_tier",
                                pe::simdTierName(pe::hostSimdTier()));
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
