/**
 * @file
 * Table 4: peak training memory, Full-BP vs Sparse-BP, across batch
 * sizes, at the paper's full model scales. Numbers come from the
 * compile-time memory planner over the real (pruned, reordered)
 * training graph — no parameters are materialized, which is exactly
 * how the engine targets devices smaller than the build host.
 *
 * Expected shape: sparse-BP 2-6x smaller at bs>=4; savings grow with
 * batch size; an ablation row shows operator reordering's share.
 */

#include "bench_common.h"

using namespace pe;
using namespace pe::bench;

namespace {

void
row(const std::string &platform, const std::string &model,
    int64_t params, const Graph &g, int loss,
    const SparseUpdateScheme &full_scheme,
    const SparseUpdateScheme &sparse_scheme)
{
    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.01); // paper-style SGD memory
    CompiledGraph full = compileGraphOnly(g, loss, full_scheme, opt);
    CompiledGraph sparse = compileGraphOnly(g, loss, sparse_scheme, opt);
    CompileOptions no_reorder = opt;
    no_reorder.reorder = false;

    double ratio = static_cast<double>(full.report.totalBytes) /
                   static_cast<double>(sparse.report.totalBytes);
    printRow({platform, model, fmt(params / 1e6, 1) + "M", "full-bp",
              fmtBytes(full.report.totalBytes),
              fmtBytes(full.report.arenaBytes),
              fmtBytes(full.report.workspaceBytes), ""},
             16);
    printRow({"", "", "", "sparse-bp",
              fmtBytes(sparse.report.totalBytes),
              fmtBytes(sparse.report.arenaBytes),
              fmtBytes(sparse.report.workspaceBytes),
              fmt(ratio, 1) + "x"},
             16);
    printRow({"", "", "", "sparse(no-reord)", "",
              fmtBytes(sparse.report.arenaBytesNoReorder), "", ""},
             16);
}

} // namespace

int
main()
{
    std::printf("=== Table 4: training memory, full vs sparse BP "
                "(planner on paper-scale graphs) ===\n\n");
    printRow({"platform", "model", "params", "method", "total",
              "activations", "workspace", "save"},
             16);

    Rng rng(1);

    // MCU: MCUNet at 128x128, bs=1, aggressive sub-layer scheme.
    for (int64_t bs : {1}) {
        VisionConfig cfg = paperMcuNetConfig(bs);
        ModelSpec m = buildMcuNet(cfg, rng, nullptr);
        row("MCU(STM32)", "MCUNet bs" + std::to_string(bs),
            m.paramCount, m.graph, m.loss, SparseUpdateScheme::full(),
            cnnSparseScheme(m, 7, 4, 0.5));
    }

    // Jetson Nano: MobileNetV2 and ResNet-50 at 224x224.
    for (int64_t bs : {1, 4, 16}) {
        VisionConfig cfg = paperMobileNetV2Config(bs);
        ModelSpec m = buildMobileNetV2(cfg, rng, nullptr);
        row("JetsonNano", "MobileNetV2 bs" + std::to_string(bs),
            m.paramCount, m.graph, m.loss, SparseUpdateScheme::full(),
            cnnSparseScheme(m, 7, 7));
    }
    for (int64_t bs : {1, 4, 16}) {
        VisionConfig cfg = paperResNet50Config(bs);
        ModelSpec m = buildResNet(cfg, rng, nullptr);
        row("JetsonNano", "ResNet50 bs" + std::to_string(bs),
            m.paramCount, m.graph, m.loss, SparseUpdateScheme::full(),
            cnnSparseScheme(m, 8, 8));
    }

    // Jetson AGX Orin: BERT-base.
    for (int64_t bs : {1, 4, 16}) {
        NlpConfig cfg = paperBertBaseConfig(bs);
        ModelSpec m = buildBert(cfg, rng, nullptr);
        row("JetsonOrin", "BERT bs" + std::to_string(bs), m.paramCount,
            m.graph, m.loss, SparseUpdateScheme::full(),
            transformerSparseScheme(m, 6, 4));
    }

    // Jetson AGX Orin: LLaMA-v2 7B shapes (analysis only).
    {
        LlamaConfig cfg = paperLlama7bConfig(512);
        ModelSpec m = buildLlama(cfg, rng, nullptr);
        row("JetsonOrin", "LlamaV2-7B bs1", m.paramCount, m.graph,
            m.loss, SparseUpdateScheme::full(),
            transformerSparseScheme(m, 5, 5));
    }

    std::printf("\n\"total\" = params + activations + gradients + "
                "optimizer state + kernel workspaces; \"activations\" "
                "is the planned arena (workspaces included since "
                "Arena v2 — the \"workspace\" column breaks out their "
                "peak so rows stay comparable with pre-workspace "
                "reports); \"sparse(no-reord)\" isolates the "
                "operator-reordering contribution (Section 3.2).\n");
    return 0;
}
