/**
 * @file
 * Table 4: peak training memory, Full-BP vs Sparse-BP, across batch
 * sizes, at the paper's full model scales. Numbers come from the
 * compile-time memory planner over the real (pruned, reordered)
 * training graph — no parameters are materialized, which is exactly
 * how the engine targets devices smaller than the build host.
 *
 * A second section reports the PRECISION modes on a real
 * (materialized + calibrated) MCUNet: fp32 vs fp16 vs int8 deployment
 * footprints, where int8 pre-quantizes the frozen weights into i8
 * consts and stores activations as int8 — the paper's native edge
 * format. "act+weight" is planned arena value bytes + params +
 * consts (kernel workspaces stay a separate column, as everywhere
 * since Arena v2).
 *
 * Expected shape: sparse-BP 2-6x smaller at bs>=4; savings grow with
 * batch size; an ablation row shows operator reordering's share; the
 * int8 act+weight footprint lands at ~0.25-0.35x of fp32.
 *
 * `--json <path>` additionally writes every row as a flat JSON
 * record (see scripts/bench_json.sh).
 */

#include "bench_common.h"
#include "plan/plan.h"
#include "quant/quant.h"

using namespace pe;
using namespace pe::bench;

namespace {

JsonRows g_json;

void
row(const std::string &platform, const std::string &model,
    int64_t params, const Graph &g, int loss,
    const SparseUpdateScheme &full_scheme,
    const SparseUpdateScheme &sparse_scheme)
{
    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.01); // paper-style SGD memory
    CompiledGraph full = compileGraphOnly(g, loss, full_scheme, opt);
    CompiledGraph sparse = compileGraphOnly(g, loss, sparse_scheme, opt);
    CompileOptions no_reorder = opt;
    no_reorder.reorder = false;

    double ratio = static_cast<double>(full.report.totalBytes) /
                   static_cast<double>(sparse.report.totalBytes);
    printRow({platform, model, fmt(params / 1e6, 1) + "M", "full-bp",
              fmtBytes(full.report.totalBytes),
              fmtBytes(full.report.arenaBytes),
              fmtBytes(full.report.workspaceBytes), ""},
             16);
    printRow({"", "", "", "sparse-bp",
              fmtBytes(sparse.report.totalBytes),
              fmtBytes(sparse.report.arenaBytes),
              fmtBytes(sparse.report.workspaceBytes),
              fmt(ratio, 1) + "x"},
             16);
    printRow({"", "", "", "sparse(no-reord)", "",
              fmtBytes(sparse.report.arenaBytesNoReorder), "", ""},
             16);

    auto record = [&](const char *method, const CompileReport &r) {
        g_json.begin("table4_training");
        g_json.field("platform", platform);
        g_json.field("model", model);
        g_json.field("method", std::string(method));
        g_json.field("params", params);
        g_json.field("total_bytes", r.totalBytes);
        g_json.field("arena_bytes", r.arenaBytes);
        g_json.field("arena_bytes_no_reorder", r.arenaBytesNoReorder);
        g_json.field("workspace_bytes", r.workspaceBytes);
        g_json.field("param_bytes", r.paramBytes);
        g_json.field("peak_live_bytes", r.peakLiveBytes);
    };
    record("full-bp", full.report);
    record("sparse-bp", sparse.report);
}

/**
 * Precision-mode rows: a real MCUNet, materialized and calibrated.
 * Two metrics per row, because the modes win differently:
 * "act+weight" (every planned value + params + consts — the storage
 * footprint int8's 4x cut shows up in) and "peak live" (the
 * planner's peak simultaneously-live bytes incl. workspaces — where
 * fp16's training win lives: its per-use fp32 Dequantize transients
 * inflate the SUM but die immediately, while the halves persist for
 * backward).
 */
void
precisionSection()
{
    std::printf("\n=== Precision modes: MCUNet 128x128 bs1 "
                "(materialized + calibrated) ===\n\n");
    printRow({"precision", "mode", "act+weight", "vs fp32",
              "peak live", "vs fp32", "workspace", "fallbacks"},
             14);

    Rng rng(7);
    auto store = std::make_shared<ParamStore>();
    VisionConfig cfg = paperMcuNetConfig(1);
    ModelSpec m = buildMcuNet(cfg, rng, store.get());
    SyntheticVision data =
        SyntheticVision::pretrain(cfg.channels, cfg.resolution);
    std::vector<std::unordered_map<std::string, Tensor>> calib;
    for (int i = 0; i < 2; ++i)
        calib.push_back({{"x", data.sample(cfg.batch, rng).x}});
    calibrate(m.graph, *store, calib);

    double fp32_aw[2] = {0, 0}, fp32_peak[2] = {0, 0};
    for (Precision p :
         {Precision::F32, Precision::F16, Precision::Int8}) {
        for (int mode = 0; mode < 2; ++mode) { // 0 = infer, 1 = train
            CompileOptions opt;
            opt.precision = p;
            CompileReport r;
            int64_t plan_bytes = 0;
            if (mode == 0) {
                InferenceProgram prog =
                    compileInference(m.graph, {m.logits}, opt, store);
                r = prog.report();
                // Deployment artifact size: the binary plan file a
                // fleet/MCU would actually ship (src/plan/) —
                // deterministic, so drift is a real format/plan
                // change.
                plan_bytes = static_cast<int64_t>(
                    serializePlan(prog.graph(),
                                  prog.executor().exportArtifact(),
                                  prog.report(), *store)
                        .size());
            } else {
                opt.optim = OptimConfig::sgd(0.01);
                r = compileGraphOnly(m.graph, m.loss,
                                     cnnSparseScheme(m, 7, 4, 0.5),
                                     opt, store.get())
                        .report;
            }
            int64_t aw = r.actWeightBytes();
            int64_t peak = r.peakLiveBytes + r.paramBytes +
                           r.constBytes;
            if (p == Precision::F32) {
                fp32_aw[mode] = static_cast<double>(aw);
                fp32_peak[mode] = static_cast<double>(peak);
            }
            double aw_ratio = static_cast<double>(aw) / fp32_aw[mode];
            double peak_ratio =
                static_cast<double>(peak) / fp32_peak[mode];
            const char *mode_name =
                mode == 0 ? "infer" : "sparse-train";
            printRow({precisionName(p), mode_name, fmtBytes(aw),
                      fmt(aw_ratio, 2) + "x", fmtBytes(peak),
                      fmt(peak_ratio, 2) + "x",
                      fmtBytes(r.workspaceBytes),
                      std::to_string(r.kernelFallbacks)},
                     14);
            g_json.begin("table4_precision");
            g_json.field("model", std::string("MCUNet bs1"));
            g_json.field("mode", std::string(mode_name));
            g_json.field("precision", std::string(precisionName(p)));
            g_json.field("act_weight_bytes", aw);
            g_json.field("ratio_vs_fp32", aw_ratio);
            g_json.field("peak_live_bytes", peak);
            g_json.field("peak_ratio_vs_fp32", peak_ratio);
            g_json.field("weight_bytes", r.paramBytes + r.constBytes);
            g_json.field("workspace_bytes", r.workspaceBytes);
            g_json.field("arena_bytes", r.arenaBytes);
            g_json.field("total_bytes", r.totalBytes);
            g_json.field("kernel_fallbacks",
                         static_cast<int64_t>(r.kernelFallbacks));
            g_json.field("quantized_ops",
                         static_cast<int64_t>(r.quant.quantizedOps));
            g_json.field(
                "prequantized_weights",
                static_cast<int64_t>(r.quant.prequantizedWeights));
            if (mode == 0)
                g_json.field("plan_file_bytes", plan_bytes);
        }
    }
    std::printf("\nint8 infer pre-quantizes frozen weights to i8 "
                "consts (fp32 masters DCE'd); fp16 is an activation-"
                "STORAGE mode — its win is the sparse-train peak "
                "(halves persist for backward; the fp32 read copies "
                "die immediately), not the value sum.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = jsonPathFromArgs(argc, argv);

    std::printf("=== Table 4: training memory, full vs sparse BP "
                "(planner on paper-scale graphs) ===\n\n");
    printRow({"platform", "model", "params", "method", "total",
              "activations", "workspace", "save"},
             16);

    Rng rng(1);

    // MCU: MCUNet at 128x128, bs=1, aggressive sub-layer scheme.
    for (int64_t bs : {1}) {
        VisionConfig cfg = paperMcuNetConfig(bs);
        ModelSpec m = buildMcuNet(cfg, rng, nullptr);
        row("MCU(STM32)", "MCUNet bs" + std::to_string(bs),
            m.paramCount, m.graph, m.loss, SparseUpdateScheme::full(),
            cnnSparseScheme(m, 7, 4, 0.5));
    }

    // Jetson Nano: MobileNetV2 and ResNet-50 at 224x224.
    for (int64_t bs : {1, 4, 16}) {
        VisionConfig cfg = paperMobileNetV2Config(bs);
        ModelSpec m = buildMobileNetV2(cfg, rng, nullptr);
        row("JetsonNano", "MobileNetV2 bs" + std::to_string(bs),
            m.paramCount, m.graph, m.loss, SparseUpdateScheme::full(),
            cnnSparseScheme(m, 7, 7));
    }
    for (int64_t bs : {1, 4, 16}) {
        VisionConfig cfg = paperResNet50Config(bs);
        ModelSpec m = buildResNet(cfg, rng, nullptr);
        row("JetsonNano", "ResNet50 bs" + std::to_string(bs),
            m.paramCount, m.graph, m.loss, SparseUpdateScheme::full(),
            cnnSparseScheme(m, 8, 8));
    }

    // Jetson AGX Orin: BERT-base.
    for (int64_t bs : {1, 4, 16}) {
        NlpConfig cfg = paperBertBaseConfig(bs);
        ModelSpec m = buildBert(cfg, rng, nullptr);
        row("JetsonOrin", "BERT bs" + std::to_string(bs), m.paramCount,
            m.graph, m.loss, SparseUpdateScheme::full(),
            transformerSparseScheme(m, 6, 4));
    }

    // Jetson AGX Orin: LLaMA-v2 7B shapes (analysis only).
    {
        LlamaConfig cfg = paperLlama7bConfig(512);
        ModelSpec m = buildLlama(cfg, rng, nullptr);
        row("JetsonOrin", "LlamaV2-7B bs1", m.paramCount, m.graph,
            m.loss, SparseUpdateScheme::full(),
            transformerSparseScheme(m, 5, 5));
    }

    precisionSection();

    std::printf("\n\"total\" = params + activations + gradients + "
                "optimizer state + kernel workspaces; \"activations\" "
                "is the planned arena (workspaces included since "
                "Arena v2 — the \"workspace\" column breaks out their "
                "peak so rows stay comparable with pre-workspace "
                "reports); \"sparse(no-reord)\" isolates the "
                "operator-reordering contribution (Section 3.2).\n");

    if (!json_path.empty()) {
        if (!g_json.save(json_path)) {
            std::fprintf(stderr, "failed to write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return 0;
}
