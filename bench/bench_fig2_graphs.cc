/**
 * @file
 * Figures 2/3/5/6: the computation graphs of the four
 * backpropagation schemes. For a five-layer MLP (Fig. 2) and the
 * MobileNetV2 / BERT block schemes of Section 4.1 (Figs. 5/6), print
 * the backward-graph size, saved-activation footprint, and where the
 * backward chain stops — the structural facts the figures draw.
 */

#include "bench_common.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"

using namespace pe;
using namespace pe::bench;

namespace {

struct Mlp {
    Graph g;
    int loss;
};

Mlp
fiveLayerMlp()
{
    Mlp m;
    Rng rng(1);
    NetBuilder b(m.g, rng, nullptr);
    int x = b.input({8, 32}, "x");
    int h = x;
    for (int i = 0; i < 5; ++i) {
        h = b.linear(h, 32, "fc" + std::to_string(i));
        if (i < 4)
            h = b.relu(h);
    }
    int y = b.input({8}, "y");
    m.loss = b.crossEntropy(h, y);
    return m;
}

void
schemeRow(const std::string &name, const Graph &fwd, int loss,
          const SparseUpdateScheme &scheme)
{
    CompileOptions opt;
    CompiledGraph c = compileGraphOnly(fwd, loss, scheme, opt);
    printRow({name, std::to_string(c.report.backwardNodes),
              std::to_string(c.report.kernelSteps),
              fmtBytes(c.report.arenaBytes),
              fmt(c.report.flopsPerStep / 1e6, 2) + "M"},
             18);
}

} // namespace

int
main()
{
    std::printf("=== Fig. 2: BP schemes on a 5-layer MLP ===\n\n");
    printRow({"scheme", "bwd-nodes", "kernels", "arena", "flops"}, 18);
    Mlp m = fiveLayerMlp();

    schemeRow("full-bp", m.g, m.loss, SparseUpdateScheme::full());

    SparseUpdateScheme last = SparseUpdateScheme::frozen();
    last.updatePrefix("fc4.");
    last.updateBiasPrefix("fc4.");
    schemeRow("last-only-bp", m.g, m.loss, last);

    schemeRow("bias-only-bp", m.g, m.loss,
              SparseUpdateScheme::biasOnly());

    SparseUpdateScheme sparse = SparseUpdateScheme::frozen();
    sparse.updatePrefix("fc3.");
    sparse.updatePrefix("fc4.");
    sparse.updateBiasPrefix("fc2.");
    sparse.updateBiasPrefix("fc3.");
    sparse.updateBiasPrefix("fc4.");
    schemeRow("sparse-bp", m.g, m.loss, sparse);

    std::printf("\n=== Fig. 5/6a: MobileNetV2 sparse scheme "
                "(last-7-block biases, first conv weights) ===\n\n");
    Rng rng(2);
    VisionConfig vc;
    vc.batch = 1;
    vc.resolution = 32;
    ModelSpec mbv2 = buildMobileNetV2(vc, rng, nullptr);
    printRow({"scheme", "bwd-nodes", "kernels", "arena", "flops"}, 18);
    schemeRow("full-bp", mbv2.graph, mbv2.loss,
              SparseUpdateScheme::full());
    schemeRow("sparse-bp(7,7)", mbv2.graph, mbv2.loss,
              cnnSparseScheme(mbv2, 7, 7));

    std::printf("\n=== Fig. 5/6b: BERT sparse scheme (last-6 biases, "
                "attn+fc1 of last 4) ===\n\n");
    NlpConfig nc;
    nc.batch = 1;
    nc.seqLen = 16;
    nc.dim = 32;
    nc.heads = 2;
    nc.ffDim = 64;
    nc.layers = 12;
    ModelSpec bert = buildBert(nc, rng, nullptr);
    printRow({"scheme", "bwd-nodes", "kernels", "arena", "flops"}, 18);
    schemeRow("full-bp", bert.graph, bert.loss,
              SparseUpdateScheme::full());
    schemeRow("sparse-bp(6,4)", bert.graph, bert.loss,
              transformerSparseScheme(bert, 6, 4));

    std::printf("\nNote: \"bwd-nodes\" shrinking and the arena dropping "
                "under sparse schemes is the graph pruning of Figs. "
                "2-6; the backward chain stops at the earliest "
                "trainable block.\n");
    return 0;
}
