/**
 * @file
 * Table 5: LLaMA-v2 instruction tuning on Jetson AGX Orin — PyTorch
 * FT-Full vs PyTorch LoRA vs PockEngine FT-Full vs PockEngine
 * Sparse.
 *
 * Latency / memory columns: the 7B-shape graph costed on the Orin
 * device model (eager profile for the PyTorch rows, compiled profile
 * for PockEngine). Loss / win-rate proxy: a reduced decoder trained
 * end-to-end on the synthetic instruction corpus (Alpaca stand-in),
 * win rate = exact-match reply-token accuracy (see DESIGN.md).
 *
 * Expected shape: PockEngine-Full ~4x faster than PyTorch at equal
 * quality; Sparse ~2x faster again at near-equal quality; LoRA saves
 * memory but little latency.
 */

#include "baseline/eager.h"
#include "bench_common.h"
#include "hw/device.h"

using namespace pe;
using namespace pe::bench;

namespace {

struct QualityRow {
    double loss = 0;
    double winRate = 0;
};

/** Train the reduced decoder under a scheme; report loss + win rate. */
QualityRow
quality(const SparseUpdateScheme &scheme, int64_t lora_rank, int steps)
{
    LlamaConfig cfg;
    cfg.batch = 2;
    cfg.seqLen = 16;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.ffDim = 88;
    cfg.layers = 3;

    Rng rng(71);
    auto store = std::make_shared<ParamStore>();
    ModelSpec m = buildLlama(cfg, rng, store.get(), lora_rank);
    InstructionTask task(99, 8, cfg.vocab, cfg.seqLen);

    CompileOptions opt;
    opt.optim = OptimConfig::lion(0.001); // the paper fine-tunes w/ Lion
    auto prog = compileTraining(m.graph, m.loss, scheme, opt, store);
    Rng r(3);
    QualityRow q;
    for (int s = 0; s < steps; ++s) {
        Batch b = task.sample(cfg.batch, r);
        q.loss = prog.trainStep({{"x", b.x}, {"y", b.y}});
    }
    auto infer = compileInference(m.graph, {m.logits}, opt, store);
    double match = 0;
    int evals = 24;
    for (int e = 0; e < evals; ++e) {
        Batch b = task.sample(cfg.batch, r);
        Tensor logits = infer.run({{"x", b.x}})[0];
        match += task.exactMatch(logits, b);
    }
    q.winRate = match / evals;
    return q;
}

} // namespace

int
main()
{
    std::printf("=== Table 5: LlamaV2-7B instruction tuning on Jetson "
                "AGX Orin ===\n\n");
    int steps = scaledSteps(1200);

    // --- 7B-shape cost analysis on the Orin model -------------------
    Rng rng(7);
    LlamaConfig big = paperLlama7bConfig(512);
    ModelSpec m7 = buildLlama(big, rng, nullptr);
    ModelSpec m7lora = buildLlama(big, rng, nullptr, 8);
    DeviceModel orin = DeviceModel::jetsonOrin();

    CompileOptions eager_like;
    eager_like.fuse = false;
    eager_like.reorder = false;
    eager_like.winograd = false;
    eager_like.blocked = false;
    CompileOptions opt;

    CompiledGraph py_full = compileGraphOnly(
        m7.graph, m7.loss, SparseUpdateScheme::full(), eager_like);
    CompiledGraph py_lora = compileGraphOnly(m7lora.graph, m7lora.loss,
                                             loraScheme(), eager_like);
    CompiledGraph pe_full = compileGraphOnly(
        m7.graph, m7.loss, SparseUpdateScheme::full(), opt);
    CompiledGraph pe_sparse = compileGraphOnly(
        m7.graph, m7.loss, transformerSparseScheme(m7, 5, 5), opt);

    FrameworkProfile pt = FrameworkProfile::pytorch();
    FrameworkProfile pe = FrameworkProfile::pockEngine();
    double t_py_full = projectLatencyUs(py_full.graph, py_full.order,
                                        orin, pt, {},
                                        py_full.report.backwardNodes);
    double t_py_lora = projectLatencyUs(py_lora.graph, py_lora.order,
                                        orin, pt, {},
                                        py_lora.report.backwardNodes);
    double t_pe_full = projectLatencyUs(pe_full.graph, pe_full.order,
                                        orin, pe, pe_full.variants);
    double t_pe_sparse = projectLatencyUs(pe_sparse.graph,
                                          pe_sparse.order, orin, pe,
                                          pe_sparse.variants);

    // --- quality on the reduced decoder ------------------------------
    QualityRow q_full = quality(SparseUpdateScheme::full(), 0, steps);
    QualityRow q_lora = quality(loraScheme(), 8, steps);
    // Paper scheme: biases of the last 5 of 32 blocks + attn/fc1
    // weights of the last 5. Our 3-block proxy uses biases of all
    // blocks and weights of the last 2 (same ~2/3 depth coverage).
    QualityRow q_sparse =
        quality(transformerSparseScheme(
                    buildLlama(LlamaConfig{2, 16, 64, 32, 2, 88, 3},
                               rng, nullptr),
                    3, 2),
                0, steps);

    printRow({"framework", "method", "iter-lat", "memory", "loss",
              "win-proxy"},
             14);
    printRow({"PyTorch", "FT-Full", fmt(t_py_full / 1e6, 2) + "s",
              fmtBytes(py_full.report.totalBytes), fmt(q_full.loss, 3),
              fmt(100 * q_full.winRate, 1) + "%"},
             14);
    printRow({"PyTorch", "LoRA(r=8)", fmt(t_py_lora / 1e6, 2) + "s",
              fmtBytes(py_lora.report.totalBytes), fmt(q_lora.loss, 3),
              fmt(100 * q_lora.winRate, 1) + "%"},
             14);
    printRow({"PockEngine", "FT-Full", fmt(t_pe_full / 1e6, 2) + "s",
              fmtBytes(pe_full.report.totalBytes), fmt(q_full.loss, 3),
              fmt(100 * q_full.winRate, 1) + "%"},
             14);
    printRow({"PockEngine", "Sparse", fmt(t_pe_sparse / 1e6, 2) + "s",
              fmtBytes(pe_sparse.report.totalBytes),
              fmt(q_sparse.loss, 3),
              fmt(100 * q_sparse.winRate, 1) + "%"},
             14);

    std::printf("\nspeedups: PockEngine-Full %.1fx over PyTorch; "
                "Sparse %.1fx over PockEngine-Full; LoRA latency "
                "gain over PyTorch-Full only %.2fx (it still "
                "backpropagates to layer 0).\n",
                t_py_full / t_pe_full, t_pe_full / t_pe_sparse,
                t_py_full / t_py_lora);
    return 0;
}
