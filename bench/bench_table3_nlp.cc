/**
 * @file
 * Table 3: fine-tuning accuracy of Full-BP vs Bias-only vs Sparse-BP
 * for BERT / DistilBERT proxies across seven GLUE-like tasks.
 * Expected shape: sparse-BP ~ full-BP; bias-only a few points below.
 */

#include <functional>

#include "bench_common.h"

using namespace pe;
using namespace pe::bench;

namespace {

constexpr int64_t kBatch = 8;
constexpr int64_t kSeq = 16;
constexpr int64_t kVocab = 48;

NlpConfig
proxyConfig(int64_t layers)
{
    NlpConfig c;
    c.batch = kBatch;
    c.seqLen = kSeq;
    c.vocab = kVocab;
    c.dim = 32;
    c.heads = 2;
    c.ffDim = 64;
    c.layers = layers;
    return c;
}

std::shared_ptr<ParamStore>
bodyOf(const ParamStore &pretrained)
{
    auto out = std::make_shared<ParamStore>();
    for (const auto &[name, t] : pretrained.all()) {
        if (name.rfind("head.", 0) == 0 ||
            name.find(".apply") != std::string::npos) {
            continue;
        }
        out->set(name, t.clone());
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Table 3: NLP fine-tuning accuracy "
                "(synthetic GLUE proxies) ===\n\n");
    int pretrain_steps = scaledSteps(400);
    int finetune_steps = scaledSteps(220);

    struct Family {
        std::string name;
        int64_t layers;
        int biasBlocks, weightBlocks;
    };
    // Paper Section 4.1: BERT (12): biases last 6, weights last 4;
    // DistilBERT (6): biases last 3, weights last 2. Our proxies use
    // 4/2 layers with proportional schemes.
    std::vector<Family> fams = {
        {"DistilBERT-proxy", 2, 1, 1},
        {"BERT-proxy", 4, 2, 2},
    };

    for (const Family &fam : fams) {
        Rng rng(17);
        SyntheticText pre = SyntheticText::pretrain(kVocab, kSeq);
        NlpConfig cfg = proxyConfig(fam.layers);
        cfg.numClasses = pre.classes();
        auto pre_store = std::make_shared<ParamStore>();
        ModelSpec pm = buildBert(cfg, rng, pre_store.get());
        CompileOptions opt;
        opt.optim = OptimConfig::adam(0.003);
        {
            auto prog = compileTraining(pm.graph, pm.loss,
                                        SparseUpdateScheme::full(), opt,
                                        pre_store);
            Rng r(23);
            finetune(
                prog,
                [&](int64_t b, Rng &rr) { return pre.sample(b, rr); },
                kBatch, pretrain_steps, r);
        }

        std::printf("--- %s (%lld layers) ---\n", fam.name.c_str(),
                    static_cast<long long>(fam.layers));
        printRow({"method", "avg", "cola", "mnli", "mrpc", "qnli",
                  "qqp", "rte", "sst2", "flops"},
                 9);

        struct Method {
            std::string name;
            std::function<SparseUpdateScheme(const ModelSpec &)> scheme;
        };
        std::vector<Method> methods = {
            {"full-bp",
             [](const ModelSpec &) { return SparseUpdateScheme::full(); }},
            {"bias",
             [](const ModelSpec &) { return biasOnlyScheme(); }},
            {"sparse",
             [&](const ModelSpec &m) {
                 return transformerSparseScheme(m, fam.biasBlocks,
                                                fam.weightBlocks);
             }},
        };

        for (const Method &method : methods) {
            std::vector<std::string> cells = {method.name, ""};
            double sum = 0, flops = 0;
            for (const std::string &task : SyntheticText::taskNames()) {
                SyntheticText ds = SyntheticText::task(task, kVocab,
                                                       kSeq);
                NlpConfig tcfg = proxyConfig(fam.layers);
                tcfg.numClasses = ds.classes();
                auto store = bodyOf(*pre_store);
                Rng mr(29);
                ModelSpec m = buildBert(tcfg, mr, store.get());
                CompileOptions fopt;
                fopt.optim = OptimConfig::adam(0.003);
                auto prog = compileTraining(m.graph, m.loss,
                                            method.scheme(m), fopt,
                                            store);
                Rng r(31);
                finetune(
                    prog,
                    [&](int64_t b, Rng &rr) { return ds.sample(b, rr); },
                    kBatch, finetune_steps, r);
                auto infer = compileInference(m.graph, {m.logits}, fopt,
                                              store);
                double acc = evalAccuracy(
                    infer,
                    [&](int64_t b, Rng &rr) { return ds.sample(b, rr); },
                    kBatch, 12, r);
                sum += acc;
                cells.push_back(fmt(100 * acc, 1));
                flops = prog.report().flopsPerStep;
            }
            cells[1] = fmt(100 * sum / 7.0, 1);
            cells.push_back(fmt(flops / 1e6, 1) + "M");
            printRow(cells, 9);
        }
        std::printf("\n");
    }
    return 0;
}
