/**
 * @file
 * Shared helpers for the per-table/figure benchmark binaries:
 * fixed-width table printing, the standard pretrain->transfer loop,
 * and accuracy evaluation.
 *
 * Set PE_BENCH_FAST=1 to shrink step counts (CI smoke mode).
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/models.h"

namespace pe::bench {

// ---- machine-readable output (--json <path>) -------------------------

/**
 * Flat JSON record collector: each row is one object of string /
 * integer / double fields; save() writes the array. This is the perf
 * trajectory format scripts/bench_json.sh snapshots — keep fields
 * append-only so old BENCH_*.json files stay comparable.
 */
class JsonRows
{
  public:
    void
    begin(const std::string &kind)
    {
        rows_.emplace_back("\"kind\":\"" + kind + "\"");
    }

    void
    field(const std::string &key, const std::string &value)
    {
        std::string escaped;
        for (char c : value) {
            if (c == '"' || c == '\\')
                escaped.push_back('\\');
            escaped.push_back(c);
        }
        rows_.back() += ",\"" + key + "\":\"" + escaped + "\"";
    }

    void
    field(const std::string &key, int64_t value)
    {
        rows_.back() += ",\"" + key + "\":" + std::to_string(value);
    }

    void
    field(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        rows_.back() += ",\"" + key + "\":" + buf;
    }

    /** Write the collected array; returns false on I/O failure. */
    bool
    save(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        std::fprintf(f, "[\n");
        for (size_t i = 0; i < rows_.size(); ++i)
            std::fprintf(f, "  {%s}%s\n", rows_[i].c_str(),
                         i + 1 < rows_.size() ? "," : "");
        std::fprintf(f, "]\n");
        std::fclose(f);
        return true;
    }

    bool empty() const { return rows_.empty(); }

  private:
    std::vector<std::string> rows_;
};

/** Extract `--json <path>` from argv; empty string when absent. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    }
    return "";
}

inline bool
fastMode()
{
    const char *v = std::getenv("PE_BENCH_FAST");
    return v && v[0] == '1';
}

inline int
scaledSteps(int steps)
{
    return fastMode() ? std::max(1, steps / 10) : steps;
}

/** Print a row of fixed-width cells. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
fmtBytes(int64_t bytes)
{
    char buf[64];
    if (bytes >= (1LL << 30)) {
        std::snprintf(buf, sizeof(buf), "%.1fGB",
                      static_cast<double>(bytes) / (1LL << 30));
    } else if (bytes >= (1LL << 20)) {
        std::snprintf(buf, sizeof(buf), "%.1fMB",
                      static_cast<double>(bytes) / (1LL << 20));
    } else {
        std::snprintf(buf, sizeof(buf), "%.1fKB",
                      static_cast<double>(bytes) / (1LL << 10));
    }
    return buf;
}

/** Classification accuracy of an inference program on fresh batches. */
template <typename Sampler>
double
evalAccuracy(InferenceProgram &infer, Sampler &&sample, int64_t batch,
             int eval_batches, Rng &rng)
{
    int64_t correct = 0, total = 0;
    for (int e = 0; e < eval_batches; ++e) {
        Batch b = sample(batch, rng);
        Tensor logits = infer.run({{"x", b.x}})[0];
        int64_t classes = logits.dim(1);
        for (int64_t i = 0; i < batch; ++i) {
            int64_t argmax = 0;
            for (int64_t c = 1; c < classes; ++c) {
                if (logits[i * classes + c] > logits[i * classes + argmax])
                    argmax = c;
            }
            total++;
            if (argmax == static_cast<int64_t>(b.y[i]))
                correct++;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

/** Fine-tune a compiled program on a sampler for n steps. */
template <typename Sampler>
double
finetune(TrainingProgram &prog, Sampler &&sample, int64_t batch,
         int steps, Rng &rng)
{
    double last = 0;
    for (int s = 0; s < steps; ++s) {
        Batch b = sample(batch, rng);
        last = prog.trainStep({{"x", b.x}, {"y", b.y}});
    }
    return last;
}

} // namespace pe::bench
