/**
 * @file
 * Section 3.2 ablation: what each training-graph optimization
 * contributes — operator fusion, memory-aware reordering + in-place
 * update, Winograd binding for frozen convs, blocked GEMM. Both
 * host-measured step time and planner memory are reported.
 *
 * Expected shape: each optimization individually worth a few
 * percent to ~1.2x (paper's claim), reordering dominating memory.
 */

#include <chrono>

#include "bench_common.h"

using namespace pe;
using namespace pe::bench;

namespace {

double
measureStepMs(const ModelSpec &m, const SparseUpdateScheme &scheme,
              const CompileOptions &opt, int iters)
{
    auto store = std::make_shared<ParamStore>();
    Rng rng(5);
    // Rebuild with initialization into this store.
    VisionConfig cfg;
    cfg.batch = 4;
    cfg.resolution = 16;
    cfg.width = 0.25;
    cfg.blocks = 4;
    ModelSpec fresh = buildResNet(cfg, rng, store.get());
    auto prog = compileTraining(fresh.graph, fresh.loss, scheme, opt,
                                store);
    SyntheticVision task = SyntheticVision::pretrain(3, 16);
    Rng dr(3);
    Batch b = task.sample(4, dr);
    prog.trainStep({{"x", b.x}, {"y", b.y}}); // warm up
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        prog.trainStep({{"x", b.x}, {"y", b.y}});
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           iters;
    (void)m;
}

} // namespace

int
main()
{
    std::printf("=== Section 3.2 ablation: training-graph "
                "optimizations ===\n\n");
    int iters = scaledSteps(15);

    Rng rng(5);
    VisionConfig cfg;
    cfg.batch = 4;
    cfg.resolution = 16;
    cfg.width = 0.25;
    cfg.blocks = 4;
    ModelSpec m = buildResNet(cfg, rng, nullptr);
    SparseUpdateScheme sparse = cnnSparseScheme(m, 2, 2);

    struct Config {
        std::string name;
        CompileOptions opt;
    };
    CompileOptions all;
    CompileOptions none = all;
    none.fuse = none.reorder = none.winograd = none.blocked = false;
    CompileOptions no_fuse = all;
    no_fuse.fuse = false;
    CompileOptions no_reorder = all;
    no_reorder.reorder = false;
    CompileOptions no_wino = all;
    no_wino.winograd = false;
    CompileOptions no_blocked = all;
    no_blocked.blocked = false;

    std::vector<Config> configs = {
        {"all-opts", all},         {"no-fusion", no_fuse},
        {"no-reorder", no_reorder}, {"no-winograd", no_wino},
        {"no-blocked", no_blocked}, {"none", none},
    };

    printRow({"config", "step-ms", "vs-all", "kernels", "arena",
              "fusions", "winograd"},
             12);
    double base_ms = 0;
    for (const Config &c : configs) {
        CompileOptions opt = c.opt;
        opt.optim = OptimConfig::sgd(0.01);
        double ms = measureStepMs(m, sparse, opt, iters);
        if (c.name == "all-opts")
            base_ms = ms;
        CompiledGraph cg = compileGraphOnly(m.graph, m.loss, sparse,
                                            opt);
        printRow({c.name, fmt(ms, 2), fmt(ms / base_ms, 2) + "x",
                  std::to_string(cg.report.kernelSteps),
                  fmtBytes(cg.report.arenaBytes),
                  std::to_string(cg.report.fusions),
                  std::to_string(cg.report.backend.winogradBound)},
                 12);
    }

    std::printf("\nMemory-only ablation (reordering + in-place "
                "update), MobileNetV2 proxy, full-BP:\n");
    printRow({"schedule", "arena"}, 20);
    VisionConfig mb;
    mb.batch = 8;
    mb.resolution = 16;
    mb.width = 0.4;
    mb.blocks = 6;
    ModelSpec mbv = buildMobileNetV2(mb, rng, nullptr);
    CompileOptions opt;
    CompiledGraph cg = compileGraphOnly(mbv.graph, mbv.loss,
                                        SparseUpdateScheme::full(), opt);
    printRow({"natural-order", fmtBytes(cg.report.arenaBytesNoReorder)},
             20);
    printRow({"reordered", fmtBytes(cg.report.arenaBytes)}, 20);
    std::printf("reordering saves %.1fx activation memory\n",
                static_cast<double>(cg.report.arenaBytesNoReorder) /
                    static_cast<double>(cg.report.arenaBytes));
    return 0;
}
