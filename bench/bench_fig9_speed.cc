/**
 * @file
 * Figure 9: training throughput across seven edge platforms for the
 * baseline frameworks vs PockEngine (full and sparse BP).
 *
 * Two sections:
 *  1. HOST-MEASURED: real wall-clock on this machine, EagerEngine
 *     (runtime autodiff, dynamic dispatch, per-step allocation) vs
 *     the compiled engine on identical models — the measured part of
 *     the speedup claim.
 *  2. DEVICE-PROJECTED: the compiled/eager graphs costed on the
 *     calibrated device models (see DESIGN.md substitution table),
 *     reproducing the Fig. 9 (a)-(g) matrix shape.
 */

#include <chrono>

#include "baseline/eager.h"
#include "bench_common.h"
#include "hw/device.h"

using namespace pe;
using namespace pe::bench;

namespace {

struct ModelEntry {
    std::string name;
    ModelSpec spec;
    SparseUpdateScheme sparse;
    int64_t batch;
};

std::vector<ModelEntry>
projectionModels()
{
    // Paper-scale shapes (analysis only; projection needs no
    // parameter materialization).
    std::vector<ModelEntry> out;
    Rng rng(3);
    {
        VisionConfig c = paperMcuNetConfig(8);
        ModelSpec m = buildMcuNet(c, rng, nullptr);
        out.push_back({"MCUNet", std::move(m), {}, c.batch});
        out.back().sparse = cnnSparseScheme(out.back().spec, 7, 4, 0.5);
    }
    {
        VisionConfig c = paperMobileNetV2Config(8);
        ModelSpec m = buildMobileNetV2(c, rng, nullptr);
        out.push_back({"MbV2", std::move(m), {}, c.batch});
        out.back().sparse = cnnSparseScheme(out.back().spec, 7, 7);
    }
    {
        VisionConfig c = paperResNet50Config(8);
        ModelSpec m = buildResNet(c, rng, nullptr);
        out.push_back({"ResNet50", std::move(m), {}, c.batch});
        out.back().sparse = cnnSparseScheme(out.back().spec, 8, 8);
    }
    {
        NlpConfig c = paperDistilBertConfig(4);
        ModelSpec m = buildBert(c, rng, nullptr);
        out.push_back({"DistilBERT", std::move(m), {}, c.batch});
        out.back().sparse =
            transformerSparseScheme(out.back().spec, 3, 2);
    }
    {
        NlpConfig c = paperBertBaseConfig(4);
        ModelSpec m = buildBert(c, rng, nullptr);
        out.push_back({"BERT", std::move(m), {}, c.batch});
        out.back().sparse =
            transformerSparseScheme(out.back().spec, 6, 4);
    }
    return out;
}

double
wallMs(const std::function<void()> &fn, int iters)
{
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           iters;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 9 section 1: HOST-MEASURED step time "
                "(ms), eager vs compiled ===\n\n");
    printRow({"model", "eager(full)", "compiled(full)",
              "compiled(sparse)", "speedup", "sparse-x"},
             17);

    int iters = scaledSteps(10);
    {
        Rng rng(5);
        VisionConfig cfg;
        cfg.batch = 4;
        cfg.resolution = 16;
        cfg.width = 0.5;
        cfg.blocks = 5;
        auto store_e = std::make_shared<ParamStore>();
        auto store_c = std::make_shared<ParamStore>();
        auto store_s = std::make_shared<ParamStore>();
        Rng r1(9), r2(9), r3(9);
        ModelSpec me = buildMcuNet(cfg, r1, store_e.get());
        ModelSpec mc = buildMcuNet(cfg, r2, store_c.get());
        ModelSpec ms = buildMcuNet(cfg, r3, store_s.get());

        SyntheticVision task = SyntheticVision::pretrain(3, 16);
        Rng dr(3);
        Batch b = task.sample(cfg.batch, dr);

        EagerEngine eager(me.graph, me.loss, store_e,
                          OptimConfig::sgd(0.01));
        CompileOptions opt;
        opt.optim = OptimConfig::sgd(0.01);
        auto full = compileTraining(mc.graph, mc.loss,
                                    SparseUpdateScheme::full(), opt,
                                    store_c);
        auto sparse = compileTraining(ms.graph, ms.loss,
                                      cnnSparseScheme(ms, 3, 2), opt,
                                      store_s);

        double te = wallMs(
            [&] { eager.trainStep({{"x", b.x}, {"y", b.y}}); }, iters);
        double tc = wallMs(
            [&] { full.trainStep({{"x", b.x}, {"y", b.y}}); }, iters);
        double ts = wallMs(
            [&] { sparse.trainStep({{"x", b.x}, {"y", b.y}}); }, iters);
        printRow({"MCUNet-proxy", fmt(te), fmt(tc), fmt(ts),
                  fmt(te / tc, 2) + "x", fmt(tc / ts, 2) + "x"},
                 17);
    }

    std::printf("\n=== Fig. 9 section 2: DEVICE-PROJECTED training "
                "throughput (samples/sec) ===\n");
    auto models = projectionModels();
    std::vector<FrameworkProfile> frameworks = {
        FrameworkProfile::tensorflow(), FrameworkProfile::pytorch(),
        FrameworkProfile::jax(), FrameworkProfile::mnn()};

    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.01);
    CompileOptions eager_like;
    eager_like.fuse = false;
    eager_like.reorder = false;
    eager_like.winograd = false;
    eager_like.blocked = false;
    eager_like.optim = OptimConfig::sgd(0.01);

    for (const DeviceModel &dev : DeviceModel::all()) {
        std::printf("\n--- %s ---\n", dev.name.c_str());
        printRow({"model", "TF", "PyTorch", "Jax", "MNN", "PE(full)",
                  "PE(sparse)", "vs-TF", "sparse-x"},
                 11);
        for (const ModelEntry &m : models) {
            // MCU only fits MCUNet-class models.
            bool mcu = dev.name.rfind("STM32", 0) == 0;
            if (mcu && m.name != "MCUNet")
                continue;
            // Eager frameworks run the unfused natural-order graph
            // and re-derive backward every step (extra host ops).
            CompiledGraph eg = compileGraphOnly(
                m.spec.graph, m.spec.loss, SparseUpdateScheme::full(),
                eager_like);
            CompiledGraph pg = compileGraphOnly(m.spec.graph,
                                                m.spec.loss,
                                                SparseUpdateScheme::full(),
                                                opt);
            CompiledGraph sg = compileGraphOnly(m.spec.graph,
                                                m.spec.loss, m.sparse,
                                                opt);
            std::vector<std::string> cells = {m.name};
            double tf_baseline = 0;
            for (const FrameworkProfile &fw : frameworks) {
                double us = projectLatencyUs(
                    eg.graph, eg.order, dev, fw, {},
                    /*extra_ops=*/eg.report.backwardNodes);
                double tput = throughputPerSec(us, m.batch);
                if (fw.name == "TensorFlow")
                    tf_baseline = tput;
                cells.push_back(fmt(tput, 1));
            }
            FrameworkProfile pe = FrameworkProfile::pockEngine();
            double us_full = projectLatencyUs(pg.graph, pg.order, dev,
                                              pe, pg.variants);
            double us_sparse = projectLatencyUs(sg.graph, sg.order, dev,
                                                pe, sg.variants);
            double t_full = throughputPerSec(us_full, m.batch);
            double t_sparse = throughputPerSec(us_sparse, m.batch);
            cells.push_back(fmt(t_full, 1));
            cells.push_back(fmt(t_sparse, 1));
            cells.push_back(fmt(t_full / tf_baseline, 1) + "x");
            cells.push_back(fmt(t_sparse / t_full, 2) + "x");
            printRow(cells, 11);
        }
    }
    std::printf("\nShape to verify vs paper: PE(full) is ~2x the eager "
                "frameworks on GPU-class devices and ~10-20x "
                "TensorFlow on CPU-class devices; sparse adds a "
                "further 1.3-2.3x.\n");
    return 0;
}
