/**
 * @file
 * Figure 8: training-loss curves of full fine-tuning vs the sparse
 * update on the QNLI and SST-2 proxies (BERT proxy). Expected shape:
 * the sparse curve tracks slightly above full early on and converges
 * to the same level.
 */

#include "bench_common.h"

using namespace pe;
using namespace pe::bench;

int
main()
{
    std::printf("=== Fig. 8: loss curves, FT-Full vs Sparse-BP "
                "(BERT proxy) ===\n");
    constexpr int64_t kBatch = 8, kSeq = 16, kVocab = 64;
    int steps = scaledSteps(120);
    int log_every = std::max(1, steps / 12);

    for (const std::string task : {"qnli", "sst2"}) {
        std::printf("\n--- %s ---\n", task.c_str());
        printRow({"step", "full-bp", "sparse-bp"}, 12);

        SyntheticText ds = SyntheticText::task(task, kVocab, kSeq);
        NlpConfig cfg;
        cfg.batch = kBatch;
        cfg.seqLen = kSeq;
        cfg.vocab = kVocab;
        cfg.dim = 32;
        cfg.heads = 2;
        cfg.ffDim = 64;
        cfg.layers = 4;
        cfg.numClasses = ds.classes();

        auto store_f = std::make_shared<ParamStore>();
        auto store_s = std::make_shared<ParamStore>();
        Rng r1(61), r2(61); // identical init
        ModelSpec mf = buildBert(cfg, r1, store_f.get());
        ModelSpec ms = buildBert(cfg, r2, store_s.get());

        CompileOptions opt;
        opt.optim = OptimConfig::adam(0.003);
        auto full = compileTraining(mf.graph, mf.loss,
                                    SparseUpdateScheme::full(), opt,
                                    store_f);
        auto sparse = compileTraining(ms.graph, ms.loss,
                                      transformerSparseScheme(ms, 2, 2),
                                      opt, store_s);
        Rng d1(5), d2(5);
        double ema_f = 0, ema_s = 0; // smoothed (per-batch is noisy)
        for (int s = 0; s < steps; ++s) {
            Batch b1 = ds.sample(kBatch, d1);
            Batch b2 = ds.sample(kBatch, d2);
            float lf = full.trainStep({{"x", b1.x}, {"y", b1.y}});
            float ls = sparse.trainStep({{"x", b2.x}, {"y", b2.y}});
            ema_f = s == 0 ? lf : 0.85 * ema_f + 0.15 * lf;
            ema_s = s == 0 ? ls : 0.85 * ema_s + 0.15 * ls;
            if (s % log_every == 0 || s == steps - 1)
                printRow({std::to_string(s), fmt(ema_f, 4),
                          fmt(ema_s, 4)},
                         12);
        }
    }
    return 0;
}
