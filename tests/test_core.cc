/** @file Unit tests for core/: shapes, tensors, RNG. */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/shape.h"
#include "core/tensor.h"

namespace pe {
namespace {

TEST(Shape, Numel)
{
    EXPECT_EQ(numel({}), 1);
    EXPECT_EQ(numel({5}), 5);
    EXPECT_EQ(numel({2, 3, 4}), 24);
}

TEST(Shape, ToString)
{
    EXPECT_EQ(shapeToString({2, 3}), "[2, 3]");
    EXPECT_EQ(shapeToString({}), "[]");
}

TEST(Shape, BroadcastBasics)
{
    EXPECT_EQ(broadcastShapes({2, 3}, {2, 3}), (Shape{2, 3}));
    EXPECT_EQ(broadcastShapes({2, 3}, {3}), (Shape{2, 3}));
    EXPECT_EQ(broadcastShapes({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
    EXPECT_EQ(broadcastShapes({1}, {8, 5}), (Shape{8, 5}));
}

TEST(Shape, BroadcastMismatchThrows)
{
    EXPECT_THROW(broadcastShapes({2, 3}, {4}), std::runtime_error);
    EXPECT_THROW(broadcastShapes({2, 2}, {3, 2}), std::runtime_error);
}

TEST(Shape, BroadcastableTo)
{
    EXPECT_TRUE(broadcastableTo({3}, {2, 3}));
    EXPECT_TRUE(broadcastableTo({1, 3}, {5, 3}));
    EXPECT_FALSE(broadcastableTo({2, 3}, {3}));
    EXPECT_FALSE(broadcastableTo({4}, {2, 3}));
}

TEST(Shape, RowMajorStrides)
{
    auto s = rowMajorStrides({2, 3, 4});
    EXPECT_EQ(s, (std::vector<int64_t>{12, 4, 1}));
}

TEST(Tensor, ZerosAndFill)
{
    Tensor t = Tensor::zeros({2, 2});
    EXPECT_EQ(t.size(), 4);
    EXPECT_DOUBLE_EQ(t.sum(), 0.0);
    t.fill(2.5f);
    EXPECT_FLOAT_EQ(static_cast<float>(t.sum()), 10.0f);
}

TEST(Tensor, FromVectorAndAt)
{
    Tensor t = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
    EXPECT_FLOAT_EQ(t.at({0, 2}), 3.0f);
    EXPECT_FLOAT_EQ(t.at({1, 0}), 4.0f);
}

TEST(Tensor, FromVectorSizeMismatchThrows)
{
    EXPECT_THROW(Tensor::fromVector({2, 2}, {1, 2, 3}),
                 std::runtime_error);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a = Tensor::ones({3});
    Tensor b = a.clone();
    b[0] = 7;
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    EXPECT_FLOAT_EQ(b[0], 7.0f);
}

TEST(Tensor, CopyShares)
{
    Tensor a = Tensor::ones({3});
    Tensor b = a;
    b[0] = 7;
    EXPECT_FLOAT_EQ(a[0], 7.0f);
}

TEST(Tensor, ReshapedSharesStorage)
{
    Tensor a = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b = a.reshaped({3, 2});
    b[5] = 42;
    EXPECT_FLOAT_EQ(a[5], 42.0f);
    EXPECT_THROW(a.reshaped({4}), std::runtime_error);
}

TEST(Tensor, AllClose)
{
    Tensor a = Tensor::ones({4});
    Tensor b = a.clone();
    EXPECT_TRUE(allClose(a, b));
    b[2] += 1.0f;
    EXPECT_FALSE(allClose(a, b));
    EXPECT_FALSE(allClose(a, Tensor::ones({5})));
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a = Tensor::fromVector({2}, {1, 2});
    Tensor b = Tensor::fromVector({2}, {1.5, 2});
    EXPECT_FLOAT_EQ(maxAbsDiff(a, b), 0.5f);
}

TEST(Rng, Deterministic)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.normal(), b.normal());
}

TEST(Rng, UniformRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        float v = r.uniform(2.0f, 3.0f);
        EXPECT_GE(v, 2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, RandintRange)
{
    Rng r(1);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 1000; ++i)
        ++seen[r.randint(5)];
    for (int count : seen)
        EXPECT_GT(count, 100); // roughly uniform
}

TEST(Tensor, KaimingStdScalesWithFanIn)
{
    Rng r(3);
    Tensor t = Tensor::kaiming({10000}, r, 50);
    double var = 0;
    for (int64_t i = 0; i < t.size(); ++i)
        var += t[i] * t[i];
    var /= static_cast<double>(t.size());
    EXPECT_NEAR(var, 2.0 / 50.0, 5e-3);
}

} // namespace
} // namespace pe
