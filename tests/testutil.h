/**
 * @file
 * Shared helpers for the test suite: graph evaluation and numerical
 * gradient checking against the compile-time autodiff.
 */

#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "autodiff/autodiff.h"
#include "core/tensor.h"
#include "ir/graph.h"
#include "passes/passes.h"
#include "runtime/executor.h"

namespace pe::test {

using Feeds = std::unordered_map<std::string, Tensor>;

/** Run a graph once and fetch one value. */
inline Tensor
evalNode(const Graph &g, int node_id, ParamStore &store,
         const Feeds &feeds)
{
    Graph copy = g;
    copy.markOutput(node_id);
    Executor ex(copy, naturalOrder(copy), store);
    for (const auto &[name, t] : feeds)
        ex.bindInput(name, t);
    ex.run();
    return ex.fetch(node_id);
}

/**
 * Check d(loss)/d(param) for every trainable param of @p g against
 * central finite differences. Returns the max relative error seen.
 *
 * The analytic gradients come through the full compile pipeline
 * (autodiff + simplify + DCE), so this exercises the passes too.
 */
inline float
gradCheck(Graph g, int loss_id, ParamStore &store, const Feeds &feeds,
          float fd_eps = 1e-2f)
{
    BackwardResult bwd = buildBackward(g, loss_id);
    g.outputs().clear();
    g.markOutput(loss_id);
    for (auto &[pid, gid] : bwd.paramGrads)
        g.markOutput(gid);
    simplify(g);

    // Map param names to grad nodes, resolving Identity chains left
    // behind by simplify() (the original id may have been bypassed
    // and its buffer recycled).
    std::vector<std::pair<std::string, int>> grads;
    for (auto &[pid, gid] : bwd.paramGrads) {
        int resolved = gid;
        while (g.node(resolved).op == OpKind::Identity)
            resolved = g.node(resolved).inputs[0];
        grads.emplace_back(g.node(pid).name, resolved);
    }

    Executor ex(g, naturalOrder(g), store);
    for (const auto &[name, t] : feeds)
        ex.bindInput(name, t);
    ex.run();

    // Snapshot all analytic gradients before any perturbation run
    // overwrites the arena.
    std::unordered_map<std::string, Tensor> analytic_grads;
    for (auto &[pname, gid] : grads)
        analytic_grads[pname] = ex.fetch(gid);

    float max_rel = 0.0f;
    for (auto &[pname, gid] : grads) {
        const Tensor &analytic = analytic_grads[pname];
        Tensor &p = store.get(pname);
        for (int64_t i = 0; i < p.size(); ++i) {
            float saved = p[i];
            p[i] = saved + fd_eps;
            ex.run();
            float up = ex.fetch(loss_id)[0];
            p[i] = saved - fd_eps;
            ex.run();
            float down = ex.fetch(loss_id)[0];
            p[i] = saved;
            float numeric = (up - down) / (2 * fd_eps);
            float denom = std::max({std::fabs(numeric),
                                    std::fabs(analytic[i]), 1e-2f});
            max_rel = std::max(max_rel,
                               std::fabs(numeric - analytic[i]) / denom);
        }
    }
    ex.run(); // restore any cached state
    return max_rel;
}

} // namespace pe::test
