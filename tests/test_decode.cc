/**
 * @file
 * KV-cache / incremental-decode tests (ctest label: decode — the CI
 * decode-parity gate's focused pass).
 *
 * Guarantee layers:
 *  1. The cache region's lifetime contract at the executor level:
 *     Storage::Cache values persist across run() calls, bindCacheRows
 *     / fetchCacheRows move exactly the addressed rows, and
 *     resetCache() (the session-recycle boundary) re-zeroes the
 *     region.
 *  2. Plans carrying cache values round-trip bit-identically with
 *     ZERO pipeline invocations on load, and a tampered cache-region
 *     extent is rejected at load time (checksum gate for blind
 *     corruption, validateArtifact for resealed tampering).
 *  3. Coalescer generation tags: only equal decode generations group;
 *     prefill (kGenSolo) never groups; plain traffic (kGenNone) keeps
 *     the old rule.
 *  4. The generative stream API's lifecycle rules: decode before
 *     prefill, one in-flight request per stream, cache-full streams,
 *     close-while-busy, non-generative engines.
 *  5. The acceptance bar: N concurrent decode streams coalescing into
 *     shared bucket runs produce logits BIT-IDENTICAL to each stream
 *     decoding alone through the same bucket plans — fp32 and int8 —
 *     including a threaded mixed-pace stress run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "frontend/models.h"
#include "plan/plan.h"
#include "serve/coalescer.h"
#include "serve/serving.h"

namespace pe {
namespace {

/** Small enough for CI, big enough that every decode step touches
 *  embedding, two cached-attention blocks and the LM head. */
DecoderConfig
smallCfg()
{
    DecoderConfig cfg;
    cfg.vocab = 48;
    cfg.dim = 16;
    cfg.ffDim = 32;
    cfg.layers = 2;
    cfg.maxSeq = 16;
    return cfg;
}

Tensor
tokenRows(const std::vector<float> &toks)
{
    Tensor t({static_cast<int64_t>(toks.size()), 1});
    for (size_t i = 0; i < toks.size(); ++i)
        t[static_cast<int64_t>(i)] = toks[i];
    return t;
}

void
expectBitEqual(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.shape(), b.shape()) << what;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(float) * a.size()),
              0)
        << what << ": values differ";
}

// ---- 1. executor-level cache lifetime --------------------------------

struct BuiltPrefill {
    std::shared_ptr<ParamStore> store;
    std::unique_ptr<InferenceProgram> prog;
    int kcache = -1; ///< node id of "b0.kcache"
};

BuiltPrefill
makePrefill(int64_t prompt_len)
{
    BuiltPrefill b;
    b.store = std::make_shared<ParamStore>();
    DecoderConfig cfg = smallCfg();
    Rng rng(7);
    ModelSpec m = buildDecoderPrefill(cfg, prompt_len, rng,
                                      b.store.get());
    CompileOptions opt;
    opt.numThreads = 1;
    CompiledGraph c =
        compileInferenceGraph(m.graph, {m.logits}, opt, b.store);
    ExecOptions eopt;
    eopt.variants = std::move(c.variants);
    eopt.numThreads = 1;
    b.prog = std::make_unique<InferenceProgram>(
        std::move(c.graph), b.store, std::move(eopt),
        std::move(c.report), std::move(c.order));
    const Graph &g = b.prog->graph();
    for (int id = 0; id < g.numNodes(); ++id)
        if (g.node(id).op == OpKind::CacheWrite &&
            g.node(id).name == "b0.kcache")
            b.kcache = id;
    return b;
}

TEST(CacheRegion, PersistsAcrossRunsUntilReset)
{
    const DecoderConfig cfg = smallCfg();
    const int64_t S = 4;
    BuiltPrefill b = makePrefill(S);
    ASSERT_GE(b.kcache, 0) << "prefill graph must carry b0.kcache";
    Executor &ex = b.prog->executor();
    // 2 layers x {k, v} caches of [maxSeq, dim] f32 rows.
    EXPECT_EQ(ex.cacheBytes(),
              cfg.layers * 2 * cfg.maxSeq * cfg.dim *
                  static_cast<int64_t>(sizeof(float)));

    auto ctx = ex.makeContext();
    int xid = ex.inputId("x");
    ASSERT_GE(xid, 0);

    // Fresh sessions start zeroed — rows past the prompt must read
    // as exact zeros (the shared-run parity argument leans on this).
    Tensor fresh = ex.fetchCacheRows(*ctx, b.kcache, 0, 0, cfg.maxSeq);
    for (int64_t i = 0; i < fresh.size(); ++i)
        ASSERT_EQ(fresh[i], 0.0f) << "fresh cache row not zero";

    ex.bindInputById(*ctx, xid, tokenRows({1, 2, 3, 4}));
    ex.run(*ctx);
    Tensor written = ex.fetchCacheRows(*ctx, b.kcache, 0, 0, S);
    bool nonzero = false;
    for (int64_t i = 0; i < written.size(); ++i)
        nonzero = nonzero || written[i] != 0.0f;
    EXPECT_TRUE(nonzero) << "CacheWrite left the prompt rows zero";

    // Rows the graph never writes persist across run(): plant data
    // past the prompt, run again, and it must still be there — run()
    // NEVER re-zeroes the cache region.
    Rng r(31);
    Tensor planted = Tensor::randn({2, cfg.dim}, r);
    ex.bindCacheRows(*ctx, b.kcache, 0, 8, planted);
    ex.bindInputById(*ctx, xid, tokenRows({5, 6, 7, 8}));
    ex.run(*ctx);
    expectBitEqual(ex.fetchCacheRows(*ctx, b.kcache, 0, 8, 2), planted,
                   "rows planted past the prompt");

    // resetCache is the ONE recycle boundary: everything re-zeroes.
    ex.resetCache(*ctx);
    Tensor cleared = ex.fetchCacheRows(*ctx, b.kcache, 0, 0,
                                       cfg.maxSeq);
    for (int64_t i = 0; i < cleared.size(); ++i)
        ASSERT_EQ(cleared[i], 0.0f) << "resetCache left data behind";
}

// ---- 2. plan round-trip with cache values ----------------------------

TEST(CachePlan, RoundTripBitParityWithZeroPipelineInvocations)
{
    BuiltPrefill b = makePrefill(4);
    std::string blob = serializePlan(b.prog->graph(),
                                     b.prog->executor().exportArtifact(),
                                     b.prog->report(), *b.store);

    PipelineCounters before = pipelineCounters();
    auto loaded = loadPlanFromBytes(blob);
    Tensor x = tokenRows({9, 3, 7, 1});
    Tensor got = loaded->run({{"x", x}})[0];
    PipelineCounters after = pipelineCounters();
    EXPECT_TRUE(before == after)
        << "loading or running a cache plan invoked a compile stage";

    EXPECT_EQ(loaded->executor().cacheBytes(),
              b.prog->executor().cacheBytes())
        << "cache-region extent did not round-trip";

    expectBitEqual(got, b.prog->run({{"x", x}})[0], "loaded logits");

    // The cache CONTENTS round-trip too: run both executors session-
    // style and compare the written rows byte for byte.
    Executor &e1 = b.prog->executor();
    Executor &e2 = loaded->executor();
    auto c1 = e1.makeContext();
    auto c2 = e2.makeContext();
    e1.bindInputById(*c1, e1.inputId("x"), x);
    e2.bindInputById(*c2, e2.inputId("x"), x);
    e1.run(*c1);
    e2.run(*c2);
    expectBitEqual(e1.fetchCacheRows(*c1, b.kcache, 0, 0, 4),
                   e2.fetchCacheRows(*c2, b.kcache, 0, 0, 4),
                   "cache rows after load");
}

TEST(CachePlan, TamperedCacheExtentRejectedAtLoad)
{
    BuiltPrefill b = makePrefill(4);
    ASSERT_GT(b.prog->executor().cacheBytes(), 0);
    std::string blob = serializePlan(b.prog->graph(),
                                     b.prog->executor().exportArtifact(),
                                     b.prog->report(), *b.store);

    size_t mplnOff = 0, mplnBytes = 0;
    for (const PlanSectionInfo &s : planSections(blob)) {
        if (s.tag == "MPLN") {
            mplnOff = static_cast<size_t>(s.offset);
            mplnBytes = static_cast<size_t>(s.bytes);
        }
    }
    ASSERT_GT(mplnBytes, 8u);

    // Blind corruption anywhere in the memory-plan section trips the
    // checksum gate before any payload is interpreted.
    {
        std::string bad = blob;
        bad[mplnOff + mplnBytes / 2] ^= 0x40;
        EXPECT_THROW(loadPlanFromBytes(bad), PlanChecksumError);
    }

    // An attacker who RESEALS the checksums still cannot shrink the
    // cache region under its placements: cacheBytes is the final
    // field of MPLN, and validateArtifact rejects placements that no
    // longer fit inside it.
    {
        std::string bad = blob;
        int64_t zero = 0;
        std::memcpy(&bad[mplnOff + mplnBytes - sizeof(int64_t)], &zero,
                    sizeof(int64_t));
        resealPlan(bad);
        try {
            loadPlanFromBytes(bad);
            FAIL() << "shrunken cache extent must be rejected";
        } catch (const std::exception &e) {
            EXPECT_NE(std::string(e.what()).find("cache"),
                      std::string::npos)
                << "rejection must name the cache region, got: "
                << e.what();
        }
    }
}

// ---- 3. coalescer generation tags ------------------------------------

TEST(Coalescer, OnlyEqualGenerationsGroup)
{
    Coalescer co({1, 4}, 100);

    // Plain traffic keeps the old row-fit rule verbatim.
    EXPECT_TRUE(co.admits({1, kGenNone}, {2, kGenNone}));
    EXPECT_FALSE(co.admits({3, kGenNone}, {2, kGenNone}))
        << "row overflow";

    // Decode: exact generation match only.
    EXPECT_TRUE(co.admits({2, 7}, {1, 7}));
    EXPECT_FALSE(co.admits({2, 7}, {1, 8}));
    EXPECT_FALSE(co.admits({2, 7}, {1, kGenNone}))
        << "plain and decode traffic must not mix";

    // Prefill never groups, in either direction.
    EXPECT_FALSE(co.admits({1, kGenSolo}, {1, kGenSolo}));
    EXPECT_FALSE(co.admits({1, kGenSolo}, {1, 3}));
    EXPECT_FALSE(co.admits({1, 3}, {1, kGenSolo}));
}

// ---- 4. generative stream API ----------------------------------------

std::vector<std::unordered_map<std::string, Tensor>>
calibFeeds(const DecoderConfig &cfg)
{
    Rng r(11);
    std::vector<std::unordered_map<std::string, Tensor>> out;
    for (int bi = 0; bi < 2; ++bi) {
        const int64_t gen = 4 + bi;
        std::vector<float> toks;
        for (int i = 0; i < 4; ++i)
            toks.push_back(static_cast<float>(r.randint(cfg.vocab)));
        Tensor pos({4, 1});
        Tensor mask({4, cfg.maxSeq});
        for (int64_t i = 0; i < 4; ++i) {
            pos[i] = static_cast<float>(gen);
            for (int64_t j = 0; j < cfg.maxSeq; ++j)
                mask[i * cfg.maxSeq + j] = j <= gen ? 0.0f : -1e30f;
        }
        out.push_back({{"x", tokenRows(toks)},
                       {"pos", std::move(pos)},
                       {"mask", std::move(mask)}});
    }
    return out;
}

struct GenEngine {
    std::shared_ptr<ParamStore> store;
    std::unique_ptr<ServingEngine> engine;
};

/** Prompt bucket {4}, decode bucket {4}: every prompt is 4 tokens and
 *  solo decode steps pad to the SAME bucket-4 plan shared runs use —
 *  which is what makes the int8 parity comparison exact (quantization
 *  error is deterministic through one plan). */
GenEngine
makeGenEngine(int64_t window_us, int workers,
              Precision prec = Precision::F32,
              DecoderConfig cfg = smallCfg(),
              bool fuse_attention = true, bool force_scalar = false)
{
    GenEngine ge;
    ge.store = std::make_shared<ParamStore>();
    auto store = ge.store;
    ServeOptions so;
    so.buckets = {4};
    so.decodeBuckets = {4};
    so.workers = workers;
    so.coalesceWindowUs = window_us;
    so.queueCapacity = 64;
    so.compile.precision = prec;
    so.compile.fuseAttention = fuse_attention;
    so.compile.forceScalarTier = force_scalar;
    if (prec != Precision::F32)
        so.calibration = calibFeeds(cfg);
    so.decodeFactory = [store, cfg](int64_t streams) {
        Rng r(7);
        ModelSpec m = buildDecoderDecode(cfg, streams, r, store.get());
        return ServedModel{std::move(m.graph), {m.logits}};
    };
    ge.engine = std::make_unique<ServingEngine>(
        [store, cfg](int64_t prompt) {
            Rng r(7);
            ModelSpec m =
                buildDecoderPrefill(cfg, prompt, r, store.get());
            return ServedModel{std::move(m.graph), {m.logits}};
        },
        store, so);
    return ge;
}

TEST(DecodeStreams, LifecycleRules)
{
    const DecoderConfig cfg = smallCfg();
    GenEngine ge = makeGenEngine(0, 1);
    ServingEngine &e = *ge.engine;
    ASSERT_TRUE(e.generative());
    EXPECT_EQ(e.streamCacheBytes(),
              cfg.layers * 2 * cfg.maxSeq * cfg.dim *
                  static_cast<int64_t>(sizeof(float)));
    EXPECT_EQ(e.decodeBucketFor(1), 4);
    EXPECT_EQ(e.decodeBucketFor(5), -1);

    auto sid = e.openStream();
    EXPECT_EQ(e.streamGeneration(sid), 0);

    // Decode needs a completed prefill first.
    EXPECT_THROW(e.submitDecode(sid, {{"x", tokenRows({1})}}),
                 std::runtime_error);

    auto rid = e.submitPrefill(sid, {{"x", tokenRows({1, 2, 3, 4})}});
    std::vector<Tensor> pre = e.wait(rid);
    ASSERT_EQ(pre.size(), 1u);
    EXPECT_EQ(pre[0].shape(), (Shape{4, cfg.vocab}));
    EXPECT_EQ(e.streamGeneration(sid), 4);

    // The synthesized feeds are engine-owned.
    EXPECT_THROW(e.submitDecode(sid, {{"x", tokenRows({1})},
                                      {"pos", tokenRows({0})}}),
                 std::invalid_argument);

    // Decode to the cache limit, then the stream is full.
    for (int64_t g = 4; g < cfg.maxSeq; ++g) {
        std::vector<Tensor> out =
            e.wait(e.submitDecode(sid, {{"x", tokenRows({5})}}));
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0].shape(), (Shape{1, cfg.vocab}));
        EXPECT_EQ(e.streamGeneration(sid), g + 1);
    }
    EXPECT_THROW(e.submitDecode(sid, {{"x", tokenRows({5})}}),
                 std::runtime_error);

    // Re-prefill restarts the conversation on the same stream.
    e.wait(e.submitPrefill(sid, {{"x", tokenRows({9, 8, 7, 6})}}));
    EXPECT_EQ(e.streamGeneration(sid), 4);

    e.closeStream(sid);
    EXPECT_THROW(e.streamGeneration(sid), std::out_of_range);
    EXPECT_THROW(e.closeStream(sid + 99), std::out_of_range);

    ServeStats st = e.stats();
    EXPECT_EQ(st.streamsOpened, 1);
    EXPECT_EQ(st.prefills, 2);
    EXPECT_EQ(st.decodeSteps, cfg.maxSeq - 4);
}

TEST(DecodeStreams, NonGenerativeEngineRejectsStreamApi)
{
    auto store = std::make_shared<ParamStore>();
    const DecoderConfig cfg = smallCfg();
    ServeOptions so;
    so.buckets = {2};
    so.workers = 1;
    ServingEngine e(
        [&](int64_t b) {
            Rng r(7);
            ModelSpec m = buildDecoderPrefill(cfg, b, r, store.get());
            return ServedModel{std::move(m.graph), {m.logits}};
        },
        store, so);
    EXPECT_FALSE(e.generative());
    EXPECT_EQ(e.streamCacheBytes(), 0);
    EXPECT_THROW(e.openStream(), std::logic_error);
    EXPECT_THROW(e.submitPrefill(1, {{"x", tokenRows({1, 2})}}),
                 std::logic_error);
}

// ---- 5. the acceptance bar: shared-run decode bit-parity --------------

/** Drive N streams for T decode steps on @p prec: once serially
 *  (coalescing off, one stream at a time), once with all N streams
 *  submitted per step against a coalescing engine — every logit
 *  tensor must match BIT FOR BIT, and the coalesced engine must have
 *  shared runs (>= 2x fewer decode runs than decode requests). */
void
runDecodeParity(Precision prec)
{
    const DecoderConfig cfg = smallCfg();
    const int N = 4;     // streams
    const int64_t T = 6; // decode steps per stream
    Rng r(97);
    std::vector<std::vector<float>> prompts(N), next(N);
    for (int s = 0; s < N; ++s) {
        for (int i = 0; i < 4; ++i)
            prompts[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
        for (int64_t t = 0; t < T; ++t)
            next[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
    }

    // Serial reference: one stream at a time, coalescing disabled.
    // Solo decode steps still pad to the bucket-4 decode plan.
    std::vector<Tensor> refPrefill(N);
    std::vector<std::vector<Tensor>> refStep(N);
    {
        GenEngine ge = makeGenEngine(0, 1, prec);
        for (int s = 0; s < N; ++s) {
            auto sid = ge.engine->openStream();
            refPrefill[s] = ge.engine->wait(
                ge.engine->submitPrefill(sid, {{"x",
                                                tokenRows(prompts[s])}}))[0];
            for (int64_t t = 0; t < T; ++t)
                refStep[s].push_back(ge.engine->wait(
                    ge.engine->submitDecode(
                        sid, {{"x", tokenRows({next[s][t]})}}))[0]);
            ge.engine->closeStream(sid);
        }
    }

    // Coalesced: all N streams advance in lockstep, so every step's
    // N single-token requests carry the same generation and share
    // bucket runs.
    GenEngine ge = makeGenEngine(20000, 1, prec);
    ServingEngine &e = *ge.engine;
    std::vector<ServingEngine::StreamId> sids(N);
    std::vector<ServingEngine::RequestId> rids(N);
    for (int s = 0; s < N; ++s)
        sids[s] = e.openStream();
    for (int s = 0; s < N; ++s)
        rids[s] = e.submitPrefill(sids[s],
                                  {{"x", tokenRows(prompts[s])}});
    for (int s = 0; s < N; ++s)
        expectBitEqual(e.wait(rids[s])[0], refPrefill[s],
                       "prefill stream " + std::to_string(s));
    for (int64_t t = 0; t < T; ++t) {
        for (int s = 0; s < N; ++s)
            rids[s] = e.submitDecode(
                sids[s], {{"x", tokenRows({next[s][t]})}});
        for (int s = 0; s < N; ++s)
            expectBitEqual(e.wait(rids[s])[0], refStep[s][t],
                           "stream " + std::to_string(s) + " step " +
                               std::to_string(t));
    }
    for (int s = 0; s < N; ++s)
        e.closeStream(sids[s]);

    // Run sharing actually happened: N x T decode requests must have
    // executed in at most half as many decode-bucket runs.
    ServeStats st = e.stats();
    int64_t decodeHits = 0, decodeRuns = 0;
    for (const BucketStats &bs : st.buckets)
        if (bs.decode) {
            decodeHits += bs.hits;
            decodeRuns += bs.runs;
        }
    EXPECT_EQ(decodeHits, static_cast<int64_t>(N) * T);
    EXPECT_LE(decodeRuns * 2, decodeHits)
        << "decode coalescing below the 2x acceptance bar";
    EXPECT_GE(st.coalescedRuns, 1);
}

TEST(DecodeParity, SharedRunsMatchSerialFp32)
{
    runDecodeParity(Precision::F32);
}

TEST(DecodeParity, SharedRunsMatchSerialInt8)
{
    runDecodeParity(Precision::Int8);
}

/** Threaded mixed-pace stress: 8 streams driven by 8 client threads
 *  (2 workers, real window) against per-stream serial references.
 *  Streams drift out of lockstep, so groups form opportunistically —
 *  parity must hold no matter how the generations interleave. */
TEST(DecodeParity, ThreadedStreamStressMatchesSerial)
{
    const DecoderConfig cfg = smallCfg();
    const int N = 8;
    const int64_t T = 5;
    Rng r(131);
    std::vector<std::vector<float>> prompts(N), next(N);
    for (int s = 0; s < N; ++s) {
        for (int i = 0; i < 4; ++i)
            prompts[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
        for (int64_t t = 0; t < T; ++t)
            next[s].push_back(
                static_cast<float>(r.randint(cfg.vocab)));
    }

    std::vector<Tensor> refPrefill(N);
    std::vector<std::vector<Tensor>> refStep(N);
    {
        GenEngine ge = makeGenEngine(0, 1);
        for (int s = 0; s < N; ++s) {
            auto sid = ge.engine->openStream();
            refPrefill[s] = ge.engine->wait(
                ge.engine->submitPrefill(sid, {{"x",
                                                tokenRows(prompts[s])}}))[0];
            for (int64_t t = 0; t < T; ++t)
                refStep[s].push_back(ge.engine->wait(
                    ge.engine->submitDecode(
                        sid, {{"x", tokenRows({next[s][t]})}}))[0]);
            ge.engine->closeStream(sid);
        }
    }

    GenEngine ge = makeGenEngine(500, 2);
    ServingEngine &e = *ge.engine;
    std::vector<std::thread> clients;
    for (int s = 0; s < N; ++s) {
        clients.emplace_back([&, s] {
            auto sid = e.openStream();
            Tensor pre = e.wait(e.submitPrefill(
                sid, {{"x", tokenRows(prompts[s])}}))[0];
            expectBitEqual(pre, refPrefill[s],
                           "stress prefill " + std::to_string(s));
            for (int64_t t = 0; t < T; ++t) {
                Tensor out = e.wait(e.submitDecode(
                    sid, {{"x", tokenRows({next[s][t]})}}))[0];
                expectBitEqual(out, refStep[s][t],
                               "stress stream " + std::to_string(s) +
                                   " step " + std::to_string(t));
            }
            e.closeStream(sid);
        });
    }
    for (auto &c : clients)
        c.join();

    ServeStats st = e.stats();
    EXPECT_EQ(st.streamsOpened, N);
    EXPECT_EQ(st.decodeSteps, static_cast<int64_t>(N) * T);
    EXPECT_EQ(st.failed, 0);
    EXPECT_EQ(st.completed, st.submitted);
}

// ---- 6. multi-head fused attention -----------------------------------
//
// The fused-attention contract, head count by head count:
//  - fuseAttention() collapses every attention subgraph (one per
//    layer) and DCE removes the unfused chain;
//  - the fused scalar kernel is BIT-identical to the unfused scalar
//    subgraph (same dot order, same softmax reduction sequence), and
//    the bound default tier stays inside the 1e-5 fp32 contract;
//  - int8 graphs keep their quantization boundaries (attention is
//    never quantized), so fused int8 serving matches unfused exactly;
//  - fused plans round-trip through serialize/load bit-identically;
//  - the Session handle is byte-equivalent to the raw entry points.

struct BuiltProg {
    std::shared_ptr<ParamStore> store;
    std::unique_ptr<InferenceProgram> prog;
};

BuiltProg
makeDecodeProg(const DecoderConfig &cfg, int64_t streams, bool fused,
               bool force_scalar)
{
    BuiltProg b;
    b.store = std::make_shared<ParamStore>();
    Rng rng(7);
    ModelSpec m = buildDecoderDecode(cfg, streams, rng, b.store.get());
    CompileOptions opt;
    opt.numThreads = 1;
    opt.fuseAttention = fused;
    opt.forceScalarTier = force_scalar;
    CompiledGraph c =
        compileInferenceGraph(m.graph, {m.logits}, opt, b.store);
    ExecOptions eopt;
    eopt.variants = std::move(c.variants);
    eopt.numThreads = 1;
    eopt.forceScalarTier = force_scalar;
    b.prog = std::make_unique<InferenceProgram>(
        std::move(c.graph), b.store, std::move(eopt),
        std::move(c.report), std::move(c.order));
    return b;
}

BuiltProg
makePrefillProg(const DecoderConfig &cfg, int64_t prompt, bool fused,
                bool force_scalar)
{
    BuiltProg b;
    b.store = std::make_shared<ParamStore>();
    Rng rng(7);
    ModelSpec m = buildDecoderPrefill(cfg, prompt, rng, b.store.get());
    CompileOptions opt;
    opt.numThreads = 1;
    opt.fuseAttention = fused;
    opt.forceScalarTier = force_scalar;
    CompiledGraph c =
        compileInferenceGraph(m.graph, {m.logits}, opt, b.store);
    ExecOptions eopt;
    eopt.variants = std::move(c.variants);
    eopt.numThreads = 1;
    eopt.forceScalarTier = force_scalar;
    b.prog = std::make_unique<InferenceProgram>(
        std::move(c.graph), b.store, std::move(eopt),
        std::move(c.report), std::move(c.order));
    return b;
}

int
countOps(const Graph &g, OpKind k)
{
    int n = 0;
    for (int id = 0; id < g.numNodes(); ++id)
        if (g.node(id).op == k)
            ++n;
    return n;
}

/** Decode feeds at generation @p gen for @p streams rows: distinct
 *  tokens per row, engine-style pos/mask synthesis. */
std::unordered_map<std::string, Tensor>
decodeFeeds(const DecoderConfig &cfg, int64_t streams, int64_t gen,
            int64_t salt)
{
    std::vector<float> toks;
    for (int64_t s = 0; s < streams; ++s)
        toks.push_back(static_cast<float>((salt + 3 * s + gen) %
                                          cfg.vocab));
    Tensor pos({streams, 1});
    Tensor mask({streams, cfg.maxSeq});
    for (int64_t s = 0; s < streams; ++s) {
        pos[s] = static_cast<float>(gen);
        for (int64_t j = 0; j < cfg.maxSeq; ++j)
            mask[s * cfg.maxSeq + j] = j <= gen ? 0.0f : -1e30f;
    }
    return {{"x", tokenRows(toks)},
            {"pos", std::move(pos)},
            {"mask", std::move(mask)}};
}

void
expectWithin(const Tensor &a, const Tensor &b, double tol,
             const std::string &what)
{
    ASSERT_EQ(a.shape(), b.shape()) << what;
    for (int64_t i = 0; i < a.size(); ++i) {
        double ref = std::abs(static_cast<double>(b[i]));
        ASSERT_NEAR(a[i], b[i], tol * std::max(1.0, ref))
            << what << " at " << i;
    }
}

TEST(FusedAttention, PassCollapsesEveryLayerAndDceRemovesTheChain)
{
    for (int64_t heads : {1, 2, 4}) {
        DecoderConfig cfg = smallCfg().withHeads(heads);
        BuiltProg fused = makeDecodeProg(cfg, 4, true, true);
        BuiltProg plain = makeDecodeProg(cfg, 4, false, true);
        const Graph &fg = fused.prog->graph();
        EXPECT_EQ(countOps(fg, OpKind::FusedAttention), cfg.layers)
            << heads << " heads: one FusedAttention per layer";
        EXPECT_EQ(countOps(fg, OpKind::Softmax), 0)
            << heads << " heads: unfused softmax left behind";
        EXPECT_EQ(countOps(plain.prog->graph(), OpKind::FusedAttention),
                  0)
            << "fuseAttention=false must build the unfused reference";
        EXPECT_EQ(countOps(plain.prog->graph(), OpKind::Softmax),
                  cfg.layers);
    }
}

TEST(FusedAttention, HeadSplitSinksIntoKernelAndShrinksPeakLive)
{
    // Multi-head decode: the pass must sink the K/V head-split
    // (reshape -> permute -> reshape) and the mask broadcast into the
    // op, so the fused graph holds NO materialized per-head copies —
    // that is what puts the fused plan's peak-live strictly below the
    // unfused plan's, where K's copy dies before V's is built.
    for (int64_t heads : {2, 4}) {
        DecoderConfig cfg = smallCfg().withHeads(heads);
        BuiltProg fused = makeDecodeProg(cfg, 4, true, true);
        BuiltProg plain = makeDecodeProg(cfg, 4, false, true);
        const Graph &fg = fused.prog->graph();
        EXPECT_EQ(countOps(fg, OpKind::Permute), 0)
            << heads << " heads: head-split permute not sunk";
        EXPECT_EQ(countOps(fg, OpKind::BroadcastTo), 0)
            << heads << " heads: mask broadcast not sunk";
        for (int id = 0; id < fg.numNodes(); ++id)
            if (fg.node(id).op == OpKind::FusedAttention)
                EXPECT_EQ(fg.node(id).attrs.getInt("heads", 0), heads);
        EXPECT_LT(fused.prog->report().peakLiveBytes,
                  plain.prog->report().peakLiveBytes)
            << heads << " heads: fused decode must plan below unfused";
    }
}

TEST(FusedAttention, MultiHeadDecodeParityScalarBitExactDefaultTier1e5)
{
    const int64_t B = 4;
    for (int64_t heads : {1, 2, 4}) {
        DecoderConfig cfg = smallCfg().withHeads(heads);
        // Scalar tier: the fused kernel replicates the unfused chain's
        // dot order and softmax reduction, so parity is BIT-exact.
        BuiltProg fused = makeDecodeProg(cfg, B, true, true);
        BuiltProg plain = makeDecodeProg(cfg, B, false, true);
        for (int64_t gen : {0, 3, 9}) {
            auto feeds = decodeFeeds(cfg, B, gen, heads);
            expectBitEqual(fused.prog->run(feeds)[0],
                           plain.prog->run(feeds)[0],
                           std::to_string(heads) + " heads, gen " +
                               std::to_string(gen) + " (scalar)");
        }
        // Default tier (AVX2/NEON when the host has it): the fp32
        // kernel contract is 1e-5 relative.
        BuiltProg fusedT = makeDecodeProg(cfg, B, true, false);
        BuiltProg plainT = makeDecodeProg(cfg, B, false, false);
        for (int64_t gen : {0, 9}) {
            auto feeds = decodeFeeds(cfg, B, gen, heads);
            expectWithin(fusedT.prog->run(feeds)[0],
                         plainT.prog->run(feeds)[0], 1e-5,
                         std::to_string(heads) + " heads, gen " +
                             std::to_string(gen) + " (tier)");
        }
    }
}

TEST(FusedAttention, MultiHeadPrefillParity)
{
    const int64_t S = 6;
    for (int64_t heads : {1, 2, 4}) {
        DecoderConfig cfg = smallCfg().withHeads(heads);
        BuiltProg fused = makePrefillProg(cfg, S, true, true);
        BuiltProg plain = makePrefillProg(cfg, S, false, true);
        auto feeds = std::unordered_map<std::string, Tensor>{
            {"x", tokenRows({1, 5, 9, 2, 7, 4})}};
        expectBitEqual(fused.prog->run(feeds)[0],
                       plain.prog->run(feeds)[0],
                       std::to_string(heads) + "-head prefill");
        EXPECT_EQ(countOps(fused.prog->graph(),
                           OpKind::FusedAttention),
                  cfg.layers);
    }
}

TEST(FusedAttention, Int8BoundariesUnchangedFusedMatchesUnfused)
{
    // Attention is never quantized (QuantizePass does not touch
    // FusedAttention, exactly as it never touched BatchMatMul or
    // Softmax), so an int8 graph's quantization boundaries are
    // identical with and without the fusion — fused int8 serving must
    // match unfused int8 serving bit for bit on the scalar tier.
    DecoderConfig cfg = smallCfg().withHeads(2);
    GenEngine fused =
        makeGenEngine(0, 1, Precision::Int8, cfg, true, true);
    GenEngine plain =
        makeGenEngine(0, 1, Precision::Int8, cfg, false, true);
    Session sf = fused.engine->session();
    Session sp = plain.engine->session();
    expectBitEqual(sf.prefill({{"x", tokenRows({3, 1, 4, 1})}})[0],
                   sp.prefill({{"x", tokenRows({3, 1, 4, 1})}})[0],
                   "int8 prefill fused vs unfused");
    for (int t = 0; t < 4; ++t) {
        float tok = static_cast<float>(5 + t);
        expectBitEqual(sf.decode({{"x", tokenRows({tok})}})[0],
                       sp.decode({{"x", tokenRows({tok})}})[0],
                       "int8 decode step " + std::to_string(t));
    }
}

TEST(FusedAttention, FusedPlanRoundTripsBitIdentically)
{
    DecoderConfig cfg = smallCfg().withHeads(2);
    // Default tier on both sides: the loaded plan binds at the host
    // tier, so the source program must too for bit comparison.
    BuiltProg b = makeDecodeProg(cfg, 4, true, false);
    std::string blob =
        serializePlan(b.prog->graph(), b.prog->executor().exportArtifact(),
                      b.prog->report(), *b.store);

    PipelineCounters before = pipelineCounters();
    auto loaded = loadPlanFromBytes(blob);
    auto feeds = decodeFeeds(cfg, 4, 2, 17);
    Tensor got = loaded->run(feeds)[0];
    PipelineCounters after = pipelineCounters();
    EXPECT_TRUE(before == after)
        << "loading a fused plan invoked a compile stage";

    EXPECT_EQ(countOps(loaded->graph(), OpKind::FusedAttention),
              cfg.layers)
        << "FusedAttention nodes must survive the round trip";
    expectBitEqual(got, b.prog->run(feeds)[0], "loaded fused logits");
}

// ---- 7. the unified Session API --------------------------------------

TEST(SessionApi, ByteIdenticalToRawEntryPoints)
{
    DecoderConfig cfg = smallCfg().withHeads(2);
    GenEngine a = makeGenEngine(0, 1, Precision::F32, cfg);
    GenEngine b = makeGenEngine(0, 1, Precision::F32, cfg);

    // Raw entry points on engine A...
    ServingEngine &ea = *a.engine;
    auto sid = ea.openStream();
    Tensor rawPre = ea.wait(
        ea.submitPrefill(sid, {{"x", tokenRows({2, 7, 1, 8})}}))[0];
    std::vector<Tensor> rawSteps;
    for (int t = 0; t < 3; ++t)
        rawSteps.push_back(ea.wait(ea.submitDecode(
            sid, {{"x", tokenRows({static_cast<float>(t + 1)})}}))[0]);
    Tensor rawShot =
        ea.wait(ea.submit({{"x", tokenRows({6, 5, 4, 3})}}))[0];

    // ...and the Session surface on the identically-seeded engine B
    // must produce byte-identical tensors.
    Session s = b.engine->session();
    EXPECT_EQ(s.stream(), 0u) << "stream opens lazily on prefill";
    EXPECT_EQ(s.generation(), 0);
    expectBitEqual(s.prefill({{"x", tokenRows({2, 7, 1, 8})}})[0],
                   rawPre, "session prefill");
    EXPECT_NE(s.stream(), 0u);
    EXPECT_EQ(s.generation(), 4);
    for (int t = 0; t < 3; ++t)
        expectBitEqual(
            s.decode({{"x", tokenRows({static_cast<float>(t + 1)})}})[0],
            rawSteps[static_cast<size_t>(t)],
            "session decode step " + std::to_string(t));
    expectBitEqual(s.run({{"x", tokenRows({6, 5, 4, 3})}})[0], rawShot,
                   "session one-shot run");

    // close() releases the stream; the handle can start over.
    auto old = s.stream();
    s.close();
    EXPECT_EQ(s.stream(), 0u);
    EXPECT_THROW(b.engine->streamGeneration(old), std::out_of_range);
    expectBitEqual(s.prefill({{"x", tokenRows({2, 7, 1, 8})}})[0],
                   rawPre, "session prefill after close");

    ea.closeStream(sid);
}

TEST(SessionApi, DecodeBeforePrefillThrows)
{
    GenEngine ge = makeGenEngine(0, 1);
    Session s = ge.engine->session();
    EXPECT_THROW(s.decode({{"x", tokenRows({1})}}), std::logic_error);

    // Moving the handle transfers stream ownership.
    s.prefill({{"x", tokenRows({1, 2, 3, 4})}});
    auto sid = s.stream();
    Session t = std::move(s);
    EXPECT_EQ(t.stream(), sid);
    EXPECT_EQ(s.stream(), 0u); // NOLINT(bugprone-use-after-move)
    t.close();
}

// ---- 8. validated builder setters ------------------------------------

TEST(BuilderSetters, RejectBadValuesNamingTheOffendingField)
{
    auto expectNames = [](const std::function<void()> &f,
                          const std::string &field) {
        try {
            f();
            FAIL() << "expected invalid_argument naming " << field;
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find(field),
                      std::string::npos)
                << "error must name " << field << ", got: " << e.what();
        }
    };

    DecoderConfig cfg;
    cfg.withDim(16).withHeads(4).withLayers(2).withMaxSeq(32).withVocab(
        64);
    EXPECT_EQ(cfg.dim, 16);
    EXPECT_EQ(cfg.heads, 4);
    expectNames([&] { cfg.withHeads(3); }, "heads");
    expectNames([&] { cfg.withHeads(0); }, "heads");
    expectNames([&] { cfg.withDim(30); }, "dim"); // 30 % 4 != 0
    expectNames([&] { cfg.withLayers(0); }, "layers");
    expectNames([&] { cfg.withMaxSeq(-1); }, "maxSeq");
    expectNames([&] { cfg.withVocab(0); }, "vocab");
    expectNames([&] { cfg.withFfDim(0); }, "ffDim");
    EXPECT_EQ(cfg.heads, 4) << "rejected setter must not mutate";

    ServeOptions so;
    so.withBuckets({4, 1}).withWorkers(3).withCoalesceWindow(250)
        .withQueueCapacity(16);
    EXPECT_EQ(so.workers, 3);
    EXPECT_EQ(so.coalesceWindowUs, 250);
    EXPECT_EQ(so.queueCapacity, 16u);
    expectNames([&] { so.withWorkers(0); }, "workers");
    expectNames([&] { so.withCoalesceWindow(-5); }, "coalesceWindowUs");
    expectNames([&] { so.withQueueCapacity(0); }, "queueCapacity");
    expectNames([&] { so.withBuckets({}); }, "buckets");
    expectNames([&] { so.withBuckets({4, 0}); }, "buckets");
    expectNames([&] { so.withDecodeBuckets({-2}); }, "decodeBuckets");
    EXPECT_EQ(so.workers, 3) << "rejected setter must not mutate";
}

} // namespace
} // namespace pe
