/**
 * @file
 * Parallel-runtime tests.
 *
 * Three layers of guarantees:
 *  1. ThreadPool primitives: full index coverage, barrier semantics.
 *  2. Kernel partition contract: for every splittable kernel, running
 *     the shards of a split [0,n) — sequentially or on the pool —
 *     produces bit-identical output to the unsharded call (shards
 *     write disjoint ranges and per-element accumulation order is
 *     preserved by construction).
 *  3. End-to-end: compiled training (MLP and a ConvNet) produces the
 *     same loss trajectory at numThreads=4 as at numThreads=1 within
 *     1e-5, and numThreads=1 is the same executor behavior as the
 *     default options.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "hw/threadpool.h"
#include "kernels/kernel.h"

namespace pe {
namespace {

// ---- ThreadPool ------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    std::vector<std::atomic<int>> hits(1000);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(1000, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            hits[i]++;
    });
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, DispatchIsABarrier)
{
    ThreadPool pool(4);
    for (int rep = 0; rep < 50; ++rep) {
        std::atomic<int> done{0};
        pool.dispatch(8, [&](int) { done++; });
        // dispatch() returning means all tasks finished.
        EXPECT_EQ(done.load(), 8);
    }
}

TEST(ThreadPool, GrainLimitsShardCount)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(10, 8, [&](int64_t b, int64_t e) {
        calls++;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 10);
    });
    EXPECT_EQ(calls.load(), 1) << "10 elems at grain 8 must not split";
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    int64_t sum = 0; // no atomics needed: everything runs on this thread
    pool.parallelFor(100, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum, 99 * 100 / 2);
}

// ---- Kernel partition contract ---------------------------------------

/** A node plus materialized input tensors, ready to invoke. */
struct KernelCase {
    Graph g;
    int node = -1;
    std::vector<Tensor> inputs;

    KernelCase(OpKind op, const std::vector<Shape> &in_shapes, Attrs a,
               uint64_t seed = 42, const std::vector<int> &int_inputs = {})
    {
        Rng rng(seed);
        std::vector<int> ids;
        for (size_t i = 0; i < in_shapes.size(); ++i)
            ids.push_back(g.input(in_shapes[i], "in" + std::to_string(i)));
        node = g.add(op, ids, std::move(a));
        for (size_t i = 0; i < in_shapes.size(); ++i) {
            bool is_int =
                std::find(int_inputs.begin(), int_inputs.end(),
                          static_cast<int>(i)) != int_inputs.end();
            Tensor t = Tensor::randn(in_shapes[i], rng);
            if (is_int) {
                for (int64_t j = 0; j < t.size(); ++j)
                    t[j] = static_cast<float>(
                        static_cast<int64_t>(std::fabs(t[j]) * 100) %
                        in_shapes[i].back());
            }
            inputs.push_back(std::move(t));
        }
    }

    KernelCtx
    ctxFor(std::vector<Tensor> &ins, Tensor &out) const
    {
        KernelCtx c;
        const Node &n = g.node(node);
        c.node = &n;
        for (size_t i = 0; i < ins.size(); ++i) {
            c.in.push_back(ins[i].data());
            c.inShapes.push_back(&g.node(n.inputs[i]).shape);
        }
        c.out = out.data();
        c.outShape = &n.shape;
        c.step = 3; // matters for Adam bias correction
        return c;
    }
};

/**
 * Contract check: unsharded == sequential shards == pooled shards,
 * bit for bit. In-place kernels mutate their inputs, so each variant
 * runs on a fresh clone of every buffer. Workspaces follow the
 * executor's Arena v2 contract: every shard gets its own private
 * instance, all shards of a node see one shared region, and shared
 * regions are warmed (via the declared init hook) before any
 * concurrent launch.
 */
void
expectShardInvariant(const KernelCase &kc, const std::string &variant = "")
{
    const Node &node = kc.g.node(kc.node);
    KernelInfo info = lookupKernelInfo(node.op, variant);
    ASSERT_FALSE(info.fellBack);
    ASSERT_TRUE(info.part.splittable());
    WorkspaceSpec spec = kernelWorkspace(kc.g, node, variant);
    auto ws_floats = [](int64_t bytes) {
        return static_cast<size_t>((bytes + 3) / 4);
    };

    auto clone_inputs = [&] {
        std::vector<Tensor> c;
        for (const Tensor &t : kc.inputs)
            c.push_back(t.clone());
        return c;
    };
    const Shape &os = kc.g.node(kc.node).shape;

    // Reference: one unsharded invocation.
    std::vector<Tensor> in_ref = clone_inputs();
    Tensor out_ref = Tensor::zeros(os);
    KernelCtx ref = kc.ctxFor(in_ref, out_ref);
    std::vector<float> ref_ws(ws_floats(spec.bytesPerShard));
    std::vector<float> ref_shared(ws_floats(spec.sharedBytes));
    bool ref_ready = false;
    if (!ref_ws.empty())
        ref.workspace = ref_ws.data();
    if (!ref_shared.empty())
        ref.shared = ref_shared.data();
    ref.sharedReady = &ref_ready;
    info.fn(ref);

    int64_t extent = info.part.extent(ref);
    ASSERT_GE(extent, 3) << "case too small to split three ways";

    // Sequential shards: deterministic disjointness check.
    {
        std::vector<Tensor> ins = clone_inputs();
        Tensor out = Tensor::zeros(os);
        KernelCtx base = kc.ctxFor(ins, out);
        std::vector<float> shared(ws_floats(spec.sharedBytes));
        bool ready = false;
        int64_t cuts[4] = {0, extent / 3, 2 * extent / 3, extent};
        for (int s = 0; s < 3; ++s) {
            KernelCtx shard = base;
            shard.begin = cuts[s];
            shard.end = cuts[s + 1];
            std::vector<float> ws(ws_floats(spec.bytesPerShard));
            if (!ws.empty())
                shard.workspace = ws.data();
            if (!shared.empty())
                shard.shared = shared.data();
            shard.sharedReady = &ready;
            info.fn(shard);
        }
        EXPECT_EQ(std::memcmp(out.data(), out_ref.data(),
                              sizeof(float) * out.size()),
                  0)
            << "sequential shards differ from unsharded";
        for (size_t i = 0; i < ins.size(); ++i) {
            EXPECT_EQ(std::memcmp(ins[i].data(), in_ref[i].data(),
                                  sizeof(float) * ins[i].size()),
                      0)
                << "in-place input " << i << " differs";
        }
    }

    // Pooled shards, repeated: races would show up as flaky diffs.
    ThreadPool pool(4);
    for (int rep = 0; rep < 10; ++rep) {
        std::vector<Tensor> ins = clone_inputs();
        Tensor out = Tensor::zeros(os);
        KernelCtx base = kc.ctxFor(ins, out);
        std::vector<float> shared(ws_floats(spec.sharedBytes));
        bool ready = false;
        if (!shared.empty()) {
            base.shared = shared.data();
            base.sharedReady = &ready;
            // Executor contract: shared regions are warmed serially
            // before any concurrent launch touches them.
            ASSERT_NE(spec.init, nullptr)
                << "shared workspace without an init hook cannot be "
                   "safely sharded";
            spec.init(base);
        }
        pool.parallelFor(extent, 1, [&](int64_t b, int64_t e) {
            KernelCtx shard = base;
            shard.begin = b;
            shard.end = e;
            std::vector<float> ws(ws_floats(spec.bytesPerShard));
            if (!ws.empty())
                shard.workspace = ws.data();
            info.fn(shard);
        });
        ASSERT_EQ(std::memcmp(out.data(), out_ref.data(),
                              sizeof(float) * out.size()),
                  0)
            << "pooled shards differ from unsharded (rep " << rep << ")";
    }
}

Attrs
convAttrs(int64_t stride, int64_t pad)
{
    Attrs a;
    a.set("stride", stride);
    a.set("pad", pad);
    return a;
}

TEST(KernelPartition, Elementwise)
{
    expectShardInvariant({OpKind::Add, {{6, 33}, {6, 33}}, {}});
    expectShardInvariant({OpKind::Add, {{6, 33}, {33}}, {}}); // bias bcast
    expectShardInvariant({OpKind::Mul, {{4, 1, 5}, {4, 7, 5}}, {}});
    expectShardInvariant({OpKind::Relu, {{201}}, {}});
    expectShardInvariant({OpKind::Gelu, {{201}}, {}});
    expectShardInvariant({OpKind::ReluGrad, {{201}, {201}}, {}});
    expectShardInvariant({OpKind::Identity, {{201}}, {}});
}

TEST(KernelPartition, MatMul)
{
    expectShardInvariant({OpKind::MatMul, {{13, 7}, {7, 9}}, {}});
    expectShardInvariant({OpKind::MatMul, {{13, 7}, {7, 9}}, {}},
                         "blocked");
    Attrs t;
    t.set("transB", static_cast<int64_t>(1));
    expectShardInvariant(
        {OpKind::MatMul, {{13, 7}, {9, 7}}, std::move(t)});
    expectShardInvariant(
        {OpKind::BatchMatMul, {{5, 4, 6}, {5, 6, 3}}, {}});
}

TEST(KernelPartition, Conv)
{
    expectShardInvariant(
        {OpKind::Conv2d, {{2, 3, 8, 8}, {4, 3, 3, 3}}, convAttrs(1, 1)});
    expectShardInvariant(
        {OpKind::DwConv2d, {{2, 4, 8, 8}, {4, 1, 3, 3}}, convAttrs(1, 1)});

    Attrs bi = convAttrs(1, 1);
    bi.set("xshape", std::vector<int64_t>{3, 3, 8, 8});
    expectShardInvariant({OpKind::Conv2dBwdInput,
                          {{4, 3, 3, 3}, {3, 4, 8, 8}},
                          std::move(bi)});

    Attrs bw = convAttrs(1, 1);
    bw.set("wshape", std::vector<int64_t>{4, 3, 3, 3});
    expectShardInvariant({OpKind::Conv2dBwdWeight,
                          {{2, 3, 8, 8}, {2, 4, 8, 8}},
                          std::move(bw)});
}

TEST(KernelPartition, RowKernels)
{
    expectShardInvariant({OpKind::Softmax, {{9, 17}}, {}});
    expectShardInvariant({OpKind::SoftmaxGrad, {{9, 17}, {9, 17}}, {}});
    expectShardInvariant(
        {OpKind::LayerNorm, {{9, 33}, {33}, {33}}, {}});
    expectShardInvariant(
        {OpKind::LayerNormGradX, {{9, 33}, {33}, {9, 33}}, {}});
    expectShardInvariant({OpKind::RMSNorm, {{9, 33}, {33}}, {}});
    // Grad-gamma accumulates over rows and is registered serial.
    EXPECT_FALSE(lookupKernelInfo(OpKind::LayerNormGradGamma, "")
                     .part.splittable());
}

TEST(KernelPartition, Reduce)
{
    Attrs a0;
    a0.set("axes", std::vector<int64_t>{0});
    expectShardInvariant({OpKind::ReduceSum, {{7, 15}}, std::move(a0)});
    Attrs a1;
    a1.set("axes", std::vector<int64_t>{1});
    expectShardInvariant({OpKind::ReduceMean, {{15, 7}}, std::move(a1)});
    Attrs a2;
    a2.set("axes", std::vector<int64_t>{0, 2});
    expectShardInvariant({OpKind::ReduceSum, {{4, 9, 5}}, std::move(a2)});
}

TEST(KernelPartition, LossGradAndOptim)
{
    expectShardInvariant(
        {OpKind::CrossEntropyGrad, {{12, 5}, {12}}, {}, 42, {1}});
    expectShardInvariant({OpKind::MseGrad, {{101}, {101}}, {}});

    Attrs sgd;
    sgd.set("lr", 0.05);
    expectShardInvariant({OpKind::ApplySgd, {{77}, {77}}, std::move(sgd)});
    Attrs adam;
    adam.set("lr", 0.01);
    expectShardInvariant(
        {OpKind::ApplyAdam, {{77}, {77}, {77}, {77}}, std::move(adam)});
    expectShardInvariant({OpKind::AccumGrad, {{77}, {77}}, {}});
}

TEST(KernelPartition, FusedKernels)
{
    Attrs mb;
    mb.set("act", kActRelu);
    expectShardInvariant(
        {OpKind::MatMulBiasAct, {{13, 7}, {7, 9}, {9}}, std::move(mb)});
    Attrs cb = convAttrs(1, 1);
    cb.set("act", kActRelu);
    expectShardInvariant({OpKind::ConvBiasAct,
                          {{2, 3, 8, 8}, {4, 3, 3, 3}, {4, 1, 1}},
                          std::move(cb)});
}

// ---- Fallback visibility ---------------------------------------------

TEST(KernelRegistry, UnknownVariantFallsBackVisibly)
{
    KernelInfo info = lookupKernelInfo(OpKind::MatMul, "no-such-backend");
    EXPECT_TRUE(info.fellBack);
    EXPECT_EQ(info.fn, lookupKernelInfo(OpKind::MatMul, "").fn);
    EXPECT_FALSE(lookupKernelInfo(OpKind::MatMul, "blocked").fellBack);
}

TEST(KernelRegistry, ExecutorCountsFallbacks)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int h = b.linear(x, 8, "l1", /*bias=*/false);
    g.markOutput(h);

    ExecOptions opt;
    opt.variants.assign(g.numNodes(), "");
    for (int id = 0; id < g.numNodes(); ++id) {
        if (g.node(id).op == OpKind::MatMul)
            opt.variants[id] = "no-such-backend";
    }
    Executor ex(g, naturalOrder(g), store, std::move(opt));
    EXPECT_EQ(ex.fallbackCount(), 1);
    ASSERT_EQ(ex.fallbackKernels().size(), 1u);
    EXPECT_EQ(ex.fallbackKernels()[0], "MatMul/no-such-backend");
}

// ---- End-to-end: thread count does not change training ---------------

struct MlpFixture {
    Graph g;
    Rng rng{7};
    std::shared_ptr<ParamStore> store = std::make_shared<ParamStore>();
    int loss = -1;

    MlpFixture()
    {
        NetBuilder b(g, rng, store.get());
        int x = b.input({16, 8}, "x");
        int h = b.relu(b.linear(x, 32, "l1"));
        h = b.gelu(b.linear(h, 32, "l2"));
        int logits = b.linear(h, 4, "head");
        int y = b.input({16}, "y");
        loss = b.crossEntropy(logits, y);
    }

    static Batch
    batch(Rng &r)
    {
        Batch out;
        out.x = Tensor({16, 8});
        out.y = Tensor({16});
        for (int i = 0; i < 16; ++i) {
            int cls = static_cast<int>(r.uniform(0, 3.999f));
            for (int j = 0; j < 8; ++j)
                out.x[i * 8 + j] = r.uniform(-1, 1) + (j % 4 == cls);
            out.y[i] = static_cast<float>(cls);
        }
        return out;
    }
};

std::vector<float>
mlpTrajectory(int num_threads, int steps)
{
    MlpFixture f;
    CompileOptions opt;
    opt.optim = OptimConfig::adam(0.01);
    opt.numThreads = num_threads;
    auto prog = compileTraining(f.g, f.loss, SparseUpdateScheme::full(),
                                opt, f.store);
    Rng r(11);
    std::vector<float> losses;
    for (int s = 0; s < steps; ++s) {
        Batch b = MlpFixture::batch(r);
        losses.push_back(prog.trainStep({{"x", b.x}, {"y", b.y}}));
    }
    return losses;
}

std::vector<float>
convTrajectory(int num_threads, int steps)
{
    Rng rng(3);
    auto store = std::make_shared<ParamStore>();
    VisionConfig vc;
    vc.batch = 4;
    vc.resolution = 16;
    ModelSpec m = buildMcuNet(vc, rng, store.get());
    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.05);
    opt.numThreads = num_threads;
    auto prog = compileTraining(m.graph, m.loss,
                                SparseUpdateScheme::full(), opt, store);
    SyntheticVision task = SyntheticVision::pretrain(3, 16);
    Rng r(5);
    std::vector<float> losses;
    for (int s = 0; s < steps; ++s) {
        Batch b = task.sample(4, r);
        losses.push_back(prog.trainStep({{"x", b.x}, {"y", b.y}}));
    }
    return losses;
}

TEST(ParallelEndToEnd, MlpLossTrajectoryMatches)
{
    std::vector<float> serial = mlpTrajectory(1, 30);
    std::vector<float> parallel = mlpTrajectory(4, 30);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_NEAR(serial[i], parallel[i], 1e-5f) << "step " << i;
    // And training must actually be learning, or the parity is vacuous.
    EXPECT_LT(serial.back(), serial.front());
}

TEST(ParallelEndToEnd, ConvNetLossTrajectoryMatches)
{
    std::vector<float> serial = convTrajectory(1, 10);
    std::vector<float> parallel = convTrajectory(4, 10);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_NEAR(serial[i], parallel[i], 1e-5f) << "step " << i;
}

TEST(ParallelEndToEnd, FourThreadPlanActuallyShards)
{
    MlpFixture f;
    CompileOptions opt;
    opt.numThreads = 4;
    auto prog = compileTraining(f.g, f.loss, SparseUpdateScheme::full(),
                                opt, f.store);
    EXPECT_GT(prog.executor().shardedSteps(), 0)
        << "4-thread launch plan degenerated to fully serial";

    MlpFixture f1;
    CompileOptions opt1; // numThreads defaults to 1
    auto prog1 = compileTraining(f1.g, f1.loss,
                                 SparseUpdateScheme::full(), opt1,
                                 f1.store);
    EXPECT_EQ(prog1.executor().shardedSteps(), 0)
        << "serial executor must not shard";
}

// ---- Batched inference -----------------------------------------------

TEST(ParallelEndToEnd, RunBatchMatchesRun)
{
    MlpFixture f;
    std::vector<int> outputs = {f.g.node(f.loss).inputs[0]}; // logits
    CompileOptions opt;
    opt.numThreads = 2;
    auto infer = compileInference(f.g, outputs, opt, f.store);

    Rng r(13);
    std::vector<std::unordered_map<std::string, Tensor>> feeds;
    for (int i = 0; i < 4; ++i)
        feeds.push_back({{"x", MlpFixture::batch(r).x}});

    auto batched = infer.runBatch(feeds);
    ASSERT_EQ(batched.size(), feeds.size());
    for (size_t i = 0; i < feeds.size(); ++i) {
        std::vector<Tensor> one = infer.run(feeds[i]);
        ASSERT_EQ(batched[i].size(), one.size());
        for (size_t j = 0; j < one.size(); ++j) {
            EXPECT_EQ(std::memcmp(batched[i][j].data(), one[j].data(),
                                  sizeof(float) * one[j].size()),
                      0)
                << "feed " << i << " output " << j;
        }
    }
}

} // namespace
} // namespace pe
