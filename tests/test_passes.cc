/**
 * @file
 * Pass-level tests: DCE, simplify, constant folding, fusion pattern
 * safety, memory-aware reordering invariants, backend switching.
 */

#include <gtest/gtest.h>

#include "frontend/builder.h"
#include "passes/passes.h"
#include "runtime/planner.h"
#include "testutil.h"

namespace pe {
namespace {

TEST(Dce, RemovesUnreachableNodes)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({2, 4}, "x");
    int used = b.relu(x);
    b.gelu(x); // dead
    b.silu(used); // dead
    g.markOutput(used);
    EXPECT_EQ(dce(g), 2);
    EXPECT_EQ(g.numNodes(), 2);
}

TEST(Dce, KeepsEverythingReachable)
{
    Graph g;
    int x = g.input({4}, "x");
    int y = g.add(OpKind::Relu, {x});
    g.markOutput(y);
    EXPECT_EQ(dce(g), 0);
}

TEST(Simplify, MulByOneBecomesIdentityAndIsBypassed)
{
    Graph g;
    int x = g.input({3}, "x");
    int one = g.constantOf(Tensor::ones({3}));
    int m = g.add(OpKind::Mul, {x, one});
    int out = g.add(OpKind::Relu, {m});
    g.markOutput(out);
    EXPECT_GT(simplify(g), 0);
    EXPECT_EQ(g.node(out).inputs[0], x) << "Relu should consume x directly";
}

TEST(Simplify, AddZeroBecomesIdentity)
{
    Graph g;
    int x = g.input({3}, "x");
    int zero = g.constantOf(Tensor::zeros({3}));
    int a = g.add(OpKind::Add, {x, zero});
    g.markOutput(a);
    simplify(g);
    EXPECT_EQ(g.node(a).op, OpKind::Identity);
}

TEST(ConstantFold, FoldsConstSubgraph)
{
    Graph g;
    int a = g.constantOf(Tensor::full({4}, 2.0f));
    int b = g.constantOf(Tensor::full({4}, 3.0f));
    int sum = g.add(OpKind::Add, {a, b});
    int relu = g.add(OpKind::Relu, {sum});
    g.markOutput(relu);
    EXPECT_EQ(constantFold(g), 2);
    EXPECT_EQ(g.node(relu).op, OpKind::Const);
    EXPECT_FLOAT_EQ(g.constData(relu)[0], 5.0f);
}

TEST(Fusion, ConvBiasReluFuses)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({1, 3, 8, 8}, "x");
    int h = b.relu(b.conv2d(x, 4, 3, 1, 1, "c"));
    g.markOutput(h);
    EXPECT_EQ(fuseOperators(g), 1);
    dce(g);
    int fused = 0;
    for (const Node &n : g.nodes())
        fused += n.op == OpKind::ConvBiasAct;
    EXPECT_EQ(fused, 1);
    EXPECT_EQ(g.node(g.outputs()[0]).attrs.getInt("act", 0), kActRelu);
}

TEST(Fusion, MatMulBiasGeluFuses)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int h = b.gelu(b.linear(x, 16, "fc"));
    g.markOutput(h);
    EXPECT_EQ(fuseOperators(g), 1);
    dce(g);
    bool found = false;
    for (const Node &n : g.nodes()) {
        if (n.op == OpKind::MatMulBiasAct) {
            found = true;
            EXPECT_EQ(n.attrs.getInt("act", 0), kActGelu);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Fusion, ActNotFusedWhenPreActivationHasOtherConsumers)
{
    // The pre-activation is consumed by two nodes (as in a backward
    // graph that needs it): the activation must NOT be folded into
    // the linear op. Fusing MatMul + bias-Add alone (act = none) is
    // still legal and expected — the fused value keeps both
    // consumers.
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int lin = b.linear(x, 16, "fc"); // MatMul + Add
    int act = b.relu(lin);
    int extra = b.gelu(lin); // second consumer of the bias-add
    g.markOutput(act);
    g.markOutput(extra);
    EXPECT_EQ(fuseOperators(g), 1);
    EXPECT_EQ(g.node(lin).op, OpKind::MatMulBiasAct);
    EXPECT_EQ(g.node(lin).attrs.getInt("act", 0), kActNone);
    EXPECT_EQ(g.node(act).op, OpKind::Relu);
    EXPECT_EQ(g.node(extra).op, OpKind::Gelu);
}

TEST(Fusion, RefusesResidualAdd)
{
    // Add of two non-bias activations must never be fused as a bias.
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({1, 4, 8, 8}, "x");
    int c1 = b.conv2d(x, 4, 3, 1, 1, "c1", /*bias=*/false);
    int c2 = b.conv2d(x, 4, 3, 1, 1, "c2", /*bias=*/false);
    int res = b.add(c1, c2);
    g.markOutput(res);
    EXPECT_EQ(fuseOperators(g), 0);
}

TEST(Fusion, PairsBiasAddWithFollowingActivation)
{
    // Conv -> Add -> Relu must become ONE ConvBiasAct(relu), not a
    // ConvBiasAct(none) followed by Relu.
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({1, 3, 8, 8}, "x");
    int h = b.relu(b.conv2d(x, 4, 3, 1, 1, "c"));
    g.markOutput(h);
    fuseOperators(g);
    dce(g);
    for (const Node &n : g.nodes()) {
        if (n.op == OpKind::ConvBiasAct)
            EXPECT_EQ(n.attrs.getInt("act", 0), kActRelu);
        EXPECT_NE(n.op, OpKind::Relu);
    }
}

TEST(Reorder, ProducesValidTopologicalOrder)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int h = b.relu(b.linear(x, 8, "a"));
    h = b.add(h, b.relu(b.linear(x, 8, "c")));
    g.markOutput(h);
    auto order = reorderForMemory(g);
    ASSERT_EQ(order.size(), static_cast<size_t>(g.numNodes()));
    std::vector<int> pos(g.numNodes());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = static_cast<int>(i);
    for (const Node &n : g.nodes()) {
        for (int in : n.inputs)
            EXPECT_LT(pos[in], pos[n.id]);
    }
}

TEST(Reorder, InPlaceUpdateRunsAfterAllParamReaders)
{
    // ApplySgd(w) mutates w; every forward/backward reader of w must
    // be scheduled first or gradients would be computed against
    // already-updated weights.
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int w = g.findParam("nonexistent"); // silence unused warning
    (void)w;
    int h = b.linear(x, 8, "l1");
    h = b.relu(h);
    h = b.linear(h, 4, "l2");
    int y = b.input({4}, "y");
    int loss = b.crossEntropy(h, y);
    BackwardResult bwd = buildBackward(g, loss);
    g.markOutput(loss);
    Attrs a;
    a.set("lr", 0.1);
    int w1 = g.findParam("l1.weight");
    int apply = g.add(OpKind::ApplySgd, {w1, bwd.paramGrads.at(w1)},
                      std::move(a));
    g.markOutput(apply);
    auto order = reorderForMemory(g);
    std::vector<int> pos(g.numNodes());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = static_cast<int>(i);
    auto users = g.consumers();
    for (int u : users[w1]) {
        if (u != apply)
            EXPECT_LT(pos[u], pos[apply]);
    }
}

TEST(BackendSwitch, BlockedOnlyForLargeGemms)
{
    Graph g;
    int a = g.input({128, 128}, "a");
    int b = g.input({128, 128}, "b");
    int big = g.add(OpKind::MatMul, {a, b});
    int c = g.input({4, 4}, "c");
    int d = g.input({4, 4}, "d");
    int small = g.add(OpKind::MatMul, {c, d});
    g.markOutput(big);
    g.markOutput(small);
    auto variants = switchBackends(g, BackendOptions{});
    EXPECT_EQ(variants[big], "blocked");
    EXPECT_EQ(variants[small], "");
}

TEST(BackendSwitch, WinogradRequiresFrozen3x3Stride1)
{
    Graph g;
    int x = g.input({1, 4, 8, 8}, "x");
    int w_frozen = g.param({4, 4, 3, 3}, "wf", false);
    int w_train = g.param({4, 4, 3, 3}, "wt", true);
    int w_5x5 = g.param({4, 4, 5, 5}, "w5", false);
    Attrs a1;
    a1.set("stride", static_cast<int64_t>(1));
    a1.set("pad", static_cast<int64_t>(1));
    int c_ok = g.add(OpKind::Conv2d, {x, w_frozen}, a1);
    int c_train = g.add(OpKind::Conv2d, {x, w_train}, a1);
    Attrs a2;
    a2.set("stride", static_cast<int64_t>(1));
    a2.set("pad", static_cast<int64_t>(2));
    int c_5x5 = g.add(OpKind::Conv2d, {x, w_5x5}, std::move(a2));
    Attrs a3;
    a3.set("stride", static_cast<int64_t>(2));
    a3.set("pad", static_cast<int64_t>(1));
    int c_s2 = g.add(OpKind::Conv2d, {x, w_frozen}, std::move(a3));
    g.markOutput(c_ok);
    g.markOutput(c_train);
    g.markOutput(c_5x5);
    g.markOutput(c_s2);
    PassStats stats;
    auto variants = switchBackends(g, BackendOptions{}, &stats);
    EXPECT_EQ(variants[c_ok], "winograd");
    EXPECT_EQ(variants[c_train], "");
    EXPECT_EQ(variants[c_5x5], "");
    EXPECT_EQ(variants[c_s2], "");
    EXPECT_EQ(stats.winogradBound, 1);
}

TEST(LiveSet, TracksThroughChains)
{
    Graph g;
    int x = g.input({4}, "x");
    int a = g.add(OpKind::Relu, {x});
    int b = g.add(OpKind::Gelu, {a});
    int dead = g.add(OpKind::Silu, {x});
    (void)dead;
    g.markOutput(b);
    auto live = liveSet(g);
    EXPECT_TRUE(live[x]);
    EXPECT_TRUE(live[a]);
    EXPECT_TRUE(live[b]);
    EXPECT_FALSE(live[dead]);
}

} // namespace
} // namespace pe
