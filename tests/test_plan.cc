/**
 * @file
 * Binary plan serialization tests (src/plan/).
 *
 * Layers of guarantees:
 *  1. Round-trip: save/load/run is BIT-identical to the freshly
 *     compiled program, for fp32/fp16/int8 x {MLP, MCUNet}, and for
 *     nt=1 vs nt=4 launch geometry.
 *  2. Zero recompile: loading performs no planner / scheduler /
 *     QuantizePass invocations (pipelineCounters delta == 0).
 *  3. Determinism: compiling the same model twice yields
 *     byte-identical plan files (the CI round-trip job's `cmp`).
 *  4. Robust load errors: truncated file, bad magic, version
 *     mismatch, checksum failure and unknown-kernel-name each throw
 *     their own typed error, and a corrupt-one-byte fuzz loop never
 *     produces UB or a silent success.
 *  5. Serving: a ServingEngine built from a plan directory serves
 *     bit-identical results to one that compiled its buckets, with
 *     zero compile work at startup; calibrate() wired into the bucket
 *     factory produces a real int8 serving path.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "plan/plan.h"
#include "quant/quant.h"
#include "runtime/planner.h"
#include "serve/serving.h"

namespace pe {
namespace {

using Feeds = std::unordered_map<std::string, Tensor>;

// ---- fixtures --------------------------------------------------------

struct Built {
    Graph graph;
    int logits = -1;
    std::shared_ptr<ParamStore> store;
    Shape inShape;
};

Built
makeMlp(int64_t batch, int64_t hidden = 32)
{
    Built b;
    b.store = std::make_shared<ParamStore>();
    Rng rng(7);
    NetBuilder nb(b.graph, rng, b.store.get());
    int x = nb.input({batch, 16}, "x");
    int h = nb.relu(nb.linear(x, hidden, "fc1"));
    h = nb.relu(nb.linear(h, hidden, "fc2"));
    b.logits = nb.linear(h, 4, "head");
    b.inShape = {batch, 16};
    return b;
}

Built
makeCnn(int64_t batch)
{
    Built b;
    b.store = std::make_shared<ParamStore>();
    VisionConfig cfg;
    cfg.batch = batch;
    cfg.resolution = 12;
    cfg.width = 0.5;
    cfg.blocks = 2;
    Rng rng(11);
    ModelSpec m = buildMcuNet(cfg, rng, b.store.get());
    b.graph = std::move(m.graph);
    b.logits = m.logits;
    b.inShape = {batch, 3, 12, 12};
    return b;
}

/** Calibrate (for non-fp32) and compile @p b at (precision, nt). */
std::unique_ptr<InferenceProgram>
compileProg(Built &b, Precision p, int nt)
{
    if (p != Precision::F32) {
        std::vector<Feeds> calib;
        Rng rng(21);
        for (int i = 0; i < 2; ++i)
            calib.push_back({{"x", Tensor::randn(b.inShape, rng)}});
        calibrate(b.graph, *b.store, calib);
    }
    CompileOptions opt;
    opt.precision = p;
    opt.numThreads = nt;
    CompiledGraph c =
        compileInferenceGraph(b.graph, {b.logits}, opt, b.store);
    ExecOptions eopt;
    eopt.variants = std::move(c.variants);
    eopt.numThreads = nt;
    return std::make_unique<InferenceProgram>(
        std::move(c.graph), b.store, std::move(eopt),
        std::move(c.report), std::move(c.order));
}

std::string
serialize(const InferenceProgram &prog,
          const ParamStore &store)
{
    return serializePlan(prog.graph(),
                         prog.executor().exportArtifact(),
                         prog.report(), store);
}

bool
bitEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) *
                           static_cast<size_t>(a.size())) == 0;
}

Tensor
seededInput(const Shape &shape, uint64_t seed = 123)
{
    Rng rng(seed);
    return Tensor::randn(shape, rng);
}

// ---- 1. round-trip bit parity ----------------------------------------

TEST(PlanRoundTrip, BitParityAllPrecisionsAllModels)
{
    for (bool cnn : {false, true}) {
        for (Precision p :
             {Precision::F32, Precision::F16, Precision::Int8}) {
            SCOPED_TRACE(std::string(cnn ? "mcunet/" : "mlp/") +
                         precisionName(p));
            Built b = cnn ? makeCnn(2) : makeMlp(2);
            auto prog = compileProg(b, p, 1);
            Tensor x = seededInput(b.inShape);
            Tensor fresh = prog->run({{"x", x}})[0];

            std::string blob = serialize(*prog, *b.store);
            auto loaded = loadPlanFromBytes(blob);
            EXPECT_EQ(loaded->report().precision, p);
            Tensor replay = loaded->run({{"x", x}})[0];
            EXPECT_TRUE(bitEqual(fresh, replay));

            // Repeated runs on the loaded program stay stable (the
            // arena is recycled identically step over step).
            EXPECT_TRUE(
                bitEqual(replay, loaded->run({{"x", x}})[0]));
        }
    }
}

TEST(PlanRoundTrip, ThreadCountParityOnLoadedPlan)
{
    Built b1 = makeCnn(2);
    auto prog1 = compileProg(b1, Precision::F32, 1);
    Built b4 = makeCnn(2);
    auto prog4 = compileProg(b4, Precision::F32, 4);

    Tensor x = seededInput(b1.inShape);
    Tensor fresh1 = prog1->run({{"x", x}})[0];
    Tensor fresh4 = prog4->run({{"x", x}})[0];
    ASSERT_TRUE(bitEqual(fresh1, fresh4)); // PR-1 invariant

    auto loaded1 = loadPlanFromBytes(serialize(*prog1, *b1.store));
    auto loaded4 = loadPlanFromBytes(serialize(*prog4, *b4.store));
    EXPECT_EQ(loaded4->executor().numThreads(), 4);
    EXPECT_EQ(loaded4->executor().shardedSteps(),
              prog4->executor().shardedSteps());

    Tensor r1 = loaded1->run({{"x", x}})[0];
    Tensor r4 = loaded4->run({{"x", x}})[0];
    EXPECT_TRUE(bitEqual(fresh1, r1));
    EXPECT_TRUE(bitEqual(fresh4, r4));
    EXPECT_TRUE(bitEqual(r1, r4));
}

TEST(PlanRoundTrip, FileRoundTripAndSections)
{
    Built b = makeMlp(1);
    auto prog = compileProg(b, Precision::F32, 1);
    std::string path = ::testing::TempDir() + "test_plan_mlp.peplan";
    prog->savePlan(path, "model=mlp;batch=1");

    std::string blob = readPlanFile(path);
    std::vector<PlanSectionInfo> sections = planSections(blob);
    EXPECT_EQ(sections.size(), 9u);
    for (const PlanSectionInfo &s : sections)
        EXPECT_TRUE(s.checksumOk) << s.tag;

    PlanData pd = deserializePlan(blob);
    EXPECT_EQ(pd.tag, "model=mlp;batch=1");

    auto loaded = loadPlan(path);
    Tensor x = seededInput(b.inShape);
    EXPECT_TRUE(bitEqual(prog->run({{"x", x}})[0],
                         loaded->run({{"x", x}})[0]));
}

// ---- 2. zero recompile on load ---------------------------------------

TEST(PlanLoad, ZeroPipelineInvocations)
{
    Built b = makeMlp(2);
    auto prog = compileProg(b, Precision::Int8, 1);
    std::string blob = serialize(*prog, *b.store);

    // Sanity: the counters do move during a compile (otherwise the
    // zero-delta assertion below would be vacuous).
    PipelineCounters c0 = pipelineCounters();
    Built b2 = makeMlp(2);
    auto prog2 = compileProg(b2, Precision::Int8, 1);
    PipelineCounters c1 = pipelineCounters();
    EXPECT_GT(c1.planMemory, c0.planMemory);
    EXPECT_GT(c1.planLaunches, c0.planLaunches);
    EXPECT_GT(c1.reorder, c0.reorder);
    EXPECT_GT(c1.quantizePass, c0.quantizePass);

    PipelineCounters before = pipelineCounters();
    auto loaded = loadPlanFromBytes(blob);
    Tensor x = seededInput(b.inShape);
    loaded->run({{"x", x}});
    PipelineCounters after = pipelineCounters();
    EXPECT_TRUE(before == after)
        << "loading or running a plan invoked a compile stage";
}

// ---- 3. determinism --------------------------------------------------

TEST(PlanDeterminism, SameModelSameBytes)
{
    for (bool cnn : {false, true}) {
        Precision p = cnn ? Precision::F32 : Precision::Int8;
        SCOPED_TRACE(cnn ? "mcunet/fp32" : "mlp/int8");
        Built a = cnn ? makeCnn(2) : makeMlp(2);
        auto progA = compileProg(a, p, 1);
        Built b = cnn ? makeCnn(2) : makeMlp(2);
        auto progB = compileProg(b, p, 1);
        std::string blobA = serialize(*progA, *a.store);
        std::string blobB = serialize(*progB, *b.store);
        EXPECT_EQ(blobA.size(), blobB.size());
        EXPECT_TRUE(blobA == blobB)
            << "two compiles of the same model produced different "
               "plan bytes";
    }
}

// ---- 4. robust load errors -------------------------------------------

class PlanErrorsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Built b = makeMlp(1, 16);
        prog_ = compileProg(b, Precision::F32, 1);
        store_ = b.store;
        blob_ = serialize(*prog_, *store_);
    }

    std::unique_ptr<InferenceProgram> prog_;
    std::shared_ptr<ParamStore> store_;
    std::string blob_;
};

TEST_F(PlanErrorsTest, BadMagic)
{
    std::string bad = blob_;
    bad[1] ^= 0xff;
    EXPECT_THROW(loadPlanFromBytes(bad), PlanBadMagicError);
}

TEST_F(PlanErrorsTest, VersionMismatch)
{
    std::string bad = blob_;
    uint32_t v = kPlanFormatVersion + 41;
    std::memcpy(&bad[8], &v, 4);
    EXPECT_THROW(loadPlanFromBytes(bad), PlanVersionError);
}

TEST_F(PlanErrorsTest, ChecksumFailure)
{
    std::string bad = blob_;
    bad[bad.size() - 5] ^= 0x10; // deep inside the last payload
    EXPECT_THROW(loadPlanFromBytes(bad), PlanChecksumError);
}

TEST_F(PlanErrorsTest, Truncated)
{
    for (size_t keep : {size_t(0), size_t(10), size_t(30),
                        blob_.size() / 2, blob_.size() - 7}) {
        SCOPED_TRACE(keep);
        EXPECT_THROW(loadPlanFromBytes(blob_.substr(0, keep)),
                     PlanTruncatedError);
    }
}

TEST_F(PlanErrorsTest, UnknownKernelName)
{
    // A plan binds kernels by registry NAME; tamper an op mnemonic
    // (resealing the section checksums so the corruption gets past
    // the integrity gate) and the loader must reject it with the
    // distinct unknown-kernel error, not bind garbage.
    Graph g;
    g.input({2, 8}, "x");
    int y = g.add(OpKind::Softmax, {0});
    g.markOutput(y);
    auto store = std::make_shared<ParamStore>();
    auto prog = compileInference(g, {y}, CompileOptions{}, store);
    std::string blob = serialize(prog, *store);

    size_t at = blob.find("Softmax");
    ASSERT_NE(at, std::string::npos);
    blob[at] = 'Z';
    EXPECT_THROW(loadPlanFromBytes(blob), PlanChecksumError)
        << "tampering without resealing must be caught as corruption";
    resealPlan(blob);
    EXPECT_THROW(loadPlanFromBytes(blob), PlanUnknownKernelError);
}

TEST_F(PlanErrorsTest, CraftedPlanHardening)
{
    // Checksums only catch ACCIDENTAL corruption — a crafted file
    // carries valid ones (resealPlan stands in for the attacker).
    // Each hostile payload below must be rejected with a typed
    // PlanError, never an out-of-bounds bind, infinite recursion,
    // silent zero-fill, or a 32 GB bad_alloc.
    auto sectionOffset = [&](const std::string &blob,
                             const std::string &tag) {
        for (const PlanSectionInfo &s : planSections(blob)) {
            if (s.tag == tag)
                return static_cast<size_t>(s.offset);
        }
        ADD_FAILURE() << "no section " << tag;
        return size_t(0);
    };

    { // negative workspace offset -> placement outside the arena
      // (int8: the quant kernels' packed panels guarantee the plan
      // actually carries workspaces at this model scale)
        Built cnn = makeCnn(1);
        auto prog = compileProg(cnn, Precision::Int8, 1);
        std::string blob = serialize(*prog, *cnn.store);
        size_t mpln = sectionOffset(blob, "MPLN");
        uint32_t num_values;
        std::memcpy(&num_values, &blob[mpln], 4);
        size_t ws_count_at = mpln + 4 + size_t(num_values) * 26;
        uint32_t num_ws;
        std::memcpy(&num_ws, &blob[ws_count_at], 4);
        ASSERT_GE(num_ws, 1u) << "fixture lost its workspaces";
        int64_t evil = -(int64_t(1) << 20);
        // ws entry: node/stepPos/shards (12) + bytesPerShard/
        // shardStride (16), then offset.
        std::memcpy(&blob[ws_count_at + 4 + 28], &evil, 8);
        resealPlan(blob);
        EXPECT_THROW(loadPlanFromBytes(blob), PlanFormatError);
    }

    { // Alias placement on an input-less node -> resolve() would
      // index inputs[0] of an empty vector
        std::string blob = blob_;
        size_t mpln = sectionOffset(blob, "MPLN");
        blob[mpln + 4] = 4; // value 0 (the Input node) -> Alias
        resealPlan(blob);
        EXPECT_THROW(loadPlanFromBytes(blob), PlanFormatError);
    }

    { // duplicate param name shadowing a missing one -> silent
      // zero-fill of the real weights
        std::string blob = blob_;
        size_t prms = sectionOffset(blob, "PRMS");
        size_t at = blob.find("fc2.weight", prms);
        ASSERT_NE(at, std::string::npos);
        blob.replace(at, 10, "fc1.weight");
        resealPlan(blob);
        EXPECT_THROW(loadPlanFromBytes(blob), PlanFormatError);
    }

    { // implausible element count -> typed error BEFORE allocation
        std::string blob = blob_;
        size_t lnch = sectionOffset(blob, "LNCH");
        uint32_t evil = 0xFFFFFFFFu;
        std::memcpy(&blob[lnch + 12], &evil, 4); // shardsPerStep count
        resealPlan(blob);
        EXPECT_THROW(loadPlanFromBytes(blob), PlanFormatError);
    }
}

TEST_F(PlanErrorsTest, CorruptByteFuzz)
{
    // Flip one byte at a time across the whole file: every flip must
    // be rejected with a typed PlanError — never UB (ASan-gated in
    // CI), never a silent success, never a stray exception type. The
    // header + section table get byte-dense coverage; payloads are
    // strided (every payload byte is under a section checksum, so
    // coverage there is representative, not positional).
    auto check = [&](size_t i) {
        std::string bad = blob_;
        bad[i] ^= 0x5A;
        try {
            loadPlanFromBytes(bad);
            ADD_FAILURE() << "byte " << i
                          << ": corrupt plan loaded successfully";
        } catch (const PlanError &) {
            // expected: typed rejection
        } catch (const std::exception &e) {
            ADD_FAILURE() << "byte " << i
                          << ": wrong exception type: " << e.what();
        }
    };
    size_t dense = std::min<size_t>(blob_.size(), 320);
    for (size_t i = 0; i < dense; ++i)
        check(i);
    for (size_t i = dense; i < blob_.size(); i += 5)
        check(i);
}

// ---- 5. serving from plan directories --------------------------------

ServedModel
servedMlp(int64_t batch, ParamStore *store)
{
    Graph g;
    Rng rng(7);
    NetBuilder nb(g, rng, store);
    int x = nb.input({batch, 16}, "x");
    int h = nb.relu(nb.linear(x, 32, "fc1"));
    h = nb.relu(nb.linear(h, 32, "fc2"));
    int logits = nb.linear(h, 4, "head");
    return ServedModel{std::move(g), {logits}};
}

ModelFactory
throwingFactory()
{
    return [](int64_t) -> ServedModel {
        throw std::logic_error(
            "model factory must not run when serving from plans");
    };
}

TEST(PlanServing, PlanDirParityAndZeroCompileStartup)
{
    auto store = std::make_shared<ParamStore>();
    servedMlp(1, store.get()); // materialize the frozen weights

    ServeOptions opts;
    opts.buckets = {1, 4};
    opts.workers = 2;
    ServingEngine compiled(
        [&](int64_t b) { return servedMlp(b, store.get()); }, store,
        opts);

    std::string dir = ::testing::TempDir() + "pe_plandir_fp32";
    compiled.savePlans(dir);

    std::vector<Tensor> inputs;
    for (int64_t rows = 1; rows <= 4; ++rows)
        inputs.push_back(seededInput({rows, 16}, 900 + rows));

    std::vector<Tensor> want;
    for (const Tensor &x : inputs)
        want.push_back(compiled.wait(compiled.submit({{"x", x}}))[0]);

    ServeOptions popts = opts;
    popts.planDir = dir;
    PipelineCounters before = pipelineCounters();
    ServingEngine served(throwingFactory(), nullptr, popts);
    EXPECT_TRUE(pipelineCounters() == before)
        << "plan-dir serving startup ran a compile stage";

    for (size_t i = 0; i < inputs.size(); ++i) {
        Tensor got =
            served.wait(served.submit({{"x", inputs[i]}}))[0];
        EXPECT_TRUE(bitEqual(want[i], got)) << "request " << i;
    }
}

TEST(PlanServing, Int8CalibrationWiringAndPlanDirParity)
{
    auto store = std::make_shared<ParamStore>();
    servedMlp(1, store.get());

    ServeOptions opts;
    opts.buckets = {1, 4};
    opts.workers = 1;
    opts.compile.precision = Precision::Int8;
    Rng rng(33);
    for (int i = 0; i < 2; ++i)
        opts.calibration.push_back(
            {{"x", Tensor::randn({4, 16}, rng)}});

    ServingEngine compiled(
        [&](int64_t b) { return servedMlp(b, store.get()); }, store,
        opts);
    EXPECT_EQ(compiled.bucketReport(4).precision, Precision::Int8);
    EXPECT_GT(compiled.bucketReport(4).quant.quantizedOps, 0)
        << "calibration wiring did not produce a quantized bucket";

    std::string dir = ::testing::TempDir() + "pe_plandir_int8";
    compiled.savePlans(dir);

    std::vector<Tensor> inputs;
    for (int64_t rows = 1; rows <= 4; ++rows)
        inputs.push_back(seededInput({rows, 16}, 700 + rows));
    std::vector<Tensor> want;
    for (const Tensor &x : inputs)
        want.push_back(compiled.wait(compiled.submit({{"x", x}}))[0]);

    ServeOptions popts = opts;
    popts.calibration.clear(); // not needed (and unused) for plans
    popts.planDir = dir;
    ServingEngine served(throwingFactory(), nullptr, popts);
    EXPECT_EQ(served.bucketReport(4).precision, Precision::Int8);
    for (size_t i = 0; i < inputs.size(); ++i) {
        Tensor got =
            served.wait(served.submit({{"x", inputs[i]}}))[0];
        EXPECT_TRUE(bitEqual(want[i], got)) << "request " << i;
    }
}

} // namespace
} // namespace pe
