/**
 * @file
 * Quantized-execution tests.
 *
 * Layers of guarantees, mirroring the subsystem's structure:
 *  1. Quant math: parameter choice, code round-trips, f16 casts.
 *  2. Kernels: the "int8" integer kernels match the dequant->fp32->
 *     requant reference tier within one output quantum; elementwise
 *     requant semantics are exact.
 *  3. Calibration: observers stamp sound ranges; moving-average
 *     differs from min/max under outliers.
 *  4. QuantizePass: forward region rewritten, backward stays fp32,
 *     Dequantize->Quantize chains fold, outputs dequantized.
 *  5. End-to-end McuNet: int8 forward top-1 agreement >= 99% vs
 *     fp32, sparse-BP fine-tuning on the quantized forward decreases
 *     loss, numThreads=4 is bit-identical to numThreads=1, and the
 *     deployed int8 footprint is <= 0.35x of fp32 (f16 in between).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "kernels/kernel.h"
#include "quant/quant.h"
#include "testutil.h"

namespace pe {
namespace {

using test::Feeds;

// ---- helpers ---------------------------------------------------------

/** Byte buffer usable as a KernelCtx float* while holding i8 codes. */
struct I8Buf {
    std::vector<float> storage;

    explicit I8Buf(int64_t n) : storage(static_cast<size_t>((n + 3) / 4 + 1), 0.0f) {}

    int8_t *data() { return reinterpret_cast<int8_t *>(storage.data()); }
    const float *asF32() const { return storage.data(); }
    float *asF32Mut() { return storage.data(); }
};

/** Quantize a float tensor into codes with the given params. */
void
quantizeInto(const Tensor &t, float scale, int32_t zp, I8Buf &out)
{
    for (int64_t i = 0; i < t.size(); ++i)
        out.data()[i] = quantizeValue(t[i], scale, zp);
}

/** Per-channel symmetric weight quantization along @p axis. */
std::vector<float>
quantizeWeight(const Tensor &w, int64_t axis, I8Buf &out)
{
    const Shape &s = w.shape();
    int64_t inner = 1;
    for (size_t i = axis + 1; i < s.size(); ++i)
        inner *= s[i];
    std::vector<float> maxabs(static_cast<size_t>(s[axis]), 0.0f);
    for (int64_t i = 0; i < w.size(); ++i) {
        int64_t c = (i / inner) % s[axis];
        maxabs[c] = std::max(maxabs[c], std::fabs(w[i]));
    }
    std::vector<float> scales(maxabs.size());
    for (size_t c = 0; c < scales.size(); ++c)
        scales[c] = chooseWeightScale(maxabs[c]);
    for (int64_t i = 0; i < w.size(); ++i) {
        int64_t c = (i / inner) % s[axis];
        out.data()[i] = quantizeValue(w[i], scales[c], 0);
    }
    return scales;
}

/** Max |a - b| over decoded i8 outputs, in CODES. */
int
maxCodeDiff(const I8Buf &a, const I8Buf &b, int64_t n)
{
    int worst = 0;
    const int8_t *pa = reinterpret_cast<const int8_t *>(a.asF32());
    const int8_t *pb = reinterpret_cast<const int8_t *>(b.asF32());
    for (int64_t i = 0; i < n; ++i)
        worst = std::max(worst, std::abs(static_cast<int>(pa[i]) -
                                         static_cast<int>(pb[i])));
    return worst;
}

// ---- 1. quant math ---------------------------------------------------

TEST(QuantMath, ChooseParamsCoversRangeAndZero)
{
    QuantParams p = chooseQuantParams(-1.5f, 3.0f);
    EXPECT_NEAR(p.scale, 4.5f / 255.0f, 1e-6f);
    // Zero must be exactly representable.
    float zero = dequantizeValue(
        quantizeValue(0.0f, p.scale, p.zeroPoint), p.scale, p.zeroPoint);
    EXPECT_EQ(zero, 0.0f);
    // All-positive ranges widen to include zero (ReLU outputs).
    QuantParams q = chooseQuantParams(0.5f, 2.0f);
    EXPECT_EQ(q.zeroPoint, -128);
}

TEST(QuantMath, RoundTripWithinHalfQuantum)
{
    QuantParams p = chooseQuantParams(-2.0f, 2.0f);
    Rng rng(3);
    Tensor t = Tensor::uniform({1000}, rng, -2.0f, 2.0f);
    for (int64_t i = 0; i < t.size(); ++i) {
        float r = dequantizeValue(quantizeValue(t[i], p.scale, p.zeroPoint),
                                  p.scale, p.zeroPoint);
        EXPECT_LE(std::fabs(r - t[i]), p.scale * 0.5f + 1e-7f);
    }
}

TEST(QuantMath, HalfRoundTrip)
{
    // Exactly-representable halves survive unchanged.
    for (float v : {0.0f, 1.0f, -2.5f, 0.09375f, 65504.0f})
        EXPECT_EQ(halfToFloat(floatToHalf(v)), v);
    // Arbitrary values round within half-precision epsilon.
    Rng rng(4);
    Tensor t = Tensor::uniform({1000}, rng, -100.0f, 100.0f);
    for (int64_t i = 0; i < t.size(); ++i) {
        float r = halfToFloat(floatToHalf(t[i]));
        EXPECT_LE(std::fabs(r - t[i]),
                  std::fabs(t[i]) * (1.0f / 1024.0f) + 1e-6f);
    }
    // Subnormal and overflow behavior.
    EXPECT_EQ(halfToFloat(floatToHalf(1e-8f)), 0.0f);
    EXPECT_TRUE(std::isinf(halfToFloat(floatToHalf(1e6f))));
}

// ---- 2. kernels ------------------------------------------------------

/** Build a QuantMatMul node and run a variant on given i8 operands. */
struct QMatmulFixture {
    Graph g;
    int node;
    int64_t m = 12, k = 24, n = 10;
    Tensor a, w, bias;
    I8Buf qa{m * k}, qw{k * n}, out{m * n};
    std::vector<float> wscales;
    QuantParams ap, yp;
    DirectWorkspace ws;

    QMatmulFixture(bool with_bias, int64_t act)
    {
        Rng rng(7);
        a = Tensor::uniform({m, k}, rng, -1.0f, 1.0f);
        w = Tensor::uniform({k, n}, rng, -0.8f, 0.8f);
        bias = Tensor::uniform({n}, rng, -0.5f, 0.5f);
        ap = chooseQuantParams(-1.0f, 1.0f);
        yp = chooseQuantParams(-6.0f, 6.0f);
        quantizeInto(a, ap.scale, ap.zeroPoint, qa);
        wscales = quantizeWeight(w, 1, qw);

        int ia = g.input({m, k}, "a");
        int iw = g.input({k, n}, "w");
        int ib = g.input({n}, "b");
        int is = g.input({n}, "s");
        Attrs at;
        at.set("xScale", static_cast<double>(ap.scale));
        at.set("xZp", static_cast<int64_t>(ap.zeroPoint));
        at.set("yScale", static_cast<double>(yp.scale));
        at.set("yZp", static_cast<int64_t>(yp.zeroPoint));
        at.set("perChannel", static_cast<int64_t>(1));
        at.set("hasBias", static_cast<int64_t>(with_bias ? 1 : 0));
        at.set("act", act);
        std::vector<int> inputs = {ia, iw};
        if (with_bias)
            inputs.push_back(ib);
        inputs.push_back(is);
        node = g.add(OpKind::QuantMatMul, inputs, std::move(at));
    }

    void
    run(const std::string &variant, I8Buf &dst)
    {
        const Node &nd = g.node(node);
        KernelCtx c;
        c.node = &nd;
        c.in = {qa.asF32(), qw.asF32()};
        c.inShapes = {&g.node(nd.inputs[0]).shape,
                      &g.node(nd.inputs[1]).shape};
        if (nd.attrs.getInt("hasBias", 0)) {
            c.in.push_back(bias.data());
            c.inShapes.push_back(&g.node(nd.inputs[2]).shape);
        }
        c.in.push_back(wscales.data());
        c.inShapes.push_back(
            &g.node(nd.inputs[nd.inputs.size() - 1]).shape);
        c.out = dst.asF32Mut();
        c.outShape = &nd.shape;
        ws.attach(c, g, nd, variant);
        lookupKernel(OpKind::QuantMatMul, variant)(c);
    }

    /** Float reference on the DEQUANTIZED operands. */
    float
    ref(int64_t i, int64_t j) const
    {
        float acc = 0;
        for (int64_t kk = 0; kk < k; ++kk) {
            acc += dequantizeValue(
                       reinterpret_cast<const int8_t *>(
                           qa.asF32())[i * k + kk],
                       ap.scale, ap.zeroPoint) *
                   dequantizeValue(
                       reinterpret_cast<const int8_t *>(
                           qw.asF32())[kk * n + j],
                       wscales[j], 0);
        }
        return acc;
    }
};

TEST(QuantKernels, Int8GemmMatchesDequantReference)
{
    for (bool with_bias : {false, true}) {
        QMatmulFixture f(with_bias, with_bias ? kActRelu : kActNone);
        I8Buf fast(f.m * f.n), slow(f.m * f.n);
        f.run("int8", fast);
        f.run("", slow); // reference tier: dequant -> fp32 -> requant
        // Same math, different rounding paths: within one code.
        EXPECT_LE(maxCodeDiff(fast, slow, f.m * f.n), 1);
        // And against an explicit float reference within one quantum.
        const int8_t *q = reinterpret_cast<const int8_t *>(fast.asF32());
        for (int64_t i = 0; i < f.m; ++i) {
            for (int64_t j = 0; j < f.n; ++j) {
                float r = f.ref(i, j);
                if (with_bias)
                    r += f.bias[j];
                if (f.g.node(f.node).attrs.getInt("act", 0) == kActRelu)
                    r = r > 0 ? r : 0;
                r = std::min(r, (127 - f.yp.zeroPoint) * f.yp.scale);
                r = std::max(r, (-128 - f.yp.zeroPoint) * f.yp.scale);
                float got = dequantizeValue(q[i * f.n + j], f.yp.scale,
                                            f.yp.zeroPoint);
                EXPECT_LE(std::fabs(got - r), f.yp.scale * 1.01f)
                    << "at (" << i << "," << j << ")";
            }
        }
    }
}

TEST(QuantKernels, Int8GemmShardsAreBitIdentical)
{
    QMatmulFixture f(true, kActRelu);
    I8Buf full(f.m * f.n), sharded(f.m * f.n);
    f.run("int8", full);
    // Replay the same kernel over explicit row shards.
    const Node &nd = f.g.node(f.node);
    KernelCtx c;
    c.node = &nd;
    c.in = {f.qa.asF32(), f.qw.asF32(), f.bias.data(), f.wscales.data()};
    c.inShapes = {&f.g.node(nd.inputs[0]).shape,
                  &f.g.node(nd.inputs[1]).shape,
                  &f.g.node(nd.inputs[2]).shape,
                  &f.g.node(nd.inputs[3]).shape};
    c.out = sharded.asF32Mut();
    c.outShape = &nd.shape;
    DirectWorkspace ws;
    for (int64_t b = 0; b < f.m; b += 5) {
        c.begin = b;
        c.end = std::min(b + 5, f.m);
        ws.attach(c, f.g, nd, "int8");
        lookupKernel(OpKind::QuantMatMul, "int8")(c);
    }
    EXPECT_EQ(maxCodeDiff(full, sharded, f.m * f.n), 0);
}

TEST(QuantKernels, Int8ConvMatchesDequantReference)
{
    Rng rng(11);
    int64_t N = 2, Ci = 3, H = 8, W = 8, Co = 4, K = 3;
    Tensor x = Tensor::uniform({N, Ci, H, W}, rng, -1.0f, 1.0f);
    Tensor w = Tensor::uniform({Co, Ci, K, K}, rng, -0.6f, 0.6f);
    Tensor bias = Tensor::uniform({Co, 1, 1}, rng, -0.3f, 0.3f);
    QuantParams xp = chooseQuantParams(-1.0f, 1.0f);
    QuantParams yp = chooseQuantParams(-4.0f, 4.0f);
    I8Buf qx(x.size()), qw(w.size());
    quantizeInto(x, xp.scale, xp.zeroPoint, qx);
    std::vector<float> wscales = quantizeWeight(w, 0, qw);

    Graph g;
    int ix = g.input({N, Ci, H, W}, "x");
    int iw = g.input({Co, Ci, K, K}, "w");
    int ib = g.input({Co, 1, 1}, "b");
    int is = g.input({Co}, "s");
    Attrs at;
    at.set("stride", static_cast<int64_t>(1));
    at.set("pad", static_cast<int64_t>(1));
    at.set("act", static_cast<int64_t>(kActRelu));
    at.set("hasBias", static_cast<int64_t>(1));
    at.set("perChannel", static_cast<int64_t>(1));
    at.set("xScale", static_cast<double>(xp.scale));
    at.set("xZp", static_cast<int64_t>(xp.zeroPoint));
    at.set("yScale", static_cast<double>(yp.scale));
    at.set("yZp", static_cast<int64_t>(yp.zeroPoint));
    int node = g.add(OpKind::QuantConv2d, {ix, iw, ib, is},
                     std::move(at));
    const Node &nd = g.node(node);

    auto run = [&](const std::string &variant, I8Buf &dst) {
        KernelCtx c;
        c.node = &nd;
        c.in = {qx.asF32(), qw.asF32(), bias.data(), wscales.data()};
        c.inShapes = {&g.node(ix).shape, &g.node(iw).shape,
                      &g.node(ib).shape, &g.node(is).shape};
        c.out = dst.asF32Mut();
        c.outShape = &nd.shape;
        DirectWorkspace ws;
        ws.attach(c, g, nd, variant);
        lookupKernel(OpKind::QuantConv2d, variant)(c);
    };
    int64_t out_n = numel(nd.shape);
    I8Buf fast(out_n), slow(out_n);
    run("int8", fast);
    run("", slow);
    EXPECT_LE(maxCodeDiff(fast, slow, out_n), 1);

    // Per-image shards replay bit-identically.
    I8Buf sharded(out_n);
    KernelCtx c;
    c.node = &nd;
    c.in = {qx.asF32(), qw.asF32(), bias.data(), wscales.data()};
    c.inShapes = {&g.node(ix).shape, &g.node(iw).shape,
                  &g.node(ib).shape, &g.node(is).shape};
    c.out = sharded.asF32Mut();
    c.outShape = &nd.shape;
    DirectWorkspace ws;
    for (int64_t img = 0; img < N; ++img) {
        c.begin = img;
        c.end = img + 1;
        ws.attach(c, g, nd, "int8");
        lookupKernel(OpKind::QuantConv2d, "int8")(c);
    }
    EXPECT_EQ(maxCodeDiff(fast, sharded, out_n), 0);
}

TEST(QuantKernels, AddAndReluRequantExactly)
{
    Graph g;
    int ia = g.input({32}, "a");
    int ib = g.input({32}, "b");
    QuantParams ap = chooseQuantParams(-1.0f, 1.0f);
    QuantParams bp = chooseQuantParams(-2.0f, 2.0f);
    QuantParams yp = chooseQuantParams(-3.0f, 3.0f);
    Attrs at;
    at.set("xScale", static_cast<double>(ap.scale));
    at.set("xZp", static_cast<int64_t>(ap.zeroPoint));
    at.set("bScale", static_cast<double>(bp.scale));
    at.set("bZp", static_cast<int64_t>(bp.zeroPoint));
    at.set("yScale", static_cast<double>(yp.scale));
    at.set("yZp", static_cast<int64_t>(yp.zeroPoint));
    int add = g.add(OpKind::QuantAdd, {ia, ib}, at);

    Rng rng(5);
    Tensor a = Tensor::uniform({32}, rng, -1.0f, 1.0f);
    Tensor b = Tensor::uniform({32}, rng, -2.0f, 2.0f);
    I8Buf qa(32), qb(32), out(32);
    quantizeInto(a, ap.scale, ap.zeroPoint, qa);
    quantizeInto(b, bp.scale, bp.zeroPoint, qb);

    KernelCtx c;
    const Node &nd = g.node(add);
    c.node = &nd;
    c.in = {qa.asF32(), qb.asF32()};
    c.inShapes = {&g.node(ia).shape, &g.node(ib).shape};
    c.out = out.asF32Mut();
    c.outShape = &nd.shape;
    lookupKernel(OpKind::QuantAdd, "int8")(c);
    const int8_t *q = reinterpret_cast<const int8_t *>(out.asF32());
    for (int64_t i = 0; i < 32; ++i) {
        float want = dequantizeValue(
            quantizeValue(
                dequantizeValue(
                    reinterpret_cast<const int8_t *>(qa.asF32())[i],
                    ap.scale, ap.zeroPoint) +
                    dequantizeValue(
                        reinterpret_cast<const int8_t *>(qb.asF32())[i],
                        bp.scale, bp.zeroPoint),
                yp.scale, yp.zeroPoint),
            yp.scale, yp.zeroPoint);
        float got =
            dequantizeValue(q[i], yp.scale, yp.zeroPoint);
        EXPECT_EQ(got, want);
    }

    // Relu: codes below the zero image clamp to it exactly.
    Attrs rt;
    rt.set("xScale", static_cast<double>(ap.scale));
    rt.set("xZp", static_cast<int64_t>(ap.zeroPoint));
    rt.set("yScale", static_cast<double>(ap.scale));
    rt.set("yZp", static_cast<int64_t>(ap.zeroPoint));
    int relu = g.add(OpKind::QuantRelu, {ia}, rt);
    const Node &rn = g.node(relu);
    I8Buf rout(32);
    KernelCtx rc;
    rc.node = &rn;
    rc.in = {qa.asF32()};
    rc.inShapes = {&g.node(ia).shape};
    rc.out = rout.asF32Mut();
    rc.outShape = &rn.shape;
    lookupKernel(OpKind::QuantRelu, "int8")(rc);
    const int8_t *r = reinterpret_cast<const int8_t *>(rout.asF32());
    for (int64_t i = 0; i < 32; ++i) {
        float v = dequantizeValue(
            reinterpret_cast<const int8_t *>(qa.asF32())[i], ap.scale,
            ap.zeroPoint);
        float want = v > 0 ? v : 0.0f;
        EXPECT_NEAR(dequantizeValue(r[i], ap.scale, ap.zeroPoint), want,
                    ap.scale * 0.51f);
    }
}

// ---- 3. calibration --------------------------------------------------

TEST(Calibration, StampsObservedRanges)
{
    Graph g;
    Rng rng(9);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int h = b.relu(b.linear(x, 16, "fc1"));
    int y = b.linear(h, 4, "fc2");
    g.markOutput(y);

    std::vector<Feeds> batches;
    Rng drng(10);
    for (int i = 0; i < 3; ++i)
        batches.push_back(
            {{"x", Tensor::uniform({4, 8}, drng, -1.0f, 1.0f)}});
    int stamped = calibrate(g, store, batches);
    EXPECT_EQ(stamped, g.numNodes());
    // The relu output's range must be non-negative and non-trivial.
    const Node &rn = g.node(h);
    EXPECT_TRUE(rn.attrs.has(kCalibMinAttr));
    EXPECT_GE(rn.attrs.getFloat(kCalibMinAttr, -1.0), 0.0);
    EXPECT_GT(rn.attrs.getFloat(kCalibMaxAttr, 0.0), 0.0);
    // Input range reflects the fed data.
    EXPECT_LE(g.node(x).attrs.getFloat(kCalibMinAttr, 0.0), -0.8);
    EXPECT_GE(g.node(x).attrs.getFloat(kCalibMaxAttr, 0.0), 0.8);
}

TEST(Calibration, MovingAverageDampensOutliers)
{
    Graph g;
    int x = g.input({4}, "x");
    g.markOutput(x);
    ParamStore store;
    std::vector<Feeds> batches;
    // One outlier batch among small ones.
    batches.push_back({{"x", Tensor::full({4}, 1.0f)}});
    batches.push_back({{"x", Tensor::full({4}, 100.0f)}});
    batches.push_back({{"x", Tensor::full({4}, 1.0f)}});
    CalibrationOptions mm;
    mm.observer = ObserverKind::MinMax;
    auto rmm = observeRanges(g, store, batches, mm);
    CalibrationOptions ma;
    ma.observer = ObserverKind::MovingAverage;
    ma.momentum = 0.7;
    auto rma = observeRanges(g, store, batches, ma);
    EXPECT_EQ(rmm[x].mx, 100.0f);
    EXPECT_LT(rma[x].mx, 50.0f); // outlier damped
    EXPECT_GT(rma[x].mx, 1.0f);  // but not ignored
}

// ---- 4. QuantizePass -------------------------------------------------

/** A small trained+calibrated McuNet shared by the e2e tests. */
struct McuNetFixture {
    std::shared_ptr<ParamStore> store = std::make_shared<ParamStore>();
    ModelSpec m;
    /** Low-noise 4-class task: margins must clear quantization noise
     *  for the top-1 agreement bound to be meaningful. */
    SyntheticVision task{123, 4, 3, 16, 0.12f};
    Rng rng{42};

    McuNetFixture()
    {
        VisionConfig cfg;
        cfg.batch = 8;
        cfg.resolution = 16;
        cfg.numClasses = 4;
        cfg.width = 0.5;
        cfg.blocks = 3;
        m = buildMcuNet(cfg, rng, store.get());

        // Train briefly in fp32 so logits separate, then calibrate.
        // (lr chosen for stability: full-BP SGD on this net diverges
        // above ~5e-3; the fixture asserts it stayed finite so no
        // downstream test can "pass" on NaN weights.)
        CompileOptions topt;
        topt.optim = OptimConfig::sgd(0.002);
        TrainingProgram prog = compileTraining(
            m.graph, m.loss, SparseUpdateScheme::full(), topt, store);
        float first = 0, last = 0;
        for (int i = 0; i < 120; ++i) {
            Batch b = task.sample(8, rng);
            last = prog.trainStep({{"x", b.x}, {"y", b.y}});
            if (i == 0)
                first = last;
        }
        EXPECT_TRUE(std::isfinite(last));
        EXPECT_LT(last, first);
        std::vector<Feeds> calib;
        for (int i = 0; i < 4; ++i)
            calib.push_back({{"x", task.sample(8, rng).x}});
        calibrate(m.graph, *store, calib);
    }
};

TEST(QuantizePass, RewritesForwardKeepsBackwardF32)
{
    McuNetFixture f;
    CompileOptions opt;
    opt.precision = Precision::Int8;
    CompiledGraph c =
        compileGraphOnly(f.m.graph, f.m.loss, cnnSparseScheme(f.m, 2, 1),
                         opt, f.store.get());
    EXPECT_GT(c.report.quant.quantizedOps, 0);
    EXPECT_GT(c.report.quant.dequantizeNodes, 0);
    EXPECT_EQ(c.report.precision, Precision::Int8);

    // Backward ops never consume i8 directly and are never quantized.
    for (const Node &n : c.graph.nodes()) {
        switch (n.op) {
          case OpKind::Conv2dBwdInput:
          case OpKind::Conv2dBwdWeight:
          case OpKind::DwConv2dBwdInput:
          case OpKind::DwConv2dBwdWeight:
          case OpKind::ReluGrad:
          case OpKind::CrossEntropyGrad:
            EXPECT_EQ(n.dtype, DType::F32);
            for (int in : n.inputs)
                EXPECT_NE(c.graph.node(in).dtype, DType::I8)
                    << "backward op reads raw i8";
            break;
          default:
            break;
        }
    }
    // The i8 activation footprint is real and planned.
    EXPECT_GT(c.report.arenaBytesByDtype[static_cast<int>(DType::I8)], 0);
    // Every quant compute op — including depthwise — now has a native
    // int8 kernel, so an MCUNet-style int8 compile must report zero
    // dequant->fp32->requant fallbacks.
    for (const std::string &s : c.report.fallbackKernels)
        EXPECT_EQ(s.find("QuantDwConv2d"), std::string::npos)
            << "native int8 depthwise regressed to fallback: " << s;
    EXPECT_EQ(c.report.kernelFallbacks, 0);
    EXPECT_TRUE(c.report.fallbackBreakdown().empty());
}

TEST(QuantizePass, FoldsDequantQuantChains)
{
    // Hand-build qx -> Dequantize -> MatMul(weight) with calibration
    // attrs; the pass must reuse/requantize the stored i8 value
    // instead of inserting Dequantize->Quantize.
    Graph g;
    Rng rng(13);
    ParamStore store;
    int x = g.input({4, 8}, "x");
    QuantParams xp = chooseQuantParams(-1.0f, 1.0f);
    Attrs qa;
    qa.set("dtype", std::string("i8"));
    qa.set("yScale", static_cast<double>(xp.scale));
    qa.set("yZp", static_cast<int64_t>(xp.zeroPoint));
    int q = g.add(OpKind::Quantize, {x}, std::move(qa));
    Attrs dqa;
    dqa.set("dtype", std::string("i8"));
    dqa.set("xScale", static_cast<double>(xp.scale));
    dqa.set("xZp", static_cast<int64_t>(xp.zeroPoint));
    int dq = g.add(OpKind::Dequantize, {q}, std::move(dqa));
    int w = g.param({8, 4}, "w");
    store.set("w", Tensor::randn({8, 4}, rng, 0.3f));
    int mm = g.add(OpKind::MatMul, {dq, w});
    g.markOutput(mm);
    // Stamp calibration so dq and mm are quantizable; dq's range maps
    // to exactly the params the stored value already has.
    g.node(dq).attrs.set(kCalibMinAttr, -128.0 * xp.scale -
                                            xp.zeroPoint * xp.scale);
    g.node(dq).attrs.set(kCalibMaxAttr,
                         (127.0 - xp.zeroPoint) * xp.scale);
    g.node(mm).attrs.set(kCalibMinAttr, -2.0);
    g.node(mm).attrs.set(kCalibMaxAttr, 2.0);

    QuantizeOptions qo;
    qo.store = &store;
    QuantizeStats stats;
    quantizePass(g, qo, &stats);
    EXPECT_EQ(stats.requantFolded, 1);
    // The rewritten matmul reads the ORIGINAL stored i8 value (the
    // params match, so not even a Requantize is needed) — the
    // Dequantize->Quantize chain never materializes.
    const Node &qmm = g.node(mm);
    ASSERT_EQ(qmm.op, OpKind::QuantMatMul);
    EXPECT_EQ(qmm.inputs[0], q);
    EXPECT_EQ(stats.quantizeNodes, 1); // only the weight quantize
}

// ---- 5. end-to-end ---------------------------------------------------

TEST(QuantEndToEnd, McuNetTop1AgreementAtLeast99Percent)
{
    McuNetFixture f;
    CompileOptions fopt;
    InferenceProgram fp32 =
        compileInference(f.m.graph, {f.m.logits}, fopt, f.store);
    CompileOptions qopt;
    qopt.precision = Precision::Int8;
    InferenceProgram int8 =
        compileInference(f.m.graph, {f.m.logits}, qopt, f.store);

    int agree = 0, total = 0;
    for (int batch = 0; batch < 16; ++batch) {
        Batch b = f.task.sample(8, f.rng);
        Tensor lf = fp32.run({{"x", b.x}})[0];
        Tensor lq = int8.run({{"x", b.x}})[0];
        int64_t classes = lf.dim(1);
        for (int64_t i = 0; i < lf.dim(0); ++i) {
            auto argmax = [&](const Tensor &t) {
                int64_t best = 0;
                for (int64_t c = 1; c < classes; ++c) {
                    if (t[i * classes + c] > t[i * classes + best])
                        best = c;
                }
                return best;
            };
            agree += argmax(lf) == argmax(lq) ? 1 : 0;
            ++total;
        }
    }
    EXPECT_GE(agree, static_cast<int>(std::ceil(0.99 * total)))
        << agree << "/" << total;
}

TEST(QuantEndToEnd, SparseBpFineTuningOnQuantizedForwardDecreasesLoss)
{
    McuNetFixture f;
    // Fine-tune on a SHIFTED downstream task, sparse scheme, int8
    // forward — the paper's deployment scenario.
    SyntheticVision downstream = SyntheticVision::task("cars", 3, 16);
    CompileOptions opt;
    opt.precision = Precision::Int8;
    opt.optim = OptimConfig::sgd(0.005);
    TrainingProgram prog =
        compileTraining(f.m.graph, f.m.loss, cnnSparseScheme(f.m, 2, 1),
                        opt, f.store);
    Rng drng(77);
    Batch b = downstream.sample(8, drng);
    std::vector<float> losses;
    for (int i = 0; i < 10; ++i)
        losses.push_back(prog.trainStep({{"x", b.x}, {"y", b.y}}));
    EXPECT_LT(losses.back(), losses.front())
        << "first " << losses.front() << " last " << losses.back();
}

TEST(QuantEndToEnd, FourThreadsBitIdenticalToOne)
{
    McuNetFixture f;
    CompileOptions o1;
    o1.precision = Precision::Int8;
    o1.numThreads = 1;
    CompileOptions o4 = o1;
    o4.numThreads = 4;
    InferenceProgram p1 =
        compileInference(f.m.graph, {f.m.logits}, o1, f.store);
    InferenceProgram p4 =
        compileInference(f.m.graph, {f.m.logits}, o4, f.store);
    EXPECT_GT(p4.executor().shardedSteps(), 0);
    for (int batch = 0; batch < 3; ++batch) {
        Batch b = f.task.sample(8, f.rng);
        Tensor l1 = p1.run({{"x", b.x}})[0];
        Tensor l4 = p4.run({{"x", b.x}})[0];
        EXPECT_EQ(maxAbsDiff(l1, l4), 0.0f); // bit-identical
    }
}

TEST(QuantEndToEnd, DeployedInt8FootprintAtMost35PercentOfF32)
{
    McuNetFixture f;
    CompileOptions fopt;
    InferenceProgram fp32 =
        compileInference(f.m.graph, {f.m.logits}, fopt, f.store);
    CompileOptions qopt;
    qopt.precision = Precision::Int8;
    InferenceProgram int8 =
        compileInference(f.m.graph, {f.m.logits}, qopt, f.store);

    const CompileReport &rf = fp32.report();
    const CompileReport &rq = int8.report();
    // Activation + weight footprint: planned arena VALUE bytes (by
    // dtype; kernel workspaces are scratch, reported separately as in
    // every Table-4 row since Arena v2) plus weights (params +
    // consts). The i8 compile pre-quantizes frozen weights into i8
    // consts, so its fp32 params drop to the untouched biases.
    int64_t f32_fp = rf.actWeightBytes();
    int64_t i8_fp = rq.actWeightBytes();
    EXPECT_GT(rq.quant.prequantizedWeights, 0);
    EXPECT_GT(rq.constBytesByDtype[static_cast<int>(DType::I8)], 0);
    // The fp32 masters really dropped out of the deployed program.
    EXPECT_LT(rq.paramBytes, rf.paramBytes / 4);
    EXPECT_LE(static_cast<double>(i8_fp),
              0.35 * static_cast<double>(f32_fp))
        << "int8 " << i8_fp << " fp32 " << f32_fp;
}

TEST(QuantEndToEnd, F16ModeIsCloseAndSmaller)
{
    McuNetFixture f;
    CompileOptions fopt;
    InferenceProgram fp32 =
        compileInference(f.m.graph, {f.m.logits}, fopt, f.store);
    CompileOptions hopt;
    hopt.precision = Precision::F16;
    InferenceProgram fp16 =
        compileInference(f.m.graph, {f.m.logits}, hopt, f.store);

    Batch b = f.task.sample(8, f.rng);
    Tensor lf = fp32.run({{"x", b.x}})[0];
    Tensor lh = fp16.run({{"x", b.x}})[0];
    EXPECT_LT(maxAbsDiff(lf, lh), 0.08f);
    const CompileReport &rh = fp16.report();
    EXPECT_GT(rh.arenaBytesByDtype[static_cast<int>(DType::F16)], 0);
}

} // namespace
} // namespace pe
