/**
 * @file
 * Numerical gradient checks for the compile-time autodiff: every
 * differentiable op in the catalogue is built into a tiny graph with
 * trainable params and checked against central finite differences.
 */

#include <gtest/gtest.h>

#include "engine/scheme.h"
#include "frontend/builder.h"
#include "testutil.h"

namespace pe {
namespace {

using test::Feeds;
using test::gradCheck;

constexpr float kTol = 3e-2f;

struct GradEnv {
    Graph g;
    Rng rng{123};
    ParamStore store;
    NetBuilder b{g, rng, &store};
    Feeds feeds;
};

/** Finish a scalar graph: loss = Mse(y, target-input). */
int
mseHead(GradEnv &e, int y)
{
    Shape s = e.g.node(y).shape; // by value: adding nodes reallocates
    int t = e.b.input(s, "target");
    e.feeds["target"] = Tensor::randn(s, e.rng);
    return e.b.mse(y, t);
}

int
dataInput(GradEnv &e, Shape shape)
{
    int x = e.b.input(shape, "xin");
    e.feeds["xin"] = Tensor::randn(std::move(shape), e.rng, 0.5f);
    return x;
}

// ---- unary activations (parameterized) --------------------------------

class UnaryGrad : public ::testing::TestWithParam<OpKind>
{
};

TEST_P(UnaryGrad, MatchesFiniteDifference)
{
    GradEnv e;
    int w = e.b.param({4, 5}, "w", 0.8f);
    int x = dataInput(e, {4, 5});
    int h = e.g.add(OpKind::Mul, {x, w});
    int y = e.g.add(GetParam(), {h});
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol)
        << opName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Activations, UnaryGrad,
    ::testing::Values(OpKind::Relu, OpKind::Gelu, OpKind::Silu,
                      OpKind::Sigmoid, OpKind::Tanh, OpKind::Exp,
                      OpKind::Neg, OpKind::Identity),
    [](const auto &info) { return opName(info.param); });

// ---- binary elementwise with broadcasting ------------------------------

class BinaryGrad : public ::testing::TestWithParam<OpKind>
{
};

TEST_P(BinaryGrad, SameShape)
{
    GradEnv e;
    int a = e.b.param({3, 4}, "a", 1.0f);
    int b = e.b.param({3, 4}, "b", 1.0f);
    // Keep divisors away from zero.
    Tensor &tb = e.store.get("b");
    for (int64_t i = 0; i < tb.size(); ++i)
        tb[i] = 2.0f + std::fabs(tb[i]);
    int y = e.g.add(GetParam(), {a, b});
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST_P(BinaryGrad, BroadcastVector)
{
    GradEnv e;
    int a = e.b.param({3, 4}, "a", 1.0f);
    int b = e.b.param({4}, "b", 1.0f);
    Tensor &tb = e.store.get("b");
    for (int64_t i = 0; i < tb.size(); ++i)
        tb[i] = 2.0f + std::fabs(tb[i]);
    int y = e.g.add(GetParam(), {a, b});
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Binary, BinaryGrad,
    ::testing::Values(OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div),
    [](const auto &info) { return opName(info.param); });

// ---- matmul in all four transpose configurations -------------------------

class MatMulGrad
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MatMulGrad, AllTransposeFlags)
{
    auto [ta, tb] = GetParam();
    GradEnv e;
    Shape sa = ta ? Shape{5, 3} : Shape{3, 5};
    Shape sb = tb ? Shape{4, 5} : Shape{5, 4};
    int a = e.b.param(sa, "a", 0.7f);
    int b = e.b.param(sb, "b", 0.7f);
    Attrs attrs;
    attrs.set("transA", static_cast<int64_t>(ta));
    attrs.set("transB", static_cast<int64_t>(tb));
    int y = e.g.add(OpKind::MatMul, {a, b}, std::move(attrs));
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

INSTANTIATE_TEST_SUITE_P(AllFlags, MatMulGrad,
                         ::testing::Values(std::pair{0, 0},
                                           std::pair{0, 1},
                                           std::pair{1, 0},
                                           std::pair{1, 1}));

TEST(BatchMatMulGrad, Basic)
{
    GradEnv e;
    int a = e.b.param({2, 3, 4}, "a", 0.7f);
    int b = e.b.param({2, 4, 5}, "b", 0.7f);
    int y = e.g.add(OpKind::BatchMatMul, {a, b});
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(BatchMatMulGrad, TransB)
{
    GradEnv e;
    int a = e.b.param({2, 3, 4}, "a", 0.7f);
    int b = e.b.param({2, 5, 4}, "b", 0.7f);
    Attrs attrs;
    attrs.set("transB", static_cast<int64_t>(1));
    int y = e.g.add(OpKind::BatchMatMul, {a, b}, std::move(attrs));
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

// ---- shape ops --------------------------------------------------------------

TEST(ShapeGrad, Reshape)
{
    GradEnv e;
    int a = e.b.param({2, 6}, "a", 1.0f);
    int y = e.b.reshape(a, {3, 4});
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(ShapeGrad, Permute)
{
    GradEnv e;
    int a = e.b.param({2, 3, 4, 5}, "a", 1.0f);
    int y = e.b.permute(a, {0, 2, 1, 3});
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(ShapeGrad, SliceAndPad)
{
    GradEnv e;
    int a = e.b.param({4, 6}, "a", 1.0f);
    int y = e.b.slice(a, 1, 2, 5);
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(ShapeGrad, BroadcastTo)
{
    GradEnv e;
    int a = e.b.param({1, 4}, "a", 1.0f);
    Attrs attrs;
    attrs.set("shape", Shape{3, 4});
    int y = e.g.add(OpKind::BroadcastTo, {a}, std::move(attrs));
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

// ---- reductions ------------------------------------------------------------

TEST(ReduceGrad, SumKeepdims)
{
    GradEnv e;
    int a = e.b.param({3, 4}, "a", 1.0f);
    Attrs attrs;
    attrs.set("axes", std::vector<int64_t>{0});
    attrs.set("keepdims", static_cast<int64_t>(1));
    int y = e.g.add(OpKind::ReduceSum, {a}, std::move(attrs));
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(ReduceGrad, MeanNoKeepdims)
{
    GradEnv e;
    int a = e.b.param({3, 4, 2}, "a", 1.0f);
    Attrs attrs;
    attrs.set("axes", std::vector<int64_t>{0, 2});
    attrs.set("keepdims", static_cast<int64_t>(0));
    int y = e.g.add(OpKind::ReduceMean, {a}, std::move(attrs));
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

// ---- convolutions ----------------------------------------------------------

struct ConvCase {
    int64_t kernel, stride, pad;
};

class ConvGrad : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvGrad, WeightBiasAndInputChain)
{
    auto [k, s, p] = GetParam();
    GradEnv e;
    int x = dataInput(e, {2, 3, 8, 8});
    // Trainable front conv ensures dX of the second conv is needed.
    // Tanh (smooth) instead of ReLU: FD checks are unreliable at
    // ReLU kinks; ReLU's own grad is covered by UnaryGrad.
    int h = e.b.conv2d(x, 4, 1, 1, 0, "front");
    h = e.g.add(OpKind::Tanh, {h});
    h = e.b.conv2d(h, 5, k, s, p, "conv");
    int loss = mseHead(e, h);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvGrad,
                         ::testing::Values(ConvCase{3, 1, 1},
                                           ConvCase{3, 2, 1},
                                           ConvCase{1, 1, 0},
                                           ConvCase{5, 2, 2}));

TEST(ConvGrad, Depthwise)
{
    GradEnv e;
    int x = dataInput(e, {2, 4, 8, 8});
    int h = e.b.conv2d(x, 4, 1, 1, 0, "front");
    h = e.b.dwConv2d(h, 3, 1, 1, "dw");
    int loss = mseHead(e, h);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(ConvGrad, DepthwiseStride2)
{
    GradEnv e;
    int x = dataInput(e, {1, 3, 9, 9});
    int h = e.b.conv2d(x, 3, 1, 1, 0, "front");
    h = e.b.dwConv2d(h, 3, 2, 1, "dw");
    int loss = mseHead(e, h);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

// ---- pooling -----------------------------------------------------------------

TEST(PoolGrad, AvgPool)
{
    GradEnv e;
    int x = dataInput(e, {2, 3, 8, 8});
    int h = e.b.conv2d(x, 3, 1, 1, 0, "front");
    h = e.b.avgPool(h, 2, 2);
    int loss = mseHead(e, h);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(PoolGrad, GlobalAvgPool)
{
    GradEnv e;
    int x = dataInput(e, {2, 3, 6, 6});
    int h = e.b.conv2d(x, 4, 3, 1, 1, "front");
    h = e.b.globalAvgPool(h);
    int loss = mseHead(e, h);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

// ---- softmax / norms ---------------------------------------------------------

TEST(NormGrad, Softmax)
{
    GradEnv e;
    int a = e.b.param({3, 5}, "a", 1.0f);
    int y = e.b.softmax(a);
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(NormGrad, LayerNorm)
{
    GradEnv e;
    int a = e.b.param({4, 6}, "a", 1.0f);
    int y = e.b.layerNorm(a, "ln");
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(NormGrad, RmsNorm)
{
    GradEnv e;
    int a = e.b.param({4, 6}, "a", 1.0f);
    int y = e.b.rmsNorm(a, "rn");
    int loss = mseHead(e, y);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

// ---- embedding / losses -----------------------------------------------------

TEST(EmbeddingGrad, ScatterAdd)
{
    GradEnv e;
    int ids = e.b.input({2, 3}, "ids");
    e.feeds["ids"] = Tensor::fromVector({2, 3}, {0, 1, 2, 2, 1, 0});
    int emb = e.b.embedding(ids, 4, 5, "tok");
    int loss = mseHead(e, emb);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(LossGrad, CrossEntropy)
{
    GradEnv e;
    int x = dataInput(e, {4, 3});
    int w = e.b.param({3, 6}, "w", 0.7f);
    int logits = e.g.add(OpKind::MatMul, {x, w});
    int labels = e.b.input({4}, "y");
    e.feeds["y"] = Tensor::fromVector({4}, {0, 3, 5, 1});
    int loss = e.b.crossEntropy(logits, labels);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

TEST(LossGrad, ScaledLossStillCorrect)
{
    // Gradient seeding must flow through post-loss scaling.
    GradEnv e;
    int x = dataInput(e, {4, 3});
    int w = e.b.param({3, 6}, "w", 0.7f);
    int logits = e.g.add(OpKind::MatMul, {x, w});
    int labels = e.b.input({4}, "y");
    e.feeds["y"] = Tensor::fromVector({4}, {0, 3, 5, 1});
    int ce = e.b.crossEntropy(logits, labels);
    int loss = e.b.scale(ce, 2.5);
    EXPECT_LT(gradCheck(e.g, loss, e.store, e.feeds), kTol);
}

// ---- pruning semantics -------------------------------------------------------

TEST(BackwardPruning, FrozenFirstLayerStopsChain)
{
    // With only the last layer trainable, no gradient op may consume
    // the first layer's weight: backprop must stop early (Fig. 5).
    Graph g;
    Rng rng(5);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({2, 8}, "x");
    int h = b.linear(x, 8, "l1");
    h = b.relu(h);
    h = b.linear(h, 8, "l2");
    h = b.relu(h);
    int logits = b.linear(h, 4, "l3");
    int labels = b.input({2}, "y");
    int loss = b.crossEntropy(logits, labels);

    for (int id : g.paramIds())
        g.node(id).trainable = g.node(id).name.rfind("l3", 0) == 0;

    int before = g.numNodes();
    BackwardResult bwd = buildBackward(g, loss);
    EXPECT_EQ(bwd.paramGrads.size(), 2u); // l3.weight, l3.bias

    // No emitted backward node may read l1/l2 weights.
    int w1 = g.findParam("l1.weight");
    int w2 = g.findParam("l2.weight");
    for (int id = before; id < g.numNodes(); ++id) {
        for (int in : g.node(id).inputs) {
            EXPECT_NE(in, w1);
            EXPECT_NE(in, w2);
        }
    }
}

TEST(BackwardPruning, BiasOnlyNeedsNoWeightGradOps)
{
    Graph g;
    Rng rng(5);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({2, 3, 8, 8}, "x");
    int h = b.conv2d(x, 4, 3, 1, 1, "c1");
    h = b.relu(h);
    h = b.conv2d(h, 4, 3, 1, 1, "c2");
    int pooled = b.globalAvgPool(h);
    int logits = b.linear(pooled, 3, "head");
    int labels = b.input({2}, "y");
    int loss = b.crossEntropy(logits, labels);

    for (int id : g.paramIds())
        g.node(id).trainable = isBiasParam(g.node(id).name);

    buildBackward(g, loss);
    int bwd_input_ops = 0;
    for (const Node &n : g.nodes()) {
        // Bias-only: no weight gradients anywhere...
        EXPECT_NE(n.op, OpKind::Conv2dBwdWeight);
        if (n.op == OpKind::Conv2dBwdInput)
            ++bwd_input_ops;
    }
    // ...but dX still flows through c2 to reach c1's bias. The chain
    // stops there: c1 itself gets no BwdInput (nothing trainable
    // below it).
    EXPECT_EQ(bwd_input_ops, 1);
}

TEST(BackwardPruning, NothingTrainableEmitsNothing)
{
    Graph g;
    Rng rng(5);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({2, 4}, "x");
    int h = b.linear(x, 4, "l1");
    int t = b.input({2, 4}, "t");
    int loss = b.mse(h, t);
    for (int id : g.paramIds())
        g.node(id).trainable = false;
    BackwardResult bwd = buildBackward(g, loss);
    EXPECT_TRUE(bwd.paramGrads.empty());
    EXPECT_EQ(bwd.nodesEmitted, 0);
}

TEST(BackwardPruning, ChannelSparseConvGradShape)
{
    Graph g;
    Rng rng(5);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({1, 3, 6, 6}, "x");
    int h = b.conv2d(x, 8, 3, 1, 1, "c1");
    int pooled = b.globalAvgPool(h);
    int logits = b.linear(pooled, 2, "head");
    int labels = b.input({1}, "y");
    int loss = b.crossEntropy(logits, labels);

    int w = g.findParam("c1.weight");
    g.node(w).attrs.set("updateChannels", static_cast<int64_t>(3));
    BackwardResult bwd = buildBackward(g, loss);
    ASSERT_TRUE(bwd.paramGrads.count(w));
    const Shape &gs = g.node(bwd.paramGrads.at(w)).shape;
    EXPECT_EQ(gs, (Shape{3, 3, 3, 3})); // only 3 of 8 output channels
}

} // namespace
} // namespace pe
