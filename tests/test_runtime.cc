/**
 * @file
 * Runtime tests: memory-planner invariants (no live-range overlap,
 * arena never exceeds sum of sizes), executor correctness, param
 * store behaviour.
 */

#include <gtest/gtest.h>

#include "frontend/builder.h"
#include "passes/passes.h"
#include "runtime/executor.h"
#include "runtime/planner.h"
#include "testutil.h"

namespace pe {
namespace {

Graph
chainGraph(int depth)
{
    Graph g;
    int x = g.input({64}, "x");
    int h = x;
    for (int i = 0; i < depth; ++i)
        h = g.add(OpKind::Relu, {h});
    g.markOutput(h);
    return g;
}

TEST(Planner, ChainReusesOneExtraBuffer)
{
    // A relu chain needs at most two live buffers at any time.
    Graph g = chainGraph(20);
    MemoryPlan plan = planMemory(g, naturalOrder(g));
    EXPECT_LE(plan.arenaBytes, 2 * 64 * 4 + 128 /*alignment slack*/);
}

TEST(Planner, NoOverlappingLiveRanges)
{
    // Property: any two arena values whose live ranges intersect must
    // occupy disjoint byte ranges.
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({8, 16}, "x");
    int h1 = b.relu(b.linear(x, 32, "a"));
    int h2 = b.gelu(b.linear(x, 32, "b"));
    int h = b.add(h1, h2);
    h = b.linear(h, 4, "c");
    g.markOutput(h);
    auto order = reorderForMemory(g);
    MemoryPlan plan = planMemory(g, order);

    for (int i = 0; i < g.numNodes(); ++i) {
        for (int j = i + 1; j < g.numNodes(); ++j) {
            const ValuePlacement &a = plan.values[i];
            const ValuePlacement &c = plan.values[j];
            if (a.storage != Storage::Arena ||
                c.storage != Storage::Arena) {
                continue;
            }
            bool lives_overlap = a.defPos <= c.lastUsePos &&
                                 c.defPos <= a.lastUsePos;
            bool bytes_overlap = a.offset < c.offset + c.bytes &&
                                 c.offset < a.offset + a.bytes;
            if (lives_overlap)
                EXPECT_FALSE(bytes_overlap)
                    << "values " << i << " and " << j;
        }
    }
}

TEST(Planner, ArenaNeverExceedsSumOfArenaValues)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int h = b.relu(b.linear(x, 16, "a"));
    h = b.relu(b.linear(h, 16, "b"));
    g.markOutput(h);
    MemoryPlan plan = planMemory(g, naturalOrder(g));
    int64_t total = 0;
    for (const auto &v : plan.values) {
        if (v.storage == Storage::Arena)
            total += (v.bytes + 63) / 64 * 64;
    }
    EXPECT_LE(plan.arenaBytes, total);
    EXPECT_GT(plan.arenaBytes, 0);
}

TEST(Planner, ParamsAndStateAreNotArena)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int h = b.linear(x, 4, "l");
    g.markOutput(h);
    MemoryPlan plan = planMemory(g, naturalOrder(g));
    EXPECT_EQ(plan.values[g.findParam("l.weight")].storage,
              Storage::Param);
    EXPECT_EQ(plan.values[x].storage, Storage::External);
    EXPECT_GT(plan.paramBytes, 0);
}

TEST(Executor, FetchesCorrectForwardValues)
{
    Graph g;
    int x = g.input({3}, "x");
    int two = g.constantOf(Tensor::full({3}, 2.0f));
    int prod = g.add(OpKind::Mul, {x, two});
    int out = g.add(OpKind::AddScalar, {prod},
                    Attrs{{"alpha", AttrValue(1.0)}});
    g.markOutput(out);
    ParamStore store;
    Executor ex(g, naturalOrder(g), store);
    ex.bindInput("x", Tensor::fromVector({3}, {1, 2, 3}));
    ex.run();
    Tensor result = ex.fetch(out);
    EXPECT_FLOAT_EQ(result[0], 3.0f);
    EXPECT_FLOAT_EQ(result[1], 5.0f);
    EXPECT_FLOAT_EQ(result[2], 7.0f);
}

TEST(Executor, BindInputValidatesShape)
{
    Graph g;
    g.input({2, 2}, "x");
    g.markOutput(0);
    ParamStore store;
    Executor ex(g, naturalOrder(g), store);
    EXPECT_THROW(ex.bindInput("x", Tensor::zeros({3})),
                 std::runtime_error);
    EXPECT_THROW(ex.bindInput("nope", Tensor::zeros({2, 2})),
                 std::runtime_error);
    ex.bindInput("x", Tensor::zeros({2, 2})); // ok
}

TEST(Executor, InPlaceApplyMutatesStoreTensor)
{
    Graph g;
    int w = g.param({4}, "w", true);
    int grad = g.input({4}, "g");
    Attrs a;
    a.set("lr", 0.5);
    int apply = g.add(OpKind::ApplySgd, {w, grad}, std::move(a));
    g.markOutput(apply);
    ParamStore store;
    store.set("w", Tensor::ones({4}));
    Executor ex(g, naturalOrder(g), store);
    ex.bindInput("g", Tensor::full({4}, 2.0f));
    ex.run();
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(store.get("w")[i], 0.0f); // 1 - 0.5*2
    ex.run();
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(store.get("w")[i], -1.0f);
}

TEST(Executor, RerunIsDeterministic)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int h = b.softmax(b.linear(x, 8, "l"));
    g.markOutput(h);
    Executor ex(g, naturalOrder(g), store);
    Tensor tx = Tensor::randn({4, 8}, rng);
    ex.bindInput("x", tx);
    ex.run();
    Tensor first = ex.fetch(h);
    ex.run();
    EXPECT_TRUE(allClose(first, ex.fetch(h)));
}

TEST(ParamStore, MaterializeCreatesMissingAndChecksShape)
{
    Graph g;
    g.param({3, 3}, "w", true);
    ParamStore store;
    EXPECT_FALSE(store.has("w"));
    int64_t bytes = store.materialize(g);
    EXPECT_TRUE(store.has("w"));
    EXPECT_EQ(bytes, 9 * 4);
    ParamStore bad;
    bad.set("w", Tensor::zeros({2, 2}));
    EXPECT_THROW(bad.materialize(g), std::runtime_error);
}

TEST(Planner, OutputsStayLiveToTheEnd)
{
    Graph g = chainGraph(5);
    int out = g.outputs()[0];
    MemoryPlan plan = planMemory(g, naturalOrder(g));
    EXPECT_EQ(plan.values[out].lastUsePos,
              static_cast<int>(g.numNodes()));
}

} // namespace
} // namespace pe
