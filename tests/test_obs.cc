/**
 * @file
 * Observability tests (ctest label: obs — the TSan job runs this
 * suite standalone, since traced serving is concurrent recording by
 * construction).
 *
 * Guarantee layers:
 *  1. TraceBuffer ring semantics: fixed capacity, overflow keeps the
 *     newest spans, dropped() makes the loss visible, snapshot()
 *     unrolls oldest-first.
 *  2. Executor tracing: step spans describe the compiled program
 *     (step order, ops, variants, run ids), shard spans nest inside
 *     their step's wall interval with contiguous ranges, and arming
 *     a trace never perturbs results (bit-parity with the untraced
 *     path).
 *  3. Profile aggregation: profileTrace folds runs x steps exactly,
 *     time shares sum to 1, and the JSON rendering is well-formed.
 *  4. Chrome export: the Trace Event JSON parses with an in-test
 *     JSON parser (no deps) and carries the expected tracks.
 *  5. Serving metrics: metricsJson()'s bucket hit counts and latency
 *     histograms account for every completed request, and polling is
 *     safe against live traffic.
 *  6. The acceptance bar: a 4-worker x 64-request traced coalescing
 *     stress exports a trace in which at least one run span is
 *     shared by >= 2 request lanes (the converging-lanes rendering).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "frontend/builder.h"
#include "obs/chrome.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "passes/passes.h"
#include "runtime/executor.h"
#include "serve/serving.h"

namespace pe {
namespace {

// ---- minimal in-test JSON parser -------------------------------------
// Just enough JSON to prove well-formedness and walk the documents the
// obs layer emits (objects, arrays, strings, numbers, bools, null).
// Deliberately dependency-free: the repo must not grow a JSON library
// for its tests.

struct Json {
    enum class T { Null, Bool, Num, Str, Arr, Obj };
    T t = T::Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;

    const Json *
    find(const std::string &key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &s) : s_(s) {}

    bool
    parse(Json &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos_ == s_.size(); // no trailing garbage
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u':
                    if (pos_ + 4 > s_.size())
                        return false;
                    // Escaped code point: validate the hex, keep a
                    // placeholder (the tests never match on one).
                    for (int i = 0; i < 4; ++i)
                        if (!std::isxdigit(
                                static_cast<unsigned char>(s_[pos_ + i])))
                            return false;
                    pos_ += 4;
                    out += '?';
                    break;
                default: return false;
                }
            } else {
                out += c;
            }
        }
        return false; // unterminated
    }

    bool
    number(double &out)
    {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        size_t digits = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == digits)
            return false;
        try {
            out = std::stod(s_.substr(start, pos_ - start));
        } catch (...) {
            return false;
        }
        return true;
    }

    bool
    value(Json &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            out.t = Json::T::Obj;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return false;
                Json v;
                if (!value(v))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.t = Json::T::Arr;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                Json v;
                if (!value(v))
                    return false;
                out.arr.push_back(std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            out.t = Json::T::Str;
            return string(out.str);
        }
        if (c == 't') {
            out.t = Json::T::Bool;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.t = Json::T::Bool;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.t = Json::T::Null;
            return literal("null");
        }
        out.t = Json::T::Num;
        return number(out.num);
    }

    const std::string &s_;
    size_t pos_ = 0;
};

bool
parseJson(const std::string &s, Json &out)
{
    return JsonParser(s).parse(out);
}

TEST(JsonParser, AcceptsTheGrammarItClaims)
{
    Json j;
    ASSERT_TRUE(parseJson(
        R"({"a":[1,-2.5,"x\n",true,null],"b":{"c":1e3}})", j));
    ASSERT_NE(j.find("a"), nullptr);
    EXPECT_EQ(j.find("a")->arr.size(), 5u);
    EXPECT_DOUBLE_EQ(j.find("b")->find("c")->num, 1000.0);
    EXPECT_FALSE(parseJson("{\"a\":}", j));
    EXPECT_FALSE(parseJson("[1,2", j));
    EXPECT_FALSE(parseJson("{} trailing", j));
}

// ---- fixtures --------------------------------------------------------

/** The served model family (same shape as test_serve's): parameter
 *  names are batch-independent so every bucket binds one store. */
ServedModel
mlpModel(int64_t batch, ParamStore *store)
{
    Graph g;
    Rng rng(7);
    NetBuilder b(g, rng, store);
    int x = b.input({batch, 8}, "x");
    int h = b.relu(b.linear(x, 32, "l1"));
    h = b.gelu(b.linear(h, 32, "l2"));
    int logits = b.linear(h, 4, "head");
    return ServedModel{std::move(g), {logits}};
}

TraceSpan
spanWithNode(int node)
{
    TraceSpan s;
    s.node = node;
    return s;
}

// ---- 1. TraceBuffer ring semantics -----------------------------------

TEST(TraceRing, OverflowKeepsNewestAndCountsDrops)
{
    TraceBuffer tb(4);
    EXPECT_EQ(tb.capacity(), 4u);
    for (int i = 0; i < 6; ++i)
        tb.record(spanWithNode(i));
    EXPECT_EQ(tb.size(), 4u);
    EXPECT_EQ(tb.recorded(), 6);
    EXPECT_EQ(tb.dropped(), 2);
    std::vector<TraceSpan> got = tb.snapshot();
    ASSERT_EQ(got.size(), 4u);
    // Oldest-first: 0 and 1 were overwritten, 2..5 survive in order.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(got[i].node, i + 2) << "slot " << i;
}

TEST(TraceRing, BelowCapacityIsLossless)
{
    TraceBuffer tb(8);
    for (int i = 0; i < 5; ++i)
        tb.record(spanWithNode(i));
    EXPECT_EQ(tb.size(), 5u);
    EXPECT_EQ(tb.dropped(), 0);
    std::vector<TraceSpan> got = tb.snapshot();
    ASSERT_EQ(got.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(got[i].node, i);
}

TEST(TraceRing, ZeroCapacityClampsToOneSlot)
{
    TraceBuffer tb(0);
    EXPECT_EQ(tb.capacity(), 1u);
    tb.record(spanWithNode(1));
    tb.record(spanWithNode(2));
    ASSERT_EQ(tb.snapshot().size(), 1u);
    EXPECT_EQ(tb.snapshot()[0].node, 2);
}

TEST(TraceRing, ClearForgetsSpansKeepsCapacity)
{
    TraceBuffer tb(4);
    for (int i = 0; i < 3; ++i)
        tb.record(spanWithNode(i));
    tb.clear();
    EXPECT_EQ(tb.size(), 0u);
    EXPECT_EQ(tb.recorded(), 0);
    EXPECT_EQ(tb.capacity(), 4u);
    tb.record(spanWithNode(9));
    ASSERT_EQ(tb.snapshot().size(), 1u);
    EXPECT_EQ(tb.snapshot()[0].node, 9);
}

// ---- 2. Executor tracing ---------------------------------------------

TEST(ExecTrace, StepSpansDescribeTheProgram)
{
    auto store = std::make_shared<ParamStore>();
    ServedModel m = mlpModel(4, store.get());
    CompileOptions opt;
    auto prog = compileInference(m.graph, m.outputs, opt, store);
    Executor &ex = prog.executor();

    EXPECT_EQ(ex.trace(), nullptr) << "tracing must be off by default";
    ex.armTrace(1 << 10);
    ASSERT_NE(ex.trace(), nullptr);

    Rng r(11);
    const int kRuns = 3;
    for (int i = 0; i < kRuns; ++i)
        prog.run({{"x", Tensor::randn({4, 8}, r)}});

    const TraceBuffer &tb = *ex.trace();
    EXPECT_EQ(tb.dropped(), 0);
    std::vector<TraceSpan> spans = tb.snapshot();
    int steps = 0;
    std::set<int64_t> runIds;
    int32_t prevIndex = -1;
    for (const TraceSpan &s : spans) {
        if (s.kind != SpanKind::Step)
            continue;
        ++steps;
        runIds.insert(s.runId);
        EXPECT_GE(s.stepIndex, 0);
        EXPECT_LT(s.stepIndex, ex.numSteps());
        EXPECT_GE(s.node, 0);
        EXPECT_GT(std::strlen(s.op), 0u) << "op mnemonic missing";
        EXPECT_GE(s.durNs, 0);
        EXPECT_GT(s.startNs, 0);
        EXPECT_EQ(s.shards, 1) << "serial program must not shard";
        // Within one run the ring is append-ordered, so step indices
        // restart at 0 exactly at run boundaries.
        if (s.stepIndex != 0)
            EXPECT_EQ(s.stepIndex, prevIndex + 1);
        prevIndex = s.stepIndex;
    }
    EXPECT_EQ(steps, kRuns * ex.numSteps());
    EXPECT_EQ(runIds.size(), static_cast<size_t>(kRuns))
        << "each run() must stamp a distinct runId";
}

TEST(ExecTrace, ShardSpansNestInsideTheirStep)
{
    Graph g;
    Rng rng(7);
    auto store = std::make_shared<ParamStore>();
    NetBuilder b(g, rng, store.get());
    int x = b.input({16, 8}, "x");
    int h = b.relu(b.linear(x, 32, "l1"));
    h = b.gelu(b.linear(h, 32, "l2"));
    int logits = b.linear(h, 4, "head");
    int y = b.input({16}, "y");
    int loss = b.crossEntropy(logits, y);

    CompileOptions opt;
    opt.numThreads = 4;
    opt.optim = OptimConfig::sgd(0.05);
    auto prog = compileTraining(g, loss, SparseUpdateScheme::full(),
                                opt, store);
    Executor &ex = prog.executor();
    ASSERT_GT(ex.shardedSteps(), 0)
        << "fixture must shard or the nesting assertions are vacuous";
    ex.armTrace(1 << 12, /*shardSpans=*/true);

    Rng r(13);
    Tensor xs = Tensor::randn({16, 8}, r);
    Tensor ys({16});
    for (int i = 0; i < 16; ++i)
        ys[i] = static_cast<float>(i % 4);
    prog.trainStep({{"x", xs}, {"y", ys}});

    ASSERT_EQ(ex.trace()->dropped(), 0);
    std::vector<TraceSpan> spans = ex.trace()->snapshot();

    // Index shard spans by (runId, stepIndex).
    std::map<std::pair<int64_t, int32_t>, std::vector<TraceSpan>>
        shards;
    for (const TraceSpan &s : spans)
        if (s.kind == SpanKind::Shard)
            shards[{s.runId, s.stepIndex}].push_back(s);
    ASSERT_FALSE(shards.empty());

    int shardedSeen = 0;
    for (const TraceSpan &st : spans) {
        if (st.kind != SpanKind::Step)
            continue;
        auto it = shards.find({st.runId, st.stepIndex});
        if (st.shards <= 1) {
            EXPECT_EQ(it, shards.end())
                << "serial step " << st.stepIndex
                << " must not record shard spans";
            continue;
        }
        ++shardedSeen;
        ASSERT_NE(it, shards.end()) << "step " << st.stepIndex;
        std::vector<TraceSpan> &sh = it->second;
        EXPECT_EQ(sh.size(), static_cast<size_t>(st.shards))
            << "one span per shard of step " << st.stepIndex;
        std::sort(sh.begin(), sh.end(),
                  [](const TraceSpan &a, const TraceSpan &b2) {
                      return a.shard < b2.shard;
                  });
        int64_t cursor = 0;
        for (size_t i = 0; i < sh.size(); ++i) {
            const TraceSpan &s = sh[i];
            EXPECT_EQ(s.shard, static_cast<int32_t>(i));
            EXPECT_EQ(s.node, st.node);
            EXPECT_STREQ(s.op, st.op);
            // Contiguous, non-empty ranges over the partition domain.
            EXPECT_EQ(s.begin, cursor)
                << "shard ranges must tile without gaps";
            EXPECT_GT(s.end, s.begin);
            cursor = s.end;
            // Temporal nesting: every shard ran inside the step's
            // wall interval (same steady clock, both ends bracket the
            // dispatch).
            EXPECT_GE(s.startNs, st.startNs);
            EXPECT_LE(s.startNs + s.durNs, st.startNs + st.durNs);
        }
    }
    EXPECT_EQ(shardedSeen, ex.shardedSteps());
}

TEST(ExecTrace, TracingIsBitExactAndDisarmable)
{
    auto store = std::make_shared<ParamStore>();
    ServedModel m = mlpModel(8, store.get());
    CompileOptions opt;
    auto prog = compileInference(m.graph, m.outputs, opt, store);
    Executor &ex = prog.executor();
    int xid = ex.inputId("x");
    ASSERT_GE(xid, 0);
    int out = prog.graph().outputs()[0];

    Rng r(17);
    Tensor x = Tensor::randn({8, 8}, r);

    // Untraced reference through a fresh session.
    auto plain = ex.makeContext();
    ASSERT_EQ(plain->trace(), nullptr);
    ex.bindInputById(*plain, xid, x);
    ex.run(*plain);
    Tensor ref = ex.fetch(*plain, out);

    // Traced session over the same program and feed.
    auto traced = ex.makeContext();
    ex.armTrace(*traced, 256);
    ASSERT_NE(traced->trace(), nullptr);
    ex.bindInputById(*traced, xid, x);
    ex.run(*traced);
    Tensor got = ex.fetch(*traced, out);
    ASSERT_EQ(got.shape(), ref.shape());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          sizeof(float) * got.size()),
              0)
        << "arming a trace must not perturb results";
    EXPECT_EQ(traced->trace()->recorded(), ex.numSteps());

    // Disarm drops the ring and returns to the untraced path.
    ex.disarmTrace(*traced);
    EXPECT_EQ(traced->trace(), nullptr);
    ex.run(*traced);
    Tensor again = ex.fetch(*traced, out);
    EXPECT_EQ(std::memcmp(again.data(), ref.data(),
                          sizeof(float) * again.size()),
              0);
}

TEST(ExecTrace, ExecOptionsArmEveryMintedContext)
{
    Graph g;
    Rng rng(7);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 8}, "x");
    int logits = b.linear(b.relu(b.linear(x, 16, "l1")), 4, "head");
    g.markOutput(logits);

    ExecOptions opt;
    opt.trace = true;
    opt.traceCapacity = 64;
    Executor ex(g, naturalOrder(g), store, opt);

    auto ctx = ex.makeContext();
    ASSERT_NE(ctx->trace(), nullptr)
        << "ExecOptions::trace must auto-arm minted contexts";
    EXPECT_EQ(ctx->trace()->capacity(), 64u);

    Rng r(5);
    ex.bindInputById(*ctx, ex.inputId("x"), Tensor::randn({4, 8}, r));
    ex.run(*ctx);
    EXPECT_EQ(ctx->trace()->recorded(), ex.numSteps());
}

// ---- 3. profile aggregation ------------------------------------------

TEST(Profile, ReportFoldsRunsTimesSteps)
{
    auto store = std::make_shared<ParamStore>();
    ServedModel m = mlpModel(4, store.get());
    CompileOptions opt;
    auto prog = compileInference(m.graph, m.outputs, opt, store);
    Executor &ex = prog.executor();
    ex.armTrace(1 << 12);

    Rng r(19);
    const int kRuns = 5;
    for (int i = 0; i < kRuns; ++i)
        prog.run({{"x", Tensor::randn({4, 8}, r)}});

    ProfileReport rep = profileTrace(ex, *ex.trace());
    EXPECT_EQ(rep.runs, kRuns);
    EXPECT_EQ(rep.stepSpans, kRuns * ex.numSteps());
    EXPECT_EQ(rep.droppedSpans, 0);
    ASSERT_EQ(rep.steps.size(), static_cast<size_t>(ex.numSteps()));
    EXPECT_EQ(rep.kernelFallbacks, ex.fallbackCount());

    int64_t summed = 0;
    double shareSum = 0;
    for (size_t i = 0; i < rep.steps.size(); ++i) {
        const ProfileStepRow &row = rep.steps[i];
        EXPECT_EQ(row.stepIndex, static_cast<int>(i))
            << "rows must come back in execution order";
        EXPECT_EQ(row.calls, kRuns);
        EXPECT_FALSE(row.op.empty());
        EXPECT_GE(row.totalNs, 0);
        EXPECT_GT(row.outBytes, 0)
            << "every step has an output placement";
        summed += row.totalNs;
        shareSum += row.timeShare;
    }
    EXPECT_EQ(summed, rep.totalNs)
        << "report total must be the sum of its rows";
    EXPECT_NEAR(shareSum, 1.0, 1e-9);

    ASSERT_FALSE(rep.ops.empty());
    double opShareSum = 0;
    for (size_t i = 0; i < rep.ops.size(); ++i) {
        opShareSum += rep.ops[i].timeShare;
        if (i)
            EXPECT_GE(rep.ops[i - 1].totalNs, rep.ops[i].totalNs)
                << "op rows must sort by time, descending";
    }
    EXPECT_NEAR(opShareSum, 1.0, 1e-9);

    EXPECT_FALSE(rep.table().empty());
    EXPECT_NE(rep.summary().find("profile:"), std::string::npos);
}

TEST(Profile, JsonIsWellFormed)
{
    auto store = std::make_shared<ParamStore>();
    ServedModel m = mlpModel(4, store.get());
    CompileOptions opt;
    auto prog = compileInference(m.graph, m.outputs, opt, store);
    prog.executor().armTrace();
    Rng r(23);
    prog.run({{"x", Tensor::randn({4, 8}, r)}});

    ProfileReport rep =
        profileTrace(prog.executor(), *prog.executor().trace());
    Json j;
    ASSERT_TRUE(parseJson(rep.json(), j)) << rep.json();
    ASSERT_NE(j.find("runs"), nullptr);
    EXPECT_DOUBLE_EQ(j.find("runs")->num, 1.0);
    const Json *steps = j.find("steps");
    ASSERT_NE(steps, nullptr);
    ASSERT_EQ(steps->t, Json::T::Arr);
    EXPECT_EQ(steps->arr.size(), rep.steps.size());
    for (const Json &row : steps->arr) {
        EXPECT_NE(row.find("op"), nullptr);
        EXPECT_NE(row.find("total_ns"), nullptr);
        EXPECT_NE(row.find("time_share"), nullptr);
    }
    ASSERT_NE(j.find("ops"), nullptr);
    EXPECT_EQ(j.find("ops")->arr.size(), rep.ops.size());
}

// ---- 4. Chrome-trace export ------------------------------------------

TEST(ChromeExport, ExecutorTraceIsWellFormedAndTracked)
{
    Graph g;
    Rng rng(7);
    auto store = std::make_shared<ParamStore>();
    NetBuilder b(g, rng, store.get());
    int x = b.input({16, 8}, "x");
    int h = b.relu(b.linear(x, 32, "l1"));
    int logits = b.linear(h, 4, "head");
    int y = b.input({16}, "y");
    int loss = b.crossEntropy(logits, y);
    CompileOptions opt;
    opt.numThreads = 4;
    opt.optim = OptimConfig::sgd(0.05);
    auto prog = compileTraining(g, loss, SparseUpdateScheme::full(),
                                opt, store);
    Executor &ex = prog.executor();
    ASSERT_GT(ex.shardedSteps(), 0);
    ex.armTrace();
    Rng r(29);
    Tensor xs = Tensor::randn({16, 8}, r);
    Tensor ys({16});
    for (int i = 0; i < 16; ++i)
        ys[i] = static_cast<float>(i % 4);
    prog.trainStep({{"x", xs}, {"y", ys}});

    std::string path = testing::TempDir() + "pe_obs_exec_trace.json";
    ASSERT_TRUE(exportChromeTrace(path, ex, *ex.trace()));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    Json j;
    ASSERT_TRUE(parseJson(text, j));
    const Json *events = j.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->t, Json::T::Arr);
    ASSERT_FALSE(events->arr.empty());

    int complete = 0, meta = 0, shardTracks = 0;
    for (const Json &e : events->arr) {
        const Json *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        if (ph->str == "X") {
            ++complete;
            ASSERT_NE(e.find("name"), nullptr);
            ASSERT_NE(e.find("ts"), nullptr);
            ASSERT_NE(e.find("dur"), nullptr);
            EXPECT_GE(e.find("ts")->num, 0.0)
                << "timestamps must be normalized near t=0";
            EXPECT_GT(e.find("dur")->num, 0.0)
                << "zero-duration spans must be widened";
            if (e.find("tid")->num >= 100)
                ++shardTracks; // per-worker shard tracks
        } else if (ph->str == "M") {
            ++meta;
        } else {
            ADD_FAILURE() << "unexpected event kind " << ph->str;
        }
    }
    EXPECT_GE(complete, ex.numSteps()) << "every step span must export";
    EXPECT_GT(shardTracks, 0) << "shard spans must land on worker tracks";
    EXPECT_GT(meta, 0) << "tracks must be named";
}

// ---- 5. serving metrics ----------------------------------------------

TEST(ServingObs, MetricsJsonAccountsForEveryRequest)
{
    auto store = std::make_shared<ParamStore>();
    auto factory = [&](int64_t bb) { return mlpModel(bb, store.get()); };
    ServeOptions so;
    so.buckets = {1, 4};
    so.workers = 2;
    ServingEngine engine(factory, store, so);

    Rng r(31);
    const int kRequests = 12;
    std::vector<ServingEngine::RequestId> ids;
    for (int i = 0; i < kRequests; ++i) {
        int64_t rows = 1 + (i % 4); // mixed routing across both buckets
        ids.push_back(
            engine.submit({{"x", Tensor::randn({rows, 8}, r)}}));
    }
    for (auto id : ids)
        engine.wait(id);

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, kRequests);

    Json j;
    std::string text = engine.metricsJson();
    ASSERT_TRUE(parseJson(text, j)) << text;
    EXPECT_DOUBLE_EQ(j.find("completed")->num, kRequests);
    EXPECT_DOUBLE_EQ(j.find("submitted")->num, kRequests);
    EXPECT_DOUBLE_EQ(j.find("failed")->num, 0.0);
    EXPECT_GE(j.find("queue_depth_max")->num, 0.0);

    const Json *buckets = j.find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->arr.size(), 2u);
    double hitsSum = 0, histSum = 0;
    for (const Json &bj : buckets->arr) {
        double hits = bj.find("hits")->num;
        hitsSum += hits;
        const Json *hist = bj.find("latency_hist_us");
        ASSERT_NE(hist, nullptr);
        EXPECT_EQ(hist->arr.size(),
                  static_cast<size_t>(ServingEngine::kLatencyHistBins));
        double bucketHist = 0;
        for (const Json &bin : hist->arr)
            bucketHist += bin.num;
        EXPECT_EQ(bucketHist, hits)
            << "per-bucket histogram must account for every hit";
        histSum += bucketHist;
        EXPECT_FALSE(bj.find("tier")->str.empty());
        if (hits > 0)
            EXPECT_GT(bj.find("run_ns")->num, 0.0);
    }
    EXPECT_EQ(hitsSum, kRequests)
        << "bucket hits must sum to completed";
    EXPECT_EQ(histSum, kRequests);

    // summary() renders the same snapshot: spot-check the counters.
    std::string sum = s.summary();
    EXPECT_NE(sum.find(std::to_string(kRequests) + " done"),
              std::string::npos)
        << sum;
    EXPECT_NE(sum.find("b1"), std::string::npos) << sum;
    EXPECT_NE(sum.find("b4"), std::string::npos) << sum;
}

TEST(ServingObs, MetricsPollingIsSafeAgainstLiveTraffic)
{
    auto store = std::make_shared<ParamStore>();
    auto factory = [&](int64_t bb) { return mlpModel(bb, store.get()); };
    ServeOptions so;
    so.buckets = {1, 4};
    so.workers = 4;
    ServingEngine engine(factory, store, so);

    std::atomic<bool> stop{false};
    std::thread poller([&] {
        // The metrics endpoint contract: concurrent polls against
        // live traffic are safe (TSan is the real assertion here).
        while (!stop.load()) {
            Json j;
            std::string text = engine.metricsJson();
            ASSERT_TRUE(parseJson(text, j)) << text;
            ASSERT_NE(j.find("completed"), nullptr);
        }
    });

    Rng r(37);
    std::vector<ServingEngine::RequestId> ids;
    for (int i = 0; i < 48; ++i)
        ids.push_back(engine.submit(
            {{"x", Tensor::randn({1 + (i % 4), 8}, r)}}));
    for (auto id : ids)
        engine.wait(id);
    stop = true;
    poller.join();

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, 48);
    int64_t hits = 0;
    for (const auto &bs : s.buckets)
        hits += bs.hits;
    EXPECT_EQ(hits, 48);
}

// ---- 6. traced coalescing stress (the acceptance bar) ----------------

TEST(ServingObs, TracedCoalescingStressExportsConvergingLanes)
{
    auto store = std::make_shared<ParamStore>();
    auto factory = [&](int64_t bb) { return mlpModel(bb, store.get()); };

    // Per-request reference engine (bit-parity oracle).
    ServeOptions ref;
    ref.buckets = {1, 4, 8};
    ref.workers = 1;
    ServingEngine solo(factory, store, ref);

    ServeOptions so = ref;
    so.workers = 4;
    so.coalesceWindowUs = 400000; // see test_serve's kTestWindowUs
    so.queueCapacity = 64;
    so.trace = true;
    so.traceCapacity = 4096;
    ServingEngine engine(factory, store, so);

    Rng r(41);
    const int kRequests = 64;
    std::vector<Tensor> xs;
    for (int i = 0; i < kRequests; ++i)
        xs.push_back(Tensor::randn({1, 8}, r));

    std::vector<Tensor> want;
    for (const Tensor &x : xs)
        want.push_back(solo.wait(solo.submit({{"x", x}}))[0]);

    std::vector<ServingEngine::RequestId> ids;
    for (const Tensor &x : xs)
        ids.push_back(engine.submit({{"x", x}}));
    for (size_t i = 0; i < ids.size(); ++i) {
        Tensor got = engine.wait(ids[i])[0];
        ASSERT_EQ(got.shape(), want[i].shape());
        EXPECT_EQ(std::memcmp(got.data(), want[i].data(),
                              sizeof(float) * got.size()),
                  0)
            << "traced coalesced request " << i
            << " must stay bit-identical";
    }

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, kRequests);
    ASSERT_GE(s.coalescedRuns, 1)
        << "the 400ms window must coalesce a 64-single burst";

    // Quiescent now (every id waited): export and parse the timeline.
    std::string path =
        testing::TempDir() + "pe_obs_serve_trace.json";
    ASSERT_TRUE(engine.exportChromeTrace(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    Json j;
    ASSERT_TRUE(parseJson(text, j));
    const Json *events = j.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // run#<id> spans on pid 2 are the request lanes; a coalesced
    // group shows as one run name across >= 2 distinct lane tids.
    std::map<std::string, std::set<int64_t>> runLanes;
    int requestLanes = 0, workerSteps = 0;
    for (const Json &e : events->arr) {
        const Json *ph = e.find("ph");
        if (ph == nullptr || ph->str != "X")
            continue;
        int pid = static_cast<int>(e.find("pid")->num);
        const std::string &name = e.find("name")->str;
        if (pid == 2) {
            ++requestLanes;
            if (name.rfind("run#", 0) == 0)
                runLanes[name].insert(
                    static_cast<int64_t>(e.find("tid")->num));
        } else if (pid == 1) {
            // Executor session step spans are the pid-1 events that
            // carry a "node" arg (bind/run/slice lifecycle spans do
            // not).
            const Json *args = e.find("args");
            if (args != nullptr && args->find("node") != nullptr)
                ++workerSteps;
        }
    }
    EXPECT_GT(requestLanes, 0);
    EXPECT_GT(workerSteps, 0)
        << "session step spans must nest on the worker tracks";

    size_t widestRun = 0;
    for (const auto &kv : runLanes)
        widestRun = std::max(widestRun, kv.second.size());
    EXPECT_GE(widestRun, 2u)
        << "at least one run span must be shared by >= 2 request "
           "lanes (the converging-lanes acceptance bar)";
    EXPECT_EQ(static_cast<int64_t>(runLanes.size()), s.runs)
        << "every bucket run must appear as exactly one run span name";
}

} // namespace
} // namespace pe
