/**
 * @file
 * SIMD kernel tier tests.
 *
 *  1. Tier API: variant naming, capability resolution, the unknown-
 *     variant passthrough the fallback counters depend on.
 *  2. Parity properties, swept over random shapes (non-multiple-of-
 *     vector-width tails, 1-element edges): int8 SIMD kernels are
 *     BIT-EXACT to the scalar "int8" tier; fp32 SIMD kernels match
 *     scalar within 1e-5 relative (FMA rounding contract).
 *  3. Compile integration: an MCUNet-style int8 compile reports zero
 *     QuantDwConv2d fallbacks and binds SIMD steps on a SIMD host;
 *     forceScalarTier pins everything to scalar.
 *  4. Deployment: a plan saved with SIMD variants loads on a host
 *     whose tier is forced to scalar (setSimdTierForTesting), binds
 *     the scalar bases, and reproduces the scalar compile bit for
 *     bit.
 *
 * All tier-dependent cases skip on hosts with no SIMD tier (the
 * PE_SIMD=OFF CI leg runs only the API and scalar-path cases, which
 * is itself the downgrade coverage).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "hw/cpu_features.h"
#include "kernels/kernel.h"
#include "plan/plan.h"
#include "quant/quant.h"
#include "testutil.h"

namespace pe {
namespace {

using test::Feeds;

/** "" on a scalar-only host, else this host's variant suffix. */
std::string
hostSuffix()
{
    detail::ensureKernelsRegistered();
    SimdTier t = hostSimdTier();
    if (t == SimdTier::Scalar)
        return "";
    return std::string("@") + simdTierName(t);
}

#define SKIP_WITHOUT_SIMD()                                             \
    do {                                                                \
        if (hostSuffix().empty())                                       \
            GTEST_SKIP() << "no SIMD tier on this host";                \
    } while (0)

/** Evaluate a single node with an explicit kernel variant. */
Tensor
runKernel(const Graph &g, int node, const std::vector<Tensor> &inputs,
          const std::string &variant)
{
    const Node &n = g.node(node);
    Tensor out(n.shape);
    KernelCtx ctx;
    ctx.node = &n;
    for (size_t i = 0; i < inputs.size(); ++i) {
        ctx.in.push_back(inputs[i].data());
        ctx.inShapes.push_back(&g.node(n.inputs[i]).shape);
    }
    ctx.out = out.data();
    ctx.outShape = &n.shape;
    DirectWorkspace ws;
    ws.attach(ctx, g, n, variant);
    lookupKernel(n.op, variant)(ctx);
    return out;
}

/** Byte buffer usable as a KernelCtx float* while holding i8 codes. */
struct I8Buf {
    std::vector<float> storage;
    explicit I8Buf(int64_t n)
        : storage(static_cast<size_t>((n + 3) / 4 + 1), 0.0f)
    {
    }
    int8_t *data() { return reinterpret_cast<int8_t *>(storage.data()); }
    const float *asF32() const { return storage.data(); }
    float *asF32Mut() { return storage.data(); }
};

void
quantizeInto(const Tensor &t, float scale, int32_t zp, I8Buf &out)
{
    for (int64_t i = 0; i < t.size(); ++i)
        out.data()[i] = quantizeValue(t[i], scale, zp);
}

std::vector<float>
quantizeWeight(const Tensor &w, int64_t axis, I8Buf &out)
{
    const Shape &s = w.shape();
    int64_t inner = 1;
    for (size_t i = axis + 1; i < s.size(); ++i)
        inner *= s[i];
    std::vector<float> maxabs(static_cast<size_t>(s[axis]), 0.0f);
    for (int64_t i = 0; i < w.size(); ++i) {
        int64_t c = (i / inner) % s[axis];
        maxabs[c] = std::max(maxabs[c], std::fabs(w[i]));
    }
    std::vector<float> scales(maxabs.size());
    for (size_t c = 0; c < scales.size(); ++c)
        scales[c] = chooseWeightScale(maxabs[c]);
    for (int64_t i = 0; i < w.size(); ++i) {
        int64_t c = (i / inner) % s[axis];
        out.data()[i] = quantizeValue(w[i], scales[c], 0);
    }
    return scales;
}

int
maxCodeDiff(const I8Buf &a, const I8Buf &b, int64_t n)
{
    int worst = 0;
    const int8_t *pa = reinterpret_cast<const int8_t *>(a.asF32());
    const int8_t *pb = reinterpret_cast<const int8_t *>(b.asF32());
    for (int64_t i = 0; i < n; ++i)
        worst = std::max(worst, std::abs(static_cast<int>(pa[i]) -
                                         static_cast<int>(pb[i])));
    return worst;
}

float
maxRelDiff(const Tensor &a, const Tensor &b)
{
    float worst = 0.0f;
    for (int64_t i = 0; i < a.size(); ++i) {
        float denom =
            std::max({std::fabs(a[i]), std::fabs(b[i]), 1.0f});
        worst = std::max(worst, std::fabs(a[i] - b[i]) / denom);
    }
    return worst;
}

/** Scoped hostSimdTier() override; always restores on scope exit. */
struct TierOverride {
    explicit TierOverride(SimdTier t)
    {
        setSimdTierForTesting(static_cast<int>(t));
    }
    ~TierOverride() { setSimdTierForTesting(-1); }
};

// ---- 1. tier API -----------------------------------------------------

TEST(TierApi, VariantNamingAndClassification)
{
    detail::ensureKernelsRegistered();
    EXPECT_STREQ(simdTierName(SimdTier::Scalar), "scalar");
    EXPECT_STREQ(simdTierName(SimdTier::Avx2), "avx2");
    EXPECT_STREQ(simdTierName(SimdTier::Neon), "neon");

    EXPECT_EQ(variantTier(""), SimdTier::Scalar);
    EXPECT_EQ(variantTier("blocked"), SimdTier::Scalar);
    EXPECT_EQ(variantTier("avx2"), SimdTier::Avx2);
    EXPECT_EQ(variantTier("blocked@avx2"), SimdTier::Avx2);
    EXPECT_EQ(variantTier("int8@neon"), SimdTier::Neon);
    // Unknown variants are NOT tiers: they classify scalar and pass
    // through resolution unchanged, so the fallback counters still
    // see them (test_parallel asserts on exactly that).
    EXPECT_EQ(variantTier("no-such-backend"), SimdTier::Scalar);

    EXPECT_EQ(scalarVariantOf("blocked@avx2"), "blocked");
    EXPECT_EQ(scalarVariantOf("int8@neon"), "int8");
    EXPECT_EQ(scalarVariantOf("avx2"), "");
    EXPECT_EQ(scalarVariantOf("blocked"), "blocked");
    EXPECT_EQ(scalarVariantOf(""), "");
}

TEST(TierApi, ResolutionUpgradesOnlyRegisteredVariants)
{
    detail::ensureKernelsRegistered();
    // Scalar tier always lands on the scalar base, whatever was asked.
    EXPECT_EQ(resolveTierVariant(OpKind::MatMul, "blocked@avx2",
                                 SimdTier::Scalar),
              "blocked");
    EXPECT_EQ(
        resolveTierVariant(OpKind::MatMul, "blocked", SimdTier::Scalar),
        "blocked");
    // Unknown variants resolve to themselves under the scalar tier's
    // base rule only when they look like tier names; a plain unknown
    // string survives untouched.
    EXPECT_EQ(resolveTierVariant(OpKind::MatMul, "no-such-backend",
                                 SimdTier::Scalar),
              "no-such-backend");

    SimdTier host = hostSimdTier();
    if (host == SimdTier::Scalar)
        return;
    std::string want = "blocked" + hostSuffix();
    ASSERT_TRUE(hasKernelVariant(OpKind::MatMul, want));
    EXPECT_EQ(resolveTierVariant(OpKind::MatMul, "blocked", host), want);
    // Ops with no tier kernel stay on their scalar variant — there is
    // no "winograd@avx2", and the bare default has no tier either.
    EXPECT_EQ(resolveTierVariant(OpKind::Conv2d, "winograd", host),
              "winograd");
    EXPECT_EQ(resolveTierVariant(OpKind::Relu, "", host), "");
}

TEST(TierApi, CapabilityGatedRegistration)
{
    detail::ensureKernelsRegistered();
    // A tier variant is registered ONLY when this host can execute
    // it, so hasKernelVariant doubles as the capability probe: at
    // most one of the avx2/neon families may exist, and it must match
    // the probed features.
    const CpuFeatures &f = cpuFeatures();
    bool has_avx2 = hasKernelVariant(OpKind::MatMul, "blocked@avx2");
    bool has_neon = hasKernelVariant(OpKind::MatMul, "blocked@neon");
    EXPECT_FALSE(has_avx2 && has_neon);
    // hostSimdTier() folds in the PE_SIMD=OFF build switch (PE_NO_SIMD
    // is a library-private define, invisible to this TU), so it is the
    // oracle: registration must track it exactly...
    SimdTier host = hostSimdTier();
    EXPECT_EQ(has_avx2, host == SimdTier::Avx2);
    EXPECT_EQ(has_neon, host == SimdTier::Neon);
    // ...and when a tier IS live, it must match the raw probe.
    if (host != SimdTier::Scalar) {
        EXPECT_EQ(has_avx2, f.avx2);
        EXPECT_EQ(has_neon, f.neon);
    }
    if (has_avx2 || has_neon) {
        std::string sfx = hostSuffix();
        for (OpKind op : {OpKind::QuantMatMul, OpKind::QuantConv2d,
                          OpKind::QuantDwConv2d})
            EXPECT_TRUE(hasKernelVariant(op, "int8" + sfx));
        EXPECT_TRUE(hasKernelVariant(OpKind::Conv2d, "im2col" + sfx));
        EXPECT_TRUE(
            hasKernelVariant(OpKind::BatchMatMul, "blocked" + sfx));
    }
}

// ---- 2. parity properties --------------------------------------------

TEST(SimdParity, Fp32GemmWithin1e5Relative)
{
    SKIP_WITHOUT_SIMD();
    std::string sfx = hostSuffix();
    Rng rng(101);
    // Shapes chosen to hit register-tile and vector-width tails: the
    // 8-row x 8-col microkernel, 1-element edges, and sizes straddling
    // the 48-wide panel.
    struct S {
        int64_t m, k, n;
    };
    std::vector<S> shapes = {{1, 1, 1},   {8, 8, 8},    {7, 13, 9},
                             {16, 48, 48}, {17, 49, 50}, {3, 100, 1},
                             {1, 5, 31},  {23, 7, 65}};
    for (auto [m, k, n] : shapes) {
        SCOPED_TRACE("gemm " + std::to_string(m) + "x" +
                     std::to_string(k) + "x" + std::to_string(n));
        for (bool ta : {false, true}) {
            for (bool tb : {false, true}) {
                Graph g;
                int ia = g.input(ta ? Shape{k, m} : Shape{m, k}, "a");
                int ib = g.input(tb ? Shape{n, k} : Shape{k, n}, "b");
                Attrs at;
                at.set("transA", static_cast<int64_t>(ta));
                at.set("transB", static_cast<int64_t>(tb));
                int mm = g.add(OpKind::MatMul, {ia, ib}, std::move(at));
                Tensor a = Tensor::randn(g.node(ia).shape, rng);
                Tensor b = Tensor::randn(g.node(ib).shape, rng);
                Tensor scalar = runKernel(g, mm, {a, b}, "blocked");
                Tensor simd = runKernel(g, mm, {a, b}, "blocked" + sfx);
                EXPECT_LT(maxRelDiff(scalar, simd), 1e-5f);
            }
        }
    }
}

TEST(SimdParity, Fp32Im2colConvWithin1e5Relative)
{
    SKIP_WITHOUT_SIMD();
    std::string sfx = hostSuffix();
    Rng rng(102);
    struct S {
        int64_t ci, co, hw, k, stride, pad;
    };
    std::vector<S> shapes = {{1, 1, 1, 1, 1, 0}, {3, 8, 9, 3, 1, 1},
                             {4, 5, 7, 3, 2, 1}, {2, 16, 13, 5, 1, 2},
                             {8, 3, 8, 1, 1, 0}};
    for (auto [ci, co, hw, k, stride, pad] : shapes) {
        SCOPED_TRACE("conv ci" + std::to_string(ci) + " co" +
                     std::to_string(co) + " hw" + std::to_string(hw));
        Graph g;
        int x = g.input({2, ci, hw, hw}, "x");
        int w = g.param({co, ci, k, k}, "w", false);
        Attrs a;
        a.set("stride", stride);
        a.set("pad", pad);
        int conv = g.add(OpKind::Conv2d, {x, w}, std::move(a));
        Tensor tx = Tensor::randn({2, ci, hw, hw}, rng);
        Tensor tw = Tensor::randn({co, ci, k, k}, rng, 0.3f);
        Tensor scalar = runKernel(g, conv, {tx, tw}, "im2col");
        Tensor simd = runKernel(g, conv, {tx, tw}, "im2col" + sfx);
        EXPECT_LT(maxRelDiff(scalar, simd), 1e-5f);
    }
}

/** Build + run one QuantMatMul with the given geometry twice (scalar
 *  int8 vs SIMD int8) and require bit-exact codes. */
void
checkQGemmBitExact(int64_t m, int64_t k, int64_t n, bool with_bias,
                   int64_t act, Rng &rng)
{
    std::string sfx = hostSuffix();
    Tensor a = Tensor::uniform({m, k}, rng, -1.0f, 1.0f);
    Tensor w = Tensor::uniform({k, n}, rng, -0.8f, 0.8f);
    Tensor bias = Tensor::uniform({n}, rng, -0.5f, 0.5f);
    QuantParams ap = chooseQuantParams(-1.0f, 1.0f);
    QuantParams yp = chooseQuantParams(-6.0f, 6.0f);
    I8Buf qa(m * k), qw(k * n);
    quantizeInto(a, ap.scale, ap.zeroPoint, qa);
    std::vector<float> wscales = quantizeWeight(w, 1, qw);

    Graph g;
    int ia = g.input({m, k}, "a");
    int iw = g.input({k, n}, "w");
    int ib = g.input({n}, "b");
    int is = g.input({n}, "s");
    Attrs at;
    at.set("xScale", static_cast<double>(ap.scale));
    at.set("xZp", static_cast<int64_t>(ap.zeroPoint));
    at.set("yScale", static_cast<double>(yp.scale));
    at.set("yZp", static_cast<int64_t>(yp.zeroPoint));
    at.set("perChannel", static_cast<int64_t>(1));
    at.set("hasBias", static_cast<int64_t>(with_bias ? 1 : 0));
    at.set("act", act);
    std::vector<int> inputs = {ia, iw};
    if (with_bias)
        inputs.push_back(ib);
    inputs.push_back(is);
    int node = g.add(OpKind::QuantMatMul, inputs, std::move(at));

    const Node &nd = g.node(node);
    auto run = [&](const std::string &variant, I8Buf &dst) {
        KernelCtx c;
        c.node = &nd;
        c.in = {qa.asF32(), qw.asF32()};
        c.inShapes = {&g.node(nd.inputs[0]).shape,
                      &g.node(nd.inputs[1]).shape};
        if (with_bias) {
            c.in.push_back(bias.data());
            c.inShapes.push_back(&g.node(nd.inputs[2]).shape);
        }
        c.in.push_back(wscales.data());
        c.inShapes.push_back(
            &g.node(nd.inputs[nd.inputs.size() - 1]).shape);
        c.out = dst.asF32Mut();
        c.outShape = &nd.shape;
        DirectWorkspace ws;
        ws.attach(c, g, nd, variant);
        lookupKernel(OpKind::QuantMatMul, variant)(c);
    };
    I8Buf scalar(m * n), simd(m * n);
    run("int8", scalar);
    run("int8" + sfx, simd);
    EXPECT_EQ(maxCodeDiff(scalar, simd, m * n), 0)
        << m << "x" << k << "x" << n << " bias=" << with_bias
        << " act=" << act;
}

TEST(SimdParity, Int8GemmBitExact)
{
    SKIP_WITHOUT_SIMD();
    Rng rng(103);
    struct S {
        int64_t m, k, n;
    };
    // Tails everywhere: k not a multiple of 16/8 (dot-product tail),
    // n not a multiple of 8/4 (requant tail), single elements.
    std::vector<S> shapes = {{1, 1, 1},  {4, 16, 8},  {5, 17, 9},
                             {12, 24, 10}, {3, 7, 1},  {1, 33, 13},
                             {9, 64, 40}};
    for (auto [m, k, n] : shapes) {
        for (bool with_bias : {false, true}) {
            for (int64_t act : {kActNone, kActRelu, kActGelu})
                checkQGemmBitExact(m, k, n, with_bias, act, rng);
        }
    }
}

TEST(SimdParity, Int8ConvAndDepthwiseBitExact)
{
    SKIP_WITHOUT_SIMD();
    std::string sfx = hostSuffix();
    Rng rng(104);
    struct S {
        int64_t ch, hw, k, stride, pad;
    };
    std::vector<S> shapes = {{1, 1, 1, 1, 0}, {3, 8, 3, 1, 1},
                             {4, 9, 3, 2, 1}, {8, 12, 5, 1, 2},
                             {5, 7, 3, 1, 0}, {2, 16, 3, 1, 1}};
    for (auto [ch, hw, k, stride, pad] : shapes) {
        SCOPED_TRACE("q ch" + std::to_string(ch) + " hw" +
                     std::to_string(hw) + " k" + std::to_string(k) +
                     " s" + std::to_string(stride) + " p" +
                     std::to_string(pad));
        for (OpKind op :
             {OpKind::QuantConv2d, OpKind::QuantDwConv2d}) {
            bool dw = op == OpKind::QuantDwConv2d;
            int64_t N = 2, Co = dw ? ch : ch + 1;
            Tensor x =
                Tensor::uniform({N, ch, hw, hw}, rng, -1.0f, 1.0f);
            Shape wshape = dw ? Shape{ch, 1, k, k}
                              : Shape{Co, ch, k, k};
            Tensor w = Tensor::uniform(wshape, rng, -0.6f, 0.6f);
            Tensor bias =
                Tensor::uniform({Co, 1, 1}, rng, -0.3f, 0.3f);
            QuantParams xp = chooseQuantParams(-1.0f, 1.0f);
            QuantParams yp = chooseQuantParams(-4.0f, 4.0f);
            I8Buf qx(x.size()), qw(w.size());
            quantizeInto(x, xp.scale, xp.zeroPoint, qx);
            std::vector<float> wscales = quantizeWeight(w, 0, qw);

            Graph g;
            int ix = g.input({N, ch, hw, hw}, "x");
            int iw = g.input(wshape, "w");
            int ib = g.input({Co, 1, 1}, "b");
            int is = g.input({Co}, "s");
            Attrs at;
            at.set("stride", stride);
            at.set("pad", pad);
            at.set("act", static_cast<int64_t>(kActRelu));
            at.set("hasBias", static_cast<int64_t>(1));
            at.set("perChannel", static_cast<int64_t>(1));
            at.set("xScale", static_cast<double>(xp.scale));
            at.set("xZp", static_cast<int64_t>(xp.zeroPoint));
            at.set("yScale", static_cast<double>(yp.scale));
            at.set("yZp", static_cast<int64_t>(yp.zeroPoint));
            int node = g.add(op, {ix, iw, ib, is}, std::move(at));
            const Node &nd = g.node(node);
            int64_t out_n = numel(nd.shape);

            auto run = [&](const std::string &variant, I8Buf &dst) {
                KernelCtx c;
                c.node = &nd;
                c.in = {qx.asF32(), qw.asF32(), bias.data(),
                        wscales.data()};
                c.inShapes = {&g.node(ix).shape, &g.node(iw).shape,
                              &g.node(ib).shape, &g.node(is).shape};
                c.out = dst.asF32Mut();
                c.outShape = &nd.shape;
                DirectWorkspace ws;
                ws.attach(c, g, nd, variant);
                lookupKernel(op, variant)(c);
            };
            I8Buf scalar(out_n), simd(out_n);
            run("int8", scalar);
            run("int8" + sfx, simd);
            EXPECT_EQ(maxCodeDiff(scalar, simd, out_n), 0)
                << (dw ? "depthwise" : "conv");
        }
    }
}

TEST(SimdParity, Int8DepthwiseMatchesReferenceWithinOneCode)
{
    // The native int8 depthwise kernel vs the dequant->fp32->requant
    // reference it replaced: same math, different rounding path.
    Rng rng(105);
    int64_t N = 2, Ch = 6, HW = 10, K = 3;
    Tensor x = Tensor::uniform({N, Ch, HW, HW}, rng, -1.0f, 1.0f);
    Tensor w = Tensor::uniform({Ch, 1, K, K}, rng, -0.6f, 0.6f);
    Tensor bias = Tensor::uniform({Ch, 1, 1}, rng, -0.3f, 0.3f);
    QuantParams xp = chooseQuantParams(-1.0f, 1.0f);
    QuantParams yp = chooseQuantParams(-3.0f, 3.0f);
    I8Buf qx(x.size()), qw(w.size());
    quantizeInto(x, xp.scale, xp.zeroPoint, qx);
    std::vector<float> wscales = quantizeWeight(w, 0, qw);

    Graph g;
    int ix = g.input({N, Ch, HW, HW}, "x");
    int iw = g.input({Ch, 1, K, K}, "w");
    int ib = g.input({Ch, 1, 1}, "b");
    int is = g.input({Ch}, "s");
    Attrs at;
    at.set("stride", static_cast<int64_t>(1));
    at.set("pad", static_cast<int64_t>(1));
    at.set("act", static_cast<int64_t>(kActRelu));
    at.set("hasBias", static_cast<int64_t>(1));
    at.set("perChannel", static_cast<int64_t>(1));
    at.set("xScale", static_cast<double>(xp.scale));
    at.set("xZp", static_cast<int64_t>(xp.zeroPoint));
    at.set("yScale", static_cast<double>(yp.scale));
    at.set("yZp", static_cast<int64_t>(yp.zeroPoint));
    int node =
        g.add(OpKind::QuantDwConv2d, {ix, iw, ib, is}, std::move(at));
    const Node &nd = g.node(node);
    int64_t out_n = numel(nd.shape);

    auto run = [&](const std::string &variant, I8Buf &dst) {
        KernelCtx c;
        c.node = &nd;
        c.in = {qx.asF32(), qw.asF32(), bias.data(), wscales.data()};
        c.inShapes = {&g.node(ix).shape, &g.node(iw).shape,
                      &g.node(ib).shape, &g.node(is).shape};
        c.out = dst.asF32Mut();
        c.outShape = &nd.shape;
        DirectWorkspace ws;
        ws.attach(c, g, nd, variant);
        lookupKernel(OpKind::QuantDwConv2d, variant)(c);
    };
    I8Buf native(out_n), reference(out_n);
    run("int8", native);
    run("", reference);
    EXPECT_LE(maxCodeDiff(native, reference, out_n), 1);
}

// ---- 3. compile integration ------------------------------------------

struct CompiledMcuNet {
    std::shared_ptr<ParamStore> store = std::make_shared<ParamStore>();
    ModelSpec m;
    Shape inShape{2, 3, 12, 12};

    CompiledMcuNet()
    {
        VisionConfig cfg;
        cfg.batch = 2;
        cfg.resolution = 12;
        cfg.width = 0.5;
        cfg.blocks = 2;
        Rng rng(31);
        m = buildMcuNet(cfg, rng, store.get());
        std::vector<Feeds> calib;
        Rng crng(32);
        for (int i = 0; i < 2; ++i)
            calib.push_back({{"x", Tensor::randn(inShape, crng)}});
        calibrate(m.graph, *store, calib);
    }
};

TEST(TierCompile, McuNetInt8BindsSimdStepsAndReportsTiers)
{
    CompiledMcuNet f;
    CompileOptions opt;
    opt.precision = Precision::Int8;
    InferenceProgram prog =
        compileInference(f.m.graph, {f.m.logits}, opt, f.store);
    const CompileReport &r = prog.report();
    // The tentpole acceptance: zero quantized-depthwise fallbacks.
    EXPECT_EQ(r.kernelFallbacks, 0);
    EXPECT_TRUE(r.fallbackBreakdown().empty());
    EXPECT_EQ(static_cast<int>(r.stepTiers.size()), r.kernelSteps);
    EXPECT_EQ(r.simdTier, simdTierName(hostSimdTier()));
    if (hostSimdTier() != SimdTier::Scalar) {
        // On a SIMD host the int8 conv/depthwise/matmul steps all
        // bind the tier.
        EXPECT_GT(r.simdSteps, 0);
        EXPECT_NE(r.tierBreakdown().find(r.simdTier),
                  std::string::npos);
    } else {
        EXPECT_EQ(r.simdSteps, 0);
    }
}

TEST(TierCompile, ForceScalarTierPinsEverything)
{
    CompiledMcuNet f;
    CompileOptions opt;
    opt.precision = Precision::Int8;
    opt.forceScalarTier = true;
    InferenceProgram prog =
        compileInference(f.m.graph, {f.m.logits}, opt, f.store);
    EXPECT_EQ(prog.report().simdTier, "scalar");
    EXPECT_EQ(prog.report().simdSteps, 0);
    for (const std::string &t : prog.report().stepTiers)
        EXPECT_EQ(t, "scalar");
}

TEST(TierCompile, Int8ForwardAgreesAcrossTiers)
{
    // int8 compute is bit-exact across tiers; the only cross-tier
    // rounding differences come from the fp32 steps around it
    // (quantize/dequantize boundaries are scalar in both programs),
    // so logits agree tightly.
    CompiledMcuNet f;
    CompileOptions opt;
    opt.precision = Precision::Int8;
    InferenceProgram simd =
        compileInference(f.m.graph, {f.m.logits}, opt, f.store);
    CompileOptions sopt = opt;
    sopt.forceScalarTier = true;
    InferenceProgram scalar =
        compileInference(f.m.graph, {f.m.logits}, sopt, f.store);
    Tensor x;
    {
        Rng rng(33);
        x = Tensor::randn(f.inShape, rng);
    }
    Tensor a = simd.run({{"x", x}})[0];
    Tensor b = scalar.run({{"x", x}})[0];
    EXPECT_LT(maxRelDiff(a, b), 1e-4f);
}

// ---- 4. deployment ---------------------------------------------------

TEST(TierDeploy, PlanWithSimdVariantsDowngradesOnScalarHost)
{
    SKIP_WITHOUT_SIMD();
    CompiledMcuNet f;
    CompileOptions opt;
    opt.precision = Precision::Int8;
    InferenceProgram prog =
        compileInference(f.m.graph, {f.m.logits}, opt, f.store);
    ASSERT_GT(prog.report().simdSteps, 0);
    std::string blob =
        serializePlan(prog.graph(), prog.executor().exportArtifact(),
                      prog.report(), *f.store);

    Tensor x;
    {
        Rng rng(34);
        x = Tensor::randn(f.inShape, rng);
    }

    // Load the SIMD-variant plan as a scalar-only host would see it.
    Tensor downgraded;
    {
        TierOverride scalar_host(SimdTier::Scalar);
        auto loaded = loadPlanFromBytes(blob);
        EXPECT_EQ(loaded->report().simdTier, "scalar");
        EXPECT_EQ(loaded->report().simdSteps, 0);
        for (const std::string &t : loaded->report().stepTiers)
            EXPECT_EQ(t, "scalar");
        downgraded = loaded->run({{"x", x}})[0];
    }

    // The downgraded program must be bit-identical to compiling the
    // same model with the scalar tier forced: the artifact's plan was
    // built against the scalar-identical partition/workspace specs,
    // so only the kernel bodies differ — and those are now the same
    // scalar bodies.
    CompileOptions sopt = opt;
    sopt.forceScalarTier = true;
    InferenceProgram scalar =
        compileInference(f.m.graph, {f.m.logits}, sopt, f.store);
    Tensor want = scalar.run({{"x", x}})[0];
    ASSERT_EQ(downgraded.shape(), want.shape());
    EXPECT_EQ(std::memcmp(downgraded.data(), want.data(),
                          sizeof(float) *
                              static_cast<size_t>(want.size())),
              0);

    // And loading on THIS host re-binds the SIMD tier: upgrade at
    // load is allowed because the swap provably fits the plan.
    auto native = loadPlanFromBytes(blob);
    EXPECT_EQ(native->report().simdTier,
              simdTierName(hostSimdTier()));
    EXPECT_GT(native->report().simdSteps, 0);
    Tensor same = native->run({{"x", x}})[0];
    EXPECT_LT(maxRelDiff(same, downgraded), 1e-4f);
}

TEST(TierDeploy, ScalarPlanUpgradesOnSimdHost)
{
    SKIP_WITHOUT_SIMD();
    CompiledMcuNet f;
    CompileOptions opt;
    opt.precision = Precision::Int8;
    opt.forceScalarTier = true;
    InferenceProgram prog =
        compileInference(f.m.graph, {f.m.logits}, opt, f.store);
    ASSERT_EQ(prog.report().simdSteps, 0);
    std::string blob =
        serializePlan(prog.graph(), prog.executor().exportArtifact(),
                      prog.report(), *f.store);
    auto loaded = loadPlanFromBytes(blob);
    // The scalar plan's workspace/launch geometry is identical to the
    // tier's (registration contract), so load-time upgrade kicks in.
    EXPECT_EQ(loaded->report().simdTier, simdTierName(hostSimdTier()));
    EXPECT_GT(loaded->report().simdSteps, 0);
}

} // namespace
} // namespace pe
