/**
 * @file
 * End-to-end tests of the compile pipeline: real training to
 * convergence, parity between compiled and eager execution, sparse
 * schemes, and the compile report's invariants.
 */

#include <gtest/gtest.h>

#include "baseline/eager.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "ir/serialize.h"

namespace pe {
namespace {

/** Small MLP classifier on separable 2-D data. */
struct MlpSetup {
    Graph g;
    Rng rng{7};
    std::shared_ptr<ParamStore> store = std::make_shared<ParamStore>();
    int x, y, logits, loss;

    MlpSetup()
    {
        NetBuilder b(g, rng, store.get());
        x = b.input({16, 2}, "x");
        int h = b.linear(x, 16, "l1");
        h = b.relu(h);
        h = b.linear(h, 16, "l2");
        h = b.relu(h);
        logits = b.linear(h, 2, "head");
        y = b.input({16}, "y");
        loss = b.crossEntropy(logits, y);
    }

    /** XOR-ish quadrant task: label = sign(x0 * x1). */
    Batch
    batch(Rng &r)
    {
        Batch out;
        out.x = Tensor({16, 2});
        out.y = Tensor({16});
        for (int i = 0; i < 16; ++i) {
            float a = r.uniform(-1, 1), c = r.uniform(-1, 1);
            out.x[i * 2] = a;
            out.x[i * 2 + 1] = c;
            out.y[i] = a * c > 0 ? 1.0f : 0.0f;
        }
        return out;
    }
};

TEST(Engine, MlpTrainsToLowLoss)
{
    MlpSetup s;
    CompileOptions opt;
    opt.optim = OptimConfig::adam(0.01);
    auto prog = compileTraining(s.g, s.loss, SparseUpdateScheme::full(),
                                opt, s.store);
    Rng r(11);
    float first = 0, last = 0;
    for (int step = 0; step < 300; ++step) {
        Batch b = s.batch(r);
        float l = prog.trainStep({{"x", b.x}, {"y", b.y}});
        if (step == 0)
            first = l;
        last = l;
    }
    EXPECT_GT(first, 0.5f);
    EXPECT_LT(last, 0.25f) << "training failed to converge";
}

TEST(Engine, CompiledMatchesEagerLossTrajectory)
{
    // Same init, same data: the compiled engine and the eager
    // baseline must produce the same losses step by step (both run
    // plain SGD full-BP).
    MlpSetup s1, s2; // identical seeds -> identical init
    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.05);
    auto prog = compileTraining(s1.g, s1.loss,
                                SparseUpdateScheme::full(), opt,
                                s1.store);
    EagerEngine eager(s2.g, s2.loss, s2.store, OptimConfig::sgd(0.05));

    Rng r1(3), r2(3);
    for (int step = 0; step < 20; ++step) {
        Batch b1 = s1.batch(r1);
        Batch b2 = s2.batch(r2);
        float lc = prog.trainStep({{"x", b1.x}, {"y", b1.y}});
        float le = eager.trainStep({{"x", b2.x}, {"y", b2.y}});
        EXPECT_NEAR(lc, le, 2e-3f) << "diverged at step " << step;
    }
}

TEST(Engine, BiasOnlyUpdatesOnlyBiases)
{
    MlpSetup s;
    Tensor w_before = s.store->get("l1.weight").clone();
    Tensor b_before = s.store->get("l1.bias").clone();

    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.1);
    SparseUpdateScheme scheme = SparseUpdateScheme::biasOnly();
    auto prog = compileTraining(s.g, s.loss, scheme, opt, s.store);
    Rng r(5);
    for (int step = 0; step < 5; ++step) {
        Batch b = s.batch(r);
        prog.trainStep({{"x", b.x}, {"y", b.y}});
    }
    EXPECT_TRUE(allClose(s.store->get("l1.weight"), w_before))
        << "frozen weight moved";
    EXPECT_GT(maxAbsDiff(s.store->get("l1.bias"), b_before), 0.0f)
        << "trainable bias did not move";
}

TEST(Engine, SparsePruningShrinksGraphAndMemory)
{
    Rng rng(1);
    VisionConfig cfg;
    cfg.batch = 2;
    cfg.resolution = 16;
    cfg.blocks = 6;
    ModelSpec full_model = buildMcuNet(cfg, rng, nullptr);

    CompileOptions opt;
    CompiledGraph full = compileGraphOnly(
        full_model.graph, full_model.loss, SparseUpdateScheme::full(),
        opt);
    CompiledGraph sparse = compileGraphOnly(
        full_model.graph, full_model.loss,
        cnnSparseScheme(full_model, 2, 2), opt);

    EXPECT_LT(sparse.report.backwardNodes, full.report.backwardNodes);
    EXPECT_LT(sparse.report.arenaBytes, full.report.arenaBytes);
    EXPECT_LT(sparse.report.flopsPerStep, full.report.flopsPerStep);
    EXPECT_LT(sparse.report.totalBytes, full.report.totalBytes);
}

TEST(Engine, ReorderingReducesArenaMemory)
{
    Rng rng(1);
    VisionConfig cfg;
    cfg.batch = 4;
    cfg.resolution = 16;
    cfg.blocks = 5;
    ModelSpec m = buildMcuNet(cfg, rng, nullptr);
    CompileOptions opt;
    CompiledGraph c = compileGraphOnly(m.graph, m.loss,
                                       SparseUpdateScheme::full(), opt);
    EXPECT_LT(c.report.arenaBytes, c.report.arenaBytesNoReorder)
        << "memory-aware reordering should beat creation order";
}

TEST(Engine, FusionPreservesTrainingSemantics)
{
    // Loss trajectories with and without fusion must match exactly:
    // fusion is functional-preserving.
    MlpSetup s1, s2;
    CompileOptions fused, plain;
    fused.optim = plain.optim = OptimConfig::sgd(0.05);
    plain.fuse = false;
    auto p1 = compileTraining(s1.g, s1.loss, SparseUpdateScheme::full(),
                              fused, s1.store);
    auto p2 = compileTraining(s2.g, s2.loss, SparseUpdateScheme::full(),
                              plain, s2.store);
    EXPECT_GT(p1.report().fusions, 0);
    Rng r1(3), r2(3);
    for (int step = 0; step < 10; ++step) {
        Batch b1 = s1.batch(r1);
        Batch b2 = s2.batch(r2);
        float l1 = p1.trainStep({{"x", b1.x}, {"y", b1.y}});
        float l2 = p2.trainStep({{"x", b2.x}, {"y", b2.y}});
        EXPECT_NEAR(l1, l2, 1e-4f);
    }
}

TEST(Engine, ReorderingPreservesTrainingSemantics)
{
    MlpSetup s1, s2;
    CompileOptions a, b;
    a.optim = b.optim = OptimConfig::momentumSgd(0.03);
    b.reorder = false;
    auto p1 = compileTraining(s1.g, s1.loss, SparseUpdateScheme::full(),
                              a, s1.store);
    auto p2 = compileTraining(s2.g, s2.loss, SparseUpdateScheme::full(),
                              b, s2.store);
    Rng r1(3), r2(3);
    for (int step = 0; step < 10; ++step) {
        Batch b1 = s1.batch(r1);
        Batch b2 = s2.batch(r2);
        float l1 = p1.trainStep({{"x", b1.x}, {"y", b1.y}});
        float l2 = p2.trainStep({{"x", b2.x}, {"y", b2.y}});
        EXPECT_NEAR(l1, l2, 1e-4f);
    }
}

TEST(Engine, InferenceSharesTrainedWeights)
{
    MlpSetup s;
    CompileOptions opt;
    opt.optim = OptimConfig::adam(0.01);
    auto prog = compileTraining(s.g, s.loss, SparseUpdateScheme::full(),
                                opt, s.store);
    Rng r(11);
    for (int step = 0; step < 200; ++step) {
        Batch b = s.batch(r);
        prog.trainStep({{"x", b.x}, {"y", b.y}});
    }
    auto infer = compileInference(s.g, {s.logits}, opt, s.store);
    Batch b = s.batch(r);
    Tensor logits = infer.run({{"x", b.x}})[0];
    int correct = 0;
    for (int i = 0; i < 16; ++i) {
        int pred = logits[i * 2 + 1] > logits[i * 2] ? 1 : 0;
        if (pred == static_cast<int>(b.y[i]))
            ++correct;
    }
    EXPECT_GE(correct, 12) << "trained classifier should beat chance";
}

TEST(Engine, ChannelSparseTrainsAndRestUnchanged)
{
    Rng rng(2);
    auto store = std::make_shared<ParamStore>();
    VisionConfig cfg;
    cfg.batch = 4;
    cfg.resolution = 8;
    cfg.blocks = 2;
    ModelSpec m = buildMcuNet(cfg, rng, store.get());

    SparseUpdateScheme scheme = SparseUpdateScheme::frozen();
    scheme.set("b1.conv1.weight", TensorRule{true, 0.5});
    scheme.updatePrefix("head.");
    scheme.updateBiasPrefix("head.");

    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.1);
    Tensor before = store->get("b1.conv1.weight").clone();
    auto prog = compileTraining(m.graph, m.loss, scheme, opt, store);

    SyntheticVision task = SyntheticVision::pretrain(3, 8);
    Rng r(9);
    for (int i = 0; i < 3; ++i) {
        Batch b = task.sample(4, r);
        prog.trainStep({{"x", b.x}, {"y", b.y}});
    }
    const Tensor &after = store->get("b1.conv1.weight");
    const Shape &ws = after.shape();
    int64_t half = ws[0] / 2 + (ws[0] % 2);
    int64_t per_ch = ws[1] * ws[2] * ws[3];
    float updated = 0, frozen = 0;
    for (int64_t i = 0; i < after.size(); ++i) {
        float d = std::fabs(after[i] - before[i]);
        if (i < half * per_ch)
            updated += d;
        else
            frozen += d;
    }
    EXPECT_GT(updated, 0.0f) << "first-half channels should update";
    EXPECT_EQ(frozen, 0.0f) << "second-half channels must stay frozen";
}

TEST(Engine, LionAndAdamConverge)
{
    for (auto kind : {OptimKind::Adam, OptimKind::Lion}) {
        MlpSetup s;
        CompileOptions opt;
        opt.optim = kind == OptimKind::Adam ? OptimConfig::adam(0.01)
                                            : OptimConfig::lion(0.003);
        auto prog = compileTraining(s.g, s.loss,
                                    SparseUpdateScheme::full(), opt,
                                    s.store);
        Rng r(11);
        float last = 0;
        for (int step = 0; step < 250; ++step) {
            Batch b = s.batch(r);
            last = prog.trainStep({{"x", b.x}, {"y", b.y}});
        }
        EXPECT_LT(last, 0.35f) << "optimizer "
                               << static_cast<int>(kind);
    }
}

TEST(Engine, WinogradBindsOnlyFrozenConvs)
{
    Rng rng(1);
    VisionConfig cfg;
    cfg.batch = 1;
    cfg.resolution = 16;
    cfg.blocks = 4;
    ModelSpec m = buildResNet(cfg, rng, nullptr);
    CompileOptions opt;
    CompiledGraph sparse = compileGraphOnly(
        m.graph, m.loss, cnnSparseScheme(m, 2, 2), opt);
    EXPECT_GT(sparse.report.backend.winogradBound, 0)
        << "frozen 3x3 convs should bind to Winograd";
    CompiledGraph full = compileGraphOnly(m.graph, m.loss,
                                          SparseUpdateScheme::full(),
                                          opt);
    EXPECT_EQ(full.report.backend.winogradBound, 0)
        << "trainable convs must not use cached Winograd transforms";
}

TEST(Engine, MaskedEagerSparseGetsNoComputeSavings)
{
    // The motivating claim: frameworks that mask gradients still pay
    // for all of them; PockEngine's pruned graph does not.
    MlpSetup s_full, s_mask;
    EagerEngine full(s_full.g, s_full.loss, s_full.store,
                     OptimConfig::sgd(0.05));
    std::unordered_map<std::string, bool> mask = {
        {"l1.weight", false}, {"l1.bias", false},
        {"l2.weight", false}, {"l2.bias", false},
        {"head.weight", true}, {"head.bias", true},
    };
    EagerEngine masked(s_mask.g, s_mask.loss, s_mask.store,
                       OptimConfig::sgd(0.05), &mask);
    Rng r(3);
    Batch b = s_full.batch(r);
    full.trainStep({{"x", b.x}, {"y", b.y}});
    masked.trainStep({{"x", b.x}, {"y", b.y}});
    EXPECT_EQ(full.stats().opsExecuted, masked.stats().opsExecuted)
        << "masking computes every gradient anyway";

    // PockEngine with the same scheme executes strictly fewer ops.
    SparseUpdateScheme scheme = SparseUpdateScheme::frozen();
    scheme.updatePrefix("head.");
    scheme.updateBiasPrefix("head.");
    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.05);
    auto prog = compileTraining(s_full.g, s_full.loss, scheme, opt,
                                std::make_shared<ParamStore>());
    auto full_prog = compileTraining(s_full.g, s_full.loss,
                                     SparseUpdateScheme::full(), opt,
                                     std::make_shared<ParamStore>());
    EXPECT_LT(prog.report().kernelSteps,
              full_prog.report().kernelSteps);
}

TEST(Engine, GradientAccumulationMatchesSingleLargeStep)
{
    // N accumulation micro-steps on the SAME batch must equal one
    // plain SGD step on that batch (grads are scaled by 1/N and
    // summed N times).
    MlpSetup s_acc, s_ref;
    CompileOptions acc_opt, ref_opt;
    acc_opt.optim = ref_opt.optim = OptimConfig::sgd(0.05);
    acc_opt.gradAccumSteps = 4;
    auto acc = compileTraining(s_acc.g, s_acc.loss,
                               SparseUpdateScheme::full(), acc_opt,
                               s_acc.store);
    auto ref = compileTraining(s_ref.g, s_ref.loss,
                               SparseUpdateScheme::full(), ref_opt,
                               s_ref.store);
    Rng r(3);
    Batch b = s_acc.batch(r);
    for (int micro = 0; micro < 4; ++micro)
        acc.trainStep({{"x", b.x}, {"y", b.y}});
    ref.trainStep({{"x", b.x}, {"y", b.y}});
    EXPECT_LT(maxAbsDiff(s_acc.store->get("l1.weight"),
                         s_ref.store->get("l1.weight")),
              1e-5f);
    EXPECT_LT(maxAbsDiff(s_acc.store->get("head.bias"),
                         s_ref.store->get("head.bias")),
              1e-5f);
}

TEST(Engine, GradientAccumulationOnlyAppliesEveryNth)
{
    MlpSetup s;
    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.1);
    opt.gradAccumSteps = 3;
    Tensor before = s.store->get("l1.weight").clone();
    auto prog = compileTraining(s.g, s.loss, SparseUpdateScheme::full(),
                                opt, s.store);
    Rng r(3);
    Batch b = s.batch(r);
    prog.trainStep({{"x", b.x}, {"y", b.y}});
    prog.trainStep({{"x", b.x}, {"y", b.y}});
    EXPECT_TRUE(allClose(s.store->get("l1.weight"), before))
        << "no update before the N-th micro-step";
    prog.trainStep({{"x", b.x}, {"y", b.y}});
    EXPECT_GT(maxAbsDiff(s.store->get("l1.weight"), before), 0.0f);
    // Accumulation buffers must be zeroed after the apply.
    EXPECT_DOUBLE_EQ(s.store->get("l1.weight.gacc").meanAbs(), 0.0);
}

TEST(Engine, GraphRoundTripsThroughJsonAndStillCompiles)
{
    MlpSetup s;
    std::string json = graphToJson(s.g);
    Graph loaded = graphFromJson(json);
    ASSERT_EQ(loaded.numNodes(), s.g.numNodes());
    CompileOptions opt;
    opt.optim = OptimConfig::sgd(0.05);
    auto prog = compileTraining(loaded, s.loss,
                                SparseUpdateScheme::full(), opt,
                                s.store);
    Rng r(3);
    Batch b = s.batch(r);
    float loss = prog.trainStep({{"x", b.x}, {"y", b.y}});
    EXPECT_GT(loss, 0.0f);
    EXPECT_TRUE(std::isfinite(loss));
}

} // namespace
} // namespace pe
