/**
 * @file
 * Property-style tests over randomized graphs: for arbitrary small
 * MLP/CNN topologies the compile pipeline must (1) produce gradients
 * matching finite differences, (2) plan non-overlapping memory under
 * any valid schedule, (3) keep fusion/reordering functional-
 * preserving, and (4) round-trip through the serializer.
 */

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "frontend/builder.h"
#include "ir/serialize.h"
#include "passes/passes.h"
#include "testutil.h"

namespace pe {
namespace {

/** Build a random smooth MLP (tanh/gelu/silu) with random widths. */
struct RandomNet {
    Graph g;
    ParamStore store;
    test::Feeds feeds;
    int loss = -1;
};

RandomNet
randomMlp(uint64_t seed)
{
    RandomNet net;
    Rng rng(seed);
    NetBuilder b(net.g, rng, &net.store);
    int64_t batch = 2 + rng.randint(3);
    int64_t width = 3 + rng.randint(5);
    int x = b.input({batch, width}, "x");
    net.feeds["x"] = Tensor::randn({batch, width}, rng, 0.5f);
    int h = x;
    int depth = 1 + static_cast<int>(rng.randint(3));
    for (int i = 0; i < depth; ++i) {
        int64_t next = 3 + rng.randint(5);
        h = b.linear(h, next, "l" + std::to_string(i));
        switch (rng.randint(3)) {
          case 0:
            h = net.g.add(OpKind::Tanh, {h});
            break;
          case 1:
            h = b.gelu(h);
            break;
          default:
            h = b.silu(h);
            break;
        }
        // Occasional residual when widths match.
        width = next;
    }
    Shape hs = net.g.node(h).shape;
    int t = b.input(hs, "t");
    net.feeds["t"] = Tensor::randn(hs, rng);
    net.loss = b.mse(h, t);
    return net;
}

class RandomGraphGrad : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomGraphGrad, AutodiffMatchesFiniteDifference)
{
    RandomNet net = randomMlp(GetParam());
    EXPECT_LT(test::gradCheck(net.g, net.loss, net.store, net.feeds),
              4e-2f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphGrad,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

class RandomGraphPlan : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomGraphPlan, PlannerNeverOverlapsLiveValues)
{
    RandomNet net = randomMlp(GetParam());
    Graph g = net.g;
    BackwardResult bwd = buildBackward(g, net.loss);
    g.markOutput(net.loss);
    for (auto &[p, gid] : bwd.paramGrads)
        g.markOutput(gid);
    for (auto order : {naturalOrder(g), reorderForMemory(g)}) {
        MemoryPlan plan = planMemory(g, order);
        for (int i = 0; i < g.numNodes(); ++i) {
            for (int j = i + 1; j < g.numNodes(); ++j) {
                const ValuePlacement &a = plan.values[i];
                const ValuePlacement &c = plan.values[j];
                if (a.storage != Storage::Arena ||
                    c.storage != Storage::Arena) {
                    continue;
                }
                bool lives = a.defPos <= c.lastUsePos &&
                             c.defPos <= a.lastUsePos;
                bool bytes = a.offset < c.offset + c.bytes &&
                             c.offset < a.offset + a.bytes;
                if (lives)
                    ASSERT_FALSE(bytes) << i << " vs " << j;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphPlan,
                         ::testing::Values(101, 202, 303, 404, 505));

class RandomGraphSemantics : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomGraphSemantics, AllOptimizationsPreserveLoss)
{
    // Compiling with every optimization on vs all off must produce
    // identical losses and identical updated weights after a step.
    uint64_t seed = GetParam();
    RandomNet a = randomMlp(seed);
    RandomNet b = randomMlp(seed);
    CompileOptions on, off;
    on.optim = off.optim = OptimConfig::sgd(0.05);
    off.fuse = off.reorder = off.winograd = off.blocked =
        off.foldConstants = false;
    auto store_a = std::make_shared<ParamStore>(a.store);
    auto store_b = std::make_shared<ParamStore>(b.store);
    auto pa = compileTraining(a.g, a.loss, SparseUpdateScheme::full(),
                              on, store_a);
    auto pb = compileTraining(b.g, b.loss, SparseUpdateScheme::full(),
                              off, store_b);
    for (int step = 0; step < 3; ++step) {
        float la = pa.trainStep(a.feeds);
        float lb = pb.trainStep(b.feeds);
        ASSERT_NEAR(la, lb, 1e-4f) << "seed " << seed;
    }
    for (const auto &[name, t] : store_a->all()) {
        ASSERT_TRUE(allClose(t, store_b->get(name), 1e-4f, 1e-5f))
            << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSemantics,
                         ::testing::Values(7, 14, 21, 28));

class RandomGraphSerialize : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomGraphSerialize, RoundTripAndEquivalentExecution)
{
    RandomNet net = randomMlp(GetParam());
    net.g.markOutput(net.loss);
    Graph loaded = graphFromJson(graphToJson(net.g));
    Tensor a = test::evalNode(net.g, net.loss, net.store, net.feeds);
    Tensor b = test::evalNode(loaded, net.loss, net.store, net.feeds);
    EXPECT_TRUE(allClose(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSerialize,
                         ::testing::Values(1, 2, 3, 4));

TEST(SparseMonotonicity, MoreFrozenBlocksNeverCostMore)
{
    // Property: freezing strictly more of the model can only shrink
    // (or keep) backward size, flops and arena memory.
    Graph g;
    Rng rng(9);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({4, 16}, "x");
    int h = x;
    for (int i = 0; i < 6; ++i)
        h = b.gelu(b.linear(h, 16, "l" + std::to_string(i)));
    int logits = b.linear(h, 3, "head");
    int y = b.input({4}, "y");
    int loss = b.crossEntropy(logits, y);
    (void)logits;

    CompileOptions opt;
    double prev_flops = 1e300;
    int64_t prev_arena = 1LL << 60;
    int prev_bwd = INT32_MAX;
    for (int first_trainable = 0; first_trainable <= 6;
         ++first_trainable) {
        SparseUpdateScheme s = SparseUpdateScheme::frozen();
        for (int i = first_trainable; i < 6; ++i) {
            s.updatePrefix("l" + std::to_string(i) + ".");
            s.updateBiasPrefix("l" + std::to_string(i) + ".");
        }
        s.updatePrefix("head.");
        s.updateBiasPrefix("head.");
        CompiledGraph c = compileGraphOnly(g, loss, s, opt);
        EXPECT_LE(c.report.flopsPerStep, prev_flops);
        EXPECT_LE(c.report.backwardNodes, prev_bwd);
        EXPECT_LE(c.report.arenaBytes, prev_arena + 4096)
            << "arena should shrink (within alignment slack)";
        prev_flops = c.report.flopsPerStep;
        prev_bwd = c.report.backwardNodes;
        prev_arena = c.report.arenaBytes;
    }
}

} // namespace
} // namespace pe
