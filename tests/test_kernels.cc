/**
 * @file
 * Kernel-level tests: every optimized variant must agree with the
 * naive reference (blocked GEMM, im2col conv, Winograd), fused ops
 * must match their unfused compositions, and numerically delicate
 * kernels (softmax, cross-entropy) must be stable.
 */

#include <gtest/gtest.h>

#include "core/tensor.h"
#include "frontend/builder.h"
#include "kernels/kernel.h"
#include "testutil.h"

namespace pe {
namespace {

/** Evaluate a single node with an explicit kernel variant. */
Tensor
runKernel(const Graph &g, int node, const std::vector<Tensor> &inputs,
          const std::string &variant)
{
    const Node &n = g.node(node);
    Tensor out(n.shape);
    KernelCtx ctx;
    ctx.node = &n;
    for (size_t i = 0; i < inputs.size(); ++i) {
        ctx.in.push_back(inputs[i].data());
        ctx.inShapes.push_back(&g.node(n.inputs[i]).shape);
    }
    ctx.out = out.data();
    ctx.outShape = &n.shape;
    DirectWorkspace ws;
    ws.attach(ctx, g, n, variant);
    lookupKernel(n.op, variant)(ctx);
    return out;
}

struct ConvParam {
    int64_t ci, co, hw, stride, pad;
};

class ConvVariants : public ::testing::TestWithParam<ConvParam>
{
};

TEST_P(ConvVariants, Im2colMatchesNaive)
{
    auto [ci, co, hw, stride, pad] = GetParam();
    Rng rng(3);
    Graph g;
    int x = g.input({2, ci, hw, hw}, "x");
    int w = g.param({co, ci, 3, 3}, "w", false);
    Attrs a;
    a.set("stride", stride);
    a.set("pad", pad);
    int conv = g.add(OpKind::Conv2d, {x, w}, std::move(a));
    Tensor tx = Tensor::randn({2, ci, hw, hw}, rng);
    Tensor tw = Tensor::randn({co, ci, 3, 3}, rng, 0.3f);
    Tensor naive = runKernel(g, conv, {tx, tw}, "");
    Tensor im2col = runKernel(g, conv, {tx, tw}, "im2col");
    EXPECT_LT(maxAbsDiff(naive, im2col), 1e-4f);
}

TEST_P(ConvVariants, WinogradMatchesNaiveWhenStride1)
{
    auto [ci, co, hw, stride, pad] = GetParam();
    if (stride != 1)
        GTEST_SKIP() << "Winograd variant requires stride 1";
    Rng rng(3);
    Graph g;
    int x = g.input({2, ci, hw, hw}, "x");
    int w = g.param({co, ci, 3, 3}, "w", false);
    Attrs a;
    a.set("stride", stride);
    a.set("pad", pad);
    int conv = g.add(OpKind::Conv2d, {x, w}, std::move(a));
    Tensor tx = Tensor::randn({2, ci, hw, hw}, rng);
    Tensor tw = Tensor::randn({co, ci, 3, 3}, rng, 0.3f);
    Tensor naive = runKernel(g, conv, {tx, tw}, "");
    Tensor wino = runKernel(g, conv, {tx, tw}, "winograd");
    EXPECT_LT(maxAbsDiff(naive, wino), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvVariants,
    ::testing::Values(ConvParam{3, 8, 8, 1, 1}, ConvParam{4, 4, 9, 1, 1},
                      ConvParam{1, 2, 7, 1, 0}, ConvParam{3, 8, 8, 2, 1},
                      ConvParam{8, 16, 12, 1, 1}));

TEST(MatMulVariants, BlockedMatchesNaive)
{
    for (int64_t n : {5, 17, 48, 100}) {
        Rng rng(1);
        Graph g;
        int a = g.input({n, n + 3}, "a");
        int b = g.input({n + 3, n - 1}, "b");
        int mm = g.add(OpKind::MatMul, {a, b});
        Tensor ta = Tensor::randn({n, n + 3}, rng);
        Tensor tb = Tensor::randn({n + 3, n - 1}, rng);
        Tensor naive = runKernel(g, mm, {ta, tb}, "");
        Tensor blocked = runKernel(g, mm, {ta, tb}, "blocked");
        EXPECT_LT(maxAbsDiff(naive, blocked), 1e-3f) << "n=" << n;
    }
}

TEST(MatMulVariants, BlockedMatchesNaiveWithTranspose)
{
    Rng rng(1);
    Graph g;
    int a = g.input({20, 30}, "a");
    int b = g.input({40, 30}, "b");
    Attrs attrs;
    attrs.set("transB", static_cast<int64_t>(1));
    int mm = g.add(OpKind::MatMul, {a, b}, std::move(attrs));
    Tensor ta = Tensor::randn({20, 30}, rng);
    Tensor tb = Tensor::randn({40, 30}, rng);
    EXPECT_LT(maxAbsDiff(runKernel(g, mm, {ta, tb}, ""),
                         runKernel(g, mm, {ta, tb}, "blocked")),
              1e-3f);
}

TEST(FusedKernels, ConvBiasReluMatchesComposition)
{
    Rng rng(5);
    Graph g;
    int x = g.input({2, 3, 8, 8}, "x");
    int w = g.param({6, 3, 3, 3}, "w", false);
    int b = g.param({6, 1, 1}, "b", false);
    Attrs a;
    a.set("stride", static_cast<int64_t>(1));
    a.set("pad", static_cast<int64_t>(1));
    a.set("act", static_cast<int64_t>(kActRelu));
    int fused = g.add(OpKind::ConvBiasAct, {x, w, b}, a);

    Tensor tx = Tensor::randn({2, 3, 8, 8}, rng);
    Tensor tw = Tensor::randn({6, 3, 3, 3}, rng, 0.3f);
    Tensor tb = Tensor::randn({6, 1, 1}, rng);
    Tensor got = runKernel(g, fused, {tx, tw, tb}, "");

    // Reference composition.
    Attrs ca;
    ca.set("stride", static_cast<int64_t>(1));
    ca.set("pad", static_cast<int64_t>(1));
    int conv = g.add(OpKind::Conv2d, {x, w}, std::move(ca));
    Tensor conv_out = runKernel(g, conv, {tx, tw}, "");
    for (int64_t n = 0; n < 2; ++n) {
        for (int64_t c = 0; c < 6; ++c) {
            for (int64_t i = 0; i < 64; ++i) {
                int64_t idx = (n * 6 + c) * 64 + i;
                float ref = conv_out[idx] + tb[c];
                ref = ref > 0 ? ref : 0;
                EXPECT_NEAR(got[idx], ref, 1e-4f);
            }
        }
    }
}

TEST(FusedKernels, WinogradConvBiasActMatchesFusedDirect)
{
    Rng rng(5);
    Graph g;
    int x = g.input({1, 4, 10, 10}, "x");
    int w = g.param({4, 4, 3, 3}, "w", false);
    int b = g.param({4, 1, 1}, "b", false);
    Attrs a;
    a.set("stride", static_cast<int64_t>(1));
    a.set("pad", static_cast<int64_t>(1));
    a.set("act", static_cast<int64_t>(kActRelu));
    int fused = g.add(OpKind::ConvBiasAct, {x, w, b}, a);
    Tensor tx = Tensor::randn({1, 4, 10, 10}, rng);
    Tensor tw = Tensor::randn({4, 4, 3, 3}, rng, 0.3f);
    Tensor tb = Tensor::randn({4, 1, 1}, rng);
    Tensor direct = runKernel(g, fused, {tx, tw, tb}, "");
    Tensor wino = runKernel(g, fused, {tx, tw, tb}, "winograd");
    EXPECT_LT(maxAbsDiff(direct, wino), 1e-3f);
}

TEST(WinogradCache, StaticWeightTransformIsCachedAndReused)
{
    Rng rng(5);
    Graph g;
    int x = g.input({1, 2, 8, 8}, "x");
    int w = g.param({2, 2, 3, 3}, "w", false);
    Attrs a;
    a.set("stride", static_cast<int64_t>(1));
    a.set("pad", static_cast<int64_t>(1));
    a.set("staticWeight", static_cast<int64_t>(1));
    int conv = g.add(OpKind::Conv2d, {x, w}, std::move(a));

    Tensor tx = Tensor::randn({1, 2, 8, 8}, rng);
    Tensor tw = Tensor::randn({2, 2, 3, 3}, rng, 0.3f);
    const Node &n = g.node(conv);
    Tensor out1(n.shape), out2(n.shape);
    KernelCtx ctx;
    ctx.node = &n;
    ctx.in = {tx.data(), tw.data()};
    ctx.inShapes = {&g.node(x).shape, &g.node(w).shape};
    ctx.outShape = &n.shape;
    DirectWorkspace ws;
    ws.attach(ctx, g, n, "winograd");
    KernelFn fn = lookupKernel(OpKind::Conv2d, "winograd");
    ctx.out = out1.data();
    fn(ctx);
    EXPECT_TRUE(ws.ready())
        << "transform should be cached after first call";
    // Corrupting the weight now must NOT change the output: the
    // cached transform is in use (this is only legal because the
    // backend-switch pass guarantees the weight is frozen).
    tw.fill(0.0f);
    ctx.out = out2.data();
    fn(ctx);
    EXPECT_TRUE(allClose(out1, out2));
}

TEST(SoftmaxKernel, StableUnderLargeLogits)
{
    Graph g;
    int x = g.input({1, 4}, "x");
    int sm = g.add(OpKind::Softmax, {x});
    Tensor tx = Tensor::fromVector({1, 4}, {1000, 1001, 999, 1000});
    Tensor out = runKernel(g, sm, {tx}, "");
    double sum = out.sum();
    EXPECT_NEAR(sum, 1.0, 1e-5);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(std::isfinite(out[i]));
    EXPECT_GT(out[1], out[0]);
}

TEST(CrossEntropyKernel, MatchesManualComputation)
{
    Graph g;
    int x = g.input({2, 3}, "x");
    int y = g.input({2}, "y");
    int ce = g.add(OpKind::CrossEntropy, {x, y});
    Tensor logits = Tensor::fromVector({2, 3}, {1, 2, 3, 0, 0, 0});
    Tensor labels = Tensor::fromVector({2}, {2, 0});
    const Node &n = g.node(ce);
    Tensor out({1});
    KernelCtx ctx;
    ctx.node = &n;
    ctx.in = {logits.data(), labels.data()};
    ctx.inShapes = {&g.node(x).shape, &g.node(y).shape};
    ctx.out = out.data();
    ctx.outShape = &n.shape;
    lookupKernel(OpKind::CrossEntropy, "")(ctx);
    // Row 0: lse(1,2,3) - 3; row 1: lse(0,0,0) - 0 = log 3.
    double lse0 = std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
    double expected = ((lse0 - 3.0) + std::log(3.0)) / 2.0;
    EXPECT_NEAR(out[0], expected, 1e-5);
}

TEST(DepthwiseKernel, MatchesPerChannelConv)
{
    // Depthwise conv == per-channel 1-in/1-out standard conv.
    Rng rng(7);
    Graph g;
    int x = g.input({1, 3, 6, 6}, "x");
    int w = g.param({3, 1, 3, 3}, "w", false);
    Attrs a;
    a.set("stride", static_cast<int64_t>(1));
    a.set("pad", static_cast<int64_t>(1));
    int dw = g.add(OpKind::DwConv2d, {x, w}, std::move(a));
    Tensor tx = Tensor::randn({1, 3, 6, 6}, rng);
    Tensor tw = Tensor::randn({3, 1, 3, 3}, rng);
    Tensor got = runKernel(g, dw, {tx, tw}, "");

    for (int64_t c = 0; c < 3; ++c) {
        Graph g1;
        int x1 = g1.input({1, 1, 6, 6}, "x");
        int w1 = g1.param({1, 1, 3, 3}, "w", false);
        Attrs a1;
        a1.set("stride", static_cast<int64_t>(1));
        a1.set("pad", static_cast<int64_t>(1));
        int conv = g1.add(OpKind::Conv2d, {x1, w1}, std::move(a1));
        Tensor cx({1, 1, 6, 6}), cw({1, 1, 3, 3});
        for (int64_t i = 0; i < 36; ++i)
            cx[i] = tx[c * 36 + i];
        for (int64_t i = 0; i < 9; ++i)
            cw[i] = tw[c * 9 + i];
        Tensor ref = runKernel(g1, conv, {cx, cw}, "");
        for (int64_t i = 0; i < 36; ++i)
            EXPECT_NEAR(got[c * 36 + i], ref[i], 1e-4f) << "c=" << c;
    }
}

TEST(KernelRegistry, UnknownVariantFallsBackToDefault)
{
    detail::ensureKernelsRegistered();
    EXPECT_EQ(lookupKernel(OpKind::Add, "no-such-variant"),
              lookupKernel(OpKind::Add, ""));
    EXPECT_TRUE(hasKernelVariant(OpKind::Conv2d, "winograd"));
    EXPECT_FALSE(hasKernelVariant(OpKind::Add, "winograd"));
}

TEST(OptimApplyKernels, SgdSubRangeOffset)
{
    // Channel-sparse updates write only [offset, offset + grad.numel).
    Graph g;
    int p = g.param({8}, "p", true);
    int gr = g.input({4}, "g");
    Attrs a;
    a.set("lr", 1.0);
    a.set("offset", static_cast<int64_t>(0));
    int apply = g.add(OpKind::ApplySgd, {p, gr}, std::move(a));
    Tensor tp = Tensor::ones({8});
    Tensor tg = Tensor::ones({4});
    KernelCtx ctx;
    ctx.node = &g.node(apply);
    ctx.in = {tp.data(), tg.data()};
    ctx.inShapes = {&g.node(p).shape, &g.node(gr).shape};
    ctx.out = tp.data();
    ctx.outShape = &g.node(apply).shape;
    lookupKernel(OpKind::ApplySgd, "")(ctx);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(tp[i], 0.0f);
    for (int i = 4; i < 8; ++i)
        EXPECT_FLOAT_EQ(tp[i], 1.0f);
}

} // namespace
} // namespace pe
