/**
 * @file
 * Substrate tests: synthetic data generators (learnability, label
 * ranges, determinism), device models (latency monotonicity), the
 * eager baseline's stats, and the scheme search (knapsack behaviour,
 * constraint respect, sensitivity ordering).
 */

#include <gtest/gtest.h>

#include "baseline/eager.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "hw/device.h"
#include "search/search.h"

namespace pe {
namespace {

// ---- data ----------------------------------------------------------------

TEST(SyntheticVision, ShapesAndLabelRange)
{
    SyntheticVision task(1, 5, 3, 8);
    Rng rng(2);
    Batch b = task.sample(16, rng);
    EXPECT_EQ(b.x.shape(), (Shape{16, 3, 8, 8}));
    EXPECT_EQ(b.y.shape(), (Shape{16}));
    for (int i = 0; i < 16; ++i) {
        EXPECT_GE(b.y[i], 0);
        EXPECT_LT(b.y[i], 5);
        EXPECT_EQ(b.y[i], std::floor(b.y[i]));
    }
}

TEST(SyntheticVision, TasksAreDistinctDistributions)
{
    SyntheticVision a = SyntheticVision::task("cars", 3, 8);
    SyntheticVision b = SyntheticVision::task("pets", 3, 8);
    Rng r1(3), r2(3);
    Batch ba = a.sample(4, r1);
    Batch bb = b.sample(4, r2);
    EXPECT_GT(maxAbsDiff(ba.x, bb.x), 0.1f)
        << "different tasks must differ even at equal rng state";
}

TEST(SyntheticVision, DeterministicGivenSeeds)
{
    SyntheticVision a(7, 4, 3, 8), b(7, 4, 3, 8);
    Rng r1(9), r2(9);
    EXPECT_TRUE(allClose(a.sample(4, r1).x, b.sample(4, r2).x));
}

TEST(SyntheticText, MotifIsLearnableSignal)
{
    // Bayes-optimal classification is possible: motif bigram present
    // in ~90% of samples. Check the motif actually appears.
    SyntheticText task(5, 2, 32, 12);
    Rng rng(3);
    int motif_hits = 0, n = 200;
    for (int i = 0; i < n; ++i) {
        Batch b = task.sample(1, rng);
        (void)b;
    }
    Batch b = task.sample(64, rng);
    for (int64_t i = 0; i < 64; ++i) {
        for (int64_t j = 0; j + 1 < 12; ++j) {
            // count any adjacent repeated structure; weak check that
            // values are in vocab range
            EXPECT_GE(b.x[i * 12 + j], 0);
            EXPECT_LT(b.x[i * 12 + j], 32);
        }
    }
    (void)motif_hits;
}

TEST(InstructionTask, NextTokenTargetsAreShiftedInputs)
{
    InstructionTask task(1, 4, 32, 8);
    Rng rng(2);
    Batch b = task.sample(2, rng);
    for (int64_t n = 0; n < 2; ++n) {
        for (int64_t i = 0; i + 1 < 8; ++i) {
            EXPECT_FLOAT_EQ(b.y[n * 8 + i], b.x[n * 8 + i + 1])
                << "y must be next-token of x";
        }
    }
}

TEST(InstructionTask, ExactMatchIsOneForOracleLogits)
{
    InstructionTask task(1, 4, 16, 8);
    Rng rng(2);
    Batch b = task.sample(2, rng);
    Tensor logits = Tensor::zeros({16, 16});
    for (int64_t r = 0; r < 16; ++r)
        logits[r * 16 + static_cast<int64_t>(b.y[r])] = 10.0f;
    EXPECT_DOUBLE_EQ(task.exactMatch(logits, b), 1.0);
}

// ---- hardware models ---------------------------------------------------

TEST(DeviceModel, LatencyDecreasesWithFasterDevice)
{
    // Use a compute-bound (paper-scale) model: on tiny graphs GPU
    // launch overhead legitimately dominates and a Pi can win.
    Rng rng(1);
    VisionConfig cfg = paperMobileNetV2Config(8);
    ModelSpec m = buildMobileNetV2(cfg, rng, nullptr);
    CompileOptions opt;
    CompiledGraph c = compileGraphOnly(m.graph, m.loss,
                                       SparseUpdateScheme::full(), opt);
    FrameworkProfile pe = FrameworkProfile::pockEngine();
    double pi = projectLatencyUs(c.graph, c.order,
                                 DeviceModel::raspberryPi4(), pe,
                                 c.variants);
    double orin = projectLatencyUs(c.graph, c.order,
                                   DeviceModel::jetsonOrin(), pe,
                                   c.variants);
    double mcu = projectLatencyUs(c.graph, c.order,
                                  DeviceModel::stm32f746(), pe,
                                  c.variants);
    EXPECT_LT(orin, pi);
    EXPECT_LT(pi, mcu);
}

TEST(DeviceModel, HostOverheadPenalizesEagerFrameworks)
{
    Rng rng(1);
    VisionConfig cfg;
    cfg.batch = 1;
    cfg.resolution = 16;
    cfg.blocks = 3;
    ModelSpec m = buildMcuNet(cfg, rng, nullptr);
    CompileOptions opt;
    CompiledGraph c = compileGraphOnly(m.graph, m.loss,
                                       SparseUpdateScheme::full(), opt);
    DeviceModel dev = DeviceModel::raspberryPi4();
    double tf = projectLatencyUs(c.graph, c.order, dev,
                                 FrameworkProfile::tensorflow(),
                                 c.variants);
    double pe = projectLatencyUs(c.graph, c.order, dev,
                                 FrameworkProfile::pockEngine(),
                                 c.variants);
    EXPECT_GT(tf, 2.0 * pe);
}

TEST(DeviceModel, SparseGraphProjectsFaster)
{
    Rng rng(1);
    VisionConfig cfg;
    cfg.batch = 4;
    cfg.resolution = 16;
    cfg.blocks = 4;
    ModelSpec m = buildMcuNet(cfg, rng, nullptr);
    CompileOptions opt;
    CompiledGraph full = compileGraphOnly(m.graph, m.loss,
                                          SparseUpdateScheme::full(),
                                          opt);
    CompiledGraph sparse = compileGraphOnly(m.graph, m.loss,
                                            cnnSparseScheme(m, 2, 1),
                                            opt);
    FrameworkProfile pe = FrameworkProfile::pockEngine();
    for (const DeviceModel &dev : DeviceModel::all()) {
        EXPECT_LT(projectLatencyUs(sparse.graph, sparse.order, dev, pe,
                                   sparse.variants),
                  projectLatencyUs(full.graph, full.order, dev, pe,
                                   full.variants))
            << dev.name;
    }
}

// ---- eager baseline ------------------------------------------------------

TEST(EagerEngine, CountsOpsAndRederivesBackwardEachStep)
{
    Graph g;
    Rng rng(1);
    auto store = std::make_shared<ParamStore>();
    NetBuilder b(g, rng, store.get());
    int x = b.input({4, 8}, "x");
    int h = b.relu(b.linear(x, 8, "l1"));
    int logits = b.linear(h, 2, "head");
    int y = b.input({4}, "y");
    int loss = b.crossEntropy(logits, y);
    (void)logits;

    EagerEngine eager(g, loss, store, OptimConfig::sgd(0.05));
    Batch batch{Tensor::randn({4, 8}, rng), Tensor::zeros({4})};
    eager.trainStep({{"x", batch.x}, {"y", batch.y}});
    int64_t ops1 = eager.stats().opsExecuted;
    EXPECT_GT(ops1, 0);
    EXPECT_GT(eager.stats().autodiffNodes, 0);
    eager.trainStep({{"x", batch.x}, {"y", batch.y}});
    EXPECT_EQ(eager.stats().opsExecuted, 2 * ops1)
        << "every step pays the full interpretation cost";
    EXPECT_GT(eager.stats().gradBytes, 0);
}

// ---- scheme search ------------------------------------------------------

TEST(EvoSearch, RespectsMemoryBudget)
{
    std::vector<SearchUnit> units;
    Rng rng(3);
    for (int i = 0; i < 12; ++i) {
        units.push_back({"u" + std::to_string(i),
                         rng.uniform(0.0f, 1.0f),
                         1000 + rng.randint(5000)});
    }
    int64_t budget = 8000;
    SearchResult res = evolutionarySearch(units, 0, budget, rng);
    EXPECT_LE(res.totalMemory, budget);
    EXPECT_GT(res.totalContribution, 0);
}

TEST(EvoSearch, FindsObviousOptimum)
{
    // One unit dominates: huge contribution, tiny cost. It must be
    // selected; a poisonous unit (negative contribution) must not.
    std::vector<SearchUnit> units = {
        {"gold", 10.0, 10},
        {"poison", -5.0, 10},
        {"meh", 0.1, 500},
    };
    Rng rng(1);
    SearchResult res = evolutionarySearch(units, 0, 600, rng);
    EXPECT_TRUE(res.selected[0]);
    EXPECT_FALSE(res.selected[1]);
}

TEST(EvoSearch, KnapsackPrefersDenseUnits)
{
    // Budget fits either one heavy unit (value 1.0) or three light
    // units (value 0.5 each): the light set wins.
    std::vector<SearchUnit> units = {
        {"heavy", 1.0, 900},
        {"l1", 0.5, 300},
        {"l2", 0.5, 300},
        {"l3", 0.5, 300},
    };
    Rng rng(5);
    SearchResult res = evolutionarySearch(units, 0, 900, rng);
    EXPECT_NEAR(res.totalContribution, 1.5, 1e-9);
}

TEST(Sensitivity, MeasuresMarginalContributions)
{
    // Fake evaluator: accuracy = 0.5 + sum of planted unit weights.
    std::vector<double> planted = {0.0, 0.2, 0.05};
    auto scheme_of = [](const std::vector<bool> &mask) {
        SparseUpdateScheme s = SparseUpdateScheme::frozen();
        for (size_t i = 0; i < mask.size(); ++i) {
            if (mask[i])
                s.updatePrefix("u" + std::to_string(i) + ".");
        }
        return s;
    };
    auto evaluate = [&](const SparseUpdateScheme &s) {
        double acc = 0.5;
        for (size_t i = 0; i < planted.size(); ++i) {
            if (s.ruleFor("u" + std::to_string(i) + ".weight").update)
                acc += planted[i];
        }
        return acc;
    };
    auto contrib = measureContributions(3, scheme_of, evaluate);
    EXPECT_NEAR(contrib[0], 0.0, 1e-9);
    EXPECT_NEAR(contrib[1], 0.2, 1e-9);
    EXPECT_NEAR(contrib[2], 0.05, 1e-9);
}

TEST(Sensitivity, MemoryCostsAreMarginal)
{
    auto scheme_of = [](const std::vector<bool> &mask) {
        SparseUpdateScheme s = SparseUpdateScheme::frozen();
        for (size_t i = 0; i < mask.size(); ++i) {
            if (mask[i])
                s.updatePrefix("u" + std::to_string(i) + ".");
        }
        return s;
    };
    auto memory_of = [&](const SparseUpdateScheme &s) {
        int64_t mem = 100;
        if (s.ruleFor("u0.weight").update)
            mem += 50;
        if (s.ruleFor("u1.weight").update)
            mem += 300;
        return mem;
    };
    auto costs = measureMemoryCosts(2, scheme_of, memory_of);
    EXPECT_EQ(costs[0], 50);
    EXPECT_EQ(costs[1], 300);
}

// ---- schemes -------------------------------------------------------------

TEST(Schemes, RuleResolutionPrecedence)
{
    SparseUpdateScheme s = SparseUpdateScheme::frozen();
    s.updatePrefix("b3.");
    s.updateBiasPrefix("b2.");
    s.set("b3.conv1.weight", TensorRule{false, 1.0});
    s.updateContaining(".lora.");

    EXPECT_TRUE(s.ruleFor("b3.conv2.weight").update);   // prefix
    EXPECT_FALSE(s.ruleFor("b3.conv1.weight").update);  // exact wins
    EXPECT_TRUE(s.ruleFor("b2.dw.bias").update);        // bias prefix
    EXPECT_FALSE(s.ruleFor("b1.conv1.weight").update);  // default
    EXPECT_TRUE(s.ruleFor("b0.attn.q.lora.a").update);  // contains
}

TEST(Schemes, BiasDetection)
{
    EXPECT_TRUE(isBiasParam("b1.conv1.bias"));
    EXPECT_TRUE(isBiasParam("b1.ln1.beta"));
    EXPECT_FALSE(isBiasParam("b1.conv1.weight"));
    EXPECT_FALSE(isBiasParam("b1.ln1.gamma"));
}

TEST(Schemes, ChannelRatioSetsUpdateChannels)
{
    Graph g;
    g.param({8, 4, 3, 3}, "c.weight", true);
    SparseUpdateScheme s = SparseUpdateScheme::frozen();
    s.set("c.weight", TensorRule{true, 0.5});
    s.apply(g);
    EXPECT_EQ(g.node(0).attrs.getInt("updateChannels", 0), 4);
    EXPECT_TRUE(g.node(0).trainable);
}

} // namespace
} // namespace pe
