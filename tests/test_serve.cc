/**
 * @file
 * Serving-runtime tests (ctest label: serve — the TSan job's focused
 * pass, since concurrent sessions over one shared compiled plan are
 * exactly ThreadSanitizer's bug class).
 *
 * Guarantee layers:
 *  1. BoundedQueue admission semantics: bounded, blocking, bouncing,
 *     drain-on-close.
 *  2. Executor re-entrancy: session contexts from one compiled
 *     program are mutually independent and bit-equal to the classic
 *     single-session API.
 *  3. Engine behavior: shape-bucket routing, pad-to-bucket parity,
 *     session-pool reuse (no growth after warm-up), backpressure
 *     bounds, stats sanity.
 *  4. The acceptance bar: concurrent submission produces bit-identical
 *     outputs to serial runBatch, per request, including a
 *     4-thread x 32-request mixed-shape stress run.
 *  5. Continuous batching: Coalescer policy units, coalesced-run
 *     bit-parity vs independently padded serial runs (fp32 + int8),
 *     group-aware pad-waste reduction for mixed row counts,
 *     deadline-window expiry, coalesceWindowUs=0 reproducing the
 *     per-request path, a 4-worker x 64-request coalescing stress,
 *     and the bounded latency reservoir.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "frontend/builder.h"
#include "serve/coalescer.h"
#include "serve/queue.h"
#include "serve/serving.h"

namespace pe {
namespace {

// ---- BoundedQueue ----------------------------------------------------

TEST(BoundedQueue, TryPushBouncesWhenFull)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)) << "capacity 2 must bounce the third";
    int v = 0;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.tryPush(3)) << "pop must free a slot";
    EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PushBlocksUntilPopFreesASlot)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.tryPush(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(2)); // blocks: queue is full
        pushed = true;
    });
    // The producer must be parked, not spinning past the bound.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    int v = 0;
    ASSERT_TRUE(q.pop(v));
    producer.join();
    EXPECT_TRUE(pushed.load());
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, CloseDrainsQueuedItemsThenStops)
{
    BoundedQueue<int> q(4);
    ASSERT_TRUE(q.tryPush(7));
    ASSERT_TRUE(q.tryPush(8));
    q.close();
    EXPECT_FALSE(q.push(9)) << "closed queue must reject new items";
    int v = 0;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 7);
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 8);
    EXPECT_FALSE(q.pop(v)) << "closed + drained must return false";
}

TEST(BoundedQueue, PopUnblocksOnClose)
{
    BoundedQueue<int> q(4);
    std::atomic<bool> returned{false};
    std::thread consumer([&] {
        int v = 0;
        EXPECT_FALSE(q.pop(v));
        returned = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());
    q.close();
    consumer.join();
    EXPECT_TRUE(returned.load());
}

// ---- Fixtures --------------------------------------------------------

/** The served model family: a small MLP classifier whose parameter
 *  names are batch-independent, so every bucket binds one store. */
ServedModel
mlpModel(int64_t batch, ParamStore *store)
{
    Graph g;
    Rng rng(7);
    NetBuilder b(g, rng, store);
    int x = b.input({batch, 8}, "x");
    int h = b.relu(b.linear(x, 32, "l1"));
    h = b.gelu(b.linear(h, 32, "l2"));
    int logits = b.linear(h, 4, "head");
    return ServedModel{std::move(g), {logits}};
}

Tensor
randomRows(int64_t rows, Rng &rng)
{
    return Tensor::randn({rows, 8}, rng);
}

void
expectBitEqual(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.shape(), b.shape()) << what;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(float) * a.size()),
              0)
        << what << ": values differ";
}

/** Zero-pad @p t's leading dim up to @p batch rows. */
Tensor
padRows(const Tensor &t, int64_t batch)
{
    Shape s = t.shape();
    int64_t rows = s[0];
    s[0] = batch;
    Tensor out = Tensor::zeros(s);
    std::memcpy(out.data(), t.data(),
                sizeof(float) * rows * (t.size() / rows));
    return out;
}

// ---- Executor re-entrancy (session contexts) -------------------------

TEST(ExecContext, SessionsAreIndependentAndMatchClassicApi)
{
    auto store = std::make_shared<ParamStore>();
    ServedModel m = mlpModel(4, store.get());
    CompileOptions opt;
    auto prog = compileInference(m.graph, m.outputs, opt, store);

    Rng r(21);
    Tensor xa = randomRows(4, r);
    Tensor xb = randomRows(4, r);

    // Classic API reference outputs.
    Tensor refA = prog.run({{"x", xa}})[0];
    Tensor refB = prog.run({{"x", xb}})[0];

    // Two session contexts over the same compiled program, driven
    // interleaved: each must see only its own feed.
    Executor &ex = prog.executor();
    auto ca = ex.makeContext();
    auto cb = ex.makeContext();
    int xid = ex.inputId("x");
    ASSERT_GE(xid, 0);
    int out = prog.graph().outputs()[0];

    ex.bindInputById(*ca, xid, xa);
    ex.bindInputById(*cb, xid, xb);
    ex.run(*ca);
    ex.run(*cb);
    expectBitEqual(ex.fetch(*ca, out), refA, "session A");
    expectBitEqual(ex.fetch(*cb, out), refB, "session B");

    // Re-running one session must not disturb the other's arena.
    ex.bindInputById(*ca, xid, xb);
    ex.run(*ca);
    expectBitEqual(ex.fetch(*ca, out), refB, "session A rebound");
    expectBitEqual(ex.fetch(*cb, out), refB, "session B untouched");
}

TEST(ExecContext, BindInputRowsZeroFillsThePad)
{
    auto store = std::make_shared<ParamStore>();
    ServedModel m = mlpModel(4, store.get());
    CompileOptions opt;
    auto prog = compileInference(m.graph, m.outputs, opt, store);
    Executor &ex = prog.executor();

    Rng r(31);
    Tensor x3 = randomRows(3, r);

    // A padded bind must reproduce an explicit zero-padded bind.
    Tensor ref = prog.run({{"x", padRows(x3, 4)}})[0];
    auto ctx = ex.makeContext();
    int xid = ex.inputId("x");
    // Dirty the staging buffer first: the zero-fill must erase it.
    ex.bindInputById(*ctx, xid, randomRows(4, r));
    ex.bindInputRows(*ctx, xid, x3);
    ex.run(*ctx);
    expectBitEqual(ex.fetch(*ctx, prog.graph().outputs()[0]), ref,
                   "padded bind");

    Tensor bad({3, 9});
    EXPECT_THROW(ex.bindInputRows(*ctx, xid, bad), std::runtime_error);
    Tensor tall({5, 8});
    EXPECT_THROW(ex.bindInputRows(*ctx, xid, tall), std::runtime_error);
}

// ---- Shape-bucket routing --------------------------------------------

TEST(Serving, ShapeBucketRouting)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {8, 1, 4, 4}; // unsorted + dup: engine normalizes
    so.workers = 2;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    EXPECT_EQ(engine.bucketFor(1), 1);
    EXPECT_EQ(engine.bucketFor(2), 4);
    EXPECT_EQ(engine.bucketFor(4), 4);
    EXPECT_EQ(engine.bucketFor(5), 8);
    EXPECT_EQ(engine.bucketFor(8), 8);
    EXPECT_EQ(engine.bucketFor(9), -1);

    Rng r(5);
    auto id = engine.submit({{"x", randomRows(3, r)}});
    engine.wait(id);
    ServeStats s = engine.stats();
    ASSERT_EQ(s.buckets.size(), 3u);
    EXPECT_EQ(s.buckets[0].batch, 1);
    EXPECT_EQ(s.buckets[1].batch, 4);
    EXPECT_EQ(s.buckets[2].batch, 8);
    EXPECT_EQ(s.buckets[1].hits, 1) << "3 rows must route to bucket 4";
    EXPECT_EQ(s.buckets[1].paddedRows, 1);
    EXPECT_EQ(s.buckets[0].hits + s.buckets[2].hits, 0);

    // Oversize and malformed submissions are rejected at the door.
    EXPECT_THROW(engine.submit({{"x", randomRows(9, r)}}),
                 std::invalid_argument);
    EXPECT_THROW(engine.submit({{"nope", randomRows(1, r)}}),
                 std::invalid_argument);
    EXPECT_THROW(engine.submit({{"x", Tensor({1, 9})}}),
                 std::invalid_argument);
    EXPECT_THROW(engine.submit({}), std::invalid_argument);

    // Request-id lifecycle: unknown and consumed ids throw.
    EXPECT_THROW(engine.poll(9999), std::out_of_range);
    EXPECT_THROW(engine.wait(id), std::out_of_range)
        << "wait consumes the result";

    // Per-bucket compiled plans are introspectable.
    EXPECT_GT(engine.bucketReport(4).kernelSteps, 0);
    EXPECT_THROW(engine.bucketReport(3), std::invalid_argument);
}

TEST(Serving, PartialFeedSetsAreRejected)
{
    // Sessions are reused across requests, so a request that leaves
    // an input unbound would silently read the previous request's
    // staging bytes — it must be rejected at submit instead.
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {2};
    ServingEngine engine(
        [&](int64_t batch) {
            Graph g;
            Rng rng(1);
            NetBuilder b(g, rng, store.get());
            int x = b.input({batch, 4}, "x");
            int y = b.input({batch, 4}, "y");
            int out = b.add(x, y);
            return ServedModel{std::move(g), {out}};
        },
        store, so);

    Rng r(2);
    Tensor x = Tensor::randn({2, 4}, r);
    Tensor y = Tensor::randn({2, 4}, r);
    EXPECT_THROW(engine.submit({{"x", x}}), std::invalid_argument);
    auto id = engine.submit({{"x", x}, {"y", y}});
    Tensor out = engine.wait(id)[0];
    for (int64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], x[i] + y[i]);
}

// ---- Concurrent parity vs serial runBatch ----------------------------

TEST(Serving, ConcurrentSubmitMatchesSerialRunBatchBitExact)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {16};
    so.workers = 4;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    // Serial reference: the same model compiled the classic way over
    // the same frozen store.
    ServedModel ref = mlpModel(16, store.get());
    CompileOptions opt;
    auto prog = compileInference(ref.graph, ref.outputs, opt, store);

    Rng r(13);
    std::vector<std::unordered_map<std::string, Tensor>> feeds;
    for (int i = 0; i < 12; ++i)
        feeds.push_back({{"x", randomRows(16, r)}});
    auto serial = prog.runBatch(feeds);

    std::vector<ServingEngine::RequestId> ids;
    for (const auto &f : feeds)
        ids.push_back(engine.submit(f));
    for (size_t i = 0; i < ids.size(); ++i) {
        std::vector<Tensor> outs = engine.wait(ids[i]);
        ASSERT_EQ(outs.size(), serial[i].size());
        expectBitEqual(outs[0], serial[i][0],
                       "request " + std::to_string(i));
    }
    EXPECT_EQ(engine.stats().completed, 12);
}

TEST(Serving, PaddedRequestMatchesZeroPaddedSerialRun)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {4};
    so.workers = 2;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    ServedModel ref = mlpModel(4, store.get());
    CompileOptions opt;
    auto prog = compileInference(ref.graph, ref.outputs, opt, store);

    Rng r(17);
    for (int64_t rows = 1; rows <= 4; ++rows) {
        Tensor x = randomRows(rows, r);
        Tensor full = prog.run({{"x", padRows(x, 4)}})[0];
        Shape ss = full.shape();
        ss[0] = rows;
        Tensor expect(ss);
        std::memcpy(expect.data(), full.data(),
                    sizeof(float) * expect.size());

        auto id = engine.submit({{"x", x}});
        std::vector<Tensor> outs = engine.wait(id);
        expectBitEqual(outs[0], expect,
                       "rows=" + std::to_string(rows));
    }
}

TEST(Serving, Fp16BucketsMatchSerialFp16RunBatch)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {8};
    so.workers = 2;
    so.compile.precision = Precision::F16;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    ServedModel ref = mlpModel(8, store.get());
    CompileOptions opt;
    opt.precision = Precision::F16;
    auto prog = compileInference(ref.graph, ref.outputs, opt, store);
    EXPECT_EQ(engine.bucketReport(8).precision, Precision::F16);

    Rng r(23);
    std::vector<std::unordered_map<std::string, Tensor>> feeds;
    for (int i = 0; i < 6; ++i)
        feeds.push_back({{"x", randomRows(8, r)}});
    auto serial = prog.runBatch(feeds);

    std::vector<ServingEngine::RequestId> ids;
    for (const auto &f : feeds)
        ids.push_back(engine.submit(f));
    for (size_t i = 0; i < ids.size(); ++i)
        expectBitEqual(engine.wait(ids[i])[0], serial[i][0],
                       "fp16 request " + std::to_string(i));
}

// ---- Session-pool reuse ----------------------------------------------

TEST(Serving, SessionPoolStopsGrowingAfterWarmup)
{
    // One worker makes warm-up deterministic: after the first burst
    // has touched every bucket, that worker owns one session per
    // bucket and NOTHING may allocate another arena, ever.
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {1, 4};
    so.workers = 1;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    Rng r(29);
    auto burst = [&] {
        std::vector<ServingEngine::RequestId> ids;
        for (int i = 0; i < 40; ++i)
            ids.push_back(
                engine.submit({{"x", randomRows(1 + i % 4, r)}}));
        for (auto id : ids)
            engine.wait(id);
    };
    burst();
    EXPECT_EQ(engine.stats().sessionsCreated, 2)
        << "one session per (worker, bucket) pair";
    burst();
    EXPECT_EQ(engine.stats().sessionsCreated, 2)
        << "no arena growth after warm-up";
}

TEST(Serving, SessionPoolIsBoundedByWorkersTimesBuckets)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {1, 4};
    so.workers = 4;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    Rng r(37);
    for (int burst = 0; burst < 3; ++burst) {
        std::vector<ServingEngine::RequestId> ids;
        for (int i = 0; i < 32; ++i)
            ids.push_back(
                engine.submit({{"x", randomRows(1 + i % 4, r)}}));
        for (auto id : ids)
            engine.wait(id);
        EXPECT_LE(engine.stats().sessionsCreated, 4 * 2)
            << "session pool exceeded workers x buckets";
    }
}

// ---- Backpressure ----------------------------------------------------

TEST(Serving, BoundedQueueBoundsDepthUnderConcurrentSubmit)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {2};
    so.workers = 1;
    so.queueCapacity = 2;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    constexpr int kThreads = 3, kPer = 10;
    std::vector<std::vector<ServingEngine::RequestId>> ids(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng r(100 + t);
            for (int i = 0; i < kPer; ++i)
                ids[t].push_back(
                    engine.submit({{"x", randomRows(2, r)}}));
        });
    }
    for (auto &t : threads)
        t.join();
    for (auto &row : ids)
        for (auto id : row)
            EXPECT_EQ(engine.wait(id).size(), 1u);

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, kThreads * kPer);
    EXPECT_EQ(s.rejected, 0) << "blocking submit never bounces";
    EXPECT_LE(s.maxQueueDepth, 2)
        << "admission queue exceeded its bound";
    EXPECT_GT(s.throughputRps, 0.0);
    EXPECT_LE(s.p50LatencyUs, s.p99LatencyUs);
}

// ---- Stress: 4 submitter threads x 32 requests, mixed shapes ---------

TEST(Serving, StressFourThreadsThirtyTwoRequestsEachBitExact)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {2, 5};
    so.workers = 4;
    so.queueCapacity = 16;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    // Serial reference programs, one per bucket, over the same store.
    CompileOptions opt;
    ServedModel m2 = mlpModel(2, store.get());
    ServedModel m5 = mlpModel(5, store.get());
    auto prog2 = compileInference(m2.graph, m2.outputs, opt, store);
    auto prog5 = compileInference(m5.graph, m5.outputs, opt, store);

    constexpr int kThreads = 4, kPer = 32;
    struct Sent {
        Tensor x;
        ServingEngine::RequestId id;
    };
    std::vector<std::vector<Sent>> sent(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng r(1000 + t);
            for (int i = 0; i < kPer; ++i) {
                int64_t rows =
                    1 + static_cast<int64_t>(r.randint(5)); // 1..5
                Tensor x = randomRows(rows, r);
                auto id = engine.submit({{"x", x.clone()}});
                sent[t].push_back({std::move(x), id});
            }
        });
    }
    for (auto &t : threads)
        t.join();

    for (int t = 0; t < kThreads; ++t) {
        for (size_t i = 0; i < sent[t].size(); ++i) {
            const Sent &req = sent[t][i];
            int64_t rows = req.x.shape()[0];
            int64_t bucket = rows <= 2 ? 2 : 5;
            InferenceProgram &prog = bucket == 2 ? prog2 : prog5;
            Tensor full =
                prog.run({{"x", padRows(req.x, bucket)}})[0];
            Shape ss = full.shape();
            ss[0] = rows;
            Tensor expect(ss);
            std::memcpy(expect.data(), full.data(),
                        sizeof(float) * expect.size());
            std::vector<Tensor> outs = engine.wait(req.id);
            expectBitEqual(outs[0], expect,
                           "thread " + std::to_string(t) +
                               " request " + std::to_string(i));
        }
    }
    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, kThreads * kPer);
    EXPECT_EQ(s.queueDepth, 0);
    int64_t hits = 0;
    for (const auto &b : s.buckets)
        hits += b.hits;
    EXPECT_EQ(hits, kThreads * kPer);
    EXPECT_FALSE(s.summary().empty());
}

// ---- Coalescer policy (no threads, no plans) -------------------------

TEST(Coalescer, NormalizesBucketsAndRoutesSmallestFit)
{
    Coalescer c({8, 1, 4, 4, 0, -2}, 100);
    ASSERT_EQ(c.batches(), (std::vector<int64_t>{1, 4, 8}));
    EXPECT_TRUE(c.enabled());
    EXPECT_EQ(c.maxBatch(), 8);

    EXPECT_EQ(c.routeSingle(1), 0);
    EXPECT_EQ(c.routeSingle(2), 1);
    EXPECT_EQ(c.routeSingle(4), 1);
    EXPECT_EQ(c.routeSingle(5), 2);
    EXPECT_EQ(c.routeSingle(8), 2);
    EXPECT_EQ(c.routeSingle(9), -1);
    EXPECT_EQ(c.routeSingle(0), -1);

    // Group routing follows the same smallest-fit rule on the total.
    EXPECT_EQ(c.routeGroup(4), 1);
    EXPECT_EQ(c.routeGroup(6), 2);
}

TEST(Coalescer, AdmitsWhileTheGroupFitsTheLargestBucket)
{
    Coalescer c({1, 4, 8}, 100);
    EXPECT_TRUE(c.admits({1}, {1}));
    EXPECT_TRUE(c.admits({3}, {5})) << "3+5 exactly fills bucket 8";
    EXPECT_FALSE(c.admits({7}, {2})) << "7+2 exceeds every bucket";
    EXPECT_FALSE(c.admits({3}, {0})) << "zero-row requests never join";
    EXPECT_FALSE(c.full(7));
    EXPECT_TRUE(c.full(8));

    // Group pad waste: smallest bucket fitting the packed total.
    EXPECT_EQ(c.padRows(4), 0);
    EXPECT_EQ(c.padRows(5), 3);
    EXPECT_EQ(c.padRows(9), -1);
}

TEST(Coalescer, WindowZeroOrNegativeDisables)
{
    EXPECT_FALSE(Coalescer({1, 4}, 0).enabled());
    EXPECT_FALSE(Coalescer({1, 4}, -5).enabled());
    EXPECT_EQ(Coalescer({1, 4}, -5).windowUs(), 0);
    EXPECT_TRUE(Coalescer({1, 4}, 1).enabled());
}

TEST(BoundedQueue, PopUntilTimesOutAndDelivers)
{
    BoundedQueue<int> q(4);
    auto t0 = std::chrono::steady_clock::now();
    int v = 0;
    EXPECT_FALSE(q.popUntil(
        v, t0 + std::chrono::milliseconds(20)));
    EXPECT_GE(std::chrono::steady_clock::now() - t0,
              std::chrono::milliseconds(20));

    ASSERT_TRUE(q.tryPush(42));
    EXPECT_TRUE(q.popUntil(v, std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(20)));
    EXPECT_EQ(v, 42);

    q.close();
    EXPECT_FALSE(q.popUntil(v, std::chrono::steady_clock::now() +
                                   std::chrono::hours(1)))
        << "closed + drained must not wait out the deadline";
}

// ---- Continuous batching (coalesced runs) ----------------------------

/** A window long enough that requests submitted microseconds apart
 *  always land in one group, short enough that a hung test fails
 *  fast. */
constexpr int64_t kTestWindowUs = 400000; // 400 ms

TEST(Coalescing, BurstOfSinglesSharesRunsBitExactFp32)
{
    auto store = std::make_shared<ParamStore>();
    auto factory = [&](int64_t b) { return mlpModel(b, store.get()); };

    ServeOptions ref;
    ref.buckets = {1, 4, 8};
    ref.workers = 1; // coalesceWindowUs = 0: the per-request path
    ServingEngine solo(factory, store, ref);

    ServeOptions co = ref;
    co.coalesceWindowUs = kTestWindowUs;
    ServingEngine engine(factory, store, co);

    Rng r(41);
    std::vector<Tensor> xs;
    for (int i = 0; i < 8; ++i)
        xs.push_back(randomRows(1, r));

    // Reference outputs through the per-request engine (itself
    // bit-identical to serial padded runs — proven above).
    std::vector<Tensor> want;
    for (const Tensor &x : xs)
        want.push_back(solo.wait(solo.submit({{"x", x}}))[0]);

    std::vector<ServingEngine::RequestId> ids;
    for (const Tensor &x : xs)
        ids.push_back(engine.submit({{"x", x}}));
    for (size_t i = 0; i < ids.size(); ++i)
        expectBitEqual(engine.wait(ids[i])[0], want[i],
                       "coalesced single " + std::to_string(i));

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, 8);
    EXPECT_LT(s.runs, s.completed)
        << "a burst of singles must share bucket runs";
    EXPECT_GE(s.coalescedRuns, 1);
    EXPECT_GT(s.coalescedRequests, s.coalescedRuns);
    EXPECT_GT(s.coalesceRate, 0.0);
    ServeStats solo_s = solo.stats();
    EXPECT_EQ(solo_s.runs, solo_s.completed)
        << "window 0 must run every request alone";
    EXPECT_EQ(solo_s.coalescedRuns, 0);
}

TEST(Coalescing, Int8GroupMatchesIndependentPaddedRuns)
{
    auto store = std::make_shared<ParamStore>();
    auto factory = [&](int64_t b) { return mlpModel(b, store.get()); };

    ServeOptions ref;
    ref.buckets = {4};
    ref.workers = 1;
    ref.compile.precision = Precision::Int8;
    {
        Rng crng(53);
        for (int i = 0; i < 2; ++i)
            ref.calibration.push_back({{"x", randomRows(4, crng)}});
    }
    ServingEngine solo(factory, store, ref);

    ServeOptions co = ref;
    co.coalesceWindowUs = kTestWindowUs;
    ServingEngine engine(factory, store, co);
    EXPECT_EQ(engine.bucketReport(4).precision, Precision::Int8);

    Rng r(59);
    std::vector<Tensor> xs;
    for (int i = 0; i < 4; ++i)
        xs.push_back(randomRows(1 + i % 2, r));

    std::vector<Tensor> want;
    for (const Tensor &x : xs)
        want.push_back(solo.wait(solo.submit({{"x", x}}))[0]);

    std::vector<ServingEngine::RequestId> ids;
    for (const Tensor &x : xs)
        ids.push_back(engine.submit({{"x", x}}));
    for (size_t i = 0; i < ids.size(); ++i)
        expectBitEqual(engine.wait(ids[i])[0], want[i],
                       "int8 coalesced " + std::to_string(i));

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, 4);
    EXPECT_LT(s.runs, s.completed)
        << "int8 groups must share bucket runs too";
}

TEST(Coalescing, MixedRowGroupSharesOneBucketRunAndDropsPadWaste)
{
    // Satellite: a 3-row request next to a 1-row request must share
    // one bucket-4 run (0 pad rows) instead of a padded bucket-4 run
    // plus a bucket-1 run (1 pad row) — group-aware bucket selection
    // covers multi-row requests, not just singles.
    auto store = std::make_shared<ParamStore>();
    auto factory = [&](int64_t b) { return mlpModel(b, store.get()); };

    ServeOptions ref;
    ref.buckets = {1, 4};
    ref.workers = 1;
    ServingEngine solo(factory, store, ref);

    ServeOptions co = ref;
    co.coalesceWindowUs = kTestWindowUs;
    ServingEngine engine(factory, store, co);

    Rng r(61);
    Tensor x3 = randomRows(3, r);
    Tensor x1 = randomRows(1, r);

    Tensor want3 = solo.wait(solo.submit({{"x", x3}}))[0];
    Tensor want1 = solo.wait(solo.submit({{"x", x1}}))[0];
    ServeStats solo_s = solo.stats();
    EXPECT_EQ(solo_s.runs, 2);
    int64_t soloPad = 0;
    for (const auto &b : solo_s.buckets)
        soloPad += b.paddedRows;
    EXPECT_EQ(soloPad, 1) << "per-request routing pads 3 -> 4";

    auto id3 = engine.submit({{"x", x3}});
    auto id1 = engine.submit({{"x", x1}});
    expectBitEqual(engine.wait(id3)[0], want3, "3-row member");
    expectBitEqual(engine.wait(id1)[0], want1, "1-row member");

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, 2);
    EXPECT_EQ(s.runs, 1) << "3+1 rows must share one bucket-4 run";
    EXPECT_EQ(s.coalescedRuns, 1);
    EXPECT_EQ(s.coalescedRequests, 2);
    int64_t pad = 0;
    for (const auto &b : s.buckets)
        pad += b.paddedRows;
    EXPECT_EQ(pad, 0) << "the packed group exactly fills bucket 4";
    EXPECT_LT(pad, soloPad)
        << "group-aware routing must beat per-request pad waste";
    ASSERT_EQ(s.buckets.size(), 2u);
    EXPECT_EQ(s.buckets[1].batch, 4);
    EXPECT_EQ(s.buckets[1].hits, 2)
        << "both members served by the bucket-4 plan";
    EXPECT_EQ(s.buckets[1].runs, 1);
}

TEST(Coalescing, DeadlineExpirySendsALoneRequestOutAlone)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {1, 4};
    so.workers = 1;
    so.coalesceWindowUs = 5000; // 5 ms: expires fast, still real
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    Rng r(67);
    Tensor x = randomRows(1, r);
    auto t0 = std::chrono::steady_clock::now();
    Tensor out = engine.wait(engine.submit({{"x", x}}))[0];
    EXPECT_EQ(out.shape()[0], 1);
    EXPECT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(5))
        << "a lone request must not wait past the window";

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, 1);
    EXPECT_EQ(s.runs, 1);
    EXPECT_EQ(s.coalescedRuns, 0);
    EXPECT_EQ(s.coalescedRequests, 0);
    ASSERT_EQ(s.buckets.size(), 2u);
    EXPECT_EQ(s.buckets[0].batch, 1);
    EXPECT_EQ(s.buckets[0].hits, 1)
        << "an expired window must fall back to per-request routing";
    EXPECT_EQ(s.buckets[0].paddedRows, 0);
}

TEST(Coalescing, WindowZeroReproducesPerRequestServingExactly)
{
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {2, 5};
    so.workers = 2;
    so.coalesceWindowUs = 0;
    ServingEngine engine(
        [&](int64_t b) { return mlpModel(b, store.get()); }, store, so);

    CompileOptions opt;
    ServedModel m2 = mlpModel(2, store.get());
    ServedModel m5 = mlpModel(5, store.get());
    auto prog2 = compileInference(m2.graph, m2.outputs, opt, store);
    auto prog5 = compileInference(m5.graph, m5.outputs, opt, store);

    Rng r(71);
    int64_t wantPad = 0;
    for (int i = 0; i < 12; ++i) {
        int64_t rows = 1 + i % 5;
        int64_t bucket = rows <= 2 ? 2 : 5;
        wantPad += bucket - rows;
        Tensor x = randomRows(rows, r);
        InferenceProgram &prog = bucket == 2 ? prog2 : prog5;
        Tensor full = prog.run({{"x", padRows(x, bucket)}})[0];
        Shape ss = full.shape();
        ss[0] = rows;
        Tensor expect(ss);
        std::memcpy(expect.data(), full.data(),
                    sizeof(float) * expect.size());
        expectBitEqual(engine.wait(engine.submit({{"x", x}}))[0],
                       expect, "window-0 request " + std::to_string(i));
    }

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, 12);
    EXPECT_EQ(s.runs, 12) << "window 0: one run per request, always";
    EXPECT_EQ(s.coalescedRuns, 0);
    EXPECT_EQ(s.coalescedRequests, 0);
    EXPECT_EQ(s.coalesceRate, 0.0);
    int64_t pad = 0, hits = 0;
    for (const auto &b : s.buckets) {
        pad += b.paddedRows;
        hits += b.hits;
        EXPECT_EQ(b.hits, b.runs) << "per-request: hits == runs";
    }
    EXPECT_EQ(pad, wantPad) << "exact per-request pad accounting";
    EXPECT_EQ(hits, 12);
}

TEST(Coalescing, StressFourWorkersSixtyFourMixedRequestsBitExact)
{
    // The acceptance stress: 4 workers x 64 mixed-shape requests with
    // coalescing ON, bit-exact per request vs the per-request engine
    // (TSan vets this same test in CI's -L serve pass).
    auto store = std::make_shared<ParamStore>();
    auto factory = [&](int64_t b) { return mlpModel(b, store.get()); };

    ServeOptions ref;
    ref.buckets = {2, 5};
    ref.workers = 4;
    ref.queueCapacity = 64;
    ServingEngine solo(factory, store, ref);

    ServeOptions co = ref;
    co.coalesceWindowUs = 2000; // short: stress scheduling, not time
    ServingEngine engine(factory, store, co);

    constexpr int kThreads = 4, kPer = 16;
    struct Sent {
        Tensor x;
        ServingEngine::RequestId id;
    };
    std::vector<std::vector<Sent>> sent(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng r(2000 + t);
            for (int i = 0; i < kPer; ++i) {
                int64_t rows =
                    1 + static_cast<int64_t>(r.randint(5)); // 1..5
                Tensor x = randomRows(rows, r);
                auto id = engine.submit({{"x", x.clone()}});
                sent[t].push_back({std::move(x), id});
            }
        });
    }
    for (auto &t : threads)
        t.join();

    for (int t = 0; t < kThreads; ++t) {
        for (size_t i = 0; i < sent[t].size(); ++i) {
            const Sent &req = sent[t][i];
            Tensor want =
                solo.wait(solo.submit({{"x", req.x}}))[0];
            expectBitEqual(engine.wait(req.id)[0], want,
                           "stress thread " + std::to_string(t) +
                               " request " + std::to_string(i));
        }
    }

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, kThreads * kPer);
    EXPECT_EQ(s.failed, 0);
    EXPECT_LE(s.runs, s.completed)
        << "coalescing must never run MORE than per-request";
    int64_t hits = 0;
    for (const auto &b : s.buckets)
        hits += b.hits;
    EXPECT_EQ(hits, kThreads * kPer)
        << "every request is served by exactly one bucket plan";
    EXPECT_EQ(s.coalescedRequests >= 2 * s.coalescedRuns,
              s.coalescedRuns >= 0);
    EXPECT_FALSE(s.summary().empty());
}

// ---- Bounded latency reservoir ---------------------------------------

TEST(LatencyRing, HoldsAtMostCapacityMostRecentSamples)
{
    LatencyRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (int i = 0; i < 10; ++i)
        ring.add(static_cast<double>(i));
    EXPECT_EQ(ring.size(), 4u) << "ring must not grow past capacity";
    std::vector<double> got = ring.snapshot();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<double>{6, 7, 8, 9}))
        << "overwrites must evict the OLDEST samples";
}

TEST(Serving, LatencyReservoirStaysBoundedUnderSustainedTraffic)
{
    // Satellite: the per-request latency window must be O(1) in
    // memory no matter how many requests the engine serves (the old
    // deque grew per request under sustained traffic).
    auto store = std::make_shared<ParamStore>();
    ServeOptions so;
    so.buckets = {4};
    so.workers = 2;
    so.queueCapacity = 256;
    so.coalesceWindowUs = 200; // keep the 10k burst fast
    ServingEngine engine(
        [&](int64_t batch) {
            Graph g;
            Rng rng(1);
            NetBuilder b(g, rng, store.get());
            int x = b.input({batch, 4}, "x");
            int out = b.linear(x, 2, "w");
            return ServedModel{std::move(g), {out}};
        },
        store, so);

    constexpr int kTotal = 10000, kChunk = 250;
    Rng r(73);
    Tensor x = Tensor::randn({1, 4}, r);
    for (int done = 0; done < kTotal; done += kChunk) {
        std::vector<ServingEngine::RequestId> ids;
        ids.reserve(kChunk);
        for (int i = 0; i < kChunk; ++i)
            ids.push_back(engine.submit({{"x", x}}));
        for (auto id : ids)
            engine.wait(id);
    }

    ServeStats s = engine.stats();
    EXPECT_EQ(s.completed, kTotal);
    EXPECT_LE(s.latencySamples,
              static_cast<int64_t>(
                  ServingEngine::kLatencyReservoirCap))
        << "latency memory must stay bounded after 10k requests";
    EXPECT_GT(s.latencySamples, 0);
    EXPECT_GT(s.p50LatencyUs, 0.0);
    EXPECT_GE(s.p99LatencyUs, s.p50LatencyUs)
        << "percentiles must stay stable over the sliding window";
}

} // namespace
} // namespace pe
