/**
 * @file
 * Arena v2 tests: workspace-aware memory planning and per-shard
 * kernel workspaces.
 *
 *  1. Planner properties: no two simultaneously-live placements —
 *     values OR workspaces — overlap in the arena; in-place aliases
 *     consume no arena; plans are deterministic across repeated
 *     compiles; the live-bytes timeline is consistent.
 *  2. Executor integration: scratch-bearing kernels (Winograd conv,
 *     blocked GEMM, im2col conv) produce multi-shard launch plans at
 *     numThreads=4 whose outputs match the 1-thread run bit for bit,
 *     and the serialized-by-scratch count of the pre-Arena-v2
 *     executor rule stays zero.
 *  3. Report: CompileReport::workspaceBytes is nonzero whenever a
 *     scratch-bearing variant is bound, and the footprint includes
 *     it.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "frontend/builder.h"
#include "frontend/models.h"
#include "passes/passes.h"
#include "runtime/executor.h"
#include "runtime/planner.h"
#include "testutil.h"

namespace pe {
namespace {

/** [offset, offset+bytes) intervals overlap? */
bool
bytesOverlap(int64_t ao, int64_t ab, int64_t bo, int64_t bb)
{
    return ao < bo + bb && bo < ao + ab;
}

/**
 * Every pair of simultaneously-live arena placements must occupy
 * disjoint byte ranges. Checks value-vs-value, value-vs-workspace,
 * workspace-vs-workspace (including the per-shard instances), and
 * persistent shared regions against everything.
 */
void
expectNoLiveOverlap(const Graph &g, const std::vector<int> &order,
                    const MemoryPlan &plan)
{
    struct Interval {
        int64_t off, bytes;
        int from, to; ///< inclusive live range in order positions
        const char *what;
    };
    std::vector<Interval> iv;
    for (int id = 0; id < g.numNodes(); ++id) {
        const ValuePlacement &v = plan.values[id];
        if (v.storage != Storage::Arena || v.defPos < 0)
            continue;
        iv.push_back({v.offset, v.bytes, v.defPos, v.lastUsePos,
                      "value"});
    }
    int last = static_cast<int>(order.size());
    for (const WorkspacePlacement &w : plan.workspaces) {
        for (int s = 0; s < w.shards; ++s) {
            if (w.bytesPerShard > 0)
                iv.push_back({w.shardOffset(s), w.bytesPerShard,
                              w.stepPos, w.stepPos, "workspace"});
        }
        if (w.sharedBytes > 0)
            iv.push_back({w.sharedOffset, w.sharedBytes, 0, last,
                          "shared"});
    }
    for (size_t i = 0; i < iv.size(); ++i) {
        for (size_t j = i + 1; j < iv.size(); ++j) {
            bool lives = iv[i].from <= iv[j].to &&
                         iv[j].from <= iv[i].to;
            if (!lives)
                continue;
            ASSERT_FALSE(bytesOverlap(iv[i].off, iv[i].bytes,
                                      iv[j].off, iv[j].bytes))
                << iv[i].what << " [" << iv[i].off << ", +"
                << iv[i].bytes << ") overlaps " << iv[j].what << " ["
                << iv[j].off << ", +" << iv[j].bytes << ")";
        }
    }
}

/**
 * A small net with Winograd-eligible convs (3x3, stride 1) and a
 * linear head. Under a frozen-backbone scheme (or inference) the
 * convs bind the "winograd" variant with its cached-transform shared
 * region. Deterministic: same call -> same graph and weights.
 */
struct WinoNet {
    Graph g;
    int x = -1, logits = -1, loss = -1;
    std::shared_ptr<ParamStore> store;
};

WinoNet
winoNet(int64_t batch = 2)
{
    WinoNet n;
    n.store = std::make_shared<ParamStore>();
    Rng rng(13);
    NetBuilder b(n.g, rng, n.store.get());
    n.x = b.input({batch, 4, 12, 12}, "x");
    int h = b.relu(b.conv2d(n.x, 8, 3, 1, 1, "c1"));
    h = b.relu(b.conv2d(h, 8, 3, 1, 1, "c2"));
    h = b.globalAvgPool(h);
    h = b.reshape(h, {batch, 8});
    n.logits = b.linear(h, 4, "head");
    int y = b.input({batch}, "y");
    n.loss = b.crossEntropy(n.logits, y);
    return n;
}

/** Backbone frozen, head training: convs bind Winograd. */
SparseUpdateScheme
headOnlyScheme()
{
    SparseUpdateScheme s = SparseUpdateScheme::frozen();
    s.updatePrefix("head.");
    s.updateBiasPrefix("head.");
    return s;
}

TEST(ArenaPlan, WorkspacesNeverOverlapLiveValues)
{
    WinoNet n = winoNet(4);
    CompileOptions opt;
    opt.numThreads = 4;
    CompiledGraph c =
        compileGraphOnly(n.g, n.loss, headOnlyScheme(), opt);
    LaunchSummary launches =
        planLaunches(c.graph, c.order, c.variants, 4);
    ASSERT_FALSE(launches.workspaces.empty())
        << "frozen 3x3 convs should bind the Winograd variant";
    MemoryPlan plan = planMemory(c.graph, c.order, launches.workspaces);
    expectNoLiveOverlap(c.graph, c.order, plan);
}

TEST(ArenaPlan, SparseSchemeWinogradWorkspacesDontOverlap)
{
    WinoNet n = winoNet(2);
    CompileOptions opt;
    opt.numThreads = 4;
    CompiledGraph c =
        compileGraphOnly(n.g, n.loss, headOnlyScheme(), opt);
    LaunchSummary launches =
        planLaunches(c.graph, c.order, c.variants, 4);
    MemoryPlan plan = planMemory(c.graph, c.order, launches.workspaces);
    expectNoLiveOverlap(c.graph, c.order, plan);
    // Frozen layers bind Winograd -> a persistent shared region.
    bool has_shared = false;
    for (const WorkspacePlacement &w : plan.workspaces)
        has_shared |= w.sharedBytes > 0;
    EXPECT_TRUE(has_shared)
        << "frozen convs should carry a cached-transform region";
}

TEST(ArenaPlan, InPlaceAliasesConsumeNoArena)
{
    Graph g;
    int w = g.param({64}, "w", true);
    int grad = g.input({64}, "g");
    Attrs a;
    a.set("lr", 0.1);
    int apply = g.add(OpKind::ApplySgd, {w, grad}, std::move(a));
    g.markOutput(apply);
    MemoryPlan plan = planMemory(g, naturalOrder(g));
    EXPECT_EQ(plan.values[apply].storage, Storage::Alias);
    EXPECT_EQ(plan.arenaBytes, 0);
}

TEST(ArenaPlan, ValueSpaceIsReusedAcrossSteps)
{
    // A long relu chain: buffers die one step after definition, so
    // the arena must stay at ~2 live buffers regardless of depth.
    Graph g;
    int x = g.input({64}, "x");
    int h = x;
    for (int i = 0; i < 30; ++i)
        h = g.add(OpKind::Relu, {h});
    g.markOutput(h);
    MemoryPlan plan = planMemory(g, naturalOrder(g));
    EXPECT_LE(plan.arenaBytes, 2 * 64 * 4 + 128);
    // Timeline: one position per scheduled node, peak consistent.
    EXPECT_EQ(plan.liveBytesAtStep.size(), naturalOrder(g).size());
    EXPECT_LE(plan.peakLiveBytes, plan.arenaBytes);
}

TEST(ArenaPlan, WorkspaceSpaceIsReusedAcrossSteps)
{
    // Two identical conv steps with workspaces, far apart in the
    // chain: best-fit must reuse the first workspace's bytes for the
    // second (their lifetimes are disjoint), so the arena grows by
    // at most one workspace block.
    Graph g;
    int x = g.input({1, 4, 8, 8}, "x");
    int w1 = g.param({4, 4, 3, 3}, "w1", false);
    int w2 = g.param({4, 4, 3, 3}, "w2", false);
    Attrs a1, a2;
    a1.set("stride", static_cast<int64_t>(1));
    a1.set("pad", static_cast<int64_t>(1));
    a2 = a1;
    int c1 = g.add(OpKind::Conv2d, {x, w1}, std::move(a1));
    int c2 = g.add(OpKind::Conv2d, {c1, w2}, std::move(a2));
    g.markOutput(c2);
    std::vector<int> order = naturalOrder(g);
    std::vector<std::string> variants(g.numNodes());
    variants[c1] = "im2col";
    variants[c2] = "im2col";
    LaunchSummary launches = planLaunches(g, order, variants, 1);
    ASSERT_EQ(launches.workspaces.size(), 2u);
    MemoryPlan plan = planMemory(g, order, launches.workspaces);
    expectNoLiveOverlap(g, order, plan);
    ASSERT_EQ(plan.workspaces.size(), 2u);
    // Same declared size, disjoint lifetimes -> same arena bytes as
    // a single instance (best-fit reuse), and identical offsets.
    EXPECT_EQ(plan.workspaces[0].offset, plan.workspaces[1].offset)
        << "disjoint-lifetime workspaces should recycle the same "
           "arena block";
    EXPECT_EQ(plan.workspaceBytes,
              (plan.workspaces[0].bytesPerShard + 63) & ~63LL);
}

TEST(ArenaPlan, PlanIsDeterministicAcrossCompiles)
{
    for (int round = 0; round < 2; ++round) {
        WinoNet n1 = winoNet(2);
        WinoNet n2 = winoNet(2);
        CompileOptions opt;
        opt.numThreads = 4;
        CompiledGraph a =
            compileGraphOnly(n1.g, n1.loss, headOnlyScheme(), opt);
        CompiledGraph b =
            compileGraphOnly(n2.g, n2.loss, headOnlyScheme(), opt);
        ASSERT_EQ(a.order, b.order);
        ASSERT_EQ(a.variants, b.variants);
        EXPECT_EQ(a.report.arenaBytes, b.report.arenaBytes);
        EXPECT_EQ(a.report.workspaceBytes, b.report.workspaceBytes);
        EXPECT_EQ(a.report.memoryTimeline, b.report.memoryTimeline);
        MemoryPlan pa = planMemory(
            a.graph, a.order,
            planLaunches(a.graph, a.order, a.variants, 4).workspaces);
        MemoryPlan pb = planMemory(
            b.graph, b.order,
            planLaunches(b.graph, b.order, b.variants, 4).workspaces);
        ASSERT_EQ(pa.values.size(), pb.values.size());
        for (size_t i = 0; i < pa.values.size(); ++i) {
            EXPECT_EQ(pa.values[i].offset, pb.values[i].offset);
            EXPECT_EQ(pa.values[i].bytes, pb.values[i].bytes);
        }
        ASSERT_EQ(pa.workspaces.size(), pb.workspaces.size());
        for (size_t i = 0; i < pa.workspaces.size(); ++i) {
            EXPECT_EQ(pa.workspaces[i].offset, pb.workspaces[i].offset);
            EXPECT_EQ(pa.workspaces[i].sharedOffset,
                      pb.workspaces[i].sharedOffset);
        }
    }
}

TEST(ArenaPlan, DtypeTagsSizePlacements)
{
    Graph g;
    int x = g.input({8, 8}, "x");
    int h = g.add(OpKind::Relu, {x});
    g.markOutput(h);
    MemoryPlan plan = planMemory(g, naturalOrder(g));
    EXPECT_EQ(plan.values[h].dtype, DType::F32);
    EXPECT_EQ(plan.values[h].bytes,
              numel(g.node(h).shape) * dtypeSize(DType::F32));
}

// ---- Executor integration -------------------------------------------

TEST(ArenaExec, WinogradShardsAndMatchesSerialBitForBit)
{
    // compileInference freezes every param -> all 3x3 stride-1 convs
    // bind the Winograd variant with a shared transform cache.
    std::unordered_map<std::string, Tensor> feeds;
    {
        Rng r(5);
        feeds["x"] = Tensor::randn({4, 4, 12, 12}, r);
    }
    auto run = [&](int nt) {
        WinoNet fresh = winoNet(4); // same seed -> same weights
        CompileOptions opt;
        opt.numThreads = nt;
        auto prog = compileInference(fresh.g, {fresh.logits}, opt,
                                     fresh.store);
        Tensor out = prog.run(feeds)[0];
        return std::make_pair(std::move(out),
                              prog.executor().shardedSteps());
    };
    auto [serial, sharded1] = run(1);
    auto [parallel, shardedN] = run(4);
    EXPECT_EQ(sharded1, 0);
    EXPECT_GT(shardedN, 0);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          sizeof(float) * serial.size()),
              0)
        << "multi-thread launch plan diverged from serial execution";
}

TEST(ArenaExec, WinogradStepActuallySharded)
{
    WinoNet n = winoNet(4);
    CompileOptions opt;
    opt.numThreads = 4;
    auto prog = compileInference(n.g, {n.logits}, opt, n.store);
    Executor &ex = prog.executor();
    // Some bound step must be a sharded Winograd conv with a planned
    // workspace: find it via the memory plan.
    const MemoryPlan &plan = ex.memoryPlan();
    bool sharded_scratch_step = false;
    for (const WorkspacePlacement &w : plan.workspaces)
        sharded_scratch_step |= w.shards > 1;
    EXPECT_TRUE(sharded_scratch_step)
        << "no scratch-bearing kernel produced a multi-shard launch "
           "plan at numThreads=4";
    EXPECT_EQ(ex.serializedByWorkspace(), 0)
        << "Arena v2 must not serialize kernels for carrying scratch";
}

TEST(ArenaExec, BlockedGemmShardsWithWorkspaceAndMatchesSerial)
{
    // A GEMM big enough for the "blocked" variant (numel >= 64^2),
    // run through compiled training so the workspace-bearing kernel
    // executes inside the arena at both thread counts.
    auto traj = [&](int nt) {
        Graph g;
        Rng rng(7);
        auto store = std::make_shared<ParamStore>();
        NetBuilder b(g, rng, store.get());
        int x = b.input({64, 64}, "x");
        int h = b.relu(b.linear(x, 128, "fc1"));
        int logits = b.linear(h, 64, "head");
        int y = b.input({64}, "y");
        int loss = b.crossEntropy(logits, y);
        CompileOptions opt;
        opt.optim = OptimConfig::sgd(0.05);
        opt.numThreads = nt;
        auto prog = compileTraining(g, loss, SparseUpdateScheme::full(),
                                    opt, store);
        EXPECT_GT(prog.report().workspaceBytes, 0)
            << "blocked GEMM should declare a packing workspace";
        EXPECT_EQ(prog.report().serializedByWorkspace, 0);
        if (nt > 1)
            EXPECT_GT(prog.report().shardedSteps, 0);
        Rng r(11);
        std::vector<float> losses;
        for (int s = 0; s < 5; ++s) {
            Tensor tx = Tensor::randn({64, 64}, r);
            Tensor ty({64});
            for (int i = 0; i < 64; ++i)
                ty[i] = static_cast<float>(i % 64);
            losses.push_back(prog.trainStep({{"x", tx}, {"y", ty}}));
        }
        return losses;
    };
    std::vector<float> serial = traj(1);
    std::vector<float> parallel = traj(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(std::memcmp(&serial[i], &parallel[i], sizeof(float)),
                  0)
            << "loss diverged at step " << i;
    }
}

TEST(ArenaExec, Im2colVariantShardsPerImage)
{
    Graph g;
    int x = g.input({4, 3, 10, 10}, "x");
    int w = g.param({8, 3, 3, 3}, "w", false);
    Attrs a;
    a.set("stride", static_cast<int64_t>(1));
    a.set("pad", static_cast<int64_t>(1));
    int conv = g.add(OpKind::Conv2d, {x, w}, std::move(a));
    g.markOutput(conv);

    Rng rng(9);
    Tensor tx = Tensor::randn({4, 3, 10, 10}, rng);

    auto run = [&](int nt, const std::string &variant) {
        ParamStore store;
        Rng wr(4);
        store.set("w", Tensor::randn({8, 3, 3, 3}, wr, 0.3f));
        store.materialize(g);
        ExecOptions eo;
        eo.variants.assign(g.numNodes(), "");
        eo.variants[conv] = variant;
        eo.numThreads = nt;
        Executor ex(g, naturalOrder(g), store, eo);
        ex.bindInput("x", tx);
        ex.run();
        return std::make_pair(ex.fetch(conv), ex.shardedSteps());
    };
    auto [naive, s0] = run(1, "");
    auto [serial, s1] = run(1, "im2col");
    auto [parallel, s2] = run(4, "im2col");
    EXPECT_EQ(s1, 0);
    EXPECT_GT(s2, 0) << "im2col should shard over images now";
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          sizeof(float) * serial.size()),
              0);
    EXPECT_LT(maxAbsDiff(naive, serial), 1e-4f);
}

TEST(ArenaExec, ReportIncludesWorkspaceInFootprint)
{
    WinoNet n = winoNet(2);
    CompileOptions opt;
    opt.numThreads = 4;
    CompiledGraph c =
        compileGraphOnly(n.g, n.loss, headOnlyScheme(), opt);
    EXPECT_GT(c.report.workspaceBytes, 0);
    EXPECT_EQ(c.report.serializedByWorkspace, 0);
    EXPECT_GT(c.report.shardedSteps, 0);
    EXPECT_GE(c.report.totalBytes,
              c.report.arenaBytes + c.report.paramBytes);
    EXPECT_EQ(c.report.memoryTimeline.size(), c.order.size());
    int64_t peak = 0;
    for (int64_t b : c.report.memoryTimeline)
        peak = std::max(peak, b);
    EXPECT_EQ(peak, c.report.peakLiveBytes);
    EXPECT_LE(c.report.peakLiveBytes, c.report.arenaBytes);
}

TEST(ArenaExec, StaticWinogradCacheSurvivesWeightCorruption)
{
    // Executor semantics: the shared transform cache is warmed on the
    // FIRST run (so weights loaded after compile are honored), then
    // never recomputed — corrupting a frozen weight afterwards must
    // not change the output. This pins the once-per-bind contract.
    WinoNet n = winoNet(1);
    CompileOptions opt;
    auto prog = compileInference(n.g, {n.logits}, opt, n.store);
    Rng r(5);
    Tensor tx = Tensor::randn({1, 4, 12, 12}, r);
    Tensor first = prog.run({{"x", tx}})[0];
    // Find a frozen 3x3 conv weight the backend bound to Winograd.
    std::string frozen;
    const Graph &g = prog.graph();
    for (int id = 0; id < g.numNodes(); ++id) {
        const Node &n = g.node(id);
        if (n.attrs.getInt("staticWeight", 0) != 0) {
            frozen = g.node(n.inputs[1]).name;
            break;
        }
    }
    ASSERT_FALSE(frozen.empty()) << "no Winograd-bound conv found";
    n.store->get(frozen).fill(0.0f);
    Tensor second = prog.run({{"x", tx}})[0];
    EXPECT_EQ(std::memcmp(first.data(), second.data(),
                          sizeof(float) * first.size()),
              0)
        << "cached transforms must shield the output from weight "
           "changes after warm-up";
}

// ---- DirectWorkspace (the un-planned-caller path) --------------------

TEST(DirectWorkspace_, ReusesStorageAcrossSameSpecAttaches)
{
    DirectWorkspace ws;
    WorkspaceSpec spec;
    spec.bytesPerShard = 256;
    KernelCtx c;
    ws.attach(c, spec);
    ASSERT_NE(c.workspace, nullptr);
    float *first = c.workspace;
    c.workspace[0] = 42.0f;
    // Re-attach with the same spec: same storage, contents intact
    // (this is what lets repeated direct calls skip reallocation).
    KernelCtx c2;
    ws.attach(c2, spec);
    EXPECT_EQ(c2.workspace, first);
    EXPECT_EQ(c2.workspace[0], 42.0f);
    // A different size reallocates and zero-fills.
    WorkspaceSpec bigger;
    bigger.bytesPerShard = 1024;
    KernelCtx c3;
    ws.attach(c3, bigger);
    EXPECT_EQ(c3.workspace[0], 0.0f);
}

TEST(DirectWorkspace_, BuffersAreFloatAlignedAndByteSized)
{
    // Odd byte counts round up to whole floats; pointers carry float
    // alignment (the strictest any current kernel — including the i8
    // quantized ones reading reinterpret_cast'd bytes — requires).
    DirectWorkspace ws;
    WorkspaceSpec spec;
    spec.bytesPerShard = 13;
    spec.sharedBytes = 7;
    KernelCtx c;
    ws.attach(c, spec);
    ASSERT_NE(c.workspace, nullptr);
    ASSERT_NE(c.shared, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c.workspace) %
                  alignof(float),
              0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c.shared) % alignof(float),
              0u);
    // 13 bytes -> 4 floats: writing the final byte must be in
    // bounds (exercised hard under ASan).
    reinterpret_cast<int8_t *>(c.workspace)[12] = 1;
    reinterpret_cast<int8_t *>(c.shared)[6] = 1;
}

TEST(DirectWorkspace_, SharedRegionInitSemantics)
{
    DirectWorkspace ws;
    WorkspaceSpec spec;
    spec.sharedBytes = 64;
    KernelCtx c;
    ws.attach(c, spec);
    ASSERT_NE(c.shared, nullptr);
    ASSERT_NE(c.sharedReady, nullptr);
    EXPECT_FALSE(*c.sharedReady) << "fresh shared region starts cold";
    // A kernel lazily fills the region and marks it ready.
    c.shared[0] = 7.0f;
    *c.sharedReady = true;
    // Same spec again: cache survives — ready flag and contents.
    KernelCtx c2;
    ws.attach(c2, spec);
    EXPECT_TRUE(*c2.sharedReady);
    EXPECT_EQ(c2.shared[0], 7.0f);
    EXPECT_TRUE(ws.ready());
    // Resizing the shared region invalidates the cache.
    spec.sharedBytes = 128;
    KernelCtx c3;
    ws.attach(c3, spec);
    EXPECT_FALSE(*c3.sharedReady);
}

TEST(DirectWorkspace_, NodeChangeInvalidatesSharedCache)
{
    // One DirectWorkspace reused across two DIFFERENT Winograd conv
    // nodes must never serve the first node's cached transforms to
    // the second — the node-aware attach resets the ready flag.
    Graph g;
    int x = g.input({1, 4, 8, 8}, "x");
    int w1 = g.param({4, 4, 3, 3}, "w1", false);
    int w2 = g.param({4, 4, 3, 3}, "w2", false);
    Attrs a;
    a.set("stride", static_cast<int64_t>(1));
    a.set("pad", static_cast<int64_t>(1));
    a.set("staticWeight", static_cast<int64_t>(1));
    int c1 = g.add(OpKind::Conv2d, {x, w1}, a);
    int c2 = g.add(OpKind::Conv2d, {x, w2}, a);

    DirectWorkspace ws;
    KernelCtx k1;
    ws.attach(k1, g, g.node(c1), "winograd");
    ASSERT_NE(k1.sharedReady, nullptr);
    *k1.sharedReady = true; // simulate a warmed cache for node c1
    KernelCtx again;
    ws.attach(again, g, g.node(c1), "winograd");
    EXPECT_TRUE(*again.sharedReady) << "same node keeps the cache";
    KernelCtx k2;
    ws.attach(k2, g, g.node(c2), "winograd");
    EXPECT_FALSE(*k2.sharedReady)
        << "switching nodes must invalidate the cached transforms";
}

} // namespace
} // namespace pe
