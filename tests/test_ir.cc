/**
 * @file
 * IR tests: graph construction, shape inference (the IR type
 * checker), compaction, JSON serialization round-trips, FLOP/byte
 * cost model sanity.
 */

#include <gtest/gtest.h>

#include "frontend/builder.h"
#include "frontend/models.h"
#include "ir/serialize.h"

namespace pe {
namespace {

TEST(Infer, MatMulShapes)
{
    Graph g;
    int a = g.input({3, 5}, "a");
    int b = g.input({5, 7}, "b");
    int mm = g.add(OpKind::MatMul, {a, b});
    EXPECT_EQ(g.node(mm).shape, (Shape{3, 7}));

    Attrs t;
    t.set("transB", static_cast<int64_t>(1));
    int c = g.input({7, 5}, "c");
    int mm2 = g.add(OpKind::MatMul, {a, c}, std::move(t));
    EXPECT_EQ(g.node(mm2).shape, (Shape{3, 7}));
}

TEST(Infer, MatMulMismatchThrows)
{
    Graph g;
    int a = g.input({3, 5}, "a");
    int b = g.input({4, 7}, "b");
    EXPECT_THROW(g.add(OpKind::MatMul, {a, b}), std::runtime_error);
}

TEST(Infer, ConvShapes)
{
    Graph g;
    int x = g.input({2, 3, 32, 32}, "x");
    int w = g.param({8, 3, 3, 3}, "w", false);
    Attrs a;
    a.set("stride", static_cast<int64_t>(2));
    a.set("pad", static_cast<int64_t>(1));
    int conv = g.add(OpKind::Conv2d, {x, w}, std::move(a));
    EXPECT_EQ(g.node(conv).shape, (Shape{2, 8, 16, 16}));
}

TEST(Infer, ConvChannelMismatchThrows)
{
    Graph g;
    int x = g.input({2, 3, 8, 8}, "x");
    int w = g.param({8, 4, 3, 3}, "w", false);
    EXPECT_THROW(g.add(OpKind::Conv2d, {x, w}), std::runtime_error);
}

TEST(Infer, ReshapeWithInferredDim)
{
    Graph g;
    int x = g.input({2, 3, 4}, "x");
    Attrs a;
    a.set("shape", Shape{6, -1});
    int r = g.add(OpKind::Reshape, {x}, std::move(a));
    EXPECT_EQ(g.node(r).shape, (Shape{6, 4}));
    Attrs bad;
    bad.set("shape", Shape{5, -1});
    EXPECT_THROW(g.add(OpKind::Reshape, {x}, std::move(bad)),
                 std::runtime_error);
}

TEST(Infer, SliceValidation)
{
    Graph g;
    int x = g.input({4, 6}, "x");
    Attrs ok;
    ok.set("axis", static_cast<int64_t>(1));
    ok.set("begin", static_cast<int64_t>(1));
    ok.set("end", static_cast<int64_t>(4));
    int s = g.add(OpKind::Slice, {x}, std::move(ok));
    EXPECT_EQ(g.node(s).shape, (Shape{4, 3}));
    Attrs bad;
    bad.set("axis", static_cast<int64_t>(1));
    bad.set("begin", static_cast<int64_t>(4));
    bad.set("end", static_cast<int64_t>(3));
    EXPECT_THROW(g.add(OpKind::Slice, {x}, std::move(bad)),
                 std::runtime_error);
}

TEST(Infer, ReduceAndEmbedding)
{
    Graph g;
    int x = g.input({2, 3, 4}, "x");
    Attrs a;
    a.set("axes", std::vector<int64_t>{0, 2});
    a.set("keepdims", static_cast<int64_t>(0));
    int r = g.add(OpKind::ReduceSum, {x}, std::move(a));
    EXPECT_EQ(g.node(r).shape, (Shape{3}));

    int table = g.param({10, 8}, "emb", true);
    int ids = g.input({2, 5}, "ids");
    int e = g.add(OpKind::Embedding, {table, ids});
    EXPECT_EQ(g.node(e).shape, (Shape{2, 5, 8}));
}

TEST(Graph, DuplicateParamNameThrows)
{
    Graph g;
    g.param({2}, "w", true);
    EXPECT_THROW(g.param({3}, "w", true), std::runtime_error);
    EXPECT_THROW(g.param({3}, "", true), std::runtime_error);
}

TEST(Graph, ConsumersAndCompact)
{
    Graph g;
    int x = g.input({4}, "x");
    int a = g.add(OpKind::Relu, {x});
    int dead = g.add(OpKind::Gelu, {x});
    int b = g.add(OpKind::Silu, {a});
    g.markOutput(b);
    auto users = g.consumers();
    EXPECT_EQ(users[x].size(), 2u);
    EXPECT_EQ(users[a], std::vector<int>{b});

    std::vector<bool> live(g.numNodes(), true);
    live[dead] = false;
    auto remap = g.compact(live);
    EXPECT_EQ(remap[dead], -1);
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.outputs()[0], remap[b]);
    // Inputs rewired to new ids.
    EXPECT_EQ(g.node(remap[b]).inputs[0], remap[a]);
}

TEST(Graph, ConstDataSurvivesCompact)
{
    Graph g;
    int dead = g.input({1}, "dead");
    (void)dead;
    int c = g.constantOf(Tensor::full({2}, 7.0f), "c");
    int out = g.add(OpKind::Relu, {c});
    g.markOutput(out);
    std::vector<bool> live = {false, true, true};
    auto remap = g.compact(live);
    EXPECT_TRUE(g.hasConstData(remap[c]));
    EXPECT_FLOAT_EQ(g.constData(remap[c])[0], 7.0f);
}

TEST(Serialize, RoundTripPreservesStructure)
{
    Graph g;
    Rng rng(1);
    ParamStore store;
    NetBuilder b(g, rng, &store);
    int x = b.input({2, 3, 8, 8}, "x");
    int h = b.relu(b.conv2d(x, 4, 3, 2, 1, "c1"));
    h = b.globalAvgPool(h);
    h = b.linear(h, 5, "head");
    g.markOutput(h);

    Graph loaded = graphFromJson(graphToJson(g));
    ASSERT_EQ(loaded.numNodes(), g.numNodes());
    for (int i = 0; i < g.numNodes(); ++i) {
        EXPECT_EQ(loaded.node(i).op, g.node(i).op) << i;
        EXPECT_EQ(loaded.node(i).inputs, g.node(i).inputs) << i;
        EXPECT_EQ(loaded.node(i).shape, g.node(i).shape) << i;
        EXPECT_EQ(loaded.node(i).name, g.node(i).name) << i;
        EXPECT_EQ(loaded.node(i).trainable, g.node(i).trainable) << i;
    }
    EXPECT_EQ(loaded.outputs(), g.outputs());
}

TEST(Serialize, EscapesAndAttrTypes)
{
    Graph g;
    Attrs a;
    a.set("shape", Shape{2});
    a.set("note", std::string("quote\"back\\slash"));
    a.set("alpha", 2.5);
    int x = g.add(OpKind::Input, {}, std::move(a), "in\"name");
    g.markOutput(x);
    Graph loaded = graphFromJson(graphToJson(g));
    EXPECT_EQ(loaded.node(0).name, "in\"name");
    EXPECT_EQ(loaded.node(0).attrs.getString("note"),
              "quote\"back\\slash");
    EXPECT_DOUBLE_EQ(loaded.node(0).attrs.getFloat("alpha", 0), 2.5);
}

TEST(Serialize, RejectsMalformedJson)
{
    EXPECT_THROW(graphFromJson("{\"nodes\":["), std::runtime_error);
    EXPECT_THROW(graphFromJson("not json"), std::runtime_error);
}

TEST(CostModel, FlopsScaleWithShapes)
{
    Graph g;
    int a = g.input({8, 8}, "a");
    int b = g.input({8, 8}, "b");
    int mm = g.add(OpKind::MatMul, {a, b});
    EXPECT_DOUBLE_EQ(nodeFlops(g, g.node(mm)), 2.0 * 8 * 8 * 8);

    int a2 = g.input({16, 16}, "a2");
    int b2 = g.input({16, 16}, "b2");
    int mm2 = g.add(OpKind::MatMul, {a2, b2});
    EXPECT_DOUBLE_EQ(nodeFlops(g, g.node(mm2)),
                     8.0 * nodeFlops(g, g.node(mm)));
    EXPECT_EQ(nodeFlops(g, g.node(a)), 0.0);
}

TEST(ModelZoo, AllFamiliesBuildAndInfer)
{
    Rng rng(1);
    VisionConfig vc;
    vc.batch = 1;
    vc.resolution = 16;
    vc.blocks = 3;
    for (auto build : {buildMcuNet, buildMobileNetV2, buildResNet}) {
        ModelSpec m = build(vc, rng, nullptr);
        EXPECT_GT(m.numBlocks, 0);
        EXPECT_EQ(numel(m.graph.node(m.loss).shape), 1);
        EXPECT_EQ(m.graph.node(m.logits).shape,
                  (Shape{1, vc.numClasses}));
        EXPECT_GT(m.paramCount, 0);
    }
    NlpConfig nc;
    nc.batch = 2;
    nc.layers = 2;
    ModelSpec bert = buildBert(nc, rng, nullptr);
    EXPECT_EQ(bert.graph.node(bert.logits).shape,
              (Shape{2, nc.numClasses}));
    LlamaConfig lc;
    ModelSpec llama = buildLlama(lc, rng, nullptr);
    EXPECT_EQ(llama.graph.node(llama.logits).shape,
              (Shape{lc.batch * lc.seqLen, lc.vocab}));
}

TEST(ModelZoo, PaperScaleParamCountsAreRight)
{
    // Sanity-check the full-size configurations against the paper's
    // reported parameter counts (Table 4).
    Rng rng(1);
    ModelSpec mbv2 = buildMobileNetV2(paperMobileNetV2Config(1), rng,
                                      nullptr);
    EXPECT_NEAR(static_cast<double>(mbv2.paramCount), 3.4e6, 1.8e6);
    ModelSpec rn = buildResNet(paperResNet50Config(1), rng, nullptr);
    EXPECT_NEAR(static_cast<double>(rn.paramCount), 25.5e6, 3e6);
    ModelSpec llama = buildLlama(paperLlama7bConfig(128), rng, nullptr);
    EXPECT_NEAR(static_cast<double>(llama.paramCount), 6.7e9, 0.5e9);
}

TEST(ModelZoo, LoraAddsOnlyAdapters)
{
    Rng rng(1);
    LlamaConfig lc;
    ModelSpec base = buildLlama(lc, rng, nullptr, 0);
    ModelSpec lora = buildLlama(lc, rng, nullptr, 4);
    EXPECT_GT(lora.paramCount, base.paramCount);
    int adapters = 0;
    for (int id : lora.graph.paramIds()) {
        if (lora.graph.node(id).name.find(".lora.") != std::string::npos)
            ++adapters;
    }
    EXPECT_EQ(adapters, 2 * 2 * lc.layers); // A and B for q and v
}

} // namespace
} // namespace pe
