#include "serve/coalescer.h"

#include <algorithm>

namespace pe {

Coalescer::Coalescer(std::vector<int64_t> bucketBatches,
                     int64_t windowUs)
    : batches_(std::move(bucketBatches)),
      windowUs_(windowUs > 0 ? windowUs : 0)
{
    batches_.erase(std::remove_if(batches_.begin(), batches_.end(),
                                  [](int64_t b) { return b < 1; }),
                   batches_.end());
    std::sort(batches_.begin(), batches_.end());
    batches_.erase(std::unique(batches_.begin(), batches_.end()),
                   batches_.end());
}

int
Coalescer::routeSingle(int64_t rows) const
{
    if (rows < 1)
        return -1;
    // batches_ is sorted, so the first fit is the smallest fit.
    for (size_t i = 0; i < batches_.size(); ++i) {
        if (batches_[i] >= rows)
            return static_cast<int>(i);
    }
    return -1;
}

int64_t
Coalescer::padRows(int64_t totalRows) const
{
    int i = routeGroup(totalRows);
    return i < 0 ? -1 : batches_[static_cast<size_t>(i)] - totalRows;
}

} // namespace pe
