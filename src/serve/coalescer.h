/**
 * @file
 * Continuous-batching policy: which queued requests share one bucket
 * run, and which bucket that run targets.
 *
 * The paper's premise is that compiling a static plan amortizes
 * planning cost across executions; the serving layer amortizes
 * COMPILATION across request shapes (one plan per shape bucket). The
 * coalescer closes the remaining gap: a burst of small requests
 * against a `{1, 4, 8}` bucket set used to execute one full bucket
 * run PER REQUEST — now up to `bucket.batch` rows of compatible
 * queued requests pack into one session's staging buffers and share a
 * single run, turning per-request cost into per-batch cost exactly
 * the way the paper turns per-step planning into per-compile
 * planning.
 *
 * The policy is deliberately separated from the engine so it is
 * testable without threads or compiled plans:
 *
 *  - routeSingle(rows): PR-4's per-request rule — the smallest bucket
 *    whose batch fits the request. Still the rule for every request
 *    that goes out alone (coalescing disabled, deadline expired, or
 *    the model is not coalescable).
 *  - admits(group, candidate): whether a queued request may join a
 *    group — true while the combined rows still fit the LARGEST
 *    bucket and the cache generations are compatible (AdmitQuery
 *    carries {rows, gen} for each side). Group-aware on purpose: a
 *    3-row request next to a 1-row request shares one bucket-4 run
 *    (0 pad rows) instead of a padded bucket-4 run plus a bucket-1
 *    run.
 *  - routeGroup(totalRows): the smallest bucket fitting the PACKED
 *    total — which minimizes the group's pad waste (bucket.batch -
 *    totalRows), where per-request routing pays each member's pad
 *    independently.
 *  - full(groupRows): the drain's stop condition — the group exactly
 *    fills the largest bucket, so waiting for more traffic cannot
 *    reduce runs or pad any further.
 *
 * The deadline window (ServeOptions::coalesceWindowUs) bounds how
 * long a dequeued request waits for company: a lone request goes out
 * alone after at most windowUs. 0 disables coalescing entirely and
 * reproduces the per-request serving path bit for bit.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace pe {

/**
 * Cache-generation tags for admission (generative serving, PR 9).
 * Sharing a run is only bit-safe when every member reads the SAME
 * synthesized position/mask feeds, i.e. when their KV caches hold the
 * same number of rows — so decode requests carry their stream's
 * generation and only equal generations group.
 */
/** Plain (cache-less) request: groups with any other plain request —
 *  the pre-generation admission rule, unchanged. */
inline constexpr int64_t kGenNone = -1;
/** Never groups (prefill: its CacheWrite targets the whole session
 *  cache, so two prefills in one run would collide). */
inline constexpr int64_t kGenSolo = -2;

class Coalescer
{
  public:
    Coalescer() = default;

    /**
     * @param bucketBatches compiled bucket batch sizes; normalized
     *        (sorted, deduplicated, values < 1 dropped) so the engine
     *        and standalone tests can pass raw option lists.
     * @param windowUs deadline window; <= 0 disables coalescing.
     */
    Coalescer(std::vector<int64_t> bucketBatches, int64_t windowUs);

    /** True iff grouping is on (windowUs > 0). */
    bool enabled() const { return windowUs_ > 0; }

    int64_t windowUs() const { return windowUs_; }

    /** Largest compiled batch — the hard cap on a group's rows. */
    int64_t maxBatch() const
    {
        return batches_.empty() ? 0 : batches_.back();
    }

    /** Per-request routing rule (PR 4): index of the smallest bucket
     *  fitting @p rows; -1 when @p rows exceeds every bucket. */
    int routeSingle(int64_t rows) const;

    /** Group routing rule: index of the smallest bucket fitting the
     *  packed @p totalRows; -1 when it exceeds every bucket. Minimizes
     *  the GROUP's pad waste where per-request routing pays each
     *  member's pad independently. */
    int routeGroup(int64_t totalRows) const
    {
        return routeSingle(totalRows);
    }

    /** One side of an admission query: a group already packed (or a
     *  candidate wanting to join it). Plain traffic leaves @c gen at
     *  kGenNone; decode traffic carries its stream's generation. */
    struct AdmitQuery {
        int64_t rows = 0;
        int64_t gen = kGenNone;
    };

    /**
     * May @p candidate join @p group? True when the combined rows fit
     * the largest bucket (any mix of row counts coalesces, not just
     * singles) AND the caches are compatible: kGenSolo never admits or
     * is admitted; kGenNone matches only kGenNone (plain traffic keeps
     * the pre-generation rule verbatim); decode generations match only
     * their exact value — members of one run then share the same
     * synthesized pos/mask, which is what makes a coalesced decode
     * step bit-identical to the serial one.
     *
     * (This single struct-parameter form replaced the old 2-arg
     * rows-only overload and 4-arg generation overload, which were
     * easy to confuse at call sites.)
     */
    bool admits(const AdmitQuery &group, const AdmitQuery &candidate) const
    {
        return group.gen != kGenSolo && candidate.gen != kGenSolo &&
               group.gen == candidate.gen && candidate.rows > 0 &&
               group.rows + candidate.rows <= maxBatch();
    }

    /** Drain stop condition: the group exactly fills the largest
     *  bucket — no later arrival can join. */
    bool full(int64_t groupRows) const
    {
        return groupRows >= maxBatch();
    }

    /** Pad rows a packed group of @p totalRows executes under
     *  routeGroup(); -1 when no bucket fits. */
    int64_t padRows(int64_t totalRows) const;

    const std::vector<int64_t> &batches() const { return batches_; }

  private:
    std::vector<int64_t> batches_; ///< sorted, deduplicated, >= 1
    int64_t windowUs_ = 0;
};

} // namespace pe
