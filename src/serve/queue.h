/**
 * @file
 * Bounded multi-producer/multi-consumer work queue — the admission
 * valve of the serving runtime. Producers (submit() callers) block or
 * bounce when the queue is full, so memory under overload is bounded
 * by capacity, not by traffic; consumers (the serving workers parked
 * on the ThreadPool) block while it is empty. close() lets shutdown
 * drain: queued items are still delivered, then every pop() returns
 * false and the workers exit their loops.
 *
 * Mutex + two condition variables, deliberately: the queue is crossed
 * twice per request (enqueue, dequeue), never inside a kernel — the
 * hot path owns a per-session arena and touches no shared mutable
 * state (see src/serve/serving.h).
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace pe {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : cap_(capacity == 0 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /** Enqueue, blocking while full. False iff the queue was closed
     *  (the item is NOT enqueued then). */
    bool
    push(T v)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notFull_.wait(lock,
                      [this] { return closed_ || q_.size() < cap_; });
        if (closed_)
            return false;
        q_.push_back(std::move(v));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /** Non-blocking enqueue. False when full or closed — the caller's
     *  backpressure signal. */
    bool
    tryPush(T v)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() >= cap_)
                return false;
            q_.push_back(std::move(v));
        }
        notEmpty_.notify_one();
        return true;
    }

    /** Dequeue, blocking while empty. False iff closed AND drained —
     *  items enqueued before close() are still delivered. */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock, [this] { return closed_ || !q_.empty(); });
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /**
     * Dequeue, blocking until @p deadline at the latest. False on
     * timeout or on closed-and-drained — either way the caller has
     * nothing to process. The coalescing drain's wait primitive: a
     * worker holding a partial group parks here until more traffic
     * arrives or the group's deadline window expires.
     */
    bool
    popUntil(T &out, std::chrono::steady_clock::time_point deadline)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait_until(lock, deadline, [this] {
            return closed_ || !q_.empty();
        });
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Reject new items; wake every blocked producer and consumer. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

    size_t capacity() const { return cap_; }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> q_;
    const size_t cap_;
    bool closed_ = false;
};

} // namespace pe
