/**
 * @file
 * Concurrent serving runtime (the "heavy traffic" leg of the ROADMAP
 * north star).
 *
 * The paper compiles training/inference into a static plan so that
 * deployment-time execution makes no runtime decisions; the serving
 * layer exploits exactly that property. A ServingEngine compiles a
 * model ONCE per (precision, shape-bucket) into an immutable
 * CompiledPlan — graph, schedule, memory plan, kernel variants — over
 * one shared frozen ParamStore + const pool, and every in-flight
 * request executes that plan on a pooled per-session ExecContext
 * (private arena + input staging + bound kernel contexts). N requests
 * therefore run concurrently with zero cross-session allocation or
 * locking on the hot path: the only synchronization a request crosses
 * is the bounded MPMC admission queue on the way in and one
 * condition-variable signal on the way out.
 *
 * Shape buckets: requests whose leading (batch) dimension does not
 * match a compiled plan are padded up to the smallest bucket that
 * fits — amortizing compilation across request shapes exactly like
 * the paper amortizes planning across steps. Pad rows are zero-filled
 * and results are sliced back to the request's rows, so a padded
 * request returns byte-identical values to an explicitly zero-padded
 * serial run.
 *
 * Continuous batching (ServeOptions::coalesceWindowUs > 0): a worker
 * that dequeues a request first drains additional compatible queued
 * requests — any mix of row counts whose packed total still fits the
 * largest bucket — within the deadline window, packs their rows
 * contiguously into ONE session's staging buffers (the same
 * zero-pad/slice machinery as above, with the pad tail zeroed once
 * after the group), runs the group's bucket plan ONCE, and slices
 * each requester's rows back out. k compatible requests therefore
 * cost one bucket run instead of k, and the group routes to the
 * smallest bucket fitting the packed TOTAL, so group pad waste beats
 * per-request pad waste too (see src/serve/coalescer.h for the
 * policy). Outputs are byte-identical to the independently padded
 * serial runs coalescing replaces — the same row-independence the
 * pad-to-bucket path already relies on. Models with outputs whose
 * leading dim is not the batch (scalars, reductions) cannot be
 * sliced per request and always go out alone. coalesceWindowUs = 0
 * (the default) disables grouping and reproduces the per-request
 * path exactly.
 *
 * Concurrency model: `workers` serving workers are parked on a
 * dedicated ThreadPool via one persistent dispatch (the pool's
 * completion barrier doubles as shutdown join). Each worker owns at
 * most one session context per bucket, minted lazily on first use and
 * reused for every later request — the session "pool" is therefore
 * lock-free by ownership, bounded by workers x buckets, and stops
 * allocating once warm. Sessions execute serially inside
 * (numThreads = 1 per session); concurrency comes from running many
 * sessions at once, which is the right trade for throughput-bound
 * serving (and keeps per-request results bit-identical to the serial
 * executor).
 */

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "serve/coalescer.h"
#include "serve/queue.h"

namespace pe {

/** What the engine serves: a forward graph + the output node ids,
 *  built for one bucket's batch size. The factory is called once per
 *  bucket at engine construction; parameter names must not depend on
 *  the batch size so every bucket binds the same frozen weights. */
struct ServedModel {
    Graph graph;
    std::vector<int> outputs;
};

/** Builds the served model at a given leading (batch) dimension. */
using ModelFactory = std::function<ServedModel(int64_t batch)>;

/**
 * Generative serving (PR 9): a model family becomes generative by
 * providing a SECOND factory that builds the single-token decode step.
 * The primary factory then builds the PREFILL graph — batch dimension
 * = prompt length, bucketed by ServeOptions::buckets (e.g. {32, 128,
 * 512} prompt buckets) — and the decode factory builds the decode
 * graph at each ServeOptions::decodeBuckets stream count.
 *
 * Contract between the two graphs:
 *  - Both write their K/V rows through CacheWrite nodes; prefill and
 *    decode cache values correspond BY NODE NAME (e.g. "b0.kcache"),
 *    with equal maxSeq and row width. Validated at construction.
 *  - The prefill graph is self-positioned (position 0 is a Const, the
 *    causal mask is a Const): its only Input is the prompt, one token
 *    per row, and its caches are rank-2 [maxSeq, D].
 *  - The decode graph takes one token per stream row plus two
 *    engine-synthesized Inputs: "pos" [B, 1] (each stream's write
 *    position = its generation) and "mask" [B, maxSeq] (0 for columns
 *    <= generation, -1e30f beyond — large enough that exp() underflows
 *    to exact 0.0f, which is what makes shared runs bit-identical to
 *    solo runs no matter what stale rows sit past the generation).
 *    Its caches are rank-3 [B, maxSeq, D], one slot per stream row.
 *
 * Per-stream authoritative cache state lives engine-side (openStream
 * allocates it); before a decode run the engine gathers each member
 * stream's rows into its slot of the session's persistent cache
 * region, and afterwards scatters the newly written row back. Decode
 * requests carry their stream's generation, and the coalescer only
 * groups equal generations — members of one shared run therefore read
 * identical pos/mask feeds, so N concurrent streams coalesce into
 * bucket runs bit-identical to each stream decoding alone.
 */

/** Serving-engine construction options. */
struct ServeOptions {
    /** Shape buckets: the leading-dimension sizes compiled plans
     *  exist for. Requests are padded up to the smallest bucket that
     *  fits; larger requests are rejected at submit. Sorted and
     *  deduplicated internally; empty = {1}. */
    std::vector<int64_t> buckets = {1};
    /**
     * Generative mode switch: when set, builds the single-token decode
     * graph at each decodeBuckets stream count (see the ModelFactory
     * contract above) and arms the stream API (openStream /
     * submitPrefill / submitDecode). The primary factory then builds
     * the prefill graph, bucketed by `buckets` as PROMPT lengths.
     */
    ModelFactory decodeFactory;
    /** Decode shape buckets: concurrent-stream counts compiled decode
     *  plans exist for. Same normalization as `buckets`. */
    std::vector<int64_t> decodeBuckets = {1};
    /** Concurrent serving workers (= max in-flight sessions). */
    int workers = 2;
    /**
     * Continuous-batching deadline window, in microseconds. A worker
     * that dequeues a request waits up to this long for additional
     * compatible queued requests and coalesces them into ONE shared
     * bucket run (rows packed contiguously, outputs sliced back per
     * request, byte-identical to the serial padded runs it
     * replaces). 0 (default) disables coalescing — every request
     * runs alone, exactly the pre-coalescing serving path. Tuning:
     * the window is the latency a lone request pays waiting for
     * company, so set it to the burst inter-arrival time you want to
     * absorb (a few hundred us to a few ms for RPC traffic); under
     * saturation the queue is never empty and the window is rarely
     * waited out.
     */
    int64_t coalesceWindowUs = 0;
    /** Bounded admission-queue capacity: submit() blocks and
     *  trySubmit() bounces when this many requests are queued. */
    size_t queueCapacity = 64;
    /** Per-bucket compile switches (precision, fusion, ...).
     *  numThreads is forced to 1: sessions are serial inside, and
     *  concurrency comes from running many sessions at once. */
    CompileOptions compile;
    /**
     * When non-empty, bucket plans are LOADED from this directory —
     * one binary plan file per bucket, named
     * planFileName(compile.precision, batch) — instead of compiled.
     * The model factory is never invoked and engine construction
     * performs ZERO planner/scheduler/QuantizePass work (asserted via
     * pipelineCounters; std::logic_error if the contract breaks), so
     * serving startup is file reads + pointer binding. Write such a
     * directory with savePlans() or `plan_tool compile`. Plans must
     * have been compiled at numThreads = 1 (sessions are serial
     * inside; loading a multi-threaded plan throws).
     */
    std::string planDir;
    /**
     * Calibration batches for quantized buckets (compile.precision !=
     * F32; ignored when planDir is set). Each feed map is fitted to
     * every bucket's batch — rows zero-padded up (exactly the pad the
     * serving path applies to real requests) or truncated down — and
     * calibrate() stamps the observed ranges on the bucket's graph
     * before the QuantizePass consumes them. Empty = quantize with
     * whatever calibration attrs the factory's graph already carries.
     */
    std::vector<std::unordered_map<std::string, Tensor>> calibration;
    /**
     * Arm request-lifecycle tracing: every completed request records
     * its enqueue -> dequeue -> bind -> run -> slice -> complete
     * timestamps into a fixed-capacity ring, every session context is
     * armed with an executor span ring (so kernel steps appear inside
     * the serving run spans), and exportChromeTrace() renders it all
     * as one Perfetto-loadable timeline. Off by default: the record
     * path costs a handful of clock reads per request, but serving
     * benchmarks should not pay even that without asking.
     */
    bool trace = false;
    /** Lifecycle-ring capacity (records, oldest overwritten) and the
     *  per-session executor span-ring capacity when `trace` is on. */
    size_t traceCapacity = 4096;

    // Validated builder-style setters (mirror DecoderConfig's): each
    // rejects bad values up front with std::invalid_argument naming
    // the offending field, so a misconfigured engine fails at option
    // construction instead of deep inside bucket compilation.
    ServeOptions &withBuckets(std::vector<int64_t> b);
    ServeOptions &withDecodeBuckets(std::vector<int64_t> b);
    ServeOptions &withWorkers(int n);
    ServeOptions &withCoalesceWindow(int64_t us);
    ServeOptions &withQueueCapacity(size_t n);
};

/** Per-bucket serving counters. */
struct BucketStats {
    int64_t batch = 0;      ///< the bucket's compiled batch size
    bool decode = false;    ///< decode-domain bucket (batch = streams)
    int64_t hits = 0;       ///< requests served by this bucket's plan
    int64_t runs = 0;       ///< plan executions (== hits minus
                            ///< coalescing: k grouped requests run once)
    int64_t paddedRows = 0; ///< total pad rows executed (waste)
    int64_t runNs = 0;      ///< summed plan execution time (ns)
    /** SIMD tier the bucket's plan bound against ("scalar"/"avx2"/
     *  "neon") — the key for per-tier run-time attribution. */
    std::string tier;
    /** Fixed log2 latency histogram: bin b counts completions whose
     *  submit-to-complete latency fell in [2^b, 2^(b+1)) us (last bin
     *  open-ended). Sum over bins == hits served by this bucket. */
    std::vector<int64_t> latencyHistUs;
};

/** Aggregate serving statistics (CompileReport-style snapshot). */
struct ServeStats {
    int64_t submitted = 0;
    int64_t completed = 0; ///< successfully served
    int64_t rejected = 0;  ///< trySubmit bounces (queue full)
    /** Worker-path failures (the exception is rethrown by wait());
     *  excluded from completed/hits/latency so a failing fleet reads
     *  as failing, not as healthy throughput. */
    int64_t failed = 0;
    int64_t queueDepth = 0;
    int64_t maxQueueDepth = 0;
    /** Session contexts minted so far. Bounded by workers x buckets
     *  and stable once traffic has warmed every (worker, bucket)
     *  pair — the arena-pool-reuse invariant tests assert on. */
    int64_t sessionsCreated = 0;
    /** Bucket-plan executions across all buckets. Without coalescing
     *  runs == completed; with it, runs is the number the coalescer
     *  drives DOWN (the burst-of-singles acceptance metric). */
    int64_t runs = 0;
    /** Runs that served >= 2 coalesced requests. */
    int64_t coalescedRuns = 0;
    /** Requests served through a shared (>= 2 request) run. */
    int64_t coalescedRequests = 0;
    /** coalescedRequests / completed — the coalescing rate. */
    double coalesceRate = 0;
    /** Generative-serving counters (0 on non-generative engines). */
    int64_t streamsOpened = 0;
    int64_t prefills = 0;    ///< prompt requests submitted
    int64_t decodeSteps = 0; ///< single-token decode requests submitted
    /** Plan execution time divided by requests served: the amortized
     *  per-request cost coalescing buys down (excludes queueing, so
     *  it is comparable across traffic shapes). */
    double amortizedRunUs = 0;
    /** Latency samples currently held by the fixed-capacity
     *  reservoir percentiles are computed from (bounded by
     *  kLatencyReservoirCap regardless of traffic volume). */
    int64_t latencySamples = 0;
    double p50LatencyUs = 0; ///< submit-to-complete, median
    double p99LatencyUs = 0;
    double throughputRps = 0; ///< completed / elapsed
    double elapsedSeconds = 0;
    std::vector<BucketStats> buckets;

    /**
     * Human-readable snapshot: the aggregate counters plus one aligned
     * per-bucket table row (hits, runs, pad rows, run ms, tier).
     * summary() and json() render the SAME snapshot — stats() is the
     * one place serving state is sampled, so the two never disagree.
     */
    std::string summary() const;

    /** The whole snapshot as a JSON object (metrics endpoints, CI). */
    std::string json() const;
};

/**
 * Fixed-capacity ring of latency samples: a long-lived engine's
 * percentile window stays O(capacity) no matter how many requests it
 * serves (the old unbounded deque grew without limit under sustained
 * traffic). Once full, each new sample overwrites the oldest, so
 * p50/p99 always reflect the most recent `capacity` completions — a
 * sliding window, which is what a serving dashboard wants anyway.
 * Externally synchronized (the engine holds statsMu_).
 */
class LatencyRing
{
  public:
    explicit LatencyRing(size_t capacity)
        : cap_(capacity == 0 ? 1 : capacity)
    {
        samples_.reserve(cap_);
    }

    void
    add(double v)
    {
        if (samples_.size() < cap_) {
            samples_.push_back(v);
        } else {
            samples_[next_] = v;
        }
        next_ = (next_ + 1) % cap_;
    }

    size_t size() const { return samples_.size(); }
    size_t capacity() const { return cap_; }

    /** The held samples, unordered (callers sort for percentiles). */
    std::vector<double> snapshot() const { return samples_; }

  private:
    std::vector<double> samples_;
    size_t next_ = 0;
    const size_t cap_;
};

class Session;

/**
 * A session-based concurrent inference server over one model family.
 * Construction compiles every bucket; session() hands out Session
 * handles that run one-shot and generative requests through one
 * unified surface (the recommended entry point); the raw
 * submit()/poll()/wait() and stream calls remain underneath as the
 * asynchronous building blocks. Thread-safe: any thread may submit,
 * poll or wait. Destruction drains queued requests, then joins.
 */
class ServingEngine
{
  public:
    using RequestId = uint64_t;
    using StreamId = uint64_t;
    /** Returned by trySubmit when the admission queue is full. */
    static constexpr RequestId kRejected = 0;
    /** Latency-percentile reservoir capacity: stats memory is bounded
     *  by this regardless of how many requests the engine serves. */
    static constexpr size_t kLatencyReservoirCap = 4096;
    /** log2 latency-histogram bins: [1us, 2us) ... [2^18us, inf). */
    static constexpr int kLatencyHistBins = 20;

    ServingEngine(const ModelFactory &model,
                  std::shared_ptr<ParamStore> store,
                  ServeOptions options);
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * The unified serving surface: a Session handle bound to this
     * engine. session().run(feeds) is the one-shot path;
     * session().prefill(...) / .decode(...) the generative one (the
     * handle opens and owns its stream). Every Session call routes
     * through the submit/wait machinery below, so results are
     * byte-identical to driving the raw entry points directly.
     */
    Session session();

    /**
     * Enqueue one request. Each feed's first dimension is the
     * request's row count (all feeds must agree); remaining dims must
     * match the model's inputs. Blocks while the admission queue is
     * full. Throws std::invalid_argument for unknown input names,
     * shape mismatches, or more rows than the largest bucket.
     *
     * @deprecated Prefer Session: engine.session().run(feeds) is the
     * same submit+wait path behind one handle. submit()/wait() stay
     * as the thin asynchronous primitives Session delegates to, so
     * existing callers keep byte-identical behavior.
     */
    RequestId submit(std::unordered_map<std::string, Tensor> feeds);

    /** submit() without blocking: kRejected when the queue is full
     *  (counted in ServeStats::rejected — the backpressure signal). */
    RequestId trySubmit(std::unordered_map<std::string, Tensor> feeds);

    /** True once @p id has completed (its results are ready). Throws
     *  std::out_of_range for ids never issued or already consumed. */
    bool poll(RequestId id) const;

    /**
     * Block until @p id completes and return its outputs (one tensor
     * per model output, sliced back to the request's rows). Consumes
     * the result: a second wait on the same id throws std::out_of_range
     * (the id is claimed atomically at entry, so concurrent waiters
     * never race on the result). A request that failed on the worker
     * path rethrows here as std::runtime_error.
     */
    std::vector<Tensor> wait(RequestId id);

    // ---- generative stream API (requires ServeOptions::decodeFactory)

    /** True when the engine was built with a decode factory. */
    bool generative() const { return generative_; }

    /**
     * Open one generation stream: allocates its authoritative K/V
     * cache (streamCacheBytes() of zeroed rows) and returns its id.
     * Throws std::logic_error on a non-generative engine.
     *
     * @deprecated Prefer Session: engine.session().prefill(...) opens
     * and owns the stream; openStream()/submitPrefill()/submitDecode()
     * remain as the thin primitives it delegates to.
     */
    StreamId openStream();

    /** Release @p id's cache state. Throws std::out_of_range for
     *  unknown ids and std::runtime_error while a request is in
     *  flight on the stream. */
    void closeStream(StreamId id);

    /**
     * Enqueue @p stream's prompt: feeds are the prefill graph's
     * Inputs, one token per row (rows = prompt length, routed to the
     * smallest fitting prompt bucket). Prefill never coalesces (its
     * CacheWrite spans the whole session cache). On completion the
     * stream's cache holds the prompt's K/V rows and its generation
     * equals the prompt length; re-prefilling restarts the stream.
     * One in-flight request per stream: submitting while another is
     * pending throws std::runtime_error.
     */
    RequestId submitPrefill(StreamId stream,
                            std::unordered_map<std::string, Tensor> feeds);

    /**
     * Enqueue one single-token decode step for @p stream: feeds are
     * the decode graph's Inputs EXCEPT "pos" and "mask", which the
     * engine synthesizes from the stream's generation, one row each.
     * Requires a completed prefill and generation < maxSeq. Decode
     * requests carry the generation as their coalescing tag, so
     * concurrent streams at the same generation share bucket runs —
     * bit-identically to each stream decoding alone.
     */
    RequestId submitDecode(StreamId stream,
                           std::unordered_map<std::string, Tensor> feeds);

    /** Rows currently cached for @p stream (== next token position). */
    int64_t streamGeneration(StreamId stream) const;

    /** Engine-side cache bytes held per open stream (sum over cache
     *  values of maxSeq x D x sizeof(float)) — the per-session memory
     *  cost of a conversation. 0 on non-generative engines. */
    int64_t streamCacheBytes() const;

    /** The decode bucket (stream count) @p streams concurrent rows
     *  route to; -1 when it exceeds every decode bucket. */
    int64_t decodeBucketFor(int64_t streams) const;

    /** Snapshot of the serving counters and latency percentiles. */
    ServeStats stats() const;

    /** stats() rendered as JSON — the poll-safe metrics endpoint
     *  (atomic counter snapshot; only the latency reservoir and
     *  histogram reads take a lock). */
    std::string metricsJson() const { return stats().json(); }

    /**
     * Write the recorded request lifecycles (and, when the engine was
     * built with ServeOptions::trace, the per-session executor step
     * spans) to @p path as Chrome Trace Event JSON: one track per
     * serving worker (bind / run / slice, with kernel steps nested
     * inside the run), and one lane per request (queued -> wait ->
     * run -> complete). A coalesced group shows as N request lanes
     * carrying the SAME "run#<id>" span — the lanes converge into one
     * worker-run. Call it quiescent (all submitted ids waited): the
     * session span rings are read without synchronizing against
     * in-flight runs. Returns false on I/O failure.
     */
    bool exportChromeTrace(const std::string &path) const;

    /** Compiled-plan report of the bucket whose batch is @p batch. */
    const CompileReport &bucketReport(int64_t batch) const;

    /** The bucket batch a @p rows -row request routes to; -1 when
     *  @p rows exceeds every bucket. Exposed for routing tests. */
    int64_t bucketFor(int64_t rows) const;

    int workers() const { return workers_; }

    /**
     * Serialize every bucket's compiled plan (graph, order, variants,
     * memory plan, launch geometry, packed consts, frozen params)
     * into @p dir — one file per bucket, named planFileName(). A
     * later engine constructed with ServeOptions::planDir = @p dir
     * serves bit-identical results without compiling anything.
     */
    void savePlans(const std::string &dir) const;

    /** Canonical plan file name of one (precision, bucket) plan,
     *  e.g. "int8_b4.peplan"; decode-domain buckets use a "d" prefix
     *  ("int8_d4.peplan") so a prompt bucket and a stream bucket of
     *  the same size never collide in one plan directory. */
    static std::string planFileName(Precision p, int64_t batch,
                                    bool decode = false);

  private:
    struct RequestState {
        RequestId id = 0;
        int bucket = -1; ///< index into buckets_
        int64_t rows = 0;
        /** Coalescing admission tag: kGenNone for plain traffic,
         *  kGenSolo for prefill, the stream's generation for decode
         *  (see src/serve/coalescer.h). */
        int64_t gen = kGenNone;
        /** Owning stream; 0 for plain (non-generative) requests. */
        StreamId stream = 0;
        bool isPrefill = false;
        bool isDecode = false;
        /** (input node id in the bucket's graph, request tensor). */
        std::vector<std::pair<int, Tensor>> feeds;
        std::chrono::steady_clock::time_point submitTime;
        /** Lifecycle timestamps (traceNowNs), written only when the
         *  engine traces. enqueueNs by the submitting thread before
         *  the queue push; dequeueNs by the one worker that pops the
         *  request (the queue handoff orders the two). */
        int64_t enqueueNs = 0;
        int64_t dequeueNs = 0;
        std::vector<Tensor> outputs;
        /** Worker-path failure, rethrown by wait(). Written before
         *  the done flag's release store, read after its acquire. */
        std::string error;
        std::atomic<bool> done{false};
    };

    /** One (precision, shape-bucket) compiled plan. The CompiledGraph
     *  lives at a stable heap address so the Executor's graph
     *  reference stays valid for the engine's lifetime; its report is
     *  finalized in place at construction (the one copy bucketReport
     *  serves). */
    /** One CacheWrite value of a generative bucket's graph: the name
     *  is the cross-graph correspondence key (prefill and decode
     *  caches pair up by it), the id is graph-local. */
    struct CacheNodeRef {
        std::string name;
        int id = -1;
        int64_t maxSeq = 0;
        int64_t dim = 0; ///< row width D
    };

    struct Bucket {
        int64_t batch = 0;
        bool decode = false; ///< decode-domain bucket (batch = streams)
        /** CacheWrite values of this bucket's graph, sorted by name —
         *  index-aligned with cacheSpec_ and Stream::cache. */
        std::vector<CacheNodeRef> cacheNodes;
        /** Decode buckets only: the engine-synthesized inputs. */
        int posInput = -1;
        int maskInput = -1;
        CompiledGraph cg;
        std::unique_ptr<Executor> exec;
        std::atomic<int64_t> hits{0};
        std::atomic<int64_t> runs{0};
        std::atomic<int64_t> paddedRows{0};
        /** Summed plan execution time: the per-(tier, bucket)
         *  run-time accumulator metricsJson() reports. */
        std::atomic<int64_t> runNs{0};
        /** log2 latency histogram (see BucketStats::latencyHistUs). */
        std::array<std::atomic<int64_t>, kLatencyHistBins> latHist;

        Bucket()
        {
            for (auto &h : latHist)
                h.store(0, std::memory_order_relaxed);
        }
    };

    /** One completed request's lifecycle, recorded into the trace
     *  ring by the worker that ran it. Group members share the
     *  bind/run/done timestamps and runId of their shared run. */
    struct LifecycleRecord {
        RequestId id = 0;
        int64_t rows = 0;
        int64_t bucketBatch = 0;
        int groupSize = 1;
        int worker = 0;
        int64_t runId = 0;
        const char *tier = ""; ///< static simdTierName storage
        int64_t enqueueNs = 0;
        int64_t dequeueNs = 0;
        int64_t bindNs = 0; ///< group drained, binding started
        int64_t runStartNs = 0;
        int64_t runEndNs = 0;
        int64_t doneNs = 0; ///< outputs sliced, completion signaled
        StreamId stream = 0;    ///< owning stream (0 = plain request)
        int64_t gen = kGenNone; ///< decode generation at submit
    };

    /** One generation stream's authoritative state. Guarded by
     *  streamMu_ for map access and flag flips; the cache tensors are
     *  touched only by the submitting thread (while !busy) or by the
     *  one worker running the stream's request (while busy), so the
     *  bulk copies never contend. */
    struct Stream {
        int64_t gen = 0; ///< cached rows (== next token position)
        bool busy = false; ///< one in-flight request per stream
        /** Authoritative K/V rows, one [maxSeq, D] tensor per
         *  cacheSpec_ entry; rows >= gen stay zero, which is what
         *  keeps shared-run session slots byte-equal to a fresh
         *  serial session's. */
        std::vector<Tensor> cache;
    };

    std::shared_ptr<RequestState> makeRequest(
        std::unordered_map<std::string, Tensor> &feeds,
        bool decodeDomain = false);
    /** Shared submit tail: register the state, count it, block-push
     *  it into the admission queue (throws when stopped). */
    RequestId enqueue(const std::shared_ptr<RequestState> &st);
    /** Compile (or planDir-load) one bucket of either domain. */
    std::unique_ptr<Bucket> buildBucket(const ModelFactory &model,
                                        int64_t batch, bool decode);
    /** Discover + cross-validate CacheWrite values and the decode
     *  graphs' pos/mask inputs; fills cacheSpec_/maxSeq_. */
    void resolveCacheTopology();
    void requireGenerative() const;
    void finishSubmit(const std::shared_ptr<RequestState> &st);
    void workerLoop(int worker);
    /** Pack @p group's rows into one session of bucket @p bucketIdx,
     *  run the plan once, slice each member's rows back out and
     *  signal completion. Single-member groups take the exact
     *  pre-coalescing bind path. */
    void runGroup(
        int worker, int bucketIdx,
        std::vector<std::shared_ptr<RequestState>> &group,
        int64_t totalRows);
    /** Index of the smallest bucket fitting @p rows; -1 if none. The
     *  ONE routing rule — bucketFor(), makeRequest() and the
     *  coalescer share it. */
    int bucketIndexFor(int64_t rows) const;

    std::shared_ptr<ParamStore> store_;
    ServeOptions options_;
    int workers_ = 1;
    /** Prefill/plain buckets first, then (generative engines) decode
     *  buckets: indices [0, prefillBuckets_) are the prompt domain,
     *  [prefillBuckets_, size) the decode domain. */
    std::vector<std::unique_ptr<Bucket>> buckets_;
    size_t prefillBuckets_ = 0;
    bool generative_ = false;
    /** Canonical cache geometry (names sorted; ids unset) every
     *  generative bucket was validated against. */
    std::vector<CacheNodeRef> cacheSpec_;
    int64_t maxSeq_ = 0; ///< shared cache extent (mask row width)
    /** Grouping policy (bucket batches + deadline window). */
    Coalescer coalescer_;
    /** Decode-domain grouping policy (stream-count batches). */
    Coalescer decodeCoalescer_;
    /** Every bucket's outputs lead with its batch dim, so a shared
     *  run can be sliced back per request. Computed once at
     *  construction; false pins every request to a solo run. */
    bool coalescable_ = false;

    BoundedQueue<std::shared_ptr<RequestState>> queue_;
    std::unique_ptr<ThreadPool> pool_;
    std::thread runner_; ///< holds the pool's persistent dispatch

    /** sessions_[worker][bucket]: lazily minted, worker-owned — no
     *  lock is ever taken to acquire a session. */
    std::vector<std::vector<std::unique_ptr<ExecContext>>> sessions_;

    mutable std::mutex stateMu_; ///< id -> in-flight request states
    std::unordered_map<RequestId, std::shared_ptr<RequestState>> states_;
    std::atomic<RequestId> nextId_{1};

    mutable std::mutex streamMu_; ///< stream map + gen/busy flips
    std::unordered_map<StreamId, Stream> streams_;
    StreamId nextStreamId_ = 1; ///< guarded by streamMu_

    mutable std::mutex doneMu_; ///< completion signaling only
    std::condition_variable doneCv_;

    std::atomic<int64_t> submitted_{0};
    std::atomic<int64_t> completed_{0};
    std::atomic<int64_t> rejected_{0};
    std::atomic<int64_t> failed_{0};
    std::atomic<int64_t> maxQueueDepth_{0};
    std::atomic<int64_t> sessionsCreated_{0};
    std::atomic<int64_t> coalescedRuns_{0};
    std::atomic<int64_t> coalescedRequests_{0};
    std::atomic<int64_t> streamsOpened_{0};
    std::atomic<int64_t> prefills_{0};
    std::atomic<int64_t> decodeSteps_{0};
    /** Summed plan execution time (ns) across all bucket runs — the
     *  numerator of ServeStats::amortizedRunUs. */
    std::atomic<int64_t> runNanos_{0};
    mutable std::mutex statsMu_; ///< latency samples
    LatencyRing latenciesUs_{kLatencyReservoirCap};
    std::chrono::steady_clock::time_point start_;

    /** Shared-run ids: every runGroup takes one, so coalesced members
     *  carry the SAME id into their lifecycle records (how the Chrome
     *  export knows which request lanes converge). */
    std::atomic<int64_t> runCounter_{0};
    /** Lifecycle ring (ServeOptions::traceCapacity records, oldest
     *  overwritten). Workers append under traceMu_ only when tracing
     *  is armed, so the untraced engine never touches it. */
    mutable std::mutex traceMu_;
    std::vector<LifecycleRecord> lifecycle_;
    size_t lifecycleNext_ = 0;
    int64_t lifecycleRecorded_ = 0;
};

/**
 * The unified serving handle: one object for both request styles.
 *
 *  - One-shot: run(feeds) submits and waits — sugar for
 *    engine.wait(engine.submit(feeds)), nothing more.
 *  - Generative: prefill(feeds) opens the handle's stream on first
 *    use (re-prefilling restarts it, exactly like submitPrefill) and
 *    decode(feeds) steps it; both wait for completion and return the
 *    outputs. The stream is closed on destruction.
 *
 * Because every call routes through the engine's submit/wait
 * machinery, Session results are byte-identical to driving the raw
 * entry points directly — that equivalence is a tested contract
 * (tests/test_decode.cc), not an aspiration. Handles are cheap:
 * mint one per logical conversation. A Session is movable (the moved-
 * from handle forgets its stream) but not copyable, and is NOT
 * thread-safe — share the engine across threads, not one handle.
 */
class Session
{
  public:
    Session(Session &&other) noexcept
        : engine_(other.engine_), stream_(other.stream_)
    {
        other.engine_ = nullptr;
        other.stream_ = 0;
    }

    Session &operator=(Session &&other) noexcept
    {
        if (this != &other) {
            close();
            engine_ = other.engine_;
            stream_ = other.stream_;
            other.engine_ = nullptr;
            other.stream_ = 0;
        }
        return *this;
    }

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    ~Session()
    {
        try {
            close();
        } catch (...) {
            // Destructors must not throw; a stream already closed
            // through the raw API is not worth terminating over.
        }
    }

    /** One-shot request: submit @p feeds, wait, return the outputs
     *  (one tensor per model output, sliced to the request's rows). */
    std::vector<Tensor>
    run(std::unordered_map<std::string, Tensor> feeds)
    {
        return engine_->wait(engine_->submit(std::move(feeds)));
    }

    /** Prompt the handle's stream (opened on first use): prefill the
     *  K/V cache from @p feeds and return the prompt logits. After it
     *  returns, generation() equals the prompt length. */
    std::vector<Tensor>
    prefill(std::unordered_map<std::string, Tensor> feeds)
    {
        if (stream_ == 0)
            stream_ = engine_->openStream();
        return engine_->wait(
            engine_->submitPrefill(stream_, std::move(feeds)));
    }

    /** One decode step on the handle's stream (requires a completed
     *  prefill): returns the next-token logits and advances
     *  generation() by one. */
    std::vector<Tensor>
    decode(std::unordered_map<std::string, Tensor> feeds)
    {
        if (stream_ == 0)
            throw std::logic_error(
                "Session::decode: no stream (call prefill first)");
        return engine_->wait(
            engine_->submitDecode(stream_, std::move(feeds)));
    }

    /** Rows cached for the handle's stream (0 before first prefill). */
    int64_t
    generation() const
    {
        return stream_ == 0 ? 0 : engine_->streamGeneration(stream_);
    }

    /** The underlying stream id (0 before first prefill) — exposed so
     *  migrating callers can mix Session and raw stream calls. */
    ServingEngine::StreamId stream() const { return stream_; }

    /** Release the handle's stream early (idempotent; destruction
     *  calls it too). The handle can prefill again afterwards, which
     *  opens a fresh stream. */
    void
    close()
    {
        if (engine_ != nullptr && stream_ != 0) {
            engine_->closeStream(stream_);
            stream_ = 0;
        }
    }

  private:
    friend class ServingEngine;
    explicit Session(ServingEngine &engine) : engine_(&engine) {}

    ServingEngine *engine_ = nullptr;
    ServingEngine::StreamId stream_ = 0;
};

inline Session
ServingEngine::session()
{
    return Session(*this);
}

} // namespace pe
