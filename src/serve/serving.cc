#include "serve/serving.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <unordered_set>

#include "obs/chrome.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "runtime/planner.h"

namespace pe {

namespace {

/** First-dim slice: the padded bucket output cut back to the
 *  request's rows. Outputs whose leading dim is not the bucket batch
 *  (scalars, reductions) are returned whole. */
Tensor
sliceRows(Tensor full, int64_t batch, int64_t rows)
{
    if (full.shape().empty() || full.shape()[0] != batch ||
        rows == batch)
        return full;
    Shape s = full.shape();
    s[0] = rows;
    Tensor out(s);
    std::memcpy(out.data(), full.data(), sizeof(float) * out.size());
    return out;
}

/** Coalesced-group slice: rows [@p off, @p off + @p rows) of a shared
 *  bucket output, one member's result. Only reached for coalescable
 *  models (every output leads with the batch dim — asserted at engine
 *  construction), so no whole-tensor fallback exists here. */
Tensor
sliceRowsAt(const Tensor &full, int64_t batch, int64_t off,
            int64_t rows)
{
    Shape s = full.shape();
    s[0] = rows;
    Tensor out(s);
    int64_t rowElems = full.size() / batch;
    std::memcpy(out.data(), full.data() + off * rowElems,
                sizeof(float) * out.size());
    return out;
}

/** Fit a calibration tensor to a bucket's batch: zero-pad the rows up
 *  (exactly what bindInputRows does to real traffic, so calibration
 *  sees representative pad statistics) or truncate them down. */
Tensor
fitRows(const Tensor &t, int64_t batch)
{
    if (t.shape().empty() || t.shape()[0] <= 0)
        throw std::invalid_argument(
            "ServingEngine: calibration batch has no rows");
    if (t.shape()[0] == batch)
        return t;
    Shape s = t.shape();
    int64_t rows = std::min(s[0], batch);
    int64_t row_elems = numel(s) / s[0];
    s[0] = batch;
    Tensor out(s); // zero-initialized: pad rows stay zero
    std::memcpy(out.data(), t.data(),
                sizeof(float) * static_cast<size_t>(rows * row_elems));
    return out;
}

} // namespace

namespace {

/** Shared throw helper for the ServeOptions setters: the message
 *  always names the offending field (the builder-setter contract). */
[[noreturn]] void
badServeField(const char *field, const std::string &why)
{
    throw std::invalid_argument(std::string("ServeOptions::") + field +
                                ": " + why);
}

std::vector<int64_t>
checkedBuckets(const char *field, std::vector<int64_t> b)
{
    if (b.empty())
        badServeField(field, "bucket list is empty");
    for (int64_t v : b) {
        if (v < 1)
            badServeField(field, "bucket size " + std::to_string(v) +
                                     " is < 1");
    }
    return b;
}

} // namespace

ServeOptions &
ServeOptions::withBuckets(std::vector<int64_t> b)
{
    buckets = checkedBuckets("buckets", std::move(b));
    return *this;
}

ServeOptions &
ServeOptions::withDecodeBuckets(std::vector<int64_t> b)
{
    decodeBuckets = checkedBuckets("decodeBuckets", std::move(b));
    return *this;
}

ServeOptions &
ServeOptions::withWorkers(int n)
{
    if (n < 1)
        badServeField("workers", std::to_string(n) + " is < 1");
    workers = n;
    return *this;
}

ServeOptions &
ServeOptions::withCoalesceWindow(int64_t us)
{
    if (us < 0)
        badServeField("coalesceWindowUs",
                      std::to_string(us) + " is negative (0 disables)");
    coalesceWindowUs = us;
    return *this;
}

ServeOptions &
ServeOptions::withQueueCapacity(size_t n)
{
    if (n == 0)
        badServeField("queueCapacity", "0 (must hold >= 1 request)");
    queueCapacity = n;
    return *this;
}

std::string
ServeStats::summary() const
{
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "serving: %lld done / %lld submitted | "
                  "%lld rejected, %lld failed | %.1f req/s\n",
                  static_cast<long long>(completed),
                  static_cast<long long>(submitted),
                  static_cast<long long>(rejected),
                  static_cast<long long>(failed), throughputRps);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "latency: p50 %.0fus p99 %.0fus (%lld samples) | "
                  "amortized run %.1fus/req\n",
                  p50LatencyUs, p99LatencyUs,
                  static_cast<long long>(latencySamples),
                  amortizedRunUs);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "runs: %lld (%lld shared, rate %.2f) | "
                  "queue depth %lld (max %lld) | sessions %lld\n",
                  static_cast<long long>(runs),
                  static_cast<long long>(coalescedRuns), coalesceRate,
                  static_cast<long long>(queueDepth),
                  static_cast<long long>(maxQueueDepth),
                  static_cast<long long>(sessionsCreated));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%-8s %10s %10s %10s %10s  %s\n",
                  "bucket", "hits", "runs", "pad rows", "run ms",
                  "tier");
    out += buf;
    if (streamsOpened > 0) {
        std::snprintf(buf, sizeof(buf),
                      "streams: %lld opened | %lld prefills, "
                      "%lld decode steps\n",
                      static_cast<long long>(streamsOpened),
                      static_cast<long long>(prefills),
                      static_cast<long long>(decodeSteps));
        out += buf;
    }
    for (const BucketStats &b : buckets) {
        std::string label =
            (b.decode ? "d" : "b") + std::to_string(b.batch);
        std::snprintf(buf, sizeof(buf),
                      "%-8s %10lld %10lld %10lld %10.2f  %s\n",
                      label.c_str(), static_cast<long long>(b.hits),
                      static_cast<long long>(b.runs),
                      static_cast<long long>(b.paddedRows),
                      b.runNs / 1e6, b.tier.c_str());
        out += buf;
    }
    return out;
}

std::string
ServeStats::json() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"submitted\":%lld,\"completed\":%lld,\"rejected\":%lld,"
        "\"failed\":%lld,\"queue_depth\":%lld,"
        "\"queue_depth_max\":%lld,\"sessions_created\":%lld,"
        "\"runs\":%lld,\"coalesced_runs\":%lld,"
        "\"coalesced_requests\":%lld,\"coalesce_rate\":%.17g,"
        "\"streams_opened\":%lld,\"prefills\":%lld,"
        "\"decode_steps\":%lld,"
        "\"amortized_run_us\":%.17g,\"latency_samples\":%lld,"
        "\"p50_latency_us\":%.17g,\"p99_latency_us\":%.17g,"
        "\"throughput_rps\":%.17g,\"elapsed_seconds\":%.17g,"
        "\"buckets\":[",
        static_cast<long long>(submitted),
        static_cast<long long>(completed),
        static_cast<long long>(rejected),
        static_cast<long long>(failed),
        static_cast<long long>(queueDepth),
        static_cast<long long>(maxQueueDepth),
        static_cast<long long>(sessionsCreated),
        static_cast<long long>(runs),
        static_cast<long long>(coalescedRuns),
        static_cast<long long>(coalescedRequests), coalesceRate,
        static_cast<long long>(streamsOpened),
        static_cast<long long>(prefills),
        static_cast<long long>(decodeSteps),
        amortizedRunUs, static_cast<long long>(latencySamples),
        p50LatencyUs, p99LatencyUs, throughputRps, elapsedSeconds);
    std::string out = buf;
    for (size_t i = 0; i < buckets.size(); ++i) {
        const BucketStats &b = buckets[i];
        if (i)
            out += ",";
        std::snprintf(buf, sizeof(buf),
                      "{\"batch\":%lld,\"decode\":%d,"
                      "\"hits\":%lld,\"runs\":%lld,"
                      "\"padded_rows\":%lld,\"run_ns\":%lld,"
                      "\"tier\":\"%s\",\"latency_hist_us\":[",
                      static_cast<long long>(b.batch),
                      b.decode ? 1 : 0,
                      static_cast<long long>(b.hits),
                      static_cast<long long>(b.runs),
                      static_cast<long long>(b.paddedRows),
                      static_cast<long long>(b.runNs),
                      b.tier.c_str());
        out += buf;
        for (size_t j = 0; j < b.latencyHistUs.size(); ++j) {
            if (j)
                out += ",";
            out += std::to_string(b.latencyHistUs[j]);
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

ServingEngine::ServingEngine(const ModelFactory &model,
                             std::shared_ptr<ParamStore> store,
                             ServeOptions options)
    : store_(store ? std::move(store) : std::make_shared<ParamStore>()),
      options_(std::move(options)),
      workers_(std::max(1, options_.workers)),
      queue_(options_.queueCapacity)
{
    // Sessions execute serially inside; concurrency comes from
    // running `workers` sessions at once (see file comment).
    options_.compile.numThreads = 1;

    std::vector<int64_t> batches = options_.buckets;
    batches.erase(std::remove_if(batches.begin(), batches.end(),
                                 [](int64_t b) { return b < 1; }),
                  batches.end());
    std::sort(batches.begin(), batches.end());
    batches.erase(std::unique(batches.begin(), batches.end()),
                  batches.end());
    if (batches.empty())
        batches.push_back(1);
    coalescer_ = Coalescer(batches, options_.coalesceWindowUs);

    // One compiled plan per (precision, shape bucket). Every bucket
    // binds the same frozen ParamStore; the factory must name
    // parameters batch-independently (true of NetBuilder and the
    // model zoo). With ServeOptions::planDir set the plans come from
    // disk instead — the factory is never invoked and the snapshot
    // below proves no compile pipeline stage ran.
    const bool from_plans = !options_.planDir.empty();
    PipelineCounters before = pipelineCounters();
    for (int64_t batch : batches)
        buckets_.push_back(buildBucket(model, batch, false));
    prefillBuckets_ = buckets_.size();

    // Generative engines append the decode domain: one single-token
    // plan per stream-count bucket, built by the decode factory.
    generative_ = static_cast<bool>(options_.decodeFactory);
    if (generative_) {
        std::vector<int64_t> dbatches = options_.decodeBuckets;
        dbatches.erase(std::remove_if(dbatches.begin(), dbatches.end(),
                                      [](int64_t b) { return b < 1; }),
                       dbatches.end());
        std::sort(dbatches.begin(), dbatches.end());
        dbatches.erase(std::unique(dbatches.begin(), dbatches.end()),
                       dbatches.end());
        if (dbatches.empty())
            dbatches.push_back(1);
        decodeCoalescer_ =
            Coalescer(dbatches, options_.coalesceWindowUs);
        for (int64_t batch : dbatches)
            buckets_.push_back(
                buildBucket(options_.decodeFactory, batch, true));
        resolveCacheTopology();
    }
    if (from_plans && pipelineCounters() != before)
        throw std::logic_error(
            "ServingEngine: a compile pipeline stage ran while "
            "serving from a plan directory — the zero-recompile "
            "contract is broken");

    // A shared run is sliceable per request only when every output
    // leads with the batch dim; a scalar/reduction output would mix
    // the group's rows. Checked once here so the worker hot path
    // carries a single bool.
    coalescable_ = true;
    for (const auto &b : buckets_) {
        for (int oid : b->cg.graph.outputs()) {
            const Shape &os = b->cg.graph.node(oid).shape;
            if (os.empty() || os[0] != b->batch)
                coalescable_ = false;
        }
    }

    sessions_.resize(workers_);
    for (auto &row : sessions_)
        row.resize(buckets_.size());

    start_ = std::chrono::steady_clock::now();

    // Park the serving workers on a dedicated pool via one persistent
    // dispatch; its completion barrier is the shutdown join. The pool
    // is engine-owned (not HostDevice's shared one) so a long-lived
    // engine never starves other dispatchers.
    pool_ = std::make_unique<ThreadPool>(workers_);
    runner_ = std::thread([this] {
        pool_->dispatch(workers_, [this](int w) { workerLoop(w); });
    });
}

std::unique_ptr<ServingEngine::Bucket>
ServingEngine::buildBucket(const ModelFactory &model, int64_t batch,
                           bool decode)
{
    auto b = std::make_unique<Bucket>();
    b->batch = batch;
    b->decode = decode;
    if (!options_.planDir.empty()) {
        std::string path =
            options_.planDir + "/" +
            planFileName(options_.compile.precision, batch, decode);
        PlanData pd = deserializePlan(readPlanFile(path));
        if (pd.precision != options_.compile.precision)
            throw std::invalid_argument(
                "ServingEngine: plan '" + path +
                "' precision does not match ServeOptions");
        if (pd.artifact.numThreads != 1)
            throw std::invalid_argument(
                "ServingEngine: plan '" + path +
                "' was compiled at numThreads != 1; serving "
                "sessions are serial inside");
        std::vector<int> input_ids = pd.graph.inputIds();
        if (input_ids.empty() ||
            pd.graph.node(input_ids[0]).shape.empty() ||
            pd.graph.node(input_ids[0]).shape[0] != batch)
            throw std::invalid_argument(
                "ServingEngine: plan '" + path +
                "' batch does not match bucket " +
                std::to_string(batch));
        // All bucket plans freeze the same weights, so repeated
        // sets write identical values.
        for (auto &[name, t] : pd.params)
            store_->set(name, std::move(t));
        b->cg.graph = std::move(pd.graph);
        b->cg.lossId = pd.lossId;
        b->cg.order = pd.artifact.order;
        b->cg.variants = pd.artifact.variants;
        b->cg.report = std::move(pd.report);
        b->exec = std::make_unique<Executor>(
            b->cg.graph, std::move(pd.artifact), *store_);
    } else {
        ServedModel m = model(batch);
        if (m.outputs.empty())
            throw std::invalid_argument(
                "ServingEngine: model factory produced no outputs");
        // Quantized buckets: stamp observed ranges before the
        // QuantizePass consumes them. Feeds are fitted to this
        // bucket's batch (zero-pad up / truncate down), matching
        // the padding real traffic gets.
        if (options_.compile.precision != Precision::F32 &&
            !options_.calibration.empty()) {
            std::vector<std::unordered_map<std::string, Tensor>>
                fitted;
            fitted.reserve(options_.calibration.size());
            for (const auto &feeds : options_.calibration) {
                std::unordered_map<std::string, Tensor> fit;
                for (const auto &[name, t] : feeds) {
                    // One calibration map serves both generative
                    // domains: feeds naming Inputs this bucket's
                    // graph lacks (pos/mask on the prefill side)
                    // are dropped, not rejected.
                    bool known = false;
                    for (int id : m.graph.inputIds())
                        if (m.graph.node(id).name == name) {
                            known = true;
                            break;
                        }
                    if (known)
                        fit.emplace(name, fitRows(t, batch));
                }
                fitted.push_back(std::move(fit));
            }
            calibrate(m.graph, *store_, fitted);
        }
        b->cg = compileInferenceGraph(m.graph, m.outputs,
                                      options_.compile, store_);
        ExecOptions eopt;
        eopt.variants = b->cg.variants;
        eopt.numThreads = 1;
        eopt.forceScalarTier = options_.compile.forceScalarTier;
        b->exec = std::make_unique<Executor>(
            b->cg.graph, b->cg.order, *store_, std::move(eopt));
    }
    finalizeExecReport(b->cg.report, *b->exec);
    b->cg.report.kernelFallbacks = b->exec->fallbackCount();
    b->cg.report.fallbackKernels = b->exec->fallbackKernels();
    return b;
}

void
ServingEngine::resolveCacheTopology()
{
    // Collect every bucket's CacheWrite values, sorted by name — the
    // name is the prefill <-> decode correspondence key, so it must
    // be present and unique within each graph.
    for (auto &b : buckets_) {
        const Graph &g = b->cg.graph;
        for (const Node &n : g.nodes()) {
            if (n.op != OpKind::CacheWrite)
                continue;
            if (n.name.empty())
                throw std::invalid_argument(
                    "ServingEngine: unnamed CacheWrite node in " +
                    std::string(b->decode ? "decode" : "prefill") +
                    " bucket " + std::to_string(b->batch) +
                    " — cache values correspond by name");
            CacheNodeRef ref;
            ref.name = n.name;
            ref.id = n.id;
            ref.maxSeq = n.attrs.getInt("maxSeq");
            ref.dim = n.shape.back();
            if (b->decode) {
                if (n.shape.size() != 3 || n.shape[0] != b->batch)
                    throw std::invalid_argument(
                        "ServingEngine: decode cache " + n.name +
                        " must be [streams, maxSeq, D]");
            } else if (n.shape.size() != 2) {
                throw std::invalid_argument(
                    "ServingEngine: prefill cache " + n.name +
                    " must be rank-2 [maxSeq, D]");
            }
            b->cacheNodes.push_back(std::move(ref));
        }
        std::sort(b->cacheNodes.begin(), b->cacheNodes.end(),
                  [](const CacheNodeRef &a, const CacheNodeRef &c) {
                      return a.name < c.name;
                  });
        for (size_t i = 1; i < b->cacheNodes.size(); ++i) {
            if (b->cacheNodes[i].name == b->cacheNodes[i - 1].name)
                throw std::invalid_argument(
                    "ServingEngine: duplicate cache name " +
                    b->cacheNodes[i].name);
        }
        // Decode buckets carry the engine-synthesized inputs.
        if (b->decode) {
            b->posInput = b->exec->inputId("pos");
            b->maskInput = b->exec->inputId("mask");
            if (b->posInput < 0 || b->maskInput < 0)
                throw std::invalid_argument(
                    "ServingEngine: decode model must declare 'pos' "
                    "and 'mask' inputs");
        }
    }

    // The canonical geometry comes from the first decode bucket;
    // every other generative bucket must agree name-for-name.
    const Bucket &canon = *buckets_[prefillBuckets_];
    if (canon.cacheNodes.empty())
        throw std::invalid_argument(
            "ServingEngine: decode factory produced no CacheWrite "
            "values — nothing persists between steps");
    cacheSpec_ = canon.cacheNodes;
    for (CacheNodeRef &c : cacheSpec_)
        c.id = -1; // geometry only; ids are graph-local
    maxSeq_ = cacheSpec_[0].maxSeq;
    for (const auto &b : buckets_) {
        if (b->cacheNodes.size() != cacheSpec_.size())
            throw std::invalid_argument(
                "ServingEngine: " +
                std::string(b->decode ? "decode" : "prefill") +
                " bucket " + std::to_string(b->batch) + " has " +
                std::to_string(b->cacheNodes.size()) + " cache values"
                ", expected " + std::to_string(cacheSpec_.size()));
        for (size_t i = 0; i < cacheSpec_.size(); ++i) {
            const CacheNodeRef &got = b->cacheNodes[i];
            const CacheNodeRef &want = cacheSpec_[i];
            if (got.name != want.name || got.maxSeq != want.maxSeq ||
                got.dim != want.dim)
                throw std::invalid_argument(
                    "ServingEngine: cache value " + got.name +
                    " of bucket " + std::to_string(b->batch) +
                    " does not match the decode graph's geometry "
                    "(name/maxSeq/D must pair up across graphs)");
            if (got.maxSeq != maxSeq_)
                throw std::invalid_argument(
                    "ServingEngine: all cache values must share one "
                    "maxSeq (the synthesized mask's width)");
        }
        // A prompt longer than the cache could never be written.
        if (!b->decode && b->batch > maxSeq_)
            throw std::invalid_argument(
                "ServingEngine: prompt bucket " +
                std::to_string(b->batch) + " exceeds maxSeq " +
                std::to_string(maxSeq_));
        // The decode mask is one row per stream, maxSeq wide.
        if (b->decode) {
            const Shape &ms = b->cg.graph.node(b->maskInput).shape;
            if (ms.size() != 2 || ms[0] != b->batch ||
                ms[1] != maxSeq_)
                throw std::invalid_argument(
                    "ServingEngine: decode 'mask' input must be "
                    "[streams, maxSeq]");
            const Shape &ps = b->cg.graph.node(b->posInput).shape;
            if (ps.size() != 2 || ps[0] != b->batch || ps[1] != 1)
                throw std::invalid_argument(
                    "ServingEngine: decode 'pos' input must be "
                    "[streams, 1]");
        }
    }
}

ServingEngine::~ServingEngine()
{
    // close() rejects new submissions but still delivers everything
    // already queued, so destruction drains in-flight work.
    queue_.close();
    if (runner_.joinable())
        runner_.join();
}

std::string
ServingEngine::planFileName(Precision p, int64_t batch, bool decode)
{
    return std::string(precisionName(p)) + (decode ? "_d" : "_b") +
           std::to_string(batch) + ".peplan";
}

void
ServingEngine::savePlans(const std::string &dir) const
{
    std::filesystem::create_directories(dir);
    for (const auto &b : buckets_) {
        std::string path =
            dir + "/" +
            planFileName(options_.compile.precision, b->batch,
                         b->decode);
        writePlanFile(path, serializePlan(b->cg.graph,
                                          b->exec->exportArtifact(),
                                          b->cg.report, *store_, "",
                                          b->cg.lossId));
    }
}

int
ServingEngine::bucketIndexFor(int64_t rows) const
{
    // buckets_ was built from the same normalized batch list the
    // coalescer holds, so policy indices ARE bucket indices.
    return coalescer_.routeSingle(rows);
}

int64_t
ServingEngine::bucketFor(int64_t rows) const
{
    int i = bucketIndexFor(rows);
    return i < 0 ? -1 : buckets_[i]->batch;
}

const CompileReport &
ServingEngine::bucketReport(int64_t batch) const
{
    for (const auto &b : buckets_) {
        if (b->batch == batch)
            return b->cg.report;
    }
    throw std::invalid_argument("ServingEngine: no bucket of batch " +
                                std::to_string(batch));
}

std::shared_ptr<ServingEngine::RequestState>
ServingEngine::makeRequest(
    std::unordered_map<std::string, Tensor> &feeds, bool decodeDomain)
{
    if (feeds.empty())
        throw std::invalid_argument("ServingEngine: empty feed set");
    int64_t rows = -1;
    for (const auto &[name, t] : feeds) {
        if (t.shape().empty())
            throw std::invalid_argument(
                "ServingEngine: scalar feed " + name +
                " has no row dimension");
        if (rows < 0)
            rows = t.shape()[0];
        else if (t.shape()[0] != rows)
            throw std::invalid_argument(
                "ServingEngine: feeds disagree on rows (" + name +
                ")");
    }

    int bucket = -1;
    if (decodeDomain) {
        int i = decodeCoalescer_.routeSingle(rows);
        if (i >= 0)
            bucket = static_cast<int>(prefillBuckets_) + i;
    } else {
        bucket = bucketIndexFor(rows);
    }
    if (bucket < 0)
        throw std::invalid_argument(
            "ServingEngine: request rows " + std::to_string(rows) +
            " exceed the largest bucket (" +
            std::to_string(decodeDomain
                               ? buckets_.back()->batch
                               : buckets_[prefillBuckets_ - 1]->batch) +
            ")");

    Bucket &bk = *buckets_[bucket];
    auto st = std::make_shared<RequestState>();
    st->bucket = bucket;
    st->rows = rows;
    // On a generative engine every prompt-domain request runs solo:
    // a prefill graph's rows cross-attend (causal attention over the
    // packed batch), so packing two requests would mix their tokens.
    // Plain engines keep kGenNone — the pre-generation rule verbatim.
    if (generative_ && !decodeDomain)
        st->gen = kGenSolo;
    st->feeds.reserve(feeds.size());
    for (auto &[name, t] : feeds) {
        int id = bk.exec->inputId(name);
        if (id < 0)
            throw std::invalid_argument(
                "ServingEngine: no input named " + name);
        const Shape &want = bk.cg.graph.node(id).shape;
        if (t.shape().size() != want.size() ||
            !std::equal(t.shape().begin() + 1, t.shape().end(),
                        want.begin() + 1))
            throw std::invalid_argument(
                "ServingEngine: feed " + name + " shape " +
                shapeToString(t.shape()) +
                " does not match input shape " + shapeToString(want) +
                " (rows may differ)");
        st->feeds.emplace_back(id, std::move(t));
    }
    // Sessions are reused across requests, so an unfed input would
    // silently read the PREVIOUS request's staging bytes (or warm-up
    // zeros on a cold session) — require full coverage instead. Feed
    // names are unique map keys and unknown names threw above, so
    // count equality means every compiled Input is bound.
    size_t want = bk.cg.graph.inputIds().size();
    if (st->feeds.size() != want)
        throw std::invalid_argument(
            "ServingEngine: request binds " +
            std::to_string(st->feeds.size()) + " of " +
            std::to_string(want) + " model inputs");
    st->id = nextId_.fetch_add(1, std::memory_order_relaxed);
    st->submitTime = std::chrono::steady_clock::now();
    if (options_.trace)
        st->enqueueNs = traceNowNs();
    return st;
}

void
ServingEngine::finishSubmit(const std::shared_ptr<RequestState> &st)
{
    int64_t depth = static_cast<int64_t>(queue_.size());
    int64_t prev = maxQueueDepth_.load(std::memory_order_relaxed);
    while (depth > prev &&
           !maxQueueDepth_.compare_exchange_weak(
               prev, depth, std::memory_order_relaxed)) {
    }
}

ServingEngine::RequestId
ServingEngine::enqueue(const std::shared_ptr<RequestState> &st)
{
    {
        std::lock_guard<std::mutex> lock(stateMu_);
        states_.emplace(st->id, st);
    }
    // Count the submission BEFORE the enqueue: a worker can pop and
    // complete the request before this thread runs another line, and
    // completed > submitted must never be observable.
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (!queue_.push(st)) {
        submitted_.fetch_sub(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(stateMu_);
        states_.erase(st->id);
        throw std::runtime_error("ServingEngine: engine is stopped");
    }
    finishSubmit(st);
    return st->id;
}

ServingEngine::RequestId
ServingEngine::submit(std::unordered_map<std::string, Tensor> feeds)
{
    return enqueue(makeRequest(feeds));
}

ServingEngine::RequestId
ServingEngine::trySubmit(std::unordered_map<std::string, Tensor> feeds)
{
    std::shared_ptr<RequestState> st = makeRequest(feeds);
    {
        std::lock_guard<std::mutex> lock(stateMu_);
        states_.emplace(st->id, st);
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (!queue_.tryPush(st)) {
        submitted_.fetch_sub(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(stateMu_);
            states_.erase(st->id);
        }
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return kRejected;
    }
    finishSubmit(st);
    return st->id;
}

// ---- generative stream API -------------------------------------------

void
ServingEngine::requireGenerative() const
{
    if (!generative_)
        throw std::logic_error(
            "ServingEngine: stream API requires "
            "ServeOptions::decodeFactory");
}

ServingEngine::StreamId
ServingEngine::openStream()
{
    requireGenerative();
    std::lock_guard<std::mutex> lock(streamMu_);
    StreamId id = nextStreamId_++;
    Stream s;
    s.cache.reserve(cacheSpec_.size());
    for (const CacheNodeRef &c : cacheSpec_)
        s.cache.push_back(Tensor::zeros({c.maxSeq, c.dim}));
    streams_.emplace(id, std::move(s));
    streamsOpened_.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
ServingEngine::closeStream(StreamId id)
{
    requireGenerative();
    std::lock_guard<std::mutex> lock(streamMu_);
    auto it = streams_.find(id);
    if (it == streams_.end())
        throw std::out_of_range("ServingEngine: unknown stream " +
                                std::to_string(id));
    if (it->second.busy)
        throw std::runtime_error(
            "ServingEngine: stream " + std::to_string(id) +
            " has a request in flight; wait() it before closing");
    streams_.erase(it);
}

int64_t
ServingEngine::streamGeneration(StreamId id) const
{
    requireGenerative();
    std::lock_guard<std::mutex> lock(streamMu_);
    auto it = streams_.find(id);
    if (it == streams_.end())
        throw std::out_of_range("ServingEngine: unknown stream " +
                                std::to_string(id));
    return it->second.gen;
}

int64_t
ServingEngine::streamCacheBytes() const
{
    int64_t bytes = 0;
    for (const CacheNodeRef &c : cacheSpec_)
        bytes += c.maxSeq * c.dim *
                 static_cast<int64_t>(sizeof(float));
    return bytes;
}

int64_t
ServingEngine::decodeBucketFor(int64_t streams) const
{
    requireGenerative();
    int i = decodeCoalescer_.routeSingle(streams);
    return i < 0 ? -1 : buckets_[prefillBuckets_ + i]->batch;
}

ServingEngine::RequestId
ServingEngine::submitPrefill(
    StreamId stream, std::unordered_map<std::string, Tensor> feeds)
{
    requireGenerative();
    {
        std::lock_guard<std::mutex> lock(streamMu_);
        auto it = streams_.find(stream);
        if (it == streams_.end())
            throw std::out_of_range(
                "ServingEngine: unknown stream " +
                std::to_string(stream));
        if (it->second.busy)
            throw std::runtime_error(
                "ServingEngine: stream " + std::to_string(stream) +
                " already has a request in flight");
        it->second.busy = true;
    }
    try {
        std::shared_ptr<RequestState> st = makeRequest(feeds, false);
        st->stream = stream;
        st->isPrefill = true;
        st->gen = kGenSolo; // prefill owns the whole session cache
        prefills_.fetch_add(1, std::memory_order_relaxed);
        return enqueue(st);
    } catch (...) {
        std::lock_guard<std::mutex> lock(streamMu_);
        auto it = streams_.find(stream);
        if (it != streams_.end())
            it->second.busy = false;
        throw;
    }
}

ServingEngine::RequestId
ServingEngine::submitDecode(
    StreamId stream, std::unordered_map<std::string, Tensor> feeds)
{
    requireGenerative();
    int64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(streamMu_);
        auto it = streams_.find(stream);
        if (it == streams_.end())
            throw std::out_of_range(
                "ServingEngine: unknown stream " +
                std::to_string(stream));
        Stream &s = it->second;
        if (s.busy)
            throw std::runtime_error(
                "ServingEngine: stream " + std::to_string(stream) +
                " already has a request in flight");
        if (s.gen <= 0)
            throw std::runtime_error(
                "ServingEngine: stream " + std::to_string(stream) +
                " has no prefilled prompt to decode from");
        if (s.gen >= maxSeq_)
            throw std::runtime_error(
                "ServingEngine: stream " + std::to_string(stream) +
                " is at maxSeq capacity (" +
                std::to_string(maxSeq_) + ")");
        s.busy = true;
        gen = s.gen;
    }
    try {
        if (feeds.count("pos") || feeds.count("mask"))
            throw std::invalid_argument(
                "ServingEngine: 'pos' and 'mask' are synthesized "
                "from the stream's generation — do not feed them");
        // One row per stream: the write position is the generation,
        // and columns past it are masked hard enough that exp()
        // underflows to exact 0.0f (bit-parity with a fresh session
        // whose tail rows are true zeros).
        Tensor pos({1, 1});
        pos[0] = static_cast<float>(gen);
        Tensor mask({1, maxSeq_});
        for (int64_t j = 0; j <= gen; ++j)
            mask[j] = 0.0f;
        for (int64_t j = gen + 1; j < maxSeq_; ++j)
            mask[j] = -1e30f;
        feeds.emplace("pos", std::move(pos));
        feeds.emplace("mask", std::move(mask));
        std::shared_ptr<RequestState> st = makeRequest(feeds, true);
        st->stream = stream;
        st->isDecode = true;
        st->gen = gen;
        decodeSteps_.fetch_add(1, std::memory_order_relaxed);
        return enqueue(st);
    } catch (...) {
        std::lock_guard<std::mutex> lock(streamMu_);
        auto it = streams_.find(stream);
        if (it != streams_.end())
            it->second.busy = false;
        throw;
    }
}

void
ServingEngine::workerLoop(int worker)
{
    // A drained request that did not fit the group in progress: it
    // becomes the NEXT group's leader, so FIFO order is preserved and
    // nothing is ever pushed back onto the queue. Always consumed
    // before the next pop, so shutdown cannot strand it.
    std::shared_ptr<RequestState> carry;
    std::shared_ptr<RequestState> leader;
    while (true) {
        if (carry) {
            leader = std::move(carry);
        } else {
            if (!queue_.pop(leader))
                break;
            if (options_.trace)
                leader->dequeueNs = traceNowNs();
        }

        std::vector<std::shared_ptr<RequestState>> group;
        int64_t total = leader->rows;
        int bucketIdx = leader->bucket;
        const int64_t gen = leader->gen;
        const bool decodeDom = leader->isDecode;
        group.push_back(std::move(leader));

        // Each domain drains under its own bucket set; a solo-tagged
        // leader (prefill) skips the drain entirely — waiting the
        // window out could never buy it company.
        const Coalescer &co =
            decodeDom ? decodeCoalescer_ : coalescer_;
        if (coalescable_ && co.enabled() && gen != kGenSolo) {
            // Continuous batching: drain compatible queued requests
            // into this group until the largest bucket is exactly
            // full, the deadline window expires, or an arrival does
            // not fit. A lone request goes out alone after at most
            // windowUs. Admission is (rows, generation)-aware: only
            // equal cache generations share a run (they must read
            // identical synthesized pos/mask feeds), and cross-domain
            // pairs never match (kGenNone != any generation).
            auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(co.windowUs());
            std::shared_ptr<RequestState> next;
            while (!co.full(total) &&
                   queue_.popUntil(next, deadline)) {
                if (options_.trace)
                    next->dequeueNs = traceNowNs();
                if (next->isDecode == decodeDom &&
                    co.admits({total, gen},
                              {next->rows, next->gen})) {
                    total += next->rows;
                    group.push_back(std::move(next));
                } else {
                    carry = std::move(next);
                    break;
                }
            }
            // The group routes to the smallest bucket fitting the
            // PACKED total — group pad waste, not per-request pad
            // waste (a 3-row + 1-row pair shares one bucket-4 run).
            if (group.size() > 1)
                bucketIdx =
                    (decodeDom ? static_cast<int>(prefillBuckets_)
                               : 0) +
                    co.routeGroup(total);
        }
        runGroup(worker, bucketIdx, group, total);
    }
}

void
ServingEngine::runGroup(
    int worker, int bucketIdx,
    std::vector<std::shared_ptr<RequestState>> &group,
    int64_t totalRows)
{
    Bucket &bk = *buckets_[bucketIdx];
    const bool tracing = options_.trace;
    // One id per plan execution, shared by every member: coalesced
    // request lanes carry the same run id into the Chrome export.
    const int64_t runId =
        runCounter_.fetch_add(1, std::memory_order_relaxed) + 1;
    int64_t bindNs = 0, runStartNs = 0, runEndNs = 0;
    int64_t runNs = 0;
    std::string error;

    // Any worker-path throw (first-bind validation, allocation
    // failure) is captured into every member and rethrown by their
    // wait()s — an uncaught exception here would std::terminate the
    // process and strand every waiter.
    try {
        // Session acquisition is lock-free by ownership: worker w is
        // the only thread that ever touches sessions_[w]. After one
        // request per (worker, bucket) pair the pool is warm and the
        // hot path performs no allocation besides result tensors.
        std::unique_ptr<ExecContext> &sess =
            sessions_[worker][bucketIdx];
        if (!sess) {
            sess = bk.exec->makeContext();
            sessionsCreated_.fetch_add(1, std::memory_order_relaxed);
            // Traced engines arm every session at mint time, so the
            // executor's kernel steps land inside the serving run
            // spans. Sessions are serial inside (numThreads = 1), so
            // shard spans would never appear — skip them.
            if (tracing)
                bk.exec->armTrace(*sess, options_.traceCapacity,
                                  /*shardSpans=*/false);
        }
        if (tracing)
            bindNs = traceNowNs();

        // Generative gather: copy each decode member's authoritative
        // stream cache into its slot of the session's persistent
        // cache region. A stream's rows >= gen are zero, so the slot
        // ends up byte-equal to a fresh serial session at the same
        // generation — the root of shared-vs-solo bit parity.
        // (Prefill skips this: it rewrites rows [0, S) itself and
        // nothing beyond its prompt is ever fetched back.)
        if (!bk.cacheNodes.empty()) {
            int64_t off = 0;
            for (const auto &st : group) {
                if (st->isDecode) {
                    std::lock_guard<std::mutex> lk(streamMu_);
                    const Stream &s = streams_.at(st->stream);
                    for (size_t i = 0; i < bk.cacheNodes.size(); ++i)
                        bk.exec->bindCacheRows(
                            *sess, bk.cacheNodes[i].id, off, 0,
                            s.cache[i]);
                }
                off += st->rows;
            }
        }

        if (group.size() == 1) {
            // The exact pre-coalescing bind: pad-to-bucket zero-fill.
            for (const auto &[id, t] : group[0]->feeds)
                bk.exec->bindInputRows(*sess, id, t);
        } else {
            // Pack each member's rows contiguously into the shared
            // staging buffers, then zero the pad tail once — the
            // packed buffer is byte-identical to the concatenation
            // of the members' independently padded binds.
            int64_t off = 0;
            for (const auto &st : group) {
                for (const auto &[id, t] : st->feeds)
                    bk.exec->bindInputRowsAt(*sess, id, t, off);
                off += st->rows;
            }
            for (int id : bk.cg.graph.inputIds())
                bk.exec->zeroInputRowsFrom(*sess, id, totalRows);
        }

        runStartNs = traceNowNs();
        bk.exec->run(*sess);
        runEndNs = traceNowNs();
        runNs = runEndNs - runStartNs;

        const std::vector<int> &outs = bk.cg.graph.outputs();
        if (group.size() == 1) {
            RequestState &st = *group[0];
            st.outputs.reserve(outs.size());
            for (int oid : outs)
                st.outputs.push_back(sliceRows(
                    bk.exec->fetch(*sess, oid), bk.batch, st.rows));
        } else {
            // One fetch per output; each member slices its own rows
            // back out of the shared result.
            for (int oid : outs) {
                Tensor full = bk.exec->fetch(*sess, oid);
                int64_t off = 0;
                for (const auto &st : group) {
                    st->outputs.push_back(sliceRowsAt(
                        full, bk.batch, off, st->rows));
                    off += st->rows;
                }
            }
        }
        // Generative scatter: pull the freshly written cache rows
        // back into each member's stream state and advance its
        // generation, so the NEXT submit on the stream (gated on the
        // done flag below) sees consistent state.
        if (!bk.cacheNodes.empty()) {
            int64_t off = 0;
            for (const auto &st : group) {
                if (st->stream != 0) {
                    std::lock_guard<std::mutex> lk(streamMu_);
                    auto sit = streams_.find(st->stream);
                    if (sit != streams_.end()) {
                        Stream &s = sit->second;
                        for (size_t i = 0; i < bk.cacheNodes.size();
                             ++i) {
                            const CacheNodeRef &c = bk.cacheNodes[i];
                            if (st->isPrefill) {
                                // The prompt's rows; the rest of the
                                // stream cache returns to zero (a
                                // re-prefill restarts the stream).
                                Tensor rows = bk.exec->fetchCacheRows(
                                    *sess, c.id, 0, 0, st->rows);
                                std::memset(s.cache[i].data(), 0,
                                            sizeof(float) *
                                                s.cache[i].size());
                                std::memcpy(s.cache[i].data(),
                                            rows.data(),
                                            sizeof(float) *
                                                rows.size());
                            } else {
                                // The one row this step wrote, out of
                                // this member's slot.
                                Tensor row = bk.exec->fetchCacheRows(
                                    *sess, c.id, off, st->gen, 1);
                                std::memcpy(s.cache[i].data() +
                                                st->gen * c.dim,
                                            row.data(),
                                            sizeof(float) * c.dim);
                            }
                        }
                        s.gen = st->isPrefill ? st->rows
                                              : st->gen + 1;
                        s.busy = false;
                    }
                }
                off += st->rows;
            }
        }
    } catch (const std::exception &e) {
        error = e.what();
    }

    if (!error.empty()) {
        // A failed stream request leaves the stream re-submittable
        // (cache state unchanged — the run never scattered back).
        if (generative_) {
            std::lock_guard<std::mutex> lk(streamMu_);
            for (const auto &st : group) {
                if (st->stream != 0) {
                    auto sit = streams_.find(st->stream);
                    if (sit != streams_.end())
                        sit->second.busy = false;
                }
            }
        }
        // Failures stay out of completed/hits/latency: a failing
        // fleet must read as failing, not as healthy throughput. A
        // mid-group throw fails every member — none of them ran.
        for (const auto &st : group) {
            st->outputs.clear();
            st->error = error;
        }
        failed_.fetch_add(static_cast<int64_t>(group.size()),
                          std::memory_order_relaxed);
    } else {
        bk.hits.fetch_add(static_cast<int64_t>(group.size()),
                          std::memory_order_relaxed);
        bk.runs.fetch_add(1, std::memory_order_relaxed);
        bk.paddedRows.fetch_add(bk.batch - totalRows,
                                std::memory_order_relaxed);
        runNanos_.fetch_add(runNs, std::memory_order_relaxed);
        bk.runNs.fetch_add(runNs, std::memory_order_relaxed);
        if (group.size() > 1) {
            coalescedRuns_.fetch_add(1, std::memory_order_relaxed);
            coalescedRequests_.fetch_add(
                static_cast<int64_t>(group.size()),
                std::memory_order_relaxed);
        }
        auto now = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            for (const auto &st : group) {
                double us = std::chrono::duration<double, std::micro>(
                                now - st->submitTime)
                                .count();
                latenciesUs_.add(us);
                // log2 histogram bin: [2^b, 2^(b+1)) us, last open.
                int64_t v = static_cast<int64_t>(us);
                int bin = 0;
                while (v > 1 && bin < kLatencyHistBins - 1) {
                    v >>= 1;
                    ++bin;
                }
                bk.latHist[static_cast<size_t>(bin)].fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
        completed_.fetch_add(static_cast<int64_t>(group.size()),
                             std::memory_order_relaxed);
        if (tracing) {
            int64_t doneNs = traceNowNs();
            const char *tier = simdTierName(bk.exec->simdTier());
            std::lock_guard<std::mutex> lock(traceMu_);
            size_t cap = std::max<size_t>(1, options_.traceCapacity);
            for (const auto &st : group) {
                LifecycleRecord r;
                r.id = st->id;
                r.rows = st->rows;
                r.bucketBatch = bk.batch;
                r.groupSize = static_cast<int>(group.size());
                r.worker = worker;
                r.runId = runId;
                r.tier = tier;
                r.enqueueNs = st->enqueueNs;
                r.dequeueNs = st->dequeueNs;
                r.bindNs = bindNs;
                r.runStartNs = runStartNs;
                r.runEndNs = runEndNs;
                r.doneNs = doneNs;
                r.stream = st->stream;
                r.gen = st->gen;
                if (lifecycle_.size() < cap)
                    lifecycle_.push_back(r);
                else
                    lifecycle_[lifecycleNext_ % cap] = r;
                lifecycleNext_ = (lifecycleNext_ + 1) % cap;
                ++lifecycleRecorded_;
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        for (const auto &st : group)
            st->done.store(true, std::memory_order_release);
    }
    doneCv_.notify_all();
    group.clear();
}

bool
ServingEngine::poll(RequestId id) const
{
    std::lock_guard<std::mutex> lock(stateMu_);
    auto it = states_.find(id);
    if (it == states_.end())
        throw std::out_of_range(
            "ServingEngine::poll: unknown or consumed request " +
            std::to_string(id));
    return it->second->done.load(std::memory_order_acquire);
}

std::vector<Tensor>
ServingEngine::wait(RequestId id)
{
    std::shared_ptr<RequestState> st;
    {
        // Consume the id atomically at entry: of two concurrent
        // waiters only one gets the state, the other throws — never
        // a racy double-move of the result tensors.
        std::lock_guard<std::mutex> lock(stateMu_);
        auto it = states_.find(id);
        if (it == states_.end())
            throw std::out_of_range(
                "ServingEngine::wait: unknown or consumed request " +
                std::to_string(id));
        st = std::move(it->second);
        states_.erase(it);
    }
    {
        std::unique_lock<std::mutex> lock(doneMu_);
        doneCv_.wait(lock, [&] {
            return st->done.load(std::memory_order_acquire);
        });
    }
    if (!st->error.empty())
        throw std::runtime_error("ServingEngine: request " +
                                 std::to_string(id) + " failed: " +
                                 st->error);
    return std::move(st->outputs);
}

ServeStats
ServingEngine::stats() const
{
    ServeStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.queueDepth = static_cast<int64_t>(queue_.size());
    s.maxQueueDepth = maxQueueDepth_.load(std::memory_order_relaxed);
    s.sessionsCreated = sessionsCreated_.load(std::memory_order_relaxed);
    s.coalescedRuns = coalescedRuns_.load(std::memory_order_relaxed);
    s.coalescedRequests =
        coalescedRequests_.load(std::memory_order_relaxed);
    s.streamsOpened = streamsOpened_.load(std::memory_order_relaxed);
    s.prefills = prefills_.load(std::memory_order_relaxed);
    s.decodeSteps = decodeSteps_.load(std::memory_order_relaxed);
    for (const auto &b : buckets_) {
        BucketStats bs;
        bs.batch = b->batch;
        bs.decode = b->decode;
        bs.hits = b->hits.load(std::memory_order_relaxed);
        bs.runs = b->runs.load(std::memory_order_relaxed);
        bs.paddedRows = b->paddedRows.load(std::memory_order_relaxed);
        bs.runNs = b->runNs.load(std::memory_order_relaxed);
        bs.tier = simdTierName(b->exec->simdTier());
        bs.latencyHistUs.reserve(kLatencyHistBins);
        for (const auto &h : b->latHist)
            bs.latencyHistUs.push_back(
                h.load(std::memory_order_relaxed));
        s.runs += bs.runs;
        s.buckets.push_back(bs);
    }
    if (s.completed > 0) {
        s.coalesceRate = static_cast<double>(s.coalescedRequests) /
                         static_cast<double>(s.completed);
        s.amortizedRunUs =
            runNanos_.load(std::memory_order_relaxed) / 1e3 /
            static_cast<double>(s.completed);
    }
    // Copy the sample window under the lock, sort after releasing it:
    // workers take statsMu_ on every completion, and sorting the
    // reservoir under it would let a stats poll loop stall the very
    // path the engine keeps lock-free otherwise.
    std::vector<double> lat;
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        lat = latenciesUs_.snapshot();
    }
    s.latencySamples = static_cast<int64_t>(lat.size());
    if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        auto pct = [&](double p) {
            size_t i = static_cast<size_t>(p * (lat.size() - 1));
            return lat[i];
        };
        s.p50LatencyUs = pct(0.50);
        s.p99LatencyUs = pct(0.99);
    }
    s.elapsedSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    if (s.elapsedSeconds > 0)
        s.throughputRps = static_cast<double>(s.completed) /
                          s.elapsedSeconds;
    return s;
}

bool
ServingEngine::exportChromeTrace(const std::string &path) const
{
    ChromeTraceJson ct;
    ct.processName(1, "serving workers");
    ct.processName(2, "requests");
    for (int w = 0; w < workers_; ++w)
        ct.threadName(1, w, "worker " + std::to_string(w));

    std::vector<LifecycleRecord> recs;
    {
        std::lock_guard<std::mutex> lock(traceMu_);
        recs = lifecycle_;
    }

    // Request lanes (pid 2, one tid per request id): queued -> wait
    // -> run -> complete. Every member of a coalesced group carries
    // the SAME "run#<id>" span, so in the viewer N lanes converge
    // into the one worker-run that served them all.
    std::unordered_set<int64_t> runsEmitted;
    for (const LifecycleRecord &r : recs) {
        int64_t tid = static_cast<int64_t>(r.id);
        ct.threadName(2, tid, "req " + std::to_string(r.id));
        std::vector<std::pair<std::string, std::string>> args;
        args.emplace_back("rows", std::to_string(r.rows));
        ct.event("queued", 2, tid, r.enqueueNs,
                 r.dequeueNs - r.enqueueNs, args);
        if (r.runStartNs > r.dequeueNs)
            ct.event("wait", 2, tid, r.dequeueNs,
                     r.runStartNs - r.dequeueNs);
        std::string runName = "run#" + std::to_string(r.runId);
        std::vector<std::pair<std::string, std::string>> runArgs;
        runArgs.emplace_back("group_size",
                             std::to_string(r.groupSize));
        runArgs.emplace_back("bucket",
                             "b" + std::to_string(r.bucketBatch));
        runArgs.emplace_back("worker", std::to_string(r.worker));
        runArgs.emplace_back("tier", r.tier);
        // Decode-stream lanes: the viewer shows N "stream S @gen G"
        // lanes converging into one shared run per step.
        if (r.stream != 0) {
            runArgs.emplace_back("stream", std::to_string(r.stream));
            runArgs.emplace_back("gen", std::to_string(r.gen));
        }
        ct.event(runName, 2, tid, r.runStartNs,
                 r.runEndNs - r.runStartNs, runArgs);
        ct.event("complete", 2, tid, r.runEndNs,
                 r.doneNs - r.runEndNs);

        // Worker track (pid 1): one bind/run/slice triple per unique
        // run id, regardless of how many requests shared it.
        if (runsEmitted.insert(r.runId).second) {
            ct.event("bind " + std::string("b") +
                         std::to_string(r.bucketBatch),
                     1, r.worker, r.bindNs, r.runStartNs - r.bindNs);
            ct.event(runName + " b" + std::to_string(r.bucketBatch),
                     1, r.worker, r.runStartNs,
                     r.runEndNs - r.runStartNs, runArgs);
            ct.event("slice", 1, r.worker, r.runEndNs,
                     r.doneNs - r.runEndNs);
        }
    }

    // Executor step spans from the armed sessions nest inside the
    // worker-run spans above (same tracks, finer grain). Reading the
    // rings is only safe while the engine is quiescent — see the
    // header contract.
    for (int w = 0; w < workers_; ++w) {
        for (size_t b = 0; b < buckets_.size(); ++b) {
            const auto &sess = sessions_[w][b];
            const TraceBuffer *tb = sess ? sess->trace() : nullptr;
            if (!tb)
                continue;
            for (const TraceSpan &s : tb->snapshot()) {
                if (s.kind != SpanKind::Step)
                    continue;
                std::string name = s.op;
                if (s.variant && s.variant[0]) {
                    name += "/";
                    name += s.variant;
                }
                std::vector<std::pair<std::string, std::string>>
                    args;
                args.emplace_back("node", std::to_string(s.node));
                args.emplace_back(
                    "bucket",
                    "b" + std::to_string(buckets_[b]->batch));
                ct.event(name, 1, w, s.startNs, s.durNs, args);
            }
        }
    }
    return ct.save(path);
}

} // namespace pe
