/**
 * @file
 * Quantized-execution subsystem: precision modes, int8 affine
 * quantization math, fp16 storage conversion, and post-training
 * calibration.
 *
 * The paper's edge targets run int8 graphs natively; this subsystem
 * turns the PR-2 scaffolding (per-placement DType tags, dtype-sized
 * planning) into a real second and third storage precision:
 *
 *  - int8: per-tensor asymmetric activations + per-output-channel
 *    symmetric weights, int32 accumulation, float requantization —
 *    the TFLite/TinyEngine deployment convention.
 *  - fp16: half-precision storage for activations (compute stays
 *    fp32); a pure memory-footprint mode.
 *
 * Workflow: run `calibrate()` over a few representative batches to
 * stamp observed ranges onto the forward graph, then compile with
 * `CompileOptions::precision = Precision::Int8`. The QuantizePass
 * (src/passes/quantize.cc) consumes the stamped ranges; the int8
 * kernels live in src/kernels/quantized.cc.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dtype.h"
#include "core/tensor.h"
#include "ir/graph.h"

namespace pe {

class ParamStore;

/** Storage precision of a compiled program's forward graph. */
enum class Precision : uint8_t {
    F32,  ///< everything fp32 (the pre-quantization behavior)
    F16,  ///< fp16 activation storage, fp32 compute
    Int8, ///< int8 storage + int8/int32 compute on the forward graph
};

constexpr const char *
precisionName(Precision p)
{
    return p == Precision::F32 ? "fp32"
           : p == Precision::F16 ? "fp16"
                                 : "int8";
}

// ---- int8 affine quantization math -----------------------------------

/** Per-tensor affine quantization parameters: real = (q - zp) * scale. */
struct QuantParams {
    float scale = 1.0f;
    int32_t zeroPoint = 0;
};

/** Names of the calibration attrs `calibrate()` stamps on every node. */
inline constexpr const char *kCalibMinAttr = "calib_min";
inline constexpr const char *kCalibMaxAttr = "calib_max";

/**
 * Choose per-tensor asymmetric int8 params covering [mn, mx]. The
 * range is widened to include zero (so zero-padding and ReLU cutoffs
 * are exactly representable) and the zero-point is the exact integer
 * image of 0.0, per the TFLite quantization spec.
 */
inline QuantParams
chooseQuantParams(float mn, float mx)
{
    mn = std::min(mn, 0.0f);
    mx = std::max(mx, 0.0f);
    QuantParams p;
    float range = mx - mn;
    if (range < 1e-12f) {
        p.scale = 1.0f;
        p.zeroPoint = 0;
        return p;
    }
    p.scale = range / 255.0f;
    float zp = -128.0f - mn / p.scale;
    p.zeroPoint = static_cast<int32_t>(std::lrintf(
        std::min(127.0f, std::max(-128.0f, zp))));
    return p;
}

/** Symmetric weight scale for |w| <= mx (zero-point 0, full [-127,127]). */
inline float
chooseWeightScale(float max_abs)
{
    return max_abs < 1e-12f ? 1.0f : max_abs / 127.0f;
}

inline int8_t
quantizeValue(float v, float scale, int32_t zp)
{
    float q = v / scale + static_cast<float>(zp);
    q = std::min(127.0f, std::max(-128.0f, q));
    return static_cast<int8_t>(std::lrintf(q));
}

inline float
dequantizeValue(int8_t q, float scale, int32_t zp)
{
    return (static_cast<int32_t>(q) - zp) * scale;
}

// ---- fp16 storage conversion -----------------------------------------

/** f32 -> IEEE binary16 bits, round-to-nearest-even (no _Float16
 *  dependency; the arena stores raw uint16 halves). */
inline uint16_t
floatToHalf(float f)
{
    uint32_t x;
    std::memcpy(&x, &f, 4);
    uint32_t sign = (x >> 16) & 0x8000u;
    uint32_t mant = x & 0x007fffffu;
    int32_t exp = static_cast<int32_t>((x >> 23) & 0xffu) - 127 + 15;
    if (((x >> 23) & 0xffu) == 0xffu) // inf/nan
        return static_cast<uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0));
    if (exp >= 0x1f) // overflow -> inf
        return static_cast<uint16_t>(sign | 0x7c00u);
    if (exp <= 0) { // subnormal or zero
        if (exp < -10)
            return static_cast<uint16_t>(sign);
        mant |= 0x00800000u;
        uint32_t shift = static_cast<uint32_t>(14 - exp);
        uint32_t half = mant >> shift;
        uint32_t rem = mant & ((1u << shift) - 1);
        uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            ++half;
        return static_cast<uint16_t>(sign | half);
    }
    uint32_t half = static_cast<uint32_t>(exp << 10) | (mant >> 13);
    uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1)))
        ++half; // may carry into the exponent; that is correct rounding
    return static_cast<uint16_t>(sign | half);
}

/** IEEE binary16 bits -> f32 (exact). */
inline float
halfToFloat(uint16_t h)
{
    uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t mant = h & 0x3ffu;
    uint32_t x;
    if (exp == 0) {
        if (mant == 0) {
            x = sign;
        } else { // subnormal: normalize
            int shift = 0;
            while (!(mant & 0x400u)) {
                mant <<= 1;
                ++shift;
            }
            mant &= 0x3ffu;
            x = sign | ((127 - 15 - shift + 1) << 23) | (mant << 13);
        }
    } else if (exp == 0x1f) {
        x = sign | 0x7f800000u | (mant << 13);
    } else {
        x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &x, 4);
    return f;
}

// ---- post-training calibration ---------------------------------------

/** How observed ranges aggregate across calibration batches. */
enum class ObserverKind {
    MinMax,        ///< running min/max over all batches
    MovingAverage, ///< EMA of per-batch min/max (robust to outliers)
};

struct CalibrationOptions {
    ObserverKind observer = ObserverKind::MinMax;
    /** EMA weight of the PREVIOUS estimate (MovingAverage only). */
    double momentum = 0.9;
};

/** Observed range of one graph value. */
struct CalibRange {
    float mn = 0.0f;
    float mx = 0.0f;
};

/**
 * Run the forward graph over @p batches with the existing executor
 * and stamp every node with "calib_min"/"calib_max" attrs — the quant
 * params the QuantizePass later turns into scales/zero-points. The
 * graph is executed unoptimized (natural order, default kernels) so
 * node ids observed are exactly the ids stamped.
 *
 * @param g       forward graph (stamped in place)
 * @param store   parameter values (materialized if missing)
 * @param batches one Feeds map per calibration batch
 * @return number of values observed
 */
int calibrate(Graph &g, ParamStore &store,
              const std::vector<std::unordered_map<std::string, Tensor>>
                  &batches,
              const CalibrationOptions &opts = {});

/** Observed ranges without stamping (exposed for tests/tools). */
std::vector<CalibRange> observeRanges(
    const Graph &g, ParamStore &store,
    const std::vector<std::unordered_map<std::string, Tensor>> &batches,
    const CalibrationOptions &opts = {});

} // namespace pe
