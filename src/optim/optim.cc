#include "optim/optim.h"

namespace pe {

OptimConfig
OptimConfig::sgd(double lr)
{
    OptimConfig c;
    c.kind = OptimKind::Sgd;
    c.lr = lr;
    return c;
}

OptimConfig
OptimConfig::momentumSgd(double lr, double m)
{
    OptimConfig c;
    c.kind = OptimKind::Momentum;
    c.lr = lr;
    c.momentum = m;
    return c;
}

OptimConfig
OptimConfig::adam(double lr)
{
    OptimConfig c;
    c.kind = OptimKind::Adam;
    c.lr = lr;
    return c;
}

OptimConfig
OptimConfig::lion(double lr)
{
    OptimConfig c;
    c.kind = OptimKind::Lion;
    c.lr = lr;
    c.b2 = 0.99;
    return c;
}

std::vector<int>
emitOptimizer(Graph &g, const OptimConfig &config,
              const std::unordered_map<int, int> &param_grads)
{
    std::vector<int> applies;
    // Deterministic emission order: by param id.
    std::vector<std::pair<int, int>> pairs(param_grads.begin(),
                                           param_grads.end());
    std::sort(pairs.begin(), pairs.end());

    for (auto [pid, gid] : pairs) {
        // Copies: adding state params reallocates the node table.
        const std::string pname = g.node(pid).name;
        const Shape pshape = g.node(pid).shape;
        Attrs a;
        a.set("lr", config.lr);
        int id = -1;
        switch (config.kind) {
          case OptimKind::Sgd: {
            a.set("wd", config.weightDecay);
            id = g.add(OpKind::ApplySgd, {pid, gid}, std::move(a),
                       pname + ".apply");
            break;
          }
          case OptimKind::Momentum: {
            a.set("momentum", config.momentum);
            int vel = g.param(pshape, pname + ".vel", false);
            id = g.add(OpKind::ApplyMomentum, {pid, gid, vel},
                       std::move(a), pname + ".apply");
            break;
          }
          case OptimKind::Adam: {
            a.set("b1", config.b1);
            a.set("b2", config.b2);
            a.set("eps", config.eps);
            int m = g.param(pshape, pname + ".m", false);
            int v = g.param(pshape, pname + ".v", false);
            id = g.add(OpKind::ApplyAdam, {pid, gid, m, v},
                       std::move(a), pname + ".apply");
            break;
          }
          case OptimKind::Lion: {
            a.set("b1", config.b1);
            a.set("b2", config.b2);
            a.set("wd", config.weightDecay);
            int m = g.param(pshape, pname + ".m", false);
            id = g.add(OpKind::ApplyLion, {pid, gid, m}, std::move(a),
                       pname + ".apply");
            break;
          }
        }
        g.markOutput(id);
        applies.push_back(id);
    }
    return applies;
}

int
optimizerStateFactor(OptimKind kind)
{
    switch (kind) {
      case OptimKind::Sgd:
        return 0;
      case OptimKind::Momentum:
      case OptimKind::Lion:
        return 1;
      case OptimKind::Adam:
        return 2;
    }
    return 0;
}

} // namespace pe
