/**
 * @file
 * Optimizers as compile-time graph fragments.
 *
 * Instead of a runtime loop over parameter gradients (the PyTorch /
 * TensorFlow design the paper identifies as a memory bottleneck), the
 * optimizer step is emitted into the training graph as in-place
 * Apply* nodes. The reordering pass can then schedule each update
 * right after its gradient, and the planner recycles gradient buffers
 * within the step.
 */

#pragma once

#include <unordered_map>

#include "ir/graph.h"

namespace pe {

enum class OptimKind { Sgd, Momentum, Adam, Lion };

/** Hyper-parameters for the emitted optimizer. */
struct OptimConfig {
    OptimKind kind = OptimKind::Sgd;
    double lr = 0.01;
    double momentum = 0.9; ///< Momentum only
    double b1 = 0.9;       ///< Adam / Lion
    double b2 = 0.999;     ///< Adam (0.99 typical for Lion)
    double eps = 1e-8;     ///< Adam
    double weightDecay = 0.0;

    static OptimConfig sgd(double lr);
    static OptimConfig momentumSgd(double lr, double m = 0.9);
    static OptimConfig adam(double lr);
    static OptimConfig lion(double lr);
};

/**
 * Append one in-place update node per (param, grad) pair, creating
 * optimizer-state Param nodes ("<name>.m", "<name>.v", ...) as
 * needed. Each Apply node is marked as a graph output so DCE keeps
 * the whole update path alive.
 *
 * @return ids of the emitted Apply nodes.
 */
std::vector<int> emitOptimizer(Graph &g, const OptimConfig &config,
                               const std::unordered_map<int, int>
                                   &param_grads);

/** Bytes of optimizer state per parameter element (2x Momentum, ...). */
int optimizerStateFactor(OptimKind kind);

} // namespace pe
