/**
 * @file
 * Host CPU capability probe backing the SIMD kernel tier.
 *
 * The kernel registry registers vectorized variants ("blocked@avx2",
 * "int8@neon", ...) only for instruction sets the RUNNING host can
 * execute, and the executor's bind-time tier selection consults the
 * same probe — so a binary built with -mavx2 TUs still runs (on the
 * scalar tier) on a host without AVX2, and a plan saved with SIMD
 * variant names downgrades at load instead of faulting.
 *
 * x86: cpuid leaf 1 (FMA, OSXSAVE) + leaf 7 (AVX2), plus an XGETBV
 * check that the OS actually saves the YMM state. ARM: NEON is a
 * compile-time baseline (__ARM_NEON), not a runtime question.
 */

#pragma once

namespace pe {

struct CpuFeatures {
    bool avx2 = false; ///< AVX2 + FMA + OS YMM support (x86 only)
    bool neon = false; ///< __ARM_NEON baseline (ARM only)
};

/** Probe once, cached for the process lifetime. */
const CpuFeatures &cpuFeatures();

} // namespace pe
