/**
 * @file
 * Host-side worker pool and the parallelFor primitive.
 *
 * The compiled runtime is a straight loop of kernel calls with every
 * decision made at bind time; the pool is the one piece of machinery
 * that loop needs to use more than one core. Work arrives as an
 * index set [0, tasks): workers (plus the calling thread) grab
 * indices from a shared counter and the dispatching call returns only
 * when all indices have run — a barrier per dispatch, which is
 * exactly the per-step barrier the partitioned executor wants.
 *
 * The pool is owned by HostDevice, the runtime counterpart of the
 * analytical DeviceModel catalogue in hw/device.h: one process-wide
 * pool, grown on demand to the largest thread count any executor has
 * asked for, shared by all executors so concurrent programs do not
 * oversubscribe the machine.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pe {

/**
 * Balanced contiguous split of [0, n): at most @p max_shards shards,
 * none smaller than @p grain (so small ranges stay whole). Returns
 * shard boundaries, size shards + 1, bounds[0] == 0, back() == n.
 * The ONE split formula in the codebase — the executor's bind-time
 * launch plans and parallelFor use it, so the ranges the parity tests
 * exercise are exactly the ranges production runs.
 */
std::vector<int64_t> splitRange(int64_t n, int64_t grain, int max_shards);

class ThreadPool
{
  public:
    /**
     * @param num_threads total concurrency including the caller;
     *        num_threads - 1 worker threads are spawned. Clamped to
     *        at least 1.
     */
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + calling thread). */
    int numThreads() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Worker index of the CALLING thread: 0 for any thread that is
     * not a pool worker (including every dispatching thread), 1..N-1
     * for the pool's spawned workers. A thread-local stamped at
     * worker birth — reading it is one TLS load, which is what lets
     * per-shard trace spans attribute work to a worker without
     * threading an id through the kernel ABI.
     */
    static int currentWorker();

    /**
     * Run fn(i) for every i in [0, tasks), distributing indices over
     * the workers and the calling thread. Returns after ALL indices
     * have completed (barrier). Concurrent dispatches from different
     * caller threads serialize; a task must NOT dispatch on its own
     * pool (that nests a barrier inside a barrier and deadlocks).
     */
    void dispatch(int tasks, const std::function<void(int)> &fn);

    /**
     * Split [0, n) into contiguous shards of at least @p grain
     * elements (at most numThreads() shards) and run
     * fn(begin, end) for each. Serial when one shard suffices.
     */
    void parallelFor(int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn);

  private:
    void workerLoop();
    /** Pull indices until the current dispatch runs dry. */
    void drain();

    std::vector<std::thread> workers_;
    std::mutex dispatchMu_; ///< serializes whole dispatches
    std::mutex mu_;
    std::condition_variable wake_;  ///< workers wait for a dispatch
    std::condition_variable done_;  ///< dispatcher waits for the barrier
    const std::function<void(int)> *fn_ = nullptr;
    int tasks_ = 0;
    int next_ = 0;       ///< next index to hand out
    int inFlight_ = 0;   ///< indices handed out but not finished
    uint64_t epoch_ = 0; ///< bumped per dispatch so workers re-sleep
    bool stop_ = false;
};

/**
 * The host execution device. Owns the process's worker pool; the
 * executor asks for a pool sized to ExecOptions::numThreads at bind
 * time and keeps the returned handle for the life of the program.
 */
class HostDevice
{
  public:
    static HostDevice &instance();

    /**
     * A pool providing at least @p num_threads concurrency, or
     * nullptr when num_threads <= 1 (the serial fast path — callers
     * skip the pool entirely, preserving bit-identical execution).
     * Pools are created lazily; when a larger pool is requested the
     * smaller ones stay alive so previously returned handles remain
     * valid for the life of the process.
     */
    ThreadPool *pool(int num_threads);

    /** Hardware concurrency of this host (>= 1). */
    static int hardwareThreads();

  private:
    HostDevice() = default;
    std::mutex mu_;
    std::vector<std::unique_ptr<ThreadPool>> pools_;
};

} // namespace pe
