/**
 * @file
 * Analytical edge-device models and latency projection.
 *
 * The paper measures on a fleet of physical devices (Raspberry Pi 4,
 * Jetson Nano / AGX Orin, Apple M1, Snapdragon 8Gen1 CPU + HTP/DSP,
 * STM32F746). This module substitutes calibrated roofline models:
 * each kernel invocation costs
 *
 *     max(flops / (peak_gflops * framework_efficiency),
 *         bytes / bandwidth)  +  launch_overhead  +  host_overhead
 *
 * Peak compute / bandwidth figures come from public spec sheets; the
 * host-overhead term is what separates compiled PockEngine from
 * interpreted frameworks, and the per-node flops/bytes come from the
 * actual compiled (or eager) graph — so relative speedups (the
 * quantity Fig. 9 and Table 5 report) are driven by the same
 * mechanisms as on real hardware: fewer ops after fusion/pruning,
 * fewer bytes after planning, and no per-op host tax.
 */

#pragma once

#include <string>
#include <vector>

#include "baseline/eager.h"
#include "ir/graph.h"

namespace pe {

/** Device class: selects which framework kernel-efficiency applies. */
enum class DeviceKind { Cpu, Accel, Mcu };

/** One edge device. */
struct DeviceModel {
    std::string name;
    DeviceKind kind = DeviceKind::Cpu;
    double gflops;      ///< fp32 peak, GFLOP/s
    double gbps;        ///< DRAM bandwidth, GB/s
    double launchUs;    ///< per-kernel runtime dispatch cost
    double memLimitMB;  ///< usable training memory
    bool supportsWinograd = true; ///< vector units benefit from F(2,3)

    static DeviceModel raspberryPi4();
    static DeviceModel jetsonNano();
    static DeviceModel jetsonOrin();
    static DeviceModel appleM1();
    static DeviceModel snapdragonCpu();
    static DeviceModel snapdragonDsp();
    static DeviceModel stm32f746();

    /** All seven, in the paper's Fig. 9 order. */
    static std::vector<DeviceModel> all();
};

/**
 * Project one training-step latency (microseconds) for a scheduled
 * graph on a device under a framework profile.
 *
 * @param variants  per-node kernel variants ("winograd" reduces the
 *                  effective multiply count by 2.25x on 3x3 convs)
 * @param extra_ops additional dispatches outside the graph (e.g. the
 *                  eager baseline's runtime-autodiff bookkeeping)
 */
double projectLatencyUs(const Graph &g, const std::vector<int> &order,
                        const DeviceModel &device,
                        const FrameworkProfile &framework,
                        const std::vector<std::string> &variants = {},
                        double extra_ops = 0);

/** Throughput in samples/sec given a per-step latency and batch. */
double throughputPerSec(double latency_us, int64_t batch);

} // namespace pe
