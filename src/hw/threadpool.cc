#include "hw/threadpool.h"

#include <algorithm>

namespace pe {

std::vector<int64_t>
splitRange(int64_t n, int64_t grain, int max_shards)
{
    grain = std::max<int64_t>(1, grain);
    int64_t shards = std::min<int64_t>(std::max(1, max_shards),
                                       std::max<int64_t>(1, n / grain));
    std::vector<int64_t> bounds;
    bounds.reserve(shards + 1);
    // The first (n % shards) shards get one extra element.
    int64_t base = n / shards, rem = n % shards, at = 0;
    bounds.push_back(0);
    for (int64_t i = 0; i < shards; ++i) {
        at += base + (i < rem ? 1 : 0);
        bounds.push_back(at);
    }
    return bounds;
}

namespace {
/** This thread's pool-worker index; 0 on non-pool threads. */
thread_local int t_poolWorker = 0;
} // namespace

int
ThreadPool::currentWorker()
{
    return t_poolWorker;
}

ThreadPool::ThreadPool(int num_threads)
{
    int workers = std::max(1, num_threads) - 1;
    workers_.reserve(workers);
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] {
            t_poolWorker = i + 1;
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::drain()
{
    // mu_ held on entry and exit; dropped around each task.
    while (next_ < tasks_) {
        int i = next_++;
        ++inFlight_;
        const std::function<void(int)> *fn = fn_;
        mu_.unlock();
        (*fn)(i);
        mu_.lock();
        --inFlight_;
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t seen = 0;
    for (;;) {
        wake_.wait(lock, [&] {
            return stop_ || (epoch_ != seen && next_ < tasks_);
        });
        if (stop_)
            return;
        seen = epoch_;
        drain();
        if (inFlight_ == 0 && next_ >= tasks_)
            done_.notify_one();
    }
}

void
ThreadPool::dispatch(int tasks, const std::function<void(int)> &fn)
{
    if (tasks <= 0)
        return;
    if (tasks == 1 || workers_.empty()) {
        for (int i = 0; i < tasks; ++i)
            fn(i);
        return;
    }
    // One dispatch at a time: a second caller would otherwise clobber
    // fn_/tasks_ while the first is still waiting on its barrier.
    std::lock_guard<std::mutex> serial(dispatchMu_);
    std::unique_lock<std::mutex> lock(mu_);
    fn_ = &fn;
    tasks_ = tasks;
    next_ = 0;
    ++epoch_;
    wake_.notify_all();
    drain(); // the calling thread participates
    done_.wait(lock, [&] { return inFlight_ == 0 && next_ >= tasks_; });
    fn_ = nullptr;
    tasks_ = 0;
}

void
ThreadPool::parallelFor(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (n <= 0)
        return;
    std::vector<int64_t> bounds = splitRange(n, grain, numThreads());
    if (bounds.size() <= 2) {
        fn(0, n);
        return;
    }
    dispatch(static_cast<int>(bounds.size()) - 1,
             [&](int i) { fn(bounds[i], bounds[i + 1]); });
}

HostDevice &
HostDevice::instance()
{
    static HostDevice dev;
    return dev;
}

ThreadPool *
HostDevice::pool(int num_threads)
{
    if (num_threads <= 1)
        return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    if (pools_.empty() || pools_.back()->numThreads() < num_threads)
        pools_.push_back(std::make_unique<ThreadPool>(num_threads));
    return pools_.back().get();
}

int
HostDevice::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

} // namespace pe
