#include "hw/device.h"

namespace pe {

DeviceModel
DeviceModel::raspberryPi4()
{
    // 4x Cortex-A72 @ 1.5 GHz, NEON: ~24 GFLOPS peak, LPDDR4 ~4 GB/s.
    return {"RaspberryPi4-CPU", DeviceKind::Cpu, 24.0, 4.0, 4.0, 1024.0, true};
}

DeviceModel
DeviceModel::jetsonNano()
{
    // 128-core Maxwell @ 0.92 GHz: 236 GFLOPS fp32, 25.6 GB/s.
    return {"JetsonNano-GPU", DeviceKind::Accel, 236.0, 25.6, 15.0, 2048.0, true};
}

DeviceModel
DeviceModel::jetsonOrin()
{
    // AGX Orin: ~2.1 TFLOPS fp32 (Ampere iGPU), 204.8 GB/s.
    return {"JetsonOrin-GPU", DeviceKind::Accel, 2100.0, 204.8, 10.0, 49152.0, true};
}

DeviceModel
DeviceModel::appleM1()
{
    // M1 8-core GPU: 2.6 TFLOPS fp32, 68.25 GB/s unified.
    return {"AppleM1-GPU", DeviceKind::Accel, 2600.0, 68.25, 12.0, 8192.0, true};
}

DeviceModel
DeviceModel::snapdragonCpu()
{
    // 8Gen1 Kryo CPU complex: ~60 GFLOPS fp32, 51.2 GB/s LPDDR5.
    return {"Snapdragon8Gen1-CPU", DeviceKind::Cpu, 60.0, 51.2, 3.0, 4096.0, true};
}

DeviceModel
DeviceModel::snapdragonDsp()
{
    // Hexagon HTP through SNPE: vector engine, very low dispatch
    // cost once compiled; effective ~1 TFLOPS-equivalent on fused
    // linear ops.
    return {"Snapdragon8Gen1-DSP", DeviceKind::Accel, 1000.0, 51.2, 2.0, 2048.0, false};
}

DeviceModel
DeviceModel::stm32f746()
{
    // 216 MHz Cortex-M7, ~0.2 GFLOPS with DSP extensions, 320 KB
    // SRAM; kernels run from TinyEngine-style codegen.
    return {"STM32F746-MCU", DeviceKind::Mcu, 0.2, 0.3, 0.05, 0.32, false};
}

std::vector<DeviceModel>
DeviceModel::all()
{
    return {raspberryPi4(),  jetsonNano(),    jetsonOrin(), appleM1(),
            snapdragonCpu(), snapdragonDsp(), stm32f746()};
}

double
projectLatencyUs(const Graph &g, const std::vector<int> &order,
                 const DeviceModel &device,
                 const FrameworkProfile &framework,
                 const std::vector<std::string> &variants,
                 double extra_ops)
{
    double total_us = 0;
    for (int id : order) {
        const Node &n = g.node(id);
        if (isSourceOp(n.op))
            continue;
        double flops = nodeFlops(g, n);
        double bytes = nodeBytes(g, n);
        if (id < static_cast<int>(variants.size()) &&
            variants[id] == "winograd" && device.supportsWinograd) {
            flops /= 2.25; // F(2x2,3x3): 16 mults for 36
        }
        double eff = device.kind == DeviceKind::Accel
                         ? framework.accelEfficiency
                         : framework.cpuEfficiency;
        double compute_s = flops / (device.gflops * 1e9 * eff);
        double memory_s = bytes / (device.gbps * 1e9);
        total_us += std::max(compute_s, memory_s) * 1e6;
        total_us += device.launchUs + framework.hostOverheadUs;
    }
    total_us += extra_ops * framework.hostOverheadUs;
    return total_us;
}

double
throughputPerSec(double latency_us, int64_t batch)
{
    return static_cast<double>(batch) / (latency_us * 1e-6);
}

} // namespace pe
