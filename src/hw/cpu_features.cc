#include "hw/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace pe {

namespace {

CpuFeatures
probe()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    bool fma = (ecx & (1u << 12)) != 0;
    bool osxsave = (ecx & (1u << 27)) != 0;
    if (!fma || !osxsave)
        return f;
    // The OS must save/restore the YMM registers (XCR0 bits 1|2) or
    // executing a VEX-256 instruction faults even though cpuid
    // advertises AVX2.
    unsigned xcr0_lo, xcr0_hi;
    __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    if ((xcr0_lo & 0x6u) != 0x6u)
        return f;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return f;
    f.avx2 = (ebx & (1u << 5)) != 0;
#elif defined(__ARM_NEON)
    f.neon = true;
#endif
    return f;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = probe();
    return f;
}

} // namespace pe
