/**
 * @file
 * NEON kernel tier: the same quartet as simd_avx2.cc — fp32 panel
 * GEMM, im2col conv inner loop, int8 GEMM, int8 depthwise — as
 * "<base>@neon" variants with the scalar bases' partition domains and
 * workspace declarations (kernel_util.h).
 *
 * NEON is a compile-time baseline on ARM (__ARM_NEON), so this TU
 * needs no special flags; it compiles empty elsewhere. The numerics
 * contract matches the AVX2 tier: int8 accumulation is bit-exact to
 * the scalar "int8" kernels (integer math), and the vectorized
 * requantization path is only taken on AArch64 where vdivq_f32 /
 * vcvtnq_s32_f32 give IEEE division and round-nearest-even exactly —
 * ARMv7 (and gelu/silu activations anywhere) requantize through the
 * scalar Requant::emit. fp32 results are within 1e-5 relative of the
 * scalar tier (multiply-accumulate fusion changes rounding).
 */

#include "kernels/kernel.h"

#if !defined(PE_NO_SIMD) && defined(__ARM_NEON)

#include <arm_neon.h>
#include <cmath>
#include <cstring>
#include <limits>

#include "kernels/kernel_util.h"

namespace pe {
namespace {

using kutil::GemmView;
using kutil::Requant;
using kutil::requantOf;

constexpr int64_t kBlock = kutil::kGemmBlock;

// ---- fp32 panel GEMM --------------------------------------------------

/** 4-row x 4-column multiply-accumulate register tile over the packed
 *  B panel (same layout and workspace as the scalar "blocked" tier). */
void
gemmNeon(const GemmView &a, const GemmView &b, float *out, int64_t r0,
         int64_t r1, float *ws)
{
    int64_t n = b.cols, kk = a.cols;
    std::memset(out + r0 * n, 0, sizeof(float) * (r1 - r0) * n);
    for (int64_t k0 = 0; k0 < kk; k0 += kBlock) {
        int64_t k1 = std::min(k0 + kBlock, kk);
        for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
            int64_t j1 = std::min(j0 + kBlock, n);
            int64_t jw = j1 - j0;
            for (int64_t k = k0; k < k1; ++k) {
                float *dst = ws + (k - k0) * jw;
                for (int64_t j = j0; j < j1; ++j)
                    dst[j - j0] = b.at(k, j);
            }
            for (int64_t i0 = r0; i0 < r1; i0 += 4) {
                int64_t rows = std::min<int64_t>(4, r1 - i0);
                int64_t j = 0;
                for (; j + 4 <= jw; j += 4) {
                    float32x4_t acc[4];
                    for (int64_t r = 0; r < rows; ++r)
                        acc[r] = vdupq_n_f32(0.0f);
                    for (int64_t k = k0; k < k1; ++k) {
                        float32x4_t bv =
                            vld1q_f32(ws + (k - k0) * jw + j);
                        for (int64_t r = 0; r < rows; ++r)
                            acc[r] = vmlaq_n_f32(acc[r], bv,
                                                 a.at(i0 + r, k));
                    }
                    for (int64_t r = 0; r < rows; ++r) {
                        float *orow = out + (i0 + r) * n + j0 + j;
                        vst1q_f32(orow,
                                  vaddq_f32(vld1q_f32(orow), acc[r]));
                    }
                }
                for (; j < jw; ++j) {
                    for (int64_t r = 0; r < rows; ++r) {
                        float s = 0.0f;
                        for (int64_t k = k0; k < k1; ++k)
                            s += a.at(i0 + r, k) *
                                 ws[(k - k0) * jw + j];
                        out[(i0 + r) * n + j0 + j] += s;
                    }
                }
            }
        }
    }
}

void
matmulNeonK(const KernelCtx &c)
{
    bool ta = c.node->attrs.getInt("transA", 0) != 0;
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    GemmView a = kutil::gemmViewOf(c.in[0], *c.inShapes[0], ta);
    GemmView b = kutil::gemmViewOf(c.in[1], *c.inShapes[1], tb);
    gemmNeon(a, b, c.out, c.begin, partitionEnd(c, a.rows),
             c.workspace);
}

void
batchMatmulNeonK(const KernelCtx &c)
{
    bool ta = c.node->attrs.getInt("transA", 0) != 0;
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    const Shape &as = *c.inShapes[0];
    const Shape &bs = *c.inShapes[1];
    int64_t batch = as[0];
    int64_t a_stride = as[1] * as[2];
    int64_t b_stride = bs[1] * bs[2];
    int64_t o_stride = (*c.outShape)[1] * (*c.outShape)[2];
    for (int64_t nn = c.begin; nn < partitionEnd(c, batch); ++nn) {
        GemmView a = kutil::gemmViewOf(c.in[0] + nn * a_stride,
                                       {as[1], as[2]}, ta);
        GemmView b = kutil::gemmViewOf(c.in[1] + nn * b_stride,
                                       {bs[1], bs[2]}, tb);
        gemmNeon(a, b, c.out + nn * o_stride, 0, a.rows, c.workspace);
    }
}

// ---- fp32 im2col conv -------------------------------------------------

void
conv2dIm2colNeonK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t nI = xs[0], ci = xs[1], h = xs[2], w = xs[3];
    int64_t co = ws[0], kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const float *x = c.in[0], *wt = c.in[1];
    int64_t k = ci * kh * kw;
    int64_t cols = ho * wo;
    float *col = c.workspace;
    for (int64_t n = c.begin; n < partitionEnd(c, nI); ++n) {
        kutil::im2colUnfold(x + n * ci * h * w, col, ci, h, w, kh, kw,
                            ho, wo, stride, pad, 0.0f);
        float *out = c.out + n * co * cols;
        for (int64_t o = 0; o < co; ++o) {
            float *dst = out + o * cols;
            std::memset(dst, 0, sizeof(float) * cols);
            const float *wrow = wt + o * k;
            for (int64_t kx = 0; kx < k; ++kx) {
                const float *src = col + kx * cols;
                int64_t j = 0;
                for (; j + 4 <= cols; j += 4)
                    vst1q_f32(dst + j,
                              vmlaq_n_f32(vld1q_f32(dst + j),
                                          vld1q_f32(src + j),
                                          wrow[kx]));
                for (; j < cols; ++j)
                    dst[j] += wrow[kx] * src[j];
            }
        }
    }
}

// ---- fused attention --------------------------------------------------

float
hsumF32(float32x4_t v)
{
#if defined(__aarch64__)
    return vaddvq_f32(v);
#else
    float32x2_t s = vadd_f32(vget_low_f32(v), vget_high_f32(v));
    s = vpadd_f32(s, s);
    return vget_lane_f32(s, 0);
#endif
}

/** Same per-row structure (and workspace) as the scalar FusedAttention
 *  kernel; QK dot and V product vectorized, softmax reduction scalar
 *  (fp32 tier contract: within 1e-5 of the scalar base). */
void
fusedAttentionNeonK(const KernelCtx &c)
{
    const Shape &qs = *c.inShapes[0];
    const Shape &ks = *c.inShapes[1];
    size_t rank = qs.size();
    int64_t dh = qs[rank - 1];
    int64_t s = qs[rank - 2];
    int64_t m = ks[rank - 2];
    float scale = kutil::attrF(c, "scale", 1.0);
    // heads > 0: head-split form — K/V rows are head-strided slices
    // of the [L,M,H*Dh] cache slab, mask rows lead-indexed.
    int64_t heads = kutil::attrI(c, "heads", 0);
    int64_t kstr = heads > 0 ? heads * dh : dh;

    const float *q = c.in[0];
    const float *k = c.in[1];
    const float *v = c.in[2];
    const float *mask = c.in[3];
    float *scores = c.workspace;

    int64_t rows = numel(*c.outShape) / dh;
    for (int64_t r = c.begin; r < partitionEnd(c, rows); ++r) {
        const float *qrow = q + r * dh;
        const float *mrow, *kb, *vb;
        if (heads > 0) {
            int64_t lead = r / heads, hd = r % heads;
            mrow = mask + lead * m;
            kb = k + lead * m * kstr + hd * dh;
            vb = v + lead * m * kstr + hd * dh;
        } else {
            mrow = mask + r * m;
            kb = k + (r / s) * m * dh;
            vb = v + (r / s) * m * dh;
        }

        float mx = -std::numeric_limits<float>::infinity();
        for (int64_t i = 0; i < m; ++i) {
            const float *krow = kb + i * kstr;
            float32x4_t acc4 = vdupq_n_f32(0.0f);
            int64_t kk = 0;
            for (; kk + 4 <= dh; kk += 4)
                acc4 = vmlaq_f32(acc4, vld1q_f32(qrow + kk),
                                 vld1q_f32(krow + kk));
            float acc = hsumF32(acc4);
            for (; kk < dh; ++kk)
                acc += qrow[kk] * krow[kk];
            scores[i] = acc * scale + mrow[i];
            if (scores[i] > mx)
                mx = scores[i];
        }
        float sum = 0.0f;
        for (int64_t i = 0; i < m; ++i) {
            scores[i] = std::exp(scores[i] - mx);
            sum += scores[i];
        }
        float inv = 1.0f / sum;
        for (int64_t i = 0; i < m; ++i)
            scores[i] *= inv;

        float *orow = c.out + r * dh;
        int64_t j = 0;
        for (; j + 4 <= dh; j += 4) {
            float32x4_t acc = vdupq_n_f32(0.0f);
            for (int64_t i = 0; i < m; ++i)
                acc = vmlaq_n_f32(acc, vld1q_f32(vb + i * kstr + j),
                                  scores[i]);
            vst1q_f32(orow + j, acc);
        }
        for (; j < dh; ++j) {
            float acc = 0;
            for (int64_t i = 0; i < m; ++i)
                acc += scores[i] * vb[i * kstr + j];
            orow[j] = acc;
        }
    }
}

// ---- int8 helpers -----------------------------------------------------

int32_t
hsumS32(int32x4_t v)
{
#if defined(__aarch64__)
    return vaddvq_s32(v);
#else
    int32x2_t s = vadd_s32(vget_low_s32(v), vget_high_s32(v));
    s = vpadd_s32(s, s);
    return vget_lane_s32(s, 0);
#endif
}

/** sum_k (a[k] - azp) * w[k] in int32 — bit-exact to the scalar loop. */
int32_t
dotI8(const int8_t *a, const int8_t *w, int64_t k, int32_t azp)
{
    int32x4_t acc = vdupq_n_s32(0);
    int16x8_t zp16 = vdupq_n_s16(static_cast<int16_t>(azp));
    int64_t kk = 0;
    for (; kk + 8 <= k; kk += 8) {
        int16x8_t a16 = vsubq_s16(vmovl_s8(vld1_s8(a + kk)), zp16);
        int16x8_t w16 = vmovl_s8(vld1_s8(w + kk));
        acc = vmlal_s16(acc, vget_low_s16(a16), vget_low_s16(w16));
        acc = vmlal_s16(acc, vget_high_s16(a16), vget_high_s16(w16));
    }
    int32_t s = hsumS32(acc);
    for (; kk < k; ++kk)
        s += (static_cast<int32_t>(a[kk]) - azp) *
             static_cast<int32_t>(w[kk]);
    return s;
}

/** Widen 4 consecutive int8 values to an int32x4 lane vector without
 *  reading past element 3 (exactly 4 bytes are loaded). */
int32x4_t
loadS8x4(const int8_t *p)
{
    int32_t bits;
    std::memcpy(&bits, p, 4);
    int8x8_t v = vreinterpret_s8_s32(vdup_n_s32(bits));
    return vmovl_s16(vget_low_s16(vmovl_s8(v)));
}

/** True when emit4 reproduces Requant::emit bit-exactly: AArch64 has
 *  IEEE vector divide and round-nearest-even converts; relu is a
 *  maxnum. Elsewhere (and for gelu/silu) the scalar emit runs. */
bool
vectorEmitOk(const Requant &rq)
{
#if defined(__aarch64__)
    return rq.act == kActNone || rq.act == kActRelu;
#else
    (void)rq;
    return false;
#endif
}

#if defined(__aarch64__)
/** Requantize 4 int32 accumulators with the exact float op sequence
 *  of Requant::emit / quantizeValue. */
void
emit4(const int32_t *acc, float32x4_t sw, float32x4_t bias,
      bool hasBias, const Requant &rq, int8_t *dst)
{
    float32x4_t r = vmulq_n_f32(vcvtq_f32_s32(vld1q_s32(acc)),
                                rq.xScale);
    r = vmulq_f32(r, sw);
    if (hasBias)
        r = vaddq_f32(r, bias);
    if (rq.act == kActRelu)
        r = vmaxnmq_f32(r, vdupq_n_f32(0.0f));
    float32x4_t q = vaddq_f32(
        vdivq_f32(r, vdupq_n_f32(rq.yScale)),
        vdupq_n_f32(static_cast<float>(rq.yZp)));
    q = vmaxnmq_f32(q, vdupq_n_f32(-128.0f));
    q = vminnmq_f32(q, vdupq_n_f32(127.0f));
    int32x4_t qi = vcvtnq_s32_f32(q);
    int32_t lanes[4];
    vst1q_s32(lanes, qi);
    for (int i = 0; i < 4; ++i)
        dst[i] = static_cast<int8_t>(lanes[i]);
}
#else
void
emit4(const int32_t *, float32x4_t, float32x4_t, bool,
      const Requant &, int8_t *)
{
}
#endif

// ---- int8 GEMM --------------------------------------------------------

void
qmatmulNeonK(const KernelCtx &c)
{
    const Shape &as = *c.inShapes[0];
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    int64_t m_hi = partitionEnd(c, (*c.outShape)[0]);
    int64_t k = as[1];
    int64_t n = (*c.outShape)[1];
    const int8_t *a = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *b = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);

    int8_t *wp = reinterpret_cast<int8_t *>(c.workspace);
    for (int64_t j = 0; j < n; ++j) {
        for (int64_t kk = 0; kk < k; ++kk)
            wp[j * k + kk] = tb ? b[j * k + kk] : b[kk * n + j];
    }

    bool vec_emit = vectorEmitOk(rq);
    for (int64_t i = c.begin; i < m_hi; ++i) {
        const int8_t *arow = a + i * k;
        int8_t *orow = out + i * n;
        int64_t j = 0;
        for (; j + 4 <= n && vec_emit; j += 4) {
            int32_t accs[4];
            for (int64_t jj = 0; jj < 4; ++jj)
                accs[jj] = dotI8(arow, wp + (j + jj) * k, k, rq.xZp);
            float32x4_t sw = rq.wScales
                                 ? vld1q_f32(rq.wScales + j)
                                 : vdupq_n_f32(rq.wScale);
            float32x4_t bias = rq.bias ? vld1q_f32(rq.bias + j)
                                       : vdupq_n_f32(0.0f);
            emit4(accs, sw, bias, rq.bias != nullptr, rq, orow + j);
        }
        for (; j < n; ++j)
            orow[j] = rq.emit(dotI8(arow, wp + j * k, k, rq.xZp), j);
    }
}

// ---- int8 conv (im2col) ----------------------------------------------

void
qconvNeonK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t nI = xs[0], ci = xs[1], h = xs[2], w = xs[3];
    int64_t co = ws[0], kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *wt = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);

    int64_t k = ci * kh * kw;
    int64_t cols = ho * wo;
    int8_t *col = reinterpret_cast<int8_t *>(c.workspace);
    int8_t zp8 = static_cast<int8_t>(
        std::min<int32_t>(127, std::max<int32_t>(-128, rq.xZp)));
    int32x4_t zp32 = vdupq_n_s32(rq.xZp);
    bool vec_emit = vectorEmitOk(rq);

    for (int64_t ni = c.begin; ni < partitionEnd(c, nI); ++ni) {
        kutil::im2colUnfold(x + ni * ci * h * w, col, ci, h, w, kh, kw,
                            ho, wo, stride, pad, zp8);
        int8_t *on = out + ni * co * cols;
        for (int64_t o = 0; o < co; ++o) {
            const int8_t *wrow = wt + o * k;
            int8_t *dst = on + o * cols;
            float32x4_t sw = vdupq_n_f32(
                rq.wScales ? rq.wScales[o] : rq.wScale);
            float32x4_t bias =
                vdupq_n_f32(rq.bias ? rq.bias[o] : 0.0f);
            int64_t j = 0;
            for (; j + 4 <= cols && vec_emit; j += 4) {
                int32x4_t acc = vdupq_n_s32(0);
                for (int64_t kk = 0; kk < k; ++kk) {
                    int32x4_t cv = loadS8x4(col + kk * cols + j);
                    acc = vmlaq_n_s32(
                        acc, vsubq_s32(cv, zp32),
                        static_cast<int32_t>(wrow[kk]));
                }
                int32_t accs[4];
                vst1q_s32(accs, acc);
                emit4(accs, sw, bias, rq.bias != nullptr, rq, dst + j);
            }
            for (; j < cols; ++j) {
                int32_t acc = 0;
                for (int64_t kk = 0; kk < k; ++kk)
                    acc += (static_cast<int32_t>(col[kk * cols + j]) -
                            rq.xZp) *
                           static_cast<int32_t>(wrow[kk]);
                dst[j] = rq.emit(acc, o);
            }
        }
    }
}

// ---- int8 depthwise conv ----------------------------------------------

int8_t
qdwPixel(const int8_t *xp, const int8_t *wp, int64_t i, int64_t j,
         int64_t h, int64_t w, int64_t kh, int64_t kw, int64_t stride,
         int64_t pad, int64_t channel, const Requant &rq)
{
    int32_t acc = 0;
    for (int64_t a = 0; a < kh; ++a) {
        int64_t ih = i * stride - pad + a;
        if (ih < 0 || ih >= h)
            continue;
        for (int64_t b = 0; b < kw; ++b) {
            int64_t iw = j * stride - pad + b;
            if (iw < 0 || iw >= w)
                continue;
            acc += (static_cast<int32_t>(xp[ih * w + iw]) - rq.xZp) *
                   static_cast<int32_t>(wp[a * kw + b]);
        }
    }
    return rq.emit(acc, channel);
}

void
qdwConvNeonK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t ch = xs[1], h = xs[2], w = xs[3];
    int64_t kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *wt = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);
    int32x4_t zp32 = vdupq_n_s32(rq.xZp);
    bool vec_emit = vectorEmitOk(rq);

    int64_t hi = partitionEnd(c, xs[0] * ch);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t ni = idx / ch, ci = idx % ch;
        const int8_t *xp = x + (ni * ch + ci) * h * w;
        const int8_t *wp = wt + ci * kh * kw;
        int8_t *op = out + (ni * ch + ci) * ho * wo;
        float32x4_t sw = vdupq_n_f32(
            rq.wScales ? rq.wScales[ci] : rq.wScale);
        float32x4_t bias = vdupq_n_f32(rq.bias ? rq.bias[ci] : 0.0f);
        for (int64_t i = 0; i < ho; ++i) {
            int64_t j = 0;
            if (stride == 1 && vec_emit) {
                int64_t jlo = pad;
                int64_t jhi = std::min(wo, w - kw + pad + 1);
                for (; j < std::min(jlo, wo); ++j)
                    op[i * wo + j] = qdwPixel(xp, wp, i, j, h, w, kh,
                                              kw, stride, pad, ci, rq);
                for (; j + 4 <= jhi; j += 4) {
                    int32x4_t acc = vdupq_n_s32(0);
                    for (int64_t a = 0; a < kh; ++a) {
                        int64_t ih = i - pad + a;
                        if (ih < 0 || ih >= h)
                            continue;
                        const int8_t *xrow = xp + ih * w + j - pad;
                        for (int64_t b = 0; b < kw; ++b) {
                            int32x4_t xv = loadS8x4(xrow + b);
                            acc = vmlaq_n_s32(
                                acc, vsubq_s32(xv, zp32),
                                static_cast<int32_t>(wp[a * kw + b]));
                        }
                    }
                    int32_t accs[4];
                    vst1q_s32(accs, acc);
                    emit4(accs, sw, bias, rq.bias != nullptr, rq,
                          op + i * wo + j);
                }
            }
            for (; j < wo; ++j)
                op[i * wo + j] = qdwPixel(xp, wp, i, j, h, w, kh, kw,
                                          stride, pad, ci, rq);
        }
    }
}

int64_t
matmulRows(const KernelCtx &c)
{
    return (*c.outShape)[0];
}

} // namespace

namespace detail {

void
registerSimdNeonKernels()
{
    PartitionSpec rows{matmulRows, 8};
    PartitionSpec batch{part::outDim0, 1};
    PartitionSpec images{part::outDim0, 1};
    PartitionSpec imageChannels{part::outDim01, 1};
    registerKernel(OpKind::MatMul, "blocked@neon", matmulNeonK, rows,
                   kutil::blockedGemmWorkspace);
    registerKernel(OpKind::BatchMatMul, "blocked@neon",
                   batchMatmulNeonK, batch,
                   kutil::blockedGemmWorkspace);
    registerKernel(OpKind::Conv2d, "im2col@neon", conv2dIm2colNeonK,
                   images, kutil::im2colConvWorkspace);
    registerKernel(OpKind::FusedAttention, "neon", fusedAttentionNeonK,
                   PartitionSpec{part::outRows, 1},
                   kutil::fusedAttentionWorkspace);
    registerKernel(OpKind::QuantMatMul, "int8@neon", qmatmulNeonK,
                   rows, kutil::qgemmWorkspace);
    registerKernel(OpKind::QuantConv2d, "int8@neon", qconvNeonK,
                   images, kutil::qconvColWorkspace);
    registerKernel(OpKind::QuantDwConv2d, "int8@neon", qdwConvNeonK,
                   imageChannels);
}

} // namespace detail
} // namespace pe

#else // PE_NO_SIMD or no NEON: nothing to register.

namespace pe {
namespace detail {

void
registerSimdNeonKernels()
{
}

} // namespace detail
} // namespace pe

#endif
