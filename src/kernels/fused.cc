/**
 * @file
 * Fused kernels created by the operator-fusion pass: Conv+Bias+Act,
 * DwConv+Bias+Act and MatMul+Bias+Act. Fusion removes the
 * intermediate activation buffers and two kernel launches per linear
 * layer (paper Section 3.2, "Operator Fusion"). All three partition
 * the same way as their unfused counterparts: conv forms over the
 * flattened (image, output-channel) pairs, the GEMM form over output
 * rows.
 *
 * Scratch requirements are declared per kernel via WorkspaceSpec in
 * each kernel's own translation unit (the Winograd ConvBiasAct
 * variant registers its cached-transform workspace in winograd.cc);
 * the direct fused kernels here need none.
 */

#include <cmath>
#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

float
actOf(int64_t act, float v)
{
    switch (act) {
      case kActRelu:
        return v > 0 ? v : 0.0f;
      case kActGelu: {
        constexpr float kC = 0.7978845608028654f;
        return 0.5f * v *
               (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
      }
      case kActSilu:
        return v / (1.0f + std::exp(-v));
      default:
        return v;
    }
}

void
convBiasActK(const KernelCtx &c)
{
    // Reuse the im2col structure inline: direct loops + bias + act.
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t act = c.node->attrs.getInt("act", kActNone);
    int64_t n = xs[0], ci = xs[1], h = xs[2], w = xs[3];
    int64_t co = ws[0], kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const float *bias = c.in[2];
    int64_t hi = partitionEnd(c, n * co);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t ni = idx / co, o = idx % co;
        {
            float b = bias[o];
            for (int64_t i = 0; i < ho; ++i) {
                for (int64_t j = 0; j < wo; ++j) {
                    float acc = b;
                    for (int64_t cc = 0; cc < ci; ++cc) {
                        for (int64_t a = 0; a < kh; ++a) {
                            int64_t ih = i * stride - pad + a;
                            if (ih < 0 || ih >= h)
                                continue;
                            for (int64_t bb = 0; bb < kw; ++bb) {
                                int64_t iw = j * stride - pad + bb;
                                if (iw < 0 || iw >= w)
                                    continue;
                                acc += c.in[0][((ni * ci + cc) * h + ih) *
                                                   w + iw] *
                                       c.in[1][((o * ci + cc) * kh + a) *
                                                   kw + bb];
                            }
                        }
                    }
                    c.out[((ni * co + o) * ho + i) * wo + j] =
                        actOf(act, acc);
                }
            }
        }
    }
}

void
dwConvBiasActK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t act = c.node->attrs.getInt("act", kActNone);
    int64_t n = xs[0], ch = xs[1], h = xs[2], w = xs[3];
    int64_t kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    int64_t hi = partitionEnd(c, n * ch);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t ni = idx / ch, cc = idx % ch;
        {
            const float *xp = c.in[0] + (ni * ch + cc) * h * w;
            const float *wp = c.in[1] + cc * kh * kw;
            float b = c.in[2][cc];
            float *op = c.out + (ni * ch + cc) * ho * wo;
            for (int64_t i = 0; i < ho; ++i) {
                for (int64_t j = 0; j < wo; ++j) {
                    float acc = b;
                    for (int64_t a = 0; a < kh; ++a) {
                        int64_t ih = i * stride - pad + a;
                        if (ih < 0 || ih >= h)
                            continue;
                        for (int64_t bb = 0; bb < kw; ++bb) {
                            int64_t iw = j * stride - pad + bb;
                            if (iw < 0 || iw >= w)
                                continue;
                            acc += xp[ih * w + iw] * wp[a * kw + bb];
                        }
                    }
                    op[i * wo + j] = actOf(act, acc);
                }
            }
        }
    }
}

void
matmulBiasActK(const KernelCtx &c)
{
    bool ta = c.node->attrs.getInt("transA", 0) != 0;
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    int64_t act = c.node->attrs.getInt("act", kActNone);
    const Shape &as = *c.inShapes[0];
    const Shape &bs = *c.inShapes[1];
    int64_t m = ta ? as[1] : as[0];
    int64_t k = ta ? as[0] : as[1];
    int64_t n = tb ? bs[0] : bs[1];
    auto a_at = [&](int64_t i, int64_t kk) {
        return ta ? c.in[0][kk * m + i] : c.in[0][i * k + kk];
    };
    auto b_at = [&](int64_t kk, int64_t j) {
        return tb ? c.in[1][j * k + kk] : c.in[1][kk * n + j];
    };
    int64_t hi = partitionEnd(c, m);
    for (int64_t i = c.begin; i < hi; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float acc = c.in[2][j];
            for (int64_t kk = 0; kk < k; ++kk)
                acc += a_at(i, kk) * b_at(kk, j);
            c.out[i * n + j] = actOf(act, acc);
        }
    }
}

} // namespace

namespace detail {

void
registerFusedKernels()
{
    registerKernel(OpKind::ConvBiasAct, "", convBiasActK,
                   {part::outDim01, 1});
    registerKernel(OpKind::DwConvBiasAct, "", dwConvBiasActK,
                   {part::outDim01, 1});
    registerKernel(OpKind::MatMulBiasAct, "", matmulBiasActK,
                   {part::outDim0, 8});
}

} // namespace detail
} // namespace pe
