/**
 * @file
 * Elementwise unary/binary kernels with numpy-style broadcasting.
 * Every kernel here is a pure function of the output index, so all
 * partition over the flattened output range [begin, end).
 */

#include <cmath>
#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

constexpr float kSqrt2OverPi = 0.7978845608028654f;

/**
 * Apply a binary op with right-aligned broadcasting. The generic path
 * decomposes the output linear index; the common same-shape and
 * trailing-vector (bias) patterns take fast paths.
 */
template <typename F>
void
broadcastBinary(const KernelCtx &ctx, F f)
{
    const Shape &os = *ctx.outShape;
    const Shape &as = *ctx.inShapes[0];
    const Shape &bs = *ctx.inShapes[1];
    const float *a = ctx.in[0];
    const float *b = ctx.in[1];
    int64_t n = numel(os);
    int64_t lo = ctx.begin, hi = partitionEnd(ctx, n);

    if (as == os && bs == os) {
        for (int64_t i = lo; i < hi; ++i)
            ctx.out[i] = f(a[i], b[i]);
        return;
    }
    // Trailing-vector broadcast: [..., C] op [C].
    if (as == os && bs.size() == 1 && bs[0] == os.back()) {
        int64_t c = bs[0];
        for (int64_t i = lo; i < hi; ++i)
            ctx.out[i] = f(a[i], b[i % c]);
        return;
    }
    // Generic path: stride-0 on broadcast dims.
    size_t rank = os.size();
    std::vector<int64_t> sa(rank, 0), sb(rank, 0);
    auto strides_of = [&](const Shape &s, std::vector<int64_t> &out) {
        auto rs = rowMajorStrides(s);
        size_t off = rank - s.size();
        for (size_t i = 0; i < s.size(); ++i)
            out[off + i] = s[i] == 1 ? 0 : rs[i];
    };
    strides_of(as, sa);
    strides_of(bs, sb);
    auto so = rowMajorStrides(os);
    for (int64_t i = lo; i < hi; ++i) {
        int64_t ai = 0, bi = 0, rem = i;
        for (size_t d = 0; d < rank; ++d) {
            int64_t c = rem / so[d];
            rem -= c * so[d];
            ai += c * sa[d];
            bi += c * sb[d];
        }
        ctx.out[i] = f(a[ai], b[bi]);
    }
}

template <typename F>
void
unary(const KernelCtx &ctx, F f)
{
    int64_t hi = partitionEnd(ctx, numel(*ctx.outShape));
    for (int64_t i = ctx.begin; i < hi; ++i)
        ctx.out[i] = f(ctx.in[0][i]);
}

float
geluOf(float x)
{
    return 0.5f * x *
           (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
}

float
geluGradOf(float x)
{
    float t = std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x));
    float dt = (1.0f - t * t) * kSqrt2OverPi *
               (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * dt;
}

float
sigmoidOf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

void
addK(const KernelCtx &c)
{
    broadcastBinary(c, [](float a, float b) { return a + b; });
}
void
subK(const KernelCtx &c)
{
    broadcastBinary(c, [](float a, float b) { return a - b; });
}
void
mulK(const KernelCtx &c)
{
    broadcastBinary(c, [](float a, float b) { return a * b; });
}
void
divK(const KernelCtx &c)
{
    broadcastBinary(c, [](float a, float b) { return a / b; });
}

void
negK(const KernelCtx &c)
{
    unary(c, [](float x) { return -x; });
}
void
reluK(const KernelCtx &c)
{
    unary(c, [](float x) { return x > 0 ? x : 0.0f; });
}
void
geluK(const KernelCtx &c)
{
    unary(c, geluOf);
}
void
siluK(const KernelCtx &c)
{
    unary(c, [](float x) { return x * sigmoidOf(x); });
}
void
sigmoidK(const KernelCtx &c)
{
    unary(c, sigmoidOf);
}
void
tanhK(const KernelCtx &c)
{
    unary(c, [](float x) { return std::tanh(x); });
}
void
expK(const KernelCtx &c)
{
    unary(c, [](float x) { return std::exp(x); });
}
void
logK(const KernelCtx &c)
{
    unary(c, [](float x) { return std::log(x); });
}
void
sqrtK(const KernelCtx &c)
{
    unary(c, [](float x) { return std::sqrt(x); });
}

void
scaleK(const KernelCtx &c)
{
    float alpha = static_cast<float>(c.node->attrs.getFloat("alpha", 1.0));
    unary(c, [alpha](float x) { return alpha * x; });
}

void
addScalarK(const KernelCtx &c)
{
    float alpha = static_cast<float>(c.node->attrs.getFloat("alpha", 0.0));
    unary(c, [alpha](float x) { return x + alpha; });
}

void
reluGradK(const KernelCtx &c)
{
    int64_t hi = partitionEnd(c, numel(*c.outShape));
    for (int64_t i = c.begin; i < hi; ++i)
        c.out[i] = c.in[0][i] > 0 ? c.in[1][i] : 0.0f;
}

void
geluGradK(const KernelCtx &c)
{
    int64_t hi = partitionEnd(c, numel(*c.outShape));
    for (int64_t i = c.begin; i < hi; ++i)
        c.out[i] = c.in[1][i] * geluGradOf(c.in[0][i]);
}

void
siluGradK(const KernelCtx &c)
{
    int64_t hi = partitionEnd(c, numel(*c.outShape));
    for (int64_t i = c.begin; i < hi; ++i) {
        float s = sigmoidOf(c.in[0][i]);
        c.out[i] = c.in[1][i] * (s + c.in[0][i] * s * (1.0f - s));
    }
}

void
sigmoidGradK(const KernelCtx &c)
{
    int64_t hi = partitionEnd(c, numel(*c.outShape));
    for (int64_t i = c.begin; i < hi; ++i) {
        float s = sigmoidOf(c.in[0][i]);
        c.out[i] = c.in[1][i] * s * (1.0f - s);
    }
}

void
tanhGradK(const KernelCtx &c)
{
    int64_t hi = partitionEnd(c, numel(*c.outShape));
    for (int64_t i = c.begin; i < hi; ++i) {
        float t = std::tanh(c.in[0][i]);
        c.out[i] = c.in[1][i] * (1.0f - t * t);
    }
}

void
identityK(const KernelCtx &c)
{
    int64_t hi = partitionEnd(c, numel(*c.outShape));
    std::memcpy(c.out + c.begin, c.in[0] + c.begin,
                sizeof(float) * (hi - c.begin));
}

} // namespace

namespace detail {

void
registerElementwiseKernels()
{
    PartitionSpec elems{part::outElems, 1024};
    registerKernel(OpKind::Add, "", addK, elems);
    registerKernel(OpKind::Sub, "", subK, elems);
    registerKernel(OpKind::Mul, "", mulK, elems);
    registerKernel(OpKind::Div, "", divK, elems);
    registerKernel(OpKind::Neg, "", negK, elems);
    registerKernel(OpKind::Relu, "", reluK, elems);
    registerKernel(OpKind::Gelu, "", geluK, elems);
    registerKernel(OpKind::Silu, "", siluK, elems);
    registerKernel(OpKind::Sigmoid, "", sigmoidK, elems);
    registerKernel(OpKind::Tanh, "", tanhK, elems);
    registerKernel(OpKind::Exp, "", expK, elems);
    registerKernel(OpKind::Log, "", logK, elems);
    registerKernel(OpKind::Sqrt, "", sqrtK, elems);
    registerKernel(OpKind::Scale, "", scaleK, elems);
    registerKernel(OpKind::AddScalar, "", addScalarK, elems);
    registerKernel(OpKind::ReluGrad, "", reluGradK, elems);
    registerKernel(OpKind::GeluGrad, "", geluGradK, elems);
    registerKernel(OpKind::SiluGrad, "", siluGradK, elems);
    registerKernel(OpKind::SigmoidGrad, "", sigmoidGradK, elems);
    registerKernel(OpKind::TanhGrad, "", tanhGradK, elems);
    registerKernel(OpKind::Identity, "", identityK, elems);
}

} // namespace detail
} // namespace pe
