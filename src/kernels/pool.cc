/**
 * @file
 * Average-pooling kernels (forward and backward), NCHW.
 */

#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
avgPool2d(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t k = c.node->attrs.getInt("kernel");
    int64_t s = c.node->attrs.getInt("stride", k);
    int64_t n = xs[0], ch = xs[1], h = xs[2], w = xs[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    float inv = 1.0f / static_cast<float>(k * k);
    for (int64_t nc = 0; nc < n * ch; ++nc) {
        const float *xp = c.in[0] + nc * h * w;
        float *op = c.out + nc * ho * wo;
        for (int64_t i = 0; i < ho; ++i) {
            for (int64_t j = 0; j < wo; ++j) {
                float acc = 0;
                for (int64_t a = 0; a < k; ++a) {
                    for (int64_t b = 0; b < k; ++b)
                        acc += xp[(i * s + a) * w + (j * s + b)];
                }
                op[i * wo + j] = acc * inv;
            }
        }
    }
}

void
avgPool2dGrad(const KernelCtx &c)
{
    const Shape &dys = *c.inShapes[0];
    const Shape &xs = *c.outShape;
    int64_t k = c.node->attrs.getInt("kernel");
    int64_t s = c.node->attrs.getInt("stride", k);
    int64_t n = xs[0], ch = xs[1], h = xs[2], w = xs[3];
    int64_t ho = dys[2], wo = dys[3];
    float inv = 1.0f / static_cast<float>(k * k);
    std::memset(c.out, 0, sizeof(float) * numel(xs));
    for (int64_t nc = 0; nc < n * ch; ++nc) {
        const float *gp = c.in[0] + nc * ho * wo;
        float *dp = c.out + nc * h * w;
        for (int64_t i = 0; i < ho; ++i) {
            for (int64_t j = 0; j < wo; ++j) {
                float g = gp[i * wo + j] * inv;
                for (int64_t a = 0; a < k; ++a) {
                    for (int64_t b = 0; b < k; ++b)
                        dp[(i * s + a) * w + (j * s + b)] += g;
                }
            }
        }
    }
}

void
globalAvgPool(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t n = xs[0], ch = xs[1], hw = xs[2] * xs[3];
    float inv = 1.0f / static_cast<float>(hw);
    for (int64_t nc = 0; nc < n * ch; ++nc) {
        const float *xp = c.in[0] + nc * hw;
        float acc = 0;
        for (int64_t i = 0; i < hw; ++i)
            acc += xp[i];
        c.out[nc] = acc * inv;
    }
}

void
globalAvgPoolGrad(const KernelCtx &c)
{
    const Shape &xs = *c.outShape;
    int64_t n = xs[0], ch = xs[1], hw = xs[2] * xs[3];
    float inv = 1.0f / static_cast<float>(hw);
    for (int64_t nc = 0; nc < n * ch; ++nc) {
        float g = c.in[0][nc] * inv;
        float *dp = c.out + nc * hw;
        for (int64_t i = 0; i < hw; ++i)
            dp[i] = g;
    }
}

} // namespace

namespace detail {

void
registerPoolKernels()
{
    registerKernel(OpKind::AvgPool2d, "", avgPool2d);
    registerKernel(OpKind::AvgPool2dGrad, "", avgPool2dGrad);
    registerKernel(OpKind::GlobalAvgPool, "", globalAvgPool);
    registerKernel(OpKind::GlobalAvgPoolGrad, "", globalAvgPoolGrad);
}

} // namespace detail
} // namespace pe
