/**
 * @file
 * LayerNorm and RMSNorm kernels (forward + backward). The backward
 * kernels recompute row statistics rather than saving them — the
 * memory planner then never has to keep mean/rstd alive, matching the
 * engine's activation-lean design.
 *
 * Partitioning: forward and grad-x kernels are independent per row
 * and split over rows. The grad-gamma kernels honor a column range
 * (shards would own disjoint columns) but are registered serial:
 * every column shard re-derives the per-row statistics, so splitting
 * multiplies the dominant stats work by the shard count — more total
 * CPU for little wall-clock gain on a [D]-sized output.
 */

#include <cmath>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
layerNormK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = partitionEnd(c, numel(xs) / d);
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1], *beta = c.in[2];
    for (int64_t r = c.begin; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        float *y = c.out + r * d;
        float mean = 0;
        for (int64_t i = 0; i < d; ++i)
            mean += x[i];
        mean /= static_cast<float>(d);
        float var = 0;
        for (int64_t i = 0; i < d; ++i)
            var += (x[i] - mean) * (x[i] - mean);
        var /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(var + eps);
        for (int64_t i = 0; i < d; ++i)
            y[i] = (x[i] - mean) * rstd * gamma[i] + beta[i];
    }
}

/** dx for layernorm; inputs x, gamma, dy. */
void
layerNormGradXK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = partitionEnd(c, numel(xs) / d);
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1];
    for (int64_t r = c.begin; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[2] + r * d;
        float *dx = c.out + r * d;
        float mean = 0;
        for (int64_t i = 0; i < d; ++i)
            mean += x[i];
        mean /= static_cast<float>(d);
        float var = 0;
        for (int64_t i = 0; i < d; ++i)
            var += (x[i] - mean) * (x[i] - mean);
        var /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(var + eps);
        // dx = rstd * (g*dy - mean(g*dy) - xhat * mean(g*dy*xhat))
        float sum1 = 0, sum2 = 0;
        for (int64_t i = 0; i < d; ++i) {
            float gd = gamma[i] * dy[i];
            float xhat = (x[i] - mean) * rstd;
            sum1 += gd;
            sum2 += gd * xhat;
        }
        sum1 /= static_cast<float>(d);
        sum2 /= static_cast<float>(d);
        for (int64_t i = 0; i < d; ++i) {
            float gd = gamma[i] * dy[i];
            float xhat = (x[i] - mean) * rstd;
            dx[i] = rstd * (gd - sum1 - xhat * sum2);
        }
    }
}

/** dGamma = sum over rows of dy * xhat; inputs x, dy. */
void
layerNormGradGammaK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    int64_t c0 = c.begin, c1 = partitionEnd(c, d);
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    for (int64_t i = c0; i < c1; ++i)
        c.out[i] = 0;
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[1] + r * d;
        float mean = 0;
        for (int64_t i = 0; i < d; ++i)
            mean += x[i];
        mean /= static_cast<float>(d);
        float var = 0;
        for (int64_t i = 0; i < d; ++i)
            var += (x[i] - mean) * (x[i] - mean);
        var /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(var + eps);
        for (int64_t i = c0; i < c1; ++i)
            c.out[i] += dy[i] * (x[i] - mean) * rstd;
    }
}

void
rmsNormK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = partitionEnd(c, numel(xs) / d);
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1];
    for (int64_t r = c.begin; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        float *y = c.out + r * d;
        float ms = 0;
        for (int64_t i = 0; i < d; ++i)
            ms += x[i] * x[i];
        ms /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(ms + eps);
        for (int64_t i = 0; i < d; ++i)
            y[i] = x[i] * rstd * gamma[i];
    }
}

/** dx for rmsnorm; inputs x, gamma, dy. */
void
rmsNormGradXK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = partitionEnd(c, numel(xs) / d);
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1];
    for (int64_t r = c.begin; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[2] + r * d;
        float *dx = c.out + r * d;
        float ms = 0;
        for (int64_t i = 0; i < d; ++i)
            ms += x[i] * x[i];
        ms /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(ms + eps);
        float dot = 0;
        for (int64_t i = 0; i < d; ++i)
            dot += gamma[i] * dy[i] * x[i];
        dot /= static_cast<float>(d);
        float r3 = rstd * rstd * rstd;
        for (int64_t i = 0; i < d; ++i)
            dx[i] = gamma[i] * dy[i] * rstd - x[i] * dot * r3;
    }
}

/** dGamma = sum over rows of dy * x * rstd; inputs x, dy. */
void
rmsNormGradGammaK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    int64_t c0 = c.begin, c1 = partitionEnd(c, d);
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    for (int64_t i = c0; i < c1; ++i)
        c.out[i] = 0;
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[1] + r * d;
        float ms = 0;
        for (int64_t i = 0; i < d; ++i)
            ms += x[i] * x[i];
        ms /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(ms + eps);
        for (int64_t i = c0; i < c1; ++i)
            c.out[i] += dy[i] * x[i] * rstd;
    }
}

} // namespace

namespace detail {

void
registerNormKernels()
{
    PartitionSpec rows{part::outRows, 1};
    registerKernel(OpKind::LayerNorm, "", layerNormK, rows);
    registerKernel(OpKind::LayerNormGradX, "", layerNormGradXK, rows);
    registerKernel(OpKind::LayerNormGradGamma, "", layerNormGradGammaK);
    registerKernel(OpKind::RMSNorm, "", rmsNormK, rows);
    registerKernel(OpKind::RMSNormGradX, "", rmsNormGradXK, rows);
    registerKernel(OpKind::RMSNormGradGamma, "", rmsNormGradGammaK);
}

} // namespace detail
} // namespace pe
