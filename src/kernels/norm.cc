/**
 * @file
 * LayerNorm and RMSNorm kernels (forward + backward). The backward
 * kernels recompute row statistics rather than saving them — the
 * memory planner then never has to keep mean/rstd alive, matching the
 * engine's activation-lean design.
 */

#include <cmath>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
layerNormK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1], *beta = c.in[2];
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        float *y = c.out + r * d;
        float mean = 0;
        for (int64_t i = 0; i < d; ++i)
            mean += x[i];
        mean /= static_cast<float>(d);
        float var = 0;
        for (int64_t i = 0; i < d; ++i)
            var += (x[i] - mean) * (x[i] - mean);
        var /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(var + eps);
        for (int64_t i = 0; i < d; ++i)
            y[i] = (x[i] - mean) * rstd * gamma[i] + beta[i];
    }
}

/** dx for layernorm; inputs x, gamma, dy. */
void
layerNormGradXK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1];
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[2] + r * d;
        float *dx = c.out + r * d;
        float mean = 0;
        for (int64_t i = 0; i < d; ++i)
            mean += x[i];
        mean /= static_cast<float>(d);
        float var = 0;
        for (int64_t i = 0; i < d; ++i)
            var += (x[i] - mean) * (x[i] - mean);
        var /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(var + eps);
        // dx = rstd * (g*dy - mean(g*dy) - xhat * mean(g*dy*xhat))
        float sum1 = 0, sum2 = 0;
        for (int64_t i = 0; i < d; ++i) {
            float gd = gamma[i] * dy[i];
            float xhat = (x[i] - mean) * rstd;
            sum1 += gd;
            sum2 += gd * xhat;
        }
        sum1 /= static_cast<float>(d);
        sum2 /= static_cast<float>(d);
        for (int64_t i = 0; i < d; ++i) {
            float gd = gamma[i] * dy[i];
            float xhat = (x[i] - mean) * rstd;
            dx[i] = rstd * (gd - sum1 - xhat * sum2);
        }
    }
}

/** dGamma = sum over rows of dy * xhat; inputs x, dy. */
void
layerNormGradGammaK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    for (int64_t i = 0; i < d; ++i)
        c.out[i] = 0;
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[1] + r * d;
        float mean = 0;
        for (int64_t i = 0; i < d; ++i)
            mean += x[i];
        mean /= static_cast<float>(d);
        float var = 0;
        for (int64_t i = 0; i < d; ++i)
            var += (x[i] - mean) * (x[i] - mean);
        var /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(var + eps);
        for (int64_t i = 0; i < d; ++i)
            c.out[i] += dy[i] * (x[i] - mean) * rstd;
    }
}

void
rmsNormK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1];
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        float *y = c.out + r * d;
        float ms = 0;
        for (int64_t i = 0; i < d; ++i)
            ms += x[i] * x[i];
        ms /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(ms + eps);
        for (int64_t i = 0; i < d; ++i)
            y[i] = x[i] * rstd * gamma[i];
    }
}

/** dx for rmsnorm; inputs x, gamma, dy. */
void
rmsNormGradXK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    const float *gamma = c.in[1];
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[2] + r * d;
        float *dx = c.out + r * d;
        float ms = 0;
        for (int64_t i = 0; i < d; ++i)
            ms += x[i] * x[i];
        ms /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(ms + eps);
        float dot = 0;
        for (int64_t i = 0; i < d; ++i)
            dot += gamma[i] * dy[i] * x[i];
        dot /= static_cast<float>(d);
        float r3 = rstd * rstd * rstd;
        for (int64_t i = 0; i < d; ++i)
            dx[i] = gamma[i] * dy[i] * rstd - x[i] * dot * r3;
    }
}

/** dGamma = sum over rows of dy * x * rstd; inputs x, dy. */
void
rmsNormGradGammaK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = numel(xs) / d;
    float eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-5));
    for (int64_t i = 0; i < d; ++i)
        c.out[i] = 0;
    for (int64_t r = 0; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        const float *dy = c.in[1] + r * d;
        float ms = 0;
        for (int64_t i = 0; i < d; ++i)
            ms += x[i] * x[i];
        ms /= static_cast<float>(d);
        float rstd = 1.0f / std::sqrt(ms + eps);
        for (int64_t i = 0; i < d; ++i)
            c.out[i] += dy[i] * x[i] * rstd;
    }
}

} // namespace

namespace detail {

void
registerNormKernels()
{
    registerKernel(OpKind::LayerNorm, "", layerNormK);
    registerKernel(OpKind::LayerNormGradX, "", layerNormGradXK);
    registerKernel(OpKind::LayerNormGradGamma, "", layerNormGradGammaK);
    registerKernel(OpKind::RMSNorm, "", rmsNormK);
    registerKernel(OpKind::RMSNormGradX, "", rmsNormGradXK);
    registerKernel(OpKind::RMSNormGradGamma, "", rmsNormGradGammaK);
}

} // namespace detail
} // namespace pe
