/**
 * @file
 * Quantized kernels (int8 storage, int32 accumulation, float
 * requantization) plus the f32<->f16 storage casts.
 *
 * Two tiers per quant compute op:
 *  - "int8": the real integer kernel. GEMM packs the i8 weight panel
 *    into a per-shard workspace (contiguous K-major rows, like the
 *    blocked fp32 GEMM's packed-B panel); conv uses a per-image i8
 *    im2col column buffer whose padding cells hold the input
 *    zero-point, so (col - zp) vanishes exactly where fp32 would pad
 *    zeros. Both accumulate in int32 and requantize per output
 *    channel.
 *  - "" (default): a dequant->fp32->requant reference kernel that
 *    stages fp32 copies of its operands in its workspace and calls
 *    the existing fp32 kernel. Any op with no "int8" registration
 *    silently runs this tier — which the registry's fallback flag,
 *    and therefore CompileReport::kernelFallbacks, surfaces.
 *
 * Every quant compute op — including depthwise conv, historically the
 * largest fallback — now has a native "int8" kernel; the SIMD tier
 * (simd_avx2.cc / simd_neon.cc) adds "int8@avx2"/"int8@neon"
 * variants that are bit-exact to these (integer accumulation has no
 * reassociation hazard; requantization rounds identically).
 *
 * Thread-count invariance: every shard computes its output elements
 * with per-element exact integer accumulation and one final rounding,
 * so numThreads=N is bit-identical to numThreads=1 (asserted by
 * test_quant).
 */

#include <cmath>
#include <cstring>

#include "ir/infer.h"
#include "kernels/kernel.h"
#include "kernels/kernel_util.h"
#include "quant/quant.h"

namespace pe {
namespace {

using kutil::AxisView;
using kutil::attrF;
using kutil::attrI;
using kutil::axisView;

// ---- storage casts ----------------------------------------------------

void
quantizeK(const KernelCtx &c)
{
    int64_t n = numel(*c.outShape);
    int64_t hi = partitionEnd(c, n);
    const float *x = c.in[0];
    if (c.node->attrs.getString("dtype", "i8") == "f16") {
        uint16_t *out = reinterpret_cast<uint16_t *>(c.out);
        for (int64_t i = c.begin; i < hi; ++i)
            out[i] = floatToHalf(x[i]);
        return;
    }
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    if (c.in.size() > 1 && c.node->attrs.has("qaxis")) {
        // Per-channel symmetric (weights): scales from input 1.
        AxisView av =
            axisView(*c.outShape, c.node->attrs.getInt("qaxis"));
        const float *scales = c.in[1];
        for (int64_t i = c.begin; i < hi; ++i)
            out[i] = quantizeValue(x[i], scales[av.channelOf(i)], 0);
        return;
    }
    float s = attrF(c, "yScale", 1.0);
    int32_t zp = attrI(c, "yZp", 0);
    for (int64_t i = c.begin; i < hi; ++i)
        out[i] = quantizeValue(x[i], s, zp);
}

void
dequantizeK(const KernelCtx &c)
{
    int64_t n = numel(*c.outShape);
    int64_t hi = partitionEnd(c, n);
    if (c.node->attrs.getString("dtype", "i8") == "f16") {
        const uint16_t *x = reinterpret_cast<const uint16_t *>(c.in[0]);
        for (int64_t i = c.begin; i < hi; ++i)
            c.out[i] = halfToFloat(x[i]);
        return;
    }
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    if (c.in.size() > 1 && c.node->attrs.has("qaxis")) {
        AxisView av =
            axisView(*c.outShape, c.node->attrs.getInt("qaxis"));
        const float *scales = c.in[1];
        for (int64_t i = c.begin; i < hi; ++i)
            c.out[i] = dequantizeValue(x[i], scales[av.channelOf(i)], 0);
        return;
    }
    float s = attrF(c, "xScale", 1.0);
    int32_t zp = attrI(c, "xZp", 0);
    for (int64_t i = c.begin; i < hi; ++i)
        c.out[i] = dequantizeValue(x[i], s, zp);
}

void
requantizeK(const KernelCtx &c)
{
    int64_t n = numel(*c.outShape);
    int64_t hi = partitionEnd(c, n);
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    float xs = attrF(c, "xScale", 1.0), ys = attrF(c, "yScale", 1.0);
    int32_t xzp = attrI(c, "xZp", 0), yzp = attrI(c, "yZp", 0);
    for (int64_t i = c.begin; i < hi; ++i)
        out[i] = quantizeValue(dequantizeValue(x[i], xs, xzp), ys, yzp);
}

// ---- int8 elementwise -------------------------------------------------

void
qaddK(const KernelCtx &c)
{
    int64_t n = numel(*c.outShape);
    int64_t hi = partitionEnd(c, n);
    const int8_t *a = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *b = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    float as = attrF(c, "xScale", 1.0), bs = attrF(c, "bScale", 1.0);
    float ys = attrF(c, "yScale", 1.0);
    int32_t azp = attrI(c, "xZp", 0), bzp = attrI(c, "bZp", 0);
    int32_t yzp = attrI(c, "yZp", 0);
    for (int64_t i = c.begin; i < hi; ++i) {
        float v = dequantizeValue(a[i], as, azp) +
                  dequantizeValue(b[i], bs, bzp);
        out[i] = quantizeValue(v, ys, yzp);
    }
}

void
qreluK(const KernelCtx &c)
{
    int64_t n = numel(*c.outShape);
    int64_t hi = partitionEnd(c, n);
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    float xs = attrF(c, "xScale", 1.0), ys = attrF(c, "yScale", 1.0);
    int32_t xzp = attrI(c, "xZp", 0), yzp = attrI(c, "yZp", 0);
    for (int64_t i = c.begin; i < hi; ++i) {
        float v = dequantizeValue(x[i], xs, xzp);
        out[i] = quantizeValue(v > 0 ? v : 0.0f, ys, yzp);
    }
}

// ---- int8 GEMM --------------------------------------------------------

/** Requantization context shared by GEMM and conv (kernel_util.h —
 *  the SIMD tier must round identically). */
using kutil::Requant;
using kutil::requantOf;

/**
 * out[M,N] i8 = requant( sum_k (a[m,k]-xZp) * w[.,.] ). The weight
 * panel is packed K-contiguous per output column into the shard's
 * workspace, so the inner loop streams two contiguous i8 vectors.
 */
void
qmatmulK(const KernelCtx &c)
{
    const Shape &as = *c.inShapes[0];
    const Shape &bs = *c.inShapes[1];
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    int64_t m_hi = partitionEnd(c, (*c.outShape)[0]);
    int64_t k = as[1];
    int64_t n = (*c.outShape)[1];
    const int8_t *a = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *b = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);

    // Pack W into [N, K] rows (a value-copy; accumulation order is
    // untouched, so packing cannot perturb results).
    int8_t *wp = reinterpret_cast<int8_t *>(c.workspace);
    for (int64_t j = 0; j < n; ++j) {
        for (int64_t kk = 0; kk < k; ++kk)
            wp[j * k + kk] = tb ? b[j * k + kk] : b[kk * n + j];
    }
    (void)bs;

    for (int64_t i = c.begin; i < m_hi; ++i) {
        const int8_t *arow = a + i * k;
        for (int64_t j = 0; j < n; ++j) {
            const int8_t *wrow = wp + j * k;
            int32_t acc = 0;
            for (int64_t kk = 0; kk < k; ++kk) {
                acc += (static_cast<int32_t>(arow[kk]) - rq.xZp) *
                       static_cast<int32_t>(wrow[kk]);
            }
            out[i * n + j] = rq.emit(acc, j);
        }
    }
}

/** Packed i8 panel (kernel_util.h — shared with the SIMD tier). */
constexpr auto qmatmulWorkspace = kutil::qgemmWorkspace;

// ---- int8 conv (im2col) ----------------------------------------------

void
qconvK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t nI = xs[0], ci = xs[1], h = xs[2], w = xs[3];
    int64_t co = ws[0], kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *wt = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);

    int64_t k = ci * kh * kw;
    int64_t cols = ho * wo;
    int8_t *col = reinterpret_cast<int8_t *>(c.workspace);
    int8_t zp8 = static_cast<int8_t>(
        std::min<int32_t>(127, std::max<int32_t>(-128, rq.xZp)));

    for (int64_t ni = c.begin; ni < partitionEnd(c, nI); ++ni) {
        const int8_t *xn = x + ni * ci * h * w;
        // Unfold; padding cells hold the zero-point so (col - zp) is
        // exactly zero there, matching fp32 zero padding.
        kutil::im2colUnfold(xn, col, ci, h, w, kh, kw, ho, wo, stride,
                            pad, zp8);
        // GEMM: out[co, cols] = (col - zp) . w[co, k], int32 accum.
        int8_t *on = out + ni * co * cols;
        for (int64_t o = 0; o < co; ++o) {
            const int8_t *wrow = wt + o * k;
            int8_t *dst = on + o * cols;
            for (int64_t cc2 = 0; cc2 < cols; ++cc2) {
                int32_t acc = 0;
                for (int64_t kk = 0; kk < k; ++kk) {
                    acc += (static_cast<int32_t>(col[kk * cols + cc2]) -
                            rq.xZp) *
                           static_cast<int32_t>(wrow[kk]);
                }
                dst[cc2] = rq.emit(acc, o);
            }
        }
    }
}

/** Per-image i8 column buffer (kernel_util.h — shared with the SIMD
 *  tier). */
constexpr auto qconvWorkspace = kutil::qconvColWorkspace;

// ---- int8 depthwise conv ---------------------------------------------

/**
 * Native int8 depthwise conv: direct (no workspace), int32
 * accumulation over the (kh, kw) window with out-of-bounds taps
 * skipped — (x - zp) * w summed in ascending tap order, one rounding
 * at requantization. Until this kernel existed, QuantDwConv2d was the
 * largest dequant->fp32->requant fallback on every MCUNet /
 * MobileNetV2 int8 compile.
 */
void
qdwConv2dK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t ch = xs[1], h = xs[2], w = xs[3];
    int64_t kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *wt = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);

    int64_t hi = partitionEnd(c, xs[0] * ch);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t ni = idx / ch, ci = idx % ch;
        const int8_t *xp = x + (ni * ch + ci) * h * w;
        const int8_t *wp = wt + ci * kh * kw;
        int8_t *op = out + (ni * ch + ci) * ho * wo;
        for (int64_t i = 0; i < ho; ++i) {
            for (int64_t j = 0; j < wo; ++j) {
                int32_t acc = 0;
                for (int64_t a = 0; a < kh; ++a) {
                    int64_t ih = i * stride - pad + a;
                    if (ih < 0 || ih >= h)
                        continue;
                    for (int64_t b = 0; b < kw; ++b) {
                        int64_t iw = j * stride - pad + b;
                        if (iw < 0 || iw >= w)
                            continue;
                        acc += (static_cast<int32_t>(xp[ih * w + iw]) -
                                rq.xZp) *
                               static_cast<int32_t>(wp[a * kw + b]);
                    }
                }
                op[i * wo + j] = rq.emit(acc, ci);
            }
        }
    }
}

// ---- reference tier: dequant -> fp32 kernel -> requant ---------------

/**
 * Generic fallback for quant compute ops without an integer kernel.
 * Stages fp32 copies of the activation and weight in the workspace,
 * runs the corresponding fp32 kernel, and requantizes the fp32
 * result. Serial by construction (no PartitionSpec) — this is the
 * slow path the compile report's fallback counter exists to expose.
 */
template <OpKind PlainOp, OpKind BiasOp, int64_t WAxis>
void
refQuantK(const KernelCtx &c)
{
    int64_t nx = numel(*c.inShapes[0]);
    int64_t nw = numel(*c.inShapes[1]);
    int64_t ny = numel(*c.outShape);
    float *fx = c.workspace;
    float *fw = fx + nx;
    float *fy = fw + nw;
    Requant rq = requantOf(c);

    const int8_t *qx = reinterpret_cast<const int8_t *>(c.in[0]);
    for (int64_t i = 0; i < nx; ++i)
        fx[i] = dequantizeValue(qx[i], rq.xScale, rq.xZp);
    const int8_t *qw = reinterpret_cast<const int8_t *>(c.in[1]);
    AxisView av = axisView(*c.inShapes[1], WAxis);
    for (int64_t i = 0; i < nw; ++i) {
        float sw = rq.wScales ? rq.wScales[av.channelOf(i)] : rq.wScale;
        fw[i] = dequantizeValue(qw[i], sw, 0);
    }

    bool has_bias = rq.bias != nullptr;
    KernelCtx sub;
    Node proxy = *c.node; // attrs (stride/pad/trans/act) pass through
    proxy.op = has_bias ? BiasOp : PlainOp;
    sub.node = &proxy;
    sub.in = {fx, fw};
    sub.inShapes = {c.inShapes[0], c.inShapes[1]};
    if (has_bias) {
        sub.in.push_back(rq.bias);
        sub.inShapes.push_back(c.inShapes[2]);
    }
    sub.out = fy;
    sub.outShape = c.outShape;
    sub.step = c.step;
    lookupKernel(proxy.op, "")(sub);

    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    for (int64_t i = 0; i < ny; ++i)
        out[i] = quantizeValue(fy[i], rq.yScale, rq.yZp);
}

/** Per-tensor matmul axis resolves transB at run time, so the ref
 *  matmul picks the weight axis dynamically. */
void
refQMatmulK(const KernelCtx &c)
{
    if (c.node->attrs.getInt("transB", 0) != 0)
        refQuantK<OpKind::MatMul, OpKind::MatMulBiasAct, 0>(c);
    else
        refQuantK<OpKind::MatMul, OpKind::MatMulBiasAct, 1>(c);
}

WorkspaceSpec
refQuantWorkspace(const Graph &g, const Node &n)
{
    WorkspaceSpec spec;
    spec.bytesPerShard = 4 * (numel(g.node(n.inputs[0]).shape) +
                              numel(g.node(n.inputs[1]).shape) +
                              numel(n.shape));
    return spec;
}

int64_t
qmatmulRows(const KernelCtx &c)
{
    return (*c.outShape)[0];
}

} // namespace

namespace detail {

void
registerQuantizedKernels()
{
    PartitionSpec elems{part::outElems, 1024};
    PartitionSpec rows{qmatmulRows, 8};
    PartitionSpec images{part::outDim0, 1};
    PartitionSpec imageChannels{part::outDim01, 1};

    registerKernel(OpKind::Quantize, "", quantizeK, elems);
    registerKernel(OpKind::Dequantize, "", dequantizeK, elems);
    registerKernel(OpKind::Requantize, "", requantizeK, elems);

    // Elementwise int8 is the same code at both tiers.
    registerKernel(OpKind::QuantAdd, "", qaddK, elems);
    registerKernel(OpKind::QuantAdd, "int8", qaddK, elems);
    registerKernel(OpKind::QuantRelu, "", qreluK, elems);
    registerKernel(OpKind::QuantRelu, "int8", qreluK, elems);

    registerKernel(OpKind::QuantMatMul, "", refQMatmulK, {},
                   refQuantWorkspace);
    registerKernel(OpKind::QuantMatMul, "int8", qmatmulK, rows,
                   qmatmulWorkspace);

    registerKernel(OpKind::QuantConv2d, "",
                   refQuantK<OpKind::Conv2d, OpKind::ConvBiasAct, 0>, {},
                   refQuantWorkspace);
    registerKernel(OpKind::QuantConv2d, "int8", qconvK, images,
                   qconvWorkspace);

    registerKernel(OpKind::QuantDwConv2d, "",
                   refQuantK<OpKind::DwConv2d, OpKind::DwConvBiasAct, 0>,
                   {}, refQuantWorkspace);
    // The native int8 depthwise tier: the former "largest fallback on
    // every MCUNet int8 compile" (ROADMAP) is now a real kernel, so
    // int8 compiles report zero QuantDwConv2d fallbacks.
    registerKernel(OpKind::QuantDwConv2d, "int8", qdwConv2dK,
                   imageChannels);
}

} // namespace detail
} // namespace pe
