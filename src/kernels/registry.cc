#include "kernels/kernel.h"

#include <map>
#include <stdexcept>

namespace pe {

namespace {

using Key = std::pair<OpKind, std::string>;

std::map<Key, KernelFn> &
registry()
{
    static std::map<Key, KernelFn> r;
    return r;
}

} // namespace

void
registerKernel(OpKind op, const std::string &variant, KernelFn fn)
{
    registry()[{op, variant}] = fn;
}

namespace detail {

// Declared here, defined one per kernel translation unit. A static
// library can silently drop TUs whose symbols are never referenced, so
// registration is pulled in explicitly instead of relying on static
// initializers.
void registerElementwiseKernels();
void registerMatmulKernels();
void registerConvKernels();
void registerWinogradKernels();
void registerPoolKernels();
void registerSoftmaxKernels();
void registerNormKernels();
void registerEmbeddingKernels();
void registerLossKernels();
void registerReduceKernels();
void registerShapeOpKernels();
void registerOptimApplyKernels();
void registerFusedKernels();

void
ensureKernelsRegistered()
{
    static const bool done = [] {
        registerElementwiseKernels();
        registerMatmulKernels();
        registerConvKernels();
        registerWinogradKernels();
        registerPoolKernels();
        registerSoftmaxKernels();
        registerNormKernels();
        registerEmbeddingKernels();
        registerLossKernels();
        registerReduceKernels();
        registerShapeOpKernels();
        registerOptimApplyKernels();
        registerFusedKernels();
        return true;
    }();
    (void)done;
}

} // namespace detail

KernelFn
lookupKernel(OpKind op, const std::string &variant)
{
    detail::ensureKernelsRegistered();
    auto it = registry().find({op, variant});
    if (it == registry().end() && !variant.empty())
        it = registry().find({op, ""});
    if (it == registry().end()) {
        throw std::runtime_error(std::string("no kernel for op ") +
                                 opName(op));
    }
    return it->second;
}

bool
hasKernelVariant(OpKind op, const std::string &variant)
{
    detail::ensureKernelsRegistered();
    return registry().count({op, variant}) > 0;
}

} // namespace pe
