#include "kernels/kernel.h"

#include <map>
#include <stdexcept>

#include "hw/cpu_features.h"

namespace pe {

namespace {

using Key = std::pair<OpKind, std::string>;

std::map<Key, KernelInfo> &
registry()
{
    static std::map<Key, KernelInfo> r;
    return r;
}

} // namespace

void
registerKernel(OpKind op, const std::string &variant, KernelFn fn,
               PartitionSpec part, WorkspaceFn workspace)
{
    registry()[{op, variant}] = {fn, part, workspace, false};
}

namespace part {

int64_t
outElems(const KernelCtx &c)
{
    return numel(*c.outShape);
}

int64_t
outRows(const KernelCtx &c)
{
    return numel(*c.outShape) / c.outShape->back();
}

int64_t
outDim0(const KernelCtx &c)
{
    return (*c.outShape)[0];
}

int64_t
outDim01(const KernelCtx &c)
{
    return (*c.outShape)[0] * (*c.outShape)[1];
}

int64_t
in1Elems(const KernelCtx &c)
{
    return numel(*c.inShapes[1]);
}

} // namespace part

namespace detail {

// Declared here, defined one per kernel translation unit. A static
// library can silently drop TUs whose symbols are never referenced, so
// registration is pulled in explicitly instead of relying on static
// initializers.
void registerElementwiseKernels();
void registerMatmulKernels();
void registerConvKernels();
void registerWinogradKernels();
void registerPoolKernels();
void registerSoftmaxKernels();
void registerAttentionKernels();
void registerNormKernels();
void registerEmbeddingKernels();
void registerLossKernels();
void registerReduceKernels();
void registerShapeOpKernels();
void registerOptimApplyKernels();
void registerFusedKernels();
void registerQuantizedKernels();
void registerSimdAvx2Kernels();
void registerSimdNeonKernels();

void
ensureKernelsRegistered()
{
    static const bool done = [] {
        registerElementwiseKernels();
        registerMatmulKernels();
        registerConvKernels();
        registerWinogradKernels();
        registerPoolKernels();
        registerSoftmaxKernels();
        registerAttentionKernels();
        registerNormKernels();
        registerEmbeddingKernels();
        registerLossKernels();
        registerReduceKernels();
        registerShapeOpKernels();
        registerOptimApplyKernels();
        registerFusedKernels();
        registerQuantizedKernels();
#ifndef PE_NO_SIMD
        // Tier variants register only when the RUNNING host can
        // execute them, so hasKernelVariant("...@avx2") is also a
        // capability check and a direct lookup can never bind an
        // illegal instruction.
        if (cpuFeatures().avx2)
            registerSimdAvx2Kernels();
        if (cpuFeatures().neon)
            registerSimdNeonKernels();
#endif
        return true;
    }();
    (void)done;
}

} // namespace detail

namespace {
int g_tierOverride = -1; ///< setSimdTierForTesting; -1 = no override
} // namespace

void
setSimdTierForTesting(int tier)
{
    g_tierOverride = tier;
}

SimdTier
hostSimdTier()
{
    if (g_tierOverride >= 0)
        return static_cast<SimdTier>(g_tierOverride);
#ifdef PE_NO_SIMD
    return SimdTier::Scalar;
#else
    if (cpuFeatures().avx2)
        return SimdTier::Avx2;
    if (cpuFeatures().neon)
        return SimdTier::Neon;
    return SimdTier::Scalar;
#endif
}

SimdTier
variantTier(const std::string &variant)
{
    std::string base = scalarVariantOf(variant);
    std::string suffix = base.empty()
                             ? variant
                             : (variant.size() > base.size() + 1
                                    ? variant.substr(base.size() + 1)
                                    : "");
    if (suffix == "avx2")
        return SimdTier::Avx2;
    if (suffix == "neon")
        return SimdTier::Neon;
    return SimdTier::Scalar;
}

std::string
scalarVariantOf(const std::string &variant)
{
    if (variant == "avx2" || variant == "neon")
        return "";
    size_t at = variant.rfind('@');
    if (at != std::string::npos) {
        std::string suffix = variant.substr(at + 1);
        if (suffix == "avx2" || suffix == "neon")
            return variant.substr(0, at);
    }
    return variant;
}

std::string
resolveTierVariant(OpKind op, const std::string &variant, SimdTier tier)
{
    std::string base = scalarVariantOf(variant);
    if (tier != SimdTier::Scalar) {
        std::string candidate =
            base.empty() ? std::string(simdTierName(tier))
                         : base + "@" + simdTierName(tier);
        if (hasKernelVariant(op, candidate))
            return candidate;
    }
    return base;
}

KernelInfo
lookupKernelInfo(OpKind op, const std::string &variant)
{
    detail::ensureKernelsRegistered();
    auto it = registry().find({op, variant});
    bool fell_back = false;
    if (it == registry().end() && !variant.empty()) {
        it = registry().find({op, ""});
        fell_back = it != registry().end();
    }
    if (it == registry().end()) {
        throw std::runtime_error(std::string("no kernel for op ") +
                                 opName(op));
    }
    KernelInfo info = it->second;
    info.fellBack = fell_back;
    return info;
}

KernelFn
lookupKernel(OpKind op, const std::string &variant)
{
    return lookupKernelInfo(op, variant).fn;
}

bool
hasKernelVariant(OpKind op, const std::string &variant)
{
    detail::ensureKernelsRegistered();
    return registry().count({op, variant}) > 0;
}

WorkspaceSpec
kernelWorkspace(const Graph &g, const Node &n, const std::string &variant)
{
    KernelInfo info = lookupKernelInfo(n.op, variant);
    return info.workspace ? info.workspace(g, n) : WorkspaceSpec{};
}

} // namespace pe
