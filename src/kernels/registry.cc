#include "kernels/kernel.h"

#include <map>
#include <stdexcept>

namespace pe {

namespace {

using Key = std::pair<OpKind, std::string>;

std::map<Key, KernelInfo> &
registry()
{
    static std::map<Key, KernelInfo> r;
    return r;
}

} // namespace

void
registerKernel(OpKind op, const std::string &variant, KernelFn fn,
               PartitionSpec part, WorkspaceFn workspace)
{
    registry()[{op, variant}] = {fn, part, workspace, false};
}

namespace part {

int64_t
outElems(const KernelCtx &c)
{
    return numel(*c.outShape);
}

int64_t
outRows(const KernelCtx &c)
{
    return numel(*c.outShape) / c.outShape->back();
}

int64_t
outDim0(const KernelCtx &c)
{
    return (*c.outShape)[0];
}

int64_t
outDim01(const KernelCtx &c)
{
    return (*c.outShape)[0] * (*c.outShape)[1];
}

int64_t
in1Elems(const KernelCtx &c)
{
    return numel(*c.inShapes[1]);
}

} // namespace part

namespace detail {

// Declared here, defined one per kernel translation unit. A static
// library can silently drop TUs whose symbols are never referenced, so
// registration is pulled in explicitly instead of relying on static
// initializers.
void registerElementwiseKernels();
void registerMatmulKernels();
void registerConvKernels();
void registerWinogradKernels();
void registerPoolKernels();
void registerSoftmaxKernels();
void registerNormKernels();
void registerEmbeddingKernels();
void registerLossKernels();
void registerReduceKernels();
void registerShapeOpKernels();
void registerOptimApplyKernels();
void registerFusedKernels();
void registerQuantizedKernels();

void
ensureKernelsRegistered()
{
    static const bool done = [] {
        registerElementwiseKernels();
        registerMatmulKernels();
        registerConvKernels();
        registerWinogradKernels();
        registerPoolKernels();
        registerSoftmaxKernels();
        registerNormKernels();
        registerEmbeddingKernels();
        registerLossKernels();
        registerReduceKernels();
        registerShapeOpKernels();
        registerOptimApplyKernels();
        registerFusedKernels();
        registerQuantizedKernels();
        return true;
    }();
    (void)done;
}

} // namespace detail

KernelInfo
lookupKernelInfo(OpKind op, const std::string &variant)
{
    detail::ensureKernelsRegistered();
    auto it = registry().find({op, variant});
    bool fell_back = false;
    if (it == registry().end() && !variant.empty()) {
        it = registry().find({op, ""});
        fell_back = it != registry().end();
    }
    if (it == registry().end()) {
        throw std::runtime_error(std::string("no kernel for op ") +
                                 opName(op));
    }
    KernelInfo info = it->second;
    info.fellBack = fell_back;
    return info;
}

KernelFn
lookupKernel(OpKind op, const std::string &variant)
{
    return lookupKernelInfo(op, variant).fn;
}

bool
hasKernelVariant(OpKind op, const std::string &variant)
{
    detail::ensureKernelsRegistered();
    return registry().count({op, variant}) > 0;
}

WorkspaceSpec
kernelWorkspace(const Graph &g, const Node &n, const std::string &variant)
{
    KernelInfo info = lookupKernelInfo(n.op, variant);
    return info.workspace ? info.workspace(g, n) : WorkspaceSpec{};
}

} // namespace pe
