/**
 * @file
 * FusedAttention scalar kernel: softmax(Q K^T * scale + mask) V with
 * the score row held in per-shard workspace. The five-op subgraph it
 * replaces (BatchMatMul -> Scale -> Add -> Softmax -> BatchMatMul)
 * materializes four arena intermediates per run; here the QK row, the
 * softmax, and the V-accumulate never leave one [M]-float scratch row,
 * so the planner sees a single output value.
 *
 * Numerics are BIT-IDENTICAL to the unfused scalar subgraph: the dot
 * product accumulates k ascending (gemmNaive's order), the scale and
 * mask-add are the same single mul/add per score, the softmax is
 * softmax.cc's exact max / exp(x-mx) / sum / multiply-by-reciprocal
 * sequence, and the V product accumulates rows ascending per output
 * column (gemmNaive again). Masked positions arrive as -1e30f adds, so
 * exp underflows to exactly 0.0f — identical either way.
 *
 * Partitioning: over logical output rows (rank-2: S; rank-3: B*S).
 * Row r reads Q row r, mask row r, and the K/V slab of batch r/S —
 * every shard writes a disjoint slab of the output. With the "heads"
 * attr (head-split form) row r is (lead r/H, head r%H): K/V rows come
 * from the [L,M,H*Dh] cache slab at column offset (r%H)*Dh with
 * stride H*Dh, and the mask row is lead-indexed.
 */

#include <cmath>
#include <limits>

#include "kernels/kernel.h"
#include "kernels/kernel_util.h"

namespace pe {
namespace {

void
fusedAttentionK(const KernelCtx &c)
{
    const Shape &qs = *c.inShapes[0];
    const Shape &ks = *c.inShapes[1];
    size_t rank = qs.size();
    int64_t dh = qs[rank - 1];
    int64_t s = qs[rank - 2];
    int64_t m = ks[rank - 2];
    float scale = kutil::attrF(c, "scale", 1.0);
    // heads > 0 selects the head-split form: K/V are the raw
    // [L,M,H*Dh] cache slabs (rows head-strided instead of copied by
    // a permute), the mask one [L,M] row per lead shared by every
    // head. Same values in the same order, so still bit-identical.
    int64_t heads = kutil::attrI(c, "heads", 0);
    int64_t kstr = heads > 0 ? heads * dh : dh;

    const float *q = c.in[0];
    const float *k = c.in[1];
    const float *v = c.in[2];
    const float *mask = c.in[3];
    float *scores = c.workspace;

    int64_t rows = numel(*c.outShape) / dh;
    for (int64_t r = c.begin; r < partitionEnd(c, rows); ++r) {
        const float *qrow = q + r * dh;
        const float *mrow, *kb, *vb;
        if (heads > 0) {
            int64_t lead = r / heads, hd = r % heads;
            mrow = mask + lead * m;
            kb = k + lead * m * kstr + hd * dh;
            vb = v + lead * m * kstr + hd * dh;
        } else {
            mrow = mask + r * m;
            kb = k + (r / s) * m * dh;
            vb = v + (r / s) * m * dh;
        }

        // Scores: (Q . K_i) * scale + mask_i, k ascending like
        // gemmNaive, then softmax.cc's exact reduction sequence.
        float mx = -std::numeric_limits<float>::infinity();
        for (int64_t i = 0; i < m; ++i) {
            float acc = 0;
            for (int64_t kk = 0; kk < dh; ++kk)
                acc += qrow[kk] * kb[i * kstr + kk];
            scores[i] = acc * scale + mrow[i];
            if (scores[i] > mx)
                mx = scores[i];
        }
        float sum = 0.0f;
        for (int64_t i = 0; i < m; ++i) {
            scores[i] = std::exp(scores[i] - mx);
            sum += scores[i];
        }
        float inv = 1.0f / sum;
        for (int64_t i = 0; i < m; ++i)
            scores[i] *= inv;

        float *orow = c.out + r * dh;
        for (int64_t j = 0; j < dh; ++j) {
            float acc = 0;
            for (int64_t i = 0; i < m; ++i)
                acc += scores[i] * vb[i * kstr + j];
            orow[j] = acc;
        }
    }
}

} // namespace

namespace detail {

void
registerAttentionKernels()
{
    PartitionSpec rows{part::outRows, 1};
    registerKernel(OpKind::FusedAttention, "", fusedAttentionK, rows,
                   kutil::fusedAttentionWorkspace);
}

} // namespace detail
} // namespace pe
