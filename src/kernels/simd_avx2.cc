/**
 * @file
 * AVX2/FMA kernel tier: the hot quartet — fp32 panel GEMM, im2col
 * conv inner loop, int8 GEMM with vectorized requantization, and the
 * int8 depthwise conv. Registered as "<base>@avx2" variants of the
 * scalar kernels, with IDENTICAL partition domains and workspace
 * declarations (kernel_util.h), so the executor can switch tiers at
 * bind time against one memory plan.
 *
 * Numerics contract (README "Kernel tiers"):
 *  - int8 kernels are BIT-EXACT to the scalar "int8" tier: int32
 *    accumulation is fully associative, and the vectorized
 *    requantization performs the same IEEE mul/div/clamp sequence
 *    with _mm256_cvtps_epi32 matching lrintf's round-nearest-even.
 *    Activations beyond relu (gelu/silu) requantize through the
 *    scalar emit path, so exactness never depends on vector
 *    transcendental approximations.
 *  - fp32 kernels use FMA (one rounding per multiply-add) and
 *    per-panel partial sums, so results differ from scalar in the
 *    last bits: within 1e-5 relative (asserted by test_simd).
 *    Thread-count invariance still holds — every output element's
 *    accumulation order is independent of the shard bounds.
 *
 * This TU is compiled with -mavx2 -mfma -ffp-contract=off (the
 * contract flag keeps the compiler from contracting the SCALAR tail
 * code paths, which must round like plain mul+add), and its
 * registration only runs when cpu_features reports the host executes
 * AVX2 — so this object file is safe to link into binaries deployed
 * on SSE-only machines.
 */

#include "kernels/kernel.h"

#if !defined(PE_NO_SIMD) && (defined(__x86_64__) || defined(__i386__))

#include <cmath>
#include <cstring>
#include <immintrin.h>
#include <limits>

#include "kernels/kernel_util.h"

namespace pe {
namespace {

using kutil::GemmView;
using kutil::Requant;
using kutil::requantOf;

constexpr int64_t kBlock = kutil::kGemmBlock;

// ---- fp32 panel GEMM --------------------------------------------------

/**
 * Blocked GEMM with an 8-row x 8-column FMA register tile over the
 * same packed-B panel layout (and workspace) as the scalar "blocked"
 * kernel. Accumulators live in ymm registers across the panel's
 * k-loop; each panel's partial sum is added to the output once.
 */
void
gemmAvx2(const GemmView &a, const GemmView &b, float *out, int64_t r0,
         int64_t r1, float *ws)
{
    int64_t n = b.cols, kk = a.cols;
    std::memset(out + r0 * n, 0, sizeof(float) * (r1 - r0) * n);
    for (int64_t k0 = 0; k0 < kk; k0 += kBlock) {
        int64_t k1 = std::min(k0 + kBlock, kk);
        for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
            int64_t j1 = std::min(j0 + kBlock, n);
            int64_t jw = j1 - j0;
            // Pack B[k0:k1, j0:j1] exactly like the scalar kernel.
            for (int64_t k = k0; k < k1; ++k) {
                float *dst = ws + (k - k0) * jw;
                for (int64_t j = j0; j < j1; ++j)
                    dst[j - j0] = b.at(k, j);
            }
            for (int64_t i0 = r0; i0 < r1; i0 += 8) {
                int64_t rows = std::min<int64_t>(8, r1 - i0);
                int64_t j = 0;
                for (; j + 8 <= jw; j += 8) {
                    __m256 acc[8];
                    for (int64_t r = 0; r < rows; ++r)
                        acc[r] = _mm256_setzero_ps();
                    for (int64_t k = k0; k < k1; ++k) {
                        __m256 bv =
                            _mm256_loadu_ps(ws + (k - k0) * jw + j);
                        for (int64_t r = 0; r < rows; ++r) {
                            __m256 av =
                                _mm256_set1_ps(a.at(i0 + r, k));
                            acc[r] = _mm256_fmadd_ps(av, bv, acc[r]);
                        }
                    }
                    for (int64_t r = 0; r < rows; ++r) {
                        float *orow = out + (i0 + r) * n + j0 + j;
                        _mm256_storeu_ps(
                            orow,
                            _mm256_add_ps(_mm256_loadu_ps(orow),
                                          acc[r]));
                    }
                }
                // Column tail: plain scalar mul+add (contract off).
                for (; j < jw; ++j) {
                    for (int64_t r = 0; r < rows; ++r) {
                        float s = 0.0f;
                        for (int64_t k = k0; k < k1; ++k)
                            s += a.at(i0 + r, k) *
                                 ws[(k - k0) * jw + j];
                        out[(i0 + r) * n + j0 + j] += s;
                    }
                }
            }
        }
    }
}

GemmView
viewOf(const float *data, const Shape &s, bool trans)
{
    return kutil::gemmViewOf(data, s, trans);
}

void
matmulAvx2K(const KernelCtx &c)
{
    bool ta = c.node->attrs.getInt("transA", 0) != 0;
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    GemmView a = viewOf(c.in[0], *c.inShapes[0], ta);
    GemmView b = viewOf(c.in[1], *c.inShapes[1], tb);
    gemmAvx2(a, b, c.out, c.begin, partitionEnd(c, a.rows),
             c.workspace);
}

void
batchMatmulAvx2K(const KernelCtx &c)
{
    bool ta = c.node->attrs.getInt("transA", 0) != 0;
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    const Shape &as = *c.inShapes[0];
    const Shape &bs = *c.inShapes[1];
    int64_t batch = as[0];
    int64_t a_stride = as[1] * as[2];
    int64_t b_stride = bs[1] * bs[2];
    int64_t o_stride = (*c.outShape)[1] * (*c.outShape)[2];
    for (int64_t n = c.begin; n < partitionEnd(c, batch); ++n) {
        GemmView a = viewOf(c.in[0] + n * a_stride, {as[1], as[2]}, ta);
        GemmView b = viewOf(c.in[1] + n * b_stride, {bs[1], bs[2]}, tb);
        gemmAvx2(a, b, c.out + n * o_stride, 0, a.rows, c.workspace);
    }
}

// ---- fp32 im2col conv -------------------------------------------------

/** Same unfold + [co, k] x [k, cols] product as the scalar "im2col"
 *  kernel, with the cols loop FMA-vectorized. */
void
conv2dIm2colAvx2K(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t nI = xs[0], ci = xs[1], h = xs[2], w = xs[3];
    int64_t co = ws[0], kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const float *x = c.in[0], *wt = c.in[1];
    int64_t k = ci * kh * kw;
    int64_t cols = ho * wo;
    float *col = c.workspace;
    for (int64_t n = c.begin; n < partitionEnd(c, nI); ++n) {
        kutil::im2colUnfold(x + n * ci * h * w, col, ci, h, w, kh, kw,
                            ho, wo, stride, pad, 0.0f);
        float *out = c.out + n * co * cols;
        for (int64_t o = 0; o < co; ++o) {
            float *dst = out + o * cols;
            std::memset(dst, 0, sizeof(float) * cols);
            const float *wrow = wt + o * k;
            for (int64_t kx = 0; kx < k; ++kx) {
                __m256 wv = _mm256_set1_ps(wrow[kx]);
                const float *src = col + kx * cols;
                int64_t j = 0;
                for (; j + 8 <= cols; j += 8)
                    _mm256_storeu_ps(
                        dst + j,
                        _mm256_fmadd_ps(wv, _mm256_loadu_ps(src + j),
                                        _mm256_loadu_ps(dst + j)));
                for (; j < cols; ++j)
                    dst[j] += wrow[kx] * src[j];
            }
        }
    }
}

// ---- fused attention --------------------------------------------------

float
hsumPs(__m256 v)
{
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

/**
 * Same per-row structure (and workspace) as the scalar FusedAttention
 * kernel: score row in shard scratch, softmax, V-accumulate. The QK
 * dot and the V product are FMA-vectorized (lane sums differ from the
 * scalar order in the last bits — fp32 tier contract, 1e-5); the
 * softmax reduction itself stays scalar, so masked -1e30f scores still
 * underflow to exactly 0.0f.
 */
void
fusedAttentionAvx2K(const KernelCtx &c)
{
    const Shape &qs = *c.inShapes[0];
    const Shape &ks = *c.inShapes[1];
    size_t rank = qs.size();
    int64_t dh = qs[rank - 1];
    int64_t s = qs[rank - 2];
    int64_t m = ks[rank - 2];
    float scale = kutil::attrF(c, "scale", 1.0);
    // heads > 0: head-split form — K/V rows are head-strided slices
    // of the [L,M,H*Dh] cache slab, mask rows lead-indexed.
    int64_t heads = kutil::attrI(c, "heads", 0);
    int64_t kstr = heads > 0 ? heads * dh : dh;

    const float *q = c.in[0];
    const float *k = c.in[1];
    const float *v = c.in[2];
    const float *mask = c.in[3];
    float *scores = c.workspace;

    int64_t rows = numel(*c.outShape) / dh;
    for (int64_t r = c.begin; r < partitionEnd(c, rows); ++r) {
        const float *qrow = q + r * dh;
        const float *mrow, *kb, *vb;
        if (heads > 0) {
            int64_t lead = r / heads, hd = r % heads;
            mrow = mask + lead * m;
            kb = k + lead * m * kstr + hd * dh;
            vb = v + lead * m * kstr + hd * dh;
        } else {
            mrow = mask + r * m;
            kb = k + (r / s) * m * dh;
            vb = v + (r / s) * m * dh;
        }

        float mx = -std::numeric_limits<float>::infinity();
        for (int64_t i = 0; i < m; ++i) {
            const float *krow = kb + i * kstr;
            __m256 acc8 = _mm256_setzero_ps();
            int64_t kk = 0;
            for (; kk + 8 <= dh; kk += 8)
                acc8 = _mm256_fmadd_ps(_mm256_loadu_ps(qrow + kk),
                                       _mm256_loadu_ps(krow + kk),
                                       acc8);
            float acc = hsumPs(acc8);
            for (; kk < dh; ++kk)
                acc += qrow[kk] * krow[kk];
            scores[i] = acc * scale + mrow[i];
            if (scores[i] > mx)
                mx = scores[i];
        }
        float sum = 0.0f;
        for (int64_t i = 0; i < m; ++i) {
            scores[i] = std::exp(scores[i] - mx);
            sum += scores[i];
        }
        float inv = 1.0f / sum;
        for (int64_t i = 0; i < m; ++i)
            scores[i] *= inv;

        float *orow = c.out + r * dh;
        int64_t j = 0;
        for (; j + 8 <= dh; j += 8) {
            __m256 acc = _mm256_setzero_ps();
            for (int64_t i = 0; i < m; ++i)
                acc = _mm256_fmadd_ps(
                    _mm256_set1_ps(scores[i]),
                    _mm256_loadu_ps(vb + i * kstr + j), acc);
            _mm256_storeu_ps(orow + j, acc);
        }
        for (; j < dh; ++j) {
            float acc = 0;
            for (int64_t i = 0; i < m; ++i)
                acc += scores[i] * vb[i * kstr + j];
            orow[j] = acc;
        }
    }
}

// ---- int8 helpers -----------------------------------------------------

int32_t
hsumEpi32(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

/** sum_k (a[k] - azp) * w[k] in int32 — bit-exact to the scalar loop
 *  (integer addition is associative, so the lane order is free). */
int32_t
dotI8(const int8_t *a, const int8_t *w, int64_t k, int32_t azp)
{
    __m256i acc = _mm256_setzero_si256();
    __m256i zp16 = _mm256_set1_epi16(static_cast<short>(azp));
    int64_t kk = 0;
    for (; kk + 16 <= k; kk += 16) {
        __m256i a16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + kk)));
        __m256i w16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(w + kk)));
        // (a - zp) fits i16 ([-255, 255]); each i16*i16 product fits
        // i16-pair madd's i32 lanes with no overflow.
        acc = _mm256_add_epi32(
            acc, _mm256_madd_epi16(_mm256_sub_epi16(a16, zp16), w16));
    }
    int32_t s = hsumEpi32(acc);
    for (; kk < k; ++kk)
        s += (static_cast<int32_t>(a[kk]) - azp) *
             static_cast<int32_t>(w[kk]);
    return s;
}

/** True when the vectorized requant path reproduces Requant::emit
 *  exactly (relu is a max; gelu/silu go through the scalar path). */
bool
vectorEmitOk(const Requant &rq)
{
    return rq.act == kActNone || rq.act == kActRelu;
}

/**
 * Requantize 8 int32 accumulators: the same float operation sequence
 * as Requant::emit / quantizeValue, elementwise — (i32->f32 convert,
 * mul, mul, optional bias add, relu max, IEEE div, add, clamp,
 * round-nearest-even) — so the result is bit-exact to 8 scalar emits.
 */
void
emit8(const int32_t *acc, __m256 sw, __m256 bias, bool hasBias,
      const Requant &rq, int8_t *dst)
{
    __m256 r = _mm256_mul_ps(
        _mm256_cvtepi32_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc))),
        _mm256_set1_ps(rq.xScale));
    r = _mm256_mul_ps(r, sw);
    if (hasBias)
        r = _mm256_add_ps(r, bias);
    if (rq.act == kActRelu)
        r = _mm256_max_ps(r, _mm256_setzero_ps());
    __m256 q = _mm256_add_ps(
        _mm256_div_ps(r, _mm256_set1_ps(rq.yScale)),
        _mm256_set1_ps(static_cast<float>(rq.yZp)));
    q = _mm256_max_ps(q, _mm256_set1_ps(-128.0f));
    q = _mm256_min_ps(q, _mm256_set1_ps(127.0f));
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                       _mm256_cvtps_epi32(q));
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<int8_t>(lanes[i]);
}

// ---- int8 GEMM --------------------------------------------------------

void
qmatmulAvx2K(const KernelCtx &c)
{
    const Shape &as = *c.inShapes[0];
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    int64_t m_hi = partitionEnd(c, (*c.outShape)[0]);
    int64_t k = as[1];
    int64_t n = (*c.outShape)[1];
    const int8_t *a = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *b = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);

    // Pack W into [N, K] rows — identical layout to the scalar tier.
    int8_t *wp = reinterpret_cast<int8_t *>(c.workspace);
    for (int64_t j = 0; j < n; ++j) {
        for (int64_t kk = 0; kk < k; ++kk)
            wp[j * k + kk] = tb ? b[j * k + kk] : b[kk * n + j];
    }

    bool vec_emit = vectorEmitOk(rq);
    for (int64_t i = c.begin; i < m_hi; ++i) {
        const int8_t *arow = a + i * k;
        int8_t *orow = out + i * n;
        int64_t j = 0;
        for (; j + 8 <= n && vec_emit; j += 8) {
            alignas(32) int32_t accs[8];
            for (int64_t jj = 0; jj < 8; ++jj)
                accs[jj] = dotI8(arow, wp + (j + jj) * k, k, rq.xZp);
            __m256 sw = rq.wScales
                            ? _mm256_loadu_ps(rq.wScales + j)
                            : _mm256_set1_ps(rq.wScale);
            __m256 bias = rq.bias ? _mm256_loadu_ps(rq.bias + j)
                                  : _mm256_setzero_ps();
            emit8(accs, sw, bias, rq.bias != nullptr, rq, orow + j);
        }
        for (; j < n; ++j)
            orow[j] = rq.emit(dotI8(arow, wp + j * k, k, rq.xZp), j);
    }
}

// ---- int8 conv (im2col) ----------------------------------------------

void
qconvAvx2K(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t nI = xs[0], ci = xs[1], h = xs[2], w = xs[3];
    int64_t co = ws[0], kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *wt = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);

    int64_t k = ci * kh * kw;
    int64_t cols = ho * wo;
    int8_t *col = reinterpret_cast<int8_t *>(c.workspace);
    int8_t zp8 = static_cast<int8_t>(
        std::min<int32_t>(127, std::max<int32_t>(-128, rq.xZp)));
    __m256i zp32 = _mm256_set1_epi32(rq.xZp);
    bool vec_emit = vectorEmitOk(rq);

    for (int64_t ni = c.begin; ni < partitionEnd(c, nI); ++ni) {
        kutil::im2colUnfold(x + ni * ci * h * w, col, ci, h, w, kh, kw,
                            ho, wo, stride, pad, zp8);
        int8_t *on = out + ni * co * cols;
        for (int64_t o = 0; o < co; ++o) {
            const int8_t *wrow = wt + o * k;
            int8_t *dst = on + o * cols;
            __m256 sw = _mm256_set1_ps(
                rq.wScales ? rq.wScales[o] : rq.wScale);
            __m256 bias =
                _mm256_set1_ps(rq.bias ? rq.bias[o] : 0.0f);
            int64_t j = 0;
            // 8 output pixels per iteration: each lane accumulates
            // (col - zp) * w over k with a broadcast weight.
            for (; j + 8 <= cols && vec_emit; j += 8) {
                __m256i acc = _mm256_setzero_si256();
                for (int64_t kk = 0; kk < k; ++kk) {
                    __m256i cv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
                        reinterpret_cast<const __m128i *>(
                            col + kk * cols + j)));
                    acc = _mm256_add_epi32(
                        acc,
                        _mm256_mullo_epi32(
                            _mm256_sub_epi32(cv, zp32),
                            _mm256_set1_epi32(
                                static_cast<int32_t>(wrow[kk]))));
                }
                alignas(32) int32_t accs[8];
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(accs), acc);
                emit8(accs, sw, bias, rq.bias != nullptr, rq, dst + j);
            }
            for (; j < cols; ++j) {
                int32_t acc = 0;
                for (int64_t kk = 0; kk < k; ++kk)
                    acc += (static_cast<int32_t>(col[kk * cols + j]) -
                            rq.xZp) *
                           static_cast<int32_t>(wrow[kk]);
                dst[j] = rq.emit(acc, o);
            }
        }
    }
}

// ---- int8 depthwise conv ----------------------------------------------

int8_t
qdwPixel(const int8_t *xp, const int8_t *wp, int64_t i, int64_t j,
         int64_t h, int64_t w, int64_t kh, int64_t kw, int64_t stride,
         int64_t pad, int64_t channel, const Requant &rq)
{
    int32_t acc = 0;
    for (int64_t a = 0; a < kh; ++a) {
        int64_t ih = i * stride - pad + a;
        if (ih < 0 || ih >= h)
            continue;
        for (int64_t b = 0; b < kw; ++b) {
            int64_t iw = j * stride - pad + b;
            if (iw < 0 || iw >= w)
                continue;
            acc += (static_cast<int32_t>(xp[ih * w + iw]) - rq.xZp) *
                   static_cast<int32_t>(wp[a * kw + b]);
        }
    }
    return rq.emit(acc, channel);
}

/**
 * Stride-1 interiors vectorize 8 output pixels per iteration (the
 * window rows are contiguous loads there); borders and other strides
 * run the scalar pixel. Both paths are the same integer accumulation,
 * so the kernel is bit-exact to the scalar "int8" depthwise tier.
 */
void
qdwConvAvx2K(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t ch = xs[1], h = xs[2], w = xs[3];
    int64_t kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    const int8_t *x = reinterpret_cast<const int8_t *>(c.in[0]);
    const int8_t *wt = reinterpret_cast<const int8_t *>(c.in[1]);
    int8_t *out = reinterpret_cast<int8_t *>(c.out);
    Requant rq = requantOf(c);
    __m256i zp32 = _mm256_set1_epi32(rq.xZp);
    bool vec_emit = vectorEmitOk(rq);

    int64_t hi = partitionEnd(c, xs[0] * ch);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t ni = idx / ch, ci = idx % ch;
        const int8_t *xp = x + (ni * ch + ci) * h * w;
        const int8_t *wp = wt + ci * kh * kw;
        int8_t *op = out + (ni * ch + ci) * ho * wo;
        __m256 sw = _mm256_set1_ps(
            rq.wScales ? rq.wScales[ci] : rq.wScale);
        __m256 bias = _mm256_set1_ps(rq.bias ? rq.bias[ci] : 0.0f);
        for (int64_t i = 0; i < ho; ++i) {
            int64_t j = 0;
            if (stride == 1 && vec_emit) {
                // Columns where every kw tap is in-bounds.
                int64_t jlo = pad;
                int64_t jhi = std::min(wo, w - kw + pad + 1);
                for (; j < std::min(jlo, wo); ++j)
                    op[i * wo + j] = qdwPixel(xp, wp, i, j, h, w, kh,
                                              kw, stride, pad, ci, rq);
                for (; j + 8 <= jhi; j += 8) {
                    __m256i acc = _mm256_setzero_si256();
                    for (int64_t a = 0; a < kh; ++a) {
                        int64_t ih = i - pad + a;
                        if (ih < 0 || ih >= h)
                            continue;
                        const int8_t *xrow = xp + ih * w + j - pad;
                        for (int64_t b = 0; b < kw; ++b) {
                            __m256i xv = _mm256_cvtepi8_epi32(
                                _mm_loadl_epi64(
                                    reinterpret_cast<const __m128i *>(
                                        xrow + b)));
                            acc = _mm256_add_epi32(
                                acc,
                                _mm256_mullo_epi32(
                                    _mm256_sub_epi32(xv, zp32),
                                    _mm256_set1_epi32(
                                        static_cast<int32_t>(
                                            wp[a * kw + b]))));
                        }
                    }
                    alignas(32) int32_t accs[8];
                    _mm256_store_si256(
                        reinterpret_cast<__m256i *>(accs), acc);
                    emit8(accs, sw, bias, rq.bias != nullptr, rq,
                          op + i * wo + j);
                }
            }
            for (; j < wo; ++j)
                op[i * wo + j] = qdwPixel(xp, wp, i, j, h, w, kh, kw,
                                          stride, pad, ci, rq);
        }
    }
}

int64_t
matmulRows(const KernelCtx &c)
{
    return (*c.outShape)[0];
}

} // namespace

namespace detail {

void
registerSimdAvx2Kernels()
{
    // Same partition domains and workspace declarations as the scalar
    // bases — the tier-switch contract the executor relies on.
    PartitionSpec rows{matmulRows, 8};
    PartitionSpec batch{part::outDim0, 1};
    PartitionSpec images{part::outDim0, 1};
    PartitionSpec imageChannels{part::outDim01, 1};
    registerKernel(OpKind::MatMul, "blocked@avx2", matmulAvx2K, rows,
                   kutil::blockedGemmWorkspace);
    registerKernel(OpKind::BatchMatMul, "blocked@avx2",
                   batchMatmulAvx2K, batch,
                   kutil::blockedGemmWorkspace);
    registerKernel(OpKind::Conv2d, "im2col@avx2", conv2dIm2colAvx2K,
                   images, kutil::im2colConvWorkspace);
    registerKernel(OpKind::FusedAttention, "avx2", fusedAttentionAvx2K,
                   PartitionSpec{part::outRows, 1},
                   kutil::fusedAttentionWorkspace);
    registerKernel(OpKind::QuantMatMul, "int8@avx2", qmatmulAvx2K,
                   rows, kutil::qgemmWorkspace);
    registerKernel(OpKind::QuantConv2d, "int8@avx2", qconvAvx2K,
                   images, kutil::qconvColWorkspace);
    registerKernel(OpKind::QuantDwConv2d, "int8@avx2", qdwConvAvx2K,
                   imageChannels);
}

} // namespace detail
} // namespace pe

#else // PE_NO_SIMD or non-x86: nothing to register.

namespace pe {
namespace detail {

void
registerSimdAvx2Kernels()
{
}

} // namespace detail
} // namespace pe

#endif
