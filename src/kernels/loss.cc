/**
 * @file
 * Loss kernels. CrossEntropy fuses log-softmax with NLL (the standard
 * numerically-stable formulation); its gradient op emits
 * (softmax - onehot) / N directly so the backward graph needs no
 * separate softmax node for the loss head.
 *
 * The grad kernels are independent per sample/element and partition;
 * the forward losses reduce into one scalar and stay serial.
 */

#include <cmath>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
crossEntropyK(const KernelCtx &c)
{
    const Shape &ls = *c.inShapes[0]; // [N, C]
    int64_t n = ls[0], cls = ls[1];
    double total = 0;
    for (int64_t i = 0; i < n; ++i) {
        const float *row = c.in[0] + i * cls;
        float mx = row[0];
        for (int64_t j = 1; j < cls; ++j)
            mx = std::max(mx, row[j]);
        double lse = 0;
        for (int64_t j = 0; j < cls; ++j)
            lse += std::exp(row[j] - mx);
        lse = std::log(lse) + mx;
        auto label = static_cast<int64_t>(c.in[1][i]);
        total += lse - row[label];
    }
    c.out[0] = static_cast<float>(total / static_cast<double>(n));
}

void
crossEntropyGradK(const KernelCtx &c)
{
    const Shape &ls = *c.inShapes[0];
    int64_t n = ls[0], cls = ls[1];
    float inv = 1.0f / static_cast<float>(n);
    int64_t hi = partitionEnd(c, n);
    for (int64_t i = c.begin; i < hi; ++i) {
        const float *row = c.in[0] + i * cls;
        float *out = c.out + i * cls;
        float mx = row[0];
        for (int64_t j = 1; j < cls; ++j)
            mx = std::max(mx, row[j]);
        float sum = 0;
        for (int64_t j = 0; j < cls; ++j) {
            out[j] = std::exp(row[j] - mx);
            sum += out[j];
        }
        float norm = 1.0f / sum;
        auto label = static_cast<int64_t>(c.in[1][i]);
        for (int64_t j = 0; j < cls; ++j)
            out[j] = (out[j] * norm - (j == label ? 1.0f : 0.0f)) * inv;
    }
}

void
mseK(const KernelCtx &c)
{
    int64_t n = numel(*c.inShapes[0]);
    double total = 0;
    for (int64_t i = 0; i < n; ++i) {
        double d = c.in[0][i] - c.in[1][i];
        total += d * d;
    }
    c.out[0] = static_cast<float>(total / static_cast<double>(n));
}

void
mseGradK(const KernelCtx &c)
{
    int64_t n = numel(*c.inShapes[0]);
    float inv = 2.0f / static_cast<float>(n);
    int64_t hi = partitionEnd(c, n);
    for (int64_t i = c.begin; i < hi; ++i)
        c.out[i] = inv * (c.in[0][i] - c.in[1][i]);
}

} // namespace

namespace detail {

void
registerLossKernels()
{
    registerKernel(OpKind::CrossEntropy, "", crossEntropyK);
    registerKernel(OpKind::CrossEntropyGrad, "", crossEntropyGradK,
                   {part::outRows, 1});
    registerKernel(OpKind::Mse, "", mseK);
    registerKernel(OpKind::MseGrad, "", mseGradK,
                   {part::outElems, 1024});
}

} // namespace detail
} // namespace pe
