/**
 * @file
 * Helpers shared between the scalar kernel TUs and their SIMD tier
 * counterparts (simd_avx2.cc / simd_neon.cc): GEMM operand views,
 * the int8 requantization context, activation math, and the im2col
 * unfold. A SIMD variant must agree with its scalar base on all of
 * this — packing layout, padding values, requantization rounding —
 * for the tier contract (int8 bit-exact, fp32 within tolerance) to
 * hold, so the definitions live in one place.
 */

#pragma once

#include <cmath>
#include <cstdint>

#include "core/shape.h"
#include "ir/graph.h"
#include "ir/infer.h"
#include "kernels/kernel.h"
#include "quant/quant.h"

namespace pe {
namespace kutil {

/** Blocked-GEMM panel edge; blockedWorkspace sizes the packed panel
 *  from this, and the AVX2 microkernel tiles inside it. */
constexpr int64_t kGemmBlock = 48;

inline float
attrF(const KernelCtx &c, const char *key, double dflt = 0.0)
{
    return static_cast<float>(c.node->attrs.getFloat(key, dflt));
}

inline int32_t
attrI(const KernelCtx &c, const char *key, int64_t dflt = 0)
{
    return static_cast<int32_t>(c.node->attrs.getInt(key, dflt));
}

inline float
actOf(int64_t act, float v)
{
    switch (act) {
      case kActRelu:
        return v > 0 ? v : 0.0f;
      case kActGelu: {
        constexpr float kC = 0.7978845608028654f;
        return 0.5f * v *
               (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
      }
      case kActSilu:
        return v / (1.0f + std::exp(-v));
      default:
        return v;
    }
}

/** Logical (post-transpose) view of a GEMM operand. */
struct GemmView {
    const float *data;
    int64_t rows, cols; ///< logical (post-transpose) extents
    bool trans;         ///< storage is [cols, rows]

    float
    at(int64_t r, int64_t c) const
    {
        return trans ? data[c * rows + r] : data[r * cols + c];
    }
};

inline GemmView
gemmViewOf(const float *data, const Shape &s, bool trans)
{
    if (trans)
        return {data, s[1], s[0], true};
    return {data, s[0], s[1], false};
}

/** Flattened-index stride/extent of the per-channel axis. */
struct AxisView {
    int64_t inner = 1, channels = 1;

    int64_t
    channelOf(int64_t flat) const
    {
        return (flat / inner) % channels;
    }
};

inline AxisView
axisView(const Shape &s, int64_t axis)
{
    AxisView v;
    v.channels = s[axis];
    for (size_t i = axis + 1; i < s.size(); ++i)
        v.inner *= s[i];
    return v;
}

/** Requantization context shared by the int8 GEMM/conv kernels. */
struct Requant {
    float xScale, wScale, yScale;
    int32_t xZp, yZp;
    const float *wScales = nullptr; ///< per-channel, else null
    const float *bias = nullptr;    ///< fp32, else null
    int64_t act = kActNone;

    int8_t
    emit(int32_t acc, int64_t channel) const
    {
        float sw = wScales ? wScales[channel] : wScale;
        float r = static_cast<float>(acc) * xScale * sw;
        if (bias)
            r += bias[channel];
        r = actOf(act, r);
        return quantizeValue(r, yScale, yZp);
    }
};

inline Requant
requantOf(const KernelCtx &c)
{
    Requant r;
    r.xScale = attrF(c, "xScale", 1.0);
    r.wScale = attrF(c, "wScale", 1.0);
    r.yScale = attrF(c, "yScale", 1.0);
    r.xZp = attrI(c, "xZp", 0);
    r.yZp = attrI(c, "yZp", 0);
    r.act = c.node->attrs.getInt("act", kActNone);
    bool has_bias = c.node->attrs.getInt("hasBias", 0) != 0;
    bool per_channel = c.node->attrs.getInt("perChannel", 0) != 0;
    if (has_bias)
        r.bias = c.in[2];
    if (per_channel && c.in.size() > static_cast<size_t>(2 + has_bias))
        r.wScales = c.in[2 + (has_bias ? 1 : 0)];
    return r;
}

/**
 * Unfold one NCHW image into its [ci*kh*kw, ho*wo] column matrix.
 * Out-of-bounds taps read @p padval (0.0f for fp32; the input
 * zero-point for int8, so (col - zp) vanishes exactly where fp32
 * would pad zeros). Row order is (ci, kh, kw) ascending — the
 * accumulation order every consumer relies on for bit-exactness
 * against the direct kernels.
 */
template <typename T>
inline void
im2colUnfold(const T *xn, T *col, int64_t ci, int64_t h, int64_t w,
             int64_t kh, int64_t kw, int64_t ho, int64_t wo,
             int64_t stride, int64_t pad, T padval)
{
    int64_t cols = ho * wo;
    int64_t r = 0;
    for (int64_t cc = 0; cc < ci; ++cc) {
        for (int64_t a = 0; a < kh; ++a) {
            for (int64_t b = 0; b < kw; ++b, ++r) {
                T *dst = col + r * cols;
                for (int64_t i = 0; i < ho; ++i) {
                    int64_t ih = i * stride - pad + a;
                    for (int64_t j = 0; j < wo; ++j) {
                        int64_t iw = j * stride - pad + b;
                        bool ok = ih >= 0 && ih < h && iw >= 0 &&
                                  iw < w;
                        dst[i * wo + j] =
                            ok ? xn[(cc * h + ih) * w + iw] : padval;
                    }
                }
            }
        }
    }
}

// ---- shared workspace declarations -----------------------------------
//
// A SIMD tier variant must declare EXACTLY the workspace of its scalar
// base: the memory planner sizes the arena from the variant selected
// at compile time, and the bind-time tier switch (either direction)
// reuses that placement. Sharing the WorkspaceFn bodies makes the
// equality structural.

/** One packed B panel per shard (blocked / AVX2 / NEON GEMM). */
inline WorkspaceSpec
blockedGemmWorkspace(const Graph &, const Node &)
{
    WorkspaceSpec spec;
    spec.bytesPerShard = kGemmBlock * kGemmBlock * 4;
    return spec;
}

/** One image's fp32 column matrix: ci*kh*kw rows by ho*wo columns. */
inline WorkspaceSpec
im2colConvWorkspace(const Graph &g, const Node &n)
{
    const Shape &w = g.node(n.inputs[1]).shape;
    int64_t ho = n.shape[2], wo = n.shape[3];
    WorkspaceSpec spec;
    spec.bytesPerShard = w[1] * w[2] * w[3] * ho * wo * 4;
    return spec;
}

/** Packed i8 weight panel of the int8 GEMM ([N, K] rows). */
inline WorkspaceSpec
qgemmWorkspace(const Graph &g, const Node &n)
{
    const Shape &b = g.node(n.inputs[1]).shape;
    WorkspaceSpec spec;
    spec.bytesPerShard = numel(b);
    return spec;
}

/** One fp32 attention-score row ([M] = K's row count) per shard: the
 *  QK product, mask add, and softmax all happen in this buffer, so the
 *  five-op subgraph's four arena intermediates become zero. */
inline WorkspaceSpec
fusedAttentionWorkspace(const Graph &g, const Node &n)
{
    const Shape &k = g.node(n.inputs[1]).shape;
    WorkspaceSpec spec;
    spec.bytesPerShard = k[k.size() - 2] * 4;
    return spec;
}

/** Per-image i8 im2col column buffer of the int8 conv. */
inline WorkspaceSpec
qconvColWorkspace(const Graph &g, const Node &n)
{
    const Shape &x = g.node(n.inputs[0]).shape;
    const Shape &w = g.node(n.inputs[1]).shape;
    int64_t ho = convOutDim(x[2], w[2], n.attrs.getInt("stride", 1),
                            n.attrs.getInt("pad", 0));
    int64_t wo = convOutDim(x[3], w[3], n.attrs.getInt("stride", 1),
                            n.attrs.getInt("pad", 0));
    WorkspaceSpec spec;
    spec.bytesPerShard = x[1] * w[2] * w[3] * ho * wo;
    return spec;
}

} // namespace kutil
} // namespace pe
