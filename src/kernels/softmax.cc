/**
 * @file
 * Softmax over the last axis, with its backward kernel. Both are
 * independent per row and partition over rows.
 */

#include <cmath>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
softmaxK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t d = xs.back();
    int64_t rows = partitionEnd(c, numel(xs) / d);
    for (int64_t r = c.begin; r < rows; ++r) {
        const float *x = c.in[0] + r * d;
        float *y = c.out + r * d;
        float mx = x[0];
        for (int64_t i = 1; i < d; ++i)
            mx = std::max(mx, x[i]);
        float sum = 0;
        for (int64_t i = 0; i < d; ++i) {
            y[i] = std::exp(x[i] - mx);
            sum += y[i];
        }
        float inv = 1.0f / sum;
        for (int64_t i = 0; i < d; ++i)
            y[i] *= inv;
    }
}

/** dx = y * (dy - sum(dy * y)). Inputs: y (forward output), dy. */
void
softmaxGradK(const KernelCtx &c)
{
    const Shape &ys = *c.inShapes[0];
    int64_t d = ys.back();
    int64_t rows = partitionEnd(c, numel(ys) / d);
    for (int64_t r = c.begin; r < rows; ++r) {
        const float *y = c.in[0] + r * d;
        const float *dy = c.in[1] + r * d;
        float *dx = c.out + r * d;
        float dot = 0;
        for (int64_t i = 0; i < d; ++i)
            dot += y[i] * dy[i];
        for (int64_t i = 0; i < d; ++i)
            dx[i] = y[i] * (dy[i] - dot);
    }
}

} // namespace

namespace detail {

void
registerSoftmaxKernels()
{
    PartitionSpec rows{part::outRows, 1};
    registerKernel(OpKind::Softmax, "", softmaxK, rows);
    registerKernel(OpKind::SoftmaxGrad, "", softmaxGradK, rows);
}

} // namespace detail
} // namespace pe
