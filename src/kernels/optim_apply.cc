/**
 * @file
 * In-place optimizer-application kernels. These are ordinary catalogue
 * ops, so the operator-reordering pass can schedule each parameter's
 * update immediately after its gradient is produced and the gradient
 * buffer can be recycled (paper Section 3.2, "Operator Reordering and
 * In-place Update").
 *
 * Conventions:
 *  - input 0 is the parameter; the node's output aliases it.
 *  - optimizer state tensors (velocity, Adam moments) are persistent
 *    Param inputs that the kernel updates in place. They are never
 *    arena-allocated, so the const_cast below mutates only storage the
 *    ParamStore owns.
 *  - "offset" selects a contiguous sub-range of the parameter for
 *    sub-layer (channel-sparse) updates; the gradient's numel gives
 *    the range length.
 *  - every kernel is elementwise over the gradient, so all partition
 *    over the gradient range: viewOf() narrows param/grad/state
 *    pointers to the shard's [begin, end) slice.
 */

#include <cmath>

#include "kernels/kernel.h"

namespace pe {
namespace {

struct ApplyView {
    float *param;
    const float *grad;
    int64_t n; ///< elements to update
};

ApplyView
viewOf(const KernelCtx &c)
{
    int64_t offset = c.node->attrs.getInt("offset", 0);
    int64_t hi = partitionEnd(c, numel(*c.inShapes[1]));
    return {const_cast<float *>(c.in[0]) + offset + c.begin,
            c.in[1] + c.begin, hi - c.begin};
}

void
applySgdK(const KernelCtx &c)
{
    ApplyView v = viewOf(c);
    auto lr = static_cast<float>(c.node->attrs.getFloat("lr", 0.01));
    auto wd = static_cast<float>(c.node->attrs.getFloat("wd", 0.0));
    for (int64_t i = 0; i < v.n; ++i)
        v.param[i] -= lr * (v.grad[i] + wd * v.param[i]);
}

void
applyMomentumK(const KernelCtx &c)
{
    ApplyView v = viewOf(c);
    auto lr = static_cast<float>(c.node->attrs.getFloat("lr", 0.01));
    auto mom = static_cast<float>(c.node->attrs.getFloat("momentum", 0.9));
    int64_t offset = c.node->attrs.getInt("offset", 0);
    float *vel = const_cast<float *>(c.in[2]) + offset + c.begin;
    for (int64_t i = 0; i < v.n; ++i) {
        vel[i] = mom * vel[i] + v.grad[i];
        v.param[i] -= lr * vel[i];
    }
}

void
applyAdamK(const KernelCtx &c)
{
    ApplyView v = viewOf(c);
    auto lr = static_cast<float>(c.node->attrs.getFloat("lr", 1e-3));
    auto b1 = static_cast<float>(c.node->attrs.getFloat("b1", 0.9));
    auto b2 = static_cast<float>(c.node->attrs.getFloat("b2", 0.999));
    auto eps = static_cast<float>(c.node->attrs.getFloat("eps", 1e-8));
    int64_t offset = c.node->attrs.getInt("offset", 0);
    float *m = const_cast<float *>(c.in[2]) + offset + c.begin;
    float *vv = const_cast<float *>(c.in[3]) + offset + c.begin;
    auto t = static_cast<float>(c.step);
    float bc1 = 1.0f - std::pow(b1, t);
    float bc2 = 1.0f - std::pow(b2, t);
    for (int64_t i = 0; i < v.n; ++i) {
        m[i] = b1 * m[i] + (1.0f - b1) * v.grad[i];
        vv[i] = b2 * vv[i] + (1.0f - b2) * v.grad[i] * v.grad[i];
        float mhat = m[i] / bc1;
        float vhat = vv[i] / bc2;
        v.param[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
}

void
applyLionK(const KernelCtx &c)
{
    ApplyView v = viewOf(c);
    auto lr = static_cast<float>(c.node->attrs.getFloat("lr", 1e-4));
    auto b1 = static_cast<float>(c.node->attrs.getFloat("b1", 0.9));
    auto b2 = static_cast<float>(c.node->attrs.getFloat("b2", 0.99));
    auto wd = static_cast<float>(c.node->attrs.getFloat("wd", 0.0));
    int64_t offset = c.node->attrs.getInt("offset", 0);
    float *m = const_cast<float *>(c.in[2]) + offset + c.begin;
    for (int64_t i = 0; i < v.n; ++i) {
        float u = b1 * m[i] + (1.0f - b1) * v.grad[i];
        float sign = u > 0 ? 1.0f : (u < 0 ? -1.0f : 0.0f);
        v.param[i] -= lr * (sign + wd * v.param[i]);
        m[i] = b2 * m[i] + (1.0f - b2) * v.grad[i];
    }
}

void
accumGradK(const KernelCtx &c)
{
    ApplyView v = viewOf(c);
    for (int64_t i = 0; i < v.n; ++i)
        v.param[i] += v.grad[i];
}

} // namespace

namespace detail {

void
registerOptimApplyKernels()
{
    PartitionSpec grad{part::in1Elems, 1024};
    registerKernel(OpKind::ApplySgd, "", applySgdK, grad);
    registerKernel(OpKind::ApplyMomentum, "", applyMomentumK, grad);
    registerKernel(OpKind::ApplyAdam, "", applyAdamK, grad);
    registerKernel(OpKind::ApplyLion, "", applyLionK, grad);
    registerKernel(OpKind::AccumGrad, "", accumGradK, grad);
}

} // namespace detail
} // namespace pe
