/**
 * @file
 * Data-movement kernels: reshape (copy), permute, slice, pad,
 * broadcast.
 */

#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
reshapeK(const KernelCtx &c)
{
    std::memcpy(c.out, c.in[0], sizeof(float) * numel(*c.outShape));
}

void
permuteK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    auto perm = c.node->attrs.getInts("perm");
    auto xstrides = rowMajorStrides(xs);
    auto ostrides = rowMajorStrides(*c.outShape);
    size_t rank = xs.size();
    int64_t n = numel(xs);
    for (int64_t i = 0; i < n; ++i) {
        // Decompose output index, map to input coordinates.
        int64_t rem = i, xi = 0;
        for (size_t d = 0; d < rank; ++d) {
            int64_t coord = rem / ostrides[d];
            rem -= coord * ostrides[d];
            xi += coord * xstrides[perm[d]];
        }
        c.out[i] = c.in[0][xi];
    }
}

void
sliceK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    int64_t axis = c.node->attrs.getInt("axis");
    int64_t begin = c.node->attrs.getInt("begin");
    int64_t len = c.node->attrs.getInt("end") - begin;
    int64_t outer = 1, inner = 1;
    for (int64_t d = 0; d < axis; ++d)
        outer *= xs[d];
    for (size_t d = axis + 1; d < xs.size(); ++d)
        inner *= xs[d];
    for (int64_t o = 0; o < outer; ++o) {
        const float *src = c.in[0] + (o * xs[axis] + begin) * inner;
        float *dst = c.out + o * len * inner;
        std::memcpy(dst, src, sizeof(float) * len * inner);
    }
}

void
padK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &os = *c.outShape;
    int64_t axis = c.node->attrs.getInt("axis");
    int64_t before = c.node->attrs.getInt("before", 0);
    int64_t outer = 1, inner = 1;
    for (int64_t d = 0; d < axis; ++d)
        outer *= xs[d];
    for (size_t d = axis + 1; d < xs.size(); ++d)
        inner *= xs[d];
    std::memset(c.out, 0, sizeof(float) * numel(os));
    for (int64_t o = 0; o < outer; ++o) {
        const float *src = c.in[0] + o * xs[axis] * inner;
        float *dst = c.out + (o * os[axis] + before) * inner;
        std::memcpy(dst, src, sizeof(float) * xs[axis] * inner);
    }
}

void
broadcastToK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &os = *c.outShape;
    size_t rank = os.size();
    std::vector<int64_t> sx(rank, 0);
    auto xr = rowMajorStrides(xs);
    size_t off = rank - xs.size();
    for (size_t i = 0; i < xs.size(); ++i)
        sx[off + i] = xs[i] == 1 ? 0 : xr[i];
    auto so = rowMajorStrides(os);
    int64_t n = numel(os);
    for (int64_t i = 0; i < n; ++i) {
        int64_t rem = i, xi = 0;
        for (size_t d = 0; d < rank; ++d) {
            int64_t coord = rem / so[d];
            rem -= coord * so[d];
            xi += coord * sx[d];
        }
        c.out[i] = c.in[0][xi];
    }
}

/**
 * KV-cache row write. The output is a Storage::Cache value: it
 * persists across runs of one session, so this kernel touches ONLY
 * the rows [pos, pos+S) it was asked to write — no memset of the
 * rest, that would destroy the earlier tokens' entries. Out-of-range
 * positions are clamped row-by-row instead of written, so a bogus
 * runtime pos can never escape the planned cache extent.
 */
void
cacheWriteK(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &os = *c.outShape;
    const float *pos = c.in[1];
    const Shape &ps = *c.inShapes[1];
    if (xs.size() == 2) {
        int64_t s = xs[0], d = xs[1], max_seq = os[0];
        int64_t p = static_cast<int64_t>(pos[0]);
        for (int64_t i = 0; i < s; ++i) {
            int64_t row = p + i;
            if (row < 0 || row >= max_seq)
                continue;
            std::memcpy(c.out + row * d, c.in[0] + i * d,
                        sizeof(float) * d);
        }
        return;
    }
    int64_t b = xs[0], s = xs[1], d = xs[2], max_seq = os[1];
    bool per_slot = numel(ps) == b;
    for (int64_t bi = 0; bi < b; ++bi) {
        int64_t p = static_cast<int64_t>(pos[per_slot ? bi : 0]);
        for (int64_t i = 0; i < s; ++i) {
            int64_t row = p + i;
            if (row < 0 || row >= max_seq)
                continue;
            std::memcpy(c.out + (bi * max_seq + row) * d,
                        c.in[0] + (bi * s + i) * d, sizeof(float) * d);
        }
    }
}

} // namespace

namespace detail {

void
registerShapeOpKernels()
{
    registerKernel(OpKind::Reshape, "", reshapeK);
    registerKernel(OpKind::Permute, "", permuteK);
    registerKernel(OpKind::Slice, "", sliceK);
    registerKernel(OpKind::Pad, "", padK);
    registerKernel(OpKind::BroadcastTo, "", broadcastToK);
    // Unsplittable: the write set depends on a runtime input (pos),
    // which the bind-time partition planner cannot see.
    registerKernel(OpKind::CacheWrite, "", cacheWriteK);
}

} // namespace detail
} // namespace pe
