/**
 * @file
 * NCHW convolution kernels: naive direct (default), im2col+GEMM
 * ("im2col"), their input/weight backward counterparts, and depthwise
 * variants. Conv2dBwdWeight honors the "limitCo" attribute so
 * sub-layer (channel-sparse) backpropagation computes gradients for
 * only the first k output channels (paper Section 2.6).
 *
 * Partitioning: forward kernels split over the flattened (image,
 * output-channel) pairs; the input backward over images (each image's
 * dx is scattered to independently); the weight backward over output
 * channels (each channel's dw rows accumulate over images
 * independently). "im2col" splits over images — every shard unfolds
 * into its own workspace column buffer (one image's column matrix),
 * so the kernel shards like any other instead of being serialized by
 * scratch.
 */

#include <cstring>

#include "kernels/kernel.h"
#include "kernels/kernel_util.h"

namespace pe {
namespace {

struct ConvDims {
    int64_t n, ci, h, w;      // input
    int64_t co, kh, kw;       // weight
    int64_t ho, wo;           // output
    int64_t stride, pad;
};

ConvDims
dimsOf(const Shape &x, const Shape &w, const Shape &y, int64_t stride,
       int64_t pad)
{
    return {x[0], x[1], x[2], x[3], w[0], w[2], w[3], y[2], y[3],
            stride, pad};
}

void
conv2dNaive(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    ConvDims d = dimsOf(xs, ws, *c.outShape,
                        c.node->attrs.getInt("stride", 1),
                        c.node->attrs.getInt("pad", 0));
    const float *x = c.in[0], *w = c.in[1];
    int64_t hi = partitionEnd(c, d.n * d.co);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t n = idx / d.co, co = idx % d.co;
        for (int64_t ho = 0; ho < d.ho; ++ho) {
            for (int64_t wo = 0; wo < d.wo; ++wo) {
                float acc = 0;
                for (int64_t ci = 0; ci < d.ci; ++ci) {
                    for (int64_t kh = 0; kh < d.kh; ++kh) {
                        int64_t ih = ho * d.stride - d.pad + kh;
                        if (ih < 0 || ih >= d.h)
                            continue;
                        for (int64_t kw = 0; kw < d.kw; ++kw) {
                            int64_t iw = wo * d.stride - d.pad + kw;
                            if (iw < 0 || iw >= d.w)
                                continue;
                            acc += x[((n * d.ci + ci) * d.h + ih) *
                                         d.w + iw] *
                                   w[((co * d.ci + ci) * d.kh + kh) *
                                         d.kw + kw];
                        }
                    }
                }
                c.out[((n * d.co + co) * d.ho + ho) * d.wo + wo] = acc;
            }
        }
    }
}

/** im2col + GEMM; the workspace holds one image's column matrix. */
void
conv2dIm2col(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    ConvDims d = dimsOf(xs, ws, *c.outShape,
                        c.node->attrs.getInt("stride", 1),
                        c.node->attrs.getInt("pad", 0));
    const float *x = c.in[0], *w = c.in[1];
    int64_t k = d.ci * d.kh * d.kw;
    int64_t cols = d.ho * d.wo;
    float *col = c.workspace;
    for (int64_t n = c.begin; n < partitionEnd(c, d.n); ++n) {
        const float *xn = x + n * d.ci * d.h * d.w;
        kutil::im2colUnfold(xn, col, d.ci, d.h, d.w, d.kh, d.kw, d.ho,
                            d.wo, d.stride, d.pad, 0.0f);
        // GEMM: out[co, cols] = w[co, k] x col[k, cols].
        float *out = c.out + n * d.co * cols;
        for (int64_t co = 0; co < d.co; ++co) {
            float *dst = out + co * cols;
            std::memset(dst, 0, sizeof(float) * cols);
            const float *wrow = w + co * k;
            for (int64_t kk = 0; kk < k; ++kk) {
                float wv = wrow[kk];
                const float *src = col + kk * cols;
                for (int64_t j = 0; j < cols; ++j)
                    dst[j] += wv * src[j];
            }
        }
    }
}

void
conv2dBwdInput(const KernelCtx &c)
{
    const Shape &ws = *c.inShapes[0];
    const Shape &dys = *c.inShapes[1];
    const Shape &xs = *c.outShape;
    ConvDims d = dimsOf(xs, ws, dys, c.node->attrs.getInt("stride", 1),
                        c.node->attrs.getInt("pad", 0));
    const float *w = c.in[0], *dy = c.in[1];
    int64_t lo = c.begin, hi = partitionEnd(c, d.n);
    int64_t image = d.ci * d.h * d.w;
    std::memset(c.out + lo * image, 0, sizeof(float) * (hi - lo) * image);
    for (int64_t n = lo; n < hi; ++n) {
        for (int64_t co = 0; co < d.co; ++co) {
            for (int64_t ho = 0; ho < d.ho; ++ho) {
                for (int64_t wo = 0; wo < d.wo; ++wo) {
                    float g = dy[((n * d.co + co) * d.ho + ho) * d.wo + wo];
                    if (g == 0.0f)
                        continue;
                    for (int64_t kh = 0; kh < d.kh; ++kh) {
                        int64_t ih = ho * d.stride - d.pad + kh;
                        if (ih < 0 || ih >= d.h)
                            continue;
                        for (int64_t kw = 0; kw < d.kw; ++kw) {
                            int64_t iw = wo * d.stride - d.pad + kw;
                            if (iw < 0 || iw >= d.w)
                                continue;
                            for (int64_t ci = 0; ci < d.ci; ++ci) {
                                c.out[((n * d.ci + ci) * d.h + ih) * d.w +
                                      iw] +=
                                    g * w[((co * d.ci + ci) * d.kh + kh) *
                                              d.kw + kw];
                            }
                        }
                    }
                }
            }
        }
    }
}

void
conv2dBwdWeight(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &dys = *c.inShapes[1];
    Shape ws = c.node->attrs.getInts("wshape");
    ConvDims d = dimsOf(xs, ws, dys, c.node->attrs.getInt("stride", 1),
                        c.node->attrs.getInt("pad", 0));
    int64_t limit = (*c.outShape)[0]; // <= Co under "limitCo"
    const float *x = c.in[0], *dy = c.in[1];
    int64_t lo = c.begin, hi = partitionEnd(c, limit);
    int64_t wrow = d.ci * d.kh * d.kw;
    std::memset(c.out + lo * wrow, 0, sizeof(float) * (hi - lo) * wrow);
    // co outermost so shards own disjoint dw rows; per (co, ci, kh,
    // kw) entry the accumulation still runs in ascending-n order, so
    // results match the unpartitioned nest bit for bit.
    for (int64_t co = lo; co < hi; ++co) {
        for (int64_t n = 0; n < d.n; ++n) {
            for (int64_t ho = 0; ho < d.ho; ++ho) {
                for (int64_t wo = 0; wo < d.wo; ++wo) {
                    float g = dy[((n * d.co + co) * d.ho + ho) * d.wo + wo];
                    if (g == 0.0f)
                        continue;
                    for (int64_t ci = 0; ci < d.ci; ++ci) {
                        for (int64_t kh = 0; kh < d.kh; ++kh) {
                            int64_t ih = ho * d.stride - d.pad + kh;
                            if (ih < 0 || ih >= d.h)
                                continue;
                            for (int64_t kw = 0; kw < d.kw; ++kw) {
                                int64_t iw = wo * d.stride - d.pad + kw;
                                if (iw < 0 || iw >= d.w)
                                    continue;
                                c.out[((co * d.ci + ci) * d.kh + kh) *
                                          d.kw + kw] +=
                                    g * x[((n * d.ci + ci) * d.h + ih) *
                                              d.w + iw];
                            }
                        }
                    }
                }
            }
        }
    }
}

void
dwConv2d(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t ch = xs[1], h = xs[2], w = xs[3];
    int64_t kh = ws[2], kw = ws[3];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    int64_t hi = partitionEnd(c, xs[0] * ch);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t ni = idx / ch, ci = idx % ch;
        const float *xp = c.in[0] + (ni * ch + ci) * h * w;
        const float *wp = c.in[1] + ci * kh * kw;
        float *op = c.out + (ni * ch + ci) * ho * wo;
        for (int64_t i = 0; i < ho; ++i) {
            for (int64_t j = 0; j < wo; ++j) {
                float acc = 0;
                for (int64_t a = 0; a < kh; ++a) {
                    int64_t ih = i * stride - pad + a;
                    if (ih < 0 || ih >= h)
                        continue;
                    for (int64_t b = 0; b < kw; ++b) {
                        int64_t iw = j * stride - pad + b;
                        if (iw < 0 || iw >= w)
                            continue;
                        acc += xp[ih * w + iw] * wp[a * kw + b];
                    }
                }
                op[i * wo + j] = acc;
            }
        }
    }
}

void
dwConv2dBwdInput(const KernelCtx &c)
{
    const Shape &ws = *c.inShapes[0];
    const Shape &dys = *c.inShapes[1];
    const Shape &xs = *c.outShape;
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t ch = xs[1], h = xs[2], w = xs[3];
    int64_t kh = ws[2], kw = ws[3];
    int64_t ho = dys[2], wo = dys[3];
    int64_t lo = c.begin, hi = partitionEnd(c, xs[0] * ch);
    std::memset(c.out + lo * h * w, 0, sizeof(float) * (hi - lo) * h * w);
    for (int64_t idx = lo; idx < hi; ++idx) {
        int64_t ni = idx / ch, ci = idx % ch;
        const float *wp = c.in[0] + ci * kh * kw;
        const float *gp = c.in[1] + (ni * ch + ci) * ho * wo;
        float *dp = c.out + (ni * ch + ci) * h * w;
        for (int64_t i = 0; i < ho; ++i) {
            for (int64_t j = 0; j < wo; ++j) {
                float g = gp[i * wo + j];
                if (g == 0.0f)
                    continue;
                for (int64_t a = 0; a < kh; ++a) {
                    int64_t ih = i * stride - pad + a;
                    if (ih < 0 || ih >= h)
                        continue;
                    for (int64_t b = 0; b < kw; ++b) {
                        int64_t iw = j * stride - pad + b;
                        if (iw < 0 || iw >= w)
                            continue;
                        dp[ih * w + iw] += g * wp[a * kw + b];
                    }
                }
            }
        }
    }
}

void
dwConv2dBwdWeight(const KernelCtx &c)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &dys = *c.inShapes[1];
    int64_t stride = c.node->attrs.getInt("stride", 1);
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t n = xs[0], ch = xs[1], h = xs[2], w = xs[3];
    const Shape &os = *c.outShape;
    int64_t kh = os[2], kw = os[3];
    int64_t ho = dys[2], wo = dys[3];
    int64_t limit = os[0];
    int64_t lo = c.begin, hi = partitionEnd(c, limit);
    std::memset(c.out + lo * kh * kw, 0,
                sizeof(float) * (hi - lo) * kh * kw);
    // ci outermost so shards own disjoint dw slices; ascending-ni
    // accumulation per element is preserved.
    for (int64_t ci = lo; ci < hi; ++ci) {
        float *dw = c.out + ci * kh * kw;
        for (int64_t ni = 0; ni < n; ++ni) {
            const float *xp = c.in[0] + (ni * ch + ci) * h * w;
            const float *gp = c.in[1] + (ni * ch + ci) * ho * wo;
            for (int64_t i = 0; i < ho; ++i) {
                for (int64_t j = 0; j < wo; ++j) {
                    float g = gp[i * wo + j];
                    if (g == 0.0f)
                        continue;
                    for (int64_t a = 0; a < kh; ++a) {
                        int64_t ih = i * stride - pad + a;
                        if (ih < 0 || ih >= h)
                            continue;
                        for (int64_t b = 0; b < kw; ++b) {
                            int64_t iw = j * stride - pad + b;
                            if (iw < 0 || iw >= w)
                                continue;
                            dw[a * kw + b] += g * xp[ih * w + iw];
                        }
                    }
                }
            }
        }
    }
}

/** One image's column matrix (kernel_util.h — shared with the SIMD
 *  tier so both declare identical bytes). */
constexpr auto im2colWorkspace = kutil::im2colConvWorkspace;

} // namespace

namespace detail {

void
registerConvKernels()
{
    PartitionSpec images{part::outDim01, 1};
    PartitionSpec dxImages{part::outDim0, 1};
    PartitionSpec dwChannels{part::outDim0, 1};
    registerKernel(OpKind::Conv2d, "", conv2dNaive, images);
    registerKernel(OpKind::Conv2d, "im2col", conv2dIm2col, dxImages,
                   im2colWorkspace);
    registerKernel(OpKind::Conv2dBwdInput, "", conv2dBwdInput, dxImages);
    registerKernel(OpKind::Conv2dBwdWeight, "", conv2dBwdWeight,
                   dwChannels);
    registerKernel(OpKind::DwConv2d, "", dwConv2d, images);
    registerKernel(OpKind::DwConv2dBwdInput, "", dwConv2dBwdInput,
                   images);
    registerKernel(OpKind::DwConv2dBwdWeight, "", dwConv2dBwdWeight,
                   dwChannels);
}

} // namespace detail
} // namespace pe
