/**
 * @file
 * GEMM kernels: a naive triple loop (default) and a cache-blocked
 * variant ("blocked") the backend-switching pass selects on CPU-class
 * devices. Transpose flags are handled without materializing
 * transposed copies, which is how the backward graph reuses the
 * forward MatMul primitive (paper Fig. 3: dW = G * X^T).
 *
 * Partitioning: MatMul splits over output rows, BatchMatMul over the
 * batch — each shard writes a disjoint slab of the output. The
 * blocked variant declares a per-shard workspace holding one packed
 * B panel (kBlock x kBlock), so strided/transposed B tiles are read
 * once and then streamed contiguously; packing copies values without
 * reordering the accumulation, so results stay bit-identical to the
 * unpacked loop.
 */

#include <cstring>

#include "kernels/kernel.h"
#include "kernels/kernel_util.h"

namespace pe {
namespace {

constexpr int64_t kBlock = kutil::kGemmBlock;

using kutil::GemmView;

/** Rows [r0, r1) of a x b into out. @p ws unused (no workspace). */
void
gemmNaive(const GemmView &a, const GemmView &b, float *out, int64_t r0,
          int64_t r1, float *ws)
{
    (void)ws;
    for (int64_t i = r0; i < r1; ++i) {
        for (int64_t j = 0; j < b.cols; ++j) {
            float acc = 0;
            for (int64_t k = 0; k < a.cols; ++k)
                acc += a.at(i, k) * b.at(k, j);
            out[i * b.cols + j] = acc;
        }
    }
}

/**
 * Blocked GEMM with k-innermost accumulation into the output tile.
 * @p ws holds the packed B panel (kBlock * kBlock floats).
 */
void
gemmBlocked(const GemmView &a, const GemmView &b, float *out, int64_t r0,
            int64_t r1, float *ws)
{
    int64_t n = b.cols, kk = a.cols;
    std::memset(out + r0 * n, 0, sizeof(float) * (r1 - r0) * n);
    for (int64_t k0 = 0; k0 < kk; k0 += kBlock) {
        int64_t k1 = std::min(k0 + kBlock, kk);
        for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
            int64_t j1 = std::min(j0 + kBlock, n);
            // Pack B[k0:k1, j0:j1] once per panel; the packed copy is
            // value-identical, so accumulation below is bit-identical
            // to reading B directly.
            int64_t jw = j1 - j0;
            for (int64_t k = k0; k < k1; ++k) {
                float *dst = ws + (k - k0) * jw;
                for (int64_t j = j0; j < j1; ++j)
                    dst[j - j0] = b.at(k, j);
            }
            for (int64_t i0 = r0; i0 < r1; i0 += kBlock) {
                int64_t i1 = std::min(i0 + kBlock, r1);
                for (int64_t i = i0; i < i1; ++i) {
                    float *orow = out + i * n + j0;
                    for (int64_t k = k0; k < k1; ++k) {
                        float av = a.at(i, k);
                        const float *brow = ws + (k - k0) * jw;
                        for (int64_t j = 0; j < jw; ++j)
                            orow[j] += av * brow[j];
                    }
                }
            }
        }
    }
}

constexpr auto viewOf = kutil::gemmViewOf;

template <void (*Gemm)(const GemmView &, const GemmView &, float *,
                       int64_t, int64_t, float *)>
void
matmulK(const KernelCtx &c)
{
    bool ta = c.node->attrs.getInt("transA", 0) != 0;
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    GemmView a = viewOf(c.in[0], *c.inShapes[0], ta);
    GemmView b = viewOf(c.in[1], *c.inShapes[1], tb);
    Gemm(a, b, c.out, c.begin, partitionEnd(c, a.rows), c.workspace);
}

template <void (*Gemm)(const GemmView &, const GemmView &, float *,
                       int64_t, int64_t, float *)>
void
batchMatmulK(const KernelCtx &c)
{
    bool ta = c.node->attrs.getInt("transA", 0) != 0;
    bool tb = c.node->attrs.getInt("transB", 0) != 0;
    const Shape &as = *c.inShapes[0];
    const Shape &bs = *c.inShapes[1];
    int64_t batch = as[0];
    int64_t a_stride = as[1] * as[2];
    int64_t b_stride = bs[1] * bs[2];
    int64_t o_stride = (*c.outShape)[1] * (*c.outShape)[2];
    for (int64_t n = c.begin; n < partitionEnd(c, batch); ++n) {
        GemmView a = viewOf(c.in[0] + n * a_stride, {as[1], as[2]}, ta);
        GemmView b = viewOf(c.in[1] + n * b_stride, {bs[1], bs[2]}, tb);
        Gemm(a, b, c.out + n * o_stride, 0, a.rows, c.workspace);
    }
}

/** MatMul splits over logical output rows, not outShape[0] directly —
 *  they coincide ([M, N] output), but spell it via the shared helper. */
int64_t
matmulRows(const KernelCtx &c)
{
    return (*c.outShape)[0];
}

/** One packed B panel per shard (kernel_util.h — shared with the
 *  SIMD tier so both declare identical bytes). */
constexpr auto blockedWorkspace = kutil::blockedGemmWorkspace;

} // namespace

namespace detail {

void
registerMatmulKernels()
{
    PartitionSpec rows{matmulRows, 8};
    PartitionSpec batch{part::outDim0, 1};
    registerKernel(OpKind::MatMul, "", matmulK<gemmNaive>, rows);
    registerKernel(OpKind::MatMul, "blocked", matmulK<gemmBlocked>, rows,
                   blockedWorkspace);
    registerKernel(OpKind::BatchMatMul, "", batchMatmulK<gemmNaive>,
                   batch);
    registerKernel(OpKind::BatchMatMul, "blocked",
                   batchMatmulK<gemmBlocked>, batch, blockedWorkspace);
}

} // namespace detail
} // namespace pe
