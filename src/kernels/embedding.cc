/**
 * @file
 * Embedding lookup and its scatter-add gradient. Token ids are
 * integer-valued floats (see core/tensor.h).
 */

#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
embeddingK(const KernelCtx &c)
{
    const Shape &ts = *c.inShapes[0]; // [V, D]
    const Shape &ids = *c.inShapes[1];
    int64_t d = ts[1];
    int64_t n = numel(ids);
    for (int64_t i = 0; i < n; ++i) {
        auto id = static_cast<int64_t>(c.in[1][i]);
        std::memcpy(c.out + i * d, c.in[0] + id * d, sizeof(float) * d);
    }
}

void
embeddingGradK(const KernelCtx &c)
{
    const Shape &ids = *c.inShapes[0];
    const Shape &dys = *c.inShapes[1];
    int64_t d = dys.back();
    int64_t n = numel(ids);
    std::memset(c.out, 0, sizeof(float) * numel(*c.outShape));
    for (int64_t i = 0; i < n; ++i) {
        auto id = static_cast<int64_t>(c.in[0][i]);
        const float *g = c.in[1] + i * d;
        float *dst = c.out + id * d;
        for (int64_t j = 0; j < d; ++j)
            dst[j] += g[j];
    }
}

} // namespace

namespace detail {

void
registerEmbeddingKernels()
{
    registerKernel(OpKind::Embedding, "", embeddingK);
    registerKernel(OpKind::EmbeddingGrad, "", embeddingGradK);
}

} // namespace detail
} // namespace pe
