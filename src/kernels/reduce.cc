/**
 * @file
 * Reduction kernels (sum / mean over an axis set).
 */

#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
reduce(const KernelCtx &c, bool mean)
{
    const Shape &xs = *c.inShapes[0];
    auto axes = c.node->attrs.getInts("axes");
    std::vector<bool> reduced(xs.size(), false);
    int64_t reduce_count = 1;
    for (int64_t a : axes) {
        reduced[a] = true;
        reduce_count *= xs[a];
    }
    int64_t out_n = numel(*c.outShape);
    std::memset(c.out, 0, sizeof(float) * out_n);

    // Map each input element to its output slot.
    auto xstrides = rowMajorStrides(xs);
    std::vector<int64_t> ostride(xs.size(), 0);
    int64_t acc = 1;
    for (int i = static_cast<int>(xs.size()) - 1; i >= 0; --i) {
        if (!reduced[i]) {
            ostride[i] = acc;
            acc *= xs[i];
        }
    }
    int64_t n = numel(xs);
    for (int64_t i = 0; i < n; ++i) {
        int64_t rem = i, oi = 0;
        for (size_t d = 0; d < xs.size(); ++d) {
            int64_t coord = rem / xstrides[d];
            rem -= coord * xstrides[d];
            oi += coord * ostride[d];
        }
        c.out[oi] += c.in[0][i];
    }
    if (mean) {
        float inv = 1.0f / static_cast<float>(reduce_count);
        for (int64_t i = 0; i < out_n; ++i)
            c.out[i] *= inv;
    }
}

void
reduceSumK(const KernelCtx &c)
{
    reduce(c, false);
}

void
reduceMeanK(const KernelCtx &c)
{
    reduce(c, true);
}

} // namespace

namespace detail {

void
registerReduceKernels()
{
    registerKernel(OpKind::ReduceSum, "", reduceSumK);
    registerKernel(OpKind::ReduceMean, "", reduceMeanK);
}

} // namespace detail
} // namespace pe
