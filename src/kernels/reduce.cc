/**
 * @file
 * Reduction kernels (sum / mean over an axis set).
 *
 * Written in gather form: each output slot walks its reduced
 * subspace in lexicographic order — the same per-slot accumulation
 * order as the older scatter loop (input indices hit a slot in
 * ascending order either way), so results are bit-identical, and
 * slots are independent, which lets the kernel partition over the
 * flattened output.
 */

#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

void
reduce(const KernelCtx &c, bool mean)
{
    const Shape &xs = *c.inShapes[0];
    auto axes = c.node->attrs.getInts("axes");
    std::vector<bool> reduced(xs.size(), false);
    int64_t reduce_count = 1;
    for (int64_t a : axes) {
        reduced[a] = true;
        reduce_count *= xs[a];
    }
    auto xstrides = rowMajorStrides(xs);

    // Split dims into kept (they index the output, row-major) and
    // reduced (the per-slot accumulation walk), preserving dim order.
    std::vector<int64_t> kext, kstr, rext, rstr;
    for (size_t d = 0; d < xs.size(); ++d) {
        if (reduced[d]) {
            rext.push_back(xs[d]);
            rstr.push_back(xstrides[d]);
        } else {
            kext.push_back(xs[d]);
            kstr.push_back(xstrides[d]);
        }
    }
    std::vector<int64_t> ostr(kext.size(), 1);
    for (size_t d = kext.size(); d-- > 1;)
        ostr[d - 1] = ostr[d] * kext[d];

    int64_t lo = c.begin, hi = partitionEnd(c, numel(*c.outShape));
    float inv = 1.0f / static_cast<float>(reduce_count);
    std::vector<int64_t> coord(rext.size(), 0);
    for (int64_t oi = lo; oi < hi; ++oi) {
        int64_t rem = oi, base = 0;
        for (size_t d = 0; d < kext.size(); ++d) {
            int64_t k = rem / ostr[d];
            rem -= k * ostr[d];
            base += k * kstr[d];
        }
        float acc = 0;
        std::fill(coord.begin(), coord.end(), 0);
        int64_t off = 0;
        for (;;) {
            acc += c.in[0][base + off];
            // Odometer over the reduced dims, innermost fastest.
            size_t d = rext.size();
            while (d-- > 0) {
                off += rstr[d];
                if (++coord[d] < rext[d])
                    break;
                off -= coord[d] * rstr[d];
                coord[d] = 0;
            }
            if (d == static_cast<size_t>(-1))
                break;
        }
        c.out[oi] = mean ? acc * inv : acc;
    }
}

void
reduceSumK(const KernelCtx &c)
{
    reduce(c, false);
}

void
reduceMeanK(const KernelCtx &c)
{
    reduce(c, true);
}

} // namespace

namespace detail {

void
registerReduceKernels()
{
    PartitionSpec slots{part::outElems, 16};
    registerKernel(OpKind::ReduceSum, "", reduceSumK, slots);
    registerKernel(OpKind::ReduceMean, "", reduceMeanK, slots);
}

} // namespace detail
} // namespace pe
