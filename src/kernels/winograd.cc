/**
 * @file
 * Winograd F(2x2, 3x3) convolution, registered as the "winograd"
 * variant of Conv2d / ConvBiasAct.
 *
 * The paper (Section 3.2) observes that Winograd's weight transform is
 * normally a poor fit for training because the weights change every
 * step — but under sparse backpropagation many layers are frozen, and
 * the compiler knows which. The backend-switching pass binds frozen
 * 3x3 stride-1 convolutions to this kernel and marks the weight as
 * static ("staticWeight" attr); the transformed weights are then
 * computed once and cached in the node's SHARED workspace region,
 * which the executor initializes serially at warm-up.
 *
 * Partitioning: the domain is the flattened (image, tile-row) pairs —
 * each tile row owns two output rows, so shards write disjoint output
 * slabs. Every shard carries a private workspace holding the
 * transformed-input buffer (and, for non-static weights, its own
 * filter transforms), so the kernel participates in the launch plan
 * instead of being serialized by scratch.
 */

#include <cstring>

#include "kernels/kernel.h"

namespace pe {
namespace {

/** U = G g G^T for one 3x3 filter; G is the 4x3 F(2,3) matrix. */
void
transformFilter(const float *g, float *u)
{
    // G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]]
    float tmp[4][3];
    for (int j = 0; j < 3; ++j) {
        float g0 = g[0 * 3 + j], g1 = g[1 * 3 + j], g2 = g[2 * 3 + j];
        tmp[0][j] = g0;
        tmp[1][j] = 0.5f * (g0 + g1 + g2);
        tmp[2][j] = 0.5f * (g0 - g1 + g2);
        tmp[3][j] = g2;
    }
    for (int i = 0; i < 4; ++i) {
        float t0 = tmp[i][0], t1 = tmp[i][1], t2 = tmp[i][2];
        u[i * 4 + 0] = t0;
        u[i * 4 + 1] = 0.5f * (t0 + t1 + t2);
        u[i * 4 + 2] = 0.5f * (t0 - t1 + t2);
        u[i * 4 + 3] = t2;
    }
}

/** All co*ci filter transforms of weight @p w into @p u [co, ci, 16]. */
void
transformAllFilters(const float *w, int64_t co, int64_t ci, float *u)
{
    for (int64_t o = 0; o < co; ++o) {
        for (int64_t i = 0; i < ci; ++i)
            transformFilter(w + (o * ci + i) * 9, u + (o * ci + i) * 16);
    }
}

/** V = B^T d B for one 4x4 input tile. */
void
transformInput(const float d[4][4], float v[4][4])
{
    float t[4][4];
    for (int j = 0; j < 4; ++j) {
        t[0][j] = d[0][j] - d[2][j];
        t[1][j] = d[1][j] + d[2][j];
        t[2][j] = -d[1][j] + d[2][j];
        t[3][j] = d[1][j] - d[3][j];
    }
    for (int i = 0; i < 4; ++i) {
        v[i][0] = t[i][0] - t[i][2];
        v[i][1] = t[i][1] + t[i][2];
        v[i][2] = -t[i][1] + t[i][2];
        v[i][3] = t[i][1] - t[i][3];
    }
}

/** Y = A^T m A: 4x4 accumulator -> 2x2 output tile. */
void
transformOutput(const float m[4][4], float y[2][2])
{
    float t[2][4];
    for (int j = 0; j < 4; ++j) {
        t[0][j] = m[0][j] + m[1][j] + m[2][j];
        t[1][j] = m[1][j] - m[2][j] - m[3][j];
    }
    for (int i = 0; i < 2; ++i) {
        y[i][0] = t[i][0] + t[i][1] + t[i][2];
        y[i][1] = t[i][1] - t[i][2] - t[i][3];
    }
}

bool
staticWeight(const KernelCtx &c)
{
    return c.node->attrs.getInt("staticWeight", 0) != 0;
}

/**
 * Core Winograd conv. @p bias may be null; @p act is an ActKind.
 * Requires kh == kw == 3 and stride == 1 (the backend-switching pass
 * guarantees this before binding the variant).
 *
 * Workspace layout (per shard): [vbuf: ci*16] and, when the weight is
 * not static, [u: co*ci*16] after it. Static weights read u from the
 * shared region instead (cached across steps and shards).
 */
void
winogradConv(const KernelCtx &c, const float *bias, int64_t act)
{
    const Shape &xs = *c.inShapes[0];
    const Shape &ws = *c.inShapes[1];
    int64_t pad = c.node->attrs.getInt("pad", 0);
    int64_t ci = xs[1], h = xs[2], w = xs[3];
    int64_t co = ws[0];
    int64_t ho = (*c.outShape)[2], wo = (*c.outShape)[3];
    int64_t tiles_h = (ho + 1) / 2, tiles_w = (wo + 1) / 2;

    float *vbuf = c.workspace; // [ci, 16]
    const float *u;            // [co, ci, 16] transformed filters
    if (staticWeight(c) && c.shared) {
        // Cached across calls; normally filled by the executor's
        // warm-up (via the init hook) before any sharded launch. The
        // lazy branch serves direct serial callers only.
        if (c.sharedReady && !*c.sharedReady) {
            transformAllFilters(c.in[1], co, ci, c.shared);
            *c.sharedReady = true;
        }
        u = c.shared;
    } else {
        float *uw = c.workspace + ci * 16;
        transformAllFilters(c.in[1], co, ci, uw);
        u = uw;
    }

    int64_t hi = partitionEnd(c, xs[0] * tiles_h);
    for (int64_t idx = c.begin; idx < hi; ++idx) {
        int64_t ni = idx / tiles_h, th = idx % tiles_h;
        for (int64_t tw = 0; tw < tiles_w; ++tw) {
            // Gather the 4x4 input tile per channel (implicit pad).
            for (int64_t i = 0; i < ci; ++i) {
                float d[4][4];
                const float *xp = c.in[0] + (ni * ci + i) * h * w;
                for (int a = 0; a < 4; ++a) {
                    int64_t ih = th * 2 - pad + a;
                    for (int b = 0; b < 4; ++b) {
                        int64_t iw = tw * 2 - pad + b;
                        bool ok = ih >= 0 && ih < h && iw >= 0 &&
                                  iw < w;
                        d[a][b] = ok ? xp[ih * w + iw] : 0.0f;
                    }
                }
                float v[4][4];
                transformInput(d, v);
                std::memcpy(vbuf + i * 16, v, 16 * sizeof(float));
            }
            // Per output channel: elementwise product + sum.
            for (int64_t o = 0; o < co; ++o) {
                float m[4][4];
                std::memset(m, 0, sizeof(m));
                const float *uo = u + o * ci * 16;
                for (int64_t i = 0; i < ci; ++i) {
                    const float *ui = uo + i * 16;
                    const float *vi = vbuf + i * 16;
                    for (int k = 0; k < 16; ++k)
                        m[k / 4][k % 4] += ui[k] * vi[k];
                }
                float y[2][2];
                transformOutput(m, y);
                float b = bias ? bias[o] : 0.0f;
                float *op = c.out + (ni * co + o) * ho * wo;
                for (int a = 0; a < 2; ++a) {
                    int64_t oh = th * 2 + a;
                    if (oh >= ho)
                        continue;
                    for (int bb = 0; bb < 2; ++bb) {
                        int64_t ow = tw * 2 + bb;
                        if (ow >= wo)
                            continue;
                        float v = y[a][bb] + b;
                        if (act == kActRelu && v < 0)
                            v = 0;
                        op[oh * wo + ow] = v;
                    }
                }
            }
        }
    }
}

void
winogradConvK(const KernelCtx &c)
{
    winogradConv(c, nullptr, kActNone);
}

void
winogradConvBiasActK(const KernelCtx &c)
{
    winogradConv(c, c.in[2], c.node->attrs.getInt("act", kActNone));
}

/** Warm-up hook: fill the shared region with the filter transforms. */
void
winogradInitShared(const KernelCtx &c)
{
    const Shape &ws = *c.inShapes[1];
    transformAllFilters(c.in[1], ws[0], ws[1], c.shared);
    if (c.sharedReady)
        *c.sharedReady = true;
}

WorkspaceSpec
winogradWorkspace(const Graph &g, const Node &n)
{
    const Shape &w = g.node(n.inputs[1]).shape;
    int64_t co = w[0], ci = w[1];
    bool is_static = n.attrs.getInt("staticWeight", 0) != 0;
    WorkspaceSpec spec;
    spec.bytesPerShard =
        (ci * 16 + (is_static ? 0 : co * ci * 16)) * 4;
    spec.sharedBytes = is_static ? co * ci * 16 * 4 : 0;
    spec.init = is_static ? winogradInitShared : nullptr;
    return spec;
}

/** Flattened (image, output-tile-row) pairs. */
int64_t
winogradTileRows(const KernelCtx &c)
{
    return (*c.outShape)[0] * (((*c.outShape)[2] + 1) / 2);
}

} // namespace

namespace detail {

void
registerWinogradKernels()
{
    PartitionSpec tileRows{winogradTileRows, 1};
    registerKernel(OpKind::Conv2d, "winograd", winogradConvK, tileRows,
                   winogradWorkspace);
    registerKernel(OpKind::ConvBiasAct, "winograd", winogradConvBiasActK,
                   tileRows, winogradWorkspace);
}

} // namespace detail
} // namespace pe
