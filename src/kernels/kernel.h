/**
 * @file
 * Kernel ABI and registry.
 *
 * Every op in the catalogue has at least one CPU kernel; several have
 * multiple named variants (e.g. Conv2d: "naive", "im2col", "winograd")
 * which the backend-switching pass selects between — this is the
 * repository's stand-in for the paper's per-backend kernel libraries
 * (SNPE / TensorRT / TVM-tuned / TinyEngine).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/shape.h"
#include "ir/graph.h"

namespace pe {

/** Everything a kernel needs to run one node. */
struct KernelCtx {
    const Node *node = nullptr;       ///< attrs
    std::vector<const float *> in;    ///< input buffers
    std::vector<const Shape *> inShapes;
    float *out = nullptr;             ///< output buffer
    const Shape *outShape = nullptr;
    int64_t step = 0;                 ///< global optimizer step (Adam)
    float *scratch = nullptr;         ///< per-node scratch, may be null
    bool *scratchReady = nullptr;     ///< persistent flag for cached
                                      ///< precomputation (Winograd)
};

using KernelFn = void (*)(const KernelCtx &);

/**
 * Look up the kernel for an op. @p variant "" selects the default;
 * unknown variants fall back to the default with no error (a backend
 * without the tuned kernel still runs the model).
 */
KernelFn lookupKernel(OpKind op, const std::string &variant = "");

/** True if a kernel is registered for (op, variant) exactly. */
bool hasKernelVariant(OpKind op, const std::string &variant);

/** Scratch floats needed by (node, variant); 0 for most kernels. */
int64_t kernelScratchSize(const Graph &g, const Node &n,
                          const std::string &variant);

/** Registration hook used by the kernel translation units. */
void registerKernel(OpKind op, const std::string &variant, KernelFn fn);

namespace detail {
/** Force-link all kernel TUs (each defines a registrar object). */
void ensureKernelsRegistered();
} // namespace detail

} // namespace pe
