/**
 * @file
 * Kernel ABI and registry.
 *
 * Every op in the catalogue has at least one CPU kernel; several have
 * multiple named variants (e.g. Conv2d: "naive", "im2col", "winograd")
 * which the backend-switching pass selects between — this is the
 * repository's stand-in for the paper's per-backend kernel libraries
 * (SNPE / TensorRT / TVM-tuned / TinyEngine).
 *
 * Partitioned execution: a kernel may declare (via PartitionSpec) a
 * one-dimensional partition domain — output rows, flattened output
 * elements, batch images — whose shards write disjoint output ranges.
 * The executor splits that domain across the thread pool at BIND
 * time (the launch plan is precomputed; nothing is decided per step,
 * preserving the paper's no-runtime-decisions invariant) and each
 * shard receives the same KernelCtx with [begin, end) narrowed.
 * A default-constructed range (begin == end == 0) means "the full
 * domain", so unsharded callers (tests, the eager baseline, benches)
 * need no changes.
 *
 * Workspaces (Arena v2): a kernel that needs scratch declares a
 * WorkspaceSpec — bytes per shard (each shard of a partitioned launch
 * gets its own instance, so scratch no longer serializes a kernel)
 * plus an optional shared once-per-bind region for data that persists
 * across steps (Winograd's cached filter transforms). The memory
 * planner places workspaces in the SAME arena as values, live only
 * during their step, so the reported footprint finally includes them
 * and best-fit reuses the space across steps.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/shape.h"
#include "ir/graph.h"

namespace pe {

class ThreadPool;

/** Everything a kernel needs to run one node (or one shard of one). */
struct KernelCtx {
    const Node *node = nullptr;       ///< attrs
    std::vector<const float *> in;    ///< input buffers
    std::vector<const Shape *> inShapes;
    float *out = nullptr;             ///< output buffer
    const Shape *outShape = nullptr;
    int64_t step = 0;                 ///< global optimizer step (Adam)
    float *workspace = nullptr;       ///< THIS shard's private scratch
                                      ///< (WorkspaceSpec::bytesPerShard)
    float *shared = nullptr;          ///< once-per-bind region, shared
                                      ///< by all shards of the node
    bool *sharedReady = nullptr;      ///< true once `shared` holds
                                      ///< valid data (Winograd cache)
    int64_t begin = 0;                ///< partition range over the
    int64_t end = 0;                  ///< kernel's declared domain;
                                      ///< begin == end == 0 -> full
    ThreadPool *pool = nullptr;       ///< for kernels that parallelize
                                      ///< internally; may be null
};

using KernelFn = void (*)(const KernelCtx &);

/**
 * How a kernel's work splits across threads. The domain is a
 * kernel-defined 1-D index set (rows, images, flattened elements…);
 * shards of it must write disjoint output bytes. Each shard receives
 * its own workspace instance, so scratch-bearing kernels partition
 * like any other. Kernels whose accumulation spans the whole domain
 * (scalar losses, axis reductions into shared slots) stay
 * unsplittable.
 */
struct PartitionSpec {
    /**
     * Domain extent for one invocation, computed from the bound ctx
     * (shapes are static, so this runs once at bind time). Null means
     * the kernel is not splittable. Must depend only on shapes and
     * node attrs — the planner evaluates it before buffers exist.
     */
    int64_t (*extent)(const KernelCtx &) = nullptr;
    /** Minimum domain elements per shard (don't split tiny work). */
    int64_t minGrain = 1;

    bool splittable() const { return extent != nullptr; }
};

/**
 * Declared scratch requirement of (node, variant) — the replacement
 * for the old implicit kernelScratchSize() contract. All quantities
 * are BYTES; the planner places them in the arena and the executor
 * resolves them to pointers at bind time.
 */
struct WorkspaceSpec {
    /** Private scratch per shard; every shard of a partitioned launch
     *  gets its own instance at a distinct arena offset. */
    int64_t bytesPerShard = 0;
    /** One region per node, shared by all shards and persistent
     *  across steps (e.g. cached Winograd filter transforms). */
    int64_t sharedBytes = 0;
    /**
     * Optional hook that fills `shared` and sets *sharedReady. The
     * executor runs it serially during warm-up (before the first
     * sharded launch touches the region), so shards never race on the
     * shared region. Direct callers may skip it — kernels fall back
     * to lazily initializing `shared` themselves, which is safe
     * because direct calls are serial.
     */
    void (*init)(const KernelCtx &) = nullptr;

    bool any() const { return bytesPerShard > 0 || sharedBytes > 0; }
};

/** Workspace query: sizes from static shapes, at compile time. */
using WorkspaceFn = WorkspaceSpec (*)(const Graph &, const Node &);

/** Registry entry: the kernel plus how to partition and feed it. */
struct KernelInfo {
    KernelFn fn = nullptr;
    PartitionSpec part;
    WorkspaceFn workspace = nullptr; ///< null -> no scratch needed
    /** True if the requested variant was missing and "" was used. */
    bool fellBack = false;
};

/**
 * Resolve the partition range of @p c against the full domain extent
 * @p n: a default-constructed range means the whole domain. Kernels
 * call this once at entry.
 */
inline int64_t
partitionEnd(const KernelCtx &c, int64_t n)
{
    return c.end > c.begin ? std::min(c.end, n) : n;
}

/**
 * Look up the kernel for an op. @p variant "" selects the default;
 * unknown variants fall back to the default (a backend without the
 * tuned kernel still runs the model) — the fallback is flagged in
 * KernelInfo::fellBack so the compile report can surface it.
 */
KernelFn lookupKernel(OpKind op, const std::string &variant = "");

/** Full registry entry for (op, variant), with fallback applied. */
KernelInfo lookupKernelInfo(OpKind op, const std::string &variant = "");

/** True if a kernel is registered for (op, variant) exactly. */
bool hasKernelVariant(OpKind op, const std::string &variant);

/**
 * Workspace declared by the kernel bound to (node, variant), with the
 * registry's fallback rule applied. Zero for most kernels.
 */
WorkspaceSpec kernelWorkspace(const Graph &g, const Node &n,
                              const std::string &variant);

/** Registration hook used by the kernel translation units. */
void registerKernel(OpKind op, const std::string &variant, KernelFn fn,
                    PartitionSpec part = {}, WorkspaceFn workspace = nullptr);

/**
 * Owns workspace storage for one direct (un-planned) kernel call —
 * tests, the eager baseline, constant folding. Attach before
 * invoking; reuse across calls to exercise the shared-region cache.
 */
class DirectWorkspace
{
  public:
    void
    attach(KernelCtx &c, const WorkspaceSpec &spec)
    {
        // Idempotent: reattaching with the same spec keeps the shared
        // region's cached contents (and its ready flag) intact.
        size_t per = static_cast<size_t>((spec.bytesPerShard + 3) / 4);
        if (perShard_.size() != per)
            perShard_.assign(per, 0.0f);
        if (per > 0)
            c.workspace = perShard_.data();
        size_t sh = static_cast<size_t>((spec.sharedBytes + 3) / 4);
        if (shared_.size() != sh) {
            shared_.assign(sh, 0.0f);
            ready_ = false;
        }
        if (sh > 0)
            c.shared = shared_.data();
        c.sharedReady = &ready_;
    }

    /** Attach the workspace declared for (node, variant). The cached
     *  shared region is invalidated when the node changes, so one
     *  DirectWorkspace reused across different nodes never serves
     *  another node's cached transforms. */
    void
    attach(KernelCtx &c, const Graph &g, const Node &n,
           const std::string &variant = "")
    {
        if (&n != boundNode_) {
            ready_ = false;
            boundNode_ = &n;
        }
        attach(c, kernelWorkspace(g, n, variant));
    }

    bool ready() const { return ready_; }

  private:
    std::vector<float> perShard_, shared_;
    const Node *boundNode_ = nullptr;
    bool ready_ = false;
};

namespace detail {
/** Force-link all kernel TUs (each defines a registrar object). */
void ensureKernelsRegistered();
} // namespace detail

// ---- SIMD kernel tiers -----------------------------------------------

/**
 * The vector instruction tier a kernel variant targets. Scalar is the
 * universal tier: every op's scalar kernels are registered on every
 * host, so a tier downgrade always lands on a runnable kernel.
 */
enum class SimdTier { Scalar, Avx2, Neon };

constexpr const char *
simdTierName(SimdTier t)
{
    return t == SimdTier::Avx2 ? "avx2"
           : t == SimdTier::Neon ? "neon"
                                 : "scalar";
}

/**
 * The best tier this host can execute (cpu_features probe; Scalar
 * when the library was built with PE_SIMD=OFF). Tier variants are
 * only REGISTERED when this says they can run, so hasKernelVariant on
 * a tier name doubles as a host-capability check.
 */
SimdTier hostSimdTier();

/**
 * Tier encoded in a variant name. Tier variants are named
 * "<base>@<tier>" ("blocked@avx2", "int8@neon"); a bare tier name
 * ("avx2") is the tier variant of the default kernel. Everything else
 * — including unknown variants — is Scalar.
 */
SimdTier variantTier(const std::string &variant);

/** Strip any tier suffix: "blocked@avx2" -> "blocked", "avx2" -> "". */
std::string scalarVariantOf(const std::string &variant);

/**
 * Bind-time tier selection: map @p variant to the kernel the program
 * should bind at @p tier. The stored name is first reduced to its
 * scalar base (so a plan saved on an AVX2 host resolves on a NEON
 * host), then upgraded to "<base>@<tier>" when that exact variant is
 * registered. Unknown variants pass through untouched so the
 * registry's fallback accounting still sees them.
 */
std::string resolveTierVariant(OpKind op, const std::string &variant,
                               SimdTier tier);

/**
 * Test hook: force hostSimdTier() to report @p tier (pass Scalar to
 * simulate a SIMD-less host; -1 clears the override). Only downgrades
 * are meaningful — the override cannot conjure kernels that were
 * never registered.
 */
void setSimdTierForTesting(int tier);

// ---- Common partition domains (used by the kernel TUs) ---------------

namespace part {
/** Flattened output elements. */
int64_t outElems(const KernelCtx &c);
/** Output rows: numel(out) / out.back(). */
int64_t outRows(const KernelCtx &c);
/** First output dim (batch / output channels / samples). */
int64_t outDim0(const KernelCtx &c);
/** First two output dims flattened (e.g. N*C of an NCHW output). */
int64_t outDim01(const KernelCtx &c);
/** Elements of input 1 (optimizer kernels: the gradient). */
int64_t in1Elems(const KernelCtx &c);
} // namespace part

} // namespace pe
