/**
 * @file
 * Kernel ABI and registry.
 *
 * Every op in the catalogue has at least one CPU kernel; several have
 * multiple named variants (e.g. Conv2d: "naive", "im2col", "winograd")
 * which the backend-switching pass selects between — this is the
 * repository's stand-in for the paper's per-backend kernel libraries
 * (SNPE / TensorRT / TVM-tuned / TinyEngine).
 *
 * Partitioned execution: a kernel may declare (via PartitionSpec) a
 * one-dimensional partition domain — output rows, flattened output
 * elements, batch images — whose shards write disjoint output ranges.
 * The executor splits that domain across the thread pool at BIND
 * time (the launch plan is precomputed; nothing is decided per step,
 * preserving the paper's no-runtime-decisions invariant) and each
 * shard receives the same KernelCtx with [begin, end) narrowed.
 * A default-constructed range (begin == end == 0) means "the full
 * domain", so unsharded callers (tests, the eager baseline, benches)
 * need no changes.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/shape.h"
#include "ir/graph.h"

namespace pe {

class ThreadPool;

/** Everything a kernel needs to run one node (or one shard of one). */
struct KernelCtx {
    const Node *node = nullptr;       ///< attrs
    std::vector<const float *> in;    ///< input buffers
    std::vector<const Shape *> inShapes;
    float *out = nullptr;             ///< output buffer
    const Shape *outShape = nullptr;
    int64_t step = 0;                 ///< global optimizer step (Adam)
    float *scratch = nullptr;         ///< per-node scratch, may be null
    bool *scratchReady = nullptr;     ///< persistent flag for cached
                                      ///< precomputation (Winograd)
    int64_t begin = 0;                ///< partition range over the
    int64_t end = 0;                  ///< kernel's declared domain;
                                      ///< begin == end == 0 -> full
    ThreadPool *pool = nullptr;       ///< for kernels that parallelize
                                      ///< internally; may be null
};

using KernelFn = void (*)(const KernelCtx &);

/**
 * How a kernel's work splits across threads. The domain is a
 * kernel-defined 1-D index set (rows, images, flattened elements…);
 * shards of it must write disjoint output bytes and must not share
 * scratch. Kernels whose accumulation spans the whole domain (scalar
 * losses, axis reductions into shared slots) stay unsplittable.
 */
struct PartitionSpec {
    /**
     * Domain extent for one invocation, computed from the bound ctx
     * (shapes are static, so this runs once at bind time). Null means
     * the kernel is not splittable.
     */
    int64_t (*extent)(const KernelCtx &) = nullptr;
    /** Minimum domain elements per shard (don't split tiny work). */
    int64_t minGrain = 1;

    bool splittable() const { return extent != nullptr; }
};

/** Registry entry: the kernel plus how to partition it. */
struct KernelInfo {
    KernelFn fn = nullptr;
    PartitionSpec part;
    /** True if the requested variant was missing and "" was used. */
    bool fellBack = false;
};

/**
 * Resolve the partition range of @p c against the full domain extent
 * @p n: a default-constructed range means the whole domain. Kernels
 * call this once at entry.
 */
inline int64_t
partitionEnd(const KernelCtx &c, int64_t n)
{
    return c.end > c.begin ? std::min(c.end, n) : n;
}

/**
 * Look up the kernel for an op. @p variant "" selects the default;
 * unknown variants fall back to the default (a backend without the
 * tuned kernel still runs the model) — the fallback is flagged in
 * KernelInfo::fellBack so the compile report can surface it.
 */
KernelFn lookupKernel(OpKind op, const std::string &variant = "");

/** Full registry entry for (op, variant), with fallback applied. */
KernelInfo lookupKernelInfo(OpKind op, const std::string &variant = "");

/** True if a kernel is registered for (op, variant) exactly. */
bool hasKernelVariant(OpKind op, const std::string &variant);

/** Scratch floats needed by (node, variant); 0 for most kernels. */
int64_t kernelScratchSize(const Graph &g, const Node &n,
                          const std::string &variant);

/** Registration hook used by the kernel translation units. */
void registerKernel(OpKind op, const std::string &variant, KernelFn fn,
                    PartitionSpec part = {});

namespace detail {
/** Force-link all kernel TUs (each defines a registrar object). */
void ensureKernelsRegistered();
} // namespace detail

// ---- Common partition domains (used by the kernel TUs) ---------------

namespace part {
/** Flattened output elements. */
int64_t outElems(const KernelCtx &c);
/** Output rows: numel(out) / out.back(). */
int64_t outRows(const KernelCtx &c);
/** First output dim (batch / output channels / samples). */
int64_t outDim0(const KernelCtx &c);
/** First two output dims flattened (e.g. N*C of an NCHW output). */
int64_t outDim01(const KernelCtx &c);
/** Elements of input 1 (optimizer kernels: the gradient). */
int64_t in1Elems(const KernelCtx &c);
} // namespace part

} // namespace pe
