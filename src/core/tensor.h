/**
 * @file
 * Dense row-major tensor used by the runtime, kernels and tests.
 *
 * Storage is float32 throughout; integer-valued tensors (labels, token
 * ids) hold exact small integers in float storage. This keeps every
 * kernel monomorphic, which is the same trade-off tiny inference engines
 * (TF-Lite Micro, TinyEngine's fp32 path) make for code size.
 */

#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/shape.h"

namespace pe {

/**
 * A reference-counted dense tensor. Copies share storage (like
 * torch.Tensor); use clone() for a deep copy.
 */
class Tensor
{
  public:
    /** An empty tensor with no storage. */
    Tensor() = default;

    /** A zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    static Tensor zeros(Shape shape);
    static Tensor ones(Shape shape);
    static Tensor full(Shape shape, float value);
    static Tensor fromVector(Shape shape, std::vector<float> values);
    /** I.i.d. N(0, std^2) entries. */
    static Tensor randn(Shape shape, Rng &rng, float std = 1.0f);
    /** I.i.d. U[lo, hi) entries. */
    static Tensor uniform(Shape shape, Rng &rng, float lo, float hi);
    /** Kaiming-style init for a weight with given fan-in. */
    static Tensor kaiming(Shape shape, Rng &rng, int64_t fan_in);

    bool defined() const { return data_ != nullptr; }
    const Shape &shape() const { return shape_; }
    int64_t size() const { return data_ ? (int64_t)data_->size() : 0; }
    int64_t dim(int i) const { return shape_.at(i); }
    int rank() const { return static_cast<int>(shape_.size()); }

    float *data() { return data_->data(); }
    const float *data() const { return data_->data(); }

    float &operator[](int64_t i) { return (*data_)[i]; }
    float operator[](int64_t i) const { return (*data_)[i]; }

    /** Multi-dimensional accessor (slow; tests and reference code only). */
    float &at(std::initializer_list<int64_t> idx);
    float at(std::initializer_list<int64_t> idx) const;

    /** Deep copy. */
    Tensor clone() const;
    /** Set every element to @p value. */
    void fill(float value);
    /** Sum of all elements. */
    double sum() const;
    /** Mean absolute value of all elements. */
    double meanAbs() const;
    /** Shares storage; shape must have equal numel. */
    Tensor reshaped(Shape shape) const;

  private:
    Shape shape_;
    std::shared_ptr<std::vector<float>> data_;
};

/** Max elementwise |a - b|; tensors must have identical shapes. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/** True when |a - b| <= atol + rtol * |b| elementwise. */
bool allClose(const Tensor &a, const Tensor &b, float rtol = 1e-4f,
              float atol = 1e-5f);

} // namespace pe
