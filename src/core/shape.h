/**
 * @file
 * Tensor shape utilities shared by the IR and the runtime.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pe {

/** A tensor shape: one extent per dimension, row-major layout. */
using Shape = std::vector<int64_t>;

/** Total element count of a shape (1 for a scalar / rank-0 shape). */
int64_t numel(const Shape &shape);

/** Human-readable rendering, e.g. "[8, 3, 32, 32]". */
std::string shapeToString(const Shape &shape);

/**
 * Numpy-style right-aligned broadcast of two shapes.
 *
 * @return the broadcast shape.
 * @throws std::runtime_error if the shapes are incompatible.
 */
Shape broadcastShapes(const Shape &a, const Shape &b);

/** True if @p from can be broadcast to @p to (right-aligned rules). */
bool broadcastableTo(const Shape &from, const Shape &to);

/** Row-major strides of a shape (in elements, not bytes). */
std::vector<int64_t> rowMajorStrides(const Shape &shape);

} // namespace pe
