/**
 * @file
 * Storage element types for the byte-addressed arena (Arena v2).
 *
 * Every planned placement carries a DType tag so the memory plan —
 * the source of Table 4's footprint numbers — stays honest when
 * non-fp32 storage (quantized int8 inference, fp16 activations)
 * lands. All graph values are F32 today; the planner tags each
 * placement and sizes it via dtypeSize() instead of a hard-coded 4.
 */

#pragma once

#include <cstdint>

namespace pe {

enum class DType : uint8_t {
    F32,
    F16,
    I8,
};

constexpr int64_t
dtypeSize(DType t)
{
    return t == DType::F32 ? 4 : t == DType::F16 ? 2 : 1;
}

constexpr const char *
dtypeName(DType t)
{
    return t == DType::F32 ? "f32" : t == DType::F16 ? "f16" : "i8";
}

} // namespace pe
