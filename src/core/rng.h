/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 */

#pragma once

#include <cstdint>
#include <random>

namespace pe {

/**
 * A seedable RNG wrapper. All randomness in the library flows through Rng
 * instances so every experiment is reproducible from a single seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 42) : gen_(seed) {}

    /** Sample from N(mean, std^2). */
    float
    normal(float mean = 0.0f, float std = 1.0f)
    {
        std::normal_distribution<float> d(mean, std);
        return d(gen_);
    }

    /** Sample uniformly from [lo, hi). */
    float
    uniform(float lo = 0.0f, float hi = 1.0f)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        return d(gen_);
    }

    /** Sample an integer uniformly from [0, n). */
    int64_t
    randint(int64_t n)
    {
        std::uniform_int_distribution<int64_t> d(0, n - 1);
        return d(gen_);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < static_cast<float>(p); }

    /** Underlying engine, for std::shuffle and friends. */
    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace pe
