#include "core/tensor.h"

#include <cmath>
#include <stdexcept>

namespace pe {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(numel(shape_), 0.0f))
{
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::ones(Shape shape)
{
    return full(std::move(shape), 1.0f);
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::fromVector(Shape shape, std::vector<float> values)
{
    if (numel(shape) != static_cast<int64_t>(values.size()))
        throw std::runtime_error("fromVector: size mismatch");
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = std::make_shared<std::vector<float>>(std::move(values));
    return t;
}

Tensor
Tensor::randn(Shape shape, Rng &rng, float std)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = rng.normal(0.0f, std);
    return t;
}

Tensor
Tensor::uniform(Shape shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.size(); ++i)
        t[i] = rng.uniform(lo, hi);
    return t;
}

Tensor
Tensor::kaiming(Shape shape, Rng &rng, int64_t fan_in)
{
    float std = std::sqrt(2.0f / static_cast<float>(fan_in));
    return randn(std::move(shape), rng, std);
}

float &
Tensor::at(std::initializer_list<int64_t> idx)
{
    auto strides = rowMajorStrides(shape_);
    int64_t off = 0;
    size_t i = 0;
    for (int64_t v : idx)
        off += v * strides[i++];
    return (*data_)[off];
}

float
Tensor::at(std::initializer_list<int64_t> idx) const
{
    return const_cast<Tensor *>(this)->at(idx);
}

Tensor
Tensor::clone() const
{
    Tensor t;
    t.shape_ = shape_;
    t.data_ = data_ ? std::make_shared<std::vector<float>>(*data_) : nullptr;
    return t;
}

void
Tensor::fill(float value)
{
    for (auto &v : *data_)
        v = value;
}

double
Tensor::sum() const
{
    double s = 0;
    for (auto v : *data_)
        s += v;
    return s;
}

double
Tensor::meanAbs() const
{
    if (!data_ || data_->empty())
        return 0;
    double s = 0;
    for (auto v : *data_)
        s += std::fabs(v);
    return s / static_cast<double>(data_->size());
}

Tensor
Tensor::reshaped(Shape shape) const
{
    if (numel(shape) != size())
        throw std::runtime_error("reshaped: numel mismatch");
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = data_;
    return t;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        throw std::runtime_error("maxAbsDiff: shape mismatch " +
                                 shapeToString(a.shape()) + " vs " +
                                 shapeToString(b.shape()));
    float m = 0;
    for (int64_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

bool
allClose(const Tensor &a, const Tensor &b, float rtol, float atol)
{
    if (a.shape() != b.shape())
        return false;
    for (int64_t i = 0; i < a.size(); ++i) {
        if (std::fabs(a[i] - b[i]) > atol + rtol * std::fabs(b[i]))
            return false;
    }
    return true;
}

} // namespace pe
