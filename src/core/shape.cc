#include "core/shape.h"

#include <sstream>
#include <stdexcept>

namespace pe {

int64_t
numel(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape)
        n *= d;
    return n;
}

std::string
shapeToString(const Shape &shape)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i)
            os << ", ";
        os << shape[i];
    }
    os << "]";
    return os.str();
}

Shape
broadcastShapes(const Shape &a, const Shape &b)
{
    size_t rank = std::max(a.size(), b.size());
    Shape out(rank, 1);
    for (size_t i = 0; i < rank; ++i) {
        int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
        int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
        if (da != db && da != 1 && db != 1) {
            throw std::runtime_error("broadcastShapes: incompatible " +
                                     shapeToString(a) + " vs " +
                                     shapeToString(b));
        }
        out[i] = std::max(da, db);
    }
    return out;
}

bool
broadcastableTo(const Shape &from, const Shape &to)
{
    if (from.size() > to.size())
        return false;
    size_t off = to.size() - from.size();
    for (size_t i = 0; i < from.size(); ++i) {
        if (from[i] != to[off + i] && from[i] != 1)
            return false;
    }
    return true;
}

std::vector<int64_t>
rowMajorStrides(const Shape &shape)
{
    std::vector<int64_t> strides(shape.size(), 1);
    for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i)
        strides[i] = strides[i + 1] * shape[i + 1];
    return strides;
}

} // namespace pe
