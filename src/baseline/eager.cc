#include "baseline/eager.h"

#include <stdexcept>

#include "autodiff/autodiff.h"
#include "kernels/kernel.h"

namespace pe {

FrameworkProfile
FrameworkProfile::tensorflow()
{
    return {"TensorFlow", 120.0, 0.05, 0.20, true};
}

FrameworkProfile
FrameworkProfile::pytorch()
{
    return {"PyTorch", 90.0, 0.07, 0.25, true};
}

FrameworkProfile
FrameworkProfile::jax()
{
    return {"Jax", 100.0, 0.06, 0.25, true};
}

FrameworkProfile
FrameworkProfile::mnn()
{
    // C++ runtime, inference-tuned kernels, limited training support.
    return {"MNN", 8.0, 0.30, 0.35, true};
}

FrameworkProfile
FrameworkProfile::pockEngine()
{
    return {"PockEngine", 0.5, 0.60, 0.65, true};
}

EagerEngine::EagerEngine(const Graph &forward, int loss_id,
                         std::shared_ptr<ParamStore> store,
                         OptimConfig optim,
                         const std::unordered_map<std::string, bool>
                             *masked_trainable)
    : forward_(forward), lossId_(loss_id), store_(std::move(store)),
      optim_(optim)
{
    detail::ensureKernelsRegistered();
    if (!store_)
        store_ = std::make_shared<ParamStore>();
    store_->materialize(forward_);
    if (masked_trainable) {
        masked_ = true;
        mask_ = *masked_trainable;
    }
    // Eager full-BP computes every gradient.
    for (int id : forward_.paramIds())
        forward_.node(id).trainable = true;
}

Tensor
EagerEngine::evalNode(const Graph &g, int id,
                      std::unordered_map<int, Tensor> &values)
{
    const Node &n = g.node(id);
    Tensor out(n.shape); // fresh per-step allocation (eager design)
    KernelCtx ctx;
    ctx.node = &n;
    for (int in : n.inputs) {
        ctx.in.push_back(values.at(in).data());
        ctx.inShapes.push_back(&g.node(in).shape);
    }
    ctx.out = out.data();
    ctx.outShape = &n.shape;
    ctx.step = step_;
    // Fresh per-call workspace (eager design: nothing planned, no
    // cross-step caching — the shared-region cache stays cold).
    DirectWorkspace ws;
    ws.attach(ctx, g, n, "");
    lookupKernel(n.op, "")(ctx); // dynamic dispatch each call
    ++stats_.opsExecuted;
    liveBytes_ += out.size() * 4;
    return out;
}

void
EagerEngine::interpret(const Graph &g,
                       std::unordered_map<int, Tensor> &values,
                       int from_node, int to_node)
{
    for (int id = from_node; id <= to_node; ++id) {
        const Node &n = g.node(id);
        switch (n.op) {
          case OpKind::Input: {
            if (!values.count(id))
                throw std::runtime_error("EagerEngine: unbound input " +
                                         n.name);
            break;
          }
          case OpKind::Param:
            values[id] = store_->get(n.name); // shared storage
            break;
          case OpKind::Const:
            values[id] = g.hasConstData(id) ? g.constData(id)
                                            : Tensor::zeros(n.shape);
            break;
          default:
            values[id] = evalNode(g, id, values);
        }
    }
}

float
EagerEngine::trainStep(
    const std::unordered_map<std::string, Tensor> &feeds)
{
    ++step_;
    liveBytes_ = 0;

    // Runtime autodiff: re-derive the backward graph on every single
    // step, exactly like tape-based frameworks (paper Fig. 7a).
    Graph work = forward_;
    BackwardResult bwd = buildBackward(work, lossId_);
    stats_.autodiffNodes = static_cast<double>(bwd.nodesEmitted);

    std::unordered_map<int, Tensor> values;
    for (int id : work.inputIds()) {
        auto it = feeds.find(work.node(id).name);
        if (it != feeds.end())
            values[id] = it->second;
    }
    interpret(work, values, 0, work.numNodes() - 1);

    // Separate optimizer pass: all gradients are live at once.
    int64_t grad_bytes = 0;
    for (auto &[pid, gid] : bwd.paramGrads)
        grad_bytes += numel(work.node(gid).shape) * 4;
    stats_.gradBytes = grad_bytes;

    int64_t param_bytes = 0;
    for (int id : work.paramIds())
        param_bytes += numel(work.node(id).shape) * 4;
    stats_.peakBytes = std::max(stats_.peakBytes,
                                liveBytes_ + param_bytes);

    auto lr = static_cast<float>(optim_.lr);
    for (auto &[pid, gid] : bwd.paramGrads) {
        const Node &p = work.node(pid);
        if (masked_) {
            auto it = mask_.find(p.name);
            if (it != mask_.end() && !it->second)
                continue; // gradient was computed, then thrown away
        }
        Tensor &w = store_->get(p.name);
        const Tensor &grad = values.at(gid);
        for (int64_t i = 0; i < w.size(); ++i)
            w[i] -= lr * grad[i];
    }
    return values.at(lossId_)[0];
}

Tensor
EagerEngine::forward(
    const std::unordered_map<std::string, Tensor> &feeds, int node_id)
{
    ++step_;
    liveBytes_ = 0;
    std::unordered_map<int, Tensor> values;
    for (int id : forward_.inputIds()) {
        auto it = feeds.find(forward_.node(id).name);
        if (it != feeds.end())
            values[id] = it->second;
    }
    interpret(forward_, values, 0, node_id);
    return values.at(node_id);
}

} // namespace pe
