/**
 * @file
 * EagerEngine: the architectural baseline the paper compares against
 * (PyTorch / TensorFlow / Jax / MNN, Sections 2.1 and 2.5).
 *
 * It reproduces the *design* of runtime-autodiff frameworks, not
 * their binaries:
 *  - the forward graph is interpreted node by node through a dynamic
 *    dispatch table, with a fresh heap tensor per intermediate value
 *    (no arena, no planning);
 *  - the backward graph is re-derived at run time on every step
 *    (the "tape"), then interpreted the same way;
 *  - the optimizer runs as a separate pass after the whole backward
 *    finishes, so every gradient buffer is simultaneously live;
 *  - "sparse" updates can only be simulated by computing all
 *    gradients and masking (maskedSparse mode) — the paper's point
 *    that existing frameworks get no measured savings.
 *
 * Every step reports real measured counters (ops, peak bytes, wall
 * time) used by the Fig. 9 / Table 4 / Table 5 benches.
 */

#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/tensor.h"
#include "ir/graph.h"
#include "optim/optim.h"
#include "runtime/paramstore.h"

namespace pe {

/** Per-framework modelling constants (Fig. 9 baselines). */
struct FrameworkProfile {
    std::string name;
    /** Host-language + dispatch overhead per operator, microseconds,
     *  calibrated to public per-op measurements on Cortex-A-class
     *  CPUs (Python interpreters ~50-150us/op; C++ runtimes ~5us). */
    double hostOverheadUs = 50.0;
    /** Fraction of peak reached on edge *CPUs*. Cloud frameworks ship
     *  kernels tuned for servers/GPUs; on Cortex-A they reach a few
     *  percent of peak (the paper's "kernel optimized for edge"
     *  column), while compiled/tuned engines reach ~half. */
    double cpuEfficiency = 0.4;
    /** Fraction of peak reached on GPU/DSP-class accelerators (these
     *  mostly share cuDNN-class kernels, so the gap is smaller). */
    double accelEfficiency = 0.5;
    bool supportsTraining = true;

    static FrameworkProfile tensorflow();
    static FrameworkProfile pytorch();
    static FrameworkProfile jax();
    static FrameworkProfile mnn();
    static FrameworkProfile pockEngine(); ///< for projection symmetry
};

/** Measured counters for one training step. */
struct EagerStats {
    int64_t opsExecuted = 0;     ///< kernel dispatches (fwd+bwd+optim)
    int64_t peakBytes = 0;       ///< live tensors incl. all gradients
    int64_t gradBytes = 0;       ///< gradient buffers at optimizer time
    double autodiffNodes = 0;    ///< backward nodes re-derived per step
};

class EagerEngine
{
  public:
    /**
     * @param masked_trainable  if non-null (maskedSparse mode), a map
     *        param-name -> trainable; gradients are computed for ALL
     *        params and multiplied by 0/1 — the simulation existing
     *        frameworks offer (no measured saving).
     */
    EagerEngine(const Graph &forward, int loss_id,
                std::shared_ptr<ParamStore> store, OptimConfig optim,
                const std::unordered_map<std::string, bool>
                    *masked_trainable = nullptr);

    /** One eager training step; returns the loss. */
    float trainStep(const std::unordered_map<std::string, Tensor> &feeds);

    /** Forward only; returns the value of @p node_id. */
    Tensor forward(const std::unordered_map<std::string, Tensor> &feeds,
                   int node_id);

    const EagerStats &stats() const { return stats_; }
    ParamStore &params() { return *store_; }
    const Graph &graph() const { return forward_; }

  private:
    Tensor evalNode(const Graph &g, int id,
                    std::unordered_map<int, Tensor> &values);
    void interpret(const Graph &g,
                   std::unordered_map<int, Tensor> &values,
                   int from_node, int to_node);

    Graph forward_;
    int lossId_;
    std::shared_ptr<ParamStore> store_;
    OptimConfig optim_;
    std::unordered_map<std::string, bool> mask_;
    bool masked_ = false;
    EagerStats stats_;
    int64_t liveBytes_ = 0;
    int64_t step_ = 0;
};

} // namespace pe
