#include "frontend/builder.h"

#include <cmath>

namespace pe {

int
NetBuilder::input(Shape shape, const std::string &name)
{
    return g_.input(std::move(shape), name);
}

int
NetBuilder::paramKaiming(Shape shape, const std::string &name,
                         int64_t fan_in)
{
    int id = g_.param(shape, name);
    if (store_ && !store_->has(name))
        store_->set(name, Tensor::kaiming(shape, rng_, fan_in));
    return id;
}

int
NetBuilder::paramFill(Shape shape, const std::string &name, float value)
{
    int id = g_.param(shape, name);
    if (store_ && !store_->has(name))
        store_->set(name, Tensor::full(shape, value));
    return id;
}

int
NetBuilder::param(Shape shape, const std::string &name, float init_std)
{
    int id = g_.param(shape, name);
    if (store_ && !store_->has(name))
        store_->set(name, Tensor::randn(shape, rng_, init_std));
    return id;
}

int
NetBuilder::linear(int x, int64_t out_features, const std::string &name,
                   bool bias)
{
    int64_t in_features = g_.node(x).shape.back();
    int w = paramKaiming({in_features, out_features}, name + ".weight",
                         in_features);
    int y = g_.add(OpKind::MatMul, {x, w});
    if (bias) {
        int b = paramFill({out_features}, name + ".bias", 0.0f);
        y = g_.add(OpKind::Add, {y, b});
    }
    return y;
}

int
NetBuilder::linearLora(int x, int64_t out_features,
                       const std::string &name, int64_t rank, bool bias)
{
    int64_t in_features = g_.node(x).shape.back();
    int base = linear(x, out_features, name, bias);
    int a = param({in_features, rank}, name + ".lora.a", 0.02f);
    int bmat = g_.param({rank, out_features}, name + ".lora.b");
    if (store_ && !store_->has(name + ".lora.b"))
        store_->set(name + ".lora.b", Tensor::zeros({rank, out_features}));
    int xa = g_.add(OpKind::MatMul, {x, a});
    int xab = g_.add(OpKind::MatMul, {xa, bmat});
    return g_.add(OpKind::Add, {base, xab});
}

int
NetBuilder::conv2d(int x, int64_t out_ch, int64_t kernel, int64_t stride,
                   int64_t pad, const std::string &name, bool bias)
{
    int64_t in_ch = g_.node(x).shape[1];
    int w = paramKaiming({out_ch, in_ch, kernel, kernel},
                         name + ".weight", in_ch * kernel * kernel);
    Attrs a;
    a.set("stride", stride);
    a.set("pad", pad);
    int y = g_.add(OpKind::Conv2d, {x, w}, std::move(a));
    if (bias) {
        int b = paramFill({out_ch, 1, 1}, name + ".bias", 0.0f);
        y = g_.add(OpKind::Add, {y, b});
    }
    return y;
}

int
NetBuilder::dwConv2d(int x, int64_t kernel, int64_t stride, int64_t pad,
                     const std::string &name, bool bias)
{
    int64_t ch = g_.node(x).shape[1];
    int w = paramKaiming({ch, 1, kernel, kernel}, name + ".weight",
                         kernel * kernel);
    Attrs a;
    a.set("stride", stride);
    a.set("pad", pad);
    int y = g_.add(OpKind::DwConv2d, {x, w}, std::move(a));
    if (bias) {
        int b = paramFill({ch, 1, 1}, name + ".bias", 0.0f);
        y = g_.add(OpKind::Add, {y, b});
    }
    return y;
}

int
NetBuilder::scale(int x, double alpha)
{
    Attrs a;
    a.set("alpha", alpha);
    return g_.add(OpKind::Scale, {x}, std::move(a));
}

int
NetBuilder::reshape(int x, Shape shape)
{
    Attrs a;
    a.set("shape", std::move(shape));
    return g_.add(OpKind::Reshape, {x}, std::move(a));
}

int
NetBuilder::permute(int x, std::vector<int64_t> perm)
{
    Attrs a;
    a.set("perm", std::move(perm));
    return g_.add(OpKind::Permute, {x}, std::move(a));
}

int
NetBuilder::slice(int x, int64_t axis, int64_t begin, int64_t end)
{
    Attrs a;
    a.set("axis", axis);
    a.set("begin", begin);
    a.set("end", end);
    return g_.add(OpKind::Slice, {x}, std::move(a));
}

int
NetBuilder::avgPool(int x, int64_t kernel, int64_t stride)
{
    Attrs a;
    a.set("kernel", kernel);
    a.set("stride", stride);
    return g_.add(OpKind::AvgPool2d, {x}, std::move(a));
}

int
NetBuilder::globalAvgPool(int x)
{
    return g_.add(OpKind::GlobalAvgPool, {x});
}

int
NetBuilder::layerNorm(int x, const std::string &name)
{
    int64_t d = g_.node(x).shape.back();
    int gamma = paramFill({d}, name + ".gamma", 1.0f);
    int beta = paramFill({d}, name + ".beta", 0.0f);
    Attrs a;
    a.set("eps", 1e-5);
    return g_.add(OpKind::LayerNorm, {x, gamma, beta}, std::move(a));
}

int
NetBuilder::rmsNorm(int x, const std::string &name)
{
    int64_t d = g_.node(x).shape.back();
    int gamma = paramFill({d}, name + ".gamma", 1.0f);
    Attrs a;
    a.set("eps", 1e-5);
    return g_.add(OpKind::RMSNorm, {x, gamma}, std::move(a));
}

int
NetBuilder::embedding(int ids, int64_t vocab, int64_t dim,
                      const std::string &name)
{
    int table = param({vocab, dim}, name + ".weight", 0.02f);
    return g_.add(OpKind::Embedding, {table, ids});
}

int
NetBuilder::crossEntropy(int logits, int labels)
{
    return g_.add(OpKind::CrossEntropy, {logits, labels});
}

int
NetBuilder::mse(int pred, int target)
{
    return g_.add(OpKind::Mse, {pred, target});
}

int
NetBuilder::selfAttention(int x, int64_t heads, const std::string &name,
                          bool causal, int64_t lora_rank)
{
    Shape xs = g_.node(x).shape; // [B, S, D] (copy: adds reallocate)
    int64_t batch = xs[0], seq = xs[1], dim = xs[2];
    int64_t dh = dim / heads;

    int x2d = reshape(x, {batch * seq, dim});
    int q = lora_rank > 0 ? linearLora(x2d, dim, name + ".q", lora_rank)
                          : linear(x2d, dim, name + ".q");
    int k = linear(x2d, dim, name + ".k");
    int v = lora_rank > 0 ? linearLora(x2d, dim, name + ".v", lora_rank)
                          : linear(x2d, dim, name + ".v");

    auto to_heads = [&](int t) {
        int r = reshape(t, {batch, seq, heads, dh});
        r = permute(r, {0, 2, 1, 3}); // [B, H, S, dh]
        return reshape(r, {batch * heads, seq, dh});
    };
    q = to_heads(q);
    k = to_heads(k);
    v = to_heads(v);

    Attrs mm;
    mm.set("transB", static_cast<int64_t>(1));
    int scores = g_.add(OpKind::BatchMatMul, {q, k}, std::move(mm));
    scores = scale(scores, 1.0 / std::sqrt(static_cast<double>(dh)));
    if (causal) {
        Tensor mask({seq, seq});
        for (int64_t i = 0; i < seq; ++i) {
            for (int64_t j = 0; j < seq; ++j)
                mask.at({i, j}) = j > i ? -1e9f : 0.0f;
        }
        int m = g_.constantOf(std::move(mask), name + ".mask");
        scores = add(scores, m);
    }
    int probs = softmax(scores);
    int ctx = g_.add(OpKind::BatchMatMul, {probs, v});
    ctx = reshape(ctx, {batch, heads, seq, dh});
    ctx = permute(ctx, {0, 2, 1, 3});
    ctx = reshape(ctx, {batch * seq, dim});
    int out = linear(ctx, dim, name + ".proj");
    return reshape(out, {batch, seq, dim});
}

} // namespace pe
