/**
 * @file
 * Model zoo: the five model families the paper evaluates (Section
 * 4.1), width/depth-configurable so the same definitions serve both
 * executable (scaled-down) experiments and full-size (analysis-only)
 * memory/latency studies, plus the Section 4.1 sparse-BP schemes for
 * each.
 */

#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "engine/scheme.h"
#include "ir/graph.h"
#include "runtime/paramstore.h"

namespace pe {

/** A built model: the forward graph plus the interesting node ids. */
struct ModelSpec {
    Graph graph;
    int input = -1;  ///< data Input node ("x")
    int labels = -1; ///< label Input node ("y")
    int logits = -1;
    int loss = -1;
    int numBlocks = 0;
    std::string kind;
    int64_t paramCount = 0; ///< trainable-eligible weights (no optim state)
};

/** Vision model configuration. */
struct VisionConfig {
    int64_t batch = 8;
    int64_t resolution = 32;
    int64_t channels = 3;
    int64_t numClasses = 10;
    double width = 1.0; ///< channel multiplier
    int blocks = 0;     ///< 0 = family default
};

/**
 * MCUNet-proxy: a tiny inverted-bottleneck CNN (the 5FPS MCUNet is an
 * MB-block network found by NAS; we keep the block structure with
 * fixed kernel sizes). Blocks are named "b0".."bN-1"; the stem is
 * "stem", the classifier "head".
 */
ModelSpec buildMcuNet(const VisionConfig &cfg, Rng &rng,
                      ParamStore *store);

/** MobileNetV2: inverted residual bottlenecks, expand ratio 6. */
ModelSpec buildMobileNetV2(const VisionConfig &cfg, Rng &rng,
                           ParamStore *store);

/** ResNet with 1x1-3x3-1x1 bottleneck blocks. */
ModelSpec buildResNet(const VisionConfig &cfg, Rng &rng,
                      ParamStore *store);

/** Transformer encoder (BERT/DistilBERT) configuration. */
struct NlpConfig {
    int64_t batch = 4;
    int64_t seqLen = 32;
    int64_t vocab = 1000;
    int64_t dim = 64;
    int64_t heads = 4;
    int64_t ffDim = 256;
    int64_t layers = 4;
    int64_t numClasses = 2;
};

/**
 * BERT-style encoder for sequence classification: embeddings, post-LN
 * transformer blocks ("b0".."bN-1" with ".attn" and ".ffn.fc1/fc2"),
 * first-token pooling, classifier "head".
 */
ModelSpec buildBert(const NlpConfig &cfg, Rng &rng, ParamStore *store);

/** LLaMA-style decoder configuration. */
struct LlamaConfig {
    int64_t batch = 1;
    int64_t seqLen = 32;
    int64_t vocab = 512;
    int64_t dim = 64;
    int64_t heads = 4;
    int64_t ffDim = 172; ///< SwiGLU hidden (~8/3 d in the real model)
    int64_t layers = 4;
};

/**
 * Decoder-only LM: token embedding, pre-RMSNorm blocks with causal
 * attention and SwiGLU FFN, tied-free LM head; next-token
 * cross-entropy loss.
 *
 * @param lora_rank  if > 0, add LoRA adapters (A/B pairs, params
 *        "<layer>.lora.a/.lora.b") to the attention q/v projections —
 *        the parameter-efficient baseline of Table 5. Train them with
 *        loraScheme().
 */
ModelSpec buildLlama(const LlamaConfig &cfg, Rng &rng, ParamStore *store,
                     int64_t lora_rank = 0);

/** Freeze everything except LoRA adapters (and the loss head biases). */
SparseUpdateScheme loraScheme();

/** Generative decoder-LM configuration (KV-cache serving). The
 *  default single head keeps the cached graphs small enough for CI
 *  while exercising the full prefill/decode machinery; withHeads()
 *  turns on multi-head attention (heads packed in the cache's dim
 *  axis, so the cache layout and node names are head-agnostic). */
struct DecoderConfig {
    int64_t vocab = 96;
    int64_t dim = 32;
    int64_t ffDim = 64; ///< SwiGLU hidden
    int64_t layers = 2;
    int64_t maxSeq = 48; ///< KV-cache extent, shared by every layer
    int64_t heads = 1;   ///< attention heads; must divide dim

    // Validated builder-style setters: each rejects bad values up
    // front, naming the offending field, so misconfiguration fails at
    // construction instead of deep inside graph building.
    DecoderConfig &withHeads(int64_t n);
    DecoderConfig &withDim(int64_t d);
    DecoderConfig &withLayers(int64_t n);
    DecoderConfig &withMaxSeq(int64_t n);
    DecoderConfig &withVocab(int64_t v);
    DecoderConfig &withFfDim(int64_t d);
};

/**
 * Prefill graph for one prompt of @p prompt_len tokens: Input "x"
 * [S,1] token rows, causal self-attention over the prompt, and
 * CacheWrite nodes "b<i>.kcache"/"b<i>.vcache" (rank-2 [maxSeq,dim],
 * written at position 0) that leave the session cache holding the
 * prompt's keys/values. Output: next-token logits [S,vocab].
 *
 * Parameters are created in the SAME order and under the SAME names
 * as buildDecoderDecode(), so building both from equal-seeded Rngs
 * against one ParamStore yields one consistent model.
 */
ModelSpec buildDecoderPrefill(const DecoderConfig &cfg,
                              int64_t prompt_len, Rng &rng,
                              ParamStore *store);

/**
 * Single-token decode graph for @p streams concurrent sequences:
 * Inputs "x" [B,1] (one token per stream), "pos" [B,1] (each
 * stream's generation, i.e. its cache row count), "mask" [B,maxSeq]
 * (0 for visible cache columns, a large negative for the rest).
 * CacheWrite nodes carry the same "b<i>.kcache"/"b<i>.vcache" names
 * rank-3 ([B,maxSeq,dim]); attention reads the whole cache through
 * the additive mask. Output: next-token logits [B,vocab].
 */
ModelSpec buildDecoderDecode(const DecoderConfig &cfg, int64_t streams,
                             Rng &rng, ParamStore *store);

// ---- Paper Section 4.1 update schemes -------------------------------

/**
 * CNN scheme: biases of the last @p bias_blocks blocks; weights of
 * the *first* pointwise convolution in the last @p weight_blocks
 * blocks (optionally channel-sparse); classifier always updated.
 */
SparseUpdateScheme cnnSparseScheme(const ModelSpec &m, int bias_blocks,
                                   int weight_blocks,
                                   double ratio = 1.0);

/**
 * Transformer scheme: biases of the last @p bias_blocks blocks;
 * attention + first FFN linear weights of the last @p weight_blocks
 * blocks; classifier/head always updated.
 */
SparseUpdateScheme transformerSparseScheme(const ModelSpec &m,
                                           int bias_blocks,
                                           int weight_blocks);

/** Bias-only scheme with the task head still trainable. */
SparseUpdateScheme biasOnlyScheme();

// ---- Paper-scale configurations (analysis-only shapes) ----------------

VisionConfig paperMcuNetConfig(int64_t batch);      ///< 128x128 input
VisionConfig paperMobileNetV2Config(int64_t batch); ///< 224x224
VisionConfig paperResNet50Config(int64_t batch);
NlpConfig paperBertBaseConfig(int64_t batch);    ///< 768d x 12
NlpConfig paperDistilBertConfig(int64_t batch);  ///< 768d x 6
LlamaConfig paperLlama7bConfig(int64_t seq_len); ///< 4096d x 32

} // namespace pe
