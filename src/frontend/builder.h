/**
 * @file
 * Model-construction frontend.
 *
 * NetBuilder is the C++ stand-in for the paper's PyTorch / TensorFlow
 * / Jax frontends: it emits plain IR nodes, names parameters with the
 * "<layer>.weight|bias|gamma|beta" convention the sparse-scheme layer
 * keys on, and (optionally) initializes parameter tensors into a
 * ParamStore. Graphs built here can round-trip through the JSON
 * serializer, the repository's ONNX stand-in.
 */

#pragma once

#include <string>

#include "core/rng.h"
#include "ir/graph.h"
#include "runtime/paramstore.h"

namespace pe {

class NetBuilder
{
  public:
    /**
     * @param g     graph being built
     * @param rng   initializer randomness
     * @param store where parameter tensors are materialized; pass
     *              nullptr for shape-only (analysis) graphs
     */
    NetBuilder(Graph &g, Rng &rng, ParamStore *store)
        : g_(g), rng_(rng), store_(store)
    {
    }

    Graph &graph() { return g_; }

    int input(Shape shape, const std::string &name);

    /** y = x W + b; x: [N, in], W: [in, out] (Kaiming init). */
    int linear(int x, int64_t out_features, const std::string &name,
               bool bias = true);

    /**
     * Linear with a LoRA adapter: y = x W + b + (x A) B, A/B named
     * "<name>.lora.a" / "<name>.lora.b" (B zero-init so the adapter
     * starts as the identity perturbation).
     */
    int linearLora(int x, int64_t out_features, const std::string &name,
                   int64_t rank, bool bias = true);

    /** NCHW convolution with [C,1,1]-shaped bias (broadcast add). */
    int conv2d(int x, int64_t out_ch, int64_t kernel, int64_t stride,
               int64_t pad, const std::string &name, bool bias = true);

    /** Depthwise convolution. */
    int dwConv2d(int x, int64_t kernel, int64_t stride, int64_t pad,
                 const std::string &name, bool bias = true);

    int relu(int x) { return g_.add(OpKind::Relu, {x}); }
    int gelu(int x) { return g_.add(OpKind::Gelu, {x}); }
    int silu(int x) { return g_.add(OpKind::Silu, {x}); }
    int add(int a, int b) { return g_.add(OpKind::Add, {a, b}); }
    int mul(int a, int b) { return g_.add(OpKind::Mul, {a, b}); }

    int scale(int x, double alpha);
    int reshape(int x, Shape shape);
    int permute(int x, std::vector<int64_t> perm);
    int slice(int x, int64_t axis, int64_t begin, int64_t end);
    int softmax(int x) { return g_.add(OpKind::Softmax, {x}); }
    int avgPool(int x, int64_t kernel, int64_t stride);
    int globalAvgPool(int x);

    int layerNorm(int x, const std::string &name);
    int rmsNorm(int x, const std::string &name);

    /** Token embedding lookup; table init N(0, 0.02). */
    int embedding(int ids, int64_t vocab, int64_t dim,
                  const std::string &name);

    int crossEntropy(int logits, int labels);
    int mse(int pred, int target);

    /**
     * Multi-head self-attention over x: [B, S, D].
     * @param causal     add a lower-triangular mask (decoder models)
     * @param lora_rank  if > 0, use LoRA-adapted q/v projections
     * @return [B, S, D]
     */
    int selfAttention(int x, int64_t heads, const std::string &name,
                      bool causal = false, int64_t lora_rank = 0);

    /** Raw parameter with custom init std (normal). */
    int param(Shape shape, const std::string &name, float init_std);

  private:
    int paramKaiming(Shape shape, const std::string &name,
                     int64_t fan_in);
    int paramFill(Shape shape, const std::string &name, float value);

    Graph &g_;
    Rng &rng_;
    ParamStore *store_;
};

} // namespace pe
