#include "frontend/models.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "frontend/builder.h"

namespace pe {

namespace {

int64_t
scaled(int64_t ch, double width)
{
    auto v = static_cast<int64_t>(std::round(ch * width));
    return std::max<int64_t>(4, v);
}

int64_t
countParams(const Graph &g)
{
    int64_t total = 0;
    for (int id : g.paramIds())
        total += numel(g.node(id).shape);
    return total;
}

/**
 * One inverted-bottleneck block (MobileNetV2 / MCUNet building
 * block): expand 1x1 ("conv1") -> depthwise ("dw") -> project 1x1
 * ("conv2"); residual when stride 1 and channels match.
 */
int
invertedBottleneck(NetBuilder &b, int x, int64_t out_ch, int64_t expand,
                   int64_t kernel, int64_t stride,
                   const std::string &name)
{
    Graph &g = b.graph();
    int64_t in_ch = g.node(x).shape[1];
    int h = x;
    int64_t mid = in_ch * expand;
    if (expand != 1) {
        h = b.conv2d(h, mid, 1, 1, 0, name + ".conv1");
        h = b.relu(h);
    }
    h = b.dwConv2d(h, kernel, stride, kernel / 2, name + ".dw");
    h = b.relu(h);
    h = b.conv2d(h, out_ch, 1, 1, 0, name + ".conv2");
    if (stride == 1 && in_ch == out_ch)
        h = b.add(h, x);
    return h;
}

/**
 * Global-pool classifier head + loss. Fills @p spec in place: the
 * builder holds a reference to spec.graph, so the spec must not be
 * moved while building.
 */
void
finishClassifier(NetBuilder &b, ModelSpec &spec, int features,
                 int64_t num_classes, int64_t batch)
{
    Graph &g = b.graph();
    int pooled = b.globalAvgPool(features);
    int logits = b.linear(pooled, num_classes, "head");
    int labels = b.input({batch}, "y");
    int loss = b.crossEntropy(logits, labels);
    spec.labels = labels;
    spec.logits = logits;
    spec.loss = loss;
    g.markOutput(loss);
    g.markOutput(logits);
    spec.paramCount = countParams(g);
}

} // namespace

ModelSpec
buildMcuNet(const VisionConfig &cfg, Rng &rng, ParamStore *store)
{
    ModelSpec spec;
    spec.kind = "mcunet";
    NetBuilder b(spec.graph, rng, store);
    int x = b.input({cfg.batch, cfg.channels, cfg.resolution,
                     cfg.resolution},
                    "x");
    spec.input = x;

    int h = b.conv2d(x, scaled(16, cfg.width), 3, 2, 1, "stem");
    h = b.relu(h);

    // (out_ch, expand, kernel, stride) per block; MCUNet-5FPS-like
    // schedule of MB blocks with mixed kernels.
    struct Blk { int64_t c, e, k, s; };
    std::vector<Blk> blocks = {
        {16, 1, 3, 1}, {24, 3, 5, 2}, {24, 3, 3, 1}, {40, 3, 7, 2},
        {40, 3, 3, 1}, {48, 3, 5, 1}, {96, 3, 5, 2}, {96, 6, 7, 1},
        {160, 3, 5, 2},
    };
    int n_blocks = cfg.blocks > 0
                       ? std::min<int>(cfg.blocks,
                                       static_cast<int>(blocks.size()))
                       : static_cast<int>(blocks.size());
    for (int i = 0; i < n_blocks; ++i) {
        const Blk &bl = blocks[i];
        h = invertedBottleneck(b, h, scaled(bl.c, cfg.width), bl.e, bl.k,
                               bl.s, "b" + std::to_string(i));
    }
    spec.numBlocks = n_blocks;
    finishClassifier(b, spec, h, cfg.numClasses, cfg.batch);
    return spec;
}

ModelSpec
buildMobileNetV2(const VisionConfig &cfg, Rng &rng, ParamStore *store)
{
    ModelSpec spec;
    spec.kind = "mobilenetv2";
    NetBuilder b(spec.graph, rng, store);
    int x = b.input({cfg.batch, cfg.channels, cfg.resolution,
                     cfg.resolution},
                    "x");
    spec.input = x;

    int h = b.conv2d(x, scaled(32, cfg.width), 3, 2, 1, "stem");
    h = b.relu(h);

    // (t, c, n, s) schedule from the MobileNetV2 paper.
    struct Stage { int64_t t, c, n, s; };
    std::vector<Stage> stages = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    int bi = 0;
    int limit = cfg.blocks > 0 ? cfg.blocks : 1 << 30;
    for (const Stage &st : stages) {
        for (int64_t i = 0; i < st.n && bi < limit; ++i, ++bi) {
            int64_t stride = i == 0 ? st.s : 1;
            h = invertedBottleneck(b, h, scaled(st.c, cfg.width), st.t, 3,
                                   stride, "b" + std::to_string(bi));
        }
    }
    spec.numBlocks = bi;
    finishClassifier(b, spec, h, cfg.numClasses, cfg.batch);
    return spec;
}

ModelSpec
buildResNet(const VisionConfig &cfg, Rng &rng, ParamStore *store)
{
    ModelSpec spec;
    spec.kind = "resnet";
    NetBuilder b(spec.graph, rng, store);
    Graph &g = spec.graph;
    int x = b.input({cfg.batch, cfg.channels, cfg.resolution,
                     cfg.resolution},
                    "x");
    spec.input = x;

    int h = b.conv2d(x, scaled(64, cfg.width), 3, 2, 1, "stem");
    h = b.relu(h);

    // ResNet-50 stage plan: (mid_ch, n_blocks, stride).
    struct Stage { int64_t c, n, s; };
    std::vector<Stage> stages = {
        {64, 3, 1}, {128, 4, 2}, {256, 6, 2}, {512, 3, 2},
    };
    int bi = 0;
    int limit = cfg.blocks > 0 ? cfg.blocks : 1 << 30;
    for (const Stage &st : stages) {
        for (int64_t i = 0; i < st.n && bi < limit; ++i, ++bi) {
            std::string name = "b" + std::to_string(bi);
            int64_t mid = scaled(st.c, cfg.width);
            int64_t out = mid * 4;
            int64_t stride = i == 0 ? st.s : 1;
            int64_t in_ch = g.node(h).shape[1];
            int shortcut = h;
            if (stride != 1 || in_ch != out) {
                shortcut = b.conv2d(h, out, 1, stride, 0,
                                    name + ".down");
            }
            int y = b.conv2d(h, mid, 1, 1, 0, name + ".conv1");
            y = b.relu(y);
            y = b.conv2d(y, mid, 3, stride, 1, name + ".conv2");
            y = b.relu(y);
            y = b.conv2d(y, out, 1, 1, 0, name + ".conv3");
            h = b.relu(b.add(y, shortcut));
        }
    }
    spec.numBlocks = bi;
    finishClassifier(b, spec, h, cfg.numClasses, cfg.batch);
    return spec;
}

ModelSpec
buildBert(const NlpConfig &cfg, Rng &rng, ParamStore *store)
{
    ModelSpec spec;
    spec.kind = "bert";
    NetBuilder b(spec.graph, rng, store);
    Graph &g = spec.graph;

    int ids = b.input({cfg.batch, cfg.seqLen}, "x");
    spec.input = ids;
    int h = b.embedding(ids, cfg.vocab, cfg.dim, "embed.tok");
    int pos = b.param({cfg.seqLen, cfg.dim}, "embed.pos.weight", 0.02f);
    h = b.add(h, pos); // [B,S,D] + [S,D]
    h = b.layerNorm(h, "embed.ln");

    for (int64_t i = 0; i < cfg.layers; ++i) {
        std::string name = "b" + std::to_string(i);
        int attn = b.selfAttention(h, cfg.heads, name + ".attn", false);
        h = b.layerNorm(b.add(h, attn), name + ".ln1");
        int x2d = b.reshape(h, {cfg.batch * cfg.seqLen, cfg.dim});
        int ff = b.linear(x2d, cfg.ffDim, name + ".ffn.fc1");
        ff = b.gelu(ff);
        ff = b.linear(ff, cfg.dim, name + ".ffn.fc2");
        int ff3d = b.reshape(ff, {cfg.batch, cfg.seqLen, cfg.dim});
        h = b.layerNorm(b.add(h, ff3d), name + ".ln2");
    }
    spec.numBlocks = static_cast<int>(cfg.layers);

    // First-token pooling -> classifier.
    int cls = b.slice(h, 1, 0, 1);                  // [B,1,D]
    cls = b.reshape(cls, {cfg.batch, cfg.dim});
    int logits = b.linear(cls, cfg.numClasses, "head");
    int labels = b.input({cfg.batch}, "y");
    int loss = b.crossEntropy(logits, labels);
    spec.labels = labels;
    spec.logits = logits;
    spec.loss = loss;
    g.markOutput(loss);
    g.markOutput(logits);
    spec.paramCount = countParams(g);
    return spec;
}

ModelSpec
buildLlama(const LlamaConfig &cfg, Rng &rng, ParamStore *store,
           int64_t lora_rank)
{
    ModelSpec spec;
    spec.kind = "llama";
    NetBuilder b(spec.graph, rng, store);
    Graph &g = spec.graph;

    int ids = b.input({cfg.batch, cfg.seqLen}, "x");
    spec.input = ids;
    int h = b.embedding(ids, cfg.vocab, cfg.dim, "embed.tok");

    for (int64_t i = 0; i < cfg.layers; ++i) {
        std::string name = "b" + std::to_string(i);
        int norm1 = b.rmsNorm(h, name + ".ln1");
        int attn = b.selfAttention(norm1, cfg.heads, name + ".attn",
                                   true, lora_rank);
        h = b.add(h, attn);
        int norm2 = b.rmsNorm(h, name + ".ln2");
        int x2d = b.reshape(norm2, {cfg.batch * cfg.seqLen, cfg.dim});
        // SwiGLU: fc2(silu(fc1(x)) * fc3(x)).
        int gate = b.linear(x2d, cfg.ffDim, name + ".ffn.fc1", false);
        gate = b.silu(gate);
        int up = b.linear(x2d, cfg.ffDim, name + ".ffn.fc3", false);
        int ff = b.mul(gate, up);
        ff = b.linear(ff, cfg.dim, name + ".ffn.fc2", false);
        h = b.add(h, b.reshape(ff, {cfg.batch, cfg.seqLen, cfg.dim}));
    }
    spec.numBlocks = static_cast<int>(cfg.layers);

    h = b.rmsNorm(h, "final.ln");
    int h2d = b.reshape(h, {cfg.batch * cfg.seqLen, cfg.dim});
    int logits = b.linear(h2d, cfg.vocab, "head", false);
    int labels = b.input({cfg.batch * cfg.seqLen}, "y");
    int loss = b.crossEntropy(logits, labels);
    spec.labels = labels;
    spec.logits = logits;
    spec.loss = loss;
    g.markOutput(loss);
    g.markOutput(logits);
    spec.paramCount = countParams(g);
    return spec;
}

namespace {

[[noreturn]] void
badDecoderField(const std::string &field, const std::string &why)
{
    throw std::invalid_argument("DecoderConfig::" + field + ": " + why);
}

} // namespace

DecoderConfig &
DecoderConfig::withHeads(int64_t n)
{
    if (n < 1)
        badDecoderField("heads", "must be >= 1");
    if (dim % n != 0)
        badDecoderField("heads",
                        "must divide dim (dim=" + std::to_string(dim) +
                            ", heads=" + std::to_string(n) + ")");
    heads = n;
    return *this;
}

DecoderConfig &
DecoderConfig::withDim(int64_t d)
{
    if (d < 1)
        badDecoderField("dim", "must be >= 1");
    if (d % heads != 0)
        badDecoderField("dim",
                        "must be divisible by heads (dim=" +
                            std::to_string(d) +
                            ", heads=" + std::to_string(heads) + ")");
    dim = d;
    return *this;
}

DecoderConfig &
DecoderConfig::withLayers(int64_t n)
{
    if (n < 1)
        badDecoderField("layers", "must be >= 1");
    layers = n;
    return *this;
}

DecoderConfig &
DecoderConfig::withMaxSeq(int64_t n)
{
    if (n < 1)
        badDecoderField("maxSeq", "must be >= 1");
    maxSeq = n;
    return *this;
}

DecoderConfig &
DecoderConfig::withVocab(int64_t v)
{
    if (v < 1)
        badDecoderField("vocab", "must be >= 1");
    vocab = v;
    return *this;
}

DecoderConfig &
DecoderConfig::withFfDim(int64_t d)
{
    if (d < 1)
        badDecoderField("ffDim", "must be >= 1");
    ffDim = d;
    return *this;
}

namespace {

/**
 * Shared decoder-LM core: prefill and decode are the SAME parameters
 * (identical creation order and names — the rng draws line up) under
 * two attention geometries. Prefill runs rank-2 attention over the
 * prompt with a constant causal mask and writes the cache at position
 * 0; decode runs rank-3 single-token attention over the whole cache
 * through the fed additive mask and writes row "pos" per stream.
 *
 * Multi-head (cfg.heads > 1) folds the head axis into the batched
 * matmul's leading dim with existing shapeops: Q/K/V stay packed as
 * [.., D] with D = H*Dh (so the cache layout and the
 * "b<i>.kcache"/"b<i>.vcache" node-name contract are untouched), get
 * split to [..*H, .., Dh] around the attention core, and the head
 * outputs merge back by reshape (decode: rows are (b,h) with h
 * fastest, which IS the packed [B, D] layout) or permute+reshape
 * (prefill). Head count changes only the graph, never the serving
 * engine. With heads == 1 the emitted graph is node-for-node the
 * pre-multi-head one.
 */
ModelSpec
buildDecoderLM(const DecoderConfig &cfg, int64_t lead, bool decode,
               Rng &rng, ParamStore *store)
{
    ModelSpec spec;
    spec.kind = decode ? "decoder-decode" : "decoder-prefill";
    NetBuilder b(spec.graph, rng, store);
    Graph &g = spec.graph;
    const int64_t D = cfg.dim;
    const int64_t M = cfg.maxSeq;

    int ids = b.input({lead, 1}, "x");
    spec.input = ids;
    int pos = -1;
    int mask = -1;
    if (decode) {
        pos = b.input({lead, 1}, "pos");
        mask = b.input({lead, M}, "mask");
    } else {
        // Prompt geometry is static, so position and visibility fold
        // into constants: the cache is written at row 0, and token i
        // sees cache columns j <= i (the prompt itself).
        Tensor p0({1});
        p0[0] = 0.0f;
        pos = g.constantOf(std::move(p0), "pos0");
        Tensor cm({lead, M});
        for (int64_t i = 0; i < lead; ++i)
            for (int64_t j = 0; j < M; ++j)
                cm[i * M + j] = j <= i ? 0.0f : -1e30f;
        mask = g.constantOf(std::move(cm), "causal_mask");
    }
    int h = b.reshape(b.embedding(ids, cfg.vocab, D, "embed.tok"),
                      {lead, D});

    if (cfg.heads < 1 || D % cfg.heads != 0) {
        throw std::invalid_argument(
            "DecoderConfig::heads: must be >= 1 and divide dim "
            "(dim=" + std::to_string(D) +
            ", heads=" + std::to_string(cfg.heads) + ")");
    }
    const int64_t H = cfg.heads;
    const int64_t Dh = D / H;

    Attrs cache_attrs;
    cache_attrs.set("maxSeq", M);
    Attrs trans_b;
    trans_b.set("transB", static_cast<int64_t>(1));
    const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(Dh));

    for (int64_t i = 0; i < cfg.layers; ++i) {
        std::string name = "b" + std::to_string(i);
        int norm1 = b.rmsNorm(h, name + ".ln1");
        int q = b.linear(norm1, D, name + ".q", false);
        int k = b.linear(norm1, D, name + ".k", false);
        int v = b.linear(norm1, D, name + ".v", false);
        int attn;
        if (decode) {
            int kc = g.add(OpKind::CacheWrite,
                           {b.reshape(k, {lead, 1, D}), pos},
                           cache_attrs, name + ".kcache");
            int vc = g.add(OpKind::CacheWrite,
                           {b.reshape(v, {lead, 1, D}), pos},
                           cache_attrs, name + ".vcache");
            int q3, k3, v3, m3;
            if (H == 1) {
                q3 = b.reshape(q, {lead, 1, D});
                k3 = kc;
                v3 = vc;
                m3 = b.reshape(mask, {lead, 1, M});
            } else {
                // Head split: Q rows are packed [H, Dh], so the
                // head-batched form is a pure reshape; the cache
                // [B,M,H*Dh] needs the head axis hoisted past M.
                q3 = b.reshape(q, {lead * H, 1, Dh});
                k3 = b.reshape(b.permute(b.reshape(kc, {lead, M, H, Dh}),
                                         {0, 2, 1, 3}),
                               {lead * H, M, Dh});
                v3 = b.reshape(b.permute(b.reshape(vc, {lead, M, H, Dh}),
                                         {0, 2, 1, 3}),
                               {lead * H, M, Dh});
                Attrs bc;
                bc.set("shape", Shape{lead, H, M});
                m3 = b.reshape(g.add(OpKind::BroadcastTo,
                                     {b.reshape(mask, {lead, 1, M})},
                                     bc),
                               {lead * H, 1, M});
            }
            int scores = g.add(OpKind::BatchMatMul, {q3, k3},
                               trans_b); // [B*H,1,M]
            scores = b.scale(scores, inv_sqrt_d);
            scores = b.add(scores, m3);
            int ctx = g.add(OpKind::BatchMatMul,
                            {b.softmax(scores), v3}); // [B*H,1,Dh]
            // Head merge: rows are (b, h) with h fastest — exactly
            // the packed [B, H*Dh] layout, so a reshape suffices.
            attn = b.linear(b.reshape(ctx, {lead, D}), D,
                            name + ".proj", false);
        } else {
            int kc = g.add(OpKind::CacheWrite, {k, pos}, cache_attrs,
                           name + ".kcache");
            int vc = g.add(OpKind::CacheWrite, {v, pos}, cache_attrs,
                           name + ".vcache");
            int ctx2;
            if (H == 1) {
                int scores =
                    g.add(OpKind::MatMul, {q, kc}, trans_b); // [S,M]
                scores = b.scale(scores, inv_sqrt_d);
                scores = b.add(scores, mask);
                ctx2 = g.add(OpKind::MatMul, {b.softmax(scores), vc});
            } else {
                int q3 = b.permute(b.reshape(q, {lead, H, Dh}),
                                   {1, 0, 2}); // [H,S,Dh]
                int k3 = b.permute(b.reshape(kc, {M, H, Dh}),
                                   {1, 0, 2}); // [H,M,Dh]
                int v3 = b.permute(b.reshape(vc, {M, H, Dh}),
                                   {1, 0, 2});
                Attrs bc;
                bc.set("shape", Shape{H, lead, M});
                int m3 = g.add(OpKind::BroadcastTo,
                               {b.reshape(mask, {1, lead, M})}, bc);
                int scores = g.add(OpKind::BatchMatMul, {q3, k3},
                                   trans_b); // [H,S,M]
                scores = b.scale(scores, inv_sqrt_d);
                scores = b.add(scores, m3);
                int ctx = g.add(OpKind::BatchMatMul,
                                {b.softmax(scores), v3}); // [H,S,Dh]
                ctx2 = b.reshape(b.permute(ctx, {1, 0, 2}),
                                 {lead, D});
            }
            attn = b.linear(ctx2, D, name + ".proj", false);
        }
        h = b.add(h, attn);
        int norm2 = b.rmsNorm(h, name + ".ln2");
        // SwiGLU: fc2(silu(fc1(x)) * fc3(x)).
        int gate = b.silu(b.linear(norm2, cfg.ffDim,
                                   name + ".ffn.fc1", false));
        int up = b.linear(norm2, cfg.ffDim, name + ".ffn.fc3", false);
        int ff = b.linear(b.mul(gate, up), D, name + ".ffn.fc2",
                          false);
        h = b.add(h, ff);
    }
    spec.numBlocks = static_cast<int>(cfg.layers);

    h = b.rmsNorm(h, "final.ln");
    int logits = b.linear(h, cfg.vocab, "head", false);
    spec.logits = logits;
    g.markOutput(logits);
    spec.paramCount = countParams(g);
    return spec;
}

} // namespace

ModelSpec
buildDecoderPrefill(const DecoderConfig &cfg, int64_t prompt_len,
                    Rng &rng, ParamStore *store)
{
    return buildDecoderLM(cfg, prompt_len, false, rng, store);
}

ModelSpec
buildDecoderDecode(const DecoderConfig &cfg, int64_t streams, Rng &rng,
                   ParamStore *store)
{
    return buildDecoderLM(cfg, streams, true, rng, store);
}

SparseUpdateScheme
cnnSparseScheme(const ModelSpec &m, int bias_blocks, int weight_blocks,
                double ratio)
{
    SparseUpdateScheme s = SparseUpdateScheme::frozen();
    int n = m.numBlocks;
    for (int i = std::max(0, n - bias_blocks); i < n; ++i)
        s.updateBiasPrefix("b" + std::to_string(i) + ".");
    for (int i = std::max(0, n - weight_blocks); i < n; ++i) {
        s.set("b" + std::to_string(i) + ".conv1.weight",
              TensorRule{true, ratio});
    }
    s.updatePrefix("head.");
    s.updateBiasPrefix("head.");
    return s;
}

SparseUpdateScheme
transformerSparseScheme(const ModelSpec &m, int bias_blocks,
                        int weight_blocks)
{
    SparseUpdateScheme s = SparseUpdateScheme::frozen();
    int n = m.numBlocks;
    for (int i = std::max(0, n - bias_blocks); i < n; ++i)
        s.updateBiasPrefix("b" + std::to_string(i) + ".");
    for (int i = std::max(0, n - weight_blocks); i < n; ++i) {
        std::string blk = "b" + std::to_string(i) + ".";
        s.updatePrefix(blk + "attn.");
        s.updatePrefix(blk + "ffn.fc1.");
    }
    s.updatePrefix("head.");
    s.updateBiasPrefix("head.");
    return s;
}

SparseUpdateScheme
loraScheme()
{
    SparseUpdateScheme s = SparseUpdateScheme::frozen();
    s.updateContaining(".lora.");
    s.updatePrefix("head.");
    return s;
}

SparseUpdateScheme
biasOnlyScheme()
{
    SparseUpdateScheme s = SparseUpdateScheme::biasOnly();
    s.updatePrefix("head.");
    return s;
}

VisionConfig
paperMcuNetConfig(int64_t batch)
{
    VisionConfig c;
    c.batch = batch;
    c.resolution = 128;
    c.numClasses = 10;
    return c;
}

VisionConfig
paperMobileNetV2Config(int64_t batch)
{
    VisionConfig c;
    c.batch = batch;
    c.resolution = 224;
    c.numClasses = 10;
    return c;
}

VisionConfig
paperResNet50Config(int64_t batch)
{
    VisionConfig c;
    c.batch = batch;
    c.resolution = 224;
    c.numClasses = 10;
    return c;
}

NlpConfig
paperBertBaseConfig(int64_t batch)
{
    NlpConfig c;
    c.batch = batch;
    c.seqLen = 128;
    c.vocab = 30522;
    c.dim = 768;
    c.heads = 12;
    c.ffDim = 3072;
    c.layers = 12;
    return c;
}

NlpConfig
paperDistilBertConfig(int64_t batch)
{
    NlpConfig c = paperBertBaseConfig(batch);
    c.layers = 6;
    return c;
}

LlamaConfig
paperLlama7bConfig(int64_t seq_len)
{
    LlamaConfig c;
    c.batch = 1;
    c.seqLen = seq_len;
    c.vocab = 32000;
    c.dim = 4096;
    c.heads = 32;
    c.ffDim = 11008;
    c.layers = 32;
    return c;
}

} // namespace pe
