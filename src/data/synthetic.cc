#include "data/synthetic.h"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace pe {

namespace {

uint64_t
seedOf(const std::string &name)
{
    return std::hash<std::string>{}(name);
}

} // namespace

// ---- SyntheticVision --------------------------------------------------

SyntheticVision::SyntheticVision(uint64_t seed, int64_t classes,
                                 int64_t channels, int64_t resolution,
                                 float noise)
    : classes_(classes), channels_(channels), res_(resolution),
      noise_(noise)
{
    Rng rng(seed);
    prototypes_.reserve(classes);
    for (int64_t c = 0; c < classes; ++c) {
        // Smooth prototype: sum of a few random 2-D cosine waves per
        // channel, so nearby pixels correlate like natural images.
        Tensor p({channels_, res_, res_});
        for (int64_t ch = 0; ch < channels_; ++ch) {
            for (int wave = 0; wave < 3; ++wave) {
                float fx = rng.uniform(0.5f, 3.0f);
                float fy = rng.uniform(0.5f, 3.0f);
                float phase = rng.uniform(0.0f, 6.28f);
                float amp = rng.uniform(0.4f, 1.0f);
                for (int64_t i = 0; i < res_; ++i) {
                    for (int64_t j = 0; j < res_; ++j) {
                        float v = amp *
                                  std::cos(fx * 6.28f * i / res_ +
                                           fy * 6.28f * j / res_ + phase);
                        p.at({ch, i, j}) += v;
                    }
                }
            }
        }
        prototypes_.push_back(std::move(p));
    }
}

Batch
SyntheticVision::sample(int64_t batch, Rng &rng) const
{
    Batch b;
    b.x = Tensor({batch, channels_, res_, res_});
    b.y = Tensor({batch});
    int64_t img = channels_ * res_ * res_;
    for (int64_t n = 0; n < batch; ++n) {
        int64_t c = rng.randint(classes_);
        b.y[n] = static_cast<float>(c);
        float gain = rng.uniform(0.7f, 1.3f);
        float shift = rng.uniform(-0.2f, 0.2f);
        const Tensor &p = prototypes_[c];
        for (int64_t i = 0; i < img; ++i) {
            b.x[n * img + i] =
                gain * p[i] + shift + rng.normal(0.0f, noise_);
        }
    }
    return b;
}

std::vector<std::string>
SyntheticVision::taskNames()
{
    return {"cars", "cifar", "cub", "flowers", "foods", "pets", "vww"};
}

SyntheticVision
SyntheticVision::task(const std::string &name, int64_t channels,
                      int64_t resolution)
{
    // Per-task class counts loosely mirroring the real datasets'
    // relative difficulty (scaled down).
    int64_t classes = 10;
    if (name == "cars" || name == "cub")
        classes = 12;
    else if (name == "flowers")
        classes = 8;
    else if (name == "foods" || name == "pets")
        classes = 10;
    else if (name == "vww")
        classes = 2;
    return SyntheticVision(seedOf(name), classes, channels, resolution);
}

SyntheticVision
SyntheticVision::pretrain(int64_t channels, int64_t resolution)
{
    return SyntheticVision(seedOf("imagenet-proxy"), 10, channels,
                           resolution);
}

// ---- SyntheticText ----------------------------------------------------

SyntheticText::SyntheticText(uint64_t seed, int64_t classes,
                             int64_t vocab, int64_t seq_len,
                             float motif_prob)
    : classes_(classes), vocab_(vocab), seqLen_(seq_len),
      motifProb_(motif_prob)
{
    if (seq_len < 3)
        throw std::runtime_error("SyntheticText: seq_len too short");
    Rng rng(seed);
    motifs_.reserve(classes);
    for (int64_t c = 0; c < classes; ++c)
        motifs_.emplace_back(rng.randint(vocab), rng.randint(vocab));
}

SyntheticText::SyntheticText(
    std::vector<std::pair<int64_t, int64_t>> motifs, int64_t vocab,
    int64_t seq_len, float motif_prob)
    : classes_(static_cast<int64_t>(motifs.size())), vocab_(vocab),
      seqLen_(seq_len), motifProb_(motif_prob),
      motifs_(std::move(motifs))
{
}

namespace {

/** The shared motif pool every text task draws from. */
std::vector<std::pair<int64_t, int64_t>>
motifPool(int64_t vocab)
{
    Rng rng(seedOf("bookcorpus-proxy"));
    std::vector<std::pair<int64_t, int64_t>> pool;
    pool.reserve(16);
    for (int i = 0; i < 16; ++i)
        pool.emplace_back(rng.randint(vocab), rng.randint(vocab));
    return pool;
}

} // namespace

Batch
SyntheticText::sample(int64_t batch, Rng &rng) const
{
    Batch b;
    b.x = Tensor({batch, seqLen_});
    b.y = Tensor({batch});
    for (int64_t n = 0; n < batch; ++n) {
        int64_t c = rng.randint(classes_);
        b.y[n] = static_cast<float>(c);
        for (int64_t i = 0; i < seqLen_; ++i)
            b.x[n * seqLen_ + i] = static_cast<float>(rng.randint(vocab_));
        if (rng.chance(motifProb_)) {
            int64_t pos = rng.randint(seqLen_ - 1);
            b.x[n * seqLen_ + pos] = static_cast<float>(motifs_[c].first);
            b.x[n * seqLen_ + pos + 1] =
                static_cast<float>(motifs_[c].second);
        }
    }
    return b;
}

std::vector<std::string>
SyntheticText::taskNames()
{
    return {"cola", "mnli", "mrpc", "qnli", "qqp", "rte", "sst2"};
}

SyntheticText
SyntheticText::task(const std::string &name, int64_t vocab,
                    int64_t seq_len)
{
    int64_t classes = name == "mnli" ? 3 : 2;
    auto pool = motifPool(vocab);
    Rng pick(seedOf(name));
    std::vector<std::pair<int64_t, int64_t>> motifs;
    std::vector<bool> used(pool.size(), false);
    for (int64_t c = 0; c < classes; ++c) {
        int64_t i = pick.randint(static_cast<int64_t>(pool.size()));
        while (used[i])
            i = (i + 1) % static_cast<int64_t>(pool.size());
        used[i] = true;
        motifs.push_back(pool[i]);
    }
    return SyntheticText(std::move(motifs), vocab, seq_len, 0.9f);
}

SyntheticText
SyntheticText::pretrain(int64_t vocab, int64_t seq_len)
{
    return SyntheticText(motifPool(vocab), vocab, seq_len, 0.9f);
}

// ---- InstructionTask --------------------------------------------------

InstructionTask::InstructionTask(uint64_t seed, int64_t num_keys,
                                 int64_t vocab, int64_t seq_len)
    : numKeys_(num_keys), vocab_(vocab), seqLen_(seq_len),
      promptLen_(seq_len / 4)
{
    if (num_keys > vocab)
        throw std::runtime_error("InstructionTask: keys exceed vocab");
    Rng rng(seed);
    replies_.resize(num_keys);
    for (auto &reply : replies_) {
        reply.resize(seqLen_ - promptLen_);
        for (auto &t : reply)
            t = rng.randint(vocab_);
    }
}

Batch
InstructionTask::sample(int64_t batch, Rng &rng) const
{
    Batch b;
    b.x = Tensor({batch, seqLen_});
    b.y = Tensor({batch * seqLen_});
    for (int64_t n = 0; n < batch; ++n) {
        int64_t key = rng.randint(numKeys_);
        std::vector<int64_t> tokens(seqLen_);
        // Prompt: the key token repeated with filler; reply follows.
        for (int64_t i = 0; i < promptLen_; ++i)
            tokens[i] = i % 2 == 0 ? key : rng.randint(vocab_);
        tokens[0] = key;
        for (int64_t i = promptLen_; i < seqLen_; ++i)
            tokens[i] = replies_[key][i - promptLen_];
        for (int64_t i = 0; i < seqLen_; ++i) {
            b.x[n * seqLen_ + i] = static_cast<float>(tokens[i]);
            int64_t next = i + 1 < seqLen_ ? tokens[i + 1] : tokens[i];
            b.y[n * seqLen_ + i] = static_cast<float>(next);
        }
    }
    return b;
}

double
InstructionTask::exactMatch(const Tensor &logits, const Batch &batch) const
{
    int64_t rows = logits.dim(0);
    int64_t v = logits.dim(1);
    int64_t correct = 0, counted = 0;
    for (int64_t r = 0; r < rows; ++r) {
        int64_t pos = r % seqLen_;
        if (pos < promptLen_ - 1 || pos == seqLen_ - 1)
            continue; // only score reply tokens
        const float *row = logits.data() + r * v;
        int64_t argmax = 0;
        for (int64_t j = 1; j < v; ++j) {
            if (row[j] > row[argmax])
                argmax = j;
        }
        ++counted;
        if (argmax == static_cast<int64_t>(batch.y[r]))
            ++correct;
    }
    return counted ? static_cast<double>(correct) /
                         static_cast<double>(counted)
                   : 0.0;
}

} // namespace pe
