/**
 * @file
 * Synthetic transfer-learning task generators — the repository's
 * substitute for the paper's proprietary-scale datasets (ImageNet ->
 * Cars/CIFAR/CUB/Flowers/Foods/Pets/VWW; Wikipedia -> GLUE; Alpaca).
 *
 * Each family provides a "pretrain" distribution and a set of named
 * downstream tasks drawn from shifted distributions, so the
 * experiments exercise the real claim of Tables 2/3/5: after
 * pretraining, sparse backpropagation reaches the accuracy of full
 * backpropagation on the downstream shift at a fraction of the cost.
 */

#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace pe {

/** One supervised batch. */
struct Batch {
    Tensor x;
    Tensor y;
};

/**
 * Class-prototype vision tasks. Each class c has a smooth prototype
 * image; samples are the prototype under random gain, shift and
 * pixel noise. Task identity (seed) controls the prototype set, so
 * different tasks are genuine domain shifts over the same input
 * space.
 */
class SyntheticVision
{
  public:
    SyntheticVision(uint64_t seed, int64_t classes, int64_t channels,
                    int64_t resolution, float noise = 0.35f);

    Batch sample(int64_t batch, Rng &rng) const;
    int64_t classes() const { return classes_; }

    /** The seven downstream task names of Table 2. */
    static std::vector<std::string> taskNames();
    /** Build a named downstream task (seed derived from the name). */
    static SyntheticVision task(const std::string &name,
                                int64_t channels, int64_t resolution);
    /** The pretrain distribution. */
    static SyntheticVision pretrain(int64_t channels,
                                    int64_t resolution);

  private:
    int64_t classes_, channels_, res_;
    float noise_;
    std::vector<Tensor> prototypes_;
};

/**
 * Token-sequence classification: class c plants a class-specific
 * bigram motif into a random token background. Stands in for the
 * GLUE tasks of Table 3.
 */
class SyntheticText
{
  public:
    SyntheticText(uint64_t seed, int64_t classes, int64_t vocab,
                  int64_t seq_len, float motif_prob = 0.9f);

    Batch sample(int64_t batch, Rng &rng) const;
    int64_t classes() const { return classes_; }

    /** The seven GLUE-like task names of Table 3. */
    static std::vector<std::string> taskNames();
    /**
     * Downstream tasks draw their class motifs from the *pretrain*
     * motif pool (different subsets / pairings per task). This mirrors
     * real transfer learning: the pretrained encoder already detects
     * the motifs; downstream work is re-mapping them to new labels —
     * the regime where sparse backpropagation suffices (Section 2.3).
     */
    static SyntheticText task(const std::string &name, int64_t vocab,
                              int64_t seq_len);
    /** 16-way motif classification over the shared pool. */
    static SyntheticText pretrain(int64_t vocab, int64_t seq_len);

  private:
    SyntheticText(std::vector<std::pair<int64_t, int64_t>> motifs,
                  int64_t vocab, int64_t seq_len, float motif_prob);
    int64_t classes_, vocab_, seqLen_;
    float motifProb_;
    std::vector<std::pair<int64_t, int64_t>> motifs_; ///< per class
};

/**
 * Instruction-following LM data (Alpaca stand-in): prompts are
 * "<key> tokens" and the reply is a deterministic per-key value
 * sequence the model must memorize. x: [B,S] token ids; y: [B*S]
 * next-token targets (prompt positions carry the next prompt token,
 * reply positions the reply).
 */
class InstructionTask
{
  public:
    InstructionTask(uint64_t seed, int64_t num_keys, int64_t vocab,
                    int64_t seq_len);

    Batch sample(int64_t batch, Rng &rng) const;

    /**
     * Win-rate proxy: fraction of reply tokens predicted exactly
     * (greedy) from @p logits for the batch that produced them.
     * logits: [B*S, V]; y as produced by sample().
     */
    double exactMatch(const Tensor &logits, const Batch &batch) const;

    int64_t vocab() const { return vocab_; }
    int64_t seqLen() const { return seqLen_; }

  private:
    int64_t numKeys_, vocab_, seqLen_, promptLen_;
    std::vector<std::vector<int64_t>> replies_;
};

} // namespace pe
