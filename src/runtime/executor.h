/**
 * @file
 * The compiled-program executor: a flat list of kernel invocations
 * over one pre-planned arena. No graph interpretation, no dispatch
 * tables, no per-step allocation happens at run time — everything was
 * resolved at compile time (the paper's central systems argument).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "ir/graph.h"
#include "kernels/kernel.h"
#include "runtime/paramstore.h"
#include "runtime/planner.h"

namespace pe {

/** Executor construction options. */
struct ExecOptions {
    /** Kernel variant per node id ("" = default); from backend switch. */
    std::vector<std::string> variants;
};

/**
 * Executes a scheduled graph. Pointers are resolved once at
 * construction; run() is a straight loop over bound kernel calls.
 */
class Executor
{
  public:
    Executor(const Graph &g, std::vector<int> order, ParamStore &store,
             ExecOptions options = {});

    /** Point an Input node at caller-owned data (shape-checked). */
    void bindInput(const std::string &name, const Tensor &t);

    /** Execute one step (forward [+ backward + update] as compiled). */
    void run();

    /** Copy a value out of the arena/store (by node id). */
    Tensor fetch(int node_id) const;

    const MemoryPlan &memoryPlan() const { return plan_; }
    const Graph &graph() const { return g_; }
    const std::vector<int> &order() const { return order_; }
    int64_t stepCount() const { return step_; }

    /** Number of kernel invocations per step. */
    int numSteps() const { return static_cast<int>(steps_.size()); }

  private:
    struct BoundStep {
        int node;
        KernelFn fn;
        KernelCtx ctx;
        std::vector<const Shape *> shapes;
    };

    float *resolve(int id);

    const Graph &g_;
    std::vector<int> order_;
    ParamStore &store_;
    MemoryPlan plan_;
    std::vector<float> arena_;
    std::vector<Tensor> constBufs_;        ///< by node id (sparse)
    std::vector<const float *> inputPtrs_; ///< by node id
    std::vector<float *> valuePtr_;        ///< by node id
    std::vector<BoundStep> steps_;
    std::vector<std::vector<float>> scratch_; ///< by node id
    std::vector<char> scratchReady_;          ///< by node id
    std::vector<std::string> variants_;
    int64_t step_ = 0;
    bool bound_ = false;

    void bindSteps();
};

} // namespace pe
