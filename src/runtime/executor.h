/**
 * @file
 * The compiled-program executor: a flat list of kernel invocations
 * over one pre-planned byte arena. No graph interpretation, no
 * dispatch tables, no per-step allocation happens at run time —
 * everything was resolved at compile time (the paper's central
 * systems argument).
 *
 * Parallel execution keeps that invariant: bindInto() precomputes a
 * per-node launch plan (shard count and [begin, end) ranges over the
 * kernel's declared partition domain, one fully-bound KernelCtx per
 * shard, held by the ExecContext being bound), and run() only replays
 * it — dispatching each step's shards to the worker pool with a
 * barrier before the next step. With numThreads == 1 no shards are
 * built and run() is the same straight loop as before, bit for bit.
 *
 * Arena v2: kernel scratch is no longer ad-hoc per-node vectors. The
 * planner places every workspace in the arena (live only during its
 * step), bind resolves each shard's private instance and the node's
 * shared region to arena offsets, and the first run() executes the
 * declared init hooks serially (warming Winograd's cached transforms
 * before any sharded launch can race on them). Scratch-bearing
 * kernels therefore shard like any other.
 *
 * Sessions (serving runtime): the Executor itself is an IMMUTABLE
 * compiled program — graph, order, memory plan, const pool, launch
 * geometry. All per-run mutable state (the arena, input staging
 * buffers, shared-region warm-up flags, the step counter, and the
 * per-shard bound KernelCtx copies whose pointers land in the arena)
 * lives in an ExecContext. makeContext() mints additional contexts
 * over the same plan + frozen ParamStore, so N sessions execute the
 * one compiled program concurrently — one thread per context — with
 * no shared mutable state and no locking on the hot path. The classic
 * single-session API (run()/bindInput()/fetch()) operates on a
 * default context owned by the executor and behaves exactly as
 * before.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "hw/threadpool.h"
#include "ir/graph.h"
#include "kernels/kernel.h"
#include "obs/trace.h"
#include "runtime/arena.h"
#include "runtime/paramstore.h"
#include "runtime/planner.h"

namespace pe {

/** Executor construction options. */
struct ExecOptions {
    /** Kernel variant per node id ("" = default); from backend switch. */
    std::vector<std::string> variants;
    /**
     * Worker threads (including the calling thread) to split
     * partitionable kernels across. 1 = serial, bit-identical to the
     * single-threaded executor; <= 0 = all hardware threads.
     */
    int numThreads = 1;
    /**
     * Determinism escape hatch: bind scalar-tier kernels even when
     * the host has AVX2/NEON. int8 SIMD kernels are bit-exact to
     * scalar, so this only changes fp32 results (FMA rounding, see
     * the tolerance contract in kernel.h).
     */
    bool forceScalarTier = false;
    /**
     * Arm execution tracing on every context minted from this
     * program: each run() records one span per kernel step (node, op,
     * variant incl. SIMD tier, shard count, wall ns) — and one span
     * per shard when traceShards — into the context's fixed-capacity
     * TraceBuffer ring (src/obs/). Off (the default) costs the hot
     * loop a single pointer test; contexts can also be armed
     * individually after the fact via Executor::armTrace().
     */
    bool trace = false;
    /** Span-ring capacity of contexts armed by `trace`. */
    size_t traceCapacity = 1 << 14;
    /** Record per-shard spans (worker id, shard range, CPU ns) in
     *  addition to per-step spans. */
    bool traceShards = true;
};

/**
 * The full compiled product of one program, detached from any
 * executor: execution order, kernel-variant choices, the memory plan,
 * the launch geometry (per-step shard counts + thread count), and the
 * packed const pool (non-f32 consts already in their deployed byte
 * layout). An Executor can export one (savePlan) and be constructed
 * from one (loadPlan) — the artifact constructor performs ZERO
 * planner/scheduler invocations, which is what makes binary-plan
 * deployment "load and run" rather than "recompile" (src/plan/).
 */
struct ProgramArtifact {
    std::vector<int> order;
    std::vector<std::string> variants; ///< by node id ("" = default)
    MemoryPlan plan;
    /** Compile-time shard count per kernel step (planLaunches). */
    std::vector<int> shardsPerStep;
    int shardedSteps = 0;
    int serializedByWorkspace = 0;
    int numThreads = 1;
    /** Packed const buffers by node id (Const nodes only). Non-f32
     *  consts hold raw i8/f16 bytes exactly as kernels read them, so
     *  binding an artifact repacks nothing. */
    std::vector<Tensor> constPool;
};

/** One bound kernel invocation: the launch-plan unit an ExecContext
 *  replays. Pointer fields resolve into the owning context's arena
 *  (or the executor's shared const pool / ParamStore). */
struct BoundStep {
    int node;
    KernelFn fn;
    KernelCtx ctx;
    /** Warm-up hook: fills ctx.shared before the first run. */
    void (*init)(const KernelCtx &) = nullptr;
    /** Precomputed per-shard contexts; empty = run ctx serially. */
    std::vector<KernelCtx> shards;
};

/**
 * One session's mutable execution state over a compiled program: its
 * private arena (values + workspaces + shared regions), input staging
 * buffers, warm-up flags and step counter, plus the bound step list
 * whose pointers resolve into this context's storage. Contexts from
 * the same Executor share the graph, memory plan, kernel variants,
 * ParamStore and const pool strictly read-only, so distinct contexts
 * may run() concurrently from distinct threads. A single context is
 * NOT thread-safe — one in-flight request per context at a time.
 */
class ExecContext
{
  public:
    ExecContext() = default;
    ExecContext(const ExecContext &) = delete;
    ExecContext &operator=(const ExecContext &) = delete;

    /** Steps executed through this context so far. */
    int64_t stepCount() const { return step_; }

    /** This context's span ring; null while tracing is disarmed.
     *  Read it only between runs (see TraceBuffer's contract). */
    const TraceBuffer *trace() const { return trace_.get(); }

  private:
    friend class Executor;
    Arena arena_;                   ///< values + workspaces
    /** KV-cache region (Storage::Cache values). Zeroed ONCE at bind
     *  and never reset by run(): its contents — the session's cached
     *  K/V rows — are the state that must survive between runs. Only
     *  Executor::resetCache() (session recycle) re-zeroes it. */
    Arena cache_;
    std::vector<Tensor> inputBufs_; ///< by node id (Input staging)
    std::vector<BoundStep> steps_;
    /** Shared-region validity flags, by step index (stable storage
     *  for KernelCtx::sharedReady across shard copies). */
    std::vector<char> sharedReady_;
    int64_t step_ = 0;
    bool warm_ = false; ///< init hooks run on the first run()
    /** Armed span ring (null = disarmed, the hot-path test). */
    std::unique_ptr<TraceBuffer> trace_;
    bool traceShards_ = true;
};

/**
 * Executes a scheduled graph. Pointers are resolved once at
 * construction; run() is a straight loop over bound kernel calls.
 */
class Executor
{
  public:
    Executor(const Graph &g, std::vector<int> order, ParamStore &store,
             ExecOptions options = {});

    /**
     * Bind a deserialized compiled product: everything the planning
     * constructor computes (memory plan, launch geometry, packed
     * consts) is taken from @p art verbatim — planLaunches/planMemory
     * are NOT called (the plan loader asserts this via
     * pipelineCounters). Throws std::runtime_error when the artifact
     * is inconsistent with @p g.
     */
    Executor(const Graph &g, ProgramArtifact art, ParamStore &store);

    /** Copy out this program's compiled product (for savePlan). */
    ProgramArtifact exportArtifact() const;

    // ---- classic single-session API (the executor's own context) ----

    /** Point an Input node at caller-owned data (shape-checked). */
    void bindInput(const std::string &name, const Tensor &t);

    /** Node id of the Input named @p name; -1 if absent. Lets callers
     *  resolve the name once and bind by id in a hot loop. */
    int inputId(const std::string &name) const;

    /** bindInput without the name lookup (id from inputId()). */
    void bindInputById(int id, const Tensor &t);

    /** Execute one step (forward [+ backward + update] as compiled). */
    void run();

    /** Copy a value out of the arena/store (by node id). */
    Tensor fetch(int node_id) const;

    // ---- session API (serving runtime) ------------------------------

    /**
     * Mint a fresh session context over this compiled program: its
     * own zeroed arena and input staging, bound against the SAME
     * memory plan, const pool and ParamStore. Read-only w.r.t. the
     * executor, so concurrent makeContext() calls are safe; the
     * returned context must then be driven by one thread at a time.
     */
    std::unique_ptr<ExecContext> makeContext() const;

    /** bindInputById against @p ctx. */
    void bindInputById(ExecContext &ctx, int id, const Tensor &t) const;

    /**
     * Bind the first @p t.shape()[0] rows of Input @p id from @p t
     * and zero-fill the remaining rows — the pad-to-bucket serving
     * path. @p t must match the input's shape in every dim but the
     * first, with no more rows than the input declares.
     */
    void bindInputRows(ExecContext &ctx, int id, const Tensor &t) const;

    /**
     * Bind @p t's rows into Input @p id starting at row @p rowOffset
     * of the staging buffer, touching no other rows — the coalescing
     * serving path packs several requests' rows contiguously with
     * this, then zeroes the shared tail once via zeroInputRowsFrom().
     * @p t must match the input's shape in every dim but the first
     * and [rowOffset, rowOffset + rows) must fit the input's rows.
     */
    void bindInputRowsAt(ExecContext &ctx, int id, const Tensor &t,
                         int64_t rowOffset) const;

    /** Zero rows [@p fromRow, input rows) of Input @p id's staging —
     *  the pad tail of a coalesced group, zero-filled so the packed
     *  run is byte-identical to an explicitly padded one. */
    void zeroInputRowsFrom(ExecContext &ctx, int id,
                           int64_t fromRow) const;

    /** Execute one step on @p ctx. Touches only @p ctx's mutable
     *  state; distinct contexts may run concurrently. */
    void run(ExecContext &ctx) const;

    /** Copy a value out of @p ctx's arena (by node id). */
    Tensor fetch(const ExecContext &ctx, int node_id) const;

    // ---- KV-cache session state (generative serving) -----------------

    /** Extent of the per-context persistent cache region; 0 for every
     *  non-generative program. */
    int64_t cacheBytes() const { return plan_.cacheBytes; }

    /**
     * Re-zero @p ctx's cache region — the session-recycle boundary.
     * run() NEVER does this (cross-run persistence is the region's
     * whole contract), so a context handed to a new conversation must
     * be recycled explicitly or it will serve the old one's tokens.
     */
    void resetCache(ExecContext &ctx) const;

    /**
     * Copy rows [@p row0, @p row0 + @p rows) of cache value
     * @p node_id (a CacheWrite output) out of @p ctx as a [rows, D]
     * tensor. @p slot selects the leading-dim index of a rank-3
     * [B, maxSeq, D] cache; pass 0 for rank-2. This is the serving
     * runtime's scatter/gather half: per-stream authoritative state
     * lives engine-side, session contexts are just the run's staging.
     */
    Tensor fetchCacheRows(const ExecContext &ctx, int node_id,
                          int64_t slot, int64_t row0,
                          int64_t rows) const;

    /** Inverse of fetchCacheRows: copy @p t ([rows, D]) into rows
     *  [@p row0, @p row0 + rows) of cache value @p node_id, slot
     *  @p slot. Touches nothing else — surrounding rows keep their
     *  persisted contents. */
    void bindCacheRows(ExecContext &ctx, int node_id, int64_t slot,
                       int64_t row0, const Tensor &t) const;

    // ---- execution tracing (src/obs/) --------------------------------

    /**
     * Arm @p ctx with a fresh fixed-capacity span ring: every later
     * run(ctx) records per-step (and, when @p shardSpans, per-shard)
     * TraceSpans into it. Re-arming replaces the ring. The one
     * allocation happens here; the record path allocates nothing.
     */
    void armTrace(ExecContext &ctx, size_t capacity = 1 << 14,
                  bool shardSpans = true) const;

    /** Drop @p ctx's ring; run(ctx) returns to the untraced path. */
    void disarmTrace(ExecContext &ctx) const;

    /** armTrace on the classic API's default context. */
    void armTrace(size_t capacity = 1 << 14, bool shardSpans = true);

    /** The default context's ring; null while disarmed. */
    const TraceBuffer *trace() const
    {
        return defaultCtx_ ? defaultCtx_->trace() : nullptr;
    }

    // ---- program introspection --------------------------------------

    const MemoryPlan &memoryPlan() const { return plan_; }
    const Graph &graph() const { return g_; }
    const std::vector<int> &order() const { return order_; }
    int64_t stepCount() const
    {
        return defaultCtx_ ? defaultCtx_->stepCount() : 0;
    }

    /** Number of kernel invocations per step. */
    int numSteps() const { return numSteps_; }

    /** Steps whose launch plan has more than one shard. */
    int shardedSteps() const { return shardedSteps_; }

    /**
     * Splittable steps whose launch plan stayed serial only because
     * they carry a workspace — the pre-Arena-v2 rule. Always 0 now
     * (each shard gets its own planned workspace instance); exposed
     * so the compile report can assert the regression never returns.
     */
    int serializedByWorkspace() const { return serializedByWorkspace_; }

    /** Effective thread count of this executor's launch plan. */
    int numThreads() const { return numThreads_; }

    /** Kernel lookups that silently fell back to the default variant. */
    int fallbackCount() const { return static_cast<int>(fallbacks_.size()); }
    /** "op/variant" labels of those fallbacks (one per bound step). */
    const std::vector<std::string> &fallbackKernels() const
    {
        return fallbacks_;
    }

    /** The SIMD tier this program bound against (after any
     *  forceScalarTier override / artifact downgrade). */
    SimdTier simdTier() const { return tier_; }
    /** Steps bound to a SIMD-tier kernel variant. */
    int simdSteps() const { return simdSteps_; }
    /** Per-step tier name ("scalar"/"avx2"/"neon"), in step order. */
    const std::vector<std::string> &stepTiers() const
    {
        return stepTiers_;
    }

  private:
    float *resolve(ExecContext &ctx, int id) const;

    /** Shared ctor tail: count kernel steps + registry fallbacks. */
    void countStepsAndFallbacks();

    /**
     * Re-point every step's variant at the kernel tier this host can
     * actually execute. Planning path: upgrades scalar variants to
     * "@avx2"/"@neon" equivalents (tier variants register with the
     * scalar base's partition domain and workspace bytes, so launch
     * and memory planning see identical geometry). Artifact path:
     * additionally DOWNGRADES variants the local registry lacks —
     * a plan saved on an AVX2 box binds its scalar bases on a
     * SIMD-less host instead of dying in PlanUnknownKernel-style
     * failure — and accepts a swap only after proving it against the
     * deserialized plan (workspace fits the placement, launch
     * geometry reproduces shardsPerStep). @p checkPlan selects that
     * proof (artifact ctor); the planning ctor resolves before any
     * planning, so there is no plan to check against yet.
     */
    void retargetTiers(bool checkPlan);

    /** True when binding @p variant would reproduce the deserialized
     *  plan for step @p si of node @p id (see retargetTiers). */
    bool tierSwapFitsPlan(int id, int si,
                          const std::string &variant) const;

    /** Artifact-ctor validation: sizes/ids consistent with g_. */
    void validateArtifact() const;

    /** run(ctx) with @p tb armed: the same step loop, recording one
     *  span per step and (optionally) per shard. Kept out of line so
     *  the disarmed path stays the exact pre-tracing loop. */
    void runTraced(ExecContext &ctx, TraceBuffer &tb) const;

    /** Build @p ctx's arena, staging and bound steps. Mutates only
     *  @p ctx: program-level stats (step/shard counts, fallback
     *  labels, the serialized-by-workspace tripwire) come from the
     *  compile-time launch summary in the constructor, so contexts
     *  are interchangeable and bind is re-entrant. */
    void bindInto(ExecContext &ctx) const;

    /** The classic API's session, minted on first use so executors
     *  driven purely through makeContext() sessions (serving buckets)
     *  never allocate an arena they do not run on. */
    ExecContext &defaultCtx() const;

    const Graph &g_;
    std::vector<int> order_;
    ParamStore &store_;
    MemoryPlan plan_;
    std::vector<Tensor> constBufs_; ///< by node id; Const nodes only,
                                    ///< read-only, shared by contexts
    std::vector<std::string> variants_;
    std::vector<std::string> fallbacks_;
    SimdTier tier_ = SimdTier::Scalar;
    int simdSteps_ = 0;
    std::vector<std::string> stepTiers_; ///< tier name per step
    int numThreads_ = 1;
    int numSteps_ = 0;
    int shardedSteps_ = 0;
    int serializedByWorkspace_ = 0;
    /** Compile-time shard count per kernel step; bindInto verifies
     *  every context's bound plan against it (see planLaunches). */
    std::vector<int> shardsPerStep_;
    /** ExecOptions trace arming, applied to every makeContext(). */
    bool traceByDefault_ = false;
    size_t traceCapacity_ = 1 << 14;
    bool traceShards_ = true;
    ThreadPool *pool_ = nullptr; ///< owned by HostDevice; null if serial
    /** Lazy classic-API state; mutable so const reads (fetch) can
     *  mint it. The classic API is single-session by contract, so
     *  this involves no cross-thread sharing. */
    mutable std::unique_ptr<ExecContext> defaultCtx_;
};

} // namespace pe
