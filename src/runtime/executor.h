/**
 * @file
 * The compiled-program executor: a flat list of kernel invocations
 * over one pre-planned byte arena. No graph interpretation, no
 * dispatch tables, no per-step allocation happens at run time —
 * everything was resolved at compile time (the paper's central
 * systems argument).
 *
 * Parallel execution keeps that invariant: bindSteps() precomputes a
 * per-node launch plan (shard count and [begin, end) ranges over the
 * kernel's declared partition domain, one fully-bound KernelCtx per
 * shard), and run() only replays it — dispatching each step's shards
 * to the worker pool with a barrier before the next step. With
 * numThreads == 1 no plan is built and run() is the same straight
 * loop as before, bit for bit.
 *
 * Arena v2: kernel scratch is no longer ad-hoc per-node vectors. The
 * planner places every workspace in the arena (live only during its
 * step), bind resolves each shard's private instance and the node's
 * shared region to arena offsets, and the first run() executes the
 * declared init hooks serially (warming Winograd's cached transforms
 * before any sharded launch can race on them). Scratch-bearing
 * kernels therefore shard like any other.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "hw/threadpool.h"
#include "ir/graph.h"
#include "kernels/kernel.h"
#include "runtime/arena.h"
#include "runtime/paramstore.h"
#include "runtime/planner.h"

namespace pe {

/** Executor construction options. */
struct ExecOptions {
    /** Kernel variant per node id ("" = default); from backend switch. */
    std::vector<std::string> variants;
    /**
     * Worker threads (including the calling thread) to split
     * partitionable kernels across. 1 = serial, bit-identical to the
     * single-threaded executor; <= 0 = all hardware threads.
     */
    int numThreads = 1;
};

/**
 * Executes a scheduled graph. Pointers are resolved once at
 * construction; run() is a straight loop over bound kernel calls.
 */
class Executor
{
  public:
    Executor(const Graph &g, std::vector<int> order, ParamStore &store,
             ExecOptions options = {});

    /** Point an Input node at caller-owned data (shape-checked). */
    void bindInput(const std::string &name, const Tensor &t);

    /** Node id of the Input named @p name; -1 if absent. Lets callers
     *  resolve the name once and bind by id in a hot loop. */
    int inputId(const std::string &name) const;

    /** bindInput without the name lookup (id from inputId()). */
    void bindInputById(int id, const Tensor &t);

    /** Execute one step (forward [+ backward + update] as compiled). */
    void run();

    /** Copy a value out of the arena/store (by node id). */
    Tensor fetch(int node_id) const;

    const MemoryPlan &memoryPlan() const { return plan_; }
    const Graph &graph() const { return g_; }
    const std::vector<int> &order() const { return order_; }
    int64_t stepCount() const { return step_; }

    /** Number of kernel invocations per step. */
    int numSteps() const { return static_cast<int>(steps_.size()); }

    /** Steps whose launch plan has more than one shard. */
    int shardedSteps() const;

    /**
     * Splittable steps whose launch plan stayed serial only because
     * they carry a workspace — the pre-Arena-v2 rule. Always 0 now
     * (each shard gets its own planned workspace instance); exposed
     * so the compile report can assert the regression never returns.
     */
    int serializedByWorkspace() const { return serializedByWorkspace_; }

    /** Effective thread count of this executor's launch plan. */
    int numThreads() const { return numThreads_; }

    /** Kernel lookups that silently fell back to the default variant. */
    int fallbackCount() const { return static_cast<int>(fallbacks_.size()); }
    /** "op/variant" labels of those fallbacks (one per bound step). */
    const std::vector<std::string> &fallbackKernels() const
    {
        return fallbacks_;
    }

  private:
    struct BoundStep {
        int node;
        KernelFn fn;
        KernelCtx ctx;
        /** Warm-up hook: fills ctx.shared before the first run. */
        void (*init)(const KernelCtx &) = nullptr;
        /** Precomputed per-shard contexts; empty = run ctx serially. */
        std::vector<KernelCtx> shards;
    };

    float *resolve(int id);

    const Graph &g_;
    std::vector<int> order_;
    ParamStore &store_;
    MemoryPlan plan_;
    Arena arena_;                          ///< values + workspaces
    std::vector<Tensor> constBufs_;        ///< by node id (sparse)
    std::vector<const float *> inputPtrs_; ///< by node id
    std::vector<float *> valuePtr_;        ///< by node id
    std::vector<BoundStep> steps_;
    /** Shared-region validity flags, by step index (stable storage
     *  for KernelCtx::sharedReady across shard copies). */
    std::vector<char> sharedReady_;
    std::vector<std::string> variants_;
    std::vector<std::string> fallbacks_;
    int numThreads_ = 1;
    int serializedByWorkspace_ = 0;
    ThreadPool *pool_ = nullptr; ///< owned by HostDevice; null if serial
    int64_t step_ = 0;
    bool bound_ = false;
    bool warm_ = false; ///< init hooks run on the first run()

    void bindSteps();
};

} // namespace pe
