#include "runtime/planner.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pe {

namespace {

constexpr int64_t kAlign = 64;

int64_t
alignUp(int64_t v)
{
    return (v + kAlign - 1) / kAlign * kAlign;
}

/**
 * A simple address-ordered best-fit free list over one arena.
 * Allocation extends the arena when no block fits; frees coalesce
 * with neighbours.
 */
class FreeList
{
  public:
    int64_t
    alloc(int64_t bytes)
    {
        bytes = alignUp(bytes);
        // Best fit: smallest free block that fits.
        auto best = free_.end();
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (it->second >= bytes &&
                (best == free_.end() || it->second < best->second)) {
                best = it;
            }
        }
        if (best != free_.end()) {
            int64_t off = best->first;
            int64_t rest = best->second - bytes;
            free_.erase(best);
            if (rest > 0)
                free_[off + bytes] = rest;
            return off;
        }
        int64_t off = top_;
        top_ += bytes;
        return off;
    }

    void
    release(int64_t off, int64_t bytes)
    {
        bytes = alignUp(bytes);
        auto [it, ok] = free_.emplace(off, bytes);
        if (!ok)
            throw std::runtime_error("FreeList: double free");
        // Coalesce with next.
        auto next = std::next(it);
        if (next != free_.end() && it->first + it->second == next->first) {
            it->second += next->second;
            free_.erase(next);
        }
        // Coalesce with prev.
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second == it->first) {
                prev->second += it->second;
                free_.erase(it);
            }
        }
    }

    int64_t top() const { return top_; }

  private:
    std::map<int64_t, int64_t> free_; ///< offset -> size
    int64_t top_ = 0;
};

} // namespace

MemoryPlan
planMemory(const Graph &g, const std::vector<int> &order)
{
    int n = g.numNodes();
    MemoryPlan plan;
    plan.values.resize(n);

    std::vector<int> pos(n, -1);
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = static_cast<int>(i);

    // Classify storage and compute sizes.
    for (int id = 0; id < n; ++id) {
        const Node &node = g.node(id);
        ValuePlacement &v = plan.values[id];
        v.bytes = numel(node.shape) * 4;
        v.defPos = pos[id];
        if (node.op == OpKind::Param) {
            v.storage = Storage::Param;
            plan.paramBytes += v.bytes;
        } else if (node.op == OpKind::Const) {
            v.storage = Storage::ConstBuf;
            plan.constBytes += v.bytes;
        } else if (node.op == OpKind::Input) {
            v.storage = Storage::External;
            plan.inputBytes += v.bytes;
        } else if (isInPlaceOp(node.op)) {
            v.storage = Storage::Alias;
        } else {
            v.storage = Storage::Arena;
        }
    }

    // Lifetimes: last position among consumers (and self).
    for (int id = 0; id < n; ++id) {
        if (pos[id] < 0)
            continue;
        plan.values[id].lastUsePos = pos[id];
    }
    for (int oid : order) {
        const Node &node = g.node(oid);
        for (int in : node.inputs) {
            plan.values[in].lastUsePos =
                std::max(plan.values[in].lastUsePos, pos[oid]);
        }
        // An in-place op extends the lifetime of the aliased value's
        // chain implicitly; params are persistent anyway.
    }
    for (int out : g.outputs()) {
        plan.values[out].lastUsePos = static_cast<int>(order.size());
    }

    // Greedy allocation sweep in execution order.
    FreeList arena;
    // Group frees by position for O(n) sweep.
    std::vector<std::vector<int>> frees_at(order.size() + 2);
    for (int id = 0; id < n; ++id) {
        const ValuePlacement &v = plan.values[id];
        if (v.storage == Storage::Arena && v.defPos >= 0 &&
            v.lastUsePos <= static_cast<int>(order.size())) {
            size_t slot = std::min<size_t>(v.lastUsePos + 1,
                                           frees_at.size() - 1);
            frees_at[slot].push_back(id);
        }
    }
    for (size_t step = 0; step < order.size(); ++step) {
        for (int id : frees_at[step]) {
            arena.release(plan.values[id].offset, plan.values[id].bytes);
        }
        int oid = order[step];
        ValuePlacement &v = plan.values[oid];
        if (v.storage == Storage::Arena)
            v.offset = arena.alloc(v.bytes);
    }
    plan.arenaBytes = arena.top();
    return plan;
}

} // namespace pe
