#include "runtime/planner.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>

#include "hw/threadpool.h"
#include "kernels/kernel.h"

namespace pe {

namespace {

constexpr int64_t kAlign = 64;

int64_t
alignUp(int64_t v)
{
    return (v + kAlign - 1) / kAlign * kAlign;
}

/**
 * A simple address-ordered best-fit free list over one arena.
 * Allocation extends the arena when no block fits; frees coalesce
 * with neighbours.
 */
class FreeList
{
  public:
    int64_t
    alloc(int64_t bytes)
    {
        bytes = alignUp(bytes);
        // Best fit: smallest free block that fits.
        auto best = free_.end();
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (it->second >= bytes &&
                (best == free_.end() || it->second < best->second)) {
                best = it;
            }
        }
        if (best != free_.end()) {
            int64_t off = best->first;
            int64_t rest = best->second - bytes;
            free_.erase(best);
            if (rest > 0)
                free_[off + bytes] = rest;
            return off;
        }
        int64_t off = top_;
        top_ += bytes;
        return off;
    }

    void
    release(int64_t off, int64_t bytes)
    {
        bytes = alignUp(bytes);
        auto [it, ok] = free_.emplace(off, bytes);
        if (!ok)
            throw std::runtime_error("FreeList: double free");
        // Coalesce with next.
        auto next = std::next(it);
        if (next != free_.end() && it->first + it->second == next->first) {
            it->second += next->second;
            free_.erase(next);
        }
        // Coalesce with prev.
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second == it->first) {
                prev->second += it->second;
                free_.erase(it);
            }
        }
    }

    int64_t top() const { return top_; }

  private:
    std::map<int64_t, int64_t> free_; ///< offset -> size
    int64_t top_ = 0;
};

/** Storage dtype of a value: the node's inferred tag (i8/f16 appear
 *  downstream of the QuantizePass; everything else is fp32). */
DType
dtypeOf(const Node &n)
{
    return n.dtype;
}

/** Total per-step block of a workspace placement (all shard
 *  instances, each padded to its aligned stride). */
int64_t
shardBlockBytes(int shards, int64_t bytesPerShard)
{
    return static_cast<int64_t>(shards) * alignUp(bytesPerShard);
}

// The pipeline-stage invocation counters the binary-plan loader
// asserts stay flat across a load (see PipelineCounters). Plain
// atomics: incremented on compile paths only, never on the hot path.
std::atomic<int64_t> g_planMemoryCalls{0};
std::atomic<int64_t> g_planLaunchesCalls{0};
std::atomic<int64_t> g_reorderCalls{0};
std::atomic<int64_t> g_quantizePassCalls{0};

} // namespace

PipelineCounters
pipelineCounters()
{
    PipelineCounters c;
    c.planMemory = g_planMemoryCalls.load(std::memory_order_relaxed);
    c.planLaunches = g_planLaunchesCalls.load(std::memory_order_relaxed);
    c.reorder = g_reorderCalls.load(std::memory_order_relaxed);
    c.quantizePass = g_quantizePassCalls.load(std::memory_order_relaxed);
    return c;
}

namespace detail {

void
countReorderInvocation()
{
    g_reorderCalls.fetch_add(1, std::memory_order_relaxed);
}

void
countQuantizePassInvocation()
{
    g_quantizePassCalls.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

MemoryPlan
planMemory(const Graph &g, const std::vector<int> &order,
           const std::vector<WorkspaceRequest> &workspaces)
{
    g_planMemoryCalls.fetch_add(1, std::memory_order_relaxed);
    int n = g.numNodes();
    MemoryPlan plan;
    plan.values.resize(n);

    std::vector<int> pos(n, -1);
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = static_cast<int>(i);

    // Classify storage and compute sizes.
    for (int id = 0; id < n; ++id) {
        const Node &node = g.node(id);
        ValuePlacement &v = plan.values[id];
        v.dtype = dtypeOf(node);
        v.bytes = numel(node.shape) * dtypeSize(v.dtype);
        v.defPos = pos[id];
        if (node.op == OpKind::Param) {
            v.storage = Storage::Param;
            plan.paramBytes += v.bytes;
        } else if (node.op == OpKind::Const) {
            v.storage = Storage::ConstBuf;
            plan.constBytes += v.bytes;
            plan.constBytesByDtype[static_cast<int>(v.dtype)] += v.bytes;
        } else if (node.op == OpKind::Input) {
            v.storage = Storage::External;
            plan.inputBytes += v.bytes;
        } else if (isInPlaceOp(node.op)) {
            v.storage = Storage::Alias;
        } else if (node.op == OpKind::CacheWrite) {
            // Cross-run lifetime: packed monotonically into the
            // per-context cache region, never released — the greedy
            // sweep below deals only in within-run lifetimes and
            // never sees these values.
            v.storage = Storage::Cache;
            if (pos[id] >= 0) {
                v.offset = alignUp(plan.cacheBytes);
                plan.cacheBytes = v.offset + v.bytes;
            }
        } else {
            v.storage = Storage::Arena;
            if (pos[id] >= 0) { // scheduled: actually materialized
                plan.arenaValueBytesByDtype[static_cast<int>(v.dtype)] +=
                    v.bytes;
            }
        }
    }

    // Lifetimes: last position among consumers (and self).
    for (int id = 0; id < n; ++id) {
        if (pos[id] < 0)
            continue;
        plan.values[id].lastUsePos = pos[id];
    }
    for (int oid : order) {
        const Node &node = g.node(oid);
        for (int in : node.inputs) {
            plan.values[in].lastUsePos =
                std::max(plan.values[in].lastUsePos, pos[oid]);
        }
        // An in-place op extends the lifetime of the aliased value's
        // chain implicitly; params are persistent anyway.
    }
    for (int out : g.outputs()) {
        plan.values[out].lastUsePos = static_cast<int>(order.size());
    }

    FreeList arena;
    int64_t live = 0;      ///< running live bytes (aligned)
    int64_t sharedTotal = 0;

    // Shared workspace regions (cached Winograd transforms) persist
    // across steps: carve them out first so they sit at the bottom of
    // the arena and never fragment the per-step churn above them.
    plan.workspaces.reserve(workspaces.size());
    std::vector<int> wsAtPos(order.size(), -1);
    for (const WorkspaceRequest &req : workspaces) {
        if (req.node < 0 || req.node >= n || pos[req.node] < 0)
            throw std::runtime_error(
                "planMemory: workspace request for unscheduled node");
        WorkspacePlacement w;
        w.node = req.node;
        w.stepPos = pos[req.node];
        w.shards = std::max(1, req.shards);
        w.bytesPerShard = req.bytesPerShard;
        w.shardStride = alignUp(req.bytesPerShard);
        w.sharedBytes = req.sharedBytes;
        if (w.sharedBytes > 0) {
            w.sharedOffset = arena.alloc(w.sharedBytes);
            sharedTotal += alignUp(w.sharedBytes);
        }
        int idx = static_cast<int>(plan.workspaces.size());
        if (wsAtPos[w.stepPos] != -1)
            throw std::runtime_error(
                "planMemory: duplicate workspace request for one step");
        wsAtPos[w.stepPos] = idx;
        plan.workspaces.push_back(w);
    }
    live += sharedTotal;

    // Greedy allocation sweep in execution order. Workspaces are
    // interval-allocated exactly like values, with a one-step
    // lifetime: alloc at their step, free before the next step's
    // allocations — so best-fit recycles scratch space across steps
    // and between scratch and values.
    std::vector<std::vector<int>> frees_at(order.size() + 2);
    for (int id = 0; id < n; ++id) {
        const ValuePlacement &v = plan.values[id];
        if (v.storage == Storage::Arena && v.defPos >= 0 &&
            v.lastUsePos <= static_cast<int>(order.size())) {
            size_t slot = std::min<size_t>(v.lastUsePos + 1,
                                           frees_at.size() - 1);
            frees_at[slot].push_back(id);
        }
    }
    plan.liveBytesAtStep.assign(order.size(), 0);
    int64_t peakWsBlock = 0;
    int prevWs = -1;
    for (size_t step = 0; step < order.size(); ++step) {
        for (int id : frees_at[step]) {
            arena.release(plan.values[id].offset, plan.values[id].bytes);
            live -= alignUp(plan.values[id].bytes);
        }
        if (prevWs >= 0) {
            WorkspacePlacement &w = plan.workspaces[prevWs];
            int64_t block = shardBlockBytes(w.shards, w.bytesPerShard);
            if (block > 0)
                arena.release(w.offset, block);
            live -= block;
            prevWs = -1;
        }
        // Workspace before value: successive scratch-bearing steps
        // then exact-fit each other's just-released blocks instead of
        // having the step's output nibble the front of them.
        if (wsAtPos[step] >= 0) {
            WorkspacePlacement &w = plan.workspaces[wsAtPos[step]];
            int64_t block = shardBlockBytes(w.shards, w.bytesPerShard);
            if (block > 0)
                w.offset = arena.alloc(block);
            live += block;
            peakWsBlock = std::max(peakWsBlock, block);
            prevWs = wsAtPos[step];
        }
        int oid = order[step];
        ValuePlacement &v = plan.values[oid];
        if (v.storage == Storage::Arena) {
            v.offset = arena.alloc(v.bytes);
            live += alignUp(v.bytes);
        }
        plan.liveBytesAtStep[step] = live;
        plan.peakLiveBytes = std::max(plan.peakLiveBytes, live);
    }
    plan.arenaBytes = arena.top();
    plan.workspaceBytes = sharedTotal + peakWsBlock;
    return plan;
}

LaunchSummary
planLaunches(const Graph &g, const std::vector<int> &order,
             const std::vector<std::string> &variants, int numThreads)
{
    g_planLaunchesCalls.fetch_add(1, std::memory_order_relaxed);
    detail::ensureKernelsRegistered();
    LaunchSummary out;
    for (int id : order) {
        const Node &n = g.node(id);
        if (isSourceOp(n.op))
            continue;
        std::string variant =
            id < static_cast<int>(variants.size()) ? variants[id] : "";
        KernelInfo info = lookupKernelInfo(n.op, variant);

        // Dry context: shapes and attrs only. PartitionSpec extents
        // are required to depend on nothing else, so the launch shape
        // computed here is EXACTLY the one the executor binds.
        KernelCtx ctx;
        ctx.node = &n;
        for (int in : n.inputs)
            ctx.inShapes.push_back(&g.node(in).shape);
        ctx.outShape = &n.shape;

        int shards = 1;
        if (numThreads > 1 && info.part.splittable()) {
            std::vector<int64_t> bounds = splitRange(
                info.part.extent(ctx), info.part.minGrain, numThreads);
            shards = std::max<int>(
                1, static_cast<int>(bounds.size()) - 1);
        }
        if (shards > 1)
            ++out.shardedSteps;
        out.shardsPerStep.push_back(shards);

        WorkspaceSpec ws =
            info.workspace ? info.workspace(g, n) : WorkspaceSpec{};
        if (ws.any()) {
            WorkspaceRequest req;
            req.node = id;
            req.bytesPerShard = ws.bytesPerShard;
            req.shards = shards;
            req.sharedBytes = ws.sharedBytes;
            out.workspaces.push_back(req);
        }
    }
    // serializedByWorkspace stays 0 here BY CONSTRUCTION: the shard
    // counts above never consult the workspace, which is Arena v2's
    // whole point. The tripwire is shardsPerStep: every context bind
    // (Executor::bindInto) verifies its actually-bound shard count
    // against this summary and THROWS on divergence, so a
    // reintroduced scratch-serializes-kernels gate fails the first
    // bind instead of silently zeroing the report field.
    return out;
}

} // namespace pe
