/**
 * @file
 * The runtime arena: one cache-line-aligned byte buffer backing every
 * planned placement — activations, gradients, temporaries, and (since
 * Arena v2) kernel workspaces. The executor resolves each placement
 * to `data() + offset` once at bind time; nothing is allocated per
 * step. Offsets come from the planner and are 64-byte aligned, so a
 * 64-byte-aligned base keeps every placement aligned for SIMD loads
 * regardless of dtype.
 */

#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

namespace pe {

class Arena
{
  public:
    Arena() = default;

    explicit Arena(int64_t bytes) { reset(bytes); }

    ~Arena() { std::free(buf_); }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    Arena(Arena &&o) noexcept : buf_(o.buf_), bytes_(o.bytes_)
    {
        o.buf_ = nullptr;
        o.bytes_ = 0;
    }

    Arena &
    operator=(Arena &&o) noexcept
    {
        if (this != &o) {
            std::free(buf_);
            buf_ = o.buf_;
            bytes_ = o.bytes_;
            o.buf_ = nullptr;
            o.bytes_ = 0;
        }
        return *this;
    }

    /** (Re)allocate to @p bytes, zero-filled. Previous contents are
     *  dropped — the executor sizes the arena exactly once at bind. */
    void
    reset(int64_t bytes)
    {
        std::free(buf_);
        buf_ = nullptr;
        bytes_ = bytes;
        if (bytes > 0) {
            // Round up: aligned_alloc requires size % alignment == 0.
            size_t padded =
                (static_cast<size_t>(bytes) + kAlign - 1) / kAlign *
                kAlign;
            buf_ = static_cast<uint8_t *>(
                std::aligned_alloc(kAlign, padded));
            if (!buf_)
                throw std::bad_alloc();
            std::memset(buf_, 0, padded);
        }
    }

    uint8_t *data() { return buf_; }
    const uint8_t *data() const { return buf_; }
    int64_t bytes() const { return bytes_; }

    /** Typed view of the placement at @p byteOffset. */
    template <typename T>
    T *
    at(int64_t byteOffset)
    {
        return reinterpret_cast<T *>(buf_ + byteOffset);
    }

    static constexpr size_t kAlign = 64;

  private:
    uint8_t *buf_ = nullptr;
    int64_t bytes_ = 0;
};

} // namespace pe
