/**
 * @file
 * Persistent parameter storage, keyed by the unique Param-node name.
 *
 * Parameters, optimizer state and frozen weights live here, outside
 * the activation arena; the in-place optimizer ops mutate these
 * buffers directly so no separate "gradient application" runtime pass
 * exists (paper Section 3.2).
 */

#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/tensor.h"
#include "ir/graph.h"

namespace pe {

class ParamStore
{
  public:
    /** Register (or replace) a parameter tensor. */
    void
    set(const std::string &name, Tensor t)
    {
        store_[name] = std::move(t);
    }

    bool has(const std::string &name) const { return store_.count(name); }

    Tensor &
    get(const std::string &name)
    {
        auto it = store_.find(name);
        if (it == store_.end())
            throw std::runtime_error("ParamStore: missing param " + name);
        return it->second;
    }

    const Tensor &
    get(const std::string &name) const
    {
        return const_cast<ParamStore *>(this)->get(name);
    }

    /**
     * Ensure every Param node in @p g has a tensor; missing entries
     * are zero-initialized (optimizer state relies on this).
     * @return bytes of parameter storage referenced by @p g.
     */
    int64_t
    materialize(const Graph &g)
    {
        int64_t bytes = 0;
        for (int id : g.paramIds()) {
            const Node &n = g.node(id);
            if (!has(n.name))
                set(n.name, Tensor::zeros(n.shape));
            if (get(n.name).shape() != n.shape)
                throw std::runtime_error("ParamStore: shape mismatch for " +
                                         n.name);
            bytes += numel(n.shape) * 4;
        }
        return bytes;
    }

    size_t size() const { return store_.size(); }

    const std::unordered_map<std::string, Tensor> &
    all() const
    {
        return store_;
    }

  private:
    std::unordered_map<std::string, Tensor> store_;
};

} // namespace pe
