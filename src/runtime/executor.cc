#include "runtime/executor.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "ir/op.h"
#include "quant/quant.h"

namespace pe {

Executor::Executor(const Graph &g, std::vector<int> order,
                   ParamStore &store, ExecOptions options)
    : g_(g), order_(std::move(order)), store_(store),
      variants_(std::move(options.variants)),
      numThreads_(options.numThreads <= 0 ? HostDevice::hardwareThreads()
                                          : options.numThreads),
      traceByDefault_(options.trace),
      traceCapacity_(options.traceCapacity),
      traceShards_(options.traceShards)
{
    detail::ensureKernelsRegistered();
    pool_ = HostDevice::instance().pool(numThreads_);
    variants_.resize(g_.numNodes());
    store_.materialize(g_);

    // Bind-time tier selection happens BEFORE launch/memory planning
    // so the plan describes exactly the kernels that will run (tier
    // variants declare the scalar base's partition and workspace, so
    // the plan is also valid for the base — that is what lets a saved
    // plan downgrade on a SIMD-less host).
    tier_ = options.forceScalarTier ? SimdTier::Scalar : hostSimdTier();
    retargetTiers(/*checkPlan=*/false);

    // Plan launch shapes from static shapes, then hand the resulting
    // workspace intervals to the memory planner: one arena holds
    // values AND kernel scratch, so the reported footprint is honest.
    // The summary's shard statistics ARE the bound plan's (both
    // derive from the same PartitionSpec extents and splitRange), so
    // program-level stats need no context bind.
    LaunchSummary launches =
        planLaunches(g_, order_, variants_, numThreads_);
    plan_ = planMemory(g_, order_, launches.workspaces);
    shardedSteps_ = launches.shardedSteps;
    serializedByWorkspace_ = launches.serializedByWorkspace;
    shardsPerStep_ = std::move(launches.shardsPerStep);
    countStepsAndFallbacks();

    // Materialize constants. Non-f32 constants (pre-quantized i8
    // weights) pack their integer values into raw byte storage: the
    // graph-side const data stays a float tensor of exact small
    // integers, but kernels read the buffer as int8_t*/uint16_t*,
    // sized by the placement's dtype. The const pool is immutable
    // after this loop and shared read-only by every session context.
    constBufs_.resize(g_.numNodes());
    for (int id = 0; id < g_.numNodes(); ++id) {
        const Node &n = g_.node(id);
        if (n.op != OpKind::Const)
            continue;
        if (n.dtype == DType::F32) {
            constBufs_[id] = g_.hasConstData(id)
                                 ? g_.constData(id).clone()
                                 : Tensor::zeros(n.shape);
        } else {
            int64_t bytes = numel(n.shape) * dtypeSize(n.dtype);
            Tensor packed({(bytes + 3) / 4});
            if (g_.hasConstData(id)) {
                const Tensor &v = g_.constData(id);
                if (n.dtype == DType::I8) {
                    int8_t *p =
                        reinterpret_cast<int8_t *>(packed.data());
                    for (int64_t i = 0; i < v.size(); ++i)
                        p[i] = static_cast<int8_t>(v[i]);
                } else {
                    uint16_t *p =
                        reinterpret_cast<uint16_t *>(packed.data());
                    for (int64_t i = 0; i < v.size(); ++i)
                        p[i] = floatToHalf(v[i]);
                }
            }
            constBufs_[id] = std::move(packed);
        }
    }
}

Executor::Executor(const Graph &g, ProgramArtifact art,
                   ParamStore &store)
    : g_(g), order_(std::move(art.order)), store_(store),
      variants_(std::move(art.variants)),
      numThreads_(art.numThreads <= 0 ? HostDevice::hardwareThreads()
                                      : art.numThreads)
{
    detail::ensureKernelsRegistered();
    pool_ = HostDevice::instance().pool(numThreads_);
    plan_ = std::move(art.plan);
    shardedSteps_ = art.shardedSteps;
    serializedByWorkspace_ = art.serializedByWorkspace;
    shardsPerStep_ = std::move(art.shardsPerStep);
    constBufs_ = std::move(art.constPool);
    validateArtifact();
    store_.materialize(g_);
    // Deploy-time tier resolution: a plan compiled with "@avx2"
    // variants loads on any host — variants this registry lacks are
    // downgraded to their scalar base, and scalar variants may be
    // upgraded to this host's tier, but only when the swap provably
    // reproduces the deserialized plan's workspace and launch
    // geometry (tierSwapFitsPlan).
    tier_ = hostSimdTier();
    retargetTiers(/*checkPlan=*/true);
    countStepsAndFallbacks();
    // No planLaunches/planMemory and no const repacking happened
    // above: binding a deserialized plan is pointer resolution only.
    // bindInto()'s shard-count tripwire still cross-checks the
    // artifact's launch geometry against what the registry's
    // PartitionSpecs produce on THIS machine at first context bind.
}

ProgramArtifact
Executor::exportArtifact() const
{
    ProgramArtifact art;
    art.order = order_;
    art.variants = variants_;
    art.plan = plan_;
    art.shardsPerStep = shardsPerStep_;
    art.shardedSteps = shardedSteps_;
    art.serializedByWorkspace = serializedByWorkspace_;
    art.numThreads = numThreads_;
    art.constPool = constBufs_;
    return art;
}

void
Executor::countStepsAndFallbacks()
{
    for (int id : order_) {
        const Node &n = g_.node(id);
        if (isSourceOp(n.op))
            continue;
        ++numSteps_;
        if (lookupKernelInfo(n.op, variants_[id]).fellBack)
            fallbacks_.push_back(std::string(opName(n.op)) + "/" +
                                 variants_[id]);
        SimdTier vt = variantTier(variants_[id]);
        stepTiers_.push_back(simdTierName(vt));
        if (vt != SimdTier::Scalar)
            ++simdSteps_;
    }
}

void
Executor::retargetTiers(bool checkPlan)
{
    int si = 0;
    for (int id : order_) {
        const Node &n = g_.node(id);
        if (isSourceOp(n.op))
            continue;
        int step = si++;
        const std::string cur = variants_[id];
        std::string want = resolveTierVariant(n.op, cur, tier_);
        if (want == cur)
            continue;
        if (checkPlan) {
            // A host-tier upgrade of a variant this registry DOES
            // have is optional — keep the planned kernel unless the
            // swap provably binds against the deserialized plan. A
            // variant the registry LACKS must move regardless (its
            // lookup would otherwise fall back to "", which has the
            // wrong workspace/partition shape); prefer the tier
            // candidate if it fits, else the scalar base the plan's
            // geometry was derived from.
            bool mandatory = !hasKernelVariant(n.op, cur);
            if (!tierSwapFitsPlan(id, step, want)) {
                if (!mandatory)
                    continue;
                want = scalarVariantOf(cur);
            }
        }
        variants_[id] = want;
    }
}

bool
Executor::tierSwapFitsPlan(int id, int si,
                           const std::string &variant) const
{
    const Node &n = g_.node(id);
    KernelInfo info = lookupKernelInfo(n.op, variant);
    if (info.fellBack)
        return false;

    const WorkspacePlacement *wsp = nullptr;
    for (const WorkspacePlacement &w : plan_.workspaces) {
        if (w.node == id)
            wsp = &w;
    }
    WorkspaceSpec spec =
        info.workspace ? info.workspace(g_, n) : WorkspaceSpec{};
    if (spec.bytesPerShard > 0 &&
        (!wsp || wsp->bytesPerShard < spec.bytesPerShard))
        return false;
    if (spec.sharedBytes > 0 &&
        (!wsp || wsp->sharedBytes < spec.sharedBytes))
        return false;

    // Launch geometry: replay bindInto's shard computation for this
    // candidate (extents are compared by VALUE — tier kernels
    // register their own extent functions, so pointer identity says
    // nothing) and require the artifact's compile-time shard count.
    KernelCtx probe;
    probe.node = &n;
    probe.outShape = &n.shape;
    for (int in : n.inputs)
        probe.inShapes.push_back(&g_.node(in).shape);
    int shards = 1;
    if (pool_ && info.part.splittable()) {
        std::vector<int64_t> bounds = splitRange(
            info.part.extent(probe), info.part.minGrain, numThreads_);
        if (bounds.size() > 2)
            shards = static_cast<int>(bounds.size()) - 1;
    }
    if (shards != shardsPerStep_[si])
        return false;
    if (wsp && shards > wsp->shards)
        return false;
    return true;
}

void
Executor::validateArtifact() const
{
    const int n = g_.numNodes();
    if (static_cast<int>(variants_.size()) != n)
        throw std::runtime_error(
            "Executor: artifact variants do not cover the graph");
    if (static_cast<int>(plan_.values.size()) != n)
        throw std::runtime_error(
            "Executor: artifact memory plan does not cover the graph");
    if (order_.empty())
        throw std::runtime_error("Executor: artifact order is empty");
    std::vector<char> seen(n, 0);
    for (int id : order_) {
        if (id < 0 || id >= n || seen[id])
            throw std::runtime_error(
                "Executor: artifact order is not a permutation of "
                "node ids");
        seen[id] = 1;
    }
    int steps = 0;
    for (int id : order_) {
        if (!isSourceOp(g_.node(id).op))
            ++steps;
    }
    if (static_cast<int>(shardsPerStep_.size()) != steps)
        throw std::runtime_error(
            "Executor: artifact launch geometry does not match the "
            "step count");
    if (static_cast<int>(constBufs_.size()) != n)
        throw std::runtime_error(
            "Executor: artifact const pool does not cover the graph");
    // Placement bounds. Every offset/size below is file-controlled in
    // the loadPlan path, so the checks must hold for ADVERSARIAL
    // values too: reject negatives outright and compare extents in
    // 128-bit so no crafted int64 can overflow the comparison itself.
    if (plan_.arenaBytes < 0)
        throw std::runtime_error(
            "Executor: artifact arena extent is negative");
    if (plan_.cacheBytes < 0)
        throw std::runtime_error(
            "Executor: artifact cache extent is negative");
    auto fits = [&](int64_t offset, int64_t bytes) {
        return offset >= 0 && bytes >= 0 &&
               static_cast<__int128>(offset) + bytes <=
                   plan_.arenaBytes;
    };
    // Cache placements are bounded by the CACHE region, not the
    // arena: a tampered offset that fits the (usually larger) arena
    // must still be rejected here.
    auto fitsCache = [&](int64_t offset, int64_t bytes) {
        return offset >= 0 && bytes >= 0 &&
               static_cast<__int128>(offset) + bytes <=
                   plan_.cacheBytes;
    };
    for (int id = 0; id < n; ++id) {
        const Node &node = g_.node(id);
        for (int in : node.inputs) {
            if (in < 0 || in >= n)
                throw std::runtime_error(
                    "Executor: artifact graph has out-of-range "
                    "input ids");
        }
        if (node.op == OpKind::Const && !constBufs_[id].defined())
            throw std::runtime_error(
                "Executor: artifact const pool is missing a Const "
                "buffer");
        const ValuePlacement &v = plan_.values[id];
        // Storage class is a FUNCTION of the op (planMemory's
        // classification); a crafted tag — External on a Mul, say —
        // would dereference unallocated staging at bind.
        Storage want = node.op == OpKind::Param ? Storage::Param
                       : node.op == OpKind::Const ? Storage::ConstBuf
                       : node.op == OpKind::Input ? Storage::External
                       : isInPlaceOp(node.op)    ? Storage::Alias
                       : node.op == OpKind::CacheWrite
                           ? Storage::Cache
                           : Storage::Arena;
        if (v.storage != want)
            throw std::runtime_error(
                "Executor: artifact storage class does not match "
                "the node's op");
        if (v.dtype != node.dtype)
            throw std::runtime_error(
                "Executor: artifact placement dtype does not match "
                "the node");
        // Overflow-safe element count; kernels write numel(shape)
        // elements, so the placement MUST be sized for exactly that.
        __int128 ne = 1;
        for (int64_t d : node.shape) {
            if (d < 0 ||
                (d > 0 &&
                 ne > std::numeric_limits<int64_t>::max() / d))
                throw std::runtime_error(
                    "Executor: artifact shape is negative or "
                    "overflows");
            ne *= d;
        }
        if (v.storage == Storage::Arena &&
            (ne * dtypeSize(v.dtype) != v.bytes ||
             !fits(v.offset, v.bytes)))
            throw std::runtime_error(
                "Executor: artifact placement does not fit its "
                "value inside the arena");
        if (v.storage == Storage::Cache &&
            (ne * dtypeSize(v.dtype) != v.bytes ||
             !fitsCache(v.offset, v.bytes)))
            throw std::runtime_error(
                "Executor: artifact cache placement does not fit "
                "inside the cache region");
    }
    // Alias chains: resolve() walks input 0 until a non-alias
    // placement, so every alias node needs an input and the chain
    // must terminate (a crafted cycle would otherwise recurse
    // forever; input ids were range-checked above).
    for (int id = 0; id < n; ++id) {
        if (plan_.values[id].storage != Storage::Alias)
            continue;
        int cur = id, hops = 0;
        while (plan_.values[cur].storage == Storage::Alias) {
            if (g_.node(cur).inputs.empty())
                throw std::runtime_error(
                    "Executor: artifact aliases a node with no "
                    "inputs");
            cur = g_.node(cur).inputs[0];
            if (++hops > n)
                throw std::runtime_error(
                    "Executor: artifact alias chain does not "
                    "terminate");
        }
    }
    for (const WorkspacePlacement &w : plan_.workspaces) {
        if (w.node < 0 || w.node >= n)
            throw std::runtime_error(
                "Executor: artifact workspace names a bad node");
        if (w.shards < 1 || w.bytesPerShard < 0 ||
            w.shardStride < 0 || w.sharedBytes < 0)
            throw std::runtime_error(
                "Executor: artifact workspace has negative sizes");
        if (w.bytesPerShard > 0) {
            if (w.shards > 1 && w.shardStride < w.bytesPerShard)
                throw std::runtime_error(
                    "Executor: artifact workspace shards overlap");
            __int128 top = static_cast<__int128>(w.offset) +
                           static_cast<__int128>(w.shards - 1) *
                               w.shardStride +
                           w.bytesPerShard;
            if (w.offset < 0 || top > plan_.arenaBytes)
                throw std::runtime_error(
                    "Executor: artifact workspace exceeds the arena");
        }
        if (w.sharedBytes > 0 &&
            !fits(w.sharedOffset, w.sharedBytes))
            throw std::runtime_error(
                "Executor: artifact shared region exceeds the arena");
    }
}

std::unique_ptr<ExecContext>
Executor::makeContext() const
{
    auto ctx = std::make_unique<ExecContext>();
    bindInto(*ctx);
    if (traceByDefault_)
        armTrace(*ctx, traceCapacity_, traceShards_);
    return ctx;
}

void
Executor::armTrace(ExecContext &ctx, size_t capacity,
                   bool shardSpans) const
{
    ctx.trace_ = std::make_unique<TraceBuffer>(capacity);
    ctx.traceShards_ = shardSpans;
}

void
Executor::disarmTrace(ExecContext &ctx) const
{
    ctx.trace_.reset();
}

void
Executor::armTrace(size_t capacity, bool shardSpans)
{
    armTrace(defaultCtx(), capacity, shardSpans);
}

ExecContext &
Executor::defaultCtx() const
{
    if (!defaultCtx_)
        defaultCtx_ = makeContext();
    return *defaultCtx_;
}

float *
Executor::resolve(ExecContext &ctx, int id) const
{
    const Node &n = g_.node(id);
    const ValuePlacement &v = plan_.values[id];
    switch (v.storage) {
      case Storage::Param:
        return store_.get(n.name).data();
      case Storage::ConstBuf:
        return const_cast<Tensor &>(constBufs_[id]).data();
      case Storage::External:
        return ctx.inputBufs_[id].data();
      case Storage::Alias:
        return resolve(ctx, n.inputs[0]);
      case Storage::Arena:
        return ctx.arena_.at<float>(v.offset);
      case Storage::Cache:
        return ctx.cache_.at<float>(v.offset);
    }
    throw std::runtime_error("Executor::resolve: bad storage");
}

void
Executor::bindInto(ExecContext &ctx) const
{
    ctx.arena_.reset(plan_.arenaBytes);
    // The cache region is zeroed here — at bind — and then left alone
    // forever: run() never touches it, which is exactly the cross-run
    // persistence Storage::Cache promises. resetCache() re-zeroes it
    // at session-recycle boundaries.
    ctx.cache_.reset(plan_.cacheBytes);

    // Input staging buffers are per-session: two in-flight requests
    // must never share the bytes their feeds land in.
    ctx.inputBufs_.resize(g_.numNodes());
    for (int id = 0; id < g_.numNodes(); ++id) {
        if (g_.node(id).op == OpKind::Input)
            ctx.inputBufs_[id] = Tensor::zeros(g_.node(id).shape);
    }

    ctx.steps_.clear();
    ctx.steps_.reserve(order_.size());

    // Workspace placements by node id, from the plan.
    std::vector<const WorkspacePlacement *> wsOf(g_.numNodes(), nullptr);
    for (const WorkspacePlacement &w : plan_.workspaces)
        wsOf[w.node] = &w;

    for (int id : order_) {
        const Node &n = g_.node(id);
        if (isSourceOp(n.op))
            continue;
        KernelInfo info = lookupKernelInfo(n.op, variants_[id]);
        BoundStep s;
        s.node = id;
        s.fn = info.fn;
        s.ctx.node = &g_.node(id);
        for (int in : n.inputs) {
            s.ctx.in.push_back(resolve(ctx, in));
            s.ctx.inShapes.push_back(&g_.node(in).shape);
        }
        s.ctx.out = resolve(ctx, id);
        s.ctx.outShape = &g_.node(id).shape;
        s.ctx.pool = pool_;
        ctx.steps_.push_back(std::move(s));
    }

    // Shard-ready flags need stable addresses across the ctx copies
    // below; size once, then never resize.
    ctx.sharedReady_.assign(ctx.steps_.size(), 0);

    for (size_t si = 0; si < ctx.steps_.size(); ++si) {
        BoundStep &s = ctx.steps_[si];
        const Node &n = g_.node(s.node);
        KernelInfo info = lookupKernelInfo(n.op, variants_[s.node]);
        const WorkspacePlacement *wsp = wsOf[s.node];

        // Resolve the node's workspace placement to arena pointers.
        // The planned placement may be LARGER than the bound kernel
        // needs (a SIMD-planned step downgraded to its scalar base on
        // this host, or vice versa after an artifact-load upgrade) —
        // binding into a roomier placement is fine; needing bytes the
        // plan never reserved is not.
        WorkspaceSpec spec = info.workspace ? info.workspace(g_, n)
                                            : WorkspaceSpec{};
        if (spec.any() && !wsp)
            throw std::runtime_error(
                "Executor: workspace plan out of sync for " +
                std::string(opName(n.op)));
        if (wsp && (spec.bytesPerShard > wsp->bytesPerShard ||
                    spec.sharedBytes > wsp->sharedBytes))
            throw std::runtime_error(
                "Executor: kernel needs more workspace than planned "
                "for " +
                std::string(opName(n.op)));
        if (wsp) {
            if (spec.bytesPerShard > 0)
                s.ctx.workspace =
                    ctx.arena_.at<float>(wsp->shardOffset(0));
            if (spec.sharedBytes > 0) {
                s.ctx.shared = ctx.arena_.at<float>(wsp->sharedOffset);
                s.init = spec.init;
            }
        }
        s.ctx.sharedReady =
            reinterpret_cast<bool *>(&ctx.sharedReady_[si]);

        // Launch plan: how many shards, over which ranges. Decided
        // here, once, from static shapes — run() only replays it.
        // Workspaces no longer force a kernel serial: shard i runs on
        // its own planned workspace instance.
        if (pool_ && info.part.splittable()) {
            std::vector<int64_t> bounds = splitRange(
                info.part.extent(s.ctx), info.part.minGrain, numThreads_);
            if (bounds.size() > 2) {
                int shards = static_cast<int>(bounds.size()) - 1;
                if (wsp && shards > wsp->shards)
                    throw std::runtime_error(
                        "Executor: launch plan has more shards than "
                        "the planned workspace instances for " +
                        std::string(opName(n.op)));
                s.shards.reserve(shards);
                for (int i = 0; i < shards; ++i) {
                    KernelCtx shard = s.ctx;
                    // A shard must never nest a dispatch on the pool
                    // it is running on.
                    shard.pool = nullptr;
                    shard.begin = bounds[i];
                    shard.end = bounds[i + 1];
                    if (wsp && spec.bytesPerShard > 0)
                        shard.workspace =
                            ctx.arena_.at<float>(wsp->shardOffset(i));
                    s.shards.push_back(std::move(shard));
                }
            }
        }

        // Regression tripwire: the bound shard count must equal the
        // compile-time launch summary's (both derive from the same
        // extents and splitRange). A divergence means bind applied a
        // rule the plan does not know — e.g. the pre-Arena-v2
        // "scratch serializes the kernel" gate — which would skew
        // every shard statistic the reports assert on, so fail loudly
        // on the first context bind instead.
        int bound = s.shards.empty() ? 1
                                     : static_cast<int>(s.shards.size());
        if (bound != shardsPerStep_[si])
            throw std::runtime_error(
                "Executor: bound launch plan diverges from the "
                "compile-time summary for " +
                std::string(opName(n.op)) + " (bound " +
                std::to_string(bound) + " shards, planned " +
                std::to_string(shardsPerStep_[si]) + ")");
    }
}

void
Executor::bindInput(const std::string &name, const Tensor &t)
{
    int id = inputId(name);
    if (id < 0)
        throw std::runtime_error("bindInput: no input named " + name);
    bindInputById(id, t);
}

int
Executor::inputId(const std::string &name) const
{
    for (int id : g_.inputIds()) {
        if (g_.node(id).name == name)
            return id;
    }
    return -1;
}

void
Executor::bindInputById(int id, const Tensor &t)
{
    bindInputById(defaultCtx(), id, t);
}

void
Executor::bindInputById(ExecContext &ctx, int id, const Tensor &t) const
{
    const Node &n = g_.node(id);
    if (t.shape() != n.shape) {
        throw std::runtime_error("bindInput: shape mismatch for " +
                                 n.name + ": got " +
                                 shapeToString(t.shape()) + " want " +
                                 shapeToString(n.shape));
    }
    std::memcpy(ctx.inputBufs_[id].data(), t.data(),
                sizeof(float) * t.size());
}

void
Executor::bindInputRows(ExecContext &ctx, int id, const Tensor &t) const
{
    const Node &n = g_.node(id);
    if (n.shape.empty() || t.shape().empty() ||
        t.shape().size() != n.shape.size())
        throw std::runtime_error(
            "bindInputRows: rank mismatch for " + n.name);
    for (size_t d = 1; d < n.shape.size(); ++d) {
        if (t.shape()[d] != n.shape[d])
            throw std::runtime_error(
                "bindInputRows: shape mismatch for " + n.name +
                ": got " + shapeToString(t.shape()) + " want " +
                shapeToString(n.shape) + " (rows may differ)");
    }
    int64_t rows = t.shape()[0];
    if (rows > n.shape[0])
        throw std::runtime_error(
            "bindInputRows: " + n.name + " holds " +
            std::to_string(n.shape[0]) + " rows, got " +
            std::to_string(rows));
    int64_t rowElems = numel(n.shape) / n.shape[0];
    float *dst = ctx.inputBufs_[id].data();
    std::memcpy(dst, t.data(), sizeof(float) * rows * rowElems);
    // Zero the pad rows so a padded request is byte-identical to
    // running the bucket-sized batch with explicit zero padding.
    std::memset(dst + rows * rowElems, 0,
                sizeof(float) * (n.shape[0] - rows) * rowElems);
}

void
Executor::bindInputRowsAt(ExecContext &ctx, int id, const Tensor &t,
                          int64_t rowOffset) const
{
    const Node &n = g_.node(id);
    if (n.shape.empty() || t.shape().empty() ||
        t.shape().size() != n.shape.size())
        throw std::runtime_error(
            "bindInputRowsAt: rank mismatch for " + n.name);
    for (size_t d = 1; d < n.shape.size(); ++d) {
        if (t.shape()[d] != n.shape[d])
            throw std::runtime_error(
                "bindInputRowsAt: shape mismatch for " + n.name +
                ": got " + shapeToString(t.shape()) + " want " +
                shapeToString(n.shape) + " (rows may differ)");
    }
    int64_t rows = t.shape()[0];
    if (rowOffset < 0 || rowOffset + rows > n.shape[0])
        throw std::runtime_error(
            "bindInputRowsAt: rows [" + std::to_string(rowOffset) +
            ", " + std::to_string(rowOffset + rows) +
            ") exceed the " + std::to_string(n.shape[0]) +
            " rows of " + n.name);
    int64_t rowElems = numel(n.shape) / n.shape[0];
    std::memcpy(ctx.inputBufs_[id].data() + rowOffset * rowElems,
                t.data(), sizeof(float) * rows * rowElems);
}

void
Executor::zeroInputRowsFrom(ExecContext &ctx, int id,
                            int64_t fromRow) const
{
    const Node &n = g_.node(id);
    if (n.shape.empty())
        throw std::runtime_error(
            "zeroInputRowsFrom: scalar input " + n.name);
    if (fromRow < 0 || fromRow > n.shape[0])
        throw std::runtime_error(
            "zeroInputRowsFrom: row " + std::to_string(fromRow) +
            " out of the " + std::to_string(n.shape[0]) +
            " rows of " + n.name);
    int64_t rowElems = numel(n.shape) / n.shape[0];
    std::memset(ctx.inputBufs_[id].data() + fromRow * rowElems, 0,
                sizeof(float) * (n.shape[0] - fromRow) * rowElems);
}

void
Executor::run()
{
    run(defaultCtx());
}

void
Executor::run(ExecContext &ctx) const
{
    if (!ctx.warm_) {
        // Serial warm-up: fill every declared shared region (cached
        // Winograd filter transforms) before any sharded launch can
        // touch it. Runs once per context; kernels then see
        // sharedReady == true and never write the region again.
        for (BoundStep &s : ctx.steps_) {
            if (s.init && !*s.ctx.sharedReady)
                s.init(s.ctx);
        }
        ctx.warm_ = true;
    }
    ++ctx.step_;
    // The entire cost of disarmed tracing is this one pointer test
    // (BM_TraceOverhead asserts it stays in the noise); the traced
    // loop lives out of line so this path is the exact pre-obs loop.
    if (TraceBuffer *tb = ctx.trace_.get()) {
        runTraced(ctx, *tb);
        return;
    }
    for (BoundStep &s : ctx.steps_) {
        if (s.shards.empty()) {
            s.ctx.step = ctx.step_;
            s.fn(s.ctx);
        } else {
            // One dispatch per step: shards run concurrently, and the
            // dispatch's completion wait is the inter-step barrier.
            pool_->dispatch(static_cast<int>(s.shards.size()), [&](int i) {
                s.shards[i].step = ctx.step_;
                s.fn(s.shards[i]);
            });
        }
    }
}

void
Executor::runTraced(ExecContext &ctx, TraceBuffer &tb) const
{
    const bool shardSpans = ctx.traceShards_;
    for (size_t si = 0; si < ctx.steps_.size(); ++si) {
        BoundStep &s = ctx.steps_[si];
        TraceSpan span;
        span.kind = SpanKind::Step;
        span.node = s.node;
        span.stepIndex = static_cast<int32_t>(si);
        span.shards = s.shards.empty()
                          ? 1
                          : static_cast<int32_t>(s.shards.size());
        span.runId = ctx.step_;
        span.op = opName(g_.node(s.node).op);
        // variants_ is frozen after construction, so the c_str stays
        // valid for the executor's lifetime — spans borrow, not copy.
        span.variant = variants_[s.node].c_str();
        span.startNs = traceNowNs();
        if (s.shards.empty()) {
            s.ctx.step = ctx.step_;
            s.fn(s.ctx);
        } else {
            // Shard spans are recorded INSIDE the dispatch from the
            // worker that ran the shard: each record() reserves its
            // own ring slot, and the dispatch barrier orders all of
            // them before the step span below and any reader.
            pool_->dispatch(
                static_cast<int>(s.shards.size()), [&](int i) {
                    s.shards[i].step = ctx.step_;
                    if (!shardSpans) {
                        s.fn(s.shards[i]);
                        return;
                    }
                    TraceSpan sh;
                    sh.kind = SpanKind::Shard;
                    sh.worker = static_cast<uint16_t>(
                        ThreadPool::currentWorker());
                    sh.node = span.node;
                    sh.stepIndex = span.stepIndex;
                    sh.shard = i;
                    sh.shards = span.shards;
                    sh.runId = span.runId;
                    sh.begin = s.shards[i].begin;
                    sh.end = s.shards[i].end;
                    sh.op = span.op;
                    sh.variant = span.variant;
                    int64_t cpu0 = traceThreadCpuNs();
                    sh.startNs = traceNowNs();
                    s.fn(s.shards[i]);
                    sh.durNs = traceNowNs() - sh.startNs;
                    int64_t cpu1 = traceThreadCpuNs();
                    sh.cpuNs = (cpu0 >= 0 && cpu1 >= 0)
                                   ? cpu1 - cpu0
                                   : -1;
                    tb.record(sh);
                });
        }
        span.durNs = traceNowNs() - span.startNs;
        tb.record(span);
    }
}

Tensor
Executor::fetch(int node_id) const
{
    return fetch(defaultCtx(), node_id);
}

Tensor
Executor::fetch(const ExecContext &ctx, int node_id) const
{
    const Node &n = g_.node(node_id);
    Tensor out(n.shape);
    const float *src =
        resolve(const_cast<ExecContext &>(ctx), node_id);
    switch (n.dtype) {
      case DType::F32:
        std::memcpy(out.data(), src, sizeof(float) * out.size());
        break;
      case DType::I8: {
        // Dequantize through the node's stamped output params when
        // present; raw integer codes otherwise (per-channel weights).
        const int8_t *q = reinterpret_cast<const int8_t *>(src);
        if (n.attrs.has("yScale")) {
            float s = static_cast<float>(n.attrs.getFloat("yScale", 1.0));
            int32_t zp = static_cast<int32_t>(n.attrs.getInt("yZp", 0));
            for (int64_t i = 0; i < out.size(); ++i)
                out[i] = dequantizeValue(q[i], s, zp);
        } else {
            for (int64_t i = 0; i < out.size(); ++i)
                out[i] = static_cast<float>(q[i]);
        }
        break;
      }
      case DType::F16: {
        const uint16_t *h = reinterpret_cast<const uint16_t *>(src);
        for (int64_t i = 0; i < out.size(); ++i)
            out[i] = halfToFloat(h[i]);
        break;
      }
    }
    return out;
}

void
Executor::resetCache(ExecContext &ctx) const
{
    ctx.cache_.reset(plan_.cacheBytes);
}

namespace {

/** Resolve a cache value's row geometry: [maxSeq, D] for rank-2,
 *  [B, maxSeq, D] for rank-3 (@p slot picks the leading dim). Returns
 *  the element offset of (slot, row0) and writes D to @p rowElems. */
int64_t
cacheRowBase(const Node &n, const ValuePlacement &v, int64_t slot,
             int64_t row0, int64_t rows, int64_t *rowElems)
{
    if (v.storage != Storage::Cache)
        throw std::runtime_error("Executor: " + n.name +
                                 " is not a cache value");
    const Shape &s = n.shape;
    int64_t b = s.size() == 3 ? s[0] : 1;
    int64_t max_seq = s.size() == 3 ? s[1] : s[0];
    int64_t d = s.back();
    if (slot < 0 || slot >= b)
        throw std::runtime_error(
            "Executor: cache slot " + std::to_string(slot) +
            " out of range for " + n.name);
    if (row0 < 0 || rows < 0 || row0 + rows > max_seq)
        throw std::runtime_error(
            "Executor: cache rows [" + std::to_string(row0) + ", " +
            std::to_string(row0 + rows) + ") exceed the " +
            std::to_string(max_seq) + " rows of " + n.name);
    *rowElems = d;
    return (slot * max_seq + row0) * d;
}

} // namespace

Tensor
Executor::fetchCacheRows(const ExecContext &ctx, int node_id,
                         int64_t slot, int64_t row0, int64_t rows) const
{
    const Node &n = g_.node(node_id);
    int64_t d = 0;
    int64_t base = cacheRowBase(n, plan_.values[node_id], slot, row0,
                                rows, &d);
    Tensor out({rows, d});
    const float *src =
        resolve(const_cast<ExecContext &>(ctx), node_id);
    std::memcpy(out.data(), src + base, sizeof(float) * rows * d);
    return out;
}

void
Executor::bindCacheRows(ExecContext &ctx, int node_id, int64_t slot,
                        int64_t row0, const Tensor &t) const
{
    const Node &n = g_.node(node_id);
    if (t.shape().size() != 2)
        throw std::runtime_error(
            "Executor::bindCacheRows: expected a [rows, D] tensor");
    int64_t rows = t.shape()[0];
    int64_t d = 0;
    int64_t base = cacheRowBase(n, plan_.values[node_id], slot, row0,
                                rows, &d);
    if (t.shape()[1] != d)
        throw std::runtime_error(
            "Executor::bindCacheRows: row width mismatch for " +
            n.name);
    std::memcpy(resolve(ctx, node_id) + base, t.data(),
                sizeof(float) * rows * d);
}

} // namespace pe
