#include "runtime/executor.h"

#include <cstring>
#include <stdexcept>

namespace pe {

Executor::Executor(const Graph &g, std::vector<int> order,
                   ParamStore &store, ExecOptions options)
    : g_(g), order_(std::move(order)), store_(store),
      variants_(std::move(options.variants))
{
    detail::ensureKernelsRegistered();
    variants_.resize(g_.numNodes());
    store_.materialize(g_);
    plan_ = planMemory(g_, order_);
    arena_.assign(plan_.arenaBytes / 4 + 1, 0.0f);

    constBufs_.resize(g_.numNodes());
    inputPtrs_.assign(g_.numNodes(), nullptr);
    valuePtr_.assign(g_.numNodes(), nullptr);
    scratch_.resize(g_.numNodes());
    scratchReady_.assign(g_.numNodes(), 0);

    // Materialize constants and input staging buffers.
    for (int id = 0; id < g_.numNodes(); ++id) {
        const Node &n = g_.node(id);
        if (n.op == OpKind::Const) {
            constBufs_[id] = g_.hasConstData(id)
                                 ? g_.constData(id).clone()
                                 : Tensor::zeros(n.shape);
        } else if (n.op == OpKind::Input) {
            constBufs_[id] = Tensor::zeros(n.shape); // staging buffer
        }
    }
    bindSteps();
}

float *
Executor::resolve(int id)
{
    const Node &n = g_.node(id);
    const ValuePlacement &v = plan_.values[id];
    switch (v.storage) {
      case Storage::Param:
        return store_.get(n.name).data();
      case Storage::ConstBuf:
      case Storage::External:
        return constBufs_[id].data();
      case Storage::Alias:
        return resolve(n.inputs[0]);
      case Storage::Arena:
        return arena_.data() + v.offset / 4;
    }
    throw std::runtime_error("Executor::resolve: bad storage");
}

void
Executor::bindSteps()
{
    steps_.clear();
    steps_.reserve(order_.size());
    for (int id : order_) {
        const Node &n = g_.node(id);
        if (isSourceOp(n.op))
            continue;
        BoundStep s;
        s.node = id;
        s.fn = lookupKernel(n.op, variants_[id]);
        s.ctx.node = &g_.node(id);
        for (int in : n.inputs) {
            s.ctx.in.push_back(resolve(in));
            s.ctx.inShapes.push_back(&g_.node(in).shape);
        }
        s.ctx.out = resolve(id);
        s.ctx.outShape = &g_.node(id).shape;
        int64_t scratch = kernelScratchSize(g_, n, variants_[id]);
        if (scratch > 0) {
            scratch_[id].assign(scratch, 0.0f);
            s.ctx.scratch = scratch_[id].data();
        }
        s.ctx.scratchReady = reinterpret_cast<bool *>(&scratchReady_[id]);
        steps_.push_back(std::move(s));
    }
    bound_ = true;
}

void
Executor::bindInput(const std::string &name, const Tensor &t)
{
    for (int id : g_.inputIds()) {
        const Node &n = g_.node(id);
        if (n.name != name)
            continue;
        if (t.shape() != n.shape) {
            throw std::runtime_error("bindInput: shape mismatch for " +
                                     name + ": got " +
                                     shapeToString(t.shape()) +
                                     " want " + shapeToString(n.shape));
        }
        std::memcpy(constBufs_[id].data(), t.data(),
                    sizeof(float) * t.size());
        return;
    }
    throw std::runtime_error("bindInput: no input named " + name);
}

void
Executor::run()
{
    ++step_;
    for (BoundStep &s : steps_) {
        s.ctx.step = step_;
        s.fn(s.ctx);
    }
}

Tensor
Executor::fetch(int node_id) const
{
    const Node &n = g_.node(node_id);
    Tensor out(n.shape);
    const float *src = const_cast<Executor *>(this)->resolve(node_id);
    std::memcpy(out.data(), src, sizeof(float) * out.size());
    return out;
}

} // namespace pe
