/**
 * @file
 * Tensor lifetime analysis and arena memory planning.
 *
 * Given an execution order, every non-persistent value gets a
 * [firstDef, lastUse] interval and a byte offset inside one arena via
 * greedy best-fit. The arena size IS the measured activation/gradient
 * memory of the training step, so the operator-reordering ablation and
 * Table 4 read their numbers from here.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.h"

namespace pe {

/** Where a value's storage lives. */
enum class Storage {
    Arena,    ///< activation/gradient/temporary, planned offsets
    Param,    ///< persistent, owned by the ParamStore
    ConstBuf, ///< compile-time constant
    External, ///< Input node, bound by the caller
    Alias,    ///< in-place op output; storage of its input 0
};

/** One value's placement. */
struct ValuePlacement {
    Storage storage = Storage::Arena;
    int64_t offset = 0;  ///< arena byte offset (Storage::Arena only)
    int64_t bytes = 0;
    int defPos = -1;     ///< position in the execution order
    int lastUsePos = -1;
};

/** Result of planning a graph against an execution order. */
struct MemoryPlan {
    std::vector<ValuePlacement> values; ///< indexed by node id
    int64_t arenaBytes = 0;             ///< peak activation memory
    int64_t paramBytes = 0;             ///< weights + optimizer state
    int64_t constBytes = 0;
    int64_t inputBytes = 0;

    /** Total training-step footprint (Table 4's metric). */
    int64_t
    totalBytes() const
    {
        return arenaBytes + paramBytes + constBytes + inputBytes;
    }
};

/**
 * Plan memory for @p g executed in @p order.
 *
 * Values are freed at their last use; graph outputs stay live to the
 * end of the step. In-place optimizer outputs alias their parameter
 * and consume no arena space.
 */
MemoryPlan planMemory(const Graph &g, const std::vector<int> &order);

} // namespace pe
