/**
 * @file
 * Tensor lifetime analysis and arena memory planning (Arena v2).
 *
 * Given an execution order, every non-persistent value gets a
 * [firstDef, lastUse] interval and a byte offset inside ONE
 * byte-addressed arena via greedy best-fit. Kernel workspaces are
 * planned in the same arena with the same lifetime machinery: a
 * step's workspace is live only during that step (so best-fit reuses
 * the space across steps), with one instance per shard of the step's
 * launch plan, plus an optional shared region that persists across
 * steps (Winograd's cached filter transforms). The arena size IS the
 * measured activation/gradient/scratch memory of the training step,
 * so the operator-reordering ablation and Table 4 read honest numbers
 * from here — kernel scratch no longer hides outside the plan.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dtype.h"
#include "ir/graph.h"

namespace pe {

/** Where a value's storage lives. */
enum class Storage {
    Arena,    ///< activation/gradient/temporary, planned offsets
    Param,    ///< persistent, owned by the ParamStore
    ConstBuf, ///< compile-time constant
    External, ///< Input node, bound by the caller
    Alias,    ///< in-place op output; storage of its input 0
    // Appended after Alias so the serialized u8 tags 0-4 of format-v1
    // plans keep their meaning.
    Cache,    ///< KV-cache value: per-context region that SURVIVES
              ///< across runs of one session (offset is relative to
              ///< the cache region, not the arena)
};

/** One value's placement. */
struct ValuePlacement {
    Storage storage = Storage::Arena;
    DType dtype = DType::F32; ///< storage element type
    int64_t offset = 0;  ///< arena byte offset (Storage::Arena only)
    int64_t bytes = 0;   ///< numel * dtypeSize(dtype)
    int defPos = -1;     ///< position in the execution order
    int lastUsePos = -1;
};

/**
 * A kernel workspace the planner must place: @p shards private
 * instances of @p bytesPerShard bytes live only during the step, and
 * @p sharedBytes that persist for the whole program. Built by
 * planLaunches() from the kernel registry's WorkspaceSpec
 * declarations and the bind-time shard counts.
 */
struct WorkspaceRequest {
    int node = -1;            ///< graph node id of the step
    int64_t bytesPerShard = 0;
    int shards = 1;
    int64_t sharedBytes = 0;
};

/** Where a step's workspace landed in the arena. */
struct WorkspacePlacement {
    int node = -1;
    int stepPos = -1;         ///< execution position (its lifetime)
    int shards = 1;
    int64_t bytesPerShard = 0; ///< declared (pre-alignment) size
    int64_t shardStride = 0;   ///< aligned distance between instances
    int64_t offset = 0;        ///< base of shard 0 (arena byte offset)
    int64_t sharedBytes = 0;
    int64_t sharedOffset = 0;  ///< valid when sharedBytes > 0

    /** Arena byte offset of shard @p i's workspace instance. */
    int64_t
    shardOffset(int i) const
    {
        return offset + static_cast<int64_t>(i) * shardStride;
    }
};

/** Result of planning a graph against an execution order. */
struct MemoryPlan {
    std::vector<ValuePlacement> values; ///< indexed by node id
    /** One entry per scratch-bearing step, in execution order. */
    std::vector<WorkspacePlacement> workspaces;
    int64_t arenaBytes = 0; ///< arena extent: values + workspaces
    /** Peak bytes of workspace storage live at any step (per-shard
     *  instances of the heaviest step + all persistent shared
     *  regions). Reported separately so footprint columns stay
     *  comparable with pre-Arena-v2 numbers. */
    int64_t workspaceBytes = 0;
    int64_t paramBytes = 0; ///< weights + optimizer state
    int64_t constBytes = 0;
    int64_t inputBytes = 0;
    /** Arena value bytes split by storage dtype (index = DType) —
     *  the per-precision activation footprint the quantized modes
     *  are judged on. Workspaces excluded (reported separately). */
    std::array<int64_t, 3> arenaValueBytesByDtype{};
    /** Const bytes split by storage dtype (pre-quantized i8 weights
     *  land here in deployment compiles). */
    std::array<int64_t, 3> constBytesByDtype{};
    /** Live arena bytes (values + workspaces) during each execution
     *  position — the per-step memory timeline Table 4's peak is the
     *  max of. Indexed by position in the order. */
    std::vector<int64_t> liveBytesAtStep;
    /** max(liveBytesAtStep): peak simultaneously-live bytes; differs
     *  from arenaBytes only by best-fit fragmentation. */
    int64_t peakLiveBytes = 0;
    /** Extent of the per-context persistent cache region (KV caches).
     *  Zero for every non-generative graph. Cache values never join
     *  the arena's lifetime churn: they are monotonically packed here
     *  and the executor zeroes the region once at bind, never between
     *  runs — that "never" IS the cross-run persistence. */
    int64_t cacheBytes = 0;

    /** Total per-session footprint (Table 4's metric; cacheBytes is 0
     *  for every non-generative graph, so historical rows are
     *  unchanged). */
    int64_t
    totalBytes() const
    {
        return arenaBytes + paramBytes + constBytes + inputBytes +
               cacheBytes;
    }
};

/**
 * Plan memory for @p g executed in @p order.
 *
 * Values are freed at their last use; graph outputs stay live to the
 * end of the step. In-place optimizer outputs alias their parameter
 * and consume no arena space. Each request in @p workspaces is
 * placed for exactly its step's duration (shared regions persist).
 */
MemoryPlan planMemory(const Graph &g, const std::vector<int> &order,
                      const std::vector<WorkspaceRequest> &workspaces = {});

/**
 * The compile-time launch summary: per-step workspace requests (with
 * shard counts exactly matching what the executor's bind will build,
 * since both derive from the same PartitionSpec extents and
 * splitRange()) plus the shard statistics the compile report
 * surfaces.
 */
struct LaunchSummary {
    std::vector<WorkspaceRequest> workspaces;
    int shardedSteps = 0; ///< steps whose launch plan has > 1 shard
    /** Splittable steps left serial solely because they carry scratch
     *  — the pre-Arena-v2 executor rule. Structurally zero now that
     *  every shard gets its own workspace instance; kept as a
     *  regression tripwire. */
    int serializedByWorkspace = 0;
    /** Planned shard count per kernel step, in execution order
     *  (source ops skipped) — the executor's bind verifies its
     *  actually-bound count against this, so any divergence (e.g. a
     *  reintroduced scratch-serializes-kernels gate) throws at bind
     *  instead of silently skewing the report. */
    std::vector<int> shardsPerStep;
};

/**
 * Evaluate every step's partition extent and workspace declaration
 * against static shapes — no buffers are materialized, so this also
 * serves analysis-only compiles of models too large to execute.
 */
LaunchSummary planLaunches(const Graph &g, const std::vector<int> &order,
                           const std::vector<std::string> &variants,
                           int numThreads);

/**
 * Process-wide invocation counts of the compile pipeline's expensive
 * stages. The binary-plan loader (src/plan/) snapshots these around a
 * load and asserts zero delta — the executable proof that loading a
 * serialized plan performs NO planning, scheduling or quantization
 * work, only pointer binding. Counters are monotonically increasing
 * and atomic; they are a debugging/assertion aid, not a profiler.
 */
struct PipelineCounters {
    int64_t planMemory = 0;   ///< planMemory() calls
    int64_t planLaunches = 0; ///< planLaunches() calls
    int64_t reorder = 0;      ///< reorderForMemory() calls
    int64_t quantizePass = 0; ///< quantizePass() calls

    bool
    operator==(const PipelineCounters &o) const
    {
        return planMemory == o.planMemory &&
               planLaunches == o.planLaunches && reorder == o.reorder &&
               quantizePass == o.quantizePass;
    }
    bool operator!=(const PipelineCounters &o) const { return !(*this == o); }
};

/** Snapshot of the pipeline-stage invocation counters. */
PipelineCounters pipelineCounters();

namespace detail {
/** Increment hooks for the stages living outside planner.cc. */
void countReorderInvocation();
void countQuantizePassInvocation();
} // namespace detail

} // namespace pe
